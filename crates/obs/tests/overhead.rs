//! Overhead guard: the disabled-tracing instrumentation path must not
//! allocate. Uses a counting global allocator with a *thread-local*
//! counter so concurrent harness threads cannot pollute the measurement.
//! (The companion "exactly one atomic gate load per span" bound is pinned
//! by the `gate-audit` unit test inside the crate.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: delegates to `System`; the bookkeeping is a thread-local Cell
// bump, which itself performs no allocation.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs_on_this_thread() -> u64 {
    ALLOCS.with(std::cell::Cell::get)
}

#[test]
fn disabled_instrumentation_path_does_not_allocate() {
    hadad_obs::set_tracing(false);

    // Warm up lazy registry state once: first use of a LazyCounter /
    // LazyHistogram leaks its registry entry by design.
    static C: hadad_obs::LazyCounter = hadad_obs::LazyCounter::new("test.overhead.counter");
    static H: hadad_obs::LazyHistogram = hadad_obs::LazyHistogram::new("test.overhead.hist");
    C.incr();
    H.record(7);
    drop(hadad_obs::span("test.overhead.warmup"));

    let before = allocs_on_this_thread();
    for i in 0..10_000u64 {
        let _s = hadad_obs::span("test.overhead.site");
        C.incr();
        H.record(i);
    }
    let after = allocs_on_this_thread();
    assert_eq!(
        after - before,
        0,
        "disabled spans and counter/histogram updates must be allocation-free"
    );
}
