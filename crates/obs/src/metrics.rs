//! Lock-free metrics: sharded counters, log2-bucketed histograms, and the
//! process-wide registry with JSON / Prometheus snapshot export.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::thread_ordinal;

/// Number of atomic shards per counter — matches the plan cache's 8-way
/// sharding so concurrent writers on different threads rarely contend on
/// one cache line.
pub const COUNTER_SHARDS: usize = 8;

/// One cache-line-aligned atomic cell, so adjacent shards never false-share.
#[repr(align(64))]
struct Shard(AtomicU64);

impl Shard {
    const fn new() -> Self {
        Self(AtomicU64::new(0))
    }
}

/// A monotonically increasing counter, sharded [`COUNTER_SHARDS`] ways.
///
/// Increments are a single relaxed `fetch_add` on the caller thread's
/// shard; reads sum all shards. Relaxed ordering is sufficient because a
/// counter carries no cross-thread happens-before obligation — totals are
/// still exact (no lost updates), which `tests` assert under contention.
pub struct Counter {
    shards: [Shard; COUNTER_SHARDS],
}

impl Counter {
    /// New zeroed counter (usable standalone, outside the registry).
    #[must_use]
    pub const fn new() -> Self {
        Self {
            shards: [
                Shard::new(),
                Shard::new(),
                Shard::new(),
                Shard::new(),
                Shard::new(),
                Shard::new(),
                Shard::new(),
                Shard::new(),
            ],
        }
    }

    /// Adds `n` to the counter (relaxed, lock-free).
    pub fn add(&self, n: u64) {
        let shard = usize::try_from(thread_ordinal()).unwrap_or(0) % COUNTER_SHARDS;
        self.shards[shard].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current total across all shards.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i ≥ 1`
/// holds values with bit length `i`, i.e. `2^(i-1) ≤ v < 2^i`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples (typically microseconds).
///
/// Recording is two relaxed `fetch_add`s (bucket + sum); buckets cover the
/// full `u64` range at power-of-two resolution, which is plenty for the
/// latency-distribution claims the bench makes (p50/p95 within 2×).
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Histogram {
    /// New empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self { buckets: std::array::from_fn(|_| AtomicU64::new(0)), sum: AtomicU64::new(0) }
    }

    fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Records one sample (relaxed, lock-free).
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Point-in-time copy of the bucket counts and sum.
    #[must_use]
    pub fn read(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> =
            self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            name: String::new(),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.read();
        f.debug_struct("Histogram").field("count", &snap.count).field("sum", &snap.sum).finish()
    }
}

/// Inclusive upper bound of bucket `i`: 0 for the zero bucket, otherwise
/// `2^i − 1`.
#[must_use]
pub(crate) fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

enum Handle {
    Counter(&'static Counter),
    Histogram(&'static Histogram),
}

fn registry() -> &'static Mutex<Vec<(&'static str, Handle)>> {
    static REGISTRY: OnceLock<Mutex<Vec<(&'static str, Handle)>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// The registered counter named `name`, creating (and leaking) it on
/// first use. The lock is taken only here — increments through the
/// returned reference are lock-free.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut reg = registry().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    for (n, h) in reg.iter() {
        if *n == name {
            if let Handle::Counter(c) = h {
                return c;
            }
        }
    }
    let c: &'static Counter = Box::leak(Box::new(Counter::new()));
    reg.push((name, Handle::Counter(c)));
    c
}

/// The registered histogram named `name`, creating (and leaking) it on
/// first use. Same locking discipline as [`counter`].
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut reg = registry().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    for (n, h) in reg.iter() {
        if *n == name {
            if let Handle::Histogram(hist) = h {
                return hist;
            }
        }
    }
    let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
    reg.push((name, Handle::Histogram(h)));
    h
}

/// A call-site counter static: resolves its registry entry once, then
/// every use is a single relaxed `fetch_add`.
///
/// ```
/// static FIRINGS: hadad_obs::LazyCounter = hadad_obs::LazyCounter::new("chase.rule_firings");
/// FIRINGS.incr();
/// ```
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<&'static Counter>,
}

impl LazyCounter {
    /// Declares a counter bound to registry entry `name`.
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Self { name, cell: OnceLock::new() }
    }

    /// The underlying registered counter.
    pub fn get(&self) -> &'static Counter {
        self.cell.get_or_init(|| counter(self.name))
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.get().add(n);
    }

    /// Adds one.
    pub fn incr(&self) {
        self.get().incr();
    }

    /// Current total.
    pub fn value(&self) -> u64 {
        self.get().get()
    }
}

/// A call-site histogram static; see [`LazyCounter`].
pub struct LazyHistogram {
    name: &'static str,
    cell: OnceLock<&'static Histogram>,
}

impl LazyHistogram {
    /// Declares a histogram bound to registry entry `name`.
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Self { name, cell: OnceLock::new() }
    }

    /// The underlying registered histogram.
    pub fn get(&self) -> &'static Histogram {
        self.cell.get_or_init(|| histogram(self.name))
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.get().record(v);
    }
}

/// Point-in-time value of one registered counter.
#[derive(Debug, Clone)]
pub struct CounterSnapshot {
    /// Registry name, e.g. `"chase.rule_firings"`.
    pub name: String,
    /// Total at snapshot time.
    pub value: u64,
}

/// Point-in-time state of one registered histogram.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Registry name, e.g. `"rewrite.total_us"`.
    pub name: String,
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all recorded samples.
    pub sum: u64,
    /// Per-bucket counts; bucket `i` covers `2^(i-1) ≤ v < 2^i` (bucket 0
    /// holds zeros).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Approximate quantile `q ∈ [0, 1]`: the inclusive upper bound of the
    /// bucket containing the `ceil(q·count)`-th sample (so at most 2×
    /// above the true value). Returns 0 for an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let clamped = q.clamp(0.0, 1.0);
        // `count` came from a u64 sum of bucket loads; precision loss here
        // only shifts the target within a bucket.
        let mut target = (clamped * self.count as f64).ceil() as u64;
        target = target.clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(self.buckets.len() - 1)
    }

    /// Mean sample value, or 0 for an empty histogram.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A consistent-enough point-in-time copy of the whole registry (each
/// metric is read atomically; the set is read under the registry lock).
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// All registered counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All registered histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Value of the counter named `name`, if registered.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }

    /// The histogram named `name`, if registered.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Serializes to a stable JSON document:
    /// `{"counters": {..}, "histograms": {name: {count, sum, mean, p50,
    /// p95, p99, buckets: [[upper_bound, count], ..]}}}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", escape_json(&c.name), c.value));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"mean\": {:.1}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [",
                escape_json(&h.name),
                h.count,
                h.sum,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
            ));
            let mut first = true;
            for (b, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if !first {
                    out.push_str(", ");
                }
                first = false;
                out.push_str(&format!("[{}, {}]", bucket_upper_bound(b), c));
            }
            out.push_str("]}");
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Serializes to Prometheus text exposition format. Metric names are
    /// prefixed `hadad_` with `.` mapped to `_`; histograms emit
    /// cumulative `_bucket{le="..."}` series plus `_sum` / `_count`.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            let name = prom_name(&c.name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.value));
        }
        for h in &self.histograms {
            let name = prom_name(&h.name);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            for (b, &c) in h.buckets.iter().enumerate() {
                cumulative += c;
                if c == 0 && b + 1 != h.buckets.len() {
                    continue;
                }
                out.push_str(&format!(
                    "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                    bucket_upper_bound(b)
                ));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{name}_sum {}\n{name}_count {}\n", h.sum, h.count));
        }
        out
    }
}

fn prom_name(name: &str) -> String {
    let mangled: String =
        name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect();
    format!("hadad_{mangled}")
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Reads every registered metric into a [`MetricsSnapshot`], sorted by
/// name for deterministic export.
#[must_use]
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut counters = Vec::new();
    let mut histograms = Vec::new();
    for (name, h) in reg.iter() {
        match h {
            Handle::Counter(c) => {
                counters.push(CounterSnapshot { name: (*name).to_owned(), value: c.get() });
            }
            Handle::Histogram(hist) => {
                let mut snap = hist.read();
                snap.name = (*name).to_owned();
                histograms.push(snap);
            }
        }
    }
    counters.sort_by(|a, b| a.name.cmp(&b.name));
    histograms.sort_by(|a, b| a.name.cmp(&b.name));
    MetricsSnapshot { counters, histograms }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_totals_are_exact_under_contention() {
        // The real lost-update check for the sharding scheme: 8 threads
        // hammering one counter must sum to exactly threads × iters.
        static C: LazyCounter = LazyCounter::new("test.metrics.exact");
        let before = C.value();
        let threads = 8;
        let iters = 100_000u64;
        thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for _ in 0..iters {
                        C.incr();
                    }
                });
            }
        });
        assert_eq!(C.value() - before, threads * iters, "lost updates in sharded counter");
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        h.record(0); // bucket 0
        h.record(1); // bucket 1
        h.record(3); // bucket 2
        for _ in 0..7 {
            h.record(100); // bucket 7 (64..=127)
        }
        let mut snap = h.read();
        snap.name = "t".into();
        assert_eq!(snap.count, 10);
        assert_eq!(snap.sum, 704);
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[1], 1);
        assert_eq!(snap.buckets[2], 1);
        assert_eq!(snap.buckets[7], 7);
        // p50 and p95 both land in the 64..=127 bucket.
        assert_eq!(snap.quantile(0.50), 127);
        assert_eq!(snap.quantile(0.95), 127);
        // Minimum lands in the zero bucket.
        assert_eq!(snap.quantile(0.0), 0);
        assert!((snap.mean() - 70.4).abs() < 1e-9);
    }

    #[test]
    fn histogram_extremes() {
        let h = Histogram::new();
        h.record(u64::MAX);
        let snap = h.read();
        assert_eq!(snap.buckets[64], 1);
        let mut named = snap;
        named.name = "t".into();
        assert_eq!(named.quantile(1.0), u64::MAX);
    }

    #[test]
    fn registry_dedupes_by_name() {
        let a = counter("test.metrics.dedupe");
        let b = counter("test.metrics.dedupe");
        assert!(std::ptr::eq(a, b), "same name must resolve to the same counter");
        a.add(3);
        assert_eq!(b.get(), a.get());
    }

    #[test]
    fn snapshot_exports_json_and_prometheus() {
        counter("test.metrics.export_c").add(5);
        histogram("test.metrics.export_h").record(1000);
        let snap = snapshot();
        assert!(snap.counter("test.metrics.export_c").unwrap_or(0) >= 5);
        let json = snap.to_json();
        assert!(json.contains("\"test.metrics.export_c\""));
        assert!(json.contains("\"test.metrics.export_h\""));
        let prom = snap.to_prometheus();
        assert!(prom.contains("# TYPE hadad_test_metrics_export_c counter"));
        assert!(prom.contains("# TYPE hadad_test_metrics_export_h histogram"));
        assert!(prom.contains("hadad_test_metrics_export_h_bucket{le=\"+Inf\"}"));
        assert!(prom.contains("hadad_test_metrics_export_h_count"));
    }
}
