//! Tracing spans: RAII guards recording `(site, thread, t_start, t_end)`
//! into bounded per-thread ring buffers, gated by `HADAD_TRACE`.
//!
//! Gate discipline (stricter than `hadad-failpoint`, which pays an armed
//! flag *and* a `OnceLock` load): a single `AtomicU8` encodes
//! uninitialized / off / on, so once initialized the disabled path is
//! exactly **one relaxed atomic load** and no allocation. The `gate-audit`
//! feature (always on for unit tests) counts gate loads per thread so the
//! overhead guard test can assert that bound instead of trusting it.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::metrics::LazyCounter;
use crate::{now_us, thread_ordinal};

/// Per-thread span ring capacity. A full ring drops *new* spans (the
/// earliest records — startup, first rewrite — are usually the ones worth
/// keeping) and counts the loss in the `trace.dropped_spans` metric.
pub const RING_CAPACITY: usize = 16_384;

const UNINIT: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(UNINIT);

static DROPPED: LazyCounter = LazyCounter::new("trace.dropped_spans");

/// Gate-load audit instrumentation, compiled for unit tests and under the
/// `gate-audit` feature: counts how many atomic loads of the tracing gate
/// the current thread has performed, so tests can pin the disabled-span
/// cost to exactly one load per site.
#[cfg(any(test, feature = "gate-audit"))]
pub mod audit {
    use std::cell::Cell;

    thread_local! {
        static GATE_LOADS: Cell<u64> = const { Cell::new(0) };
    }

    pub(crate) fn note_load() {
        GATE_LOADS.with(|c| c.set(c.get() + 1));
    }

    /// Gate loads performed by the current thread since the last [`reset`].
    #[must_use]
    pub fn gate_loads() -> u64 {
        GATE_LOADS.with(std::cell::Cell::get)
    }

    /// Zeroes the current thread's gate-load count.
    pub fn reset() {
        GATE_LOADS.with(|c| c.set(0));
    }
}

#[cfg(any(test, feature = "gate-audit"))]
fn note_gate_load() {
    audit::note_load();
}

#[cfg(not(any(test, feature = "gate-audit")))]
#[inline(always)]
fn note_gate_load() {}

/// Whether tracing is currently enabled. Steady-state cost: one relaxed
/// atomic load. The first call parses `HADAD_TRACE` (any value other than
/// empty / `0` / `off` / `false` arms tracing).
#[inline]
pub fn tracing_enabled() -> bool {
    note_gate_load();
    match STATE.load(Ordering::Relaxed) {
        UNINIT => init_from_env(),
        s => s == ON,
    }
}

#[cold]
fn init_from_env() -> bool {
    let armed = std::env::var("HADAD_TRACE").is_ok_and(|v| {
        let v = v.trim().to_ascii_lowercase();
        !(v.is_empty() || v == "0" || v == "off" || v == "false")
    });
    let parsed = if armed { ON } else { OFF };
    // Lose gracefully to a concurrent `set_tracing` that beat us here.
    match STATE.compare_exchange(UNINIT, parsed, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => armed,
        Err(current) => current == ON,
    }
}

/// Programmatically arms or disarms tracing (overrides `HADAD_TRACE`).
/// Used by the bench's instrumentation-overhead duel and `xtask obs-dump`.
pub fn set_tracing(on: bool) {
    STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
}

/// One completed span: a `site` executed on `thread` from `start_us` to
/// `end_us` (process-epoch microseconds, see [`crate::now_us`]).
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Instrumentation site, e.g. `"chase"` or `"kernel.multiply"`.
    pub site: &'static str,
    /// Dense per-thread ordinal (the Chrome trace `tid`).
    pub thread: u64,
    /// Span start, microseconds since the process observability epoch.
    pub start_us: u64,
    /// Span end, microseconds since the process observability epoch.
    pub end_us: u64,
}

struct Ring {
    records: Vec<SpanRecord>,
}

fn rings() -> &'static Mutex<Vec<Arc<Mutex<Ring>>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Mutex<Ring>>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

fn local_ring() -> Arc<Mutex<Ring>> {
    thread_local! {
        static LOCAL: Arc<Mutex<Ring>> = {
            let ring = Arc::new(Mutex::new(Ring { records: Vec::new() }));
            rings()
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(Arc::clone(&ring));
            ring
        };
    }
    LOCAL.with(Arc::clone)
}

fn record_span(site: &'static str, start_us: u64, end_us: u64) {
    let ring = local_ring();
    let mut guard = ring.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if guard.records.len() < RING_CAPACITY {
        guard.records.push(SpanRecord { site, thread: thread_ordinal(), start_us, end_us });
    } else {
        DROPPED.incr();
    }
}

/// RAII span guard returned by [`span`]; records on drop when armed.
#[must_use = "a span measures the scope it is alive for"]
pub struct SpanGuard {
    site: &'static str,
    start_us: u64,
    armed: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed {
            record_span(self.site, self.start_us, now_us());
        }
    }
}

/// Opens a tracing span for `site`, closed (and recorded) when the guard
/// drops. When tracing is disabled this is one relaxed atomic load and a
/// stack write — no allocation, no clock read.
pub fn span(site: &'static str) -> SpanGuard {
    if tracing_enabled() {
        SpanGuard { site, start_us: now_us(), armed: true }
    } else {
        SpanGuard { site, start_us: 0, armed: false }
    }
}

/// `span!(site)` — expression form of [`span`], mirroring
/// `failpoint`-style site macros: `let _g = hadad_obs::span!("chase");`.
#[macro_export]
macro_rules! span {
    ($site:expr) => {
        $crate::span($site)
    };
}

/// Drains every thread's span ring, returning all records sorted by start
/// time. Spans recorded after the drain begin accumulating again.
pub fn take_trace() -> Vec<SpanRecord> {
    let rings = rings().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut out = Vec::new();
    for ring in rings.iter() {
        let mut guard = ring.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        out.append(&mut guard.records);
    }
    drop(rings);
    out.sort_by_key(|r| (r.start_us, r.thread));
    out
}

/// Serializes span records as Chrome `chrome://tracing` JSON (an array of
/// complete `"ph": "X"` duration events; load via the Perfetto / Chrome
/// trace viewer).
#[must_use]
pub fn chrome_trace_json(records: &[SpanRecord]) -> String {
    let mut out = String::from("[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"name\": \"{}\", \"cat\": \"hadad\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": 1, \"tid\": {}}}",
            r.site,
            r.start_us,
            r.end_us.saturating_sub(r.start_us),
            r.thread
        ));
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::TRACE_TEST_LOCK;

    #[test]
    fn disabled_span_costs_exactly_one_gate_load() {
        let _guard = TRACE_TEST_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        set_tracing(false);
        drop(span("warmup")); // settle the gate + any lazy state
        audit::reset();
        let n = 1_000u64;
        for _ in 0..n {
            let _s = span("test.disabled");
        }
        assert_eq!(
            audit::gate_loads(),
            n,
            "disabled span must cost exactly one atomic gate load per site"
        );
    }

    #[test]
    fn armed_spans_are_recorded_and_drained() {
        let _guard = TRACE_TEST_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        set_tracing(true);
        {
            let _s = span("test.trace.outer");
            let _inner = span("test.trace.inner");
        }
        set_tracing(false);
        let records = take_trace();
        let outer = records.iter().find(|r| r.site == "test.trace.outer");
        let inner = records.iter().find(|r| r.site == "test.trace.inner");
        let (outer, inner) = (outer.expect("outer recorded"), inner.expect("inner recorded"));
        assert!(outer.start_us <= inner.start_us, "outer opens first");
        assert!(outer.end_us >= inner.end_us, "guards drop inner-first");
        assert_eq!(outer.thread, inner.thread);
        // Drained: a second take sees none of these sites.
        assert!(take_trace().iter().all(|r| !r.site.starts_with("test.trace.")));
    }

    #[test]
    fn chrome_export_shape() {
        let records = vec![
            SpanRecord { site: "a", thread: 0, start_us: 10, end_us: 25 },
            SpanRecord { site: "b", thread: 1, start_us: 12, end_us: 13 },
        ];
        let json = chrome_trace_json(&records);
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"name\": \"a\""));
        assert!(json.contains("\"dur\": 15"));
        assert!(json.contains("\"tid\": 1"));
    }

    #[test]
    fn span_macro_expands_to_guard() {
        let _guard = TRACE_TEST_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        set_tracing(false);
        let g = crate::span!("test.macro");
        drop(g);
    }
}
