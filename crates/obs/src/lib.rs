//! Always-on observability for the HADAD pipeline: a lock-free metrics
//! registry (sharded counters + log2-bucketed histograms), tracing spans
//! gated by `HADAD_TRACE` with Chrome-trace export, and a bounded
//! structured event log.
//!
//! Design discipline mirrors `hadad-failpoint`: the *disabled* path must
//! cost at most one relaxed atomic load per span site and must not
//! allocate, so instrumentation can stay compiled into release builds.
//! Counters are always on — they are 8-way sharded relaxed atomics (the
//! same shard discipline as the plan cache), so an increment is one
//! `fetch_add` with no locking and no false sharing between threads.
//!
//! Everything lives in one process-wide registry: call-sites declare
//! [`LazyCounter`] / [`LazyHistogram`] statics, [`snapshot`] reads the
//! whole registry into a [`MetricsSnapshot`] that serializes to JSON and
//! Prometheus text exposition, and [`take_trace`] drains the per-thread
//! span rings for [`chrome_trace_json`].

mod events;
mod metrics;
mod trace;

pub use events::{event, events, take_events, Event, Severity, EVENT_CAPACITY};
pub use metrics::{
    counter, histogram, snapshot, Counter, CounterSnapshot, Histogram, HistogramSnapshot,
    LazyCounter, LazyHistogram, MetricsSnapshot, COUNTER_SHARDS, HISTOGRAM_BUCKETS,
};
pub use trace::{
    chrome_trace_json, set_tracing, span, take_trace, tracing_enabled, SpanGuard, SpanRecord,
    RING_CAPACITY,
};

#[cfg(any(test, feature = "gate-audit"))]
pub use trace::audit;

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Small dense per-thread ordinal (0, 1, 2, …) assigned on first use.
///
/// Shared by the counter shard picker (`ordinal % COUNTER_SHARDS`) and the
/// trace rings (`tid` in exported Chrome traces). Thread ordinals are never
/// reused within a process, so two live threads never alias.
pub fn thread_ordinal() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static ORDINAL: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ORDINAL.with(|o| *o)
}

/// Microseconds since the process-wide observability epoch (first call).
///
/// All span and event timestamps share this timebase so exported traces
/// from different subsystems line up on one axis.
pub fn now_us() -> u64 {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let elapsed = EPOCH.get_or_init(Instant::now).elapsed();
    u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX)
}

/// Runs `f` under a tracing span for `site`, records the elapsed
/// microseconds into `hist`, and returns `(result, elapsed_us)`.
///
/// This is the single timing primitive the legacy report structs
/// ([`RewriteReport`], `MaintenanceReport`, …) derive their public timing
/// fields from: the value recorded into the shared registry and the value
/// placed in the report are the *same* measurement.
pub fn timed<T>(site: &'static str, hist: &LazyHistogram, f: impl FnOnce() -> T) -> (T, u128) {
    let _span = span(site);
    let start = Instant::now();
    let out = f();
    let us = start.elapsed().as_micros();
    hist.record(u64::try_from(us).unwrap_or(u64::MAX));
    (out, us)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Tests that flip the global tracing gate serialize on this lock so
    /// they cannot observe each other's state.
    pub(crate) static TRACE_TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn timed_records_into_histogram_and_returns_value() {
        static H: LazyHistogram = LazyHistogram::new("test.lib.timed_us");
        let before = snapshot().histogram("test.lib.timed_us").map_or(0, |h| h.count);
        let (v, us) = timed("test.timed", &H, || 41 + 1);
        assert_eq!(v, 42);
        let snap = snapshot();
        let h = snap.histogram("test.lib.timed_us").expect("histogram registered");
        assert_eq!(h.count, before + 1);
        assert!(h.sum >= u64::try_from(us).unwrap_or(u64::MAX) || us == 0);
    }

    #[test]
    fn thread_ordinals_are_distinct() {
        let mine = thread_ordinal();
        let other = std::thread::spawn(thread_ordinal).join().expect("spawn");
        assert_ne!(mine, other);
        assert_eq!(mine, thread_ordinal(), "ordinal is stable per thread");
    }

    #[test]
    fn now_us_is_monotonic() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
    }
}
