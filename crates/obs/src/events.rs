//! Bounded structured event log: one process-wide stream for faults,
//! degradations, and configuration warnings (failpoint spec errors,
//! backend kernel panics, …) that previously went to `eprintln!` or
//! per-struct side channels.

use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};

use crate::now_us;

/// Maximum retained events; older entries are evicted first (the log is a
/// recent-history window, unlike the keep-oldest span rings).
pub const EVENT_CAPACITY: usize = 1024;

/// Event severity, ordered `Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Expected operational milestones.
    Info,
    /// Degraded but recovered (e.g. kernel panic absorbed by a reference
    /// retry, malformed failpoint spec entry skipped).
    Warn,
    /// A fault surfaced to callers (e.g. maintainer poisoned).
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Self::Info => "info",
            Self::Warn => "warn",
            Self::Error => "error",
        };
        f.write_str(s)
    }
}

/// One structured event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Emitting site, e.g. `"failpoint.spec"` or `"linalg.kernel"`.
    pub site: &'static str,
    /// Severity of the event.
    pub severity: Severity,
    /// Human-readable detail.
    pub message: String,
    /// Emission time, microseconds since the process observability epoch.
    pub t_us: u64,
}

fn log() -> &'static Mutex<VecDeque<Event>> {
    static LOG: OnceLock<Mutex<VecDeque<Event>>> = OnceLock::new();
    LOG.get_or_init(|| Mutex::new(VecDeque::new()))
}

/// Appends an event to the log, evicting the oldest entry when the
/// [`EVENT_CAPACITY`] window is full.
pub fn event(site: &'static str, severity: Severity, message: impl Into<String>) {
    let mut log = log().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if log.len() >= EVENT_CAPACITY {
        log.pop_front();
    }
    log.push_back(Event { site, severity, message: message.into(), t_us: now_us() });
}

/// A copy of the retained events, oldest first.
#[must_use]
pub fn events() -> Vec<Event> {
    log().lock().unwrap_or_else(std::sync::PoisonError::into_inner).iter().cloned().collect()
}

/// Drains and returns the retained events, oldest first.
pub fn take_events() -> Vec<Event> {
    log().lock().unwrap_or_else(std::sync::PoisonError::into_inner).drain(..).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_retained_in_order_with_severity() {
        event("test.events.a", Severity::Info, "first");
        event("test.events.b", Severity::Error, format!("second {}", 2));
        let all = events();
        let a = all.iter().position(|e| e.site == "test.events.a").expect("a logged");
        let b = all.iter().position(|e| e.site == "test.events.b").expect("b logged");
        assert!(a < b, "log is oldest-first");
        assert_eq!(all[b].severity, Severity::Error);
        assert_eq!(all[b].message, "second 2");
        assert!(all[a].t_us <= all[b].t_us);
        assert!(Severity::Info < Severity::Warn && Severity::Warn < Severity::Error);
        assert_eq!(Severity::Warn.to_string(), "warn");
    }

    #[test]
    fn log_window_is_bounded() {
        for i in 0..(EVENT_CAPACITY + 8) {
            event("test.events.flood", Severity::Info, format!("e{i}"));
        }
        let all = events();
        assert!(all.len() <= EVENT_CAPACITY, "log must stay bounded");
        // The newest flood entry survived; the oldest were evicted.
        assert!(all.iter().any(|e| e.message == format!("e{}", EVENT_CAPACITY + 7)));
    }
}
