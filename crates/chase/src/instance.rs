//! Canonical database instances.
//!
//! Elements are nodes in a union-find: constants (each constant symbol maps
//! to exactly one node) and labelled nulls (fresh existential witnesses
//! introduced by TGD chase steps). EGD applications merge nodes; the paper's
//! reading (§6.2.1) is that each node is an *equivalence class of
//! value-equal expressions* — the saturated instance is therefore an
//! e-graph over expression classes, which `hadad-core` exploits for
//! min-cost extraction.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

use crate::atom::Atom;
use crate::provenance::Provenance;
use crate::symbols::{PredId, SymId, Vocabulary};
use crate::term::Term;

/// Node in the instance's union-find.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// A ground fact over nodes, carrying its provenance formula and the name of
/// the rule that produced it (empty for input facts).
#[derive(Debug, Clone)]
pub struct Fact {
    pub pred: PredId,
    pub args: Vec<NodeId>,
    pub prov: Provenance,
    /// Index (into the engine's rule list) of the producing rule, if any.
    pub rule: Option<usize>,
}

/// Canonical database: facts over union-find nodes.
#[derive(Debug, Clone, Default)]
pub struct Instance {
    parent: Vec<u32>,
    rank: Vec<u8>,
    /// Constant symbol attached to a (root) node, if any.
    const_of: Vec<Option<SymId>>,
    node_of_const: HashMap<SymId, NodeId>,
    facts: Vec<Fact>,
    /// Canonical (pred, canonical args) -> fact index, for dedup.
    index: HashMap<(PredId, Vec<NodeId>), usize>,
    /// Per-predicate fact indices (not canonicalized; consult `find`).
    by_pred: HashMap<PredId, Vec<usize>>,
    /// Number of labelled nulls created so far (for budget accounting).
    nulls: usize,
}

/// Error: two distinct constants were equated by an EGD (the constraint set
/// is inconsistent with the instance).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstClash {
    pub a: SymId,
    pub b: SymId,
}

impl Instance {
    pub fn new() -> Self {
        Self::default()
    }

    fn push_node(&mut self, c: Option<SymId>) -> NodeId {
        let id = NodeId(self.parent.len() as u32);
        self.parent.push(id.0);
        self.rank.push(0);
        self.const_of.push(c);
        id
    }

    /// Node for a constant (created on first use).
    pub fn const_node(&mut self, c: SymId) -> NodeId {
        if let Some(&n) = self.node_of_const.get(&c) {
            return self.find(n);
        }
        let n = self.push_node(Some(c));
        self.node_of_const.insert(c, n);
        n
    }

    /// Fresh labelled null.
    pub fn fresh_null(&mut self) -> NodeId {
        self.nulls += 1;
        self.push_node(None)
    }

    pub fn num_nulls(&self) -> usize {
        self.nulls
    }

    pub fn num_nodes(&self) -> usize {
        self.parent.len()
    }

    /// Union-find root with path halving.
    pub fn find(&self, n: NodeId) -> NodeId {
        let mut x = n.0 as usize;
        while self.parent[x] as usize != x {
            x = self.parent[x] as usize;
        }
        NodeId(x as u32)
    }

    fn find_compress(&mut self, n: NodeId) -> NodeId {
        let mut x = n.0 as usize;
        while self.parent[x] as usize != x {
            let grand = self.parent[self.parent[x] as usize];
            self.parent[x] = grand;
            x = grand as usize;
        }
        NodeId(x as u32)
    }

    /// Constant attached to a node's class, if any.
    pub fn const_of(&self, n: NodeId) -> Option<SymId> {
        self.const_of[self.find(n).0 as usize]
    }

    /// Merges two classes. Fails if both carry distinct constants.
    pub fn merge(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, ConstClash> {
        let (ra, rb) = (self.find_compress(a), self.find_compress(b));
        if ra == rb {
            return Ok(ra);
        }
        let const_new = match (self.const_of[ra.0 as usize], self.const_of[rb.0 as usize]) {
            (Some(x), Some(y)) if x != y => return Err(ConstClash { a: x, b: y }),
            (Some(x), _) => Some(x),
            (_, y) => y,
        };
        let (big, small) = if self.rank[ra.0 as usize] >= self.rank[rb.0 as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small.0 as usize] = big.0;
        if self.rank[big.0 as usize] == self.rank[small.0 as usize] {
            self.rank[big.0 as usize] += 1;
        }
        self.const_of[big.0 as usize] = const_new;
        if let Some(c) = const_new {
            self.node_of_const.insert(c, big);
        }
        Ok(big)
    }

    /// Rebuilds the canonical fact index after merges. Facts that become
    /// duplicates are coalesced; their provenance formulas are OR-ed (either
    /// derivation justifies the fact, cf. PACB's provenance semantics).
    pub fn rehash(&mut self) {
        let roots: Vec<Vec<NodeId>> =
            self.facts.iter().map(|f| f.args.iter().map(|&a| self.find(a)).collect()).collect();
        self.index.clear();
        let mut keep: Vec<bool> = vec![true; self.facts.len()];
        for (i, canon) in roots.iter().enumerate() {
            let key = (self.facts[i].pred, canon.clone());
            match self.index.entry(key) {
                Entry::Vacant(e) => {
                    e.insert(i);
                }
                Entry::Occupied(e) => {
                    let first = *e.get();
                    let prov = self.facts[i].prov.clone();
                    self.facts[first].prov.or_with(&prov);
                    keep[i] = false;
                }
            }
        }
        // Compact: drop duplicate facts, rewrite args to canonical roots.
        let mut new_facts = Vec::with_capacity(self.facts.len());
        for (i, mut f) in std::mem::take(&mut self.facts).into_iter().enumerate() {
            if keep[i] {
                f.args = roots[i].clone();
                new_facts.push(f);
            }
        }
        self.facts = new_facts;
        self.index.clear();
        self.by_pred.clear();
        for (i, f) in self.facts.iter().enumerate() {
            self.index.insert((f.pred, f.args.clone()), i);
            self.by_pred.entry(f.pred).or_default().push(i);
        }
    }

    /// Inserts a fact (args canonicalized). Returns `(fact index, inserted)`;
    /// when the fact already exists its provenance is OR-ed with `prov`.
    pub fn insert(
        &mut self,
        pred: PredId,
        args: Vec<NodeId>,
        prov: Provenance,
        rule: Option<usize>,
    ) -> (usize, bool) {
        let canon: Vec<NodeId> = args.iter().map(|&a| self.find(a)).collect();
        if let Some(&i) = self.index.get(&(pred, canon.clone())) {
            self.facts[i].prov.or_with(&prov);
            return (i, false);
        }
        let i = self.facts.len();
        self.index.insert((pred, canon.clone()), i);
        self.by_pred.entry(pred).or_default().push(i);
        self.facts.push(Fact { pred, args: canon, prov, rule });
        (i, true)
    }

    /// Inserts a ground atom whose terms must all be constants.
    pub fn insert_ground(&mut self, atom: &Atom, prov: Provenance) -> usize {
        let args: Vec<NodeId> = atom
            .args
            .iter()
            .map(|t| match t {
                Term::Const(c) => self.const_node(*c),
                Term::Var(_) => panic!("insert_ground on non-ground atom"),
            })
            .collect();
        self.insert(atom.pred, args, prov, None).0
    }

    pub fn facts(&self) -> &[Fact] {
        &self.facts
    }

    pub fn fact(&self, i: usize) -> &Fact {
        &self.facts[i]
    }

    pub fn num_facts(&self) -> usize {
        self.facts.len()
    }

    /// Indices of facts with the given predicate.
    pub fn facts_with_pred(&self, pred: PredId) -> &[usize] {
        self.by_pred.get(&pred).map_or(&[], |v| v.as_slice())
    }

    /// True when the instance contains a fact with these canonical args.
    pub fn contains(&self, pred: PredId, args: &[NodeId]) -> bool {
        let canon: Vec<NodeId> = args.iter().map(|&a| self.find(a)).collect();
        self.index.contains_key(&(pred, canon))
    }

    /// Renders all facts for debugging.
    pub fn display(&self, vocab: &Vocabulary) -> String {
        let mut lines: Vec<String> = self
            .facts
            .iter()
            .map(|f| {
                let args: Vec<String> = f
                    .args
                    .iter()
                    .map(|&a| {
                        let root = self.find(a);
                        match self.const_of(root) {
                            Some(c) => format!("{:?}", vocab.const_name(c)),
                            None => format!("_{}", root.0),
                        }
                    })
                    .collect();
                format!("{}({})", vocab.pred_name(f.pred), args.join(", "))
            })
            .collect();
        lines.sort();
        lines.join("\n")
    }

    /// The set of canonical nodes appearing in facts.
    pub fn active_nodes(&self) -> HashSet<NodeId> {
        self.facts.iter().flat_map(|f| f.args.iter().map(|&a| self.find(a))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_nodes_are_shared() {
        let mut inst = Instance::new();
        let a = inst.const_node(SymId(0));
        let b = inst.const_node(SymId(0));
        assert_eq!(a, b);
        let c = inst.const_node(SymId(1));
        assert_ne!(a, c);
    }

    #[test]
    fn merge_and_find() {
        let mut inst = Instance::new();
        let a = inst.fresh_null();
        let b = inst.fresh_null();
        let c = inst.fresh_null();
        inst.merge(a, b).unwrap();
        inst.merge(b, c).unwrap();
        assert_eq!(inst.find(a), inst.find(c));
    }

    #[test]
    fn merging_constant_with_null_keeps_constant() {
        let mut inst = Instance::new();
        let c = inst.const_node(SymId(3));
        let n = inst.fresh_null();
        inst.merge(n, c).unwrap();
        assert_eq!(inst.const_of(n), Some(SymId(3)));
    }

    #[test]
    fn distinct_constants_clash() {
        let mut inst = Instance::new();
        let a = inst.const_node(SymId(0));
        let b = inst.const_node(SymId(1));
        assert!(inst.merge(a, b).is_err());
    }

    #[test]
    fn insert_dedups_and_ors_provenance() {
        let mut inst = Instance::new();
        let a = inst.fresh_null();
        let (i1, fresh1) = inst.insert(PredId(0), vec![a], Provenance::term(0), None);
        let (i2, fresh2) = inst.insert(PredId(0), vec![a], Provenance::term(1), None);
        assert!(fresh1);
        assert!(!fresh2);
        assert_eq!(i1, i2);
        assert_eq!(inst.num_facts(), 1);
        assert_eq!(inst.fact(i1).prov.conjuncts().len(), 2);
    }

    #[test]
    fn rehash_coalesces_facts_after_merge() {
        let mut inst = Instance::new();
        let a = inst.fresh_null();
        let b = inst.fresh_null();
        inst.insert(PredId(0), vec![a], Provenance::empty(), None);
        inst.insert(PredId(0), vec![b], Provenance::empty(), None);
        assert_eq!(inst.num_facts(), 2);
        inst.merge(a, b).unwrap();
        inst.rehash();
        assert_eq!(inst.num_facts(), 1);
        assert!(inst.contains(PredId(0), &[a]));
        assert!(inst.contains(PredId(0), &[b]));
    }
}
