//! Canonical database instances.
//!
//! Elements are nodes in a union-find: constants (each constant symbol maps
//! to exactly one node) and labelled nulls (fresh existential witnesses
//! introduced by TGD chase steps). EGD applications merge nodes; the paper's
//! reading (§6.2.1) is that each node is an *equivalence class of
//! value-equal expressions* — the saturated instance is therefore an
//! e-graph over expression classes, which `hadad-core` exploits for
//! min-cost extraction.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

use crate::atom::Atom;
use crate::provenance::Provenance;
use crate::symbols::{PredId, SymId, Vocabulary};
use crate::term::Term;

/// Node in the instance's union-find.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// A ground fact over nodes, carrying its provenance formula and the name of
/// the rule that produced it (empty for input facts).
#[derive(Debug, Clone)]
pub struct Fact {
    /// The predicate symbol.
    pub pred: PredId,
    /// Argument nodes (canonical at last rehash).
    pub args: Vec<NodeId>,
    /// Provenance formula: which input conjuncts support the fact.
    pub prov: Provenance,
    /// Index (into the engine's rule list) of the producing rule, if any.
    pub rule: Option<usize>,
    /// Monotonic revision stamp: assigned on insertion and bumped by
    /// [`Instance::rehash`] whenever a merge rewrote the fact's canonical
    /// args (or attached a constant to one of its classes). Semi-naïve
    /// chase deltas are "facts with stamp above a rule's watermark".
    pub stamp: u64,
}

/// Canonical database: facts over union-find nodes.
#[derive(Debug, Clone)]
pub struct Instance {
    parent: Vec<u32>,
    rank: Vec<u8>,
    /// Constant symbol attached to a (root) node, if any.
    const_of: Vec<Option<SymId>>,
    node_of_const: HashMap<SymId, NodeId>,
    facts: Vec<Fact>,
    /// Canonical (pred, canonical args) -> fact index, for dedup.
    index: HashMap<(PredId, Vec<NodeId>), usize>,
    /// Per-predicate fact indices (not canonicalized; consult `find`).
    by_pred: HashMap<PredId, Vec<usize>>,
    /// (pred, arg position, canonical node) -> fact indices. Seeds
    /// homomorphism search with only the facts that can match a bound
    /// argument; valid only while `canonical` holds.
    pos_index: HashMap<(PredId, u32, NodeId), Vec<usize>>,
    /// Monotonic revision clock feeding fact stamps.
    clock: u64,
    /// False between a `merge` and the next `rehash`: positional-index
    /// keys may then name stale roots, so lookups fall back to scans.
    canonical: bool,
    /// Roots that gained a constant from a merge whose own facts were not
    /// rewritten; `rehash` must still re-stamp those facts (a constant
    /// premise atom can newly match them).
    const_dirty: Vec<NodeId>,
    /// Number of labelled nulls created so far (for budget accounting).
    nulls: usize,
}

/// Error: two distinct constants were equated by an EGD (the constraint set
/// is inconsistent with the instance).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstClash {
    /// First equated constant.
    pub a: SymId,
    /// Second, distinct, equated constant.
    pub b: SymId,
}

/// Error: [`Instance::insert_ground`] was handed an atom still carrying a
/// variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NonGroundAtom {
    /// The variable that made the atom non-ground.
    pub var: u32,
}

impl std::fmt::Display for NonGroundAtom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "insert_ground on non-ground atom (variable {})", self.var)
    }
}

impl std::error::Error for NonGroundAtom {}

impl Default for Instance {
    fn default() -> Self {
        Instance {
            parent: Vec::new(),
            rank: Vec::new(),
            const_of: Vec::new(),
            node_of_const: HashMap::new(),
            facts: Vec::new(),
            index: HashMap::new(),
            by_pred: HashMap::new(),
            pos_index: HashMap::new(),
            clock: 0,
            canonical: true,
            const_dirty: Vec::new(),
            nulls: 0,
        }
    }
}

impl Instance {
    /// An empty instance.
    pub fn new() -> Self {
        Self::default()
    }

    fn push_node(&mut self, c: Option<SymId>) -> NodeId {
        let id = NodeId(self.parent.len() as u32);
        self.parent.push(id.0);
        self.rank.push(0);
        self.const_of.push(c);
        id
    }

    /// Node for a constant (created on first use).
    pub fn const_node(&mut self, c: SymId) -> NodeId {
        if let Some(&n) = self.node_of_const.get(&c) {
            return self.find(n);
        }
        let n = self.push_node(Some(c));
        self.node_of_const.insert(c, n);
        n
    }

    /// Fresh labelled null.
    pub fn fresh_null(&mut self) -> NodeId {
        self.nulls += 1;
        self.push_node(None)
    }

    /// Number of labelled nulls created so far.
    pub fn num_nulls(&self) -> usize {
        self.nulls
    }

    /// Total node count (constants + nulls).
    pub fn num_nodes(&self) -> usize {
        self.parent.len()
    }

    /// Union-find root with path halving.
    pub fn find(&self, n: NodeId) -> NodeId {
        let mut x = n.0 as usize;
        while self.parent[x] as usize != x {
            x = self.parent[x] as usize;
        }
        NodeId(x as u32)
    }

    fn find_compress(&mut self, n: NodeId) -> NodeId {
        let mut x = n.0 as usize;
        while self.parent[x] as usize != x {
            let grand = self.parent[self.parent[x] as usize];
            self.parent[x] = grand;
            x = grand as usize;
        }
        NodeId(x as u32)
    }

    /// Constant attached to a node's class, if any.
    pub fn const_of(&self, n: NodeId) -> Option<SymId> {
        self.const_of[self.find(n).0 as usize]
    }

    /// Merges two classes. Fails if both carry distinct constants.
    pub fn merge(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, ConstClash> {
        let (ra, rb) = (self.find_compress(a), self.find_compress(b));
        if ra == rb {
            return Ok(ra);
        }
        let const_new = match (self.const_of[ra.0 as usize], self.const_of[rb.0 as usize]) {
            (Some(x), Some(y)) if x != y => return Err(ConstClash { a: x, b: y }),
            (Some(x), _) => Some(x),
            (_, y) => y,
        };
        let (big, small) = if self.rank[ra.0 as usize] >= self.rank[rb.0 as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small.0 as usize] = big.0;
        if self.rank[big.0 as usize] == self.rank[small.0 as usize] {
            self.rank[big.0 as usize] += 1;
        }
        // A constant attached to a previously constant-free winner makes
        // constant premise atoms match the winner's facts even though their
        // args are unchanged; remember it so `rehash` re-stamps them.
        if const_new.is_some() && self.const_of[big.0 as usize].is_none() {
            self.const_dirty.push(big);
        }
        self.const_of[big.0 as usize] = const_new;
        if let Some(c) = const_new {
            self.node_of_const.insert(c, big);
        }
        self.canonical = false;
        Ok(big)
    }

    /// Rebuilds the canonical fact index after merges. Facts that become
    /// duplicates are coalesced; their provenance formulas are OR-ed (either
    /// derivation justifies the fact, cf. PACB's provenance semantics).
    pub fn rehash(&mut self) {
        let roots: Vec<Vec<NodeId>> =
            self.facts.iter().map(|f| f.args.iter().map(|&a| self.find(a)).collect()).collect();
        let dirty_roots: HashSet<NodeId> =
            std::mem::take(&mut self.const_dirty).iter().map(|&n| self.find(n)).collect();
        self.index.clear();
        let mut keep: Vec<bool> = vec![true; self.facts.len()];
        for (i, canon) in roots.iter().enumerate() {
            let key = (self.facts[i].pred, canon.clone());
            match self.index.entry(key) {
                Entry::Vacant(e) => {
                    e.insert(i);
                }
                Entry::Occupied(e) => {
                    let first = *e.get();
                    let prov = self.facts[i].prov.clone();
                    self.facts[first].prov.or_with(&prov);
                    keep[i] = false;
                }
            }
        }
        // Compact: drop duplicate facts, rewrite args to canonical roots.
        // A fact whose canonical args changed (or whose classes gained a
        // constant) is re-stamped: it can participate in matches that did
        // not exist before the merge, so semi-naïve rules must revisit it.
        let mut new_facts = Vec::with_capacity(self.facts.len());
        for (i, mut f) in std::mem::take(&mut self.facts).into_iter().enumerate() {
            if keep[i] {
                if f.args != roots[i] || roots[i].iter().any(|a| dirty_roots.contains(a)) {
                    self.clock += 1;
                    f.stamp = self.clock;
                }
                f.args = roots[i].clone();
                new_facts.push(f);
            }
        }
        self.facts = new_facts;
        self.index.clear();
        self.by_pred.clear();
        self.pos_index.clear();
        for (i, f) in self.facts.iter().enumerate() {
            self.index.insert((f.pred, f.args.clone()), i);
            self.by_pred.entry(f.pred).or_default().push(i);
            for (p, &a) in f.args.iter().enumerate() {
                self.pos_index.entry((f.pred, p as u32, a)).or_default().push(i);
            }
        }
        // Restore the stamp-sorted invariant (re-stamping scrambles it):
        // delta slices are then suffix lookups, not full scans.
        for list in self.by_pred.values_mut() {
            list.sort_by_key(|&i| self.facts[i].stamp);
        }
        self.canonical = true;
    }

    /// Inserts a fact (args canonicalized). Returns `(fact index, inserted)`;
    /// when the fact already exists its provenance is OR-ed with `prov`.
    pub fn insert(
        &mut self,
        pred: PredId,
        args: Vec<NodeId>,
        prov: Provenance,
        rule: Option<usize>,
    ) -> (usize, bool) {
        let canon: Vec<NodeId> = args.iter().map(|&a| self.find(a)).collect();
        if let Some(&i) = self.index.get(&(pred, canon.clone())) {
            self.facts[i].prov.or_with(&prov);
            return (i, false);
        }
        let i = self.facts.len();
        self.index.insert((pred, canon.clone()), i);
        self.by_pred.entry(pred).or_default().push(i);
        for (p, &a) in canon.iter().enumerate() {
            self.pos_index.entry((pred, p as u32, a)).or_default().push(i);
        }
        self.clock += 1;
        self.facts.push(Fact { pred, args: canon, prov, rule, stamp: self.clock });
        (i, true)
    }

    /// Inserts a ground atom whose terms must all be constants. A variable
    /// anywhere in the atom is a caller error reported as [`NonGroundAtom`]
    /// — bad input must not be able to crash the engine.
    pub fn insert_ground(
        &mut self,
        atom: &Atom,
        prov: Provenance,
    ) -> Result<usize, NonGroundAtom> {
        let args: Vec<NodeId> = atom
            .args
            .iter()
            .map(|t| match t {
                Term::Const(c) => Ok(self.const_node(*c)),
                Term::Var(v) => Err(NonGroundAtom { var: *v }),
            })
            .collect::<Result<_, _>>()?;
        Ok(self.insert(atom.pred, args, prov, None).0)
    }

    /// All facts, in insertion order (including merged-away duplicates).
    pub fn facts(&self) -> &[Fact] {
        &self.facts
    }

    /// The fact at index `i`.
    pub fn fact(&self, i: usize) -> &Fact {
        &self.facts[i]
    }

    /// Number of stored facts.
    pub fn num_facts(&self) -> usize {
        self.facts.len()
    }

    /// Indices of facts with the given predicate, sorted by stamp.
    pub fn facts_with_pred(&self, pred: PredId) -> &[usize] {
        self.by_pred.get(&pred).map_or(&[], |v| v.as_slice())
    }

    /// Suffix of [`Self::facts_with_pred`] with stamps above `watermark`
    /// (the predicate's delta). O(log n) thanks to the stamp-sorted
    /// per-predicate lists.
    pub fn facts_with_pred_since(&self, pred: PredId, watermark: u64) -> &[usize] {
        let list = self.facts_with_pred(pred);
        let cut = list.partition_point(|&i| self.facts[i].stamp <= watermark);
        &list[cut..]
    }

    /// Prefix of [`Self::facts_with_pred`] with stamps at or below
    /// `watermark` (the predicate's pre-delta facts).
    pub fn facts_with_pred_until(&self, pred: PredId, watermark: u64) -> &[usize] {
        let list = self.facts_with_pred(pred);
        let cut = list.partition_point(|&i| self.facts[i].stamp <= watermark);
        &list[..cut]
    }

    /// Indices of facts whose `pos`-th argument lies in `node`'s class,
    /// served from the positional index. Returns `None` while the instance
    /// is non-canonical (merges pending a `rehash`), in which case callers
    /// must fall back to [`Self::facts_with_pred`].
    pub fn facts_with_pred_arg(
        &self,
        pred: PredId,
        pos: u32,
        node: NodeId,
    ) -> Option<&[usize]> {
        if !self.canonical {
            return None;
        }
        Some(self.pos_index.get(&(pred, pos, node)).map_or(&[], |v| v.as_slice()))
    }

    /// True when no merge is pending a `rehash` (all indexed keys name
    /// current union-find roots).
    pub fn is_canonical(&self) -> bool {
        self.canonical
    }

    /// Current revision clock: the stamp of the most recently inserted or
    /// re-stamped fact. Semi-naïve watermarks snapshot this.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Number of facts stamped after `watermark` (the delta frontier size).
    pub fn delta_size(&self, watermark: u64) -> usize {
        self.facts.iter().filter(|f| f.stamp > watermark).count()
    }

    /// Node carrying a constant, if the constant was ever interned into the
    /// instance (read-only counterpart of [`Self::const_node`]).
    pub fn node_of_const(&self, c: SymId) -> Option<NodeId> {
        self.node_of_const.get(&c).map(|&n| self.find(n))
    }

    /// True when the instance contains a fact with these canonical args.
    pub fn contains(&self, pred: PredId, args: &[NodeId]) -> bool {
        let canon: Vec<NodeId> = args.iter().map(|&a| self.find(a)).collect();
        self.index.contains_key(&(pred, canon))
    }

    /// Renders all facts for debugging.
    pub fn display(&self, vocab: &Vocabulary) -> String {
        let mut lines: Vec<String> = self
            .facts
            .iter()
            .map(|f| {
                let args: Vec<String> = f
                    .args
                    .iter()
                    .map(|&a| {
                        let root = self.find(a);
                        match self.const_of(root) {
                            Some(c) => format!("{:?}", vocab.const_name(c)),
                            None => format!("_{}", root.0),
                        }
                    })
                    .collect();
                format!("{}({})", vocab.pred_name(f.pred), args.join(", "))
            })
            .collect();
        lines.sort();
        lines.join("\n")
    }

    /// The set of canonical nodes appearing in facts.
    pub fn active_nodes(&self) -> HashSet<NodeId> {
        self.facts.iter().flat_map(|f| f.args.iter().map(|&a| self.find(a))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_nodes_are_shared() {
        let mut inst = Instance::new();
        let a = inst.const_node(SymId(0));
        let b = inst.const_node(SymId(0));
        assert_eq!(a, b);
        let c = inst.const_node(SymId(1));
        assert_ne!(a, c);
    }

    #[test]
    fn merge_and_find() {
        let mut inst = Instance::new();
        let a = inst.fresh_null();
        let b = inst.fresh_null();
        let c = inst.fresh_null();
        inst.merge(a, b).unwrap();
        inst.merge(b, c).unwrap();
        assert_eq!(inst.find(a), inst.find(c));
    }

    #[test]
    fn merging_constant_with_null_keeps_constant() {
        let mut inst = Instance::new();
        let c = inst.const_node(SymId(3));
        let n = inst.fresh_null();
        inst.merge(n, c).unwrap();
        assert_eq!(inst.const_of(n), Some(SymId(3)));
    }

    #[test]
    fn distinct_constants_clash() {
        let mut inst = Instance::new();
        let a = inst.const_node(SymId(0));
        let b = inst.const_node(SymId(1));
        assert!(inst.merge(a, b).is_err());
    }

    #[test]
    fn insert_dedups_and_ors_provenance() {
        let mut inst = Instance::new();
        let a = inst.fresh_null();
        let (i1, fresh1) = inst.insert(PredId(0), vec![a], Provenance::term(0), None);
        let (i2, fresh2) = inst.insert(PredId(0), vec![a], Provenance::term(1), None);
        assert!(fresh1);
        assert!(!fresh2);
        assert_eq!(i1, i2);
        assert_eq!(inst.num_facts(), 1);
        assert_eq!(inst.fact(i1).prov.conjuncts().len(), 2);
    }

    #[test]
    fn positional_index_tracks_inserts_and_rehash() {
        let mut inst = Instance::new();
        let a = inst.fresh_null();
        let b = inst.fresh_null();
        let c = inst.fresh_null();
        inst.insert(PredId(0), vec![a, b], Provenance::empty(), None);
        inst.insert(PredId(0), vec![c, b], Provenance::empty(), None);
        assert_eq!(inst.facts_with_pred_arg(PredId(0), 0, a), Some(&[0usize][..]));
        assert_eq!(inst.facts_with_pred_arg(PredId(0), 1, b).unwrap().len(), 2);
        assert!(inst.is_canonical());
        inst.merge(a, c).unwrap();
        assert!(!inst.is_canonical());
        assert_eq!(inst.facts_with_pred_arg(PredId(0), 0, a), None, "stale index refused");
        inst.rehash();
        assert!(inst.is_canonical());
        let root = inst.find(a);
        assert_eq!(inst.facts_with_pred_arg(PredId(0), 0, root).unwrap().len(), 1);
    }

    #[test]
    fn rehash_restamps_rewritten_facts_only() {
        let mut inst = Instance::new();
        let a = inst.fresh_null();
        let b = inst.fresh_null();
        let c = inst.fresh_null();
        let (i_ab, _) = inst.insert(PredId(0), vec![a], Provenance::empty(), None);
        let (i_c, _) = inst.insert(PredId(1), vec![c], Provenance::empty(), None);
        let clock_before = inst.clock();
        assert_eq!(inst.delta_size(0), 2);
        assert_eq!(inst.delta_size(clock_before), 0);
        inst.merge(a, b).unwrap();
        inst.rehash();
        // `a` was the rank-equal merge target; whichever root won, the fact
        // over `a`'s class is rewritten or untouched, the fact over `c`
        // must keep its stamp.
        assert!(inst.fact(i_c).stamp <= clock_before);
        // A merge that rewrites args re-stamps the rewritten fact only:
        // merging `c` into `a`'s (higher-rank) class rewrites the P1 fact.
        let before = inst.clock();
        inst.merge(c, a).unwrap();
        inst.rehash();
        assert_eq!(inst.delta_size(before), 1, "only the fact over c's class is rewritten");
        assert!(inst.fact(i_ab).stamp <= before);
    }

    #[test]
    fn node_of_const_is_read_only_lookup() {
        let mut inst = Instance::new();
        assert_eq!(inst.node_of_const(SymId(7)), None);
        let n = inst.const_node(SymId(7));
        assert_eq!(inst.node_of_const(SymId(7)), Some(n));
    }

    #[test]
    fn rehash_coalesces_facts_after_merge() {
        let mut inst = Instance::new();
        let a = inst.fresh_null();
        let b = inst.fresh_null();
        inst.insert(PredId(0), vec![a], Provenance::empty(), None);
        inst.insert(PredId(0), vec![b], Provenance::empty(), None);
        assert_eq!(inst.num_facts(), 2);
        inst.merge(a, b).unwrap();
        inst.rehash();
        assert_eq!(inst.num_facts(), 1);
        assert!(inst.contains(PredId(0), &[a]));
        assert!(inst.contains(PredId(0), &[b]));
    }
}
