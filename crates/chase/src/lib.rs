//! Relational constraint framework: conjunctive queries, integrity
//! constraints (TGDs / EGDs), the (bounded, restricted) chase, and the
//! Provenance-Aware Chase & Backchase (PACB) of Ileana et al. [32], the
//! rewriting engine HADAD builds on (paper §4–§5).
//!
//! The crate is domain-agnostic: `hadad-core` instantiates it with the VREM
//! schema and the MMC constraint catalogue to rewrite linear-algebra
//! expressions; the hybrid experiments instantiate it with table schemas to
//! rewrite relational preprocessing queries using materialized views.
//!
//! # Vocabulary
//!
//! * [`Term`]: variable or constant (interned symbols).
//! * [`Atom`]: predicate applied to terms; [`Cq`]: conjunctive query.
//! * [`Tgd`] / [`Egd`]: tuple- and equality-generating dependencies.
//! * [`Instance`]: a canonical database whose elements live in a union-find
//!   (labelled nulls + constants), supporting homomorphism enumeration.
//! * [`chase::ChaseEngine`]: bounded restricted chase with cost-pruning
//!   hooks (the paper's `Prune_prov`, §7.3).
//! * [`pacb::Pacb`]: view-based reformulation via Chase & Backchase with
//!   provenance formulas (paper §4.2, Example 4.1).

pub mod atom;
pub mod chase;
pub mod constraint;
pub mod cq;
pub mod homomorphism;
pub mod instance;
pub mod pacb;
pub mod provenance;
pub mod symbols;
pub mod term;

pub use atom::Atom;
pub use chase::{
    degradation_of, functional_sig, ChaseBudget, ChaseEngine, ChaseOutcome, ChaseStats,
    CostOracle, CostPruner, DegradeReason, Degraded, EvalMode, ExhaustedBy, FunctionalSig,
    NoPrune, Pruner, RewritePhase,
};
pub use constraint::{Constraint, Egd, Tgd};
pub use cq::Cq;
pub use homomorphism::Match;
pub use instance::{ConstClash, Instance, NodeId, NonGroundAtom};
pub use pacb::{CostFn, Pacb, PacbOptions, PacbResult, Rewriting, View};
pub use provenance::Provenance;
pub use symbols::{PredId, SymId, Vocabulary};
pub use term::Term;
