//! String interning for predicates and constants.
//!
//! The chase manipulates many copies of the same names (`multiM`, `"M.csv"`,
//! size constants); interning keeps atoms as small integer tuples so
//! homomorphism search stays allocation-free on the hot path.

use std::collections::HashMap;

/// Interned constant symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymId(pub u32);

/// Interned predicate name (carries an arity in the [`Vocabulary`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredId(pub u32);

/// Two-way interner for constants and predicates.
#[derive(Debug, Default, Clone)]
pub struct Vocabulary {
    consts: Vec<String>,
    const_ids: HashMap<String, SymId>,
    preds: Vec<(String, usize)>,
    pred_ids: HashMap<String, PredId>,
}

impl Vocabulary {
    /// An empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a constant.
    pub fn constant(&mut self, name: impl AsRef<str>) -> SymId {
        let name = name.as_ref();
        if let Some(&id) = self.const_ids.get(name) {
            return id;
        }
        let id = SymId(self.consts.len() as u32);
        self.consts.push(name.to_owned());
        self.const_ids.insert(name.to_owned(), id);
        id
    }

    /// Interns an integer constant (canonical decimal form).
    pub fn int(&mut self, v: i64) -> SymId {
        self.constant(v.to_string())
    }

    /// Declares (or retrieves) a predicate with the given arity.
    /// Panics if re-declared with a different arity.
    pub fn predicate(&mut self, name: impl AsRef<str>, arity: usize) -> PredId {
        let name = name.as_ref();
        if let Some(&id) = self.pred_ids.get(name) {
            assert_eq!(
                self.preds[id.0 as usize].1, arity,
                "predicate {name} re-declared with different arity"
            );
            return id;
        }
        let id = PredId(self.preds.len() as u32);
        self.preds.push((name.to_owned(), arity));
        self.pred_ids.insert(name.to_owned(), id);
        id
    }

    /// Looks up a predicate without declaring it.
    pub fn find_predicate(&self, name: &str) -> Option<PredId> {
        self.pred_ids.get(name).copied()
    }

    /// The name a constant was interned under.
    pub fn const_name(&self, id: SymId) -> &str {
        &self.consts[id.0 as usize]
    }

    /// The name a predicate was interned under.
    pub fn pred_name(&self, id: PredId) -> &str {
        &self.preds[id.0 as usize].0
    }

    /// The declared arity of a predicate.
    pub fn pred_arity(&self, id: PredId) -> usize {
        self.preds[id.0 as usize].1
    }

    /// Number of interned predicates.
    pub fn num_preds(&self) -> usize {
        self.preds.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.constant("M.csv");
        let b = v.constant("M.csv");
        assert_eq!(a, b);
        assert_eq!(v.const_name(a), "M.csv");
    }

    #[test]
    fn predicates_carry_arity() {
        let mut v = Vocabulary::new();
        let p = v.predicate("multiM", 3);
        assert_eq!(v.pred_arity(p), 3);
        assert_eq!(v.pred_name(p), "multiM");
        assert_eq!(v.find_predicate("multiM"), Some(p));
        assert_eq!(v.find_predicate("nope"), None);
    }

    #[test]
    #[should_panic(expected = "different arity")]
    fn arity_conflict_panics() {
        let mut v = Vocabulary::new();
        v.predicate("p", 2);
        v.predicate("p", 3);
    }

    #[test]
    fn int_constants_are_canonical() {
        let mut v = Vocabulary::new();
        assert_eq!(v.int(100), v.constant("100"));
    }
}
