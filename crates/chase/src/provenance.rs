//! Provenance formulas for the backchase (paper §4.2).
//!
//! Each atom of the universal plan gets a unique provenance *term*
//! `p_i`; atoms produced during the backchase carry provenance *formulas*
//! built with conjunction and disjunction. We keep formulas in DNF: a set
//! of conjuncts, each a bitmask over the (≤ 128) universal-plan atoms.
//! Absorption (`c1 ⊆ c2` makes `c2` redundant) keeps the DNF minimal, which
//! is exactly what makes the read-off rewritings *minimal* in PACB.

/// Maximum number of provenance terms (universal-plan atoms) supported.
pub const MAX_PROV_TERMS: usize = 128;

/// A conjunct: set of provenance terms, as a bitmask.
pub type Conjunct = u128;

/// DNF provenance formula. The empty formula (`⊥`, no conjuncts) annotates
/// facts with no universal-plan justification; the formula with one empty
/// conjunct (`⊤`) annotates unconditional facts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Provenance {
    conjuncts: Vec<Conjunct>,
}

impl Provenance {
    /// `⊥` — no justification (input facts of the initial chase).
    pub fn empty() -> Self {
        Provenance { conjuncts: vec![] }
    }

    /// `⊤` — a single empty conjunct (fact holds unconditionally).
    pub fn top() -> Self {
        Provenance { conjuncts: vec![0] }
    }

    /// Single provenance term `p_i`.
    pub fn term(i: usize) -> Self {
        assert!(i < MAX_PROV_TERMS, "provenance term index {i} out of range");
        Provenance { conjuncts: vec![1u128 << i] }
    }

    /// `true` for the empty formula (an input fact).
    pub fn is_empty(&self) -> bool {
        self.conjuncts.is_empty()
    }

    /// The supporting conjuncts.
    pub fn conjuncts(&self) -> &[Conjunct] {
        &self.conjuncts
    }

    /// Disjunction with another formula (in place), with absorption.
    pub fn or_with(&mut self, other: &Provenance) {
        for &c in &other.conjuncts {
            self.add_conjunct(c);
        }
    }

    fn add_conjunct(&mut self, c: Conjunct) {
        // Absorption: drop c if some existing conjunct is a subset of it;
        // drop existing conjuncts that are supersets of c.
        // (`e & c == e` is a bitset-subset test, not a containment check —
        // clippy's `manual_contains` suggestion would change semantics.)
        #[allow(clippy::manual_contains)]
        if self.conjuncts.iter().any(|&e| e & c == e) {
            return;
        }
        self.conjuncts.retain(|&e| c & e != c);
        self.conjuncts.push(c);
    }

    /// Conjunction of two formulas: DNF product.
    pub fn and(&self, other: &Provenance) -> Provenance {
        let mut out = Provenance::empty();
        for &a in &self.conjuncts {
            for &b in &other.conjuncts {
                out.add_conjunct(a | b);
            }
        }
        out
    }

    /// Conjunction over many formulas; `⊤` if the slice is empty.
    pub fn and_all(formulas: &[&Provenance]) -> Provenance {
        let mut acc = Provenance::top();
        for f in formulas {
            acc = acc.and(f);
            if acc.is_empty() {
                break;
            }
        }
        acc
    }

    /// The terms set in a conjunct, as indices.
    pub fn conjunct_terms(c: Conjunct) -> Vec<usize> {
        (0..MAX_PROV_TERMS).filter(|&i| c & (1u128 << i) != 0).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_formula() {
        let p = Provenance::term(3);
        assert_eq!(p.conjuncts(), &[8u128]);
    }

    #[test]
    fn or_absorbs_supersets() {
        let mut p = Provenance::term(0); // {p0}
        p.or_with(&Provenance { conjuncts: vec![0b11] }); // {p0, p1} absorbed by {p0}
        assert_eq!(p.conjuncts(), &[1u128]);

        let mut q = Provenance { conjuncts: vec![0b11] };
        q.or_with(&Provenance::term(0)); // {p0} absorbs {p0,p1}
        assert_eq!(q.conjuncts(), &[1u128]);
    }

    #[test]
    fn and_is_dnf_product() {
        let a = Provenance { conjuncts: vec![0b01, 0b10] }; // p0 ∨ p1
        let b = Provenance::term(2); // p2
        let c = a.and(&b); // (p0∧p2) ∨ (p1∧p2)
        assert_eq!(c.conjuncts().len(), 2);
        assert!(c.conjuncts().contains(&0b101));
        assert!(c.conjuncts().contains(&0b110));
    }

    #[test]
    fn and_with_bottom_is_bottom() {
        let a = Provenance::term(0);
        let bot = Provenance::empty();
        assert!(a.and(&bot).is_empty());
    }

    #[test]
    fn and_all_of_empty_slice_is_top() {
        let t = Provenance::and_all(&[]);
        assert_eq!(t, Provenance::top());
    }

    #[test]
    fn conjunct_terms_roundtrip() {
        let c: Conjunct = (1 << 5) | (1 << 9);
        assert_eq!(Provenance::conjunct_terms(c), vec![5, 9]);
    }
}
