//! Integrity constraints: Tuple-Generating and Equality-Generating
//! Dependencies (paper §4.1).
//!
//! A TGD `∀x̄ φ(x̄) → ∃z̄ ψ(x̄, z̄)` has a premise conjunction and a
//! conclusion conjunction; conclusion variables not bound by the premise are
//! existential. An EGD `∀x̄ φ(x̄) → w = w'` forces term equalities.

use crate::atom::Atom;
use crate::symbols::Vocabulary;
use crate::term::Term;

/// Tuple-generating dependency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tgd {
    /// Human-readable tag (e.g. `"mult-assoc"`, `"V_IO:V1"`) used by tests,
    /// traces, and the per-rule statistics of the optimizer.
    pub name: String,
    /// Premise conjunction (the body matched against the instance).
    pub premise: Vec<Atom>,
    /// Conclusion conjunction (facts asserted on each match).
    pub conclusion: Vec<Atom>,
}

impl Tgd {
    /// A TGD `premise → conclusion` named `name`.
    pub fn new(name: impl Into<String>, premise: Vec<Atom>, conclusion: Vec<Atom>) -> Self {
        Tgd { name: name.into(), premise, conclusion }
    }

    /// Variables that occur in the conclusion but not in the premise: the
    /// existentially quantified ones, instantiated as fresh labelled nulls
    /// by the chase.
    pub fn existential_vars(&self) -> Vec<u32> {
        let premise_vars: std::collections::HashSet<u32> =
            self.premise.iter().flat_map(super::atom::Atom::vars).collect();
        let mut out = Vec::new();
        for a in &self.conclusion {
            for v in a.vars() {
                if !premise_vars.contains(&v) && !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Renders `[name] premise → conclusion` for debugging.
    pub fn display(&self, vocab: &Vocabulary) -> String {
        let p: Vec<String> = self.premise.iter().map(|a| a.display(vocab)).collect();
        let c: Vec<String> = self.conclusion.iter().map(|a| a.display(vocab)).collect();
        format!("[{}] {} → {}", self.name, p.join(" ∧ "), c.join(" ∧ "))
    }
}

/// Equality-generating dependency: premise plus pairs of terms to equate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Egd {
    /// Human-readable tag, as for [`Tgd::name`].
    pub name: String,
    /// Premise conjunction.
    pub premise: Vec<Atom>,
    /// Conjunction of equalities `w = w'` over premise variables/constants.
    pub equalities: Vec<(Term, Term)>,
}

impl Egd {
    /// An EGD `premise → equalities` named `name`.
    pub fn new(
        name: impl Into<String>,
        premise: Vec<Atom>,
        equalities: Vec<(Term, Term)>,
    ) -> Self {
        Egd { name: name.into(), premise, equalities }
    }

    /// The common EGD shape "P is functional in its last argument": two
    /// atoms agreeing on the first `arity-1` arguments force equal outputs.
    /// This is how HADAD states that `multiM`, `tr`, `invM`, ... denote
    /// operations (paper §6.2.3, constraint `I_multiM`).
    pub fn functional(
        name: impl Into<String>,
        pred: crate::symbols::PredId,
        arity: usize,
    ) -> Self {
        assert!(arity >= 1);
        let key_len = arity - 1;
        let a1: Vec<Term> = (0..arity as u32).map(Term::Var).collect();
        let a2: Vec<Term> = (0..arity as u32)
            .map(
                |i| if (i as usize) < key_len { Term::Var(i) } else { Term::Var(arity as u32) },
            )
            .collect();
        Egd {
            name: name.into(),
            premise: vec![Atom::new(pred, a1), Atom::new(pred, a2)],
            equalities: vec![(Term::Var(key_len as u32), Term::Var(arity as u32))],
        }
    }
}

/// Either kind of dependency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Constraint {
    /// A tuple-generating dependency.
    Tgd(Tgd),
    /// An equality-generating dependency.
    Egd(Egd),
}

impl Constraint {
    /// The rule's name, whichever kind it is.
    pub fn name(&self) -> &str {
        match self {
            Constraint::Tgd(t) => &t.name,
            Constraint::Egd(e) => &e.name,
        }
    }
}

impl From<Tgd> for Constraint {
    fn from(t: Tgd) -> Self {
        Constraint::Tgd(t)
    }
}

impl From<Egd> for Constraint {
    fn from(e: Egd) -> Self {
        Constraint::Egd(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::PredId;

    fn atom(pred: u32, vars: &[u32]) -> Atom {
        Atom::new(PredId(pred), vars.iter().map(|&v| Term::Var(v)).collect())
    }

    #[test]
    fn existential_vars_excludes_premise_vars() {
        // p(0,1) -> q(1,2) ∧ r(2,3): existentials are {2, 3}.
        let t = Tgd::new("t", vec![atom(0, &[0, 1])], vec![atom(1, &[1, 2]), atom(2, &[2, 3])]);
        assert_eq!(t.existential_vars(), vec![2, 3]);
    }

    #[test]
    fn functional_egd_shape() {
        let e = Egd::functional("f", PredId(5), 3);
        assert_eq!(e.premise.len(), 2);
        assert_eq!(e.premise[0].args, vec![Term::Var(0), Term::Var(1), Term::Var(2)]);
        assert_eq!(e.premise[1].args, vec![Term::Var(0), Term::Var(1), Term::Var(3)]);
        assert_eq!(e.equalities, vec![(Term::Var(2), Term::Var(3))]);
    }
}
