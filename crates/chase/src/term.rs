//! Terms: variables and interned constants.

use crate::symbols::SymId;

/// A term in an atom: a (query- or constraint-scoped) variable, or a
/// constant symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// Variable, identified by an index local to its query/constraint.
    Var(u32),
    /// Interned constant.
    Const(SymId),
}

impl Term {
    /// `true` for a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// The variable index, if this is a variable.
    pub fn as_var(&self) -> Option<u32> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }

    /// The constant symbol, if this is a constant.
    pub fn as_const(&self) -> Option<SymId> {
        match self {
            Term::Var(_) => None,
            Term::Const(c) => Some(*c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let v = Term::Var(3);
        let c = Term::Const(SymId(7));
        assert!(v.is_var());
        assert!(!c.is_var());
        assert_eq!(v.as_var(), Some(3));
        assert_eq!(c.as_const(), Some(SymId(7)));
        assert_eq!(v.as_const(), None);
        assert_eq!(c.as_var(), None);
    }
}
