//! Provenance-Aware Chase & Backchase (PACB, paper §4.2), with the
//! `Prune_prov` cost-threshold extension of §7.3.
//!
//! Given a conjunctive query `Q` over a source schema, integrity
//! constraints `I`, and a set of views `V` (CQs with distinguished head
//! predicates), PACB finds the reformulations of `Q` over the view schema
//! that are equivalent to `Q` under `I ∪ C_V`:
//!
//! 1. chase the canonical instance of `Q` with `I ∪ C_V^IO`;
//! 2. restrict to view atoms — the *universal plan* `U`;
//! 3. annotate each `U`-atom with a provenance term `p_i`;
//! 4. *backchase*: chase `U` with `I ∪ C_V^OI`, combining provenance
//!    conjunctively across each step (skipping steps whose premise image
//!    exceeds the cost threshold, when pruning is enabled);
//! 5. match `Q` into the result; each conjunct of the DNF provenance of a
//!    match image is a subset of `U` that forms an equivalent rewriting.

use std::collections::HashMap;

use crate::atom::Atom;
use crate::chase::{ChaseBudget, ChaseEngine, ChaseOutcome, Pruner};
use crate::constraint::{Constraint, Tgd};
use crate::cq::Cq;
use crate::homomorphism::{self, Match};
use crate::instance::{Instance, NodeId};
use crate::provenance::{Provenance, MAX_PROV_TERMS};
use crate::symbols::PredId;
use crate::term::Term;

/// A view: a named CQ whose result is materialized under `head_pred`.
#[derive(Debug, Clone)]
pub struct View {
    pub name: String,
    /// Predicate (over the view schema) holding the materialized output.
    pub head_pred: PredId,
    pub def: Cq,
}

impl View {
    pub fn new(name: impl Into<String>, head_pred: PredId, def: Cq) -> Self {
        View { name: name.into(), head_pred, def }
    }

    /// `V_IO`: every match of the view body yields a view output tuple.
    pub fn io_constraint(&self) -> Tgd {
        Tgd::new(
            format!("V_IO:{}", self.name),
            self.def.body.clone(),
            vec![Atom::new(
                self.head_pred,
                self.def.head.iter().map(|&v| Term::Var(v)).collect(),
            )],
        )
    }

    /// `V_OI`: every view output tuple is due to a body match.
    pub fn oi_constraint(&self) -> Tgd {
        Tgd::new(
            format!("V_OI:{}", self.name),
            vec![Atom::new(
                self.head_pred,
                self.def.head.iter().map(|&v| Term::Var(v)).collect(),
            )],
            self.def.body.clone(),
        )
    }
}

/// Options for a PACB run.
#[derive(Debug, Clone, Default)]
pub struct PacbOptions {
    pub budget: ChaseBudget,
    /// When set, backchase steps whose premise image (a subquery of `U`)
    /// costs strictly more than this threshold are pruned (`Prune_prov`).
    pub prune_threshold: Option<f64>,
}

/// An equivalent rewriting of the input query over the view schema.
#[derive(Debug, Clone)]
pub struct Rewriting {
    /// The rewriting as a CQ over view predicates.
    pub query: Cq,
    /// Indices (into the universal plan) of the atoms used.
    pub u_atoms: Vec<usize>,
    /// Cost under the caller-supplied cost function, if any.
    pub cost: Option<f64>,
}

/// Cost of a candidate rewriting given the universal-plan atoms it uses.
pub type CostFn<'a> = &'a dyn Fn(&Instance, &[usize]) -> f64;

/// The PACB engine.
pub struct Pacb<'a> {
    /// Source integrity constraints `I`.
    pub constraints: &'a [Constraint],
    pub views: &'a [View],
    pub options: PacbOptions,
    /// Cost of a candidate rewriting, given the universal-plan atoms it
    /// uses. Required when `prune_threshold` is set; also used to attach
    /// costs to results.
    pub cost_fn: Option<CostFn<'a>>,
}

struct BackchasePruner<'b> {
    threshold: f64,
    cost_fn: CostFn<'b>,
    pruned: usize,
}

impl Pruner for BackchasePruner<'_> {
    fn allow_firing(&mut self, inst: &Instance, _idx: usize, _tgd: &Tgd, m: &Match) -> bool {
        // Provenance conjunct of the premise image (Example 7.2): if every
        // conjunct of the combined premise provenance costs above the
        // threshold, the step cannot contribute to a minimum-cost rewriting.
        let provs: Vec<&Provenance> =
            m.fact_indices.iter().map(|&fi| &inst.fact(fi).prov).collect();
        let combined = Provenance::and_all(&provs);
        if combined.is_empty() {
            return true; // no universal-plan justification — not prunable
        }
        let viable = combined.conjuncts().iter().any(|&c| {
            let atoms = Provenance::conjunct_terms(c);
            (self.cost_fn)(inst, &atoms) <= self.threshold
        });
        if !viable {
            self.pruned += 1;
        }
        viable
    }
}

/// Result of a PACB run.
#[derive(Debug)]
pub struct PacbResult {
    pub rewritings: Vec<Rewriting>,
    pub chase_outcome: ChaseOutcome,
    pub backchase_outcome: ChaseOutcome,
    /// Number of universal-plan atoms.
    pub universal_plan_size: usize,
}

impl<'a> Pacb<'a> {
    pub fn new(constraints: &'a [Constraint], views: &'a [View]) -> Self {
        Pacb { constraints, views, options: PacbOptions::default(), cost_fn: None }
    }

    pub fn with_options(mut self, options: PacbOptions) -> Self {
        self.options = options;
        self
    }

    pub fn with_cost_fn(mut self, f: CostFn<'a>) -> Self {
        self.cost_fn = Some(f);
        self
    }

    /// Finds every reformulation of `q` over the view predicates that is
    /// equivalent under the constraints (paper Example 4.1 end-to-end).
    pub fn rewrite(&self, q: &Cq) -> PacbResult {
        // Phase (i): canonical instance of Q, chased with I ∪ C_IO.
        let mut inst = Instance::new();
        let mut var_node: HashMap<u32, NodeId> = HashMap::new();
        for atom in &q.body {
            let args: Vec<NodeId> = atom
                .args
                .iter()
                .map(|t| match t {
                    Term::Var(v) => *var_node.entry(*v).or_insert_with(|| inst.fresh_null()),
                    Term::Const(c) => inst.const_node(*c),
                })
                .collect();
            inst.insert(atom.pred, args, Provenance::empty(), None);
        }
        let head_nodes: Vec<NodeId> = q
            .head
            .iter()
            .map(|v| *var_node.entry(*v).or_insert_with(|| inst.fresh_null()))
            .collect();

        let mut io_constraints: Vec<Constraint> = self.constraints.to_vec();
        for v in self.views {
            io_constraints.push(v.io_constraint().into());
        }
        let engine = ChaseEngine::new(io_constraints).with_budget(self.options.budget);
        let (chase_outcome, _) = engine.chase(&mut inst);

        // Phase (ii)+(iii): universal plan = view atoms, each with a fresh
        // provenance term, rebuilt in a fresh instance.
        let view_preds: Vec<PredId> = self.views.iter().map(|v| v.head_pred).collect();
        let mut u = Instance::new();
        let mut node_map: HashMap<NodeId, NodeId> = HashMap::new();
        let mut u_atoms: Vec<(PredId, Vec<NodeId>)> = Vec::new();
        for &vp in &view_preds {
            for &fi in inst.facts_with_pred(vp) {
                if u_atoms.len() >= MAX_PROV_TERMS {
                    break;
                }
                let fact = inst.fact(fi);
                let args: Vec<NodeId> = fact
                    .args
                    .iter()
                    .map(|&n| {
                        let root = inst.find(n);
                        *node_map.entry(root).or_insert_with(|| match inst.const_of(root) {
                            Some(c) => u.const_node(c),
                            None => u.fresh_null(),
                        })
                    })
                    .collect();
                let term = Provenance::term(u_atoms.len());
                u.insert(vp, args.clone(), term, None);
                u_atoms.push((vp, args));
            }
        }
        let universal_plan_size = u_atoms.len();
        let head_in_u: Vec<Option<NodeId>> =
            head_nodes.iter().map(|n| node_map.get(&inst.find(*n)).copied()).collect();

        // Phase (iv): backchase U with I ∪ C_OI (provenance-propagating).
        let mut oi_constraints: Vec<Constraint> = self.constraints.to_vec();
        for v in self.views {
            oi_constraints.push(v.oi_constraint().into());
        }
        let back_engine = ChaseEngine::new(oi_constraints).with_budget(self.options.budget);
        let backchase_outcome = match (self.options.prune_threshold, self.cost_fn) {
            (Some(t), Some(f)) => {
                let mut pruner = BackchasePruner { threshold: t, cost_fn: f, pruned: 0 };
                back_engine.chase_with(&mut u, &mut pruner).0
            }
            _ => back_engine.chase(&mut u).0,
        };

        // Phase (v): match Q into the backchase result; read rewritings off
        // the provenance formulas of the match images.
        let mut rewriting_masks: Provenance = Provenance::empty();
        homomorphism::for_each_match(&u, &q.body, &mut |m| {
            // Head compatibility: h(head of Q) must equal the universal
            // plan's head nodes.
            let compatible = q.head.iter().zip(&head_in_u).all(|(v, hu)| match hu {
                Some(hu) => m.bindings.get(v).map(|n| u.find(*n)) == Some(u.find(*hu)),
                None => false,
            });
            if compatible {
                let provs: Vec<&Provenance> =
                    m.fact_indices.iter().map(|&fi| &u.fact(fi).prov).collect();
                rewriting_masks.or_with(&Provenance::and_all(&provs));
            }
            true
        });

        let mut rewritings = Vec::new();
        for &c in rewriting_masks.conjuncts() {
            let atom_idxs = Provenance::conjunct_terms(c);
            let rw = self.build_rewriting(&u, &u_atoms, &atom_idxs, &head_in_u);
            let cost = self.cost_fn.map(|f| f(&u, &atom_idxs));
            if let (Some(cost_v), Some(t)) = (cost, self.options.prune_threshold) {
                if cost_v > t {
                    continue;
                }
            }
            rewritings.push(Rewriting { query: rw, u_atoms: atom_idxs, cost });
        }
        rewritings.sort_by(|a, b| {
            a.cost
                .unwrap_or(f64::INFINITY)
                .partial_cmp(&b.cost.unwrap_or(f64::INFINITY))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        PacbResult { rewritings, chase_outcome, backchase_outcome, universal_plan_size }
    }

    /// Converts a subset of universal-plan atoms back into a CQ over view
    /// predicates: nodes become variables (constants stay constants).
    fn build_rewriting(
        &self,
        u: &Instance,
        u_atoms: &[(PredId, Vec<NodeId>)],
        atom_idxs: &[usize],
        head_in_u: &[Option<NodeId>],
    ) -> Cq {
        let mut var_of: HashMap<NodeId, u32> = HashMap::new();
        let mut next = 0u32;
        let mut body = Vec::with_capacity(atom_idxs.len());
        for &i in atom_idxs {
            let (pred, args) = &u_atoms[i];
            let terms: Vec<Term> = args
                .iter()
                .map(|&n| {
                    let root = u.find(n);
                    match u.const_of(root) {
                        Some(c) => Term::Const(c),
                        None => {
                            let v = *var_of.entry(root).or_insert_with(|| {
                                let v = next;
                                next += 1;
                                v
                            });
                            Term::Var(v)
                        }
                    }
                })
                .collect();
            body.push(Atom::new(*pred, terms));
        }
        let head: Vec<u32> = head_in_u
            .iter()
            .filter_map(|h| h.map(|n| *var_of.get(&u.find(n)).unwrap_or(&u32::MAX)))
            .collect();
        Cq { head, body }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::Vocabulary;

    /// Paper Example 4.1: σ = {R, S}, V(x,y) :- R(x,z), S(z,y);
    /// Q(x,y) :- R(x,z), S(z,y) rewrites to ρ(x,y) :- V(x,y).
    #[test]
    fn example_4_1_join_view() {
        let mut vocab = Vocabulary::new();
        let r = vocab.predicate("R", 2);
        let s = vocab.predicate("S", 2);
        let v = vocab.predicate("V", 2);

        let view = View::new(
            "V",
            v,
            Cq::new(
                vec![0, 2],
                vec![
                    Atom::new(r, vec![Term::Var(0), Term::Var(1)]),
                    Atom::new(s, vec![Term::Var(1), Term::Var(2)]),
                ],
            ),
        );
        let q = Cq::new(
            vec![0, 2],
            vec![
                Atom::new(r, vec![Term::Var(0), Term::Var(1)]),
                Atom::new(s, vec![Term::Var(1), Term::Var(2)]),
            ],
        );
        let views = [view];
        let pacb = Pacb::new(&[], &views);
        let result = pacb.rewrite(&q);
        assert_eq!(result.chase_outcome, ChaseOutcome::Saturated);
        assert_eq!(result.universal_plan_size, 1);
        assert_eq!(result.rewritings.len(), 1);
        let rw = &result.rewritings[0];
        assert_eq!(rw.query.body.len(), 1);
        assert_eq!(rw.query.body[0].pred, v);
        assert_eq!(rw.query.head.len(), 2);
        // ρ(x, y) :- V(x, y): head variables are the view atom's args.
        let args: Vec<u32> = rw.query.body[0].args.iter().filter_map(Term::as_var).collect();
        assert_eq!(rw.query.head, args);
    }

    /// A query that the views cannot answer gets no rewriting.
    #[test]
    fn unanswerable_query_has_no_rewriting() {
        let mut vocab = Vocabulary::new();
        let r = vocab.predicate("R", 2);
        let t = vocab.predicate("T", 2);
        let v = vocab.predicate("V", 2);
        // View over R only; query needs T.
        let view = View::new(
            "V",
            v,
            Cq::new(vec![0, 1], vec![Atom::new(r, vec![Term::Var(0), Term::Var(1)])]),
        );
        let q = Cq::new(vec![0, 1], vec![Atom::new(t, vec![Term::Var(0), Term::Var(1)])]);
        let views = [view];
        let pacb = Pacb::new(&[], &views);
        let result = pacb.rewrite(&q);
        assert!(result.rewritings.is_empty());
    }

    /// Two copies of the same view atom must not appear in a minimal
    /// rewriting (minimality via provenance-DNF absorption).
    #[test]
    fn rewritings_are_minimal() {
        let mut vocab = Vocabulary::new();
        let r = vocab.predicate("R", 2);
        let v = vocab.predicate("V", 2);
        let view = View::new(
            "V",
            v,
            Cq::new(vec![0, 1], vec![Atom::new(r, vec![Term::Var(0), Term::Var(1)])]),
        );
        // Q(x,y) :- R(x,y), R(x,y) — redundant atom.
        let q = Cq::new(
            vec![0, 1],
            vec![
                Atom::new(r, vec![Term::Var(0), Term::Var(1)]),
                Atom::new(r, vec![Term::Var(0), Term::Var(1)]),
            ],
        );
        let views = [view];
        let pacb = Pacb::new(&[], &views);
        let result = pacb.rewrite(&q);
        assert_eq!(result.rewritings.len(), 1);
        assert_eq!(result.rewritings[0].query.body.len(), 1);
    }
}
