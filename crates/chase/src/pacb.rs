//! Provenance-Aware Chase & Backchase (PACB, paper §4.2), with the
//! `Prune_prov` cost-threshold extension of §7.3.
//!
//! Given a conjunctive query `Q` over a source schema, integrity
//! constraints `I`, and a set of views `V` (CQs with distinguished head
//! predicates), PACB finds the reformulations of `Q` over the view schema
//! that are equivalent to `Q` under `I ∪ C_V`:
//!
//! 1. chase the canonical instance of `Q` with `I ∪ C_V^IO`;
//! 2. restrict to view atoms — the *universal plan* `U`;
//! 3. annotate each `U`-atom with a provenance term `p_i`;
//! 4. *backchase*: chase `U` with `I ∪ C_V^OI`, combining provenance
//!    conjunctively across each step (skipping steps whose premise image
//!    exceeds the cost threshold, when pruning is enabled);
//! 5. match `Q` into the result; each conjunct of the DNF provenance of a
//!    match image is a subset of `U` that forms an equivalent rewriting.

use std::collections::HashMap;

use crate::atom::Atom;
use crate::chase::{
    degradation_of, ChaseBudget, ChaseEngine, ChaseOutcome, ChaseStats, CostOracle, CostPruner,
    Degraded, RewritePhase,
};
use crate::constraint::{Constraint, Tgd};
use crate::cq::Cq;
use crate::homomorphism::{self, Match};
use crate::instance::{Instance, NodeId};
use crate::provenance::{Provenance, MAX_PROV_TERMS};
use crate::symbols::PredId;
use crate::term::Term;

/// A view: a named CQ whose result is materialized under `head_pred`.
#[derive(Debug, Clone)]
pub struct View {
    /// Human-readable view name (used in rule tags like `V_IO:<name>`).
    pub name: String,
    /// Predicate (over the view schema) holding the materialized output.
    pub head_pred: PredId,
    /// The defining CQ over base predicates.
    pub def: Cq,
}

impl View {
    /// A view `name` materializing `def` under `head_pred`.
    pub fn new(name: impl Into<String>, head_pred: PredId, def: Cq) -> Self {
        View { name: name.into(), head_pred, def }
    }

    /// `V_IO`: every match of the view body yields a view output tuple.
    pub fn io_constraint(&self) -> Tgd {
        Tgd::new(
            format!("V_IO:{}", self.name),
            self.def.body.clone(),
            vec![Atom::new(self.head_pred, self.def.head.clone())],
        )
    }

    /// `V_OI`: every view output tuple is due to a body match.
    pub fn oi_constraint(&self) -> Tgd {
        Tgd::new(
            format!("V_OI:{}", self.name),
            vec![Atom::new(self.head_pred, self.def.head.clone())],
            self.def.body.clone(),
        )
    }
}

/// Options for a PACB run.
#[derive(Debug, Clone, Default)]
pub struct PacbOptions {
    /// Budget applied to both chase phases.
    pub budget: ChaseBudget,
    /// When set, backchase steps whose premise image (a subquery of `U`)
    /// costs strictly more than this threshold are pruned (`Prune_prov`).
    pub prune_threshold: Option<f64>,
}

/// An equivalent rewriting of the input query over the view schema.
#[derive(Debug, Clone)]
pub struct Rewriting {
    /// The rewriting as a CQ over view predicates.
    pub query: Cq,
    /// Indices (into the universal plan) of the atoms used.
    pub u_atoms: Vec<usize>,
    /// Cost under the caller-supplied cost function, if any.
    pub cost: Option<f64>,
}

/// Cost of a candidate rewriting given the universal-plan atoms it uses.
pub type CostFn<'a> = &'a dyn Fn(&Instance, &[usize]) -> f64;

/// The PACB engine.
pub struct Pacb<'a> {
    /// Source integrity constraints `I`.
    pub constraints: &'a [Constraint],
    /// The registered views to reformulate over.
    pub views: &'a [View],
    /// Budgets and pruning knobs.
    pub options: PacbOptions,
    /// Cost of a candidate rewriting, given the universal-plan atoms it
    /// uses. Required when `prune_threshold` is set; also used to attach
    /// costs to results.
    pub cost_fn: Option<CostFn<'a>>,
}

/// Prices a backchase firing by the provenance of its premise image
/// (Example 7.2): the cheapest conjunct of the combined premise provenance,
/// since any rewriting the step contributes to must read at least that much.
/// Fed to the generic [`CostPruner`] — the same `Prune_prov` machinery the
/// LA chase uses with its flops oracle — with the incumbent set to the
/// original query's scan cost. Vetoed firings are counted by the engine
/// (`ChaseStats::pruned_firings`), which PACB surfaces as `backchase_stats`.
struct ProvCostOracle<'b> {
    cost_fn: CostFn<'b>,
}

impl CostOracle for ProvCostOracle<'_> {
    fn firing_cost(&self, inst: &Instance, _tgd: &Tgd, m: &Match) -> f64 {
        let provs: Vec<&Provenance> =
            m.fact_indices.iter().map(|&fi| &inst.fact(fi).prov).collect();
        let combined = Provenance::and_all(&provs);
        if combined.is_empty() {
            return 0.0; // no universal-plan justification — not prunable
        }
        combined
            .conjuncts()
            .iter()
            .map(|&c| (self.cost_fn)(inst, &Provenance::conjunct_terms(c)))
            .fold(f64::INFINITY, f64::min)
    }
}

/// Result of a PACB run.
#[derive(Debug)]
pub struct PacbResult {
    /// Every equivalent rewriting found, over view predicates.
    pub rewritings: Vec<Rewriting>,
    /// How the forward chase ended.
    pub chase_outcome: ChaseOutcome,
    /// How the backchase ended.
    pub backchase_outcome: ChaseOutcome,
    /// Number of universal-plan atoms.
    pub universal_plan_size: usize,
    /// Statistics of the forward chase (phase i).
    pub chase_stats: ChaseStats,
    /// Statistics of the backchase (phase iv); `pruned_firings` counts the
    /// steps vetoed by `Prune_prov`.
    pub backchase_stats: ChaseStats,
    /// Set when either chase phase ran out of budget/deadline: the
    /// rewritings found are a sound subset of the full search's (anytime
    /// semantics — the caller still gets every reformulation discovered
    /// before the cut).
    pub degraded: Option<Degraded>,
}

impl<'a> Pacb<'a> {
    /// A PACB engine over `constraints` and `views` with default options.
    pub fn new(constraints: &'a [Constraint], views: &'a [View]) -> Self {
        Pacb { constraints, views, options: PacbOptions::default(), cost_fn: None }
    }

    /// Replaces the options.
    pub fn with_options(mut self, options: PacbOptions) -> Self {
        self.options = options;
        self
    }

    /// Attaches the cost function pruning and ranking read.
    pub fn with_cost_fn(mut self, f: CostFn<'a>) -> Self {
        self.cost_fn = Some(f);
        self
    }

    /// Finds every reformulation of `q` over the view predicates that is
    /// equivalent under the constraints (paper Example 4.1 end-to-end).
    pub fn rewrite(&self, q: &Cq) -> PacbResult {
        // Phase (i): canonical instance of Q, chased with I ∪ C_IO.
        let mut inst = Instance::new();
        let mut var_node: HashMap<u32, NodeId> = HashMap::new();
        for atom in &q.body {
            let args: Vec<NodeId> = atom
                .args
                .iter()
                .map(|t| match t {
                    Term::Var(v) => *var_node.entry(*v).or_insert_with(|| inst.fresh_null()),
                    Term::Const(c) => inst.const_node(*c),
                })
                .collect();
            inst.insert(atom.pred, args, Provenance::empty(), None);
        }
        let head_nodes: Vec<NodeId> = q
            .head
            .iter()
            .map(|t| match t {
                Term::Var(v) => *var_node.entry(*v).or_insert_with(|| inst.fresh_null()),
                Term::Const(c) => inst.const_node(*c),
            })
            .collect();

        let mut io_constraints: Vec<Constraint> = self.constraints.to_vec();
        for v in self.views {
            io_constraints.push(v.io_constraint().into());
        }
        let engine = ChaseEngine::new(io_constraints).with_budget(self.options.budget);
        let (chase_outcome, chase_stats) = {
            let _span = hadad_obs::span("pacb.chase");
            engine.chase(&mut inst)
        };

        // Phase (ii)+(iii): universal plan = view atoms, each with a fresh
        // provenance term, rebuilt in a fresh instance.
        let view_preds: Vec<PredId> = self.views.iter().map(|v| v.head_pred).collect();
        let mut u = Instance::new();
        let mut node_map: HashMap<NodeId, NodeId> = HashMap::new();
        let mut u_atoms: Vec<(PredId, Vec<NodeId>)> = Vec::new();
        for &vp in &view_preds {
            for &fi in inst.facts_with_pred(vp) {
                if u_atoms.len() >= MAX_PROV_TERMS {
                    break;
                }
                let fact = inst.fact(fi);
                let args: Vec<NodeId> = fact
                    .args
                    .iter()
                    .map(|&n| {
                        let root = inst.find(n);
                        *node_map.entry(root).or_insert_with(|| match inst.const_of(root) {
                            Some(c) => u.const_node(c),
                            None => u.fresh_null(),
                        })
                    })
                    .collect();
                let term = Provenance::term(u_atoms.len());
                u.insert(vp, args.clone(), term, None);
                u_atoms.push((vp, args));
            }
        }
        let universal_plan_size = u_atoms.len();
        let head_in_u: Vec<Option<NodeId>> =
            head_nodes.iter().map(|n| node_map.get(&inst.find(*n)).copied()).collect();

        // Phase (iv): backchase U with I ∪ C_OI (provenance-propagating).
        let mut oi_constraints: Vec<Constraint> = self.constraints.to_vec();
        for v in self.views {
            oi_constraints.push(v.oi_constraint().into());
        }
        let back_engine = ChaseEngine::new(oi_constraints).with_budget(self.options.budget);
        let (backchase_outcome, backchase_stats) = {
            let _span = hadad_obs::span("pacb.backchase");
            match (self.options.prune_threshold, self.cost_fn) {
                (Some(t), Some(f)) => {
                    let oracle = ProvCostOracle { cost_fn: f };
                    let mut pruner = CostPruner::new(&oracle, t);
                    back_engine.chase_with(&mut u, &mut pruner)
                }
                _ => back_engine.chase(&mut u),
            }
        };

        // Phase (v): match Q into the backchase result; read rewritings off
        // the provenance formulas of the match images.
        let mut rewriting_masks: Provenance = Provenance::empty();
        homomorphism::for_each_match(&u, &q.body, &mut |m| {
            // Head compatibility: h(head of Q) must equal the universal
            // plan's head nodes. Constant head positions pin to the
            // constant's node in `u`.
            let compatible = q.head.iter().zip(&head_in_u).all(|(t, hu)| match hu {
                Some(hu) => {
                    let image = match t {
                        Term::Var(v) => m.bindings.get(v).map(|n| u.find(*n)),
                        Term::Const(c) => u.node_of_const(*c).map(|n| u.find(n)),
                    };
                    image == Some(u.find(*hu))
                }
                None => false,
            });
            if compatible {
                let provs: Vec<&Provenance> =
                    m.fact_indices.iter().map(|&fi| &u.fact(fi).prov).collect();
                rewriting_masks.or_with(&Provenance::and_all(&provs));
            }
            true
        });

        let mut rewritings = Vec::new();
        for &c in rewriting_masks.conjuncts() {
            let atom_idxs = Provenance::conjunct_terms(c);
            // A head node that is neither a constant nor covered by the
            // chosen atoms would make the rewriting unsafe; such candidates
            // are rejected (previously they were emitted with a sentinel
            // variable, silently malformed).
            let Some(rw) = self.build_rewriting(&u, &u_atoms, &atom_idxs, &head_in_u) else {
                continue;
            };
            let cost = self.cost_fn.map(|f| f(&u, &atom_idxs));
            if let (Some(cost_v), Some(t)) = (cost, self.options.prune_threshold) {
                if cost_v > t {
                    continue;
                }
            }
            rewritings.push(Rewriting { query: rw, u_atoms: atom_idxs, cost });
        }
        rewritings.sort_by(|a, b| {
            a.cost
                .unwrap_or(f64::INFINITY)
                .partial_cmp(&b.cost.unwrap_or(f64::INFINITY))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let degraded = degradation_of(&chase_stats, RewritePhase::Chase)
            .or_else(|| degradation_of(&backchase_stats, RewritePhase::Backchase));
        static RUNS: hadad_obs::LazyCounter = hadad_obs::LazyCounter::new("pacb.runs");
        static REWRITINGS: hadad_obs::LazyCounter =
            hadad_obs::LazyCounter::new("pacb.rewritings");
        RUNS.incr();
        REWRITINGS.add(rewritings.len() as u64);
        PacbResult {
            rewritings,
            chase_outcome,
            backchase_outcome,
            universal_plan_size,
            chase_stats,
            backchase_stats,
            degraded,
        }
    }

    /// Converts a subset of universal-plan atoms back into a CQ over view
    /// predicates: nodes become variables (constants stay constants).
    /// Returns `None` when some head node is neither a constant nor bound
    /// by the chosen atoms (the rewriting would be unsafe).
    fn build_rewriting(
        &self,
        u: &Instance,
        u_atoms: &[(PredId, Vec<NodeId>)],
        atom_idxs: &[usize],
        head_in_u: &[Option<NodeId>],
    ) -> Option<Cq> {
        let mut var_of: HashMap<NodeId, u32> = HashMap::new();
        let mut next = 0u32;
        let mut body = Vec::with_capacity(atom_idxs.len());
        for &i in atom_idxs {
            let (pred, args) = &u_atoms[i];
            let terms: Vec<Term> = args
                .iter()
                .map(|&n| {
                    let root = u.find(n);
                    match u.const_of(root) {
                        Some(c) => Term::Const(c),
                        None => {
                            let v = *var_of.entry(root).or_insert_with(|| {
                                let v = next;
                                next += 1;
                                v
                            });
                            Term::Var(v)
                        }
                    }
                })
                .collect();
            body.push(Atom::new(*pred, terms));
        }
        let mut head = Vec::with_capacity(head_in_u.len());
        for h in head_in_u {
            let root = u.find((*h)?);
            match u.const_of(root) {
                Some(c) => head.push(Term::Const(c)),
                None => head.push(Term::Var(*var_of.get(&root)?)),
            }
        }
        Some(Cq { head, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::Vocabulary;

    /// Paper Example 4.1: σ = {R, S}, V(x,y) :- R(x,z), S(z,y);
    /// Q(x,y) :- R(x,z), S(z,y) rewrites to ρ(x,y) :- V(x,y).
    #[test]
    fn example_4_1_join_view() {
        let mut vocab = Vocabulary::new();
        let r = vocab.predicate("R", 2);
        let s = vocab.predicate("S", 2);
        let v = vocab.predicate("V", 2);

        let view = View::new(
            "V",
            v,
            Cq::with_var_head(
                vec![0, 2],
                vec![
                    Atom::new(r, vec![Term::Var(0), Term::Var(1)]),
                    Atom::new(s, vec![Term::Var(1), Term::Var(2)]),
                ],
            ),
        );
        let q = Cq::with_var_head(
            vec![0, 2],
            vec![
                Atom::new(r, vec![Term::Var(0), Term::Var(1)]),
                Atom::new(s, vec![Term::Var(1), Term::Var(2)]),
            ],
        );
        let views = [view];
        let pacb = Pacb::new(&[], &views);
        let result = pacb.rewrite(&q);
        assert_eq!(result.chase_outcome, ChaseOutcome::Saturated);
        assert_eq!(result.universal_plan_size, 1);
        assert_eq!(result.rewritings.len(), 1);
        let rw = &result.rewritings[0];
        assert_eq!(rw.query.body.len(), 1);
        assert_eq!(rw.query.body[0].pred, v);
        assert_eq!(rw.query.head.len(), 2);
        // ρ(x, y) :- V(x, y): head variables are the view atom's args.
        assert_eq!(rw.query.head, rw.query.body[0].args);
    }

    /// A query that the views cannot answer gets no rewriting.
    #[test]
    fn unanswerable_query_has_no_rewriting() {
        let mut vocab = Vocabulary::new();
        let r = vocab.predicate("R", 2);
        let t = vocab.predicate("T", 2);
        let v = vocab.predicate("V", 2);
        // View over R only; query needs T.
        let view = View::new(
            "V",
            v,
            Cq::with_var_head(vec![0, 1], vec![Atom::new(r, vec![Term::Var(0), Term::Var(1)])]),
        );
        let q =
            Cq::with_var_head(vec![0, 1], vec![Atom::new(t, vec![Term::Var(0), Term::Var(1)])]);
        let views = [view];
        let pacb = Pacb::new(&[], &views);
        let result = pacb.rewrite(&q);
        assert!(result.rewritings.is_empty());
    }

    /// Two copies of the same view atom must not appear in a minimal
    /// rewriting (minimality via provenance-DNF absorption).
    #[test]
    fn rewritings_are_minimal() {
        let mut vocab = Vocabulary::new();
        let r = vocab.predicate("R", 2);
        let v = vocab.predicate("V", 2);
        let view = View::new(
            "V",
            v,
            Cq::with_var_head(vec![0, 1], vec![Atom::new(r, vec![Term::Var(0), Term::Var(1)])]),
        );
        // Q(x,y) :- R(x,y), R(x,y) — redundant atom.
        let q = Cq::with_var_head(
            vec![0, 1],
            vec![
                Atom::new(r, vec![Term::Var(0), Term::Var(1)]),
                Atom::new(r, vec![Term::Var(0), Term::Var(1)]),
            ],
        );
        let views = [view];
        let pacb = Pacb::new(&[], &views);
        let result = pacb.rewrite(&q);
        assert_eq!(result.rewritings.len(), 1);
        assert_eq!(result.rewritings[0].query.body.len(), 1);
    }

    /// Regression: a constant in the query head must survive into the
    /// rewriting as a constant (previously it became the `u32::MAX`
    /// sentinel variable, silently malformed).
    #[test]
    fn constant_head_round_trips() {
        let mut vocab = Vocabulary::new();
        let r = vocab.predicate("R", 2);
        let v = vocab.predicate("V", 2);
        let seven = vocab.constant("7");

        // V(x, y) :- R(x, y); Q(x, 7) :- R(x, 7).
        let view = View::new(
            "V",
            v,
            Cq::with_var_head(vec![0, 1], vec![Atom::new(r, vec![Term::Var(0), Term::Var(1)])]),
        );
        let q = Cq::new(
            vec![Term::Var(0), Term::Const(seven)],
            vec![Atom::new(r, vec![Term::Var(0), Term::Const(seven)])],
        );
        let views = [view];
        let pacb = Pacb::new(&[], &views);
        let result = pacb.rewrite(&q);
        assert_eq!(result.rewritings.len(), 1);
        let rw = &result.rewritings[0];
        assert_eq!(rw.query.body.len(), 1);
        assert_eq!(rw.query.body[0].pred, v);
        // Head: the variable of the view atom's first arg, then the constant.
        assert_eq!(rw.query.head.len(), 2);
        assert_eq!(rw.query.head[0], rw.query.body[0].args[0]);
        assert!(rw.query.head[0].is_var());
        assert_eq!(rw.query.head[1], Term::Const(seven));
        assert_eq!(rw.query.body[0].args[1], Term::Const(seven));
        assert!(rw.query.is_safe());
    }

    /// `Prune_prov`: with a cost function and a threshold, backchase steps
    /// justified only by expensive universal-plan atoms are vetoed (and
    /// counted), while the cheap rewriting survives.
    #[test]
    fn prune_prov_vetoes_expensive_steps() {
        let mut vocab = Vocabulary::new();
        let r = vocab.predicate("R", 2);
        let ve = vocab.predicate("Ve", 2);
        let vc = vocab.predicate("Vc", 2);

        let def =
            Cq::with_var_head(vec![0, 1], vec![Atom::new(r, vec![Term::Var(0), Term::Var(1)])]);
        // Two copies of the same view; the expensive one is listed first so
        // its backchase step is offered (and vetoed) before the cheap one
        // satisfies the conclusion.
        let views = [View::new("Ve", ve, def.clone()), View::new("Vc", vc, def)];
        let q =
            Cq::with_var_head(vec![0, 1], vec![Atom::new(r, vec![Term::Var(0), Term::Var(1)])]);

        // Universal-plan atom 0 is Ve (cost 100), atom 1 is Vc (cost 1).
        let cost_fn = |inst: &Instance, atoms: &[usize]| -> f64 {
            atoms.iter().map(|&i| if inst.fact(i).pred == ve { 100.0 } else { 1.0 }).sum()
        };
        let pacb = Pacb::new(&[], &views)
            .with_options(PacbOptions { prune_threshold: Some(50.0), ..Default::default() })
            .with_cost_fn(&cost_fn);
        let result = pacb.rewrite(&q);

        assert_eq!(result.universal_plan_size, 2);
        // The Ve-justified backchase step was pruned...
        assert_eq!(result.backchase_stats.pruned_firings, 1);
        // ...and only the cheap rewriting survives, with its cost attached.
        assert_eq!(result.rewritings.len(), 1);
        let rw = &result.rewritings[0];
        assert_eq!(rw.query.body[0].pred, vc);
        assert_eq!(rw.cost, Some(1.0));
        assert_eq!(rw.u_atoms, vec![1]);
    }
}
