//! The bounded restricted chase (paper §4.2 step (i), §6.3).
//!
//! Applies TGDs (adding facts with fresh labelled nulls for existentials,
//! only when the conclusion is not already satisfied — the *restricted*
//! chase) and EGDs (merging union-find classes) until fixpoint or until a
//! configurable budget is exhausted. HADAD's `LAprop` catalogue is
//! chase-terminating for the stratified core, but associativity-style rules
//! generate fresh IDs without bound, so the engine carries the same
//! practical budgets the paper's PACB++ implementation does.
//!
//! Cost-based pruning (`Prune_prov`, §7.3) plugs in through the [`Pruner`]
//! trait: a firing whose premise image already costs more than the best
//! known rewriting never executes (Example 7.2).

use std::collections::HashMap;

use crate::constraint::{Constraint, Egd, Tgd};
use crate::homomorphism::{self, Match};
use crate::instance::{Instance, NodeId};
use crate::provenance::Provenance;
use crate::term::Term;

/// Budgets bounding the chase.
#[derive(Debug, Clone, Copy)]
pub struct ChaseBudget {
    /// Maximum number of full rounds over the constraint set.
    pub max_rounds: usize,
    /// Hard cap on the number of facts in the instance.
    pub max_facts: usize,
    /// Hard cap on labelled nulls (fresh IDs) created.
    pub max_nulls: usize,
}

impl Default for ChaseBudget {
    fn default() -> Self {
        ChaseBudget { max_rounds: 12, max_facts: 60_000, max_nulls: 30_000 }
    }
}

/// How a chase run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaseOutcome {
    /// Fixpoint: no constraint is applicable.
    Saturated,
    /// A budget was hit; the instance is a sound under-approximation of the
    /// full chase (every fact is still implied by the constraints).
    BudgetExhausted,
    /// An EGD equated two distinct constants: constraints inconsistent with
    /// the instance.
    ConstClash,
}

/// Veto hook for TGD firings (cost-based pruning).
pub trait Pruner {
    /// Return `false` to skip this firing. `rule_idx` indexes the engine's
    /// constraint list; `m` is the premise match.
    fn allow_firing(&mut self, inst: &Instance, rule_idx: usize, tgd: &Tgd, m: &Match) -> bool;
}

/// Pruner that allows everything (the naive PACB behaviour).
pub struct NoPrune;

impl Pruner for NoPrune {
    fn allow_firing(&mut self, _: &Instance, _: usize, _: &Tgd, _: &Match) -> bool {
        true
    }
}

/// Per-rule statistics from a chase run (exposed so the optimizer can report
/// which LA properties fired, cf. the paper's per-pipeline discussions).
#[derive(Debug, Clone, Default)]
pub struct ChaseStats {
    pub rounds: usize,
    pub tgd_firings: Vec<(String, usize)>,
    pub egd_merges: usize,
    pub pruned_firings: usize,
}

/// The chase engine: an ordered list of constraints plus budgets.
#[derive(Debug, Clone)]
pub struct ChaseEngine {
    pub constraints: Vec<Constraint>,
    pub budget: ChaseBudget,
}

impl ChaseEngine {
    pub fn new(constraints: Vec<Constraint>) -> Self {
        ChaseEngine { constraints, budget: ChaseBudget::default() }
    }

    pub fn with_budget(mut self, budget: ChaseBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Runs the chase to fixpoint (or budget) without pruning.
    pub fn chase(&self, inst: &mut Instance) -> (ChaseOutcome, ChaseStats) {
        self.chase_with(inst, &mut NoPrune)
    }

    /// Runs the chase with a pruning hook.
    pub fn chase_with(
        &self,
        inst: &mut Instance,
        pruner: &mut dyn Pruner,
    ) -> (ChaseOutcome, ChaseStats) {
        let mut stats = ChaseStats {
            tgd_firings: self.constraints.iter().map(|c| (c.name().to_owned(), 0)).collect(),
            ..Default::default()
        };
        for _round in 0..self.budget.max_rounds {
            stats.rounds += 1;
            let mut changed = false;
            for (ci, c) in self.constraints.iter().enumerate() {
                match c {
                    Constraint::Egd(egd) => match self.apply_egd(inst, egd) {
                        Ok(merges) => {
                            if merges > 0 {
                                stats.egd_merges += merges;
                                changed = true;
                            }
                        }
                        Err(()) => return (ChaseOutcome::ConstClash, stats),
                    },
                    Constraint::Tgd(tgd) => {
                        let (fired, pruned, over_budget) =
                            self.apply_tgd(inst, ci, tgd, pruner);
                        stats.tgd_firings[ci].1 += fired;
                        stats.pruned_firings += pruned;
                        if fired > 0 {
                            changed = true;
                        }
                        if over_budget {
                            return (ChaseOutcome::BudgetExhausted, stats);
                        }
                    }
                }
                if inst.num_facts() > self.budget.max_facts
                    || inst.num_nulls() > self.budget.max_nulls
                {
                    return (ChaseOutcome::BudgetExhausted, stats);
                }
            }
            if !changed {
                return (ChaseOutcome::Saturated, stats);
            }
        }
        (ChaseOutcome::BudgetExhausted, stats)
    }

    /// Applies one EGD exhaustively; returns the number of merges, or `Err`
    /// on a constant clash.
    fn apply_egd(&self, inst: &mut Instance, egd: &Egd) -> Result<usize, ()> {
        // Collect merge requests first (cannot mutate during enumeration).
        let mut merges: Vec<(NodeId, NodeId)> = Vec::new();
        {
            let matches = homomorphism::all_matches(inst, &egd.premise);
            for m in &matches {
                for (l, r) in &egd.equalities {
                    let ln = resolve(inst, &m.bindings, l);
                    let rn = resolve(inst, &m.bindings, r);
                    if let (Some(ln), Some(rn)) = (ln, rn) {
                        if inst.find(ln) != inst.find(rn) {
                            merges.push((ln, rn));
                        }
                    }
                }
            }
        }
        if merges.is_empty() {
            return Ok(0);
        }
        let mut count = 0;
        for (a, b) in merges {
            if inst.find(a) != inst.find(b) {
                inst.merge(a, b).map_err(|_| ())?;
                count += 1;
            }
        }
        if count > 0 {
            inst.rehash();
        }
        Ok(count)
    }

    /// Applies one TGD (restricted semantics). Returns
    /// `(firings, pruned, over_budget)`.
    fn apply_tgd(
        &self,
        inst: &mut Instance,
        rule_idx: usize,
        tgd: &Tgd,
        pruner: &mut dyn Pruner,
    ) -> (usize, usize, bool) {
        // Phase 1: enumerate premise matches (immutable borrow).
        let matches = homomorphism::all_matches(inst, &tgd.premise);
        let existentials = tgd.existential_vars();
        let mut fired = 0usize;
        let mut pruned = 0usize;

        // Phase 2: re-check satisfiability and apply.
        for m in matches {
            // Restricted chase: skip if the conclusion already holds under
            // the premise bindings (checked against the *current* instance,
            // which may have been extended by earlier firings).
            let relevant: HashMap<u32, NodeId> = m
                .bindings
                .iter()
                .filter(|(v, _)| !existentials.contains(v))
                .map(|(&v, &n)| (v, n))
                .collect();
            if homomorphism::satisfiable_with(inst, &tgd.conclusion, &relevant) {
                continue;
            }
            if !pruner.allow_firing(inst, rule_idx, tgd, &m) {
                pruned += 1;
                continue;
            }
            // Provenance of new facts: conjunction of the premise image.
            let premise_provs: Vec<&Provenance> =
                m.fact_indices.iter().map(|&fi| &inst.fact(fi).prov).collect();
            let prov = Provenance::and_all(&premise_provs);

            let mut bindings = relevant;
            for &ev in &existentials {
                bindings.insert(ev, inst.fresh_null());
            }
            for atom in &tgd.conclusion {
                let args: Vec<NodeId> = atom
                    .args
                    .iter()
                    .map(|t| match t {
                        Term::Var(v) => *bindings.get(v).expect("conclusion var bound"),
                        Term::Const(c) => inst.const_node(*c),
                    })
                    .collect();
                inst.insert(atom.pred, args, prov.clone(), Some(rule_idx));
            }
            fired += 1;
            if inst.num_facts() > self.budget.max_facts
                || inst.num_nulls() > self.budget.max_nulls
            {
                return (fired, pruned, true);
            }
        }
        (fired, pruned, false)
    }
}

fn resolve(inst: &mut Instance, bindings: &HashMap<u32, NodeId>, t: &Term) -> Option<NodeId> {
    match t {
        Term::Var(v) => bindings.get(v).copied(),
        Term::Const(c) => Some(inst.const_node(*c)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::symbols::Vocabulary;

    /// Paper §4.1 example: Review(p, r, t) → ∃a PC(r, a), plus the EGD that
    /// a paper is submitted to a single track.
    #[test]
    fn review_pc_example() {
        let mut vocab = Vocabulary::new();
        let review = vocab.predicate("Review", 3);
        let pc = vocab.predicate("PC", 2);

        let tgd = Tgd::new(
            "review-implies-pc",
            vec![Atom::new(review, vec![Term::Var(0), Term::Var(1), Term::Var(2)])],
            vec![Atom::new(pc, vec![Term::Var(1), Term::Var(3)])],
        );
        let egd = Egd::new(
            "single-track",
            vec![
                Atom::new(review, vec![Term::Var(0), Term::Var(1), Term::Var(2)]),
                Atom::new(review, vec![Term::Var(0), Term::Var(3), Term::Var(4)]),
            ],
            vec![(Term::Var(2), Term::Var(4))],
        );

        let mut inst = Instance::new();
        let p = inst.const_node(vocab.constant("paper1"));
        let r1 = inst.const_node(vocab.constant("alice"));
        let r2 = inst.const_node(vocab.constant("bob"));
        let t1 = inst.fresh_null();
        let t2 = inst.fresh_null();
        inst.insert(review, vec![p, r1, t1], Provenance::empty(), None);
        inst.insert(review, vec![p, r2, t2], Provenance::empty(), None);

        let engine = ChaseEngine::new(vec![tgd.into(), egd.into()]);
        let (outcome, stats) = engine.chase(&mut inst);
        assert_eq!(outcome, ChaseOutcome::Saturated);
        // Tracks merged by the EGD.
        assert_eq!(inst.find(t1), inst.find(t2));
        assert!(stats.egd_merges >= 1);
        // PC facts derived for both reviewers.
        assert_eq!(inst.facts_with_pred(pc).len(), 2);
    }

    #[test]
    fn restricted_chase_does_not_refire() {
        let mut vocab = Vocabulary::new();
        let p = vocab.predicate("P", 1);
        let q = vocab.predicate("Q", 2);
        // P(x) → ∃y Q(x, y); chasing twice must not add a second witness.
        let tgd = Tgd::new(
            "p-implies-q",
            vec![Atom::new(p, vec![Term::Var(0)])],
            vec![Atom::new(q, vec![Term::Var(0), Term::Var(1)])],
        );
        let mut inst = Instance::new();
        let a = inst.const_node(vocab.constant("a"));
        inst.insert(p, vec![a], Provenance::empty(), None);
        let engine = ChaseEngine::new(vec![tgd.into()]);
        let (outcome, _) = engine.chase(&mut inst);
        assert_eq!(outcome, ChaseOutcome::Saturated);
        assert_eq!(inst.facts_with_pred(q).len(), 1);
        assert_eq!(inst.num_nulls(), 1);
    }

    #[test]
    fn budget_stops_divergent_chase() {
        let mut vocab = Vocabulary::new();
        let e = vocab.predicate("E", 2);
        // E(x, y) → ∃z E(y, z): classic non-terminating TGD.
        let tgd = Tgd::new(
            "succ",
            vec![Atom::new(e, vec![Term::Var(0), Term::Var(1)])],
            vec![Atom::new(e, vec![Term::Var(1), Term::Var(2)])],
        );
        let mut inst = Instance::new();
        let a = inst.const_node(vocab.constant("a"));
        let b = inst.const_node(vocab.constant("b"));
        inst.insert(e, vec![a, b], Provenance::empty(), None);
        let engine = ChaseEngine::new(vec![tgd.into()]).with_budget(ChaseBudget {
            max_rounds: 3,
            max_facts: 1000,
            max_nulls: 1000,
        });
        let (outcome, stats) = engine.chase(&mut inst);
        assert_eq!(outcome, ChaseOutcome::BudgetExhausted);
        assert_eq!(stats.rounds, 3);
        assert!(inst.num_facts() >= 3);
    }

    #[test]
    fn pruner_vetoes_firings() {
        struct VetoAll;
        impl Pruner for VetoAll {
            fn allow_firing(&mut self, _: &Instance, _: usize, _: &Tgd, _: &Match) -> bool {
                false
            }
        }
        let mut vocab = Vocabulary::new();
        let p = vocab.predicate("P", 1);
        let q = vocab.predicate("Q", 1);
        let tgd = Tgd::new(
            "p-q",
            vec![Atom::new(p, vec![Term::Var(0)])],
            vec![Atom::new(q, vec![Term::Var(0)])],
        );
        let mut inst = Instance::new();
        let a = inst.const_node(vocab.constant("a"));
        inst.insert(p, vec![a], Provenance::empty(), None);
        let engine = ChaseEngine::new(vec![tgd.into()]);
        let (outcome, stats) = engine.chase_with(&mut inst, &mut VetoAll);
        assert_eq!(outcome, ChaseOutcome::Saturated);
        assert_eq!(inst.facts_with_pred(q).len(), 0);
        assert!(stats.pruned_firings > 0);
    }

    #[test]
    fn functional_egd_dedups_outputs() {
        let mut vocab = Vocabulary::new();
        let f = vocab.predicate("f", 2);
        let egd = Egd::functional("f-func", f, 2);
        let mut inst = Instance::new();
        let x = inst.const_node(vocab.constant("x"));
        let o1 = inst.fresh_null();
        let o2 = inst.fresh_null();
        inst.insert(f, vec![x, o1], Provenance::empty(), None);
        inst.insert(f, vec![x, o2], Provenance::empty(), None);
        let engine = ChaseEngine::new(vec![egd.into()]);
        let (outcome, _) = engine.chase(&mut inst);
        assert_eq!(outcome, ChaseOutcome::Saturated);
        assert_eq!(inst.find(o1), inst.find(o2));
        assert_eq!(inst.facts_with_pred(f).len(), 1, "duplicate facts coalesced");
    }
}
