//! The bounded restricted chase (paper §4.2 step (i), §6.3).
//!
//! Applies TGDs (adding facts with fresh labelled nulls for existentials,
//! only when the conclusion is not already satisfied — the *restricted*
//! chase) and EGDs (merging union-find classes) until fixpoint or until a
//! configurable budget is exhausted. HADAD's `LAprop` catalogue is
//! chase-terminating for the stratified core, but associativity-style rules
//! generate fresh IDs without bound, so the engine carries the same
//! practical budgets the paper's PACB++ implementation does.
//!
//! Premise matching is **semi-naïve** by default ([`EvalMode::SemiNaive`]):
//! each rule keeps a watermark into the instance's revision clock and only
//! enumerates matches touching facts stamped after it — fresh insertions
//! plus facts rewritten by EGD merges (the merged classes feed back into
//! the frontier through `rehash` re-stamping). The first time a rule runs
//! its watermark is zero, so round one is the classic naive round. The
//! naive mode re-enumerates every homomorphism each round and is kept for
//! differential testing and as the enumeration-count baseline.
//!
//! Cost-based pruning (`Prune_prov`, §7.3) plugs in through the [`Pruner`]
//! trait: a firing whose premise image already costs more than the best
//! known rewriting never executes (Example 7.2). Note that under semi-naïve
//! evaluation a *vetoed* firing is not re-offered to the pruner until one of
//! its premise facts is re-stamped; pruners whose thresholds loosen over
//! time should run in naive mode.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use crate::constraint::{Constraint, Egd, Tgd};
use crate::homomorphism::{self, Match};
use crate::instance::{ConstClash, Instance, NodeId};
use crate::provenance::Provenance;
use crate::term::Term;

/// Budgets bounding the chase.
#[derive(Debug, Clone, Copy)]
pub struct ChaseBudget {
    /// Maximum number of full rounds over the constraint set.
    pub max_rounds: usize,
    /// Hard cap on the number of facts in the instance.
    pub max_facts: usize,
    /// Hard cap on labelled nulls (fresh IDs) created.
    pub max_nulls: usize,
    /// Optional wall-clock deadline, checked at every round boundary and
    /// inside long TGD application loops. A chase that runs out of time
    /// ends with [`ChaseOutcome::BudgetExhausted`] — the instance at that
    /// point is still a sound under-approximation to extract from.
    pub deadline: Option<Instant>,
}

impl Default for ChaseBudget {
    fn default() -> Self {
        ChaseBudget { max_rounds: 12, max_facts: 60_000, max_nulls: 30_000, deadline: None }
    }
}

impl ChaseBudget {
    /// Stamps a deadline `timeout` from now onto this budget.
    pub fn with_deadline(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    fn deadline_passed(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// Which resource bound ended a budget-exhausted chase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExhaustedBy {
    /// The round budget ran out.
    Rounds,
    /// The fact budget ran out.
    Facts,
    /// The labelled-null budget ran out.
    Nulls,
    /// The wall-clock deadline passed.
    Deadline,
    /// An armed failpoint (`chase.round=error`) asked the round loop to
    /// stop — the degradation path behaves exactly like a budget trip.
    Fault,
}

impl std::fmt::Display for ExhaustedBy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ExhaustedBy::Rounds => "round budget",
            ExhaustedBy::Facts => "fact budget",
            ExhaustedBy::Nulls => "null budget",
            ExhaustedBy::Deadline => "deadline",
            ExhaustedBy::Fault => "injected fault",
        };
        f.write_str(s)
    }
}

/// Marks a result produced by a degraded (anytime) pipeline run: a resource
/// bound or contained fault ended `phase` early, and the result is the best
/// incumbent found up to that point rather than the full search's answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degraded {
    /// What ended the phase early.
    pub reason: DegradeReason,
    /// The phase that was cut short.
    pub phase: RewritePhase,
}

impl std::fmt::Display for Degraded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "degraded in {} phase: {}", self.phase, self.reason)
    }
}

/// Why a pipeline degraded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// A fact/null/round budget was exhausted.
    Budget(ExhaustedBy),
    /// A worker panicked and was contained by `catch_unwind` supervision.
    WorkerPanic,
    /// An armed failpoint asked the phase to stop early.
    Fault,
    /// View maintenance is poisoned; rewriting proceeded without views.
    MaintenancePoisoned,
}

impl std::fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradeReason::Deadline => f.write_str("deadline exceeded"),
            DegradeReason::Budget(b) => write!(f, "{b} exhausted"),
            DegradeReason::WorkerPanic => f.write_str("worker panic contained"),
            DegradeReason::Fault => f.write_str("injected fault"),
            DegradeReason::MaintenancePoisoned => f.write_str("view maintenance poisoned"),
        }
    }
}

/// Maps a finished chase's exhaustion record onto the [`Degraded`] marker
/// reported for the pipeline phase that ran it.
pub fn degradation_of(stats: &ChaseStats, phase: RewritePhase) -> Option<Degraded> {
    stats.exhausted.map(|by| Degraded {
        reason: match by {
            ExhaustedBy::Deadline => DegradeReason::Deadline,
            ExhaustedBy::Fault => DegradeReason::Fault,
            bounded => DegradeReason::Budget(bounded),
        },
        phase,
    })
}

/// Which pipeline phase degraded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RewritePhase {
    /// Forward chase (saturation).
    Chase,
    /// Backchase (candidate minimization).
    Backchase,
    /// Plan extraction from the saturated instance.
    Extraction,
    /// Candidate ranking / verification.
    Ranking,
    /// Incremental view maintenance.
    Maintenance,
}

impl std::fmt::Display for RewritePhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RewritePhase::Chase => "chase",
            RewritePhase::Backchase => "backchase",
            RewritePhase::Extraction => "extraction",
            RewritePhase::Ranking => "ranking",
            RewritePhase::Maintenance => "maintenance",
        };
        f.write_str(s)
    }
}

/// Premise-matching strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalMode {
    /// Re-enumerate every homomorphism of every rule each round.
    Naive,
    /// Delta-driven: only enumerate matches touching facts stamped after
    /// the rule's last run (plus one full first round per rule).
    #[default]
    SemiNaive,
}

/// How a chase run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaseOutcome {
    /// Fixpoint: no constraint is applicable.
    Saturated,
    /// A budget was hit; the instance is a sound under-approximation of the
    /// full chase (every fact is still implied by the constraints).
    BudgetExhausted,
    /// An EGD equated the two distinct constants carried in the payload:
    /// constraints inconsistent with the instance.
    ConstClash(ConstClash),
}

/// Veto hook for TGD firings (cost-based pruning).
pub trait Pruner {
    /// Return `false` to skip this firing. `rule_idx` indexes the engine's
    /// constraint list; `m` is the premise match.
    fn allow_firing(&mut self, inst: &Instance, rule_idx: usize, tgd: &Tgd, m: &Match) -> bool;

    /// Called by the engine at the end of every chase round (before the
    /// next round's enumeration). Cost-threshold pruners use it to
    /// re-estimate their incumbent against the grown instance — thresholds
    /// may only *tighten* here, since a vetoed firing is not re-offered
    /// under semi-naïve evaluation until a premise fact is re-stamped.
    fn end_round(&mut self, _inst: &Instance) {}
}

/// Pruner that allows everything (the naive PACB behaviour).
pub struct NoPrune;

impl Pruner for NoPrune {
    fn allow_firing(&mut self, _: &Instance, _: usize, _: &Tgd, _: &Match) -> bool {
        true
    }
}

/// Oracle answering cost questions about prospective TGD firings — the
/// shared abstraction behind `Prune_prov` (paper §7.3) for both rewriting
/// paths: PACB's backchase prices a firing by the provenance of its premise
/// image (relational scan costs), and the LA chase prices it by the
/// operator facts its conclusion would create (flops from propagated
/// `size`/`density` facts).
pub trait CostOracle {
    /// Estimated lower-bound cost of any rewriting that uses what this
    /// firing derives. `0.0` means "nothing can be bounded" and the firing
    /// is always allowed.
    fn firing_cost(&self, inst: &Instance, tgd: &Tgd, m: &Match) -> f64;
}

/// `Prune_prov` as a [`Pruner`]: vetoes firings whose oracle cost exceeds
/// the incumbent best-plan cost. The incumbent starts at the cost of the
/// unrewritten input and may only tighten (see [`CostPruner::tighten`]), so
/// the pruner is safe under semi-naïve evaluation.
pub struct CostPruner<'a> {
    oracle: &'a dyn CostOracle,
    incumbent: f64,
}

impl<'a> CostPruner<'a> {
    /// A pruner vetoing firings the oracle prices above `incumbent`.
    pub fn new(oracle: &'a dyn CostOracle, incumbent: f64) -> Self {
        CostPruner { oracle, incumbent }
    }

    /// Lowers the incumbent (a cheaper plan was found); raising is refused
    /// so earlier vetoes stay justified.
    pub fn tighten(&mut self, cost: f64) {
        if cost < self.incumbent {
            self.incumbent = cost;
        }
    }

    /// The current pruning threshold.
    pub fn incumbent(&self) -> f64 {
        self.incumbent
    }

    /// The pruning decision for an already-computed firing cost (wrappers
    /// that compute the oracle cost themselves use this to avoid pricing a
    /// firing twice).
    pub fn allows_cost(&self, cost: f64) -> bool {
        cost <= self.incumbent
    }
}

impl Pruner for CostPruner<'_> {
    fn allow_firing(&mut self, inst: &Instance, _: usize, tgd: &Tgd, m: &Match) -> bool {
        self.allows_cost(self.oracle.firing_cost(inst, tgd, m))
    }
}

/// Per-rule statistics from a chase run (exposed so the optimizer can report
/// which LA properties fired, cf. the paper's per-pipeline discussions).
#[derive(Debug, Clone, Default)]
pub struct ChaseStats {
    /// Rounds the chase ran before saturating or exhausting its budget.
    pub rounds: usize,
    /// Successful firings per TGD, in the engine's constraint order.
    pub tgd_firings: Vec<(String, usize)>,
    /// Node merges performed by EGDs.
    pub egd_merges: usize,
    /// Total firings vetoed by the cost pruner.
    pub pruned_firings: usize,
    /// Firings vetoed by the pruner, per rule (same order as the engine's
    /// constraint list; EGDs are never offered to the pruner and stay 0).
    pub rule_vetoes: Vec<(String, usize)>,
    /// Premise matches enumerated per rule (same order as the engine's
    /// constraint list). Semi-naïve evaluation should report dramatically
    /// fewer than naive on saturating workloads.
    pub rule_matches: Vec<(String, u64)>,
    /// Size of the delta frontier at the start of each round (round one
    /// counts every fact).
    pub round_deltas: Vec<usize>,
    /// When the outcome is [`ChaseOutcome::BudgetExhausted`], which bound
    /// tripped.
    pub exhausted: Option<ExhaustedBy>,
}

impl ChaseStats {
    /// Total premise matches enumerated across all rules and rounds.
    pub fn matches_enumerated(&self) -> u64 {
        self.rule_matches.iter().map(|(_, n)| n).sum()
    }

    /// Total successful TGD firings across all rules.
    pub fn firings(&self) -> u64 {
        self.tgd_firings.iter().map(|(_, n)| *n as u64).sum()
    }
}

/// Publishes one run's aggregate counters to the shared metrics registry.
fn publish_chase_metrics(stats: &ChaseStats) {
    static RUNS: hadad_obs::LazyCounter = hadad_obs::LazyCounter::new("chase.runs");
    static ROUNDS: hadad_obs::LazyCounter = hadad_obs::LazyCounter::new("chase.rounds");
    static FIRINGS: hadad_obs::LazyCounter = hadad_obs::LazyCounter::new("chase.rule_firings");
    static VETOES: hadad_obs::LazyCounter = hadad_obs::LazyCounter::new("chase.rule_vetoes");
    static MERGES: hadad_obs::LazyCounter = hadad_obs::LazyCounter::new("chase.egd_merges");
    static MATCHES: hadad_obs::LazyCounter = hadad_obs::LazyCounter::new("chase.matches");
    static DEADLINES: hadad_obs::LazyCounter =
        hadad_obs::LazyCounter::new("chase.deadline_expiries");
    RUNS.incr();
    ROUNDS.add(stats.rounds as u64);
    FIRINGS.add(stats.firings());
    VETOES.add(stats.pruned_firings as u64);
    MERGES.add(stats.egd_merges as u64);
    MATCHES.add(stats.matches_enumerated());
    if stats.exhausted == Some(ExhaustedBy::Deadline) {
        DEADLINES.incr();
    }
}

/// A premise match buffered for application, flattened so the enumeration
/// sink copies two small vectors instead of cloning a whole [`Match`]
/// (with its `HashMap`) per match.
struct PendingFiring {
    bindings: Vec<(u32, NodeId)>,
    fact_indices: Vec<usize>,
}

/// Positions a predicate is functional in, derived from the engine's own
/// EGDs: `inputs` are the agreeing positions of the two-atom premise,
/// `outputs` the equated ones. Existence of such an EGD proves that the
/// outputs are semantically determined by the inputs, which is what makes
/// conclusion-atom *reuse* sound (see [`ChaseEngine::apply_tgd`]). Public
/// so static analysis (`hadad-analyze`) can certify which TGD existentials
/// the engine will bind by reuse rather than mint as fresh nulls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionalSig {
    /// Premise positions the two atoms agree on (the functional key).
    pub inputs: Vec<usize>,
    /// Positions whose values the EGD forces equal (determined outputs).
    pub outputs: Vec<usize>,
}

/// Detects the generalized `Egd::functional` shape: two atoms over one
/// predicate whose args agree on the `inputs` positions and carry distinct,
/// premise-unique variables on the `outputs` positions, every such pair
/// (and nothing else) being equated. Covers `I_multiM` (one output) and
/// the QR/LU EGDs (two outputs) as well as inverse-functional constraints
/// like `name-unique` (input = the name constant position).
pub fn functional_sig(egd: &Egd) -> Option<(crate::symbols::PredId, FunctionalSig)> {
    let [a, b] = egd.premise.as_slice() else {
        return None;
    };
    if a.pred != b.pred || a.args.len() != b.args.len() {
        return None;
    }
    let mut inputs = Vec::new();
    let mut outputs = Vec::new();
    let mut pairs = Vec::new();
    for (i, (ta, tb)) in a.args.iter().zip(&b.args).enumerate() {
        if ta == tb {
            inputs.push(i);
        } else {
            let (Term::Var(x), Term::Var(y)) = (ta, tb) else {
                return None;
            };
            // The equated variables must be tied to their slot alone.
            let occurrences = |v: u32| {
                egd.premise.iter().flat_map(|a| &a.args).filter(|t| **t == Term::Var(v)).count()
            };
            if occurrences(*x) != 1 || occurrences(*y) != 1 {
                return None;
            }
            outputs.push(i);
            pairs.push((*x, *y));
        }
    }
    if outputs.is_empty() || egd.equalities.len() != pairs.len() {
        return None;
    }
    for (x, y) in pairs {
        let eq = (Term::Var(x), Term::Var(y));
        let rev = (Term::Var(y), Term::Var(x));
        if !egd.equalities.contains(&eq) && !egd.equalities.contains(&rev) {
            return None;
        }
    }
    Some((a.pred, FunctionalSig { inputs, outputs }))
}

/// The chase engine: an ordered list of constraints plus budgets.
#[derive(Debug, Clone)]
pub struct ChaseEngine {
    /// The dependencies to saturate under, in firing order.
    pub constraints: Vec<Constraint>,
    /// Resource bounds ending a divergent run.
    pub budget: ChaseBudget,
    /// Naive or semi-naïve premise evaluation.
    pub mode: EvalMode,
}

impl ChaseEngine {
    /// An engine over `constraints` with default budget and mode.
    pub fn new(constraints: Vec<Constraint>) -> Self {
        ChaseEngine { constraints, budget: ChaseBudget::default(), mode: EvalMode::default() }
    }

    /// Replaces the budget.
    pub fn with_budget(mut self, budget: ChaseBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Replaces the evaluation mode.
    pub fn with_mode(mut self, mode: EvalMode) -> Self {
        self.mode = mode;
        self
    }

    /// Runs the chase to fixpoint (or budget) without pruning.
    pub fn chase(&self, inst: &mut Instance) -> (ChaseOutcome, ChaseStats) {
        self.chase_with(inst, &mut NoPrune)
    }

    /// Runs the chase with a pruning hook.
    ///
    /// Every run publishes its aggregate [`ChaseStats`] to the shared
    /// `hadad-obs` metrics registry (`chase.rounds`, `chase.rule_firings`,
    /// `chase.rule_vetoes`, `chase.egd_merges`, `chase.matches`,
    /// `chase.deadline_expiries`) and executes under a `"chase"` tracing
    /// span — the per-rule vectors in the returned stats stay the
    /// fine-grained record.
    pub fn chase_with(
        &self,
        inst: &mut Instance,
        pruner: &mut dyn Pruner,
    ) -> (ChaseOutcome, ChaseStats) {
        let _span = hadad_obs::span("chase");
        let (outcome, stats) = self.chase_run(inst, pruner);
        publish_chase_metrics(&stats);
        (outcome, stats)
    }

    fn chase_run(
        &self,
        inst: &mut Instance,
        pruner: &mut dyn Pruner,
    ) -> (ChaseOutcome, ChaseStats) {
        let mut stats = ChaseStats {
            tgd_firings: self.constraints.iter().map(|c| (c.name().to_owned(), 0)).collect(),
            rule_matches: self.constraints.iter().map(|c| (c.name().to_owned(), 0)).collect(),
            rule_vetoes: self.constraints.iter().map(|c| (c.name().to_owned(), 0)).collect(),
            ..Default::default()
        };
        // Predicates the engine's own EGDs prove functional: conclusion
        // atoms over them may bind existentials to existing witnesses
        // (core-chase-style reuse) instead of churning fresh nulls the
        // EGDs would merge a round later.
        let functional: HashMap<crate::symbols::PredId, FunctionalSig> = self
            .constraints
            .iter()
            .filter_map(|c| match c {
                Constraint::Egd(e) => functional_sig(e),
                Constraint::Tgd(_) => None,
            })
            .collect();
        // Per-rule clock watermark: facts stamped after it are this rule's
        // delta. Zero means "everything is new" (the naive first round).
        let mut last_seen: Vec<u64> = vec![0; self.constraints.len()];
        let mut prev_round_clock = 0u64;
        for _round in 0..self.budget.max_rounds {
            if self.budget.deadline_passed() {
                stats.exhausted = Some(ExhaustedBy::Deadline);
                return (ChaseOutcome::BudgetExhausted, stats);
            }
            if hadad_failpoint::hit("chase.round").is_err() {
                stats.exhausted = Some(ExhaustedBy::Fault);
                return (ChaseOutcome::BudgetExhausted, stats);
            }
            stats.rounds += 1;
            stats.round_deltas.push(inst.delta_size(prev_round_clock));
            prev_round_clock = inst.clock();
            let mut changed = false;
            for (ci, c) in self.constraints.iter().enumerate() {
                let watermark = match self.mode {
                    EvalMode::Naive => 0,
                    EvalMode::SemiNaive => last_seen[ci],
                };
                // Snapshot before enumeration: facts this rule creates (or
                // EGD re-stamps) during application stay in its next delta.
                let snapshot = inst.clock();
                match c {
                    Constraint::Egd(egd) => {
                        match self.apply_egd(
                            inst,
                            egd,
                            watermark,
                            &mut stats.rule_matches[ci].1,
                        ) {
                            Ok(merges) => {
                                if merges > 0 {
                                    stats.egd_merges += merges;
                                    changed = true;
                                }
                            }
                            Err(clash) => return (ChaseOutcome::ConstClash(clash), stats),
                        }
                    }
                    Constraint::Tgd(tgd) => {
                        let (fired, pruned, over_budget) = self.apply_tgd(
                            inst,
                            ci,
                            tgd,
                            pruner,
                            watermark,
                            &functional,
                            &mut stats.rule_matches[ci].1,
                        );
                        stats.tgd_firings[ci].1 += fired;
                        stats.pruned_firings += pruned;
                        stats.rule_vetoes[ci].1 += pruned;
                        if fired > 0 {
                            changed = true;
                        }
                        if let Some(by) = over_budget {
                            stats.exhausted = Some(by);
                            return (ChaseOutcome::BudgetExhausted, stats);
                        }
                    }
                }
                last_seen[ci] = snapshot;
                if inst.num_facts() > self.budget.max_facts {
                    stats.exhausted = Some(ExhaustedBy::Facts);
                    return (ChaseOutcome::BudgetExhausted, stats);
                }
                if inst.num_nulls() > self.budget.max_nulls {
                    stats.exhausted = Some(ExhaustedBy::Nulls);
                    return (ChaseOutcome::BudgetExhausted, stats);
                }
            }
            if !changed {
                return (ChaseOutcome::Saturated, stats);
            }
            pruner.end_round(inst);
        }
        stats.exhausted = Some(ExhaustedBy::Rounds);
        (ChaseOutcome::BudgetExhausted, stats)
    }

    /// Applies one EGD over its delta; returns the number of merges, or the
    /// clashing constants. Merge requests stream out of the enumeration
    /// sink (no match materialization) and apply afterwards.
    fn apply_egd(
        &self,
        inst: &mut Instance,
        egd: &Egd,
        watermark: u64,
        matches_seen: &mut u64,
    ) -> Result<usize, ConstClash> {
        // A merge target is either a node bound during the match or a
        // constant to intern at application time.
        enum MergeArg {
            Node(NodeId),
            Const(crate::symbols::SymId),
        }
        let resolve = |bindings: &HashMap<u32, NodeId>, t: &Term| match t {
            Term::Var(v) => bindings.get(v).copied().map(MergeArg::Node),
            Term::Const(c) => Some(MergeArg::Const(*c)),
        };
        let mut merges: Vec<(MergeArg, MergeArg)> = Vec::new();
        let mut collect = |m: &Match| {
            *matches_seen += 1;
            for (l, r) in &egd.equalities {
                if let (Some(ln), Some(rn)) = (resolve(&m.bindings, l), resolve(&m.bindings, r))
                {
                    merges.push((ln, rn));
                }
            }
            true
        };
        if is_symmetric_pair(egd) {
            homomorphism::for_each_match_since_symmetric(
                inst,
                &egd.premise,
                watermark,
                &mut collect,
            );
        } else {
            homomorphism::for_each_match_since(inst, &egd.premise, watermark, &mut collect);
        }
        if merges.is_empty() {
            return Ok(0);
        }
        let mut count = 0;
        for (a, b) in merges {
            let a = match a {
                MergeArg::Node(n) => n,
                MergeArg::Const(c) => inst.const_node(c),
            };
            let b = match b {
                MergeArg::Node(n) => n,
                MergeArg::Const(c) => inst.const_node(c),
            };
            if inst.find(a) != inst.find(b) {
                inst.merge(a, b)?;
                count += 1;
            }
        }
        if count > 0 {
            inst.rehash();
        }
        Ok(count)
    }

    /// Applies one TGD (restricted semantics, with core-chase-style
    /// existential reuse through `functional` predicates) over its delta.
    /// Returns `(firings, pruned, over_budget)`.
    #[allow(clippy::too_many_arguments)]
    fn apply_tgd(
        &self,
        inst: &mut Instance,
        rule_idx: usize,
        tgd: &Tgd,
        pruner: &mut dyn Pruner,
        watermark: u64,
        functional: &HashMap<crate::symbols::PredId, FunctionalSig>,
        matches_seen: &mut u64,
    ) -> (usize, usize, Option<ExhaustedBy>) {
        let existentials = tgd.existential_vars();
        // Phase 1: stream premise matches into a flat buffer (immutable
        // borrow; the sink copies bindings + fact indices, not Matches).
        let mut pending: Vec<PendingFiring> = Vec::new();
        homomorphism::for_each_match_since(inst, &tgd.premise, watermark, &mut |m| {
            *matches_seen += 1;
            pending.push(PendingFiring {
                bindings: m.bindings.iter().map(|(&v, &n)| (v, n)).collect(),
                fact_indices: m.fact_indices.clone(),
            });
            true
        });
        let mut fired = 0usize;
        let mut pruned = 0usize;

        // Phase 2: re-check satisfiability against the instance as it grows
        // (restricted chase), consult the pruner, and apply. Fact indices
        // stay valid throughout: TGD application only appends facts.
        // The deadline is re-checked every `DEADLINE_STRIDE` firings so a
        // rule with a huge pending buffer can't blow past it by a round.
        const DEADLINE_STRIDE: usize = 64;
        for (fi, firing) in pending.into_iter().enumerate() {
            if fi % DEADLINE_STRIDE == 0 && self.budget.deadline_passed() {
                return (fired, pruned, Some(ExhaustedBy::Deadline));
            }
            let relevant: HashMap<u32, NodeId> = firing.bindings.iter().copied().collect();
            if homomorphism::satisfiable_with(inst, &tgd.conclusion, &relevant) {
                continue;
            }
            let m = Match { bindings: relevant, fact_indices: firing.fact_indices };
            if !pruner.allow_firing(inst, rule_idx, tgd, &m) {
                pruned += 1;
                continue;
            }
            // Provenance of new facts: conjunction of the premise image.
            let premise_provs: Vec<&Provenance> =
                m.fact_indices.iter().map(|&fi| &inst.fact(fi).prov).collect();
            let prov = Provenance::and_all(&premise_provs);
            let mut bindings = m.bindings;
            // Existential reuse: a conclusion atom over a functional
            // predicate whose input positions are fully bound determines
            // its outputs semantically — if a witnessing fact exists, bind
            // the existentials to it instead of minting fresh nulls the
            // functional EGD would merge (and re-stamp) a round later.
            // Iterated because one reuse can bind another atom's inputs
            // (e.g. `mul(b,c,F) ∧ mul(a,F,W)` chains through `F`).
            loop {
                let mut progressed = false;
                for atom in &tgd.conclusion {
                    let Some(sig) = functional.get(&atom.pred) else {
                        continue;
                    };
                    let unbound: Vec<(usize, u32)> = sig
                        .outputs
                        .iter()
                        .filter_map(|&p| match atom.args[p] {
                            Term::Var(v) if !bindings.contains_key(&v) => Some((p, v)),
                            _ => None,
                        })
                        .collect();
                    if unbound.is_empty() {
                        continue;
                    }
                    let input_nodes: Option<Vec<(usize, NodeId)>> = sig
                        .inputs
                        .iter()
                        .map(|&p| match atom.args[p] {
                            Term::Var(v) => bindings.get(&v).map(|&n| (p, n)),
                            Term::Const(c) => inst.node_of_const(c).map(|n| (p, n)),
                        })
                        .collect();
                    let Some(input_nodes) = input_nodes else {
                        continue;
                    };
                    if let Some(fact) = find_witness(inst, atom.pred, &input_nodes) {
                        for &(p, v) in &unbound {
                            bindings.insert(v, fact[p]);
                        }
                        progressed = true;
                    }
                }
                if !progressed {
                    break;
                }
            }
            for &ev in &existentials {
                bindings.entry(ev).or_insert_with(|| inst.fresh_null());
            }
            for atom in &tgd.conclusion {
                let args: Vec<NodeId> = atom
                    .args
                    .iter()
                    .map(|t| match t {
                        Term::Var(v) => *bindings.get(v).expect("conclusion var bound"),
                        Term::Const(c) => inst.const_node(*c),
                    })
                    .collect();
                inst.insert(atom.pred, args, prov.clone(), Some(rule_idx));
            }
            fired += 1;
            if inst.num_facts() > self.budget.max_facts {
                return (fired, pruned, Some(ExhaustedBy::Facts));
            }
            if inst.num_nulls() > self.budget.max_nulls {
                return (fired, pruned, Some(ExhaustedBy::Nulls));
            }
        }
        (fired, pruned, None)
    }
}

/// Canonical args of a fact over `pred` agreeing with `input_nodes` at the
/// given positions, if one exists — the witness an existential reuse binds
/// to. Probes the positional index through the first input position (the
/// instance is canonical during TGD application); a predicate functional
/// in *all* positions has at most one semantically distinct fact, so the
/// first is taken.
fn find_witness(
    inst: &Instance,
    pred: crate::symbols::PredId,
    input_nodes: &[(usize, NodeId)],
) -> Option<Vec<NodeId>> {
    let matches_inputs =
        |args: &[NodeId]| input_nodes.iter().all(|&(p, n)| inst.find(args[p]) == inst.find(n));
    let scan = |idxs: &[usize]| {
        idxs.iter()
            .map(|&i| inst.fact(i))
            .find(|f| matches_inputs(&f.args))
            .map(|f| f.args.iter().map(|&a| inst.find(a)).collect())
    };
    match input_nodes.first() {
        Some(&(p, n)) => match inst.facts_with_pred_arg(pred, p as u32, inst.find(n)) {
            Some(idxs) => scan(idxs),
            None => scan(inst.facts_with_pred(pred)),
        },
        None => scan(inst.facts_with_pred(pred)),
    }
}

/// True for the `Egd::functional` shape: two atoms over the same predicate
/// that agree everywhere except one position holding two distinct variables
/// equated by the EGD. Matches of such a premise are closed under swapping
/// the atoms, so the engine may enumerate only one orientation.
fn is_symmetric_pair(egd: &Egd) -> bool {
    let [a, b] = egd.premise.as_slice() else {
        return false;
    };
    if a.pred != b.pred || a.args.len() != b.args.len() || egd.equalities.len() != 1 {
        return false;
    }
    let mut diff = None;
    for (ta, tb) in a.args.iter().zip(&b.args) {
        if ta != tb {
            if diff.is_some() {
                return false;
            }
            diff = Some((ta, tb));
        }
    }
    match diff {
        Some((Term::Var(x), Term::Var(y))) => {
            // The swap argument needs each differing variable tied to its
            // atom's slot alone: occurring anywhere else in the premise
            // (e.g. [f(x,x), f(x,y)]) breaks the mirror-match bijection.
            let occurrences = |v: u32| {
                egd.premise.iter().flat_map(|a| &a.args).filter(|t| **t == Term::Var(v)).count()
            };
            if occurrences(*x) != 1 || occurrences(*y) != 1 {
                return false;
            }
            let eq = &egd.equalities[0];
            *eq == (Term::Var(*x), Term::Var(*y)) || *eq == (Term::Var(*y), Term::Var(*x))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::symbols::Vocabulary;

    /// Paper §4.1 example: Review(p, r, t) → ∃a PC(r, a), plus the EGD that
    /// a paper is submitted to a single track.
    #[test]
    fn review_pc_example() {
        let mut vocab = Vocabulary::new();
        let review = vocab.predicate("Review", 3);
        let pc = vocab.predicate("PC", 2);

        let tgd = Tgd::new(
            "review-implies-pc",
            vec![Atom::new(review, vec![Term::Var(0), Term::Var(1), Term::Var(2)])],
            vec![Atom::new(pc, vec![Term::Var(1), Term::Var(3)])],
        );
        let egd = Egd::new(
            "single-track",
            vec![
                Atom::new(review, vec![Term::Var(0), Term::Var(1), Term::Var(2)]),
                Atom::new(review, vec![Term::Var(0), Term::Var(3), Term::Var(4)]),
            ],
            vec![(Term::Var(2), Term::Var(4))],
        );

        let mut inst = Instance::new();
        let p = inst.const_node(vocab.constant("paper1"));
        let r1 = inst.const_node(vocab.constant("alice"));
        let r2 = inst.const_node(vocab.constant("bob"));
        let t1 = inst.fresh_null();
        let t2 = inst.fresh_null();
        inst.insert(review, vec![p, r1, t1], Provenance::empty(), None);
        inst.insert(review, vec![p, r2, t2], Provenance::empty(), None);

        let engine = ChaseEngine::new(vec![tgd.into(), egd.into()]);
        let (outcome, stats) = engine.chase(&mut inst);
        assert_eq!(outcome, ChaseOutcome::Saturated);
        // Tracks merged by the EGD.
        assert_eq!(inst.find(t1), inst.find(t2));
        assert!(stats.egd_merges >= 1);
        // PC facts derived for both reviewers.
        assert_eq!(inst.facts_with_pred(pc).len(), 2);
    }

    #[test]
    fn restricted_chase_does_not_refire() {
        let mut vocab = Vocabulary::new();
        let p = vocab.predicate("P", 1);
        let q = vocab.predicate("Q", 2);
        // P(x) → ∃y Q(x, y); chasing twice must not add a second witness.
        let tgd = Tgd::new(
            "p-implies-q",
            vec![Atom::new(p, vec![Term::Var(0)])],
            vec![Atom::new(q, vec![Term::Var(0), Term::Var(1)])],
        );
        let mut inst = Instance::new();
        let a = inst.const_node(vocab.constant("a"));
        inst.insert(p, vec![a], Provenance::empty(), None);
        let engine = ChaseEngine::new(vec![tgd.into()]);
        let (outcome, _) = engine.chase(&mut inst);
        assert_eq!(outcome, ChaseOutcome::Saturated);
        assert_eq!(inst.facts_with_pred(q).len(), 1);
        assert_eq!(inst.num_nulls(), 1);
    }

    #[test]
    fn budget_stops_divergent_chase() {
        let mut vocab = Vocabulary::new();
        let e = vocab.predicate("E", 2);
        // E(x, y) → ∃z E(y, z): classic non-terminating TGD.
        let tgd = Tgd::new(
            "succ",
            vec![Atom::new(e, vec![Term::Var(0), Term::Var(1)])],
            vec![Atom::new(e, vec![Term::Var(1), Term::Var(2)])],
        );
        let mut inst = Instance::new();
        let a = inst.const_node(vocab.constant("a"));
        let b = inst.const_node(vocab.constant("b"));
        inst.insert(e, vec![a, b], Provenance::empty(), None);
        let engine = ChaseEngine::new(vec![tgd.into()]).with_budget(ChaseBudget {
            max_rounds: 3,
            max_facts: 1000,
            max_nulls: 1000,
            deadline: None,
        });
        let (outcome, stats) = engine.chase(&mut inst);
        assert_eq!(outcome, ChaseOutcome::BudgetExhausted);
        assert_eq!(stats.rounds, 3);
        assert!(inst.num_facts() >= 3);
    }

    #[test]
    fn pruner_vetoes_firings() {
        struct VetoAll;
        impl Pruner for VetoAll {
            fn allow_firing(&mut self, _: &Instance, _: usize, _: &Tgd, _: &Match) -> bool {
                false
            }
        }
        let mut vocab = Vocabulary::new();
        let p = vocab.predicate("P", 1);
        let q = vocab.predicate("Q", 1);
        let tgd = Tgd::new(
            "p-q",
            vec![Atom::new(p, vec![Term::Var(0)])],
            vec![Atom::new(q, vec![Term::Var(0)])],
        );
        let mut inst = Instance::new();
        let a = inst.const_node(vocab.constant("a"));
        inst.insert(p, vec![a], Provenance::empty(), None);
        let engine = ChaseEngine::new(vec![tgd.into()]);
        let (outcome, stats) = engine.chase_with(&mut inst, &mut VetoAll);
        assert_eq!(outcome, ChaseOutcome::Saturated);
        assert_eq!(inst.facts_with_pred(q).len(), 0);
        assert!(stats.pruned_firings > 0);
    }

    #[test]
    fn cost_pruner_vetoes_above_incumbent_and_tightens() {
        /// Prices every firing at the number of premise facts, scaled.
        struct FactCountOracle(f64);
        impl CostOracle for FactCountOracle {
            fn firing_cost(&self, _: &Instance, _: &Tgd, m: &Match) -> f64 {
                self.0 * m.fact_indices.len() as f64
            }
        }
        let mut vocab = Vocabulary::new();
        let p = vocab.predicate("P", 1);
        let q = vocab.predicate("Q", 1);
        let tgd = Tgd::new(
            "p-q",
            vec![Atom::new(p, vec![Term::Var(0)])],
            vec![Atom::new(q, vec![Term::Var(0)])],
        );
        let build = |vocab: &mut Vocabulary| {
            let mut inst = Instance::new();
            let a = inst.const_node(vocab.constant("a"));
            inst.insert(p, vec![a], Provenance::empty(), None);
            inst
        };
        let engine = ChaseEngine::new(vec![tgd.into()]);

        // Incumbent below the firing cost: vetoed, counted per rule.
        let oracle = FactCountOracle(10.0);
        let mut inst = build(&mut vocab);
        let mut pruner = CostPruner::new(&oracle, 5.0);
        let (_, stats) = engine.chase_with(&mut inst, &mut pruner);
        assert_eq!(inst.facts_with_pred(q).len(), 0);
        assert_eq!(stats.pruned_firings, 1);
        assert_eq!(stats.rule_vetoes, vec![("p-q".to_owned(), 1)]);

        // Incumbent above: fires. Tightening never raises the threshold.
        let mut inst = build(&mut vocab);
        let mut pruner = CostPruner::new(&oracle, 50.0);
        pruner.tighten(100.0);
        assert_eq!(pruner.incumbent(), 50.0);
        pruner.tighten(20.0);
        assert_eq!(pruner.incumbent(), 20.0);
        let (_, stats) = engine.chase_with(&mut inst, &mut pruner);
        assert_eq!(inst.facts_with_pred(q).len(), 1);
        assert_eq!(stats.pruned_firings, 0);
    }

    #[test]
    fn end_round_fires_between_rounds() {
        struct RoundCounter(usize);
        impl Pruner for RoundCounter {
            fn allow_firing(&mut self, _: &Instance, _: usize, _: &Tgd, _: &Match) -> bool {
                true
            }
            fn end_round(&mut self, _: &Instance) {
                self.0 += 1;
            }
        }
        // Transitive step over a 4-node path saturates in 4 rounds; the
        // hook runs after every round that changed the instance (not after
        // the final quiet round).
        let mut vocab = Vocabulary::new();
        let e = vocab.predicate("E", 2);
        let t = vocab.predicate("T", 2);
        let rules: Vec<Constraint> = vec![
            Tgd::new(
                "base",
                vec![Atom::new(e, vec![Term::Var(0), Term::Var(1)])],
                vec![Atom::new(t, vec![Term::Var(0), Term::Var(1)])],
            )
            .into(),
            Tgd::new(
                "step",
                vec![
                    Atom::new(t, vec![Term::Var(0), Term::Var(1)]),
                    Atom::new(e, vec![Term::Var(1), Term::Var(2)]),
                ],
                vec![Atom::new(t, vec![Term::Var(0), Term::Var(2)])],
            )
            .into(),
        ];
        let mut inst = Instance::new();
        let ns: Vec<NodeId> =
            (0..4).map(|i| inst.const_node(vocab.constant(format!("n{i}")))).collect();
        for w in ns.windows(2) {
            inst.insert(e, vec![w[0], w[1]], Provenance::empty(), None);
        }
        let mut counter = RoundCounter(0);
        let (outcome, stats) = ChaseEngine::new(rules).chase_with(&mut inst, &mut counter);
        assert_eq!(outcome, ChaseOutcome::Saturated);
        assert_eq!(counter.0, stats.rounds - 1, "hook runs after every changing round");
    }

    #[test]
    fn functional_egd_dedups_outputs() {
        let mut vocab = Vocabulary::new();
        let f = vocab.predicate("f", 2);
        let egd = Egd::functional("f-func", f, 2);
        let mut inst = Instance::new();
        let x = inst.const_node(vocab.constant("x"));
        let o1 = inst.fresh_null();
        let o2 = inst.fresh_null();
        inst.insert(f, vec![x, o1], Provenance::empty(), None);
        inst.insert(f, vec![x, o2], Provenance::empty(), None);
        let engine = ChaseEngine::new(vec![egd.into()]);
        let (outcome, _) = engine.chase(&mut inst);
        assert_eq!(outcome, ChaseOutcome::Saturated);
        assert_eq!(inst.find(o1), inst.find(o2));
        assert_eq!(inst.facts_with_pred(f).len(), 1, "duplicate facts coalesced");
    }

    #[test]
    fn const_clash_carries_the_constants() {
        let mut vocab = Vocabulary::new();
        let f = vocab.predicate("f", 2);
        let egd = Egd::functional("f-func", f, 2);
        let mut inst = Instance::new();
        let x = inst.const_node(vocab.constant("x"));
        let one = vocab.constant("one");
        let two = vocab.constant("two");
        let n1 = inst.const_node(one);
        let n2 = inst.const_node(two);
        inst.insert(f, vec![x, n1], Provenance::empty(), None);
        inst.insert(f, vec![x, n2], Provenance::empty(), None);
        let engine = ChaseEngine::new(vec![egd.into()]);
        let (outcome, _) = engine.chase(&mut inst);
        match outcome {
            ChaseOutcome::ConstClash(clash) => {
                let pair = [clash.a, clash.b];
                assert!(pair.contains(&one) && pair.contains(&two), "payload: {clash:?}");
            }
            other => panic!("expected ConstClash, got {other:?}"),
        }
    }

    #[test]
    fn symmetric_pair_detection_requires_unique_diff_vars() {
        use crate::symbols::PredId;
        assert!(is_symmetric_pair(&Egd::functional("f", PredId(0), 3)));
        // [f(x,x), f(x,y)] → x = y: one differing position, but x also
        // occurs elsewhere, so the atom-swap mirror argument fails and the
        // single-orientation pass must not be used.
        let tricky = Egd::new(
            "tricky",
            vec![
                Atom::new(PredId(0), vec![Term::Var(0), Term::Var(0)]),
                Atom::new(PredId(0), vec![Term::Var(0), Term::Var(1)]),
            ],
            vec![(Term::Var(0), Term::Var(1))],
        );
        assert!(!is_symmetric_pair(&tricky));
    }

    #[test]
    fn asymmetric_egd_merges_old_new_pairs_under_semi_naive() {
        // The tricky EGD above, driven so its only merge pairs an OLD fact
        // with a NEW one mid-chase: f(a,a) exists from the start, a TGD
        // adds f(a,w) in round one, and the EGD must still equate a = w.
        let mut vocab = Vocabulary::new();
        let f = vocab.predicate("f", 2);
        let q = vocab.predicate("Q", 2);
        let egd = Egd::new(
            "tricky",
            vec![
                Atom::new(f, vec![Term::Var(0), Term::Var(0)]),
                Atom::new(f, vec![Term::Var(0), Term::Var(1)]),
            ],
            vec![(Term::Var(0), Term::Var(1))],
        );
        let tgd = Tgd::new(
            "copy",
            vec![Atom::new(q, vec![Term::Var(0), Term::Var(1)])],
            vec![Atom::new(f, vec![Term::Var(0), Term::Var(1)])],
        );
        let mut inst = Instance::new();
        let a = inst.const_node(vocab.constant("a"));
        let n = inst.fresh_null();
        inst.insert(f, vec![a, a], Provenance::empty(), None);
        inst.insert(q, vec![a, n], Provenance::empty(), None);
        // EGD ordered first so its first (naive) round sees only f(a,a);
        // the TGD then adds f(a,n) and the EGD's delta round must pair the
        // old f(a,a) with the new f(a,n) to merge a = n.
        let engine = ChaseEngine::new(vec![egd.into(), tgd.into()]);
        let (outcome, stats) = engine.chase(&mut inst);
        assert_eq!(outcome, ChaseOutcome::Saturated);
        assert!(stats.egd_merges >= 1, "old⋈new merge missed: {stats:?}");
        assert_eq!(inst.find(n), inst.find(a));
        assert_eq!(inst.facts_with_pred(f).len(), 1, "f(a,n) coalesced into f(a,a)");
    }

    #[test]
    fn semi_naive_and_naive_agree_and_semi_naive_enumerates_less() {
        // Transitive closure: E(x,y) ∧ E(y,z) → T(x,z); T(x,y) ∧ E(y,z) → T(x,z)
        // over a 6-node path. Saturating this naively re-enumerates every
        // join each round; semi-naïve only touches the frontier.
        let mut vocab = Vocabulary::new();
        let e = vocab.predicate("E", 2);
        let t = vocab.predicate("T", 2);
        let rules: Vec<Constraint> = vec![
            Tgd::new(
                "base",
                vec![Atom::new(e, vec![Term::Var(0), Term::Var(1)])],
                vec![Atom::new(t, vec![Term::Var(0), Term::Var(1)])],
            )
            .into(),
            Tgd::new(
                "step",
                vec![
                    Atom::new(t, vec![Term::Var(0), Term::Var(1)]),
                    Atom::new(e, vec![Term::Var(1), Term::Var(2)]),
                ],
                vec![Atom::new(t, vec![Term::Var(0), Term::Var(2)])],
            )
            .into(),
        ];
        let mut build = || {
            let mut inst = Instance::new();
            let ns: Vec<NodeId> =
                (0..6).map(|i| inst.const_node(vocab.constant(format!("n{i}")))).collect();
            for w in ns.windows(2) {
                inst.insert(e, vec![w[0], w[1]], Provenance::empty(), None);
            }
            inst
        };
        let mut naive_inst = build();
        let mut semi_inst = build();
        let naive = ChaseEngine::new(rules.clone()).with_mode(EvalMode::Naive);
        let semi = ChaseEngine::new(rules);
        let (o1, s1) = naive.chase(&mut naive_inst);
        let (o2, s2) = semi.chase(&mut semi_inst);
        assert_eq!(o1, ChaseOutcome::Saturated);
        assert_eq!(o2, ChaseOutcome::Saturated);
        assert_eq!(naive_inst.num_facts(), semi_inst.num_facts());
        assert_eq!(naive_inst.facts_with_pred(t).len(), 15); // 5+4+3+2+1
        assert!(
            s2.matches_enumerated() < s1.matches_enumerated(),
            "semi-naïve {} should beat naive {}",
            s2.matches_enumerated(),
            s1.matches_enumerated()
        );
        assert_eq!(s2.round_deltas[0], 5, "round one sees all base facts");
    }
}
