//! Conjunctive queries `Q(x̄) :- R1(ȳ1), ..., Rn(ȳn)` (paper §4.1).

use crate::atom::Atom;
use crate::symbols::Vocabulary;
use crate::term::Term;

/// A conjunctive query: distinguished head terms plus a body of relational
/// atoms. Head positions are usually variables, but queries produced by
/// selections (and rewritings of them) may carry constants in the head —
/// e.g. `Q(x, 7) :- R(x, 7)` after an equality selection on the second
/// column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cq {
    /// Distinguished (head) terms.
    pub head: Vec<Term>,
    /// Body atoms (conjunction).
    pub body: Vec<Atom>,
}

impl Cq {
    /// A CQ `head :- body`; debug-asserts safety (head vars body-bound).
    pub fn new(head: Vec<Term>, body: Vec<Atom>) -> Self {
        let q = Cq { head, body };
        debug_assert!(q.is_safe(), "head variables must occur in the body");
        q
    }

    /// Convenience constructor for the common all-variable head.
    pub fn with_var_head(head: Vec<u32>, body: Vec<Atom>) -> Self {
        Cq::new(head.into_iter().map(Term::Var).collect(), body)
    }

    /// Head variables, skipping constant head positions.
    pub fn head_vars(&self) -> impl Iterator<Item = u32> + '_ {
        self.head.iter().filter_map(Term::as_var)
    }

    /// Safety: every head *variable* appears in some body atom (constants
    /// are trivially safe).
    pub fn is_safe(&self) -> bool {
        self.head_vars().all(|h| self.body.iter().any(|a| a.vars().any(|v| v == h)))
    }

    /// Largest variable index used, plus one (for fresh-variable allocation).
    pub fn var_bound(&self) -> u32 {
        self.body
            .iter()
            .flat_map(super::atom::Atom::vars)
            .chain(self.head_vars())
            .max()
            .map_or(0, |v| v + 1)
    }

    /// Renders `Q(?h..) :- atom, atom` for debugging.
    pub fn display(&self, vocab: &Vocabulary) -> String {
        let head: Vec<String> = self
            .head
            .iter()
            .map(|t| match t {
                Term::Var(v) => format!("?{v}"),
                Term::Const(c) => vocab.const_name(*c).to_owned(),
            })
            .collect();
        let body: Vec<String> = self.body.iter().map(|a| a.display(vocab)).collect();
        format!("Q({}) :- {}", head.join(", "), body.join(" ∧ "))
    }

    /// Applies a variable renaming `old -> new` to every term.
    pub fn rename_vars(&self, f: impl Fn(u32) -> u32) -> Cq {
        let map = |t: &Term| match t {
            Term::Var(v) => Term::Var(f(*v)),
            c => *c,
        };
        Cq {
            head: self.head.iter().map(&map).collect(),
            body: self
                .body
                .iter()
                .map(|a| Atom { pred: a.pred, args: a.args.iter().map(&map).collect() })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::PredId;

    fn atom(pred: u32, vars: &[u32]) -> Atom {
        Atom::new(PredId(pred), vars.iter().map(|&v| Term::Var(v)).collect())
    }

    #[test]
    fn safety_check() {
        let q = Cq { head: vec![Term::Var(0)], body: vec![atom(0, &[0, 1])] };
        assert!(q.is_safe());
        let unsafe_q = Cq { head: vec![Term::Var(9)], body: vec![atom(0, &[0, 1])] };
        assert!(!unsafe_q.is_safe());
    }

    #[test]
    fn constant_heads_are_safe() {
        let mut vocab = Vocabulary::new();
        let seven = vocab.constant("7");
        let q = Cq::new(vec![Term::Var(0), Term::Const(seven)], vec![atom(0, &[0, 1])]);
        assert!(q.is_safe());
        assert_eq!(q.head_vars().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn var_bound_counts_head_and_body() {
        let q = Cq { head: vec![Term::Var(0)], body: vec![atom(0, &[0, 5])] };
        assert_eq!(q.var_bound(), 6);
    }

    #[test]
    fn rename_shifts_everything() {
        let q = Cq::with_var_head(vec![0], vec![atom(0, &[0, 1])]);
        let r = q.rename_vars(|v| v + 10);
        assert_eq!(r.head, vec![Term::Var(10)]);
        assert_eq!(r.body[0].args, vec![Term::Var(10), Term::Var(11)]);
    }
}
