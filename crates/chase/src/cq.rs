//! Conjunctive queries `Q(x̄) :- R1(ȳ1), ..., Rn(ȳn)` (paper §4.1).

use crate::atom::Atom;
use crate::symbols::Vocabulary;
use crate::term::Term;

/// A conjunctive query: distinguished head variables plus a body of
/// relational atoms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cq {
    /// Distinguished (head) variables.
    pub head: Vec<u32>,
    pub body: Vec<Atom>,
}

impl Cq {
    pub fn new(head: Vec<u32>, body: Vec<Atom>) -> Self {
        let q = Cq { head, body };
        debug_assert!(q.is_safe(), "head variables must occur in the body");
        q
    }

    /// Safety: every head variable appears in some body atom.
    pub fn is_safe(&self) -> bool {
        self.head.iter().all(|h| self.body.iter().any(|a| a.vars().any(|v| v == *h)))
    }

    /// Largest variable index used, plus one (for fresh-variable allocation).
    pub fn var_bound(&self) -> u32 {
        self.body
            .iter()
            .flat_map(|a| a.vars())
            .chain(self.head.iter().copied())
            .max()
            .map_or(0, |v| v + 1)
    }

    /// Renders `Q(?h..) :- atom, atom` for debugging.
    pub fn display(&self, vocab: &Vocabulary) -> String {
        let head: Vec<String> = self.head.iter().map(|h| format!("?{h}")).collect();
        let body: Vec<String> = self.body.iter().map(|a| a.display(vocab)).collect();
        format!("Q({}) :- {}", head.join(", "), body.join(" ∧ "))
    }

    /// Applies a variable renaming `old -> new` to every term.
    pub fn rename_vars(&self, f: impl Fn(u32) -> u32) -> Cq {
        Cq {
            head: self.head.iter().map(|&v| f(v)).collect(),
            body: self
                .body
                .iter()
                .map(|a| Atom {
                    pred: a.pred,
                    args: a
                        .args
                        .iter()
                        .map(|t| match t {
                            Term::Var(v) => Term::Var(f(*v)),
                            c => *c,
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::PredId;

    fn atom(pred: u32, vars: &[u32]) -> Atom {
        Atom::new(PredId(pred), vars.iter().map(|&v| Term::Var(v)).collect())
    }

    #[test]
    fn safety_check() {
        let q = Cq { head: vec![0], body: vec![atom(0, &[0, 1])] };
        assert!(q.is_safe());
        let unsafe_q = Cq { head: vec![9], body: vec![atom(0, &[0, 1])] };
        assert!(!unsafe_q.is_safe());
    }

    #[test]
    fn var_bound_counts_head_and_body() {
        let q = Cq { head: vec![0], body: vec![atom(0, &[0, 5])] };
        assert_eq!(q.var_bound(), 6);
    }

    #[test]
    fn rename_shifts_everything() {
        let q = Cq::new(vec![0], vec![atom(0, &[0, 1])]);
        let r = q.rename_vars(|v| v + 10);
        assert_eq!(r.head, vec![10]);
        assert_eq!(r.body[0].args, vec![Term::Var(10), Term::Var(11)]);
    }
}
