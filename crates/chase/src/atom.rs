//! Relational atoms.

use crate::symbols::{PredId, Vocabulary};
use crate::term::Term;

/// A relational atom `P(t1, ..., tn)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// The predicate symbol.
    pub pred: PredId,
    /// The argument terms, in position order.
    pub args: Vec<Term>,
}

impl Atom {
    /// An atom `pred(args...)`.
    pub fn new(pred: PredId, args: Vec<Term>) -> Self {
        Atom { pred, args }
    }

    /// All variable indices occurring in the atom.
    pub fn vars(&self) -> impl Iterator<Item = u32> + '_ {
        self.args.iter().filter_map(Term::as_var)
    }

    /// Renders `pred(arg, ...)` for debugging / test assertions.
    pub fn display(&self, vocab: &Vocabulary) -> String {
        let args: Vec<String> = self
            .args
            .iter()
            .map(|t| match t {
                Term::Var(v) => format!("?{v}"),
                Term::Const(c) => format!("{:?}", vocab.const_name(*c)),
            })
            .collect();
        format!("{}({})", vocab.pred_name(self.pred), args.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::SymId;

    #[test]
    fn vars_skips_constants() {
        let atom =
            Atom::new(PredId(0), vec![Term::Var(1), Term::Const(SymId(0)), Term::Var(4)]);
        let vars: Vec<u32> = atom.vars().collect();
        assert_eq!(vars, vec![1, 4]);
    }

    #[test]
    fn display_is_readable() {
        let mut v = Vocabulary::new();
        let p = v.predicate("name", 2);
        let c = v.constant("M.csv");
        let atom = Atom::new(p, vec![Term::Var(0), Term::Const(c)]);
        assert_eq!(atom.display(&v), "name(?0, \"M.csv\")");
    }
}
