//! Homomorphism (containment-mapping) enumeration: all ways to map a
//! conjunction of atoms into an instance. This powers TGD/EGD premise
//! matching in the chase and the query-match phase of PACB.
//!
//! Candidate facts for each atom are seeded from the instance's positional
//! index whenever an argument is already bound (by an earlier atom or by a
//! constant), instead of scanning every fact of the predicate. On top of
//! that, [`for_each_match_since`] enumerates only matches that touch the
//! *delta* — facts stamped after a watermark — which is the semi-naïve
//! evaluation primitive the chase engine builds on.

use std::collections::HashMap;

use crate::atom::Atom;
use crate::instance::{Instance, NodeId};
use crate::term::Term;

/// A match of a conjunction into an instance: variable bindings plus the
/// index of the fact each atom was mapped to.
#[derive(Debug, Clone)]
pub struct Match {
    /// Node each variable was bound to.
    pub bindings: HashMap<u32, NodeId>,
    /// Per conjunct, the index of the fact it mapped onto.
    pub fact_indices: Vec<usize>,
}

/// Stamp filter applied to the facts an atom may map to. The semi-naïve
/// pivot decomposition assigns `OldOnly` to atoms before the pivot,
/// `NewOnly` to the pivot, and `Any` after it, so each delta match is
/// enumerated exactly once across pivots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StampReq {
    Any,
    /// Fact stamp must be `<= watermark`.
    OldOnly,
    /// Fact stamp must be `> watermark`.
    NewOnly,
}

/// Enumerates homomorphisms of `atoms` into `inst`, invoking `sink` for
/// each. `sink` returning `false` stops the search early.
pub fn for_each_match(inst: &Instance, atoms: &[Atom], sink: &mut dyn FnMut(&Match) -> bool) {
    let reqs = vec![StampReq::Any; atoms.len()];
    let order = atom_order(inst, atoms, &reqs, 0);
    let mut m = Match { bindings: HashMap::new(), fact_indices: vec![usize::MAX; atoms.len()] };
    search(inst, atoms, &order, &reqs, 0, 0, &mut m, &mut |mm| sink(mm));
}

/// Semi-naïve enumeration: only homomorphisms mapping at least one atom to
/// a fact stamped after `watermark` (see [`Instance::clock`]). Each such
/// match is produced exactly once. `watermark == 0` degenerates to full
/// enumeration.
pub fn for_each_match_since(
    inst: &Instance,
    atoms: &[Atom],
    watermark: u64,
    sink: &mut dyn FnMut(&Match) -> bool,
) {
    if watermark == 0 {
        return for_each_match(inst, atoms, sink);
    }
    // An empty premise has one (empty) match, which involves no delta fact.
    if atoms.is_empty() {
        return;
    }
    for pivot in 0..atoms.len() {
        // O(log n) skip: a pivot whose predicate gained no facts since the
        // watermark contributes no matches. A rule whose premise preds all
        // sit outside the delta therefore costs one lookup per atom.
        if inst.facts_with_pred_since(atoms[pivot].pred, watermark).is_empty() {
            continue;
        }
        let mut reqs = vec![StampReq::Any; atoms.len()];
        for r in reqs.iter_mut().take(pivot) {
            *r = StampReq::OldOnly;
        }
        reqs[pivot] = StampReq::NewOnly;
        // Join order weighs each atom by its stamp-restricted cardinality:
        // with a small delta the pivot leads; with a large one (heavy EGD
        // churn) the small old prefix leads instead, keeping the total
        // probe volume across pivots at roughly one full pass.
        let order = atom_order(inst, atoms, &reqs, watermark);
        let mut m =
            Match { bindings: HashMap::new(), fact_indices: vec![usize::MAX; atoms.len()] };
        if !search(inst, atoms, &order, &reqs, watermark, 0, &mut m, sink) {
            return;
        }
    }
}

/// Like [`for_each_match_since`], but for *symmetric* two-atom premises —
/// both atoms identical up to one equated variable, the [`crate::Egd::functional`]
/// shape. The match set is closed under swapping the two atoms and a swap
/// preserves the induced equality pair, so the single `Δ ⋈ any` pass covers
/// every consequence of the delta: a `(old, new)` match is the mirror of a
/// `(new, old)` one this pass enumerates. Halves the dominant EGD
/// enumeration cost of the chase.
pub fn for_each_match_since_symmetric(
    inst: &Instance,
    atoms: &[Atom],
    watermark: u64,
    sink: &mut dyn FnMut(&Match) -> bool,
) {
    debug_assert_eq!(atoms.len(), 2);
    if watermark == 0 {
        return for_each_match(inst, atoms, sink);
    }
    if inst.facts_with_pred_since(atoms[0].pred, watermark).is_empty() {
        return;
    }
    let reqs = vec![StampReq::NewOnly, StampReq::Any];
    let order = atom_order(inst, atoms, &reqs, watermark);
    let mut m = Match { bindings: HashMap::new(), fact_indices: vec![usize::MAX; atoms.len()] };
    search(inst, atoms, &order, &reqs, watermark, 0, &mut m, sink);
}

/// Collects all homomorphisms (convenience for tests and small workloads).
pub fn all_matches(inst: &Instance, atoms: &[Atom]) -> Vec<Match> {
    let mut out = Vec::new();
    for_each_match(inst, atoms, &mut |m| {
        out.push(m.clone());
        true
    });
    out
}

/// True when at least one homomorphism exists that extends `partial`
/// (used for the restricted-chase "already satisfied" test).
pub fn satisfiable_with(
    inst: &Instance,
    atoms: &[Atom],
    partial: &HashMap<u32, NodeId>,
) -> bool {
    let reqs = vec![StampReq::Any; atoms.len()];
    let order = atom_order(inst, atoms, &reqs, 0);
    let mut m =
        Match { bindings: partial.clone(), fact_indices: vec![usize::MAX; atoms.len()] };
    let mut found = false;
    search(inst, atoms, &order, &reqs, 0, 0, &mut m, &mut |_| {
        found = true;
        false // stop at first witness
    });
    found
}

/// Greedy atom ordering: start from the most selective atom — fewest facts
/// admitted by its stamp requirement — then prefer atoms sharing variables
/// with what is already bound.
fn atom_order(
    inst: &Instance,
    atoms: &[Atom],
    reqs: &[StampReq],
    watermark: u64,
) -> Vec<usize> {
    let n = atoms.len();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    let mut bound_vars: Vec<u32> = Vec::new();
    while !remaining.is_empty() {
        let (pos, &best) = remaining
            .iter()
            .enumerate()
            .min_by_key(|(_, &i)| {
                let connected = atoms[i].vars().any(|v| bound_vars.contains(&v));
                let card = match reqs[i] {
                    StampReq::Any => inst.facts_with_pred(atoms[i].pred).len(),
                    StampReq::NewOnly => {
                        inst.facts_with_pred_since(atoms[i].pred, watermark).len()
                    }
                    StampReq::OldOnly => {
                        inst.facts_with_pred_until(atoms[i].pred, watermark).len()
                    }
                };
                // Connected atoms first (their candidates are filtered by
                // bindings), then by restricted cardinality.
                (!connected as usize, card)
            })
            .expect("remaining non-empty");
        order.push(best);
        bound_vars.extend(atoms[best].vars());
        remaining.remove(pos);
    }
    order
}

/// Candidate facts for `atom` under the current bindings: the smallest
/// positional-index posting list among bound argument positions, falling
/// back to the stamp-range slice of the predicate that the atom's
/// requirement admits. `None` means a constant argument has no node in the
/// instance, so the atom cannot match at all. Stamp filtering still runs
/// per fact in `search` (posting lists mix old and new facts).
fn candidate_facts<'a>(
    inst: &'a Instance,
    atom: &Atom,
    bindings: &HashMap<u32, NodeId>,
    req: StampReq,
    watermark: u64,
) -> Option<&'a [usize]> {
    let mut best: Option<&[usize]> = None;
    for (p, t) in atom.args.iter().enumerate() {
        let node = match t {
            Term::Const(c) => inst.node_of_const(*c)?,
            Term::Var(v) => match bindings.get(v) {
                Some(&b) => inst.find(b),
                None => continue,
            },
        };
        if let Some(list) = inst.facts_with_pred_arg(atom.pred, p as u32, node) {
            if best.map_or(true, |b| list.len() < b.len()) {
                best = Some(list);
                if list.is_empty() {
                    break;
                }
            }
        }
    }
    let fallback = || match req {
        StampReq::Any => inst.facts_with_pred(atom.pred),
        StampReq::NewOnly => inst.facts_with_pred_since(atom.pred, watermark),
        StampReq::OldOnly => inst.facts_with_pred_until(atom.pred, watermark),
    };
    match best {
        Some(list) => Some(if list.len() <= fallback().len() { list } else { fallback() }),
        None => Some(fallback()),
    }
}

#[allow(clippy::too_many_arguments)]
fn search(
    inst: &Instance,
    atoms: &[Atom],
    order: &[usize],
    reqs: &[StampReq],
    watermark: u64,
    depth: usize,
    m: &mut Match,
    sink: &mut dyn FnMut(&Match) -> bool,
) -> bool {
    if depth == order.len() {
        return sink(m);
    }
    let ai = order[depth];
    let atom = &atoms[ai];
    let Some(candidates) = candidate_facts(inst, atom, &m.bindings, reqs[ai], watermark) else {
        return true; // a constant absent from the instance: no match here
    };
    for &fi in candidates {
        let fact = inst.fact(fi);
        match reqs[ai] {
            StampReq::Any => {}
            StampReq::NewOnly if fact.stamp <= watermark => continue,
            StampReq::OldOnly if fact.stamp > watermark => continue,
            _ => {}
        }
        debug_assert_eq!(fact.args.len(), atom.args.len());
        // Try to unify atom args with fact args under current bindings.
        let mut newly_bound: Vec<u32> = Vec::new();
        let mut ok = true;
        for (t, &n) in atom.args.iter().zip(&fact.args) {
            let n = inst.find(n);
            match t {
                Term::Const(c) => {
                    if inst.const_of(n) != Some(*c) {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => match m.bindings.get(v) {
                    Some(&bound) => {
                        if inst.find(bound) != n {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        m.bindings.insert(*v, n);
                        newly_bound.push(*v);
                    }
                },
            }
        }
        if ok {
            m.fact_indices[ai] = fi;
            if !search(inst, atoms, order, reqs, watermark, depth + 1, m, sink) {
                return false;
            }
            m.fact_indices[ai] = usize::MAX;
        }
        for v in newly_bound {
            m.bindings.remove(&v);
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provenance::Provenance;
    use crate::symbols::{PredId, Vocabulary};

    fn setup() -> (Vocabulary, Instance, PredId, PredId) {
        let mut vocab = Vocabulary::new();
        let r = vocab.predicate("R", 2);
        let s = vocab.predicate("S", 2);
        let mut inst = Instance::new();
        // R(a, b), R(b, c), S(b, d)
        let a = inst.const_node(vocab.constant("a"));
        let b = inst.const_node(vocab.constant("b"));
        let c = inst.const_node(vocab.constant("c"));
        let d = inst.const_node(vocab.constant("d"));
        inst.insert(r, vec![a, b], Provenance::empty(), None);
        inst.insert(r, vec![b, c], Provenance::empty(), None);
        inst.insert(s, vec![b, d], Provenance::empty(), None);
        (vocab, inst, r, s)
    }

    #[test]
    fn single_atom_matches() {
        let (_, inst, r, _) = setup();
        let atoms = vec![Atom::new(r, vec![Term::Var(0), Term::Var(1)])];
        assert_eq!(all_matches(&inst, &atoms).len(), 2);
    }

    #[test]
    fn join_matches() {
        let (_, inst, r, s) = setup();
        // R(x, y) ∧ S(y, z): only y=b works for S, and R(a,b) reaches it.
        let atoms = vec![
            Atom::new(r, vec![Term::Var(0), Term::Var(1)]),
            Atom::new(s, vec![Term::Var(1), Term::Var(2)]),
        ];
        let ms = all_matches(&inst, &atoms);
        assert_eq!(ms.len(), 1);
        let m = &ms[0];
        assert_eq!(m.fact_indices.len(), 2);
    }

    #[test]
    fn constant_filter() {
        let (mut vocab, mut inst, r, _) = setup();
        let b = vocab.constant("b");
        let _ = inst.const_node(b);
        let atoms = vec![Atom::new(r, vec![Term::Const(b), Term::Var(0)])];
        assert_eq!(all_matches(&inst, &atoms).len(), 1);
    }

    #[test]
    fn unknown_constant_matches_nothing() {
        let (mut vocab, inst, r, _) = setup();
        let zz = vocab.constant("zz"); // interned in vocab, absent from inst
        let atoms = vec![Atom::new(r, vec![Term::Const(zz), Term::Var(0)])];
        assert!(all_matches(&inst, &atoms).is_empty());
    }

    #[test]
    fn repeated_variable_requires_equality() {
        let (_, inst, r, _) = setup();
        // R(x, x) has no match.
        let atoms = vec![Atom::new(r, vec![Term::Var(0), Term::Var(0)])];
        assert!(all_matches(&inst, &atoms).is_empty());
    }

    #[test]
    fn satisfiable_with_partial_binding() {
        let (mut vocab, mut inst, r, _) = setup();
        let a = inst.const_node(vocab.constant("a"));
        let atoms = vec![Atom::new(r, vec![Term::Var(0), Term::Var(1)])];
        let mut partial = HashMap::new();
        partial.insert(0u32, a);
        assert!(satisfiable_with(&inst, &atoms, &partial));
        let c = inst.const_node(vocab.constant("c"));
        partial.insert(0u32, c);
        assert!(!satisfiable_with(&inst, &atoms, &partial));
    }

    #[test]
    fn delta_enumeration_sees_only_new_matches() {
        let (mut vocab, mut inst, r, s) = setup();
        let atoms = vec![
            Atom::new(r, vec![Term::Var(0), Term::Var(1)]),
            Atom::new(s, vec![Term::Var(1), Term::Var(2)]),
        ];
        // Everything is old: nothing to enumerate.
        let w = inst.clock();
        let mut seen = 0;
        for_each_match_since(&inst, &atoms, w, &mut |_| {
            seen += 1;
            true
        });
        assert_eq!(seen, 0);
        // Add S(c, e): exactly the one new join (through R(b, c)) appears.
        let c = inst.const_node(vocab.constant("c"));
        let e = inst.const_node(vocab.constant("e"));
        inst.insert(s, vec![c, e], Provenance::empty(), None);
        let mut new_matches = Vec::new();
        for_each_match_since(&inst, &atoms, w, &mut |m| {
            new_matches.push(m.clone());
            true
        });
        assert_eq!(new_matches.len(), 1);
        // Full enumeration agrees with old + new.
        assert_eq!(all_matches(&inst, &atoms).len(), 2);
    }

    #[test]
    fn delta_enumeration_has_no_duplicates() {
        let mut vocab = Vocabulary::new();
        let p = vocab.predicate("P", 1);
        let q = vocab.predicate("Q", 1);
        let mut inst = Instance::new();
        let w = inst.clock();
        // Both atoms map to new facts sharing a node: the pivot scheme must
        // yield the match exactly once even though two atoms are in delta.
        let a = inst.const_node(vocab.constant("a"));
        inst.insert(p, vec![a], Provenance::empty(), None);
        inst.insert(q, vec![a], Provenance::empty(), None);
        let atoms = vec![Atom::new(p, vec![Term::Var(0)]), Atom::new(q, vec![Term::Var(0)])];
        let mut seen = 0;
        for_each_match_since(&inst, &atoms, w, &mut |_| {
            seen += 1;
            true
        });
        assert_eq!(seen, 1);
    }

    #[test]
    fn merge_rewritten_facts_enter_the_delta() {
        let mut vocab = Vocabulary::new();
        let r = vocab.predicate("R", 2);
        let s = vocab.predicate("S", 2);
        let mut inst = Instance::new();
        let a = inst.const_node(vocab.constant("a"));
        let b = inst.fresh_null();
        let c = inst.fresh_null();
        let d = inst.const_node(vocab.constant("d"));
        inst.insert(r, vec![a, b], Provenance::empty(), None);
        inst.insert(s, vec![c, d], Provenance::empty(), None);
        let atoms = vec![
            Atom::new(r, vec![Term::Var(0), Term::Var(1)]),
            Atom::new(s, vec![Term::Var(1), Term::Var(2)]),
        ];
        assert!(all_matches(&inst, &atoms).is_empty());
        let w = inst.clock();
        // Merging b and c creates the join out of two *old* facts; the
        // rewritten fact's fresh stamp must expose it to the delta scan.
        inst.merge(b, c).unwrap();
        inst.rehash();
        let mut seen = 0;
        for_each_match_since(&inst, &atoms, w, &mut |_| {
            seen += 1;
            true
        });
        assert_eq!(seen, 1);
    }
}
