//! Homomorphism (containment-mapping) enumeration: all ways to map a
//! conjunction of atoms into an instance. This powers TGD/EGD premise
//! matching in the chase and the query-match phase of PACB.

use std::collections::HashMap;

use crate::atom::Atom;
use crate::instance::{Instance, NodeId};
use crate::term::Term;

/// A match of a conjunction into an instance: variable bindings plus the
/// index of the fact each atom was mapped to.
#[derive(Debug, Clone)]
pub struct Match {
    pub bindings: HashMap<u32, NodeId>,
    pub fact_indices: Vec<usize>,
}

/// Enumerates homomorphisms of `atoms` into `inst`, invoking `sink` for
/// each. `sink` returning `false` stops the search early.
pub fn for_each_match(inst: &Instance, atoms: &[Atom], sink: &mut dyn FnMut(&Match) -> bool) {
    let order = atom_order(inst, atoms);
    let mut m = Match { bindings: HashMap::new(), fact_indices: vec![usize::MAX; atoms.len()] };
    search(inst, atoms, &order, 0, &mut m, &mut |mm| sink(mm));
}

/// Collects all homomorphisms (convenience for tests and small workloads).
pub fn all_matches(inst: &Instance, atoms: &[Atom]) -> Vec<Match> {
    let mut out = Vec::new();
    for_each_match(inst, atoms, &mut |m| {
        out.push(m.clone());
        true
    });
    out
}

/// True when at least one homomorphism exists that extends `partial`
/// (used for the restricted-chase "already satisfied" test).
pub fn satisfiable_with(
    inst: &Instance,
    atoms: &[Atom],
    partial: &HashMap<u32, NodeId>,
) -> bool {
    let order = atom_order(inst, atoms);
    let mut m =
        Match { bindings: partial.clone(), fact_indices: vec![usize::MAX; atoms.len()] };
    let mut found = false;
    search(inst, atoms, &order, 0, &mut m, &mut |_| {
        found = true;
        false // stop at first witness
    });
    found
}

/// Greedy atom ordering: start from the most selective atom (fewest facts
/// with that predicate), then prefer atoms sharing variables with what is
/// already bound. A cheap, effective join order for chase workloads.
fn atom_order(inst: &Instance, atoms: &[Atom]) -> Vec<usize> {
    let n = atoms.len();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    let mut bound_vars: Vec<u32> = Vec::new();
    while !remaining.is_empty() {
        let (pos, &best) = remaining
            .iter()
            .enumerate()
            .min_by_key(|(_, &i)| {
                let connected = atoms[i].vars().any(|v| bound_vars.contains(&v));
                let card = inst.facts_with_pred(atoms[i].pred).len();
                // Connected atoms first (their candidates are filtered by
                // bindings), then by predicate cardinality.
                (!connected as usize, card)
            })
            .expect("remaining non-empty");
        order.push(best);
        bound_vars.extend(atoms[best].vars());
        remaining.remove(pos);
    }
    order
}

fn search(
    inst: &Instance,
    atoms: &[Atom],
    order: &[usize],
    depth: usize,
    m: &mut Match,
    sink: &mut dyn FnMut(&Match) -> bool,
) -> bool {
    if depth == order.len() {
        return sink(m);
    }
    let ai = order[depth];
    let atom = &atoms[ai];
    for &fi in inst.facts_with_pred(atom.pred) {
        let fact = inst.fact(fi);
        debug_assert_eq!(fact.args.len(), atom.args.len());
        // Try to unify atom args with fact args under current bindings.
        let mut newly_bound: Vec<u32> = Vec::new();
        let mut ok = true;
        for (t, &n) in atom.args.iter().zip(&fact.args) {
            let n = inst.find(n);
            match t {
                Term::Const(c) => {
                    if inst.const_of(n) != Some(*c) {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => match m.bindings.get(v) {
                    Some(&bound) => {
                        if inst.find(bound) != n {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        m.bindings.insert(*v, n);
                        newly_bound.push(*v);
                    }
                },
            }
        }
        if ok {
            m.fact_indices[ai] = fi;
            if !search(inst, atoms, order, depth + 1, m, sink) {
                return false;
            }
            m.fact_indices[ai] = usize::MAX;
        }
        for v in newly_bound {
            m.bindings.remove(&v);
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provenance::Provenance;
    use crate::symbols::{PredId, Vocabulary};

    fn setup() -> (Vocabulary, Instance, PredId, PredId) {
        let mut vocab = Vocabulary::new();
        let r = vocab.predicate("R", 2);
        let s = vocab.predicate("S", 2);
        let mut inst = Instance::new();
        // R(a, b), R(b, c), S(b, d)
        let a = inst.const_node(vocab.constant("a"));
        let b = inst.const_node(vocab.constant("b"));
        let c = inst.const_node(vocab.constant("c"));
        let d = inst.const_node(vocab.constant("d"));
        inst.insert(r, vec![a, b], Provenance::empty(), None);
        inst.insert(r, vec![b, c], Provenance::empty(), None);
        inst.insert(s, vec![b, d], Provenance::empty(), None);
        (vocab, inst, r, s)
    }

    #[test]
    fn single_atom_matches() {
        let (_, inst, r, _) = setup();
        let atoms = vec![Atom::new(r, vec![Term::Var(0), Term::Var(1)])];
        assert_eq!(all_matches(&inst, &atoms).len(), 2);
    }

    #[test]
    fn join_matches() {
        let (_, inst, r, s) = setup();
        // R(x, y) ∧ S(y, z): only y=b works for S, and R(a,b) reaches it.
        let atoms = vec![
            Atom::new(r, vec![Term::Var(0), Term::Var(1)]),
            Atom::new(s, vec![Term::Var(1), Term::Var(2)]),
        ];
        let ms = all_matches(&inst, &atoms);
        assert_eq!(ms.len(), 1);
        let m = &ms[0];
        assert_eq!(m.fact_indices.len(), 2);
    }

    #[test]
    fn constant_filter() {
        let (mut vocab, mut inst, r, _) = setup();
        let b = vocab.constant("b");
        let _ = inst.const_node(b);
        let atoms = vec![Atom::new(r, vec![Term::Const(b), Term::Var(0)])];
        assert_eq!(all_matches(&inst, &atoms).len(), 1);
    }

    #[test]
    fn repeated_variable_requires_equality() {
        let (_, inst, r, _) = setup();
        // R(x, x) has no match.
        let atoms = vec![Atom::new(r, vec![Term::Var(0), Term::Var(0)])];
        assert!(all_matches(&inst, &atoms).is_empty());
    }

    #[test]
    fn satisfiable_with_partial_binding() {
        let (mut vocab, mut inst, r, _) = setup();
        let a = inst.const_node(vocab.constant("a"));
        let atoms = vec![Atom::new(r, vec![Term::Var(0), Term::Var(1)])];
        let mut partial = HashMap::new();
        partial.insert(0u32, a);
        assert!(satisfiable_with(&inst, &atoms, &partial));
        let c = inst.const_node(vocab.constant("c"));
        partial.insert(0u32, c);
        assert!(!satisfiable_with(&inst, &atoms, &partial));
    }
}
