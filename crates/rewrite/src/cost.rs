//! Cost estimation for candidate plans (paper §7.1–§7.3), built on the
//! **unified estimator** in `hadad_core::stats`: one shape/density/flops
//! propagation table (`op_stats`/`op_flops`/`op_cost`) feeds
//!
//! * [`FlopsCost`] — the extraction DP's [`ExtractionCost`], reading each
//!   class's propagated `size`/`density` facts (chase-created classes
//!   without density facts are assumed dense, deterministically);
//! * [`CostModel`] — the naïve metadata estimator of §7.2.1 over full
//!   expressions, used to rank extracted candidates;
//! * [`VremCostOracle`] — the chase-facing [`CostOracle`] behind
//!   `Prune_prov` on the LA path (§7.3): it prices a prospective TGD
//!   firing by the cheapest operator chain its conclusion would create,
//!   reading operand stats straight from the instance's facts.
//!
//! Before this refactor the three disagreed: extraction assumed dense
//! shapes it re-inferred bottom-up, the ranking model propagated densities
//! privately, and the chase had no estimator at all.

use std::cell::RefCell;
use std::collections::HashMap;

use hadad_chase::{CostOracle, CostPruner, Instance, Match, NodeId, Pruner, SymId, Term, Tgd};
use hadad_core::{
    op_cost_with, op_stats, BackendProfile, ClassStats, Expr, ExtractionCost, Extractor,
    MetaCatalog, OpKind, ShapeError, Vrem, DENSITY_SCALE,
};

/// Stats-aware cost for the extraction DP: the shared per-operator charge
/// (sparsity-discounted flops plus materialization of the output's
/// estimated non-zeros), priced under one execution backend's calibration
/// constants. `Default` is the reference profile, which reproduces the old
/// dense-flops model on all-dense stats.
#[derive(Default)]
pub struct FlopsCost {
    /// Calibration constants of the backend being priced for.
    pub profile: BackendProfile,
}

impl FlopsCost {
    /// Cost model under a specific backend's calibration constants.
    pub fn with_profile(profile: BackendProfile) -> Self {
        FlopsCost { profile }
    }
}

impl ExtractionCost for FlopsCost {
    fn leaf_cost(&self, _stats: ClassStats) -> f64 {
        // Base matrices and literals are already materialized.
        0.0
    }

    fn op_cost(
        &self,
        kind: OpKind,
        out_idx: usize,
        child: &[ClassStats],
        out: ClassStats,
    ) -> f64 {
        op_cost_with(&self.profile, kind, out_idx, child, &out)
    }
}

/// Shape + density estimate of a subexpression.
#[derive(Debug, Clone, Copy)]
pub struct Estimate {
    /// Estimated row count.
    pub rows: usize,
    /// Estimated column count.
    pub cols: usize,
    /// Estimated fraction of non-zero cells in `[0, 1]`.
    pub density: f64,
    /// Accumulated cost of computing the subexpression.
    pub cost: f64,
}

impl Estimate {
    fn stats(&self) -> ClassStats {
        ClassStats { rows: self.rows, cols: self.cols, density: self.density }
    }

    fn from_stats(stats: ClassStats, cost: f64) -> Self {
        Estimate { rows: stats.rows, cols: stats.cols, density: stats.density, cost }
    }
}

/// The naïve sparsity-aware estimator over full expressions, ranking the
/// candidates extraction produces. Shares every formula with the DP and
/// the chase pruner through `hadad_core::stats`.
pub struct CostModel<'a> {
    cat: &'a MetaCatalog,
    profile: BackendProfile,
}

impl<'a> CostModel<'a> {
    /// Estimator under the reference backend's constants.
    pub fn new(cat: &'a MetaCatalog) -> Self {
        CostModel { cat, profile: BackendProfile::reference() }
    }

    /// Estimator under a specific backend's calibration constants — the
    /// optimizer passes its selected backend's profile so ranking tracks
    /// the kernels that will actually run.
    pub fn with_profile(cat: &'a MetaCatalog, profile: BackendProfile) -> Self {
        CostModel { cat, profile }
    }

    /// Total estimated cost of evaluating `e`.
    pub fn cost(&self, e: &Expr) -> Result<f64, ShapeError> {
        Ok(self.estimate(e)?.cost)
    }

    /// Full shape/density/cost estimate of `e`.
    pub fn estimate(&self, e: &Expr) -> Result<Estimate, ShapeError> {
        use Expr::*;
        // Leaves read the metadata catalog; everything else recurses, has
        // its shape validated by `expr_stats`' rules, and is charged
        // through the shared per-operator table.
        let est = match e {
            Mat(_) | Const(_) | Identity(_) | Zero(..) => {
                Estimate::from_stats(hadad_core::expr_stats(e, self.cat)?, 0.0)
            }
            _ => {
                let children = e.children();
                let mut child_est = Vec::with_capacity(children.len());
                for c in &children {
                    child_est.push(self.estimate(c)?);
                }
                let child_stats: Vec<ClassStats> =
                    child_est.iter().map(Estimate::stats).collect();
                let (kind, out_idx) = op_of(e);
                validate(e, kind, &child_stats)?;
                let out = op_stats(kind, out_idx, &child_stats);
                let children_cost: f64 = child_est.iter().map(|c| c.cost).sum();
                let op = op_cost_with(&self.profile, kind, out_idx, &child_stats, &out);
                Estimate::from_stats(out, children_cost + op)
            }
        };
        Ok(est)
    }
}

/// Operator kind and output index of a non-leaf expression (`Sub` is
/// costed like the `Add` it desugars to).
fn op_of(e: &Expr) -> (OpKind, usize) {
    use Expr::*;
    match e {
        QrQ(_) => (OpKind::Qr, 0),
        QrR(_) => (OpKind::Qr, 1),
        LuL(_) => (OpKind::Lu, 0),
        LuU(_) => (OpKind::Lu, 1),
        _ => (hadad_core::encode::op_kind_of(e).expect("non-leaf expression"), 0),
    }
}

/// Shape validation for one operator application, mirroring
/// `hadad_core::expr_stats` (kept here so ranking candidates that fall
/// outside the catalog surface errors, not panics).
fn validate(e: &Expr, kind: OpKind, child: &[ClassStats]) -> Result<(), ShapeError> {
    use OpKind::*;
    match kind {
        Add | Hadamard | Div if child[0].shape() != child[1].shape() => {
            Err(ShapeError::Mismatch(format!("{e}")))
        }
        Mul if child[0].cols != child[1].rows => Err(ShapeError::Mismatch(format!("{e}"))),
        ScalarMul if child[0].shape() != (1, 1) => {
            Err(ShapeError::Mismatch(format!("non-scalar multiplier in {e}")))
        }
        Inv | Adj | Exp | Cho | Qr | Lu | Diag | Det | Trace
            if child[0].rows != child[0].cols =>
        {
            Err(ShapeError::Mismatch(format!("{e} requires square input")))
        }
        _ => Ok(()),
    }
}

/// The LA path's `Prune_prov` oracle: prices a prospective TGD firing by a
/// lower bound on any plan that uses the operator facts its conclusion
/// would create. Operand statistics come from the instance's propagated
/// `size`/`density` facts; an operand without a density fact is priced at
/// density 0 (the optimistic bound — pruning must never overstate a
/// candidate's cost), and an operand without a size fact makes the atom
/// unpriceable (bound 0, never vetoed). Conclusion-internal dependencies
/// chain: in `trace-cyclic`, the rotated `trace` can only be reached by
/// paying for the rotated product, so its bound includes the `mul` atom's.
/// The firing's cost is the *minimum* over its conclusion operator atoms —
/// a firing survives if any part of it could still beat the incumbent.
pub struct VremCostOracle<'a> {
    vrem: &'a Vrem,
    /// Calibration constants of the backend that will execute the plan —
    /// pruning bounds must be priced in the same currency as extraction.
    profile: BackendProfile,
    /// Parsed numeric constants, keyed by symbol (sizes and ppm densities).
    nums: RefCell<HashMap<SymId, Option<f64>>>,
}

impl<'a> VremCostOracle<'a> {
    /// Oracle under the reference backend's constants.
    pub fn new(vrem: &'a Vrem) -> Self {
        Self::with_profile(vrem, BackendProfile::reference())
    }

    /// Oracle under a specific backend's calibration constants.
    pub fn with_profile(vrem: &'a Vrem, profile: BackendProfile) -> Self {
        VremCostOracle { vrem, profile, nums: RefCell::new(HashMap::new()) }
    }

    /// Calibration constants this oracle prices under.
    pub fn profile(&self) -> BackendProfile {
        self.profile
    }

    fn num(&self, sym: SymId) -> Option<f64> {
        *self
            .nums
            .borrow_mut()
            .entry(sym)
            .or_insert_with(|| self.vrem.vocab.const_name(sym).parse::<f64>().ok())
    }

    fn arg_num(&self, inst: &Instance, node: NodeId) -> Option<f64> {
        self.num(inst.const_of(node)?)
    }

    /// Shape of a class from its `size` facts, via the positional index
    /// when canonical (the common case during TGD application).
    fn class_shape(&self, inst: &Instance, class: NodeId) -> Option<(usize, usize)> {
        let fact = match inst.facts_with_pred_arg(self.vrem.size, 0, class) {
            Some(idxs) => idxs.first().map(|&i| inst.fact(i)),
            None => inst
                .facts_with_pred(self.vrem.size)
                .iter()
                .map(|&i| inst.fact(i))
                .find(|f| inst.find(f.args[0]) == class),
        }?;
        let r = self.arg_num(inst, fact.args[1])?;
        let c = self.arg_num(inst, fact.args[2])?;
        Some((r as usize, c as usize))
    }

    /// Minimum density over a class's `density` facts, or 0 when none are
    /// known (the optimistic lower bound).
    fn class_density(&self, inst: &Instance, class: NodeId) -> f64 {
        let min_over = |idxs: &[usize]| {
            idxs.iter()
                .filter_map(|&i| self.arg_num(inst, inst.fact(i).args[1]))
                .map(|ppm| (ppm / DENSITY_SCALE).clamp(0.0, 1.0))
                .fold(f64::INFINITY, f64::min)
        };
        let d = match inst.facts_with_pred_arg(self.vrem.density, 0, class) {
            Some(idxs) => min_over(idxs),
            None => {
                let idxs: Vec<usize> = inst
                    .facts_with_pred(self.vrem.density)
                    .iter()
                    .copied()
                    .filter(|&i| inst.find(inst.fact(i).args[0]) == class)
                    .collect();
                min_over(&idxs)
            }
        };
        if d.is_finite() {
            d
        } else {
            0.0
        }
    }
}

impl CostOracle for VremCostOracle<'_> {
    fn firing_cost(&self, inst: &Instance, tgd: &Tgd, m: &Match) -> f64 {
        // Conclusion operator atoms, with their kinds.
        let ops: Vec<(usize, OpKind)> = tgd
            .conclusion
            .iter()
            .enumerate()
            .filter_map(|(i, a)| self.vrem.kind_of(a.pred).map(|k| (i, k)))
            .collect();
        if ops.is_empty() {
            return 0.0;
        }
        // Existential output variable -> producing conclusion atom.
        let premise_bound = |v: u32| m.bindings.contains_key(&v);
        let mut producer: HashMap<u32, usize> = HashMap::new();
        for &(i, kind) in &ops {
            for t in &tgd.conclusion[i].args[kind.num_inputs()..] {
                if let Term::Var(v) = t {
                    if !premise_bound(*v) {
                        producer.entry(*v).or_insert(i);
                    }
                }
            }
        }
        // Resolve atoms to (cumulative bound, output stats) to fixpoint;
        // catalogue conclusions are written producer-first, so one or two
        // passes suffice. Unresolvable atoms bound to 0 (never vetoed).
        let mut bound: HashMap<usize, (f64, ClassStats)> = HashMap::new();
        for _ in 0..ops.len() {
            let mut progressed = false;
            for &(i, kind) in &ops {
                if bound.contains_key(&i) {
                    continue;
                }
                let atom = &tgd.conclusion[i];
                let mut child = Vec::with_capacity(kind.num_inputs());
                let mut chained = 0.0f64;
                let mut ok = true;
                for t in &atom.args[..kind.num_inputs()] {
                    let stats = match t {
                        Term::Var(v) => match m.bindings.get(v) {
                            Some(&n) => {
                                let class = inst.find(n);
                                match self.class_shape(inst, class) {
                                    Some((rows, cols)) => ClassStats {
                                        rows,
                                        cols,
                                        density: self.class_density(inst, class),
                                    },
                                    None => {
                                        ok = false;
                                        break;
                                    }
                                }
                            }
                            None => match producer.get(v).and_then(|p| bound.get(p)) {
                                Some(&(b, stats)) => {
                                    // Count each producer once even when
                                    // its output feeds several inputs.
                                    chained = chained.max(b);
                                    stats
                                }
                                None => {
                                    ok = false;
                                    break;
                                }
                            },
                        },
                        Term::Const(_) => {
                            ok = false;
                            break;
                        }
                    };
                    child.push(stats);
                }
                if !ok {
                    continue;
                }
                let out = op_stats(kind, 0, &child);
                let own = op_cost_with(&self.profile, kind, 0, &child, &out);
                bound.insert(i, (own + chained, out));
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        ops.iter()
            .map(|(i, _)| bound.get(i).map_or(0.0, |&(b, _)| b))
            .fold(f64::INFINITY, f64::min)
    }
}

/// Fraction of the incumbent above which an allowed firing's bound counts
/// as a *close call* — only those are worth re-running the DP for before
/// deciding, since flipping a bound far below the incumbent would need the
/// DP to shrink it many-fold in one step. Vetoes must stay justified, so
/// the re-check only ever tightens.
const CLOSE_BAND: f64 = 0.3;

/// Minimum consultations between mid-round re-extractions, bounding the DP
/// overhead when close calls cluster.
const TIGHTEN_INTERVAL: u64 = 4;

/// [`CostPruner`] wrapper that re-runs the extraction DP at round ends and
/// on close-call firings, tightening the incumbent to the cheapest plan
/// found so far — seeded from the unrewritten expression, tightened as
/// extraction finds cheaper plans. The DP is tens to hundreds of
/// microseconds on the instances the LA chase produces, while each
/// tightening step unlocks vetoes for the rest of the saturation.
pub struct TighteningPruner<'a> {
    oracle: &'a VremCostOracle<'a>,
    inner: CostPruner<'a>,
    vrem: &'a Vrem,
    root: NodeId,
    consultations: u64,
    last_tighten: u64,
    last_clock: u64,
    last_facts: usize,
    /// The most recent solved extraction DP table, chained across
    /// [`TighteningPruner::retighten`] calls so each mid-chase
    /// re-extraction warm-starts from the previous one instead of
    /// re-solving from scratch — the incremental cost oracle. May be
    /// pre-loaded from a plan cache via [`TighteningPruner::with_seed`].
    dp: Option<HashMap<NodeId, (f64, usize)>>,
}

impl<'a> TighteningPruner<'a> {
    /// Pruner over `inner`, re-extracting from `root` to tighten it.
    pub fn new(
        oracle: &'a VremCostOracle<'a>,
        inner: CostPruner<'a>,
        vrem: &'a Vrem,
        root: NodeId,
    ) -> Self {
        TighteningPruner {
            oracle,
            inner,
            vrem,
            root,
            consultations: 0,
            last_tighten: 0,
            last_clock: 0,
            last_facts: 0,
            dp: None,
        }
    }

    /// Pre-loads the extraction DP seed (e.g. the table cached alongside a
    /// now-stale plan-cache entry): the first mid-chase re-extraction then
    /// warm-starts instead of solving cold. Seed prices are re-validated
    /// inside the extractor, so a stale table can never loosen pruning
    /// soundness — at worst it is ignored.
    pub fn with_seed(mut self, seed: HashMap<NodeId, (f64, usize)>) -> Self {
        self.dp = Some(seed);
        self
    }

    /// Current incumbent cost bound.
    pub fn incumbent(&self) -> f64 {
        self.inner.incumbent()
    }

    /// Re-runs the extraction DP and lowers the incumbent to the cheapest
    /// plan derivable from the instance so far. The DP best only ever
    /// *over*-estimates the final best (more derivations can only lower
    /// it), so every veto it justifies is also justified against the final
    /// plan — pruning stays cost-preserving.
    /// The DP only pays for itself while the instance is growing: a
    /// re-extraction is worth running once a meaningful number of new
    /// derivations landed since the last one.
    fn grown(&self, inst: &Instance) -> bool {
        inst.clock() != self.last_clock && inst.num_facts() * 4 >= self.last_facts * 5
    }

    fn retighten(&mut self, inst: &Instance) {
        self.last_tighten = self.consultations;
        self.last_clock = inst.clock();
        self.last_facts = inst.num_facts();
        // Tighten in the same currency the pruning bounds are priced in.
        let cost_fn = FlopsCost::with_profile(self.oracle.profile());
        let ex = match &self.dp {
            Some(seed) => Extractor::with_seed(self.vrem, inst, &cost_fn, seed),
            None => Extractor::new(self.vrem, inst, &cost_fn),
        };
        if let Some(best) = ex.class_cost(self.root) {
            self.inner.tighten(best);
        }
        self.dp = Some(ex.dp_table().clone());
    }
}

impl Pruner for TighteningPruner<'_> {
    fn allow_firing(&mut self, inst: &Instance, _idx: usize, tgd: &Tgd, m: &Match) -> bool {
        self.consultations += 1;
        let cost = self.oracle.firing_cost(inst, tgd, m);
        if !self.inner.allows_cost(cost) {
            return false;
        }
        // Close call on a grown instance: cheaper plans may have landed
        // since the incumbent was last computed — re-extract, re-decide.
        if cost > self.inner.incumbent() * CLOSE_BAND
            && inst.clock() != self.last_clock
            && self.consultations - self.last_tighten >= TIGHTEN_INTERVAL
        {
            self.retighten(inst);
            return self.inner.allows_cost(cost);
        }
        true
    }

    fn end_round(&mut self, inst: &Instance) {
        // Rounds that grew the instance substantially refresh the
        // incumbent eagerly; otherwise the close-call path refreshes it
        // lazily, exactly when a veto is plausible.
        if self.grown(inst) {
            self.retighten(inst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hadad_chase::Provenance;
    use hadad_core::expr::dsl::*;
    use hadad_core::{Encoder, MatrixMeta};

    fn cat() -> MetaCatalog {
        let mut c = MetaCatalog::new();
        c.register("A", MatrixMeta::dense(30, 4));
        c.register("B", MatrixMeta::dense(4, 30));
        c.register("S", MatrixMeta::sparse(1000, 1000, 5000));
        c
    }

    #[test]
    fn rotated_trace_is_cheaper() {
        let c = cat();
        let cm = CostModel::new(&c);
        let ab = cm.cost(&trace(mul(m("A"), m("B")))).unwrap();
        let ba = cm.cost(&trace(mul(m("B"), m("A")))).unwrap();
        assert!(ba < ab, "trace(BA)={ba} should beat trace(AB)={ab}");
    }

    #[test]
    fn right_deep_chain_is_cheaper() {
        let mut c = cat();
        c.register("x", MatrixMeta::dense(30, 1));
        let cm = CostModel::new(&c);
        let left = cm.cost(&mul(mul(m("A"), m("B")), m("x"))).unwrap();
        let right = cm.cost(&mul(m("A"), mul(m("B"), m("x")))).unwrap();
        assert!(right < left);
    }

    #[test]
    fn sparsity_lowers_product_cost() {
        let c = cat();
        let cm = CostModel::new(&c);
        let sparse = cm.cost(&mul(m("S"), m("S"))).unwrap();
        let mut dense_cat = MetaCatalog::new();
        dense_cat.register("S", MatrixMeta::dense(1000, 1000));
        let dense = CostModel::new(&dense_cat).cost(&mul(m("S"), m("S"))).unwrap();
        assert!(sparse < dense / 10.0, "sparse={sparse} dense={dense}");
    }

    #[test]
    fn subtraction_costs_like_addition() {
        let mut c = MetaCatalog::new();
        c.register("P", MatrixMeta::dense(8, 8));
        let cm = CostModel::new(&c);
        // Sub desugars to a + (-1 · b); the direct estimate must at least
        // cover the Add part and carry the union density.
        let e = cm.estimate(&sub(m("P"), m("P"))).unwrap();
        assert_eq!((e.rows, e.cols), (8, 8));
        assert_eq!(e.density, 1.0);
        assert!(e.cost > 0.0);
    }

    #[test]
    fn shape_errors_surface() {
        let c = cat();
        let cm = CostModel::new(&c);
        assert!(cm.cost(&add(m("A"), m("B"))).is_err());
        assert!(cm.cost(&m("missing")).is_err());
        assert!(cm.cost(&trace(m("A"))).is_err());
    }

    #[test]
    fn flops_cost_orders_mul_shapes() {
        let f = FlopsCost::default();
        let big = f.op_cost(
            OpKind::Mul,
            0,
            &[ClassStats::dense(30, 4), ClassStats::dense(4, 30)],
            ClassStats::dense(30, 30),
        );
        let small = f.op_cost(
            OpKind::Mul,
            0,
            &[ClassStats::dense(4, 30), ClassStats::dense(30, 4)],
            ClassStats::dense(4, 4),
        );
        assert!(small < big);
    }

    /// Backend profiles scale product charges uniformly, so the *ordering*
    /// of candidate plans is preserved while absolute costs drop — and the
    /// profiled estimator, DP cost, and oracle all drop together.
    #[test]
    fn parallel_profile_lowers_costs_consistently() {
        let c = cat();
        let profile = BackendProfile::parallel(4);
        let e = trace(mul(m("A"), m("B")));
        let base = CostModel::new(&c).cost(&e).unwrap();
        let fast = CostModel::with_profile(&c, profile).cost(&e).unwrap();
        assert!(fast < base, "parallel profile must cheapen products: {fast} vs {base}");
        // Ranking is preserved: the rotated trace still wins under either.
        let cm = CostModel::with_profile(&c, profile);
        let ab = cm.cost(&trace(mul(m("A"), m("B")))).unwrap();
        let ba = cm.cost(&trace(mul(m("B"), m("A")))).unwrap();
        assert!(ba < ab);
        // The DP's cost function agrees with the estimator's scaling.
        let f = FlopsCost::with_profile(profile);
        let child = [ClassStats::dense(30, 4), ClassStats::dense(4, 30)];
        let out = op_stats(OpKind::Mul, 0, &child);
        let dp = f.op_cost(OpKind::Mul, 0, &child, out);
        let reference = FlopsCost::default().op_cost(OpKind::Mul, 0, &child, out);
        assert!(dp < reference);
    }

    /// The oracle prices a `trace-cyclic`-shaped firing by the rotated
    /// product *plus* the trace that rides on it: the cheap trace alone
    /// must not shield the expensive intermediate from the pruner.
    #[test]
    fn oracle_chains_conclusion_dependencies() {
        let mut vrem = Vrem::new();
        let mut c = MetaCatalog::new();
        c.register("T", MatrixMeta::dense(4, 1000));
        c.register("W", MatrixMeta::dense(1000, 4));
        // Encode trace(T W) so the instance carries size/density facts.
        let enc = Encoder::new(&mut vrem, &c).encode(&trace(mul(m("T"), m("W")))).unwrap();
        let inst = enc.instance;
        let mul_pred = vrem.op(OpKind::Mul);
        let trace_pred = vrem.op(OpKind::Trace);
        let mul_fact = inst.facts()[inst.facts_with_pred(mul_pred)[0]].clone();
        let trace_fact = inst.facts()[inst.facts_with_pred(trace_pred)[0]].clone();

        // trace-cyclic: mul(a,b,ab) ∧ trace(ab,s) → mul(b,a,ba) ∧ trace(ba,s).
        let tgd = Tgd::new(
            "trace-cyclic",
            vec![
                hadad_chase::Atom::new(
                    mul_pred,
                    vec![Term::Var(0), Term::Var(1), Term::Var(2)],
                ),
                hadad_chase::Atom::new(trace_pred, vec![Term::Var(2), Term::Var(3)]),
            ],
            vec![
                hadad_chase::Atom::new(
                    mul_pred,
                    vec![Term::Var(1), Term::Var(0), Term::Var(4)],
                ),
                hadad_chase::Atom::new(trace_pred, vec![Term::Var(4), Term::Var(3)]),
            ],
        );
        let mut bindings = HashMap::new();
        bindings.insert(0u32, mul_fact.args[0]);
        bindings.insert(1u32, mul_fact.args[1]);
        bindings.insert(2u32, mul_fact.args[2]);
        bindings.insert(3u32, trace_fact.args[1]);
        let m = Match { bindings, fact_indices: vec![] };

        let oracle = VremCostOracle::new(&vrem);
        let cost = oracle.firing_cost(&inst, &tgd, &m);
        // The rotated product is 1000×1000: ~9.5·10⁶ (flops + output +
        // materialization) dominates both conclusion atoms; had the trace
        // atom been priced independently the minimum would be ~10³.
        assert!(cost > 9e6, "chained bound missing: {cost}");

        // And as a pruner: an incumbent below the bound vetoes the firing.
        let mut pruner = CostPruner::new(&oracle, 1e6);
        assert!(!pruner.allow_firing(&inst, 0, &tgd, &m));
        pruner.tighten(1e5); // tightening only lowers
        assert!(!pruner.allow_firing(&inst, 0, &tgd, &m));
        let mut generous = CostPruner::new(&oracle, 1e12);
        assert!(generous.allow_firing(&inst, 0, &tgd, &m));
    }

    /// Firings whose conclusions carry no operator atoms (identity/zero
    /// tagging, view tagging) are never vetoed.
    #[test]
    fn oracle_leaves_non_operator_conclusions_alone() {
        let vrem = Vrem::new();
        let zero = vrem.zero;
        let mul_pred = vrem.op(OpKind::Mul);
        let tgd = Tgd::new(
            "mul-zero-l",
            vec![
                hadad_chase::Atom::new(zero, vec![Term::Var(0)]),
                hadad_chase::Atom::new(
                    mul_pred,
                    vec![Term::Var(0), Term::Var(1), Term::Var(2)],
                ),
            ],
            vec![hadad_chase::Atom::new(zero, vec![Term::Var(2)])],
        );
        let mut inst = Instance::new();
        let a = inst.fresh_null();
        inst.insert(zero, vec![a], Provenance::empty(), None);
        let m = Match { bindings: HashMap::new(), fact_indices: vec![] };
        let oracle = VremCostOracle::new(&vrem);
        assert_eq!(oracle.firing_cost(&inst, &tgd, &m), 0.0);
    }
}
