//! Cost estimation for candidate plans (paper §7.1–§7.2).
//!
//! Two estimators cooperate:
//!
//! * [`FlopsCost`] — a shape-only dense-flops model implementing
//!   [`ExtractionCost`]. It guides the e-graph extraction DP, where only
//!   class shapes are known (chase-created intermediates carry no
//!   sparsity facts).
//! * [`CostModel`] — the naïve metadata estimator of §7.2.1 over full
//!   expressions: propagates shapes *and* densities from
//!   [`MetaCatalog`] entries (nnz counts come from the same metadata files
//!   the MNC histograms of §7.2.2 are built from), charging flops plus
//!   intermediate materialization. Used to rank the extracted candidates.

use hadad_core::{Expr, ExtractionCost, MetaCatalog, OpKind, ShapeError};

/// Weight of one materialized output cell relative to one flop.
const MEM_WEIGHT: f64 = 0.5;

/// Dense flop estimate for one operator application (children excluded).
fn dense_op_flops(kind: OpKind, child: &[(usize, usize)], out: (usize, usize)) -> f64 {
    use OpKind::*;
    let cells = |s: (usize, usize)| s.0 as f64 * s.1 as f64;
    let n = child.first().map_or(1.0, |&(r, _)| r as f64);
    match kind {
        Mul => 2.0 * child[0].0 as f64 * child[0].1 as f64 * child[1].1 as f64,
        Add | Hadamard | Div => cells(child[0]),
        ScalarMul => cells(child[1]),
        Kron => cells(out),
        DirectSum => cells(out),
        Transpose | Rev => cells(child[0]),
        Inv => 2.0 * n * n * n,
        Adj => 2.0 * n * n * n * n,
        Exp => 30.0 * n * n * n,
        Det => n * n * n,
        Cho => n * n * n / 3.0,
        Qr => 2.0 * n * n * n,
        Lu => 2.0 * n * n * n / 3.0,
        Diag | Trace => n,
        RowSums | ColSums | RowMeans | ColMeans | RowMin | RowMax | ColMin | ColMax | Sum
        | Min | Max | Mean => cells(child[0]),
        RowVar | ColVar | Var => 2.0 * cells(child[0]),
    }
}

/// Shape-only cost for the extraction DP: dense flops plus a memory charge
/// for the materialized output.
pub struct FlopsCost;

impl ExtractionCost for FlopsCost {
    fn leaf_cost(&self, _shape: (usize, usize)) -> f64 {
        // Base matrices and literals are already materialized.
        0.0
    }

    fn op_cost(
        &self,
        kind: OpKind,
        _out_idx: usize,
        child_shapes: &[(usize, usize)],
        out_shape: (usize, usize),
    ) -> f64 {
        dense_op_flops(kind, child_shapes, out_shape)
            + MEM_WEIGHT * out_shape.0 as f64 * out_shape.1 as f64
    }
}

/// Shape + density estimate of a subexpression.
#[derive(Debug, Clone, Copy)]
pub struct Estimate {
    pub rows: usize,
    pub cols: usize,
    /// Estimated fraction of non-zero cells in `[0, 1]`.
    pub density: f64,
    /// Accumulated cost of computing the subexpression.
    pub cost: f64,
}

impl Estimate {
    fn cells(&self) -> f64 {
        self.rows as f64 * self.cols as f64
    }

    fn nnz(&self) -> f64 {
        self.cells() * self.density
    }
}

/// The naïve sparsity-aware estimator over full expressions.
pub struct CostModel<'a> {
    cat: &'a MetaCatalog,
}

impl<'a> CostModel<'a> {
    pub fn new(cat: &'a MetaCatalog) -> Self {
        CostModel { cat }
    }

    /// Total estimated cost of evaluating `e`.
    pub fn cost(&self, e: &Expr) -> Result<f64, ShapeError> {
        Ok(self.estimate(e)?.cost)
    }

    /// Full shape/density/cost estimate of `e`.
    pub fn estimate(&self, e: &Expr) -> Result<Estimate, ShapeError> {
        use Expr::*;
        let est = match e {
            Mat(n) => {
                let m = self.cat.get(n).ok_or_else(|| ShapeError::UnknownMatrix(n.clone()))?;
                Estimate { rows: m.rows, cols: m.cols, density: m.density(), cost: 0.0 }
            }
            Const(_) => Estimate { rows: 1, cols: 1, density: 1.0, cost: 0.0 },
            Identity(n) => {
                Estimate { rows: *n, cols: *n, density: 1.0 / (*n).max(1) as f64, cost: 0.0 }
            }
            Zero(r, c) => Estimate { rows: *r, cols: *c, density: 0.0, cost: 0.0 },
            Add(a, b) | Sub(a, b) => {
                let (ea, eb) = (self.estimate(a)?, self.estimate(b)?);
                self.check_same(e, &ea, &eb)?;
                // Union bound on non-zeros.
                let density = (ea.density + eb.density).min(1.0);
                self.combine(ea, eb, ea.rows, ea.cols, density, ea.cells())
            }
            Hadamard(a, b) => {
                let (ea, eb) = (self.estimate(a)?, self.estimate(b)?);
                self.check_same(e, &ea, &eb)?;
                let density = ea.density * eb.density;
                self.combine(ea, eb, ea.rows, ea.cols, density, ea.nnz().min(eb.nnz()))
            }
            Div(a, b) => {
                let (ea, eb) = (self.estimate(a)?, self.estimate(b)?);
                self.check_same(e, &ea, &eb)?;
                self.combine(ea, eb, ea.rows, ea.cols, ea.density, ea.cells())
            }
            Mul(a, b) => {
                let (ea, eb) = (self.estimate(a)?, self.estimate(b)?);
                if ea.cols != eb.rows {
                    return Err(ShapeError::Mismatch(format!("{e}")));
                }
                let k = ea.cols as f64;
                // Naïve independence estimate (§7.2.1): the chance a result
                // cell stays zero is (1 - dA·dB)^k.
                let density = 1.0 - (1.0 - ea.density * eb.density).powf(k);
                let flops = 2.0 * ea.rows as f64 * k * eb.cols as f64 * ea.density * eb.density
                    + ea.rows as f64 * eb.cols as f64;
                self.combine(ea, eb, ea.rows, eb.cols, density.clamp(0.0, 1.0), flops)
            }
            Kron(a, b) => {
                let (ea, eb) = (self.estimate(a)?, self.estimate(b)?);
                let rows = ea.rows * eb.rows;
                let cols = ea.cols * eb.cols;
                self.combine(ea, eb, rows, cols, ea.density * eb.density, ea.nnz() * eb.nnz())
            }
            DirectSum(a, b) => {
                let (ea, eb) = (self.estimate(a)?, self.estimate(b)?);
                let rows = ea.rows + eb.rows;
                let cols = ea.cols + eb.cols;
                let cells = rows as f64 * cols as f64;
                let density = if cells == 0.0 { 0.0 } else { (ea.nnz() + eb.nnz()) / cells };
                self.combine(ea, eb, rows, cols, density, ea.nnz() + eb.nnz())
            }
            ScalarMul(s, a) => {
                let (es, ea) = (self.estimate(s)?, self.estimate(a)?);
                if (es.rows, es.cols) != (1, 1) {
                    return Err(ShapeError::Mismatch(format!("non-scalar multiplier in {e}")));
                }
                self.combine(es, ea, ea.rows, ea.cols, ea.density, ea.nnz())
            }
            Transpose(a) | Rev(a) => {
                let ea = self.estimate(a)?;
                let (rows, cols) = if matches!(e, Transpose(_)) {
                    (ea.cols, ea.rows)
                } else {
                    (ea.rows, ea.cols)
                };
                self.unary(ea, rows, cols, ea.density, ea.nnz())
            }
            Inv(a) | Adj(a) | Exp(a) => {
                let ea = self.square_input(e, a)?;
                let n = ea.rows as f64;
                let flops = match e {
                    Inv(_) => 2.0 * n * n * n,
                    Adj(_) => 2.0 * n * n * n * n,
                    _ => 30.0 * n * n * n,
                };
                // Inverses/exponentials of sparse matrices are dense.
                self.unary(ea, ea.rows, ea.cols, 1.0, flops)
            }
            Cho(a) => {
                let ea = self.square_input(e, a)?;
                let n = ea.rows as f64;
                self.unary(ea, ea.rows, ea.cols, 0.5, n * n * n / 3.0)
            }
            QrQ(a) | QrR(a) => {
                let ea = self.square_input(e, a)?;
                let n = ea.rows as f64;
                let density = if matches!(e, QrQ(_)) { 1.0 } else { 0.5 };
                self.unary(ea, ea.rows, ea.cols, density, 2.0 * n * n * n)
            }
            LuL(a) | LuU(a) => {
                let ea = self.square_input(e, a)?;
                let n = ea.rows as f64;
                self.unary(ea, ea.rows, ea.cols, 0.5, 2.0 * n * n * n / 3.0)
            }
            Diag(a) => {
                let ea = self.square_input(e, a)?;
                self.unary(ea, ea.rows, 1, ea.density.min(1.0), ea.rows as f64)
            }
            RowSums(a) | RowMeans(a) | RowMin(a) | RowMax(a) | RowVar(a) => {
                let ea = self.estimate(a)?;
                self.unary(ea, ea.rows, 1, 1.0, ea.cells())
            }
            ColSums(a) | ColMeans(a) | ColMin(a) | ColMax(a) | ColVar(a) => {
                let ea = self.estimate(a)?;
                self.unary(ea, 1, ea.cols, 1.0, ea.cells())
            }
            Det(a) | Trace(a) => {
                let ea = self.square_input(e, a)?;
                let n = ea.rows as f64;
                let flops = if matches!(e, Det(_)) { n * n * n } else { n };
                self.unary(ea, 1, 1, 1.0, flops)
            }
            Sum(a) | Min(a) | Max(a) | Mean(a) | Var(a) => {
                let ea = self.estimate(a)?;
                self.unary(ea, 1, 1, 1.0, ea.cells())
            }
        };
        Ok(est)
    }

    fn check_same(&self, e: &Expr, a: &Estimate, b: &Estimate) -> Result<(), ShapeError> {
        if (a.rows, a.cols) != (b.rows, b.cols) {
            return Err(ShapeError::Mismatch(format!("{e}")));
        }
        Ok(())
    }

    fn square_input(&self, e: &Expr, a: &Expr) -> Result<Estimate, ShapeError> {
        let ea = self.estimate(a)?;
        if ea.rows != ea.cols {
            return Err(ShapeError::Mismatch(format!("{e} requires square input")));
        }
        Ok(ea)
    }

    fn combine(
        &self,
        a: Estimate,
        b: Estimate,
        rows: usize,
        cols: usize,
        density: f64,
        flops: f64,
    ) -> Estimate {
        let out = Estimate { rows, cols, density, cost: 0.0 };
        Estimate { cost: a.cost + b.cost + flops + MEM_WEIGHT * out.nnz(), ..out }
    }

    fn unary(
        &self,
        a: Estimate,
        rows: usize,
        cols: usize,
        density: f64,
        flops: f64,
    ) -> Estimate {
        let out = Estimate { rows, cols, density, cost: 0.0 };
        Estimate { cost: a.cost + flops + MEM_WEIGHT * out.nnz(), ..out }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hadad_core::expr::dsl::*;
    use hadad_core::MatrixMeta;

    fn cat() -> MetaCatalog {
        let mut c = MetaCatalog::new();
        c.register("A", MatrixMeta::dense(30, 4));
        c.register("B", MatrixMeta::dense(4, 30));
        c.register("S", MatrixMeta::sparse(1000, 1000, 5000));
        c
    }

    #[test]
    fn rotated_trace_is_cheaper() {
        let c = cat();
        let cm = CostModel::new(&c);
        let ab = cm.cost(&trace(mul(m("A"), m("B")))).unwrap();
        let ba = cm.cost(&trace(mul(m("B"), m("A")))).unwrap();
        assert!(ba < ab, "trace(BA)={ba} should beat trace(AB)={ab}");
    }

    #[test]
    fn right_deep_chain_is_cheaper() {
        let mut c = cat();
        c.register("x", MatrixMeta::dense(30, 1));
        let cm = CostModel::new(&c);
        let left = cm.cost(&mul(mul(m("A"), m("B")), m("x"))).unwrap();
        let right = cm.cost(&mul(m("A"), mul(m("B"), m("x")))).unwrap();
        assert!(right < left);
    }

    #[test]
    fn sparsity_lowers_product_cost() {
        let c = cat();
        let cm = CostModel::new(&c);
        let sparse = cm.cost(&mul(m("S"), m("S"))).unwrap();
        let mut dense_cat = MetaCatalog::new();
        dense_cat.register("S", MatrixMeta::dense(1000, 1000));
        let dense = CostModel::new(&dense_cat).cost(&mul(m("S"), m("S"))).unwrap();
        assert!(sparse < dense / 10.0, "sparse={sparse} dense={dense}");
    }

    #[test]
    fn shape_errors_surface() {
        let c = cat();
        let cm = CostModel::new(&c);
        assert!(cm.cost(&add(m("A"), m("B"))).is_err());
        assert!(cm.cost(&m("missing")).is_err());
    }

    #[test]
    fn flops_cost_orders_mul_shapes() {
        use hadad_core::ExtractionCost;
        let f = FlopsCost;
        let big = f.op_cost(OpKind::Mul, 0, &[(30, 4), (4, 30)], (30, 30));
        let small = f.op_cost(OpKind::Mul, 0, &[(4, 30), (30, 4)], (4, 4));
        assert!(small < big);
    }
}
