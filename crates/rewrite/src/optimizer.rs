//! The end-to-end rewriting facade: encode → chase under the MMC
//! catalogue → decode candidates → rank by estimated cost → (optionally)
//! execute to check semantic equivalence.
//!
//! This is the paper's §4–§7 loop specialized to pure LA inputs: the chase
//! saturates the VREM encoding of the input expression under `LAprop`, and
//! cost-ranked extraction from the saturated instance plays the role of
//! the backchase — every candidate it returns is a full reformulation
//! justified by the constraints, and the cost model picks the winner.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use hadad_chase::{
    degradation_of, ChaseBudget, ChaseEngine, ChaseOutcome, ChaseStats, Constraint, CostPruner,
    DegradeReason, Degraded, EvalMode, RewritePhase,
};
use hadad_core::fingerprint::{canonicalize, leaf_bands, rename_leaves};
use hadad_core::{
    BackendProfile, Catalogue, Encoder, Expr, Extractor, MatrixMeta, MetaCatalog,
    RuleRejection, ShapeError, Vrem,
};
use hadad_linalg::{approx_eq, BackendKind, Matrix};

use crate::cache::{CacheReport, CachedPlans, DpTable, Lookup, PlanCache, PlanCacheKey};
use crate::cost::{CostModel, FlopsCost, TighteningPruner, VremCostOracle};
use crate::eval::{eval_with, Env, EvalError};

// Shared-registry instrumentation for the rewrite pipeline. The phase
// histograms record the *same* measurements the `RewriteReport` timing
// fields carry — the report is a per-call view of these process metrics.
static M_REWRITE_CALLS: hadad_obs::LazyCounter = hadad_obs::LazyCounter::new("rewrite.calls");
static M_CACHE_SERVED: hadad_obs::LazyCounter =
    hadad_obs::LazyCounter::new("rewrite.cache_served");
static M_DEGRADED: hadad_obs::LazyCounter = hadad_obs::LazyCounter::new("rewrite.degraded");
static M_TOTAL_US: hadad_obs::LazyHistogram = hadad_obs::LazyHistogram::new("rewrite.total_us");
static M_ENCODE_US: hadad_obs::LazyHistogram =
    hadad_obs::LazyHistogram::new("rewrite.encode_us");
static M_CHASE_US: hadad_obs::LazyHistogram = hadad_obs::LazyHistogram::new("rewrite.chase_us");
static M_EXTRACT_US: hadad_obs::LazyHistogram =
    hadad_obs::LazyHistogram::new("rewrite.extract_us");
static M_RANK_US: hadad_obs::LazyHistogram = hadad_obs::LazyHistogram::new("rewrite.rank_us");

fn record_total_us(us: u128) {
    M_TOTAL_US.record(u64::try_from(us).unwrap_or(u64::MAX));
}

/// Whether the chase runs under `Prune_prov` (paper §7.3). The default
/// consults the cost oracle: a TGD firing whose conclusion cannot beat the
/// incumbent plan (seeded from the unrewritten expression, tightened every
/// round by the extraction DP) is vetoed. `Off` is kept for differential
/// testing — both modes must produce best plans of identical cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PruneMode {
    /// Veto TGD firings whose provenance already costs more than the
    /// incumbent plan.
    #[default]
    CostThreshold,
    /// Chase without pruning (differential-testing baseline).
    Off,
}

/// One candidate plan: an expression equivalent to the input under the
/// catalogue, with its estimated cost.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The rewritten expression.
    pub expr: Expr,
    /// Estimated execution cost under the active backend profile.
    pub est_cost: f64,
}

/// Diagnostics from one `rewrite` call, including a per-phase time
/// breakdown (encode → chase → extract → rank) and the full chase
/// statistics, so regressions show up in the right phase. Setup work —
/// original-plan costing and MMC catalogue construction — is covered only
/// by `elapsed_us`, not by any phase bucket.
#[derive(Debug, Clone)]
pub struct RewriteReport {
    /// How the chase ended (fixpoint, or which budget tripped).
    pub chase_outcome: ChaseOutcome,
    /// Chase rounds executed.
    pub chase_rounds: usize,
    /// Facts in the final instance.
    pub num_facts: usize,
    /// Candidate plans extracted.
    pub num_candidates: usize,
    /// TGD firings vetoed by `Prune_prov` (0 under [`PruneMode::Off`]);
    /// per-rule veto counts are in `chase_stats.rule_vetoes`.
    pub pruned_firings: usize,
    /// End-to-end wall-clock time of the `rewrite` call, microseconds.
    pub elapsed_us: u128,
    /// Time spent encoding the expression into a canonical instance.
    pub encode_us: u128,
    /// Time spent chasing the instance to (bounded) fixpoint.
    pub chase_us: u128,
    /// Time spent in the extraction DP.
    pub extract_us: u128,
    /// Time spent costing and sorting candidates.
    pub rank_us: u128,
    /// The backend calibration constants every cost in this report was
    /// priced under (estimator, extraction DP, and chase pruner alike).
    pub cost_profile: BackendProfile,
    /// Per-rule firings/matches and per-round delta sizes from the chase.
    pub chase_stats: ChaseStats,
    /// `Some` when the pipeline had to give up completeness — a budget or
    /// deadline tripped, or a phase worker panicked and was contained. The
    /// returned plans are still sound (every candidate is justified by the
    /// facts that *were* derived), but cheaper rewritings may have been
    /// missed. `None` means the chase terminated and every phase ran clean.
    pub degraded: Option<Degraded>,
    /// Plan-cache counters (all zero when no cache is configured). When
    /// `cache.hit` is set, this call was served from the cache: only
    /// `elapsed_us` and `cache` describe the serving call — every other
    /// field documents the cold pass that originally produced the plans.
    pub cache: CacheReport,
}

/// Result of `Optimizer::rewrite`: the original plan plus all candidate
/// reformulations, cheapest first.
#[derive(Debug, Clone)]
pub struct RankedPlans {
    /// The unrewritten input, priced under the same profile.
    pub original: Plan,
    /// Candidates sorted by ascending estimated cost (the original
    /// expression is among them whenever extraction can rebuild it).
    pub plans: Vec<Plan>,
    /// Diagnostics for this call.
    pub report: RewriteReport,
}

impl RankedPlans {
    /// The cheapest plan (falls back to the original when the chase or
    /// extraction produced nothing better).
    pub fn best(&self) -> &Plan {
        self.plans.first().unwrap_or(&self.original)
    }

    /// Estimated speedup of the best plan over the original. A zero-cost
    /// best plan (a rewrite onto an already-materialized matrix) yields
    /// `f64::INFINITY` rather than masking the win.
    pub fn est_speedup(&self) -> f64 {
        if self.best().est_cost > 0.0 {
            self.original.est_cost / self.best().est_cost
        } else if self.original.est_cost > 0.0 {
            f64::INFINITY
        } else {
            1.0
        }
    }
}

/// Rewriting failure.
#[derive(Debug)]
pub enum RewriteError {
    /// The input expression is not shape-consistent.
    Shape(ShapeError),
    /// The reference expression failed to evaluate in `rewrite_verified`.
    Eval(EvalError),
    /// The root class could not be decoded (should not happen for
    /// well-formed encodings; kept explicit instead of panicking).
    NoPlan,
    /// A registration was refused by static analysis: the offered rules
    /// are range-unrestricted or break weak acyclicity modulo reuse (a
    /// chase-termination risk the budgets would otherwise have to absorb).
    Rejected(RuleRejection),
}

impl std::fmt::Display for RewriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RewriteError::Shape(e) => write!(f, "{e}"),
            RewriteError::Eval(e) => write!(f, "original failed to evaluate: {e}"),
            RewriteError::NoPlan => write!(f, "no plan could be extracted"),
            RewriteError::Rejected(r) => write!(f, "{r}"),
        }
    }
}

impl std::error::Error for RewriteError {}

impl From<ShapeError> for RewriteError {
    fn from(e: ShapeError) -> Self {
        RewriteError::Shape(e)
    }
}

impl From<RuleRejection> for RewriteError {
    fn from(r: RuleRejection) -> Self {
        RewriteError::Rejected(r)
    }
}

/// Candidate count from which plan ranking shards cost estimation across
/// worker threads.
const PARALLEL_RANK_THRESHOLD: usize = 16;

/// A generator of additional constraints (e.g. mined from workload logs),
/// re-evaluated against each `rewrite` call's fresh [`Vrem`] so predicate
/// and constant interning stay consistent with that call's encoding.
pub type ConstraintGen = Arc<dyn Fn(&mut Vrem) -> Vec<Constraint> + Send + Sync>;

/// Static gate shared by every registration entry point: the standard
/// catalogue context plus the offered rules must certify (range
/// restriction, weak acyclicity modulo conclusion-atom reuse, stats
/// coverage). Subsumption is skipped here — it can only produce warnings,
/// which never reject — keeping registration O(rules), not O(rules²).
fn registration_gate(constraints: &[Constraint], vrem: &Vrem) -> Result<(), RuleRejection> {
    let report = hadad_core::analyze::Analyzer::new(constraints)
        .with_vocab(&vrem.vocab)
        .with_stats_preds(vec![vrem.size])
        .with_coverage_exempt(vec![
            vrem.name,
            vrem.lit,
            vrem.ty,
            vrem.identity,
            vrem.zero,
            vrem.density,
        ])
        .without_subsumption()
        .report();
    match report.rejection() {
        Some(r) => Err(r),
        None => Ok(()),
    }
}

/// A registered, materialized LA view: a name the evaluation environment
/// binds to a precomputed matrix, plus the defining expression over base
/// matrices (paper §6.2.4). Metadata is taken from `meta` when given,
/// otherwise estimated from the definition at rewrite time.
#[derive(Debug, Clone)]
pub struct LaView {
    /// Name the environment binds to the materialized matrix.
    pub name: String,
    /// Defining expression over base matrices.
    pub def: Expr,
    /// Explicit metadata; estimated from `def` when `None`.
    pub meta: Option<MatrixMeta>,
}

/// The optimizer facade.
#[derive(Clone)]
pub struct Optimizer {
    /// Metadata catalog the estimator prices against.
    pub cat: MetaCatalog,
    /// Chase resource budget.
    pub budget: ChaseBudget,
    /// Premise-matching strategy for the chase; semi-naïve by default,
    /// naive kept for differential testing and baselining.
    pub mode: EvalMode,
    /// Cost-threshold pruning of chase firings; on by default.
    pub prune: PruneMode,
    /// Materialized LA views registered for view-based reformulation:
    /// each contributes `V_IO`/`V_OI` constraints to the chase, so plans
    /// can land on (and expand through) `Mat(view)` leaves.
    pub views: Vec<LaView>,
    /// Execution backend the chosen plan will run on: selects the kernels
    /// `rewrite_verified`/`check_equivalent` evaluate with *and* the
    /// calibration constants every cost estimate is priced under. Defaults
    /// to the `HADAD_BACKEND` env selection (`Parallel` unless overridden).
    pub backend: BackendKind,
    /// Optional wall-clock allowance for each `rewrite` call. When set, the
    /// chase budget is stamped with `Instant::now() + deadline` at the start
    /// of the call; a chase cut short by it still yields an anytime result
    /// (see [`RewriteReport::degraded`]).
    pub deadline: Option<Duration>,
    /// Extra constraint generators accepted by
    /// [`Optimizer::register_constraints`]; appended to the standard
    /// catalogue on every `rewrite` call.
    extra_constraints: Vec<ConstraintGen>,
    /// Shared plan cache (`None` = disabled). Clones share the same cache,
    /// which is how the hybrid path's per-run optimizer clones and
    /// concurrent snapshot readers all hit one map.
    cache: Option<Arc<PlanCache>>,
    /// Catalog epoch this optimizer's cache probes and inserts are pinned
    /// to; see [`Optimizer::set_cache_epoch`].
    cache_epoch: u64,
    /// Memoized catalogue prefix (standard rules + view constraints +
    /// generator output on a fresh [`Vrem`]), keyed by a hash of everything
    /// it was built from; shared across clones.
    memo: Arc<Mutex<Option<ConstraintMemo>>>,
}

/// One memoized catalogue prefix: the [`Vrem`] the constraints were
/// interned into and the constraints themselves, both cloned per call so
/// the per-call encoding builds on a consistent schema.
struct ConstraintMemo {
    key: u64,
    vrem: Vrem,
    constraints: Vec<Constraint>,
}

impl Optimizer {
    /// Optimizer over `cat` with default budgets, the standard catalogue,
    /// and the env-selected backend.
    pub fn new(cat: MetaCatalog) -> Self {
        Optimizer {
            cat,
            // Tighter than the chase default: rewriting works expression by
            // expression, so instances are small and saturate quickly.
            budget: ChaseBudget {
                max_rounds: 12,
                max_facts: 30_000,
                max_nulls: 15_000,
                deadline: None,
            },
            mode: EvalMode::default(),
            prune: PruneMode::default(),
            views: Vec::new(),
            backend: BackendKind::from_env(),
            deadline: None,
            extra_constraints: Vec::new(),
            cache: PlanCache::from_env(),
            cache_epoch: 0,
            memo: Arc::new(Mutex::new(None)),
        }
    }

    /// Enables the plan cache with `capacity` total entries (`0`
    /// disables), replacing any env-configured cache. Clones of this
    /// optimizer share the cache; see [`crate::cache`] for the key and
    /// the epoch-invalidation rule.
    pub fn with_plan_cache(mut self, capacity: usize) -> Self {
        self.cache = (capacity > 0).then(|| Arc::new(PlanCache::new(capacity)));
        self
    }

    /// The shared plan cache, when one is enabled.
    pub fn plan_cache(&self) -> Option<&Arc<PlanCache>> {
        self.cache.as_ref()
    }

    /// Pins plan-cache probes and inserts to `epoch` — the relational
    /// [`Catalog`](hadad_relational::Catalog)'s monotonic version in
    /// hybrid deployments. An entry stamped with a different epoch is
    /// refused (and evicted), which keeps hits sound across IVM updates.
    /// Purely-LA deployments can leave the default of `0`.
    pub fn set_cache_epoch(&mut self, epoch: u64) {
        self.cache_epoch = epoch;
    }

    /// The epoch cache entries are currently stamped with.
    pub fn cache_epoch(&self) -> u64 {
        self.cache_epoch
    }

    /// Selects the execution backend (kernels and cost calibration).
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Bounds each `rewrite` call to roughly `timeout` of wall-clock time.
    /// The bound is enforced inside the chase (checked at every round start
    /// and every few TGD firings), so the pipeline degrades to the best plan
    /// derivable from the partial instance rather than erroring.
    pub fn with_deadline(mut self, timeout: Duration) -> Self {
        self.deadline = Some(timeout);
        self
    }

    /// Calibration constants of the selected backend.
    fn profile(&self) -> BackendProfile {
        BackendProfile::for_kind(self.backend)
    }

    /// Replaces the chase budget.
    pub fn with_budget(mut self, budget: ChaseBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Selects the premise-matching strategy.
    pub fn with_mode(mut self, mode: EvalMode) -> Self {
        self.mode = mode;
        self
    }

    /// Toggles cost-threshold pruning.
    pub fn with_prune(mut self, prune: PruneMode) -> Self {
        self.prune = prune;
        self
    }

    /// Registers a materialized LA view. Shape/density metadata is
    /// estimated from the definition when the view is used (so definitions
    /// may reference matrices registered later, e.g. a hybrid cast).
    ///
    /// The view's `V_IO`/`V_OI` constraints are statically analyzed
    /// against the standard catalogue and rejected with
    /// [`RewriteError::Rejected`] if they are unsafe or break weak
    /// acyclicity modulo reuse. When metadata gaps (forward references)
    /// make the constraints unbuildable yet, the check is deferred to
    /// rewrite time, where the same constraints are built for real.
    pub fn register_la_view(
        &mut self,
        name: impl Into<String>,
        def: Expr,
    ) -> Result<(), RewriteError> {
        self.register_la_view_inner(name.into(), def, None)
    }

    /// Registers a materialized LA view with explicit metadata (e.g. from
    /// the actual materialized matrix). Statically gated like
    /// [`Optimizer::register_la_view`].
    pub fn register_la_view_with_meta(
        &mut self,
        name: impl Into<String>,
        def: Expr,
        meta: MatrixMeta,
    ) -> Result<(), RewriteError> {
        self.register_la_view_inner(name.into(), def, Some(meta))
    }

    fn register_la_view_inner(
        &mut self,
        name: String,
        def: Expr,
        meta: Option<MatrixMeta>,
    ) -> Result<(), RewriteError> {
        // Build the candidate view's constraints over a scratch schema and
        // gate on certification. `effective_cat`/`la_view_constraints`
        // failures mean metadata is not available yet (the definition
        // references matrices to be registered later), so validation
        // happens at rewrite time instead — the documented contract.
        let candidate = LaView { name, def, meta };
        if let Ok(mut meta_cat) = self.effective_cat() {
            if let Some(m) = &candidate.meta {
                if meta_cat.get(&candidate.name).is_none() {
                    meta_cat.register(&candidate.name, m.clone());
                }
            }
            let mut vrem = Vrem::new();
            let mut cat = Catalogue::standard(&mut vrem);
            if let Ok(cs) = Catalogue::la_view_constraints(
                &mut vrem,
                &meta_cat,
                &candidate.name,
                &candidate.def,
            ) {
                cat.constraints.extend(cs);
                registration_gate(&cat.constraints, &vrem)?;
            }
        }
        self.views.push(candidate);
        Ok(())
    }

    /// Registers a *mined* constraint generator (e.g. rules discovered
    /// from workload logs): the future constraint-discovery entry point.
    /// The generated rules are statically analyzed against the standard
    /// catalogue on a scratch schema and refused with
    /// [`RewriteError::Rejected`] unless range-restricted and weakly
    /// acyclic modulo conclusion-atom reuse; accepted generators run
    /// against every `rewrite` call's fresh [`Vrem`] and their rules are
    /// chased alongside the catalogue.
    pub fn register_constraints<F>(&mut self, gen: F) -> Result<(), RewriteError>
    where
        F: Fn(&mut Vrem) -> Vec<Constraint> + Send + Sync + 'static,
    {
        let mut vrem = Vrem::new();
        let mut cat = Catalogue::standard(&mut vrem);
        cat.constraints.extend(gen(&mut vrem));
        registration_gate(&cat.constraints, &vrem)?;
        self.extra_constraints.push(Arc::new(gen));
        Ok(())
    }

    /// The metadata catalog with every registered view priced in: explicit
    /// metadata when given, otherwise shape and density estimated from the
    /// definition (views may build on earlier views).
    fn effective_cat(&self) -> Result<MetaCatalog, RewriteError> {
        if self.views.is_empty() {
            return Ok(self.cat.clone());
        }
        let mut cat = self.cat.clone();
        for v in &self.views {
            if cat.get(&v.name).is_some() {
                continue;
            }
            let meta = match &v.meta {
                Some(m) => m.clone(),
                None => {
                    let est = CostModel::new(&cat).estimate(&v.def)?;
                    let nnz = (est.density * est.rows as f64 * est.cols as f64).round();
                    MatrixMeta::sparse(est.rows, est.cols, nnz as usize)
                }
            };
            cat.register(&v.name, meta);
        }
        Ok(cat)
    }

    /// Clone of `env` with every registered view materialized and bound
    /// (views already bound by the caller are left untouched).
    fn env_with_views(&self, env: &Env) -> Result<Env, EvalError> {
        if self.views.is_empty() {
            return Ok(env.clone());
        }
        let mut env = env.clone();
        for v in &self.views {
            if env.get(&v.name).is_none() {
                let m = eval_with(&v.def, &env, self.backend.select())?;
                env.bind(&v.name, m);
            }
        }
        Ok(env)
    }

    /// The memoized catalogue prefix: standard MMC rules, view
    /// constraints, and registered-generator output, all interned into one
    /// fresh [`Vrem`]. Rebuilt only when its inputs change (catalog
    /// entries, views, generators, cache epoch); otherwise the memoized
    /// schema and constraints are cloned — generator re-runs and their
    /// `hadad-analyze` certification stay off the per-rewrite hot path.
    fn catalogue_prefix(
        &self,
        cat: &MetaCatalog,
    ) -> Result<(Vrem, Vec<Constraint>), RewriteError> {
        let key = self.prefix_key(cat);
        {
            let memo = self.memo.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(m) = memo.as_ref() {
                if m.key == key {
                    return Ok((m.vrem.clone(), m.constraints.clone()));
                }
            }
        }
        let mut vrem = Vrem::new();
        let mut catalogue = Catalogue::standard(&mut vrem);
        for v in &self.views {
            catalogue
                .constraints
                .extend(Catalogue::la_view_constraints(&mut vrem, cat, &v.name, &v.def)?);
        }
        // Mined constraints re-generate against this schema; their shape
        // was certified at registration time.
        for gen in &self.extra_constraints {
            catalogue.constraints.extend(gen(&mut vrem));
        }
        let constraints = catalogue.constraints;
        let mut memo = self.memo.lock().unwrap_or_else(PoisonError::into_inner);
        *memo =
            Some(ConstraintMemo { key, vrem: vrem.clone(), constraints: constraints.clone() });
        Ok((vrem, constraints))
    }

    /// Hash of everything [`Optimizer::catalogue_prefix`] reads: catalog
    /// shapes, views, generator identities, and the catalog epoch.
    fn prefix_key(&self, cat: &MetaCatalog) -> u64 {
        let mut h = DefaultHasher::new();
        self.cache_epoch.hash(&mut h);
        for name in cat.names() {
            if let Some(m) = cat.get(name) {
                name.hash(&mut h);
                m.rows.hash(&mut h);
                m.cols.hash(&mut h);
                m.nnz.hash(&mut h);
            }
        }
        hash_views_and_gens(&self.views, &self.extra_constraints, &mut h);
        h.finish()
    }

    /// Opaque configuration hash for plan-cache keys: two optimizers with
    /// the same hash would run an identical cold pipeline on equal inputs.
    fn config_hash(&self) -> u64 {
        let mut h = DefaultHasher::new();
        format!("{:?}", self.backend).hash(&mut h);
        format!("{:?}", self.mode).hash(&mut h);
        format!("{:?}", self.prune).hash(&mut h);
        self.budget.max_rounds.hash(&mut h);
        self.budget.max_facts.hash(&mut h);
        self.budget.max_nulls.hash(&mut h);
        self.deadline.hash(&mut h);
        hash_views_and_gens(&self.views, &self.extra_constraints, &mut h);
        h.finish()
    }

    /// Plan-cache key for `e` over the effective catalog, or `None` when
    /// some leaf has no metadata (the rewrite will fail shape inference on
    /// its own terms). Cross-name sharing is only allowed while no views
    /// or extra rules are registered — their plans can embed leaves tied
    /// to concrete names, so those keys bind the leaf names too.
    fn cache_key(&self, e: &Expr, cat: &MetaCatalog) -> Option<PlanCacheKey> {
        let canon = canonicalize(e);
        let bands = leaf_bands(&canon.leaves, cat)?;
        let names_bound = !self.views.is_empty() || !self.extra_constraints.is_empty();
        Some(PlanCacheKey::new(canon, bands, self.config_hash(), self.cache_epoch, names_bound))
    }

    /// Point-in-time snapshot of the process-wide observability registry —
    /// every counter and latency histogram the pipeline has published
    /// (chase, extraction, ranking, kernels, plan cache, maintenance).
    /// Metrics are process-global: concurrent optimizers (and snapshot
    /// readers) aggregate into the same registry.
    pub fn metrics(&self) -> hadad_obs::MetricsSnapshot {
        hadad_obs::snapshot()
    }

    /// Rewrites `e` into cost-ranked equivalent plans.
    pub fn rewrite(&self, e: &Expr) -> Result<RankedPlans, RewriteError> {
        let start = Instant::now();
        let _span = hadad_obs::span("rewrite");
        M_REWRITE_CALLS.incr();
        let cat = self.effective_cat()?;
        // Every cost consumer below — ranking estimator, chase pruner,
        // extraction DP — prices plans under the selected backend's
        // calibration constants, so plan choice tracks the kernels that
        // will actually execute.
        let profile = self.profile();
        let cm = CostModel::with_profile(&cat, profile);
        let original = Plan { expr: e.clone(), est_cost: cm.cost(e)? };

        // Plan-cache probe: a hit at the current epoch is served straight
        // from the cache; a stale entry is refused but donates its DP
        // table, warm-starting the pruner's mid-chase re-extractions.
        let mut warm_dp: Option<DpTable> = None;
        let mut pending: Option<(Arc<PlanCache>, PlanCacheKey)> = None;
        if let Some(cache) = &self.cache {
            if let Some(key) = self.cache_key(e, &cat) {
                match cache.lookup(&key) {
                    Lookup::Hit(cached) => {
                        if let Some(served) =
                            serve_hit(cache, *cached, &key, &cm, original.clone(), start)
                        {
                            return Ok(served);
                        }
                        pending = Some((Arc::clone(cache), key));
                    }
                    Lookup::Stale(dp) => {
                        warm_dp = Some(dp);
                        pending = Some((Arc::clone(cache), key));
                    }
                    Lookup::Miss => pending = Some((Arc::clone(cache), key)),
                }
            }
        }

        let (mut vrem, constraints) = self.catalogue_prefix(&cat)?;
        let (encoded, encode_us) = hadad_obs::timed("rewrite.encode", &M_ENCODE_US, || {
            Encoder::new(&mut vrem, &cat).encode(e)
        });
        let encoded = encoded?;

        let budget = match self.deadline {
            Some(timeout) => self.budget.with_deadline(timeout),
            None => self.budget,
        };
        let engine = ChaseEngine::new(constraints).with_budget(budget).with_mode(self.mode);
        let mut inst = encoded.instance;
        // `Prune_prov` for the LA path: the oracle reads propagated
        // size/density facts, the incumbent starts at the original plan's
        // cost and tightens each round as the DP finds cheaper plans in
        // the partially saturated instance. A refused cache entry's DP
        // table seeds the first re-extraction.
        let oracle = VremCostOracle::with_profile(&vrem, profile);
        let mut pruner = match self.prune {
            PruneMode::Off => None,
            PruneMode::CostThreshold => {
                let p = TighteningPruner::new(
                    &oracle,
                    CostPruner::new(&oracle, original.est_cost),
                    &vrem,
                    encoded.root,
                );
                Some(match warm_dp.take() {
                    Some(seed) => p.with_seed(seed),
                    None => p,
                })
            }
        };
        // Phase supervision: a panic inside the chase (a bug, or an injected
        // fault) is contained here. The partially saturated instance is still
        // a sound under-approximation — every fact in it was derived from the
        // catalogue — so extraction proceeds on whatever was built.
        let ((chase_outcome, stats, mut degraded), chase_us) =
            hadad_obs::timed("rewrite.chase", &M_CHASE_US, || {
                let chased = catch_unwind(AssertUnwindSafe(|| match pruner.as_mut() {
                    None => engine.chase(&mut inst),
                    Some(p) => engine.chase_with(&mut inst, p),
                }));
                match chased {
                    Ok((outcome, stats)) => {
                        let degraded = degradation_of(&stats, RewritePhase::Chase);
                        (outcome, stats, degraded)
                    }
                    Err(_) => (
                        ChaseOutcome::BudgetExhausted,
                        ChaseStats::default(),
                        Some(Degraded {
                            reason: DegradeReason::WorkerPanic,
                            phase: RewritePhase::Chase,
                        }),
                    ),
                }
            });

        let cost_fn = FlopsCost::with_profile(profile);
        let want_dp = pending.is_some();
        let ((candidates, dp_table), extract_us) =
            hadad_obs::timed("rewrite.extract", &M_EXTRACT_US, || {
                catch_unwind(AssertUnwindSafe(|| {
                    let extractor = Extractor::new(&vrem, &inst, &cost_fn);
                    let mut candidates = extractor.candidates(encoded.root);
                    if candidates.is_empty() {
                        // Un-chased leaf-only expressions still decode via
                        // `extract`.
                        candidates.extend(extractor.extract(encoded.root));
                    }
                    let dp = want_dp.then(|| extractor.dp_table().clone());
                    (candidates, dp)
                }))
                .unwrap_or_else(|_| {
                    degraded.get_or_insert(Degraded {
                        reason: DegradeReason::WorkerPanic,
                        phase: RewritePhase::Extraction,
                    });
                    (Vec::new(), None)
                })
            });
        if candidates.is_empty() && degraded.is_none() {
            return Err(RewriteError::NoPlan);
        }

        let (plans, rank_us) = hadad_obs::timed("rewrite.rank", &M_RANK_US, || {
            let mut plans = catch_unwind(AssertUnwindSafe(|| rank_candidates(&cm, candidates)))
                .unwrap_or_else(|_| {
                    degraded.get_or_insert(Degraded {
                        reason: DegradeReason::WorkerPanic,
                        phase: RewritePhase::Ranking,
                    });
                    Vec::new()
                });
            if plans.is_empty() && degraded.is_some() {
                // Anytime guarantee: the unrewritten expression is always a
                // sound incumbent, so a degraded call still returns a plan.
                plans.push(original.clone());
            }
            plans.sort_by(|a, b| {
                a.est_cost.partial_cmp(&b.est_cost).unwrap_or(std::cmp::Ordering::Equal)
            });
            plans
        });

        let elapsed_us = start.elapsed().as_micros();
        record_total_us(elapsed_us);
        if degraded.is_some() {
            M_DEGRADED.incr();
        }
        let report = RewriteReport {
            chase_outcome,
            chase_rounds: stats.rounds,
            num_facts: inst.num_facts(),
            num_candidates: plans.len(),
            pruned_firings: stats.pruned_firings,
            elapsed_us,
            encode_us,
            chase_us,
            extract_us,
            rank_us,
            cost_profile: profile,
            chase_stats: stats,
            degraded,
            cache: self.cache.as_ref().map_or_else(CacheReport::default, |c| c.report(false)),
        };
        let ranked = RankedPlans { original, plans, report };
        // Only clean results are cached: a degraded pass may have missed
        // cheaper plans, and serving it later would freeze the degradation.
        if let Some((cache, key)) = pending {
            if ranked.report.degraded.is_none() {
                cache.insert(&key, ranked.clone(), dp_table.unwrap_or_default());
            }
        }
        Ok(ranked)
    }

    /// Execution hook: evaluates `original` and `candidate` on the linalg
    /// backend and checks element-wise agreement within `rtol`. Registered
    /// views not bound in `env` are materialized from their definitions.
    pub fn check_equivalent(
        &self,
        original: &Expr,
        candidate: &Expr,
        env: &Env,
        rtol: f64,
    ) -> Result<bool, EvalError> {
        let env = self.env_with_views(env)?;
        let backend = self.backend.select();
        let a = eval_with(original, &env, backend)?;
        let b = eval_with(candidate, &env, backend)?;
        Ok(approx_eq(&a, &b, rtol))
    }

    /// Rewrites `e`, then executes plans (cheapest first) against `env`
    /// until one agrees with the original's value; returns that plan and
    /// the matrices. A plan that fails to evaluate (e.g. a numerically
    /// singular inverse) is skipped, mirroring the paper's stance that
    /// rewritten plans must be machine-checked before being trusted.
    pub fn rewrite_verified(
        &self,
        e: &Expr,
        env: &Env,
        rtol: f64,
    ) -> Result<(RankedPlans, Plan, Matrix), RewriteError> {
        let ranked = self.rewrite(e)?;
        let env = self.env_with_views(env).map_err(RewriteError::Eval)?;
        let backend = self.backend.select();
        let reference = eval_with(e, &env, backend).map_err(RewriteError::Eval)?;
        for plan in &ranked.plans {
            if let Ok(value) = eval_with(&plan.expr, &env, backend) {
                if approx_eq(&value, &reference, rtol) {
                    let plan = plan.clone();
                    return Ok((ranked, plan, reference));
                }
            }
        }
        let plan = ranked.original.clone();
        Ok((ranked, plan, reference))
    }
}

/// Hashes view signatures and generator identities into `h` — shared by
/// the memo key and the cache configuration hash. Generators are hashed by
/// allocation identity (`Arc` pointer): two optimizers share a generator
/// exactly when one was cloned from the other with it already registered.
fn hash_views_and_gens(views: &[LaView], gens: &[ConstraintGen], h: &mut impl Hasher) {
    for v in views {
        v.name.hash(h);
        v.def.to_string().hash(h);
        if let Some(m) = &v.meta {
            m.rows.hash(h);
            m.cols.hash(h);
            m.nnz.hash(h);
        }
    }
    for g in gens {
        (Arc::as_ptr(g) as *const () as usize).hash(h);
    }
}

/// Serves a cache hit: the cached plans are re-anchored on this call's
/// freshly priced original and, on a cross-name hit (same skeleton and
/// bands, different leaf names), re-skinned onto the probe's names and
/// re-priced under its catalog. Returns `None` when no re-skinned plan
/// prices (treated as a miss by the caller).
fn serve_hit(
    cache: &PlanCache,
    cached: CachedPlans,
    key: &PlanCacheKey,
    cm: &CostModel<'_>,
    original: Plan,
    start: Instant,
) -> Option<RankedPlans> {
    let CachedPlans { mut plans, names } = cached;
    if names == key.names {
        plans.original = original;
    } else {
        let mut reskinned = Vec::with_capacity(plans.plans.len());
        for p in &plans.plans {
            let expr = rename_leaves(&p.expr, &names, &key.names);
            if let Ok(est_cost) = cm.cost(&expr) {
                reskinned.push(Plan { expr, est_cost });
            }
        }
        if reskinned.is_empty() {
            return None;
        }
        reskinned.sort_by(|a, b| {
            a.est_cost.partial_cmp(&b.est_cost).unwrap_or(std::cmp::Ordering::Equal)
        });
        plans.plans = reskinned;
        plans.original = original;
        plans.report.num_candidates = plans.plans.len();
    }
    plans.report.elapsed_us = start.elapsed().as_micros();
    plans.report.cache = cache.report(true);
    // A served hit is still one rewrite call: it lands in the same total
    // latency histogram the cold path records into, which is exactly the
    // distribution the paper's "microseconds, not milliseconds" claim is
    // about.
    M_CACHE_SERVED.incr();
    record_total_us(plans.report.elapsed_us);
    Some(plans)
}

/// Estimates candidate costs, sharding across worker threads when the
/// candidate set is large. Candidates assembled from chase-created classes
/// can in rare cases fall outside the metadata catalog (e.g. a literal the
/// cost model cannot shape); those are skipped rather than failing the call.
fn rank_candidates(cm: &CostModel<'_>, candidates: Vec<Expr>) -> Vec<Plan> {
    hadad_core::extract::par_map(&candidates, PARALLEL_RANK_THRESHOLD, |expr| {
        cm.cost(expr).ok().map(|est_cost| Plan { expr: expr.clone(), est_cost })
    })
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hadad_core::expr::dsl::*;
    use hadad_core::MatrixMeta;
    use hadad_linalg::rand_gen;

    fn trace_setup() -> (Optimizer, Env) {
        let mut cat = MetaCatalog::new();
        cat.register("A", MatrixMeta::dense(30, 4));
        cat.register("B", MatrixMeta::dense(4, 30));
        let mut env = Env::new();
        env.bind("A", Matrix::Dense(rand_gen::random_dense(30, 4, 1)));
        env.bind("B", Matrix::Dense(rand_gen::random_dense(4, 30, 2)));
        (Optimizer::new(cat), env)
    }

    #[test]
    fn trace_rotation_wins_and_verifies() {
        let (opt, env) = trace_setup();
        let e = trace(mul(m("A"), m("B")));
        let ranked = opt.rewrite(&e).unwrap();
        assert!(ranked.plans.len() >= 2, "plans: {}", ranked.plans.len());
        assert_eq!(ranked.best().expr.to_string(), "trace((B A))");
        assert!(ranked.est_speedup() > 2.0);
        assert!(opt.check_equivalent(&e, &ranked.best().expr, &env, 1e-9).unwrap());
    }

    #[test]
    fn rewrite_verified_returns_checked_plan() {
        let (opt, env) = trace_setup();
        let e = trace(mul(m("A"), m("B")));
        let (_, plan, _) = opt.rewrite_verified(&e, &env, 1e-9).unwrap();
        assert_eq!(plan.expr.to_string(), "trace((B A))");
    }

    /// View-based reformulation: the gram matrix XᵀX is registered as a
    /// materialized view, so the ridge-style pipeline rewrites onto the
    /// zero-cost view leaf and is ranked strictly cheaper.
    #[test]
    fn registered_view_wins_and_verifies() {
        let mut cat = MetaCatalog::new();
        cat.register("X", MatrixMeta::dense(200, 8));
        let mut opt = Optimizer::new(cat);
        opt.register_la_view("G", mul(t(m("X")), m("X"))).unwrap();

        let e = mul(t(m("X")), m("X"));
        let ranked = opt.rewrite(&e).unwrap();
        assert_eq!(ranked.best().expr, m("G"));
        assert!(ranked.best().est_cost < ranked.original.est_cost);
        assert_eq!(ranked.est_speedup(), f64::INFINITY);

        // Execution-verified: the view is materialized from its definition
        // and the winning plan agrees with the original.
        let mut env = Env::new();
        env.bind("X", Matrix::Dense(rand_gen::random_dense(200, 8, 7)));
        let (_, plan, _) = opt.rewrite_verified(&e, &env, 1e-9).unwrap();
        assert_eq!(plan.expr, m("G"));
    }

    /// A view embedded in a larger pipeline: (XᵀX)⁻¹ rewrites to G⁻¹.
    #[test]
    fn view_lands_inside_larger_pipeline() {
        let mut cat = MetaCatalog::new();
        cat.register("X", MatrixMeta::dense(100, 6));
        let mut opt = Optimizer::new(cat);
        opt.register_la_view("G", mul(t(m("X")), m("X"))).unwrap();
        let e = inv(mul(t(m("X")), m("X")));
        let ranked = opt.rewrite(&e).unwrap();
        assert_eq!(ranked.best().expr, inv(m("G")));
        assert!(ranked.best().est_cost < ranked.original.est_cost);
    }

    /// Explicit metadata wins over the estimate, and `effective_cat` does
    /// not leak into the caller's catalog.
    #[test]
    fn view_metadata_is_estimated_or_explicit() {
        let mut cat = MetaCatalog::new();
        cat.register("A", MatrixMeta::dense(10, 10));
        let mut opt = Optimizer::new(cat);
        opt.register_la_view_with_meta("V", mul(m("A"), m("A")), MatrixMeta::sparse(10, 10, 3))
            .unwrap();
        let eff = opt.effective_cat().unwrap();
        assert_eq!(eff.get("V").unwrap().nnz, 3);
        assert!(opt.cat.get("V").is_none());
    }

    /// `Prune_prov` is on by default and must not change the best plan:
    /// the trace rotation survives pruning (its oracle bound beats the
    /// incumbent), while `PruneMode::Off` remains available and agrees.
    #[test]
    fn default_pruning_matches_off_mode() {
        let (opt, _) = trace_setup();
        let e = trace(mul(m("A"), m("B")));
        let pruned = opt.rewrite(&e).unwrap();
        let unpruned = opt.clone().with_prune(PruneMode::Off).rewrite(&e).unwrap();
        assert_eq!(unpruned.report.pruned_firings, 0);
        assert_eq!(pruned.best().expr, unpruned.best().expr);
        assert_eq!(pruned.best().est_cost, unpruned.best().est_cost);
        // Per-rule veto counts line up with the total.
        let per_rule: usize =
            pruned.report.chase_stats.rule_vetoes.iter().map(|(_, n)| n).sum();
        assert_eq!(per_rule, pruned.report.pruned_firings);
    }

    /// Anytime behaviour under an already-expired deadline: the chase stops
    /// before round one, yet `rewrite` still returns `Ok` with the original
    /// expression recoverable from the un-chased instance, flagged degraded.
    #[test]
    fn expired_deadline_degrades_to_sound_plan() {
        let (opt, env) = trace_setup();
        let opt = opt.with_deadline(Duration::ZERO);
        let e = trace(mul(m("A"), m("B")));
        let ranked = opt.rewrite(&e).unwrap();
        let degraded = ranked.report.degraded.as_ref().expect("deadline must mark degradation");
        assert_eq!(degraded.reason, DegradeReason::Deadline);
        assert_eq!(degraded.phase, RewritePhase::Chase);
        assert_eq!(ranked.report.chase_outcome, ChaseOutcome::BudgetExhausted);
        // The anytime result is never worse than the unrewritten plan.
        assert!(ranked.best().est_cost <= ranked.original.est_cost);
        let (_, plan, _) = opt.rewrite_verified(&e, &env, 1e-9).unwrap();
        assert!(plan.est_cost <= ranked.original.est_cost);
    }

    /// An ample deadline changes nothing: the full search runs and the
    /// report is not degraded.
    #[test]
    fn ample_deadline_is_transparent() {
        let (opt, _) = trace_setup();
        let opt = opt.with_deadline(Duration::from_secs(60));
        let ranked = opt.rewrite(&trace(mul(m("A"), m("B")))).unwrap();
        assert!(ranked.report.degraded.is_none());
        assert_eq!(ranked.best().expr.to_string(), "trace((B A))");
    }

    #[test]
    fn leaf_expression_survives() {
        let mut cat = MetaCatalog::new();
        cat.register("A", MatrixMeta::dense(3, 3));
        let opt = Optimizer::new(cat);
        let ranked = opt.rewrite(&m("A")).unwrap();
        assert_eq!(ranked.best().expr, m("A"));
    }
}
