//! The end-to-end rewriting facade: encode → chase under the MMC
//! catalogue → decode candidates → rank by estimated cost → (optionally)
//! execute to check semantic equivalence.
//!
//! This is the paper's §4–§7 loop specialized to pure LA inputs: the chase
//! saturates the VREM encoding of the input expression under `LAprop`, and
//! cost-ranked extraction from the saturated instance plays the role of
//! the backchase — every candidate it returns is a full reformulation
//! justified by the constraints, and the cost model picks the winner.

use std::time::Instant;

use hadad_chase::{ChaseBudget, ChaseEngine, ChaseOutcome, ChaseStats, EvalMode};
use hadad_core::{Catalogue, Encoder, Expr, Extractor, MetaCatalog, ShapeError, Vrem};
use hadad_linalg::{approx_eq, Matrix};

use crate::cost::{CostModel, FlopsCost};
use crate::eval::{eval, Env, EvalError};

/// One candidate plan: an expression equivalent to the input under the
/// catalogue, with its estimated cost.
#[derive(Debug, Clone)]
pub struct Plan {
    pub expr: Expr,
    pub est_cost: f64,
}

/// Diagnostics from one `rewrite` call, including a per-phase time
/// breakdown (encode → chase → extract → rank) and the full chase
/// statistics, so regressions show up in the right phase. Setup work —
/// original-plan costing and MMC catalogue construction — is covered only
/// by `elapsed_us`, not by any phase bucket.
#[derive(Debug, Clone)]
pub struct RewriteReport {
    pub chase_outcome: ChaseOutcome,
    pub chase_rounds: usize,
    pub num_facts: usize,
    pub num_candidates: usize,
    pub elapsed_us: u128,
    pub encode_us: u128,
    pub chase_us: u128,
    pub extract_us: u128,
    pub rank_us: u128,
    /// Per-rule firings/matches and per-round delta sizes from the chase.
    pub chase_stats: ChaseStats,
}

/// Result of `Optimizer::rewrite`: the original plan plus all candidate
/// reformulations, cheapest first.
#[derive(Debug, Clone)]
pub struct RankedPlans {
    pub original: Plan,
    /// Candidates sorted by ascending estimated cost (the original
    /// expression is among them whenever extraction can rebuild it).
    pub plans: Vec<Plan>,
    pub report: RewriteReport,
}

impl RankedPlans {
    /// The cheapest plan (falls back to the original when the chase or
    /// extraction produced nothing better).
    pub fn best(&self) -> &Plan {
        self.plans.first().unwrap_or(&self.original)
    }

    /// Estimated speedup of the best plan over the original. A zero-cost
    /// best plan (a rewrite onto an already-materialized matrix) yields
    /// `f64::INFINITY` rather than masking the win.
    pub fn est_speedup(&self) -> f64 {
        if self.best().est_cost > 0.0 {
            self.original.est_cost / self.best().est_cost
        } else if self.original.est_cost > 0.0 {
            f64::INFINITY
        } else {
            1.0
        }
    }
}

/// Rewriting failure.
#[derive(Debug)]
pub enum RewriteError {
    Shape(ShapeError),
    /// The reference expression failed to evaluate in `rewrite_verified`.
    Eval(EvalError),
    /// The root class could not be decoded (should not happen for
    /// well-formed encodings; kept explicit instead of panicking).
    NoPlan,
}

impl std::fmt::Display for RewriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RewriteError::Shape(e) => write!(f, "{e}"),
            RewriteError::Eval(e) => write!(f, "original failed to evaluate: {e}"),
            RewriteError::NoPlan => write!(f, "no plan could be extracted"),
        }
    }
}

impl std::error::Error for RewriteError {}

impl From<ShapeError> for RewriteError {
    fn from(e: ShapeError) -> Self {
        RewriteError::Shape(e)
    }
}

/// Candidate count from which plan ranking shards cost estimation across
/// worker threads.
const PARALLEL_RANK_THRESHOLD: usize = 16;

/// The optimizer facade.
pub struct Optimizer {
    pub cat: MetaCatalog,
    pub budget: ChaseBudget,
    /// Premise-matching strategy for the chase; semi-naïve by default,
    /// naive kept for differential testing and baselining.
    pub mode: EvalMode,
}

impl Optimizer {
    pub fn new(cat: MetaCatalog) -> Self {
        Optimizer {
            cat,
            // Tighter than the chase default: rewriting works expression by
            // expression, so instances are small and saturate quickly.
            budget: ChaseBudget { max_rounds: 12, max_facts: 30_000, max_nulls: 15_000 },
            mode: EvalMode::default(),
        }
    }

    pub fn with_budget(mut self, budget: ChaseBudget) -> Self {
        self.budget = budget;
        self
    }

    pub fn with_mode(mut self, mode: EvalMode) -> Self {
        self.mode = mode;
        self
    }

    /// Rewrites `e` into cost-ranked equivalent plans.
    pub fn rewrite(&self, e: &Expr) -> Result<RankedPlans, RewriteError> {
        let start = Instant::now();
        let cm = CostModel::new(&self.cat);
        let original = Plan { expr: e.clone(), est_cost: cm.cost(e)? };

        let mut vrem = Vrem::new();
        let encode_start = Instant::now();
        let encoded = Encoder::new(&mut vrem, &self.cat).encode(e)?;
        let encode_us = encode_start.elapsed().as_micros();
        let catalogue = Catalogue::standard(&mut vrem);

        let engine = ChaseEngine::new(catalogue.constraints)
            .with_budget(self.budget)
            .with_mode(self.mode);
        let mut inst = encoded.instance;
        let chase_start = Instant::now();
        let (chase_outcome, stats) = engine.chase(&mut inst);
        let chase_us = chase_start.elapsed().as_micros();

        let extract_start = Instant::now();
        let extractor = Extractor::new(&vrem, &inst, &FlopsCost);
        let mut candidates = extractor.candidates(encoded.root);
        if candidates.is_empty() {
            // Un-chased leaf-only expressions still decode via `extract`.
            candidates.extend(extractor.extract(encoded.root));
        }
        let extract_us = extract_start.elapsed().as_micros();
        if candidates.is_empty() {
            return Err(RewriteError::NoPlan);
        }

        let rank_start = Instant::now();
        let mut plans = rank_candidates(&cm, candidates);
        plans.sort_by(|a, b| {
            a.est_cost.partial_cmp(&b.est_cost).unwrap_or(std::cmp::Ordering::Equal)
        });
        let rank_us = rank_start.elapsed().as_micros();

        let report = RewriteReport {
            chase_outcome,
            chase_rounds: stats.rounds,
            num_facts: inst.num_facts(),
            num_candidates: plans.len(),
            elapsed_us: start.elapsed().as_micros(),
            encode_us,
            chase_us,
            extract_us,
            rank_us,
            chase_stats: stats,
        };
        Ok(RankedPlans { original, plans, report })
    }

    /// Execution hook: evaluates `original` and `candidate` on the linalg
    /// backend and checks element-wise agreement within `rtol`.
    pub fn check_equivalent(
        &self,
        original: &Expr,
        candidate: &Expr,
        env: &Env,
        rtol: f64,
    ) -> Result<bool, EvalError> {
        let a = eval(original, env)?;
        let b = eval(candidate, env)?;
        Ok(approx_eq(&a, &b, rtol))
    }

    /// Rewrites `e`, then executes plans (cheapest first) against `env`
    /// until one agrees with the original's value; returns that plan and
    /// the matrices. A plan that fails to evaluate (e.g. a numerically
    /// singular inverse) is skipped, mirroring the paper's stance that
    /// rewritten plans must be machine-checked before being trusted.
    pub fn rewrite_verified(
        &self,
        e: &Expr,
        env: &Env,
        rtol: f64,
    ) -> Result<(RankedPlans, Plan, Matrix), RewriteError> {
        let ranked = self.rewrite(e)?;
        let reference = eval(e, env).map_err(RewriteError::Eval)?;
        for plan in &ranked.plans {
            if let Ok(value) = eval(&plan.expr, env) {
                if approx_eq(&value, &reference, rtol) {
                    let plan = plan.clone();
                    return Ok((ranked, plan, reference));
                }
            }
        }
        let plan = ranked.original.clone();
        Ok((ranked, plan, reference))
    }
}

/// Estimates candidate costs, sharding across worker threads when the
/// candidate set is large. Candidates assembled from chase-created classes
/// can in rare cases fall outside the metadata catalog (e.g. a literal the
/// cost model cannot shape); those are skipped rather than failing the call.
fn rank_candidates(cm: &CostModel<'_>, candidates: Vec<Expr>) -> Vec<Plan> {
    hadad_core::extract::par_map(&candidates, PARALLEL_RANK_THRESHOLD, |expr| {
        cm.cost(expr).ok().map(|est_cost| Plan { expr: expr.clone(), est_cost })
    })
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hadad_core::expr::dsl::*;
    use hadad_core::MatrixMeta;
    use hadad_linalg::rand_gen;

    fn trace_setup() -> (Optimizer, Env) {
        let mut cat = MetaCatalog::new();
        cat.register("A", MatrixMeta::dense(30, 4));
        cat.register("B", MatrixMeta::dense(4, 30));
        let mut env = Env::new();
        env.bind("A", Matrix::Dense(rand_gen::random_dense(30, 4, 1)));
        env.bind("B", Matrix::Dense(rand_gen::random_dense(4, 30, 2)));
        (Optimizer::new(cat), env)
    }

    #[test]
    fn trace_rotation_wins_and_verifies() {
        let (opt, env) = trace_setup();
        let e = trace(mul(m("A"), m("B")));
        let ranked = opt.rewrite(&e).unwrap();
        assert!(ranked.plans.len() >= 2, "plans: {}", ranked.plans.len());
        assert_eq!(ranked.best().expr.to_string(), "trace((B A))");
        assert!(ranked.est_speedup() > 2.0);
        assert!(opt.check_equivalent(&e, &ranked.best().expr, &env, 1e-9).unwrap());
    }

    #[test]
    fn rewrite_verified_returns_checked_plan() {
        let (opt, env) = trace_setup();
        let e = trace(mul(m("A"), m("B")));
        let (_, plan, _) = opt.rewrite_verified(&e, &env, 1e-9).unwrap();
        assert_eq!(plan.expr.to_string(), "trace((B A))");
    }

    #[test]
    fn leaf_expression_survives() {
        let mut cat = MetaCatalog::new();
        cat.register("A", MatrixMeta::dense(3, 3));
        let opt = Optimizer::new(cat);
        let ranked = opt.rewrite(&m("A")).unwrap();
        assert_eq!(ranked.best().expr, m("A"));
    }
}
