//! Hybrid relational–LA pipelines (paper §3, §9.2): a declarative
//! relational prefix over catalog tables, a cast into a matrix, and an LA
//! suffix over that matrix.
//!
//! Both halves rewrite against materialized views:
//!
//! * the relational prefix compiles to a [`Cq`] over a vocabulary derived
//!   from the table catalog and runs through [`Pacb::rewrite`], with
//!   `Prune_prov` driven by the catalog's row-count cost
//!   ([`hadad_relational::Catalog::scan_cost`]), so preprocessing queries
//!   land on materialized table views instead of re-scanning base tables;
//! * the LA suffix goes through [`Optimizer::rewrite`], whose registered
//!   LA views contribute `V_IO`/`V_OI` constraints to the chase, so the
//!   pipeline lands on zero-cost `Mat(view)` leaves.
//!
//! Execution verifies both halves (the paper's machine-checkable
//! soundness): the rewritten prefix must produce the same cast matrix as
//! the operator pipeline, and the winning LA plan must agree with the
//! original suffix on the backend.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use hadad_chase::{
    Atom, ChaseBudget, ChaseOutcome, ChaseStats, Cq, DegradeReason, Degraded, Instance, Pacb,
    PacbOptions, PacbResult, PredId, RewritePhase, Term, Vocabulary,
};
use hadad_core::MatrixMeta;
use hadad_linalg::{approx_eq, Matrix};
use hadad_relational::{cast, ops, Catalog, Column, Table, Value};

use crate::eval::{Env, EvalError};
use crate::optimizer::{Optimizer, Plan, RankedPlans, RewriteError};
use hadad_core::Expr;

pub use crate::maintain::{MaintenanceReport, ViewChange, ViewMaintainer};

/// Hybrid-pipeline failure.
#[derive(Debug)]
pub enum HybridError {
    /// A query or view referenced a table the catalog does not hold.
    MissingTable(String),
    /// A stage referenced a column its input table does not carry.
    MissingColumn(String),
    /// An equality selection contradicts an earlier one on the same column.
    Unsatisfiable(String),
    /// A table view's materialized arity differs from its definition's.
    ViewArity {
        /// The offending view.
        view: String,
        /// Column count of the stored materialization.
        expected: usize,
        /// Column count the definition produces.
        got: usize,
    },
    /// A view registration would shadow an existing table or view.
    DuplicateName(String),
    /// Registered views whose base tables carry unmaintained updates — run
    /// maintenance before rewriting, or the rewriter would read stale
    /// materializations.
    StaleViews(Vec<String>),
    /// A view reached the maintainer without being tracked first.
    UntrackedView(String),
    /// Tracking a view over a catalog with unmaintained updates (the
    /// cached intermediates would double-count them); maintain first.
    PendingUpdates(Vec<String>),
    /// A previous maintenance pass failed partway, leaving view state
    /// unknown — rebuild the views before maintaining or rewriting again.
    MaintenancePoisoned,
    /// A delta-maintenance step failed (schema drift, retraction of a
    /// missing row, ...).
    Ivm(hadad_relational::IvmError),
    /// An executable relational operator was handed a column its input
    /// table does not carry (schema drift between planning and execution).
    Ops(hadad_relational::OpsError),
    /// An `error`-armed failpoint fired (fault-injection runs only).
    Fault {
        /// The failpoint that fired.
        site: &'static str,
    },
    /// A view registration was refused by static analysis: its `V_IO`/
    /// `V_OI` constraint pair is unsafe or closes a dependency cycle
    /// through an unguarded existential (a chase-termination risk).
    RejectedView(hadad_core::RuleRejection),
    /// The LA phase failed to rewrite the suffix.
    Rewrite(RewriteError),
    /// Evaluating a cast or an LA plan failed.
    Eval(EvalError),
}

impl std::fmt::Display for HybridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HybridError::MissingTable(t) => write!(f, "unknown table {t}"),
            HybridError::MissingColumn(c) => write!(f, "unknown column {c}"),
            HybridError::Unsatisfiable(c) => {
                write!(f, "contradictory equality selections on {c}")
            }
            HybridError::ViewArity { view, expected, got } => {
                write!(f, "view {view}: definition has {expected} columns, table has {got}")
            }
            HybridError::DuplicateName(n) => {
                write!(f, "name {n} is already registered in the catalog")
            }
            HybridError::StaleViews(vs) => {
                write!(f, "views stale under pending updates: {}", vs.join(", "))
            }
            HybridError::UntrackedView(v) => write!(f, "view {v} is not tracked"),
            HybridError::PendingUpdates(ts) => {
                write!(f, "catalog holds unmaintained updates for: {}", ts.join(", "))
            }
            HybridError::MaintenancePoisoned => {
                write!(
                    f,
                    "a failed maintenance pass left view state unknown; rebuild the views"
                )
            }
            HybridError::Ivm(e) => write!(f, "{e}"),
            HybridError::Ops(e) => write!(f, "{e}"),
            HybridError::Fault { site } => write!(f, "injected fault at failpoint `{site}`"),
            HybridError::RejectedView(r) => write!(f, "{r}"),
            HybridError::Rewrite(e) => write!(f, "{e}"),
            HybridError::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for HybridError {}

impl From<hadad_relational::IvmError> for HybridError {
    fn from(e: hadad_relational::IvmError) -> Self {
        HybridError::Ivm(e)
    }
}

impl From<hadad_relational::OpsError> for HybridError {
    fn from(e: hadad_relational::OpsError) -> Self {
        HybridError::Ops(e)
    }
}

impl From<hadad_failpoint::Injected> for HybridError {
    fn from(e: hadad_failpoint::Injected) -> Self {
        HybridError::Fault { site: e.site }
    }
}

impl From<RewriteError> for HybridError {
    fn from(e: RewriteError) -> Self {
        HybridError::Rewrite(e)
    }
}

impl From<EvalError> for HybridError {
    fn from(e: EvalError) -> Self {
        HybridError::Eval(e)
    }
}

/// One declarative relational stage. These mirror the executable operators
/// in `hadad_relational::ops`, restricted to the CQ-expressible fragment so
/// the prefix can be reformulated by PACB.
#[derive(Debug, Clone)]
pub enum RelOp {
    /// Equality selection on an integer column (the column position becomes
    /// a constant in the compiled CQ).
    SelectEq {
        /// Column the selection filters on.
        column: String,
        /// The integer constant selected.
        value: i64,
    },
    /// Equality selection on a string column.
    SelectStrEq {
        /// Column the selection filters on.
        column: String,
        /// The string constant selected.
        value: String,
    },
    /// Hash equi-join with another catalog table; right-side columns that
    /// collide are prefixed `right.` (repeatedly, until unique), exactly as
    /// `ops::hash_join` does.
    HashJoin {
        /// Right-side catalog table.
        table: String,
        /// Join key on the accumulated left side.
        left_key: String,
        /// Join key on the right table.
        right_key: String,
    },
    /// Projection to the named columns, in order.
    Project {
        /// Output columns, in order.
        columns: Vec<String>,
    },
}

/// A relational query: a scan of a catalog table followed by stages.
#[derive(Debug, Clone)]
pub struct RelQuery {
    /// The catalog table the scan starts from.
    pub table: String,
    /// The declarative stages applied to the scan, in order.
    pub ops: Vec<RelOp>,
}

impl RelQuery {
    /// A bare scan of `table` with no stages yet.
    pub fn scan(table: impl Into<String>) -> Self {
        RelQuery { table: table.into(), ops: Vec::new() }
    }

    /// Appends an integer equality selection.
    pub fn select_eq(mut self, column: impl Into<String>, value: i64) -> Self {
        self.ops.push(RelOp::SelectEq { column: column.into(), value });
        self
    }

    /// Appends a string equality selection.
    pub fn select_str_eq(
        mut self,
        column: impl Into<String>,
        value: impl Into<String>,
    ) -> Self {
        self.ops.push(RelOp::SelectStrEq { column: column.into(), value: value.into() });
        self
    }

    /// Appends a hash equi-join with `table` on `left_key = right_key`.
    pub fn join(
        mut self,
        table: impl Into<String>,
        left_key: impl Into<String>,
        right_key: impl Into<String>,
    ) -> Self {
        self.ops.push(RelOp::HashJoin {
            table: table.into(),
            left_key: left_key.into(),
            right_key: right_key.into(),
        });
        self
    }

    /// Appends a projection to `columns`, in order.
    pub fn project(mut self, columns: &[&str]) -> Self {
        self.ops.push(RelOp::Project {
            columns: columns.iter().map(std::string::ToString::to_string).collect(),
        });
        self
    }

    /// Runs the query with the executable operators from
    /// `hadad_relational::ops`, stage by stage.
    pub fn execute(&self, catalog: &Catalog) -> Result<Table, HybridError> {
        let mut t = catalog
            .get(&self.table)
            .ok_or_else(|| HybridError::MissingTable(self.table.clone()))?
            .clone();
        for op in &self.ops {
            t = self.apply_op(t, op, catalog)?;
        }
        Ok(t)
    }

    /// One executable pipeline stage — shared by [`RelQuery::execute`] and
    /// the view maintainer (which replays stages to cache join inputs).
    pub(crate) fn apply_op(
        &self,
        t: Table,
        op: &RelOp,
        catalog: &Catalog,
    ) -> Result<Table, HybridError> {
        Ok(match op {
            RelOp::SelectEq { column, value } => {
                require_column(&t, column)?;
                ops::select(&t, |tab, r| tab.value(r, column).as_i64() == Some(*value))
            }
            RelOp::SelectStrEq { column, value } => {
                require_column(&t, column)?;
                ops::select(&t, |tab, r| match tab.value(r, column) {
                    Value::Str(s) => s == *value,
                    _ => false,
                })
            }
            RelOp::HashJoin { table, left_key, right_key } => {
                let right = catalog
                    .get(table)
                    .ok_or_else(|| HybridError::MissingTable(table.clone()))?;
                require_column(&t, left_key)?;
                require_column(right, right_key)?;
                ops::hash_join(&t, left_key, right, right_key)?
            }
            RelOp::Project { columns } => {
                for c in columns {
                    require_column(&t, c)?;
                }
                let refs: Vec<&str> = columns.iter().map(std::string::String::as_str).collect();
                ops::project(&t, &refs)?
            }
        })
    }

    /// Compiles the query to a CQ over the table vocabulary. Selections
    /// become constants (possibly in the head — rewritings preserve them),
    /// joins share variables across atoms, and the projection picks the
    /// head terms. The returned column names mirror the executable
    /// pipeline's output schema exactly, including `right.` prefixing.
    pub fn compile(
        &self,
        catalog: &Catalog,
        tv: &mut TableVocab,
    ) -> Result<CompiledQuery, HybridError> {
        let mut next_var = 0u32;
        let fresh = |n: &mut u32| {
            let v = *n;
            *n += 1;
            Term::Var(v)
        };

        let base = catalog
            .get(&self.table)
            .ok_or_else(|| HybridError::MissingTable(self.table.clone()))?;
        let mut cols: Vec<(String, Term)> =
            base.column_names().iter().map(|n| (n.clone(), fresh(&mut next_var))).collect();
        let mut atoms =
            vec![Atom::new(tv.pred(&self.table)?, cols.iter().map(|(_, t)| *t).collect())];

        let select_const = |column: &str,
                            sym: Term,
                            cols: &mut Vec<(String, Term)>,
                            atoms: &mut Vec<Atom>|
         -> Result<(), HybridError> {
            let cur = cols
                .iter()
                .find(|(n, _)| n == column)
                .map(|(_, t)| *t)
                .ok_or_else(|| HybridError::MissingColumn(column.to_owned()))?;
            match cur {
                Term::Var(v) => {
                    let subst = |t: &mut Term| {
                        if *t == Term::Var(v) {
                            *t = sym;
                        }
                    };
                    for a in atoms.iter_mut() {
                        a.args.iter_mut().for_each(&subst);
                    }
                    for (_, t) in cols.iter_mut() {
                        subst(t);
                    }
                    Ok(())
                }
                c if c == sym => Ok(()),
                _ => Err(HybridError::Unsatisfiable(column.to_owned())),
            }
        };

        for op in &self.ops {
            match op {
                RelOp::SelectEq { column, value } => {
                    let sym = Term::Const(tv.vocab.int(*value));
                    select_const(column, sym, &mut cols, &mut atoms)?;
                }
                RelOp::SelectStrEq { column, value } => {
                    let sym = Term::Const(tv.vocab.constant(intern_str_const(value)));
                    select_const(column, sym, &mut cols, &mut atoms)?;
                }
                RelOp::HashJoin { table, left_key, right_key } => {
                    let right = catalog
                        .get(table)
                        .ok_or_else(|| HybridError::MissingTable(table.clone()))?;
                    let key_term = cols
                        .iter()
                        .find(|(n, _)| n == left_key)
                        .map(|(_, t)| *t)
                        .ok_or_else(|| HybridError::MissingColumn(left_key.clone()))?;
                    if right.column_index(right_key).is_none() {
                        return Err(HybridError::MissingColumn(right_key.clone()));
                    }
                    let mut args = Vec::with_capacity(right.num_cols());
                    let mut new_cols: Vec<(String, Term)> = Vec::new();
                    for n in right.column_names() {
                        if n == right_key {
                            args.push(key_term);
                        } else {
                            let t = fresh(&mut next_var);
                            args.push(t);
                            // Mirror ops::hash_join's collision prefixing.
                            let mut out_name = n.clone();
                            while cols.iter().chain(&new_cols).any(|(c, _)| *c == out_name) {
                                out_name = format!("right.{out_name}");
                            }
                            new_cols.push((out_name, t));
                        }
                    }
                    atoms.push(Atom::new(tv.pred(table)?, args));
                    cols.extend(new_cols);
                }
                RelOp::Project { columns } => {
                    let mut picked = Vec::with_capacity(columns.len());
                    for c in columns {
                        let t = cols
                            .iter()
                            .find(|(n, _)| n == c)
                            .cloned()
                            .ok_or_else(|| HybridError::MissingColumn(c.clone()))?;
                        picked.push(t);
                    }
                    cols = picked;
                }
            }
        }

        let head: Vec<Term> = cols.iter().map(|(_, t)| *t).collect();
        let columns: Vec<String> = cols.into_iter().map(|(n, _)| n).collect();
        Ok(CompiledQuery { cq: Cq::new(head, atoms), columns })
    }
}

fn require_column(t: &Table, name: &str) -> Result<(), HybridError> {
    if t.column_index(name).is_none() {
        return Err(HybridError::MissingColumn(name.to_owned()));
    }
    Ok(())
}

/// A compiled relational prefix: the CQ plus its output column names (head
/// order).
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    /// The conjunctive query over table predicates.
    pub cq: Cq,
    /// Output column names, in head order.
    pub columns: Vec<String>,
}

/// Vocabulary derived from the table catalog: one predicate per table
/// (arity = column count), with both directions of the mapping.
#[derive(Debug, Clone)]
pub struct TableVocab {
    /// The chase vocabulary the table predicates are interned in.
    pub vocab: Vocabulary,
    by_name: HashMap<String, PredId>,
    by_pred: HashMap<PredId, String>,
}

impl TableVocab {
    /// Interns one predicate per catalog table (arity = column count).
    pub fn from_catalog(catalog: &Catalog) -> Self {
        let mut tv = TableVocab {
            vocab: Vocabulary::new(),
            by_name: HashMap::new(),
            by_pred: HashMap::new(),
        };
        for name in catalog.names() {
            let arity = catalog.get(name).map_or(0, hadad_relational::Table::num_cols);
            let pred = tv.vocab.predicate(name, arity);
            tv.by_name.insert(name.to_owned(), pred);
            tv.by_pred.insert(pred, name.to_owned());
        }
        tv
    }

    /// The predicate interned for `table`.
    pub fn pred(&self, table: &str) -> Result<PredId, HybridError> {
        self.by_name.get(table).copied().ok_or_else(|| HybridError::MissingTable(table.into()))
    }

    /// Reverse lookup: the table `pred` was interned for.
    pub fn table_of(&self, pred: PredId) -> Option<&str> {
        self.by_pred.get(&pred).map(std::string::String::as_str)
    }
}

/// Interned rendering of a *string* constant: wrapped in quotes so the
/// integer 7 and the string "7" intern to different symbols — otherwise a
/// rewriting's selection semantics could diverge from the executable
/// operators (which never equate `Int(7)` with `Str("7")`).
fn intern_str_const(s: &str) -> String {
    format!("\"{s}\"")
}

/// Inner value of a quote-wrapped string constant.
fn unquote(s: &str) -> Option<&str> {
    s.strip_prefix('"').and_then(|rest| rest.strip_suffix('"'))
}

/// `true` when a cell matches an interned CQ constant, mirroring the
/// executable operators exactly: quoted constants match `Str` cells only,
/// numeric constants match numerically (`Int 7` and `Float 7.0`, never
/// `Str("7")`), and bare symbolic constants match `Str` cells verbatim.
fn const_matches(cell: &Value, s: &str) -> bool {
    if let Some(inner) = unquote(s) {
        return matches!(cell, Value::Str(v) if v == inner);
    }
    if let Ok(p) = s.parse::<f64>() {
        return cell.as_f64() == Some(p);
    }
    matches!(cell, Value::Str(v) if v == s)
}

/// Numeric-tolerant value equality (Int 7 joins Float 7.0).
fn value_matches(a: &Value, b: &Value) -> bool {
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => x == y,
        _ => a == b,
    }
}

/// Canonical hash key for [`value_matches`]-equality: numerically equal
/// values share a key.
fn value_key(v: &Value) -> String {
    match v.as_f64() {
        Some(f) => {
            let f = if f == 0.0 { 0.0 } else { f }; // -0.0 == 0.0
            format!("n{}", f.to_bits())
        }
        None => format!("s{v}"),
    }
}

/// Evaluates a CQ against the catalog's tables under *bag* semantics,
/// mirroring the executable operator pipeline (`ops::project` does not
/// deduplicate, so neither may the rewriting's evaluation — otherwise a
/// rewritten prefix would silently drop duplicate tuples from the cast).
/// Joins probe a hash index on the first already-bound variable position;
/// constant positions filter each table once per atom. Used to execute
/// PACB rewritings, whose bodies range over materialized view tables.
pub fn eval_cq(
    q: &Cq,
    columns: &[String],
    catalog: &Catalog,
    tv: &TableVocab,
) -> Result<Table, HybridError> {
    let mut bindings: Vec<HashMap<u32, Value>> = vec![HashMap::new()];
    for atom in &q.body {
        let name = tv
            .table_of(atom.pred)
            .ok_or_else(|| HybridError::MissingTable(format!("pred#{}", atom.pred.0)))?;
        let t = catalog.get(name).ok_or_else(|| HybridError::MissingTable(name.into()))?;

        // Rows surviving the constant positions, computed once per atom.
        let consts: Vec<(usize, &str)> = atom
            .args
            .iter()
            .enumerate()
            .filter_map(|(i, term)| term.as_const().map(|c| (i, tv.vocab.const_name(c))))
            .collect();
        let rows_ok: Vec<usize> = (0..t.num_rows())
            .filter(|&r| {
                consts.iter().all(|(i, s)| const_matches(&t.column_at(*i).value(r), s))
            })
            .collect();

        // Pivot: the first argument whose variable is already bound (every
        // binding at this stage binds the same variable set), probed
        // through a hash index instead of scanning all rows per binding.
        let pivot = bindings.first().and_then(|b| {
            atom.args.iter().enumerate().find_map(|(i, term)| match term {
                Term::Var(v) if b.contains_key(v) => Some((i, *v)),
                _ => None,
            })
        });
        let index: Option<HashMap<String, Vec<usize>>> = pivot.map(|(i, _)| {
            let mut idx: HashMap<String, Vec<usize>> = HashMap::new();
            for &r in &rows_ok {
                idx.entry(value_key(&t.column_at(i).value(r))).or_default().push(r);
            }
            idx
        });

        let empty: Vec<usize> = Vec::new();
        let mut next: Vec<HashMap<u32, Value>> = Vec::new();
        for b in &bindings {
            let candidates: &[usize] = match (&pivot, &index) {
                (Some((_, v)), Some(idx)) => {
                    idx.get(&value_key(&b[v])).map_or(&empty[..], |r| r.as_slice())
                }
                _ => &rows_ok,
            };
            'row: for &r in candidates {
                let mut ext = b.clone();
                for (i, term) in atom.args.iter().enumerate() {
                    if let Term::Var(v) = term {
                        let cell = t.column_at(i).value(r);
                        match ext.get(v) {
                            Some(bound) => {
                                if !value_matches(bound, &cell) {
                                    continue 'row;
                                }
                            }
                            None => {
                                ext.insert(*v, cell);
                            }
                        }
                    }
                }
                next.push(ext);
            }
        }
        bindings = next;
    }

    // Head projection (bag semantics).
    let rows: Vec<Vec<Value>> = bindings
        .iter()
        .map(|b| {
            q.head
                .iter()
                .map(|t| match t {
                    Term::Var(v) => b.get(v).cloned().expect("safe head variable is bound"),
                    Term::Const(c) => decode_const(tv.vocab.const_name(*c)),
                })
                .collect()
        })
        .collect();

    // Column-major assembly: integer columns stay Int, numeric mixes widen
    // to Float, anything with strings renders as Str.
    let mut table = Vec::with_capacity(columns.len());
    for (i, name) in columns.iter().enumerate() {
        let cells: Vec<&Value> = rows.iter().map(|r| &r[i]).collect();
        let col = if cells.iter().all(|v| matches!(v, Value::Int(_))) {
            Column::Int(cells.iter().map(|v| v.as_i64().unwrap()).collect())
        } else if cells.iter().all(|v| v.as_f64().is_some()) {
            Column::Float(cells.iter().map(|v| v.as_f64().unwrap()).collect())
        } else {
            Column::Str(cells.iter().map(std::string::ToString::to_string).collect())
        };
        table.push((name.as_str(), col));
    }
    Ok(Table::new(table))
}

fn decode_const(s: &str) -> Value {
    if let Some(inner) = unquote(s) {
        Value::Str(inner.to_owned())
    } else if let Ok(v) = s.parse::<i64>() {
        Value::Int(v)
    } else if let Ok(v) = s.parse::<f64>() {
        Value::Float(v)
    } else {
        Value::Str(s.to_owned())
    }
}

/// How the relational prefix's output becomes a matrix (paper §3).
#[derive(Debug, Clone)]
pub enum CastKind {
    /// One row per tuple, one column per named numeric column.
    Dense {
        /// Numeric columns that become the matrix columns, in order.
        columns: Vec<String>,
    },
    /// Ultra-sparse `rows x cols` matrix from (row-id, col-id, value)
    /// columns — the tweet/MIMIC filter-level matrix construction.
    Sparse {
        /// Column holding the 0-based row id of each entry.
        row: String,
        /// Column holding the 0-based column id of each entry.
        col: String,
        /// Column holding the numeric value of each entry.
        val: String,
        /// Row count of the cast matrix.
        rows: usize,
        /// Column count of the cast matrix.
        cols: usize,
    },
}

/// A full hybrid pipeline: relational prefix → cast → LA suffix.
#[derive(Debug, Clone)]
pub struct HybridPipeline {
    /// The relational prefix producing the tuples to cast.
    pub prefix: RelQuery,
    /// Sorted ascending by this integer key before a dense cast (relation →
    /// matrix casts need a defined order; sparse casts carry their own row
    /// ids). Applied identically to original and rewritten prefixes, so
    /// verification compares like with like.
    pub sort_key: Option<String>,
    /// How the prefix's output becomes a matrix.
    pub cast: CastKind,
    /// Name the cast matrix is bound under for the LA suffix.
    pub cast_name: String,
    /// The LA expression evaluated over the cast matrix.
    pub suffix: Expr,
}

/// A materialized relational view: registered both as a catalog table (its
/// materialization) and as a PACB view (its definition).
#[derive(Debug, Clone)]
pub struct TableView {
    /// Name the materialization is stored under in the catalog.
    pub name: String,
    /// The defining query over base tables.
    pub def: RelQuery,
}

/// A cast whose matrix metadata is kept fresh across base-table updates:
/// after each maintenance pass the source view (or base table) is re-cast
/// and its [`MatrixMeta`] — shape, nnz, MNC histograms — re-stamped into
/// the LA optimizer's catalog, so the suffix cost oracle prices
/// post-update instances correctly.
#[derive(Debug, Clone)]
pub struct MaintainedCast {
    /// Name the matrix metadata is stamped under in the LA catalog.
    pub cast_name: String,
    /// Catalog table (usually a maintained view) the cast reads.
    pub view: String,
    /// Sort applied before a dense cast, as in [`HybridPipeline`].
    pub sort_key: Option<String>,
    /// How the source rows become the maintained matrix.
    pub cast: CastKind,
}

/// Timings and outcomes of the relational (PACB) phase.
#[derive(Debug)]
pub struct RelPhase {
    /// The compiled prefix (CQ + output columns).
    pub compiled: CompiledQuery,
    /// Outcome of the PACB reformulation over the registered views.
    pub pacb: PacbResult,
    /// Row-count cost of the original prefix (base-table scans).
    pub cost_original: f64,
    /// Cost of the chosen rewriting, when one beat the original.
    pub cost_best: Option<f64>,
    /// The chosen rewriting over view predicates, when used.
    pub rewriting: Option<Cq>,
    /// Wall-time of the PACB phase, microseconds.
    pub pacb_us: u128,
    /// Wall-time of executing the chosen prefix, microseconds.
    pub exec_us: u128,
    /// Row count of the prefix's output.
    pub rows_out: usize,
}

/// Result of a hybrid rewrite: the relational phase, the cast, and the LA
/// phase, with the machine-checked verification verdict when requested.
#[derive(Debug)]
pub struct HybridResult {
    /// The relational (PACB) phase.
    pub rel: RelPhase,
    /// Output of the (possibly rewritten) relational prefix.
    pub table: Table,
    /// Metadata the cast matrix was catalogued under for the LA suffix:
    /// real shape, nnz, and MNC histograms from the materialization — a
    /// sparse cast must surface its true density here (not a dense
    /// default), or the suffix's cost oracle would misprice every plan
    /// touching it.
    pub cast_meta: MatrixMeta,
    /// Wall-time of the relation-to-matrix cast, microseconds.
    pub cast_us: u128,
    /// The ranked LA plans for the suffix.
    pub ranked: RankedPlans,
    /// The winning LA plan (execution-verified in the verified path).
    pub best: Plan,
    /// `Some(true)` when both halves verified by execution: the rewritten
    /// prefix cast to the same matrix, and the best-ranked LA plan agreed
    /// with the original suffix. `None` when verification was not run.
    pub verified: Option<bool>,
    /// `Some` when any phase gave up completeness: a poisoned maintainer
    /// (the run proceeded without materialized table views), a chase or
    /// backchase budget/deadline, or a contained panic in the LA phase.
    /// The result is still sound — degraded runs just may miss cheaper
    /// rewritings. The first (most upstream) degradation wins.
    pub degraded: Option<Degraded>,
    /// End-to-end wall-time of the hybrid rewrite, microseconds.
    pub elapsed_us: u128,
}

/// The hybrid facade: a table catalog + table views on the relational side,
/// an [`Optimizer`] (with its LA views) on the LA side, and a
/// [`ViewMaintainer`] keeping the materializations consistent under
/// base-table updates.
pub struct HybridOptimizer {
    /// The relational side: base tables plus materialized views.
    pub catalog: Catalog,
    /// The LA side: rewriter, cost oracle, and LA views.
    pub optimizer: Optimizer,
    /// Budget applied to the relational (PACB) chase phases.
    pub budget: ChaseBudget,
    table_views: Vec<TableView>,
    maintainer: ViewMaintainer,
    maintained_casts: Vec<MaintainedCast>,
    /// Published read snapshot, lazily allocated by [`HybridOptimizer::reader`].
    /// `None` until a reader exists — snapshot clones are only paid for
    /// once someone reads concurrently.
    shared: Option<Arc<Mutex<Arc<CatalogSnapshot>>>>,
}

impl HybridOptimizer {
    /// A hybrid optimizer over `catalog` and `optimizer`, with no views
    /// and a default chase budget.
    pub fn new(catalog: Catalog, optimizer: Optimizer) -> Self {
        HybridOptimizer {
            catalog,
            optimizer,
            budget: ChaseBudget::default(),
            table_views: Vec::new(),
            maintainer: ViewMaintainer::new(),
            maintained_casts: Vec::new(),
            shared: None,
        }
    }

    /// Selects the execution backend for the LA suffix: both the kernels
    /// the suffix runs on and the calibration constants its plans are
    /// ranked under (the inner [`Optimizer`] is what the hybrid path
    /// clones for suffix rewriting).
    pub fn with_backend(mut self, backend: hadad_linalg::BackendKind) -> Self {
        self.optimizer = self.optimizer.with_backend(backend);
        self
    }

    /// Materializes `def` over the current catalog and registers the result
    /// as a table (under `name`), a PACB view, and a maintained view.
    /// Registering over an existing table or view name is an error — a
    /// silent overwrite would leave the displaced table's dependents
    /// reading a different relation. Pending catalog updates are
    /// maintained first, so the new materialization and the maintainer's
    /// caches agree on the base-table state.
    pub fn register_table_view(
        &mut self,
        name: impl Into<String>,
        def: RelQuery,
    ) -> Result<(), HybridError> {
        let name = name.into();
        if self.catalog.get(&name).is_some() {
            return Err(HybridError::DuplicateName(name));
        }
        self.analyze_table_view(&name, &def)?;
        self.maintain_views()?;
        let table = def.execute(&self.catalog)?;
        self.catalog.register(&name, table);
        let view = TableView { name, def };
        self.maintainer.track(&self.catalog, &view)?;
        self.table_views.push(view);
        self.publish();
        Ok(())
    }

    /// Static gate for a candidate table view: compiles the definition on
    /// a scratch vocabulary and analyzes the `V_IO`/`V_OI` pair PACB will
    /// chase with. The pair is analyzed in isolation — cross-view cycles
    /// exist for any two projecting views over a shared table and the
    /// restricted chase saturates through them, so only a cycle the view
    /// closes *by itself* (or an unsafe definition) is a rejection.
    fn analyze_table_view(&self, name: &str, def: &RelQuery) -> Result<(), HybridError> {
        let mut tv = TableVocab::from_catalog(&self.catalog);
        let compiled = def.compile(&self.catalog, &mut tv)?;
        let head_pred = tv.vocab.predicate(name, compiled.columns.len());
        let view = hadad_chase::View::new(name, head_pred, compiled.cq);
        let pair: Vec<hadad_chase::Constraint> =
            vec![view.io_constraint().into(), view.oi_constraint().into()];
        let report = hadad_core::analyze::Analyzer::new(&pair)
            .with_vocab(&tv.vocab)
            .without_subsumption()
            .report();
        match report.rejection() {
            Some(r) => Err(HybridError::RejectedView(r)),
            None => Ok(()),
        }
    }

    /// Registers a materialized LA view on the suffix optimizer. Refused
    /// (as [`RewriteError::Rejected`]) if the view's constraints fail
    /// static analysis.
    pub fn register_la_view(
        &mut self,
        name: impl Into<String>,
        def: Expr,
    ) -> Result<(), HybridError> {
        self.optimizer.register_la_view(name, def)?;
        self.publish();
        Ok(())
    }

    /// The registered table views, in registration order.
    pub fn table_views(&self) -> &[TableView] {
        &self.table_views
    }

    /// Registers a cast whose matrix metadata tracks the underlying view
    /// across updates, and stamps it now. The cast name must be fresh in
    /// the LA catalog — re-stamping over an existing input matrix (or a
    /// previously registered cast) would silently repoint every plan that
    /// reads it at the cast's metadata.
    pub fn register_maintained_cast(
        &mut self,
        cast: MaintainedCast,
    ) -> Result<(), HybridError> {
        if self.optimizer.cat.get(&cast.cast_name).is_some()
            || self.maintained_casts.iter().any(|c| c.cast_name == cast.cast_name)
        {
            return Err(HybridError::DuplicateName(cast.cast_name));
        }
        self.restamp_cast(&cast)?;
        self.maintained_casts.push(cast);
        self.publish();
        Ok(())
    }

    /// The registered maintained casts, in registration order.
    pub fn maintained_casts(&self) -> &[MaintainedCast] {
        &self.maintained_casts
    }

    /// Inserts rows into a base table and immediately delta-maintains
    /// every affected view and maintained cast.
    pub fn insert_rows(
        &mut self,
        table: &str,
        rows: Vec<Vec<Value>>,
    ) -> Result<MaintenanceReport, HybridError> {
        self.catalog.insert_rows(table, rows)?;
        self.maintain_views()
    }

    /// Deletes rows from a base table (counting semantics — each listed
    /// row retracts one copy) and immediately delta-maintains every
    /// affected view and maintained cast.
    pub fn delete_rows(
        &mut self,
        table: &str,
        rows: Vec<Vec<Value>>,
    ) -> Result<MaintenanceReport, HybridError> {
        self.catalog.delete_rows(table, rows)?;
        self.maintain_views()
    }

    /// Drains the catalog's update log, delta-maintains every registered
    /// table view, and re-stamps the matrix metadata of maintained casts
    /// whose source changed. Called automatically by the mutation facade;
    /// call it explicitly after batching raw `catalog.insert_rows` /
    /// `catalog.delete_rows` mutations.
    pub fn maintain_views(&mut self) -> Result<MaintenanceReport, HybridError> {
        if self.maintainer.is_poisoned() {
            return Err(HybridError::MaintenancePoisoned);
        }
        if self.catalog.pending_updates().is_empty() {
            return Ok(MaintenanceReport {
                epoch: self.catalog.epoch(),
                ..MaintenanceReport::default()
            });
        }
        let mut dirty: HashSet<String> =
            self.catalog.pending_updates().iter().map(|e| e.table.clone()).collect();
        let mut report = self.maintainer.maintain(&mut self.catalog, &self.table_views)?;
        dirty.extend(report.changes.iter().map(|c| c.view.clone()));
        static RESTAMP_US: hadad_obs::LazyHistogram =
            hadad_obs::LazyHistogram::new("maintain.restamp_us");
        let _restamp_span = hadad_obs::span("maintain.restamp");
        let restamp_start = Instant::now();
        for cast in &self.maintained_casts {
            if dirty.contains(&cast.view) {
                if let Err(e) = restamp_cast_into(&self.catalog, &mut self.optimizer, cast) {
                    // The log is already drained, so a failed re-stamp must
                    // not silently clear the staleness signal: poison the
                    // maintainer and require a rebuild, exactly as for a
                    // failed propagation pass.
                    self.maintainer.poison();
                    return Err(e);
                }
            }
        }
        report.restamp_us = restamp_start.elapsed().as_micros();
        RESTAMP_US.record(u64::try_from(report.restamp_us).unwrap_or(u64::MAX));
        drop(_restamp_span);
        self.publish();
        Ok(report)
    }

    fn restamp_cast(&mut self, cast: &MaintainedCast) -> Result<(), HybridError> {
        restamp_cast_into(&self.catalog, &mut self.optimizer, cast)
    }

    /// Tables carrying unmaintained state: pending-update base tables plus
    /// every view they reach (directly or through another dirty view). A
    /// poisoned maintainer dirties every view — a failed pass leaves their
    /// contents unknown.
    fn dirty_names(&self) -> HashSet<&str> {
        let mut dirty: HashSet<&str> =
            self.catalog.pending_updates().iter().map(|e| e.table.as_str()).collect();
        for v in &self.table_views {
            let hit = self.maintainer.is_poisoned()
                || dirty.contains(v.def.table.as_str())
                || v.def.ops.iter().any(
                    |op| matches!(op, RelOp::HashJoin { table, .. } if dirty.contains(table.as_str())),
                );
            if hit {
                dirty.insert(v.name.as_str());
            }
        }
        dirty
    }

    /// Views whose base tables (direct, or through another stale view)
    /// carry unmaintained updates, or whose maintainer is poisoned.
    pub fn stale_views(&self) -> Vec<&str> {
        let dirty = self.dirty_names();
        self.table_views
            .iter()
            .filter(|v| dirty.contains(v.name.as_str()))
            .map(|v| v.name.as_str())
            .collect()
    }

    /// Stale materializations a rewrite must not read: stale views plus
    /// maintained casts whose source table (a view *or* a base table) is
    /// dirty — the LA catalog's stamped metadata no longer matches it.
    fn stale_materializations(&self) -> Vec<String> {
        let dirty = self.dirty_names();
        let mut stale: Vec<String> = self
            .table_views
            .iter()
            .filter(|v| dirty.contains(v.name.as_str()))
            .map(|v| v.name.clone())
            .collect();
        let poisoned = self.maintainer.is_poisoned();
        stale.extend(
            self.maintained_casts
                .iter()
                .filter(|c| poisoned || dirty.contains(c.view.as_str()))
                .map(|c| format!("cast {}", c.cast_name)),
        );
        stale
    }

    /// Recovery from a failed maintenance pass (or any state drift): drops
    /// the pending log, re-materializes every view from the current base
    /// tables in registration order, re-tracks them on a fresh maintainer,
    /// and re-stamps every maintained cast.
    pub fn rebuild_views(&mut self) -> Result<(), HybridError> {
        self.catalog.take_updates();
        self.maintainer = ViewMaintainer::new();
        let result = self.rebuild_inner();
        if result.is_err() {
            // A partial rebuild is as unknown as a partial maintenance
            // pass — keep refusing until a rebuild fully succeeds.
            self.maintainer.poison();
        } else {
            self.publish();
        }
        result
    }

    fn rebuild_inner(&mut self) -> Result<(), HybridError> {
        for v in &self.table_views {
            let table = v.def.execute(&self.catalog)?;
            self.catalog.register(&v.name, table);
            self.maintainer.track(&self.catalog, v)?;
        }
        for cast in &self.maintained_casts {
            restamp_cast_into(&self.catalog, &mut self.optimizer, cast)?;
        }
        Ok(())
    }

    /// Captures the current rewriting state as an owned, immutable
    /// [`CatalogSnapshot`]. Refused while the state is not committable: a
    /// poisoned maintainer or stale materializations would bake unknown
    /// or outdated view contents into every read served from it.
    pub fn snapshot(&self) -> Result<CatalogSnapshot, HybridError> {
        if self.maintainer.is_poisoned() {
            return Err(HybridError::MaintenancePoisoned);
        }
        let stale = self.stale_materializations();
        if !stale.is_empty() {
            return Err(HybridError::StaleViews(stale));
        }
        Ok(self.make_snapshot())
    }

    /// A [`SnapshotReader`] tracking this optimizer's latest published
    /// snapshot. The first call allocates the shared slot (snapshot clones
    /// are only paid for once a concurrent reader exists); every call
    /// republishes the current state first, and is refused under the same
    /// conditions as [`HybridOptimizer::snapshot`]. Clone the returned
    /// handle freely across threads — the writer's later clean commits
    /// (registrations, maintenance passes, rebuilds) show up in readers
    /// automatically.
    pub fn reader(&mut self) -> Result<SnapshotReader, HybridError> {
        if self.maintainer.is_poisoned() {
            return Err(HybridError::MaintenancePoisoned);
        }
        let stale = self.stale_materializations();
        if !stale.is_empty() {
            return Err(HybridError::StaleViews(stale));
        }
        match &self.shared {
            Some(shared) => {
                let shared = Arc::clone(shared);
                self.publish();
                Ok(SnapshotReader { shared })
            }
            None => {
                let shared = Arc::new(Mutex::new(Arc::new(self.make_snapshot())));
                self.shared = Some(Arc::clone(&shared));
                Ok(SnapshotReader { shared })
            }
        }
    }

    fn make_snapshot(&self) -> CatalogSnapshot {
        let epoch = self.catalog.epoch();
        // Stamp the clone's plan-cache epoch now: every probe from the
        // snapshot must validate against the state it captured, and the
        // shared `PlanCache` Arc means entries it inserts serve later
        // same-epoch readers too.
        let mut optimizer = self.optimizer.clone();
        optimizer.set_cache_epoch(epoch);
        CatalogSnapshot {
            catalog: self.catalog.clone(),
            table_views: self.table_views.clone(),
            optimizer,
            budget: self.budget,
            epoch,
        }
    }

    /// Republishes the shared snapshot after a state change. A no-op until
    /// a reader exists; silently skipped when the state is not committable
    /// (poisoned maintainer, pending updates) — readers then keep serving
    /// the last clean snapshot, which is exactly the wanted semantics for
    /// a writer mid-batch.
    fn publish(&self) {
        static PUBLISHES: hadad_obs::LazyCounter =
            hadad_obs::LazyCounter::new("snapshot.publishes");
        static EPOCH_ADVANCE: hadad_obs::LazyHistogram =
            hadad_obs::LazyHistogram::new("snapshot.epoch_advance");
        let Some(shared) = &self.shared else { return };
        if self.maintainer.is_poisoned() || !self.catalog.pending_updates().is_empty() {
            return;
        }
        let snap = Arc::new(self.make_snapshot());
        let mut slot = shared.lock().unwrap_or_else(PoisonError::into_inner);
        // Epoch lag between consecutive published snapshots: how many
        // committed epochs a reader could skip past in one reload.
        EPOCH_ADVANCE.record(snap.epoch().saturating_sub(slot.epoch()));
        PUBLISHES.incr();
        *slot = snap;
    }

    /// Point-in-time snapshot of the process-wide observability registry;
    /// see [`Optimizer::metrics`]. Covers both halves of the hybrid
    /// pipeline (PACB, relational execution, cast, LA rewriting) plus
    /// maintenance and snapshot publication counters.
    pub fn metrics(&self) -> hadad_obs::MetricsSnapshot {
        hadad_obs::snapshot()
    }

    /// Rewrites the pipeline without executing the LA verification step
    /// (the relational prefix still executes — its output feeds the cast).
    pub fn rewrite_hybrid(&self, p: &HybridPipeline) -> Result<HybridResult, HybridError> {
        self.run(p, None)
    }

    /// Rewrites the pipeline and verifies both halves by execution: the
    /// LA suffix through [`Optimizer::rewrite_verified`] (cheapest plan
    /// that agrees with the original wins), the relational prefix by
    /// comparing the cast matrices of the original and rewritten queries.
    pub fn rewrite_hybrid_verified(
        &self,
        p: &HybridPipeline,
        env: &Env,
        rtol: f64,
    ) -> Result<HybridResult, HybridError> {
        self.run(p, Some((env, rtol)))
    }

    fn run(
        &self,
        p: &HybridPipeline,
        verify: Option<(&Env, f64)>,
    ) -> Result<HybridResult, HybridError> {
        // A poisoned maintainer means view materializations are unknown —
        // but base tables are always current (mutations land immediately;
        // the pending log only defers *view* maintenance). So instead of
        // refusing, degrade: run the pipeline against base tables only, with
        // no materialized views offered to either rewriter. The caller sees
        // the degradation on the result and can `rebuild_views()` at leisure.
        let mut degraded: Option<Degraded> = None;
        if self.maintainer.is_poisoned() {
            degraded = Some(Degraded {
                reason: DegradeReason::MaintenancePoisoned,
                phase: RewritePhase::Maintenance,
            });
        } else {
            // Refuse to rewrite against stale materializations: pending
            // updates touching a view's base tables mean PACB could land the
            // prefix on a view whose contents no longer match its
            // definition, and a dirty maintained-cast source means the LA
            // catalog's stamped metadata would misprice the suffix. Unlike
            // poisoning this has a cheap remedy — `maintain_views()` — so
            // it stays a hard error rather than a silent degradation.
            let stale = self.stale_materializations();
            if !stale.is_empty() {
                return Err(HybridError::StaleViews(stale));
            }
        }
        run_state(
            &RunState {
                catalog: &self.catalog,
                table_views: &self.table_views,
                optimizer: &self.optimizer,
                budget: self.budget,
                epoch: self.catalog.epoch(),
                degraded,
            },
            p,
            verify,
        )
    }
}

/// Everything one hybrid rewrite reads, borrowed either from the live
/// [`HybridOptimizer`] (the `&self` path) or from a published
/// [`CatalogSnapshot`] (the concurrent read path). Capturing it in one
/// struct is what lets `run_state` stay free of `&mut` and of the
/// optimizer itself.
struct RunState<'a> {
    catalog: &'a Catalog,
    table_views: &'a [TableView],
    optimizer: &'a Optimizer,
    budget: ChaseBudget,
    /// Catalog epoch the state was captured at — stamped onto the LA
    /// optimizer clone so its plan-cache probes are epoch-checked.
    epoch: u64,
    /// Pre-determined degradation (poisoned maintainer): the run proceeds
    /// with no materialized views offered.
    degraded: Option<Degraded>,
}

/// One hybrid rewrite over a captured [`RunState`]: shared verbatim by the
/// live `&self` path and by snapshot readers on other threads.
fn run_state(
    state: &RunState<'_>,
    p: &HybridPipeline,
    verify: Option<(&Env, f64)>,
) -> Result<HybridResult, HybridError> {
    static RUNS: hadad_obs::LazyCounter = hadad_obs::LazyCounter::new("hybrid.runs");
    static TOTAL_US: hadad_obs::LazyHistogram =
        hadad_obs::LazyHistogram::new("hybrid.total_us");
    static PACB_US: hadad_obs::LazyHistogram = hadad_obs::LazyHistogram::new("hybrid.pacb_us");
    static EXEC_US: hadad_obs::LazyHistogram = hadad_obs::LazyHistogram::new("hybrid.exec_us");
    static CAST_US: hadad_obs::LazyHistogram = hadad_obs::LazyHistogram::new("hybrid.cast_us");
    let _span = hadad_obs::span("hybrid.run");
    RUNS.incr();
    let start = Instant::now();
    let degraded = state.degraded.clone();

    // Phase 1: compile the prefix and the view definitions to CQs over
    // the catalog vocabulary. A degraded run offers no views.
    let mut tv = TableVocab::from_catalog(state.catalog);
    let compiled = p.prefix.compile(state.catalog, &mut tv)?;
    let usable_views: &[TableView] = if degraded.is_some() { &[] } else { state.table_views };
    let mut views = Vec::with_capacity(usable_views.len());
    for v in usable_views {
        let def = v.def.compile(state.catalog, &mut tv)?;
        let mat_cols = state
            .catalog
            .get(&v.name)
            .map_or(def.columns.len(), hadad_relational::Table::num_cols);
        if mat_cols != def.columns.len() {
            return Err(HybridError::ViewArity {
                view: v.name.clone(),
                expected: def.columns.len(),
                got: mat_cols,
            });
        }
        views.push(hadad_chase::View::new(&v.name, tv.pred(&v.name)?, def.cq));
    }

    // Phase 2: PACB with the catalog's row-count cost as `Prune_prov`
    // threshold — rewritings that cannot beat re-running the original
    // prefix are pruned during the backchase.
    let cost_original =
        state.catalog.scan_cost(compiled.cq.body.iter().filter_map(|a| tv.table_of(a.pred)));
    let cost_fn = |inst: &Instance, atoms: &[usize]| -> f64 {
        state.catalog.scan_cost(
            atoms.iter().map(|&i| tv.table_of(inst.fact(i).pred).unwrap_or("?unknown-pred")),
        )
    };
    // Supervised: a panic inside PACB (a bug, or an injected fault in
    // the shared chase engine) degrades the relational phase to "no
    // rewriting found" — the original prefix below is always a sound
    // fallback — instead of unwinding out of the pipeline.
    let (pacb, pacb_us) = hadad_obs::timed("hybrid.pacb", &PACB_US, || {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Pacb::new(&[], &views)
                .with_options(PacbOptions {
                    budget: state.budget,
                    prune_threshold: Some(cost_original),
                })
                .with_cost_fn(&cost_fn)
                .rewrite(&compiled.cq)
        }))
        .unwrap_or_else(|_| PacbResult {
            rewritings: Vec::new(),
            chase_outcome: ChaseOutcome::BudgetExhausted,
            backchase_outcome: ChaseOutcome::BudgetExhausted,
            universal_plan_size: 0,
            chase_stats: ChaseStats::default(),
            backchase_stats: ChaseStats::default(),
            degraded: Some(Degraded {
                reason: DegradeReason::WorkerPanic,
                phase: RewritePhase::Chase,
            }),
        })
    });

    let best_rw = pacb.rewritings.iter().find(|r| r.cost.is_some_and(|c| c < cost_original));

    // Phase 3: execute the chosen prefix (and, under verification, the
    // original too).
    let (table, exec_us) = hadad_obs::timed("hybrid.rel_exec", &EXEC_US, || {
        let table = match best_rw {
            Some(rw) => eval_cq(&rw.query, &compiled.columns, state.catalog, &tv)?,
            None => p.prefix.execute(state.catalog)?,
        };
        maybe_sort(table, &p.sort_key)
    });
    let table = table?;

    // Phase 4: cast into the LA world.
    let (mat, cast_us) =
        hadad_obs::timed("hybrid.cast", &CAST_US, || apply_cast(&table, &p.cast));
    let mat = mat?;

    // Phase 5: LA suffix rewriting with the cast matrix catalogued from
    // its actual materialization (shape, nnz, MNC histograms) — for a
    // sparse cast this records the true ultra-sparse density, which the
    // encoder turns into the `density` facts the cost oracle reads. The
    // clone is pinned to the captured epoch so plan-cache entries it
    // creates (or serves) are validated against the snapshotted catalog
    // state, not whatever the live catalog has moved on to.
    let cast_meta = MatrixMeta::from_matrix(&mat);
    let mut la_opt = state.optimizer.clone();
    la_opt.set_cache_epoch(state.epoch);
    la_opt.cat.register(&p.cast_name, cast_meta.clone());

    let rel = RelPhase {
        compiled,
        cost_original,
        cost_best: best_rw.and_then(|r| r.cost),
        rewriting: best_rw.map(|r| r.query.clone()),
        pacb,
        pacb_us,
        exec_us,
        rows_out: table.num_rows(),
    };

    let (ranked, best, verified) = match verify {
        None => {
            let ranked = la_opt.rewrite(&p.suffix)?;
            let best = ranked.best().clone();
            (ranked, best, None)
        }
        Some((env, rtol)) => {
            // Relational half: the rewriting must cast to the same
            // matrix as the operator pipeline over base tables.
            let rel_ok = match &rel.rewriting {
                None => true,
                Some(_) => {
                    let orig = maybe_sort(p.prefix.execute(state.catalog)?, &p.sort_key)?;
                    let orig_mat = apply_cast(&orig, &p.cast)?;
                    approx_eq(&orig_mat, &mat, rtol)
                }
            };
            let mut env = env.clone();
            env.bind(&p.cast_name, mat.clone());
            let (ranked, plan, _) = la_opt.rewrite_verified(&p.suffix, &env, rtol)?;
            // Verified only if the *best-ranked* plan is the one that
            // passed execution (a fallback to a later plan or to the
            // original means the top plan failed the check).
            let la_ok = plan.expr == ranked.best().expr;
            (ranked, plan, Some(rel_ok && la_ok))
        }
    };

    // Most upstream degradation wins: maintenance, then the relational
    // (PACB) phase, then the LA phase.
    let degraded = degraded
        .or_else(|| rel.pacb.degraded.clone())
        .or_else(|| ranked.report.degraded.clone());

    let elapsed_us = start.elapsed().as_micros();
    TOTAL_US.record(u64::try_from(elapsed_us).unwrap_or(u64::MAX));
    Ok(HybridResult {
        rel,
        table,
        cast_meta,
        cast_us,
        ranked,
        best,
        verified,
        degraded,
        elapsed_us,
    })
}

/// An immutable, owned copy of a [`HybridOptimizer`]'s rewriting state —
/// relational catalog, table views, LA optimizer (plan-cache epoch already
/// stamped), and chase budget — captured at a committed catalog epoch.
///
/// Every method takes `&self`, so one snapshot (behind an [`Arc`]) serves
/// hybrid rewrites from any number of threads while the writer keeps
/// mutating and maintaining the live optimizer. Snapshots are only ever
/// published from clean states (no pending updates, maintainer healthy),
/// so the stale-view and poisoning checks of the live path are vacuous
/// here by construction.
#[derive(Clone)]
pub struct CatalogSnapshot {
    catalog: Catalog,
    table_views: Vec<TableView>,
    optimizer: Optimizer,
    budget: ChaseBudget,
    epoch: u64,
}

impl CatalogSnapshot {
    /// The catalog epoch this snapshot was captured at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The snapshotted relational catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The snapshotted table views, in registration order.
    pub fn table_views(&self) -> &[TableView] {
        &self.table_views
    }

    /// Rewrites a hybrid pipeline against the snapshot, without the LA
    /// verification step — the snapshot analogue of
    /// [`HybridOptimizer::rewrite_hybrid`].
    pub fn rewrite_hybrid(&self, p: &HybridPipeline) -> Result<HybridResult, HybridError> {
        run_state(&self.state(), p, None)
    }

    /// Rewrites and execution-verifies a hybrid pipeline against the
    /// snapshot — the snapshot analogue of
    /// [`HybridOptimizer::rewrite_hybrid_verified`].
    pub fn rewrite_hybrid_verified(
        &self,
        p: &HybridPipeline,
        env: &Env,
        rtol: f64,
    ) -> Result<HybridResult, HybridError> {
        run_state(&self.state(), p, Some((env, rtol)))
    }

    /// Rewrites a pure-LA expression against the snapshot's optimizer
    /// (whose plan-cache probes carry the snapshot's epoch).
    pub fn rewrite(&self, e: &Expr) -> Result<RankedPlans, RewriteError> {
        self.optimizer.rewrite(e)
    }

    fn state(&self) -> RunState<'_> {
        RunState {
            catalog: &self.catalog,
            table_views: &self.table_views,
            optimizer: &self.optimizer,
            budget: self.budget,
            epoch: self.epoch,
            degraded: None,
        }
    }
}

/// A cloneable, `Send` handle onto a [`HybridOptimizer`]'s latest
/// *published* [`CatalogSnapshot`].
///
/// Hand clones to reader threads: each rewrite loads the current snapshot
/// (the lock is held only for the `Arc` pointer copy) and runs against it
/// lock-free, while the writer maintains the live state and republishes
/// after every clean commit. Readers never observe a mid-maintenance
/// state — publication happens only when the update log is drained and
/// the maintainer is healthy.
#[derive(Clone)]
pub struct SnapshotReader {
    shared: Arc<Mutex<Arc<CatalogSnapshot>>>,
}

impl SnapshotReader {
    /// The latest published snapshot. Callers holding the returned `Arc`
    /// keep that epoch's state alive even after the writer republishes.
    pub fn current(&self) -> Arc<CatalogSnapshot> {
        static READS: hadad_obs::LazyCounter = hadad_obs::LazyCounter::new("snapshot.reads");
        READS.incr();
        Arc::clone(&self.shared.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// [`CatalogSnapshot::rewrite_hybrid`] against the latest published
    /// snapshot.
    pub fn rewrite_hybrid(&self, p: &HybridPipeline) -> Result<HybridResult, HybridError> {
        self.current().rewrite_hybrid(p)
    }

    /// [`CatalogSnapshot::rewrite_hybrid_verified`] against the latest
    /// published snapshot.
    pub fn rewrite_hybrid_verified(
        &self,
        p: &HybridPipeline,
        env: &Env,
        rtol: f64,
    ) -> Result<HybridResult, HybridError> {
        self.current().rewrite_hybrid_verified(p, env, rtol)
    }

    /// [`CatalogSnapshot::rewrite`] against the latest published snapshot.
    pub fn rewrite(&self, e: &Expr) -> Result<RankedPlans, RewriteError> {
        self.current().rewrite(e)
    }
}

/// Re-casts a maintained cast's source table and stamps the resulting
/// matrix metadata into the LA optimizer's catalog.
fn restamp_cast_into(
    catalog: &Catalog,
    optimizer: &mut Optimizer,
    cast: &MaintainedCast,
) -> Result<(), HybridError> {
    // Fault surface: a re-stamp failure after maintenance drained the log
    // must poison the maintainer (see `maintain_views`), not pass silently.
    hadad_failpoint::hit("hybrid.restamp")?;
    let t =
        catalog.get(&cast.view).ok_or_else(|| HybridError::MissingTable(cast.view.clone()))?;
    // Clone only when a sort actually reorders; the unsorted path casts
    // straight from the catalog table (it can be a large base table).
    let sorted;
    let t = match &cast.sort_key {
        Some(_) => {
            sorted = maybe_sort(t.clone(), &cast.sort_key)?;
            &sorted
        }
        None => t,
    };
    let mat = apply_cast(t, &cast.cast)?;
    optimizer.cat.register(&cast.cast_name, MatrixMeta::from_matrix(&mat));
    Ok(())
}

fn maybe_sort(t: Table, key: &Option<String>) -> Result<Table, HybridError> {
    match key {
        Some(k) => {
            require_column(&t, k)?;
            Ok(ops::sort_by_int(&t, k)?)
        }
        None => Ok(t),
    }
}

fn apply_cast(t: &Table, kind: &CastKind) -> Result<Matrix, HybridError> {
    match kind {
        CastKind::Dense { columns } => {
            for c in columns {
                require_column(t, c)?;
            }
            let refs: Vec<&str> = columns.iter().map(std::string::String::as_str).collect();
            Ok(cast::table_to_matrix(t, &refs))
        }
        CastKind::Sparse { row, col, val, rows, cols } => {
            require_column(t, row)?;
            require_column(t, col)?;
            require_column(t, val)?;
            Ok(cast::table_to_sparse(t, row, col, val, *rows, *cols))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hadad_core::expr::dsl::*;
    use hadad_core::MetaCatalog;

    fn tweets() -> Table {
        // 60 tweets over 6 topics; level cycles 1..=4.
        let n = 60i64;
        Table::new(vec![
            ("tid", Column::Int((0..n).collect())),
            ("topic", Column::Int((0..n).map(|i| i % 6).collect())),
            ("level", Column::Int((0..n).map(|i| i % 4 + 1).collect())),
        ])
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register("tweets", tweets());
        c
    }

    #[test]
    fn execute_matches_compiled_semantics() {
        let cat = catalog();
        let q = RelQuery::scan("tweets").select_eq("topic", 3).project(&["tid", "level"]);
        let direct = q.execute(&cat).unwrap();
        assert_eq!(direct.num_rows(), 10);

        let mut tv = TableVocab::from_catalog(&cat);
        let compiled = q.compile(&cat, &mut tv).unwrap();
        assert_eq!(compiled.columns, vec!["tid".to_string(), "level".to_string()]);
        assert_eq!(compiled.cq.body.len(), 1);
        let via_cq = eval_cq(&compiled.cq, &compiled.columns, &cat, &tv).unwrap();
        let sorted_direct = ops::sort_by_int(&direct, "tid").unwrap();
        let sorted_cq = ops::sort_by_int(&via_cq, "tid").unwrap();
        assert_eq!(sorted_direct, sorted_cq);
    }

    #[test]
    fn compile_places_selection_constants_in_head() {
        let cat = catalog();
        let mut tv = TableVocab::from_catalog(&cat);
        let q = RelQuery::scan("tweets").select_eq("topic", 3);
        let compiled = q.compile(&cat, &mut tv).unwrap();
        // Head: (tid, 3, level) — the selected column is a constant.
        assert!(matches!(compiled.cq.head[1], Term::Const(_)));
        assert!(compiled.cq.is_safe());
    }

    #[test]
    fn compile_join_shares_variables_and_prefixes_collisions() {
        let mut cat = catalog();
        cat.register(
            "topics",
            Table::new(vec![
                ("id", Column::Int((0..6).collect())),
                ("level", Column::Int(vec![9; 6])), // collides with tweets.level
            ]),
        );
        let q = RelQuery::scan("tweets").join("topics", "topic", "id");
        let mut tv = TableVocab::from_catalog(&cat);
        let compiled = q.compile(&cat, &mut tv).unwrap();
        assert_eq!(
            compiled.columns,
            vec![
                "tid".to_string(),
                "topic".to_string(),
                "level".to_string(),
                "right.level".to_string()
            ]
        );
        // The join key variable is shared between the two atoms.
        assert_eq!(compiled.cq.body[0].args[1], compiled.cq.body[1].args[0]);
        // Execution produces the same schema.
        let t = q.execute(&cat).unwrap();
        assert_eq!(
            t.column_names(),
            &["tid", "topic", "level", "right.level"].map(String::from)
        );
        let via_cq = eval_cq(&compiled.cq, &compiled.columns, &cat, &tv).unwrap();
        assert_eq!(
            ops::sort_by_int(&t, "tid").unwrap(),
            ops::sort_by_int(&via_cq, "tid").unwrap()
        );
    }

    #[test]
    fn contradictory_selections_are_rejected() {
        let cat = catalog();
        let mut tv = TableVocab::from_catalog(&cat);
        let q = RelQuery::scan("tweets").select_eq("topic", 3).select_eq("topic", 4);
        assert!(matches!(q.compile(&cat, &mut tv), Err(HybridError::Unsatisfiable(_))));
        // Repeating the same selection is fine.
        let q = RelQuery::scan("tweets").select_eq("topic", 3).select_eq("topic", 3);
        assert!(q.compile(&cat, &mut tv).is_ok());
    }

    /// Regression: rewritten prefixes run under bag semantics. Projecting
    /// away the key leaves duplicate tuples, and the view-backed rewriting
    /// must keep every one of them (a set-semantics evaluation would
    /// collapse the 10 rows to the 4 distinct levels and cast the wrong
    /// matrix).
    #[test]
    fn rewriting_preserves_duplicate_rows() {
        let mut hy = HybridOptimizer::new(catalog(), Optimizer::new(MetaCatalog::new()));
        hy.register_table_view("topic3", RelQuery::scan("tweets").select_eq("topic", 3))
            .unwrap();
        let prefix = RelQuery::scan("tweets").select_eq("topic", 3).project(&["level"]);
        let p = HybridPipeline {
            prefix: prefix.clone(),
            sort_key: Some("level".into()),
            cast: CastKind::Dense { columns: vec!["level".into()] },
            cast_name: "M".into(),
            suffix: m("M"),
        };
        let r = hy.rewrite_hybrid(&p).unwrap();
        assert!(r.rel.rewriting.is_some());
        assert_eq!(r.rel.rows_out, 10);
        let direct = ops::sort_by_int(&prefix.execute(&hy.catalog).unwrap(), "level").unwrap();
        assert_eq!(r.table, direct);
    }

    /// Regression: integer and string constants never cross-match, in
    /// either execution path — `Str("7")` is not the number 7.
    #[test]
    fn string_and_int_constants_do_not_cross_match() {
        let mut cat = Catalog::new();
        cat.register(
            "t",
            Table::new(vec![
                ("k", Column::Str(vec!["7".into(), "en".into()])),
                ("v", Column::Int(vec![1, 2])),
            ]),
        );
        let mut tv = TableVocab::from_catalog(&cat);

        // Numeric selection on a string column: empty both ways.
        let q_int = RelQuery::scan("t").select_eq("k", 7);
        assert_eq!(q_int.execute(&cat).unwrap().num_rows(), 0);
        let c = q_int.compile(&cat, &mut tv).unwrap();
        assert_eq!(eval_cq(&c.cq, &c.columns, &cat, &tv).unwrap().num_rows(), 0);

        // String selection for "7": exactly the Str("7") row, both ways.
        let q_str = RelQuery::scan("t").select_str_eq("k", "7");
        assert_eq!(q_str.execute(&cat).unwrap().num_rows(), 1);
        let c = q_str.compile(&cat, &mut tv).unwrap();
        let via_cq = eval_cq(&c.cq, &c.columns, &cat, &tv).unwrap();
        assert_eq!(via_cq.num_rows(), 1);
        assert_eq!(via_cq.value(0, "v"), Value::Int(1));
        // The head constant decodes back to the string, not the number.
        assert_eq!(via_cq.value(0, "k"), Value::Str("7".into()));
    }

    #[test]
    fn pacb_rewrites_prefix_onto_materialized_view() {
        let mut hy = HybridOptimizer::new(catalog(), Optimizer::new(MetaCatalog::new()));
        hy.register_table_view("topic3", RelQuery::scan("tweets").select_eq("topic", 3))
            .unwrap();
        let p = HybridPipeline {
            prefix: RelQuery::scan("tweets").select_eq("topic", 3),
            sort_key: Some("tid".into()),
            cast: CastKind::Dense { columns: vec!["tid".into(), "level".into()] },
            cast_name: "M".into(),
            suffix: m("M"),
        };
        let r = hy.rewrite_hybrid(&p).unwrap();
        // The rewriting reads the 10-row view instead of 60-row tweets.
        assert!(r.rel.rewriting.is_some());
        assert_eq!(r.rel.cost_original, 60.0);
        assert_eq!(r.rel.cost_best, Some(10.0));
        assert_eq!(r.rel.rows_out, 10);
        assert_eq!(r.table.num_rows(), 10);
    }
}
