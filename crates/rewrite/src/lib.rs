//! End-to-end HADAD rewriting: the optimizer facade tying the VREM
//! encoding (`hadad-core`), the chase under the MMC catalogue
//! (`hadad-chase`), min-cost decoding, cost-based ranking, and execution
//! on the matrix backends (`hadad-linalg`) into one call:
//!
//! ```
//! use hadad_core::{expr::dsl::*, MatrixMeta, MetaCatalog};
//! use hadad_rewrite::Optimizer;
//!
//! let mut cat = MetaCatalog::new();
//! cat.register("A", MatrixMeta::dense(1000, 20));
//! cat.register("B", MatrixMeta::dense(20, 1000));
//! let opt = Optimizer::new(cat);
//!
//! // trace(A B) is a 1000x1000 intermediate; trace(B A) is 20x20.
//! let ranked = opt.rewrite(&trace(mul(m("A"), m("B")))).unwrap();
//! assert_eq!(ranked.best().expr.to_string(), "trace((B A))");
//! ```

pub mod cache;
pub mod cost;
pub mod eval;
pub mod hybrid;
pub mod maintain;
pub mod optimizer;

pub use cache::{CacheReport, PlanCache};
pub use cost::{CostModel, Estimate, FlopsCost, TighteningPruner, VremCostOracle};
pub use eval::{eval, eval_with, Env, EvalError};
pub use hadad_chase::EvalMode;
pub use hadad_linalg::{BackendKind, ExecBackend};
pub use hybrid::{
    eval_cq, CastKind, CatalogSnapshot, CompiledQuery, HybridError, HybridOptimizer,
    HybridPipeline, HybridResult, MaintainedCast, RelOp, RelPhase, RelQuery, SnapshotReader,
    TableView, TableVocab,
};
pub use maintain::{MaintenanceReport, ViewChange, ViewMaintainer};
pub use optimizer::{
    LaView, Optimizer, Plan, PruneMode, RankedPlans, RewriteError, RewriteReport,
};
