//! Delta maintenance of materialized table views ([`TableView`]): instead
//! of re-executing a view's `RelQuery` after base-table updates, the
//! [`ViewMaintainer`] pushes the logged [`Delta`]s through the view's
//! operator pipeline with the per-operator rules from
//! [`hadad_relational::ivm`] and applies the resulting view delta to the
//! materialization in the catalog.
//!
//! The join rule Δ(L ⋈ R) = ΔL ⋈ Rⁿᵉʷ + Lᵒˡᵈ ⋈ ΔR needs the *old* left
//! input of every join stage, so the maintainer caches those intermediates
//! per view (selections and projections are linear — they need no state).
//! Update batches that touch several tables compose sequentially: entries
//! are propagated in log order, and when a join's right table carries
//! *later* pending entries, the maintainer reconstructs the table as of
//! the current entry by unapplying them (deltas are invertible). View
//! deltas re-enter the propagation queue, so views defined over other
//! views maintain transitively, in registration order.

use std::borrow::Cow;
use std::collections::HashMap;
use std::time::Instant;

use hadad_relational::ivm::{apply_delta, Delta, TableUpdate};
use hadad_relational::{Catalog, Table};

use crate::hybrid::{HybridError, RelOp, TableView};

/// Per-view cached state: the (pre-update) left input of every join stage,
/// keyed by the op's position in the view definition.
#[derive(Debug, Clone, Default)]
struct ViewState {
    join_inputs: HashMap<usize, Table>,
}

/// What one maintenance pass did to one view.
#[derive(Debug, Clone)]
pub struct ViewChange {
    /// Maintained view name.
    pub view: String,
    /// Rows the pass inserted.
    pub rows_inserted: usize,
    /// Rows the pass retracted.
    pub rows_deleted: usize,
}

/// Outcome of a maintenance pass: every non-trivial view change plus the
/// number of log entries propagated (base-table entries and transitively
/// generated view entries).
#[derive(Debug, Clone, Default)]
pub struct MaintenanceReport {
    /// Update-log entries propagated.
    pub entries_processed: usize,
    /// Every non-trivial per-view change.
    pub changes: Vec<ViewChange>,
    /// Time spent delta-maintaining the view tables.
    pub maintain_us: u128,
    /// Time spent re-casting and re-stamping maintained cast metadata
    /// (`HybridOptimizer` maintenance only; zero for a bare maintainer).
    pub restamp_us: u128,
    /// Catalog epoch after the pass committed — the epoch fresh plan-cache
    /// entries and snapshots are stamped with from here on.
    pub epoch: u64,
}

impl MaintenanceReport {
    /// Total rows touched across all maintained views.
    pub fn rows_touched(&self) -> usize {
        self.changes.iter().map(|c| c.rows_inserted + c.rows_deleted).sum()
    }
}

/// Incremental maintainer for the registered table views of a catalog.
#[derive(Debug, Clone, Default)]
pub struct ViewMaintainer {
    states: HashMap<String, ViewState>,
    /// Set when a maintenance pass fails partway: earlier views were
    /// already mutated and the drained log entries are gone, so view
    /// state is unknown until the views are rebuilt from scratch.
    poisoned: bool,
}

impl ViewMaintainer {
    /// Maintainer with no tracked views.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` after a failed maintenance pass — every further
    /// [`ViewMaintainer::maintain`] refuses until the views are rebuilt
    /// (e.g. `HybridOptimizer::rebuild_views`) on a fresh maintainer.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Starts tracking a view whose materialization is already registered
    /// in the catalog, caching the left input of every join stage. The
    /// catalog must hold no pending updates newer than the
    /// materialization — they must be drained (maintained) first, or the
    /// cache would double-count them on the next maintenance pass.
    pub fn track(&mut self, catalog: &Catalog, view: &TableView) -> Result<(), HybridError> {
        if !catalog.pending_updates().is_empty() {
            return Err(HybridError::PendingUpdates(
                catalog.pending_updates().iter().map(|e| e.table.clone()).collect(),
            ));
        }
        let mut state = ViewState::default();
        let mut t = catalog
            .get(&view.def.table)
            .ok_or_else(|| HybridError::MissingTable(view.def.table.clone()))?
            .clone();
        for (k, op) in view.def.ops.iter().enumerate() {
            if matches!(op, RelOp::HashJoin { .. }) {
                state.join_inputs.insert(k, t.clone());
            }
            t = view.def.apply_op(t, op, catalog)?;
        }
        self.states.insert(view.name.clone(), state);
        Ok(())
    }

    /// Marks the maintainer's state unknown (e.g. when a cast re-stamp
    /// fails after the log was drained): every further maintenance pass
    /// refuses until the views are rebuilt.
    pub(crate) fn poison(&mut self) {
        self.poisoned = true;
    }

    /// Drains the catalog's update log and delta-maintains every tracked
    /// view, in registration order, applying each view's delta to its
    /// materialization in the catalog. View deltas join the queue so views
    /// over views maintain transitively.
    ///
    /// A mid-pass failure leaves earlier views mutated with the drained
    /// log gone, so the maintainer *poisons* itself: every later call
    /// fails with [`HybridError::MaintenancePoisoned`] until the views
    /// are rebuilt from scratch — a loud stop instead of silently
    /// clearing the staleness signal.
    pub fn maintain(
        &mut self,
        catalog: &mut Catalog,
        views: &[TableView],
    ) -> Result<MaintenanceReport, HybridError> {
        if self.poisoned {
            return Err(HybridError::MaintenancePoisoned);
        }
        static PASSES: hadad_obs::LazyCounter = hadad_obs::LazyCounter::new("maintain.passes");
        static POISONINGS: hadad_obs::LazyCounter =
            hadad_obs::LazyCounter::new("maintain.poisonings");
        PASSES.incr();
        let _span = hadad_obs::span("maintain.pass");
        // Supervised: a panic mid-pass is no different from an error — the
        // log is drained and earlier views may be mutated — so it poisons
        // the maintainer and surfaces as the typed poisoning error instead
        // of unwinding through the caller.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.maintain_inner(catalog, views)
        }))
        .unwrap_or(Err(HybridError::MaintenancePoisoned));
        if result.is_err() {
            self.poisoned = true;
            POISONINGS.incr();
            hadad_obs::event(
                "maintain.pass",
                hadad_obs::Severity::Error,
                "maintenance pass failed mid-pass; maintainer poisoned until rebuild",
            );
        }
        result
    }

    fn maintain_inner(
        &mut self,
        catalog: &mut Catalog,
        views: &[TableView],
    ) -> Result<MaintenanceReport, HybridError> {
        let start = Instant::now();
        // Coalesce adjacent entries on the same table: sequential deltas on
        // one relation compose by concatenation, and one combined
        // propagation halves the per-view apply cost of the common
        // insert-batch + delete-batch update shape.
        let mut queue: Vec<TableUpdate> = Vec::new();
        for e in catalog.take_updates() {
            match queue.last_mut() {
                Some(prev) if prev.table == e.table => prev.delta.rows.extend(e.delta.rows),
                _ => queue.push(e),
            }
        }
        // Fault surface for the poisoning contract: the log is already
        // drained here, so a failure from this point on must leave the
        // maintainer poisoned (state unknown until `rebuild_views`).
        hadad_failpoint::hit("maintain.midpass")?;
        let mut report = MaintenanceReport::default();
        let mut i = 0;
        while i < queue.len() {
            for view in views {
                let entry = &queue[i];
                if !references(view, &entry.table) {
                    continue;
                }
                let delta = {
                    let _span = hadad_obs::span("maintain.propagate");
                    self.propagate(view, entry, catalog, &queue, i)?
                };
                if delta.is_empty() {
                    continue;
                }
                let (ins, del) =
                    catalog.apply_unlogged(&view.name, &delta).map_err(HybridError::Ivm)?;
                report.changes.push(ViewChange {
                    view: view.name.clone(),
                    rows_inserted: ins,
                    rows_deleted: del,
                });
                queue.push(TableUpdate { table: view.name.clone(), delta });
            }
            i += 1;
        }
        static PASS_US: hadad_obs::LazyHistogram =
            hadad_obs::LazyHistogram::new("maintain.pass_us");
        static ENTRIES: hadad_obs::LazyCounter =
            hadad_obs::LazyCounter::new("maintain.entries");
        static ROWS_INS: hadad_obs::LazyCounter =
            hadad_obs::LazyCounter::new("maintain.rows_inserted");
        static ROWS_DEL: hadad_obs::LazyCounter =
            hadad_obs::LazyCounter::new("maintain.rows_deleted");
        report.entries_processed = queue.len();
        // One measurement, two consumers: the public report field and the
        // shared-registry latency histogram.
        report.maintain_us = start.elapsed().as_micros();
        PASS_US.record(u64::try_from(report.maintain_us).unwrap_or(u64::MAX));
        ENTRIES.add(queue.len() as u64);
        ROWS_INS.add(report.changes.iter().map(|c| c.rows_inserted as u64).sum());
        ROWS_DEL.add(report.changes.iter().map(|c| c.rows_deleted as u64).sum());
        report.epoch = catalog.epoch();
        Ok(report)
    }

    /// Pushes one logged update through one view's pipeline, returning the
    /// view-level delta. Updates the cached join inputs as it goes, so the
    /// next entry sees them as of *after* this one.
    fn propagate(
        &mut self,
        view: &TableView,
        entry: &TableUpdate,
        catalog: &Catalog,
        queue: &[TableUpdate],
        idx: usize,
    ) -> Result<Delta, HybridError> {
        // Borrow the entry's delta through the first stages — the common
        // case (a selective view over a large update batch) never clones
        // the batch.
        let mut delta: Cow<'_, Delta> = if view.def.table == entry.table {
            Cow::Borrowed(&entry.delta)
        } else {
            let scan = catalog
                .get(&view.def.table)
                .ok_or_else(|| HybridError::MissingTable(view.def.table.clone()))?;
            Cow::Owned(Delta::empty(scan.column_names().to_vec()))
        };
        for (k, op) in view.def.ops.iter().enumerate() {
            match op {
                RelOp::SelectEq { column, value } => {
                    delta =
                        Cow::Owned(delta.select_eq(column, *value).map_err(HybridError::Ivm)?);
                }
                RelOp::SelectStrEq { column, value } => {
                    delta = Cow::Owned(
                        delta.select_str_eq(column, value).map_err(HybridError::Ivm)?,
                    );
                }
                RelOp::Project { columns } => {
                    delta = Cow::Owned(delta.project(columns).map_err(HybridError::Ivm)?);
                }
                RelOp::HashJoin { table, left_key, right_key } => {
                    let left_old = self
                        .states
                        .get(&view.name)
                        .and_then(|s| s.join_inputs.get(&k))
                        .ok_or_else(|| HybridError::UntrackedView(view.name.clone()))?;
                    // R as of this entry: the catalog already holds every
                    // queued delta, so unapply the ones that come later.
                    let right = right_as_of(catalog, queue, idx, table)?;
                    let mut out = delta
                        .join_right(&right, left_key, right_key)
                        .map_err(HybridError::Ivm)?;
                    if table == &entry.table {
                        out.merge(
                            Delta::join_left(left_old, &entry.delta, left_key, right_key)
                                .map_err(HybridError::Ivm)?,
                        )
                        .map_err(HybridError::Ivm)?;
                    }
                    // Advance the cached left input by ΔL for later entries.
                    if !delta.is_empty() {
                        let left = self
                            .states
                            .get_mut(&view.name)
                            .unwrap()
                            .join_inputs
                            .get_mut(&k)
                            .unwrap();
                        apply_delta(left, &delta, &view.name).map_err(HybridError::Ivm)?;
                    }
                    delta = Cow::Owned(out);
                }
            }
        }
        Ok(delta.into_owned())
    }
}

/// `true` when a view's definition reads `table` directly (its scan or any
/// join side). Transitive references flow through queued view deltas, not
/// through this check.
fn references(view: &TableView, table: &str) -> bool {
    view.def.table == table
        || view
            .def
            .ops
            .iter()
            .any(|op| matches!(op, RelOp::HashJoin { table: t, .. } if t == table))
}

/// The named table as of queue position `idx`: the catalog state with
/// every *later* queued delta for it unapplied. Borrows when nothing later
/// touches the table (the common, single-table-batch fast path).
fn right_as_of<'a>(
    catalog: &'a Catalog,
    queue: &[TableUpdate],
    idx: usize,
    name: &str,
) -> Result<Cow<'a, Table>, HybridError> {
    let t = catalog.get(name).ok_or_else(|| HybridError::MissingTable(name.to_owned()))?;
    let later: Vec<&Delta> =
        queue[idx + 1..].iter().filter(|e| e.table == name).map(|e| &e.delta).collect();
    if later.is_empty() {
        return Ok(Cow::Borrowed(t));
    }
    let mut t = t.clone();
    for d in later.iter().rev() {
        apply_delta(&mut t, &d.negated(), name).map_err(HybridError::Ivm)?;
    }
    Ok(Cow::Owned(t))
}
