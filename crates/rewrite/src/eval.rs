//! Expression evaluation on the `hadad-linalg` backends: the execution hook
//! the optimizer uses to check a rewriting's output against the original
//! (machine-checkable soundness, paper Theorem 8.1) and the substrate the
//! benchmarks time.

use std::collections::HashMap;

use hadad_core::Expr;
use hadad_linalg::ops::{aggregates, structural};
use hadad_linalg::{decomp, default_backend, ExecBackend, LinalgError, Matrix};

/// Named matrix bindings for evaluation.
#[derive(Debug, Clone, Default)]
pub struct Env {
    bindings: HashMap<String, Matrix>,
}

impl Env {
    /// Empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds `name` to a matrix, replacing any prior binding.
    pub fn bind(&mut self, name: impl Into<String>, m: Matrix) -> &mut Self {
        self.bindings.insert(name.into(), m);
        self
    }

    /// Matrix bound to `name`.
    pub fn get(&self, name: &str) -> Option<&Matrix> {
        self.bindings.get(name)
    }
}

/// Evaluation failure.
#[derive(Debug)]
pub enum EvalError {
    /// The expression references a matrix the environment does not bind.
    Unbound(String),
    /// A scalar position held a non-1x1 matrix.
    NonScalar(String),
    /// Kernel-level failure (shape mismatch, singular matrix, ...).
    Linalg(LinalgError),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Unbound(n) => write!(f, "unbound matrix {n}"),
            EvalError::NonScalar(e) => write!(f, "non-scalar multiplier in {e}"),
            EvalError::Linalg(e) => write!(f, "linalg error: {e}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<LinalgError> for EvalError {
    fn from(e: LinalgError) -> Self {
        EvalError::Linalg(e)
    }
}

/// Evaluates `e` under `env` on the process-default execution backend
/// (`HADAD_BACKEND`, `Parallel` unless overridden) — see [`eval_with`].
pub fn eval(e: &Expr, env: &Env) -> Result<Matrix, EvalError> {
    eval_with(e, env, default_backend())
}

/// Evaluates `e` under `env`, dispatching products through `backend` and
/// everything else to the shared dense/sparse kernels. Plans the extractor
/// resugars to `tr(A)·B` route to the backend's fused transpose-multiply
/// instead of materializing the transpose. `qr.Q`/`qr.R` (and
/// `lu.L`/`lu.U`) of the same operand share one factorization per call;
/// other repeated subexpressions are re-evaluated (general CSE is a
/// ROADMAP item).
pub fn eval_with(e: &Expr, env: &Env, backend: &dyn ExecBackend) -> Result<Matrix, EvalError> {
    let mut memo: HashMap<String, Matrix> = HashMap::new();
    eval_memo(e, env, backend, &mut memo)
}

/// QR/LU factorizations memoized per input subexpression, so an
/// expression using both components factors once, matching how the
/// encoder shares one VREM fact for the pair.
fn decomp_pair(
    e: &Expr,
    a: &Expr,
    env: &Env,
    backend: &dyn ExecBackend,
    memo: &mut HashMap<String, Matrix>,
) -> Result<Matrix, EvalError> {
    use Expr::*;
    let (tag, first) = match e {
        QrQ(_) => ("QR", true),
        QrR(_) => ("QR", false),
        LuL(_) => ("LU", true),
        _ => ("LU", false),
    };
    let (key1, key2) = (format!("{tag}.1({a})"), format!("{tag}.2({a})"));
    let key = if first { key1.clone() } else { key2.clone() };
    if let Some(m) = memo.get(&key) {
        return Ok(m.clone());
    }
    let input = eval_memo(a, env, backend, memo)?;
    let (c1, c2) = if tag == "QR" { decomp::qr::qr(&input)? } else { decomp::lu::lu(&input)? };
    memo.insert(key1, Matrix::Dense(c1));
    memo.insert(key2, Matrix::Dense(c2));
    Ok(memo[&key].clone())
}

fn eval_memo(
    e: &Expr,
    env: &Env,
    backend: &dyn ExecBackend,
    memo: &mut HashMap<String, Matrix>,
) -> Result<Matrix, EvalError> {
    use Expr::*;
    Ok(match e {
        Mat(n) => env.get(n).ok_or_else(|| EvalError::Unbound(n.clone()))?.clone(),
        Const(v) => Matrix::scalar(*v),
        Identity(n) => Matrix::identity(*n),
        Zero(r, c) => Matrix::zeros(*r, *c),
        Add(a, b) => {
            eval_memo(a, env, backend, memo)?.add(&eval_memo(b, env, backend, memo)?)?
        }
        Sub(a, b) => {
            eval_memo(a, env, backend, memo)?.sub(&eval_memo(b, env, backend, memo)?)?
        }
        // Rewrite-aware fusion: a resugared `tr(A)·B` never materializes
        // the transpose — the backend's fused kernel reads `A` in place.
        Mul(a, b) => match a.as_ref() {
            Transpose(inner) => {
                let lhs = eval_memo(inner, env, backend, memo)?;
                let rhs = eval_memo(b, env, backend, memo)?;
                backend.transpose_multiply(&lhs, &rhs)?
            }
            _ => {
                let lhs = eval_memo(a, env, backend, memo)?;
                let rhs = eval_memo(b, env, backend, memo)?;
                backend.multiply(&lhs, &rhs)?
            }
        },
        Hadamard(a, b) => {
            eval_memo(a, env, backend, memo)?.hadamard(&eval_memo(b, env, backend, memo)?)?
        }
        Div(a, b) => {
            eval_memo(a, env, backend, memo)?.divide(&eval_memo(b, env, backend, memo)?)?
        }
        Kron(a, b) => structural::kronecker(
            &eval_memo(a, env, backend, memo)?,
            &eval_memo(b, env, backend, memo)?,
        ),
        DirectSum(a, b) => structural::direct_sum(
            &eval_memo(a, env, backend, memo)?,
            &eval_memo(b, env, backend, memo)?,
        ),
        ScalarMul(s, a) => {
            let sv = eval_memo(s, env, backend, memo)?
                .as_scalar()
                .ok_or_else(|| EvalError::NonScalar(e.to_string()))?;
            eval_memo(a, env, backend, memo)?.scalar_mul(sv)
        }
        Transpose(a) => eval_memo(a, env, backend, memo)?.transpose(),
        Inv(a) => eval_memo(a, env, backend, memo)?.inverse()?,
        Adj(a) => decomp::adjugate::adjugate(&eval_memo(a, env, backend, memo)?)?,
        Exp(a) => decomp::exp::matrix_exp(&eval_memo(a, env, backend, memo)?)?,
        Diag(a) => structural::diag(&eval_memo(a, env, backend, memo)?)?,
        Rev(a) => structural::reverse_rows(&eval_memo(a, env, backend, memo)?),
        RowSums(a) => aggregates::row_sums(&eval_memo(a, env, backend, memo)?),
        ColSums(a) => aggregates::col_sums(&eval_memo(a, env, backend, memo)?),
        RowMeans(a) => aggregates::row_means(&eval_memo(a, env, backend, memo)?),
        ColMeans(a) => aggregates::col_means(&eval_memo(a, env, backend, memo)?),
        RowMin(a) => aggregates::row_min(&eval_memo(a, env, backend, memo)?),
        RowMax(a) => aggregates::row_max(&eval_memo(a, env, backend, memo)?),
        ColMin(a) => aggregates::col_min(&eval_memo(a, env, backend, memo)?),
        ColMax(a) => aggregates::col_max(&eval_memo(a, env, backend, memo)?),
        RowVar(a) => aggregates::row_var(&eval_memo(a, env, backend, memo)?),
        ColVar(a) => aggregates::col_var(&eval_memo(a, env, backend, memo)?),
        Det(a) => Matrix::scalar(eval_memo(a, env, backend, memo)?.det()?),
        Trace(a) => Matrix::scalar(eval_memo(a, env, backend, memo)?.trace()?),
        Sum(a) => Matrix::scalar(eval_memo(a, env, backend, memo)?.sum()),
        Min(a) => Matrix::scalar(aggregates::min(&eval_memo(a, env, backend, memo)?)),
        Max(a) => Matrix::scalar(aggregates::max(&eval_memo(a, env, backend, memo)?)),
        Mean(a) => Matrix::scalar(aggregates::mean(&eval_memo(a, env, backend, memo)?)),
        Var(a) => Matrix::scalar(aggregates::var(&eval_memo(a, env, backend, memo)?)),
        Cho(a) => {
            Matrix::Dense(decomp::cholesky::cholesky(&eval_memo(a, env, backend, memo)?)?)
        }
        QrQ(a) | QrR(a) | LuL(a) | LuU(a) => decomp_pair(e, a, env, backend, memo)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hadad_core::expr::dsl::*;
    use hadad_linalg::{approx_eq, rand_gen};

    #[test]
    fn evaluates_arithmetic() {
        let mut env = Env::new();
        env.bind("A", Matrix::dense(2, 2, vec![1., 2., 3., 4.]));
        env.bind("B", Matrix::dense(2, 2, vec![5., 6., 7., 8.]));
        let sum = eval(&add(m("A"), m("B")), &env).unwrap();
        assert_eq!(sum.get(0, 0), 6.0);
        let prod = eval(&mul(m("A"), m("B")), &env).unwrap();
        assert_eq!(prod.get(0, 0), 19.0);
        let d = eval(&sub(m("A"), m("B")), &env).unwrap();
        assert_eq!(d.get(1, 1), -4.0);
    }

    #[test]
    fn scalar_positions_are_checked() {
        let mut env = Env::new();
        env.bind("A", Matrix::dense(2, 2, vec![1., 2., 3., 4.]));
        assert!(matches!(eval(&smul(m("A"), m("A")), &env), Err(EvalError::NonScalar(_))));
        assert!(matches!(eval(&m("missing"), &env), Err(EvalError::Unbound(_))));
    }

    #[test]
    fn transpose_product_routes_to_fused_kernel() {
        use hadad_linalg::{ExecBackend, Parallel, REFERENCE};
        let mut env = Env::new();
        env.bind("A", Matrix::Dense(rand_gen::random_dense(6, 4, 1)));
        env.bind("B", Matrix::Dense(rand_gen::random_dense(6, 3, 2)));
        let e = mul(t(m("A")), m("B"));
        let backend = Parallel::with_threads(2);
        let got = eval_with(&e, &env, &backend).unwrap();
        assert_eq!(backend.fused_tmul_calls(), 1, "resugared tr(A)·B must fuse");
        assert_eq!(got, eval_with(&e, &env, &REFERENCE).unwrap());
        // A bare transpose (no product on top) still materializes.
        let bare = eval_with(&t(m("A")), &env, &backend).unwrap();
        assert_eq!(backend.fused_tmul_calls(), 1);
        assert_eq!(bare.shape(), (4, 6));
    }

    #[test]
    fn decompositions_recompose() {
        let mut env = Env::new();
        let d = Matrix::Dense(rand_gen::random_invertible(8, 3));
        env.bind("D", d.clone());
        let q_r = eval(
            &mul(
                hadad_core::Expr::QrQ(Box::new(m("D"))),
                hadad_core::Expr::QrR(Box::new(m("D"))),
            ),
            &env,
        )
        .unwrap();
        assert!(approx_eq(&q_r, &d, 1e-9));
    }
}
