//! Micro-benchmark for `Optimizer::rewrite` across twelve pipeline
//! families (seven pure-LA, a dense-GEMM backend duel, one hybrid
//! relational→LA, the IVM maintenance duel, the deadline-bounded
//! anytime family, and the plan-cache duel), emitting `BENCH_rewrite.json`
//! (a tracked point of the perf trajectory). CI asserts the JSON parses,
//! carries every family, and that the pruned chase never fires *more*
//! rules than the unpruned one.
//!
//! Each pipeline is rewritten three ways: the default engine (semi-naïve,
//! `Prune_prov` cost pruning), the `PruneMode::Off` baseline, and the
//! naive-evaluation baseline — so the JSON carries pruned-vs-unpruned
//! chase timings and firing counts alongside the semi-naïve-vs-naive match
//! counts. The original and the winning plan are then executed on the
//! linalg backend to report measured — not only estimated — speedups.

use std::time::Instant;

use hadad_chase::{ChaseBudget, ChaseOutcome, EvalMode};
use hadad_core::expr::dsl::*;
use hadad_core::{Expr, MatrixMeta, MetaCatalog};
use hadad_linalg::{rand_gen, ExecBackend, Matrix, PARALLEL, REFERENCE};
use hadad_relational::{Catalog, Column, Table, Value};
use hadad_rewrite::{
    eval_with, CastKind, Env, HybridOptimizer, HybridPipeline, MaintainedCast, Optimizer,
    PruneMode, RankedPlans, RelQuery,
};

/// Every family the JSON must carry; CI cross-checks the emitted artifact
/// against this list.
const FAMILIES: [&str; 12] = [
    "trace_cyclic",
    "matvec_chain",
    "qr_reuse",
    "matmul_chain8",
    "matmul_chain12",
    "sparse_chain",
    "ridge_normal_eq",
    "dense_gemm512",
    "hybrid_tweets",
    "ivm_updates",
    "deadline_rewrite",
    "cached_rewrite",
];

/// The pure-LA rewrite families, in emission order — the per-family
/// `chase_us` map in the tracked series covers exactly these.
const LA_FAMILIES: [&str; 7] = [
    "trace_cyclic",
    "matvec_chain",
    "qr_reuse",
    "matmul_chain8",
    "matmul_chain12",
    "sparse_chain",
    "ridge_normal_eq",
];

struct Pipeline {
    name: &'static str,
    expr: Expr,
    cat: MetaCatalog,
    env: Env,
    budget: ChaseBudget,
}

fn trace_pipeline(n: usize, k: usize) -> Pipeline {
    let mut cat = MetaCatalog::new();
    cat.register("A", MatrixMeta::dense(n, k));
    cat.register("B", MatrixMeta::dense(k, n));
    let mut env = Env::new();
    env.bind("A", Matrix::Dense(rand_gen::random_dense(n, k, 11)));
    env.bind("B", Matrix::Dense(rand_gen::random_dense(k, n, 12)));
    Pipeline {
        name: "trace_cyclic",
        expr: trace(mul(m("A"), m("B"))),
        cat,
        env,
        budget: ChaseBudget::default(),
    }
}

fn chain_pipeline(n: usize, k: usize) -> Pipeline {
    let mut cat = MetaCatalog::new();
    cat.register("A", MatrixMeta::dense(n, k));
    cat.register("B", MatrixMeta::dense(k, n));
    cat.register("x", MatrixMeta::dense(n, 1));
    let mut env = Env::new();
    env.bind("A", Matrix::Dense(rand_gen::random_dense(n, k, 21)));
    env.bind("B", Matrix::Dense(rand_gen::random_dense(k, n, 22)));
    env.bind("x", Matrix::Dense(rand_gen::random_dense(n, 1, 23)));
    Pipeline {
        name: "matvec_chain",
        expr: mul(mul(m("A"), m("B")), m("x")),
        cat,
        env,
        budget: ChaseBudget::default(),
    }
}

fn decomposition_pipeline(n: usize) -> Pipeline {
    let mut cat = MetaCatalog::new();
    cat.register("D", MatrixMeta::dense(n, n));
    let mut env = Env::new();
    env.bind("D", Matrix::Dense(rand_gen::random_invertible(n, 31)));
    Pipeline {
        name: "qr_reuse",
        expr: trace(mul(Expr::QrQ(Box::new(m("D"))), Expr::QrR(Box::new(m("D"))))),
        cat,
        env,
        budget: ChaseBudget::default(),
    }
}

/// Left-deep product chain with shrinking inner dimensions ending in a
/// vector: re-association to a right-deep chain collapses the flops by
/// orders of magnitude, and saturating the chain is the scaling stress for
/// the chase. The 12-chain only became tractable with conclusion-atom
/// reuse (core-chase style) — the fresh-null churn of the plain restricted
/// chase blew the fact budget by round five.
fn matmul_chain_pipeline(name: &'static str, dims: &[usize], budget: ChaseBudget) -> Pipeline {
    let mut cat = MetaCatalog::new();
    let mut env = Env::new();
    let mut expr: Option<Expr> = None;
    for i in 0..dims.len() - 1 {
        let mat_name = format!("M{}", i + 1);
        cat.register(&mat_name, MatrixMeta::dense(dims[i], dims[i + 1]));
        env.bind(
            &mat_name,
            Matrix::Dense(rand_gen::random_dense(dims[i], dims[i + 1], 41 + i as u64)),
        );
        let leaf = m(&mat_name);
        expr = Some(match expr {
            Some(e) => mul(e, leaf),
            None => leaf,
        });
    }
    Pipeline { name, expr: expr.unwrap(), cat, env, budget }
}

/// Sparse-input family (density ≤ 0.05, the paper's ultra-sparse regime):
/// the oracle's propagated `density` facts price the sparse products far
/// below their dense-shape flops, and the cast-aware estimates rank the
/// right-deep chain the winner just as in the dense families.
fn sparse_chain_pipeline(n: usize, density: f64) -> Pipeline {
    let s1 = Matrix::Sparse(rand_gen::random_sparse(n, n, density, 71));
    let s2 = Matrix::Sparse(rand_gen::random_sparse(n, n, density, 72));
    let mut cat = MetaCatalog::new();
    cat.register("S1", MatrixMeta::from_matrix(&s1));
    cat.register("S2", MatrixMeta::from_matrix(&s2));
    cat.register("x", MatrixMeta::dense(n, 1));
    let mut env = Env::new();
    env.bind("S1", s1);
    env.bind("S2", s2);
    env.bind("x", Matrix::Dense(rand_gen::random_dense(n, 1, 73)));
    Pipeline {
        name: "sparse_chain",
        expr: mul(mul(m("S1"), m("S2")), m("x")),
        cat,
        env,
        budget: ChaseBudget::default(),
    }
}

/// Ridge-regression normal equations: (XᵀX + λI)⁻¹ (Xᵀ y). The three-term
/// pipeline mixes transpose push-down, re-association, and an inverse, the
/// shape HADAD's ML workloads (paper §9) are built from.
fn ridge_pipeline(n: usize, d: usize) -> Pipeline {
    let mut cat = MetaCatalog::new();
    cat.register("X", MatrixMeta::dense(n, d));
    cat.register("y", MatrixMeta::dense(n, 1));
    let mut env = Env::new();
    env.bind("X", Matrix::Dense(rand_gen::random_dense(n, d, 51)));
    env.bind("y", Matrix::Dense(rand_gen::random_dense(n, 1, 52)));
    let gram = add(mul(t(m("X")), m("X")), smul(lit(0.5), Expr::Identity(d)));
    let expr = mul(inv(gram), mul(t(m("X")), m("y")));
    Pipeline { name: "ridge_normal_eq", expr, cat, env, budget: ChaseBudget::default() }
}

/// Quantiles of individually timed samples, in microseconds.
struct Measured {
    p50: f64,
    p95: f64,
}

/// Every timed sample across the bench lands in this histogram, so an
/// obs snapshot taken after the run carries the full exec distribution.
static EXEC_SAMPLES: hadad_obs::LazyHistogram = hadad_obs::LazyHistogram::new("bench.exec_us");

/// The one timing harness behind every `exec_us_*` field: one warm-up
/// call, then `reps` individually timed runs, each recorded into the
/// `bench.exec_us` histogram. Reported as p50/p95, not mean — a single
/// descheduled run would otherwise smear into every exec number and mask
/// kernel-level wins.
fn measure(reps: u32, mut f: impl FnMut()) -> Measured {
    f();
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            let us = start.elapsed().as_micros();
            EXEC_SAMPLES.record(us as u64);
            us as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p95_idx = ((samples.len() as f64 * 0.95).ceil() as usize).max(1) - 1;
    Measured { p50: samples[samples.len() / 2], p95: samples[p95_idx] }
}

/// Execution time of `e` on `backend` through [`measure`].
fn time_exec_on(e: &Expr, env: &Env, backend: &dyn ExecBackend, reps: u32) -> Measured {
    measure(reps, || {
        let _ = eval_with(e, env, backend).expect("pipeline evaluates");
    })
}

/// [`measure`]d execution on the default backend.
fn time_exec(e: &Expr, env: &Env, reps: u32) -> Measured {
    time_exec_on(e, env, hadad_linalg::default_backend(), reps)
}

/// Per-phase mean timings of `reps` rewrites, in microseconds.
struct RewriteTimings {
    total: f64,
    encode: f64,
    chase: f64,
    extract: f64,
    rank: f64,
}

fn time_rewrite(opt: &Optimizer, e: &Expr, reps: u32) -> (RankedPlans, RewriteTimings) {
    // One warm-up (also the result we report), then timed runs.
    let ranked = opt.rewrite(e).expect("rewrite succeeds");
    let start = Instant::now();
    let (mut encode, mut chase, mut extract, mut rank) = (0f64, 0f64, 0f64, 0f64);
    for _ in 0..reps {
        let r = opt.rewrite(e).expect("rewrite succeeds");
        encode += r.report.encode_us as f64;
        chase += r.report.chase_us as f64;
        extract += r.report.extract_us as f64;
        rank += r.report.rank_us as f64;
    }
    let total = start.elapsed().as_micros() as f64 / reps as f64;
    let r = reps as f64;
    let timings = RewriteTimings {
        total,
        encode: encode / r,
        chase: chase / r,
        extract: extract / r,
        rank: rank / r,
    };
    (ranked, timings)
}

/// The hybrid family (paper §9.2, tweet flavour): a topic filter over a
/// synthetic tweets table, PACB-rewritten onto a materialized filtered
/// view, cast to the ultra-sparse filter-level matrix `N`, with the `Nᵀ w`
/// suffix rewritten onto the materialized `NT` view. Returns the JSON row
/// plus the mean end-to-end rewrite time for the tracked series.
fn hybrid_family(reps: u32) -> (String, f64) {
    let n_tweets = 4000usize;
    let n_topics = 40usize;
    let covid = 7i64;

    let n = n_tweets as i64;
    let tweets = Table::new(vec![
        ("tid", Column::Int((0..n).collect())),
        ("topic", Column::Int((0..n).map(|i| i % n_topics as i64).collect())),
        ("level", Column::Int((0..n).map(|i| i % 5 + 1).collect())),
    ]);
    let mut catalog = Catalog::new();
    catalog.register("tweets", tweets);

    let mut la_cat = MetaCatalog::new();
    la_cat.register("w", MatrixMeta::dense(n_tweets, 1));
    let mut hy = HybridOptimizer::new(catalog.clone(), Optimizer::new(la_cat.clone()));
    hy.register_table_view("covid_tweets", RelQuery::scan("tweets").select_eq("topic", covid))
        .expect("view materializes");
    hy.register_la_view("NT", t(m("N"))).unwrap();
    // Prune_prov-off baseline for the LA suffix (same catalog + views).
    let mut hy_off =
        HybridOptimizer::new(catalog, Optimizer::new(la_cat).with_prune(PruneMode::Off));
    hy_off
        .register_table_view("covid_tweets", RelQuery::scan("tweets").select_eq("topic", covid))
        .expect("view materializes");
    hy_off.register_la_view("NT", t(m("N"))).unwrap();

    let pipeline = HybridPipeline {
        prefix: RelQuery::scan("tweets").select_eq("topic", covid),
        sort_key: None,
        cast: CastKind::Sparse {
            row: "tid".into(),
            col: "topic".into(),
            val: "level".into(),
            rows: n_tweets,
            cols: n_topics,
        },
        cast_name: "N".into(),
        suffix: mul(t(m("N")), m("w")),
    };
    let mut env = Env::new();
    env.bind("w", Matrix::Dense(rand_gen::random_dense(n_tweets, 1, 61)));

    // One verified warm-up carries the result fields (a pruning-off
    // warm-up baselines the firing counts); unverified reps carry the
    // per-phase timings, with the off engine timed over the same warm
    // reps so pruned and unpruned chase numbers are comparable.
    let verified =
        hy.rewrite_hybrid_verified(&pipeline, &env, 1e-9).expect("hybrid pipeline rewrites");
    let off = hy_off.rewrite_hybrid(&pipeline).expect("hybrid pipeline rewrites");
    let firings: usize =
        verified.ranked.report.chase_stats.tgd_firings.iter().map(|(_, n)| n).sum();
    let nopruning_firings: usize =
        off.ranked.report.chase_stats.tgd_firings.iter().map(|(_, n)| n).sum();
    let start = Instant::now();
    let (mut pacb, mut rel_exec, mut cast_t, mut encode, mut chase, mut extract, mut rank) =
        (0f64, 0f64, 0f64, 0f64, 0f64, 0f64, 0f64);
    for _ in 0..reps {
        let r = hy.rewrite_hybrid(&pipeline).expect("hybrid pipeline rewrites");
        pacb += r.rel.pacb_us as f64;
        rel_exec += r.rel.exec_us as f64;
        cast_t += r.cast_us as f64;
        encode += r.ranked.report.encode_us as f64;
        chase += r.ranked.report.chase_us as f64;
        extract += r.ranked.report.extract_us as f64;
        rank += r.ranked.report.rank_us as f64;
    }
    let total = start.elapsed().as_micros() as f64 / reps as f64;
    let rf = reps as f64;
    let mut nopruning_chase = 0f64;
    for _ in 0..reps {
        let r = hy_off.rewrite_hybrid(&pipeline).expect("hybrid pipeline rewrites");
        nopruning_chase += r.ranked.report.chase_us as f64;
    }

    println!(
        "{:<16} {:>8.0}us rewrite (pacb {:.0} rel-exec {:.0} cast {:.0} enc {:.0} chase {:.0} ext {:.0} rank {:.0}) | {} -> {} | rel rows {} -> {} | verified: {:?}",
        "hybrid_tweets",
        total,
        pacb / rf,
        rel_exec / rf,
        cast_t / rf,
        encode / rf,
        chase / rf,
        extract / rf,
        rank / rf,
        pipeline.suffix,
        verified.best.expr,
        verified.rel.cost_original,
        verified.rel.rows_out,
        verified.verified,
    );

    let row = format!(
        concat!(
            "    {{\"pipeline\": \"hybrid_tweets\", \"nodes\": {}, \"rewrite_us\": {:.1}, ",
            "\"pacb_us\": {:.1}, \"rel_exec_us\": {:.1}, \"cast_us\": {:.1}, ",
            "\"encode_us\": {:.1}, \"chase_us\": {:.1}, \"extract_us\": {:.1}, ",
            "\"rank_us\": {:.1}, \"nopruning_chase_us\": {:.1}, \"tgd_firings\": {}, ",
            "\"nopruning_tgd_firings\": {}, \"pruned_firings\": {}, ",
            "\"rel_cost_original\": {:.1}, \"rel_cost_best\": {}, ",
            "\"rel_rewritten\": {}, \"rel_rows_out\": {}, \"original\": \"{}\", ",
            "\"best\": \"{}\", \"est_cost_original\": {:.1}, \"est_cost_best\": {:.1}, ",
            "\"equivalent\": {}}}"
        ),
        pipeline.suffix.node_count(),
        total,
        pacb / rf,
        rel_exec / rf,
        cast_t / rf,
        encode / rf,
        chase / rf,
        extract / rf,
        rank / rf,
        nopruning_chase / rf,
        firings,
        nopruning_firings,
        verified.ranked.report.pruned_firings,
        verified.rel.cost_original,
        // `null`, not NaN: NaN is not valid JSON and breaks strict parsers.
        verified.rel.cost_best.map_or("null".to_owned(), |c| format!("{c:.1}")),
        verified.rel.rewriting.is_some(),
        verified.rel.rows_out,
        pipeline.suffix,
        verified.best.expr,
        verified.ranked.original.est_cost,
        verified.best.est_cost,
        verified.verified == Some(true),
    );
    (row, total)
}

/// Raw-kernel micro-bench: a 512×512 dense GEMM timed under each backend.
/// No rewriting is involved — this family isolates kernel speed, the
/// multiplier under every other family's exec numbers. Returns the JSON
/// row plus the two medians for the tracked series.
fn dense_gemm_family(reps: u32) -> (String, f64, f64) {
    let n = 512usize;
    let mut env = Env::new();
    env.bind("G1", Matrix::Dense(rand_gen::random_dense(n, n, 81)));
    env.bind("G2", Matrix::Dense(rand_gen::random_dense(n, n, 82)));
    let e = mul(m("G1"), m("G2"));
    let reference = time_exec_on(&e, &env, &REFERENCE, reps);
    let parallel = time_exec_on(&e, &env, &PARALLEL, reps);
    let threads = PARALLEL.threads();
    println!(
        "{:<16} exec reference {:>8.0}us vs parallel {:>8.0}us ({:.2}x, {} threads)",
        "dense_gemm512",
        reference.p50,
        parallel.p50,
        reference.p50 / parallel.p50.max(1.0),
        threads,
    );
    let row = format!(
        concat!(
            "    {{\"pipeline\": \"dense_gemm512\", \"n\": {}, ",
            "\"exec_us_reference\": {:.1}, \"exec_us_reference_p95\": {:.1}, ",
            "\"exec_us_parallel\": {:.1}, \"exec_us_parallel_p95\": {:.1}, ",
            "\"speedup\": {:.2}, \"threads\": {}, ",
            "\"tgd_firings\": 0, \"nopruning_tgd_firings\": 0}}"
        ),
        n,
        reference.p50,
        reference.p95,
        parallel.p50,
        parallel.p95,
        reference.p50 / parallel.p50.max(1.0),
        threads,
    );
    (row, reference.p50, parallel.p50)
}

/// Total TGD firings across every rule of a rewrite's chase.
fn total_firings(ranked: &RankedPlans) -> usize {
    ranked.report.chase_stats.tgd_firings.iter().map(|(_, n)| n).sum()
}

use hadad_relational::ivm::table_fingerprint;

/// The update-heavy family: a covid-filter view plus maintained sparse
/// cast over a 200k-row tweets table, hit with 1% insert/delete batches.
/// Delta maintenance must beat full re-materialization (re-execute the
/// definition + re-cast + re-stamp metadata) by >= 10x, and the maintained
/// `scan_cost` cardinality and cast metadata must match a from-scratch
/// materialization exactly. Returns the JSON row plus the two timings for
/// the tracked series.
fn ivm_family(reps: u32) -> (String, f64, f64) {
    let n_tweets = 200_000usize;
    let n_topics = 200usize; // hashtag-like cardinality: the view is 0.5%
    let covid = 7i64;
    let cast_rows = 210_000usize; // headroom so inserted tids stay in range
    let batch = n_tweets / 200; // 1000 inserts + 1000 deletes = 1% of rows

    let n = n_tweets as i64;
    let tweets = Table::new(vec![
        ("tid", Column::Int((0..n).collect())),
        ("topic", Column::Int((0..n).map(|i| i % n_topics as i64).collect())),
        ("level", Column::Int((0..n).map(|i| i % 5 + 1).collect())),
    ]);
    let mut catalog = Catalog::new();
    catalog.register("tweets", tweets);
    let mut hy = HybridOptimizer::new(catalog, Optimizer::new(MetaCatalog::new()));
    let def = RelQuery::scan("tweets").select_eq("topic", covid);
    hy.register_table_view("covid_tweets", def.clone()).expect("view materializes");
    let cast = CastKind::Sparse {
        row: "tid".into(),
        col: "topic".into(),
        val: "level".into(),
        rows: cast_rows,
        cols: n_topics,
    };
    hy.register_maintained_cast(MaintainedCast {
        cast_name: "N".into(),
        view: "covid_tweets".into(),
        sort_key: None,
        cast: cast.clone(),
    })
    .expect("cast stamps");

    // 1% batch: fresh tweets (a covid share among them) + deletes spread
    // across existing rows (tid*97 stays < 200k and distinct).
    let inserts: Vec<Vec<Value>> = (0..batch as i64)
        .map(|i| {
            let tid = n + i;
            vec![Value::Int(tid), Value::Int(tid % n_topics as i64), Value::Int(tid % 5 + 1)]
        })
        .collect();
    let deletes: Vec<Vec<Value>> = (0..batch as i64)
        .map(|i| {
            let tid = i * 97;
            vec![Value::Int(tid), Value::Int(tid % n_topics as i64), Value::Int(tid % 5 + 1)]
        })
        .collect();

    let (mut maintain, mut restamp, mut reexec, mut remat) = (0f64, 0f64, 0f64, 0f64);
    let mut meta_ok = true;
    for rep in 0..reps {
        // Apply the batch through the raw (logged) catalog API, then run
        // the maintenance pass: delta propagation + cast re-stamp, timed
        // separately in the report.
        hy.catalog.insert_rows("tweets", inserts.clone()).expect("inserts apply");
        hy.catalog.delete_rows("tweets", deletes.clone()).expect("deletes apply");
        let report = hy.maintain_views().expect("maintenance succeeds");
        maintain += report.maintain_us as f64;
        restamp += report.restamp_us as f64;
        assert!(report.rows_touched() > 0, "the batch must touch the view");

        // Full re-materialization of the same post-update state: re-run
        // the definition (the cost IVM replaces), then re-cast and
        // re-stamp the metadata (the cost the maintained cast replaces).
        let t1 = Instant::now();
        let scratch = def.execute(&hy.catalog).expect("definition re-executes");
        reexec += t1.elapsed().as_micros() as f64;
        let scratch_mat = match &cast {
            CastKind::Sparse { row, col, val, rows, cols } => {
                hadad_relational::cast::table_to_sparse(&scratch, row, col, val, *rows, *cols)
            }
            _ => unreachable!(),
        };
        let scratch_meta = MatrixMeta::from_matrix(&scratch_mat);
        remat += t1.elapsed().as_micros() as f64;

        if rep == 0 {
            // Exactness: maintained view == from-scratch as a multiset,
            // and scan_cost / cast metadata agree exactly.
            let maintained = hy.catalog.get("covid_tweets").expect("view registered");
            meta_ok &= table_fingerprint(maintained) == table_fingerprint(&scratch);
            meta_ok &= hy.catalog.scan_cost(["covid_tweets"]) == scratch.num_rows() as f64;
            let stamped = hy.optimizer.cat.get("N").expect("cast stamped").clone();
            meta_ok &= stamped.nnz == scratch_meta.nnz
                && (stamped.rows, stamped.cols) == (scratch_meta.rows, scratch_meta.cols)
                && stamped.density() == scratch_meta.density()
                && stamped.mnc.as_ref().map(hadad_core::MncHistogram::nnz)
                    == scratch_meta.mnc.as_ref().map(hadad_core::MncHistogram::nnz);
            assert!(meta_ok, "maintained state diverged from from-scratch materialization");
        }

        // Undo the batch (maintained, untimed) so every rep sees the same
        // baseline state.
        hy.delete_rows("tweets", inserts.clone()).expect("undo inserts");
        hy.insert_rows("tweets", deletes.clone()).expect("undo deletes");
    }
    let rf = reps as f64;
    let (maintain_us, restamp_us) = (maintain / rf, restamp / rf);
    let (reexec_us, remat_us) = (reexec / rf, remat / rf);
    let speedup = reexec_us / maintain_us.max(1.0);
    println!(
        "{:<16} maintain {:>6.0}us vs re-exec {:>6.0}us ({:.1}x) | +restamp {:.0}us vs full remat {:.0}us | {} rows, 2x{} batch, view {} rows | meta exact: {}",
        "ivm_updates",
        maintain_us,
        reexec_us,
        speedup,
        restamp_us,
        remat_us,
        n_tweets,
        batch,
        hy.catalog.cardinality("covid_tweets").unwrap(),
        meta_ok,
    );
    // Acceptance bar: delta-maintaining the view is >= 10x faster than
    // re-executing its RelQuery, and the whole maintenance pass (including
    // the cast re-stamp) still beats full re-materialization.
    assert!(
        maintain_us * 10.0 <= reexec_us,
        "delta maintenance ({maintain_us:.0}us) is not >= 10x cheaper than re-execution ({reexec_us:.0}us)"
    );
    assert!(
        maintain_us + restamp_us < remat_us,
        "maintenance + restamp ({:.0}us) is not cheaper than full re-materialization ({remat_us:.0}us)",
        maintain_us + restamp_us,
    );

    let row = format!(
        concat!(
            "    {{\"pipeline\": \"ivm_updates\", \"rows_base\": {}, \"batch_rows\": {}, ",
            "\"view_rows\": {}, \"maintain_us\": {:.1}, \"restamp_us\": {:.1}, ",
            "\"reexec_us\": {:.1}, \"remat_us\": {:.1}, ",
            "\"speedup\": {:.1}, \"meta_exact\": {}, ",
            "\"tgd_firings\": 0, \"nopruning_tgd_firings\": 0}}"
        ),
        n_tweets,
        2 * batch,
        hy.catalog.cardinality("covid_tweets").unwrap(),
        maintain_us,
        restamp_us,
        reexec_us,
        remat_us,
        speedup,
        meta_ok,
    );
    (row, maintain_us, reexec_us)
}

/// Deadline-bounded anytime rewriting on the hardest LA family: the
/// 12-chain under a 1 ms wall-clock deadline. The emitted row records what
/// the cut costs — the degraded best plan's estimated cost against the
/// unbounded search's best — and proves the anytime contract (the call
/// returns `Ok`, and the verified plan never prices above the unrewritten
/// expression). Returns the JSON row, the degraded-vs-full cost ratio, and
/// the bounded call's wall time for the tracked series.
fn deadline_family() -> (String, f64, f64) {
    let p = matmul_chain_pipeline(
        "deadline_rewrite",
        &[96, 88, 80, 64, 48, 40, 36, 24, 16, 12, 6, 4, 1],
        ChaseBudget { max_rounds: 20, max_facts: 60_000, max_nulls: 30_000, deadline: None },
    );
    let full = Optimizer::new(p.cat.clone())
        .with_budget(p.budget)
        .rewrite(&p.expr)
        .expect("unbounded rewrite");
    let opt = Optimizer::new(p.cat.clone())
        .with_budget(p.budget)
        .with_deadline(std::time::Duration::from_millis(1));
    let t0 = Instant::now();
    let (ranked, plan, _) =
        opt.rewrite_verified(&p.expr, &p.env, 1e-9).expect("deadline rewrite returns Ok");
    let rewrite_us = t0.elapsed().as_micros();
    assert!(
        plan.est_cost <= ranked.original.est_cost,
        "anytime plan ({}) priced above the unrewritten expression ({})",
        plan.est_cost,
        ranked.original.est_cost,
    );
    let ratio = plan.est_cost / full.best().est_cost.max(1.0);
    let degraded = ranked.report.degraded.is_some();
    println!(
        "deadline_rewrite 1ms on 12-chain: degraded {} | est cost {:.0} vs full {:.0} (x{:.2}) | {}us wall",
        degraded,
        plan.est_cost,
        full.best().est_cost,
        ratio,
        rewrite_us,
    );
    let row = format!(
        concat!(
            "    {{\"pipeline\": \"deadline_rewrite\", \"deadline_ms\": 1, ",
            "\"degraded\": {}, \"rewrite_us\": {}, \"est_cost_original\": {:.1}, ",
            "\"est_cost_degraded\": {:.1}, \"est_cost_full\": {:.1}, ",
            "\"degraded_vs_full_ratio\": {:.3}, ",
            "\"tgd_firings\": 0, \"nopruning_tgd_firings\": 0}}"
        ),
        degraded,
        rewrite_us,
        ranked.original.est_cost,
        plan.est_cost,
        full.best().est_cost,
        ratio,
    );
    (row, ratio, rewrite_us as f64)
}

/// The plan-cache duel (rewrite-as-a-service): the 12-chain suffix behind
/// a trivial relational prefix, rewritten three ways on one
/// [`HybridOptimizer`] whose LA optimizer carries a [`PlanCache`]
/// (`hadad_rewrite::PlanCache`): **cold** (first call — full encode →
/// chase → extract pass, entry inserted), **warm** (every later call at
/// the same catalog epoch is served from the cache), and **invalidated**
/// (a base-table insert bumps the epoch, so the next probe refuses the
/// stale entry and re-runs cold, warm-starting extraction from the
/// refused entry's DP table). Returns the JSON row, the warm-hit mean,
/// and the hit rate for the tracked series.
fn cached_family(reps: u32) -> (String, f64, f64) {
    let chain = matmul_chain_pipeline(
        "cached_rewrite",
        &[96, 88, 80, 64, 48, 40, 36, 24, 16, 12, 6, 4, 1],
        ChaseBudget { max_rounds: 20, max_facts: 60_000, max_nulls: 30_000, deadline: None },
    );
    let events = Table::new(vec![
        ("eid", Column::Int((0..64).collect())),
        ("kind", Column::Int((0..64).map(|i| i % 4).collect())),
    ]);
    let mut catalog = Catalog::new();
    catalog.register("events", events);
    let mut hy = HybridOptimizer::new(
        catalog,
        Optimizer::new(chain.cat.clone()).with_budget(chain.budget).with_plan_cache(64),
    );
    hy.register_table_view("spikes", RelQuery::scan("events").select_eq("kind", 3))
        .expect("view materializes");
    // The sparse cast reuses "kind" as its value column (any numeric
    // column works — the suffix never touches the cast matrix).
    let pipeline = HybridPipeline {
        prefix: RelQuery::scan("events").select_eq("kind", 3),
        sort_key: None,
        cast: CastKind::Sparse {
            row: "eid".into(),
            col: "kind".into(),
            val: "kind".into(),
            rows: 128,
            cols: 4,
        },
        cast_name: "E".into(),
        suffix: chain.expr.clone(),
    };

    let cold = hy.rewrite_hybrid(&pipeline).expect("cold hybrid rewrite");
    assert!(!cold.ranked.report.cache.hit, "first rewrite must miss the plan cache");
    let cold_us = cold.ranked.report.elapsed_us as f64;

    let mut warm = 0f64;
    for _ in 0..reps {
        let r = hy.rewrite_hybrid(&pipeline).expect("warm hybrid rewrite");
        assert!(r.ranked.report.cache.hit, "same-epoch repeat must hit the plan cache");
        assert_eq!(
            r.best.expr, cold.best.expr,
            "cache-served plan differs from the cold-path plan"
        );
        warm += r.ranked.report.elapsed_us as f64;
    }
    let cache_hit_us = warm / f64::from(reps.max(1));

    // A base-table insert bumps the catalog epoch (maintenance included):
    // the entry is now stale and the very next rewrite must refuse it.
    hy.insert_rows("events", vec![vec![Value::Int(64), Value::Int(3)]])
        .expect("insert applies");
    let inval = hy.rewrite_hybrid(&pipeline).expect("post-update hybrid rewrite");
    let post_update_hit = inval.ranked.report.cache.hit;
    assert!(!post_update_hit, "stale-epoch entry served after a base-table update");
    let invalidated_us = inval.ranked.report.elapsed_us as f64;
    // The cold re-run re-primed the cache at the new epoch.
    let rehit = hy.rewrite_hybrid(&pipeline).expect("re-primed hybrid rewrite");
    assert!(rehit.ranked.report.cache.hit, "re-primed entry must serve at the new epoch");

    let report = rehit.ranked.report.cache;
    let cache_hit_rate = report.hits as f64 / (report.hits + report.misses).max(1) as f64;
    assert!(
        cache_hit_us * 20.0 <= cold_us,
        "warm hit ({cache_hit_us:.0}us) is not >= 20x faster than cold ({cold_us:.0}us)"
    );
    println!(
        "{:<16} cold {:>8.0}us vs warm hit {:>6.1}us ({:.0}x) | invalidated {:.0}us | hit rate {:.2} ({} hits / {} misses / {} evictions)",
        "cached_rewrite",
        cold_us,
        cache_hit_us,
        cold_us / cache_hit_us.max(1.0),
        invalidated_us,
        cache_hit_rate,
        report.hits,
        report.misses,
        report.evictions,
    );
    let row = format!(
        concat!(
            "    {{\"pipeline\": \"cached_rewrite\", \"nodes\": {}, \"cold_us\": {:.1}, ",
            "\"cache_hit_us\": {:.1}, \"invalidated_us\": {:.1}, \"speedup\": {:.1}, ",
            "\"cache_hit_rate\": {:.3}, \"hits\": {}, \"misses\": {}, \"evictions\": {}, ",
            "\"post_update_hit\": {}, ",
            "\"tgd_firings\": 0, \"nopruning_tgd_firings\": 0}}"
        ),
        pipeline.suffix.node_count(),
        cold_us,
        cache_hit_us,
        invalidated_us,
        cold_us / cache_hit_us.max(1.0),
        cache_hit_rate,
        report.hits,
        report.misses,
        report.evictions,
        post_update_hit,
    );
    (row, cache_hit_us, cache_hit_rate)
}

/// Instrumentation-overhead duel (tracked in the series row): every LA
/// family rewritten with the tracing gate forced **off**, then forced
/// **on**. The off numbers are the always-on-metrics / unarmed-spans cost
/// the 3%-regression CI check watches across commits; the on/off ratio
/// prices arming `HADAD_TRACE` at runtime. Returns per-family
/// `(name, total_us)` pairs for the off and on runs, in LA-family order.
#[allow(clippy::type_complexity)]
fn trace_overhead_duel(
    pipelines: &[Pipeline],
    reps: u32,
) -> (Vec<(String, f64)>, Vec<(String, f64)>) {
    let mut off = Vec::new();
    let mut on = Vec::new();
    for p in pipelines {
        let opt = Optimizer::new(p.cat.clone()).with_budget(p.budget);
        hadad_obs::set_tracing(false);
        let (_, tm_off) = time_rewrite(&opt, &p.expr, reps);
        hadad_obs::set_tracing(true);
        let (_, tm_on) = time_rewrite(&opt, &p.expr, reps);
        hadad_obs::set_tracing(false);
        off.push((p.name.to_string(), tm_off.total));
        on.push((p.name.to_string(), tm_on.total));
    }
    let off_total: f64 = off.iter().map(|(_, us)| us).sum();
    let on_total: f64 = on.iter().map(|(_, us)| us).sum();
    println!(
        "{:<16} off {:>8.0}us vs on {:>8.0}us across {} LA families (x{:.3} armed)",
        "trace_overhead",
        off_total,
        on_total,
        pipelines.len(),
        on_total / off_total.max(1.0),
    );
    (off, on)
}

/// Everything one tracked series row carries beyond the commit stamp:
/// per-LA-family chase medians, the IVM maintenance duel, the
/// sparse-chain / dense-GEMM backend duels, and the deadline family's
/// degraded-vs-full plan cost ratio.
struct SeriesData<'a> {
    chase: &'a [(String, f64)],
    /// One headline number per family, in [`FAMILIES`] order: rewrite
    /// total for the LA families, parallel exec for `dense_gemm512`,
    /// end-to-end rewrite for `hybrid_tweets`, `maintain_us` for
    /// `ivm_updates`, bounded wall time for `deadline_rewrite`, and the
    /// warm-hit mean for `cached_rewrite`.
    headline: &'a [(String, f64)],
    maintain_us: f64,
    reexec_us: f64,
    /// Unrewritten sparse_chain exec under (reference, parallel).
    sparse_exec: (f64, f64),
    /// 512×512 dense GEMM exec under (reference, parallel).
    gemm_exec: (f64, f64),
    /// Best-plan cost of the 1 ms-deadline 12-chain over the unbounded
    /// search's best (1.0 = the cut was free).
    deadline_ratio: f64,
    /// Mean plan-cache warm-hit serve time on the 12-chain.
    cache_hit_us: f64,
    /// Plan-cache hit rate over the cached_rewrite family's calls.
    cache_hit_rate: f64,
    /// Per-LA-family rewrite totals with the tracing gate forced off —
    /// the instrumentation cost a disabled `HADAD_TRACE` still pays.
    trace_off: &'a [(String, f64)],
    /// Same families with the gate armed (spans recorded into rings).
    trace_on: &'a [(String, f64)],
    threads: usize,
}

/// Appends one commit-stamped row to the tracked per-PR series
/// `BENCH_series.jsonl` — the cross-commit perf trajectory CI uploads.
/// Each row carries every family's headline number: chase_us per LA
/// family, the IVM maintenance timings, and the per-backend kernel execs.
fn append_series_row(data: &SeriesData<'_>) {
    let commit = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map_or_else(
            || "unknown".into(),
            |o| String::from_utf8_lossy(&o.stdout).trim().to_string(),
        );
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let families: Vec<String> = FAMILIES.iter().map(|f| format!("\"{f}\"")).collect();
    let chase_map: Vec<String> =
        data.chase.iter().map(|(name, us)| format!("\"{name}\": {us:.1}")).collect();
    let headline_map: Vec<String> =
        data.headline.iter().map(|(name, us)| format!("\"{name}\": {us:.1}")).collect();
    let (sparse_ref, sparse_par) = data.sparse_exec;
    let (gemm_ref, gemm_par) = data.gemm_exec;
    let trace_off_map: Vec<String> =
        data.trace_off.iter().map(|(name, us)| format!("\"{name}\": {us:.1}")).collect();
    let trace_on_map: Vec<String> =
        data.trace_on.iter().map(|(name, us)| format!("\"{name}\": {us:.1}")).collect();
    let trace_off_total: f64 = data.trace_off.iter().map(|(_, us)| us).sum();
    let trace_on_total: f64 = data.trace_on.iter().map(|(_, us)| us).sum();
    let line = format!(
        concat!(
            "{{\"commit\": \"{}\", \"ts_unix\": {}, \"families\": [{}], ",
            "\"chase_us\": {{{}}}, \"headline_us\": {{{}}}, ",
            "\"ivm_maintain_us\": {:.1}, \"ivm_reexec_us\": {:.1}, \"ivm_speedup\": {:.1}, ",
            "\"sparse_chain_exec_us\": {{\"reference\": {:.1}, \"parallel\": {:.1}}}, ",
            "\"dense_gemm512_exec_us\": {{\"reference\": {:.1}, \"parallel\": {:.1}}}, ",
            "\"deadline_cost_ratio\": {:.3}, ",
            "\"cache_hit_us\": {:.1}, \"cache_hit_rate\": {:.3}, ",
            "\"trace_off_us\": {{{}}}, \"trace_on_us\": {{{}}}, ",
            "\"trace_off_total_us\": {:.1}, \"trace_on_total_us\": {:.1}, ",
            "\"trace_overhead_ratio\": {:.3}, ",
            "\"threads\": {}}}\n"
        ),
        commit,
        ts,
        families.join(", "),
        chase_map.join(", "),
        headline_map.join(", "),
        data.maintain_us,
        data.reexec_us,
        data.reexec_us / data.maintain_us.max(1.0),
        sparse_ref,
        sparse_par,
        gemm_ref,
        gemm_par,
        data.deadline_ratio,
        data.cache_hit_us,
        data.cache_hit_rate,
        trace_off_map.join(", "),
        trace_on_map.join(", "),
        trace_off_total,
        trace_on_total,
        trace_on_total / trace_off_total.max(1.0),
        data.threads,
    );
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open("BENCH_series.jsonl")
        .expect("open BENCH_series.jsonl");
    f.write_all(line.as_bytes()).expect("append BENCH_series.jsonl");
}

fn main() {
    let pipelines = vec![
        trace_pipeline(400, 8),
        chain_pipeline(300, 40),
        decomposition_pipeline(60),
        matmul_chain_pipeline(
            "matmul_chain8",
            &[96, 80, 64, 48, 36, 24, 12, 6, 1],
            ChaseBudget::default(),
        ),
        matmul_chain_pipeline(
            "matmul_chain12",
            &[96, 88, 80, 64, 48, 40, 36, 24, 16, 12, 6, 4, 1],
            ChaseBudget {
                max_rounds: 20,
                max_facts: 60_000,
                max_nulls: 30_000,
                deadline: None,
            },
        ),
        sparse_chain_pipeline(2000, 0.01),
        ridge_pipeline(200, 30),
    ];

    let mut rows = Vec::new();
    // Per-family chase medians and the sparse_chain backend duel, collected
    // for the tracked series row.
    let mut series_chase: Vec<(String, f64)> = Vec::new();
    let mut series_headline: Vec<(String, f64)> = Vec::new();
    let mut sparse_exec: Option<(f64, f64)> = None;
    for p in &pipelines {
        // Default engine: semi-naïve + Prune_prov. The acceptance bar is
        // that even the 12-chain saturates (conclusion-atom reuse).
        let opt = Optimizer::new(p.cat.clone()).with_budget(p.budget);
        let nopruning_opt =
            Optimizer::new(p.cat.clone()).with_budget(p.budget).with_prune(PruneMode::Off);
        let naive_opt =
            Optimizer::new(p.cat.clone()).with_budget(p.budget).with_mode(EvalMode::Naive);
        let reps = 5;
        let (ranked, tm) = time_rewrite(&opt, &p.expr, reps);
        let (nopruning_ranked, nopruning_tm) = time_rewrite(&nopruning_opt, &p.expr, reps);
        let (naive_ranked, naive_tm) = time_rewrite(&naive_opt, &p.expr, reps);

        let stats = &ranked.report.chase_stats;
        let matches = stats.matches_enumerated();
        let naive_matches = naive_ranked.report.chase_stats.matches_enumerated();
        let firings = total_firings(&ranked);
        let nopruning_firings = total_firings(&nopruning_ranked);
        // Same tolerance as the equivalence property test: pruning may
        // break an extraction tie differently, so costs are compared up
        // to float rounding, not bit-for-bit.
        let (cp, co) = (ranked.best().est_cost, nopruning_ranked.best().est_cost);
        assert!(
            (cp - co).abs() <= 1e-6 * co.abs().max(1.0),
            "{}: pruning changed the best plan cost ({cp} vs {co})",
            p.name
        );

        let best = ranked.best().clone();
        let equivalent = opt
            .check_equivalent(&p.expr, &best.expr, &p.env, 1e-9)
            .expect("both plans evaluate");
        let orig_exec = time_exec(&p.expr, &p.env, 5);
        let best_exec = time_exec(&best.expr, &p.env, 5);
        series_chase.push((p.name.to_string(), tm.chase));
        series_headline.push((p.name.to_string(), tm.total));

        // The headline kernel duel: the *unrewritten* sparse chain under
        // each backend (direct-CSR SpGEMM assembly vs triplet-sort).
        let extra = if p.name == "sparse_chain" {
            let reference = time_exec_on(&p.expr, &p.env, &REFERENCE, 5);
            let parallel = time_exec_on(&p.expr, &p.env, &PARALLEL, 5);
            sparse_exec = Some((reference.p50, parallel.p50));
            println!(
                "  unrewritten exec: reference {:.0}us vs parallel {:.0}us ({:.2}x, {} threads)",
                reference.p50,
                parallel.p50,
                reference.p50 / parallel.p50.max(1.0),
                PARALLEL.threads(),
            );
            format!(
                concat!(
                    ", \"exec_us_reference\": {:.1}, \"exec_us_reference_p95\": {:.1}",
                    ", \"exec_us_parallel\": {:.1}, \"exec_us_parallel_p95\": {:.1}",
                    ", \"threads\": {}"
                ),
                reference.p50,
                reference.p95,
                parallel.p50,
                parallel.p95,
                PARALLEL.threads(),
            )
        } else {
            String::new()
        };

        println!(
            "{:<16} {:>8.0}us rewrite (enc {:.0} chase {:.0} ext {:.0} rank {:.0}) | {} -> {} | est x{:.1} | exec {:.0}us -> {:.0}us | equivalent: {}",
            p.name,
            tm.total,
            tm.encode,
            tm.chase,
            tm.extract,
            tm.rank,
            p.expr,
            best.expr,
            ranked.est_speedup(),
            orig_exec.p50,
            best_exec.p50,
            equivalent,
        );
        println!(
            "  chase: {:?} in {} rounds | matches semi-naive {} vs naive {} ({:.1}x) | chase {:.0}us vs naive {:.0}us ({:.1}x)",
            ranked.report.chase_outcome,
            ranked.report.chase_rounds,
            matches,
            naive_matches,
            naive_matches as f64 / matches.max(1) as f64,
            tm.chase,
            naive_tm.chase,
            naive_tm.chase / tm.chase.max(1.0),
        );
        println!(
            "  pruning: {} vetoes | firings {} (pruned) vs {} (off) | chase {:.0}us vs {:.0}us off",
            ranked.report.pruned_firings,
            firings,
            nopruning_firings,
            tm.chase,
            nopruning_tm.chase,
        );
        println!("  round deltas: {:?}", stats.round_deltas);
        let mut top_rules: Vec<&(String, u64)> =
            stats.rule_matches.iter().filter(|(_, n)| *n > 0).collect();
        top_rules.sort_by_key(|r| std::cmp::Reverse(r.1));
        let summary: Vec<String> =
            top_rules.iter().take(5).map(|(name, n)| format!("{name}={n}")).collect();
        println!("  top rules by matches: {}", summary.join(" "));

        rows.push(format!(
            concat!(
                "    {{\"pipeline\": \"{}\", \"nodes\": {}, \"rewrite_us\": {:.1}, ",
                "\"encode_us\": {:.1}, \"chase_us\": {:.1}, \"extract_us\": {:.1}, ",
                "\"rank_us\": {:.1}, \"naive_chase_us\": {:.1}, ",
                "\"nopruning_chase_us\": {:.1}, \"tgd_firings\": {}, ",
                "\"nopruning_tgd_firings\": {}, \"pruned_firings\": {}, ",
                "\"chase_matches\": {}, \"naive_chase_matches\": {}, ",
                "\"chase_rounds\": {}, \"saturated\": {}, ",
                "\"candidates\": {}, \"chase_facts\": {}, \"original\": \"{}\", ",
                "\"best\": \"{}\", \"est_cost_original\": {:.1}, \"est_cost_best\": {:.1}, ",
                "\"exec_us_original\": {:.1}, \"exec_us_original_p95\": {:.1}, ",
                "\"exec_us_best\": {:.1}, \"exec_us_best_p95\": {:.1}, ",
                "\"equivalent\": {}{}}}"
            ),
            p.name,
            p.expr.node_count(),
            tm.total,
            tm.encode,
            tm.chase,
            tm.extract,
            tm.rank,
            naive_tm.chase,
            nopruning_tm.chase,
            firings,
            nopruning_firings,
            ranked.report.pruned_firings,
            matches,
            naive_matches,
            ranked.report.chase_rounds,
            ranked.report.chase_outcome == ChaseOutcome::Saturated,
            ranked.report.num_candidates,
            ranked.report.num_facts,
            p.expr,
            best.expr,
            ranked.original.est_cost,
            best.est_cost,
            orig_exec.p50,
            orig_exec.p95,
            best_exec.p50,
            best_exec.p95,
            equivalent,
            extra,
        ));
    }

    let (gemm_row, gemm_reference_us, gemm_parallel_us) = dense_gemm_family(5);
    rows.push(gemm_row);
    series_headline.push(("dense_gemm512".into(), gemm_parallel_us));
    let (hybrid_row, hybrid_total_us) = hybrid_family(5);
    rows.push(hybrid_row);
    series_headline.push(("hybrid_tweets".into(), hybrid_total_us));
    let (ivm_row, maintain_us, reexec_us) = ivm_family(5);
    rows.push(ivm_row);
    series_headline.push(("ivm_updates".into(), maintain_us));
    let (deadline_row, deadline_ratio, deadline_us) = deadline_family();
    rows.push(deadline_row);
    series_headline.push(("deadline_rewrite".into(), deadline_us));
    let (cached_row, cache_hit_us, cache_hit_rate) = cached_family(20);
    rows.push(cached_row);
    series_headline.push(("cached_rewrite".into(), cache_hit_us));
    let (trace_off, trace_on) = trace_overhead_duel(&pipelines, 5);

    let json = format!(
        "{{\n  \"bench\": \"Optimizer::rewrite\",\n  \"pipelines\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    for family in FAMILIES {
        assert!(
            json.contains(&format!("\"pipeline\": \"{family}\"")),
            "bench family {family} missing from BENCH_rewrite.json"
        );
    }
    std::fs::write("BENCH_rewrite.json", &json).expect("write BENCH_rewrite.json");
    assert_eq!(
        series_chase.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
        LA_FAMILIES.to_vec(),
        "series chase map must cover every LA family in order"
    );
    assert_eq!(
        series_headline.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
        FAMILIES.to_vec(),
        "series headline map must cover every family in order"
    );
    assert_eq!(
        trace_off.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
        LA_FAMILIES.to_vec(),
        "trace duel must cover every LA family in order"
    );
    append_series_row(&SeriesData {
        chase: &series_chase,
        headline: &series_headline,
        maintain_us,
        reexec_us,
        sparse_exec: sparse_exec.expect("sparse_chain family ran"),
        gemm_exec: (gemm_reference_us, gemm_parallel_us),
        deadline_ratio,
        cache_hit_us,
        cache_hit_rate,
        trace_off: &trace_off,
        trace_on: &trace_on,
        threads: PARALLEL.threads(),
    });
    println!("wrote BENCH_rewrite.json ({} families) + BENCH_series.jsonl row", FAMILIES.len());
}
