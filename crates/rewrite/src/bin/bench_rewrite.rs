//! Micro-benchmark for `Optimizer::rewrite` on three pipeline sizes,
//! emitting `BENCH_rewrite.json` (first point of the perf trajectory).
//!
//! Each pipeline is rewritten, then both the original and the winning plan
//! are executed on the dense backend to report measured — not only
//! estimated — speedups.

use std::time::Instant;

use hadad_core::expr::dsl::*;
use hadad_core::{Expr, MatrixMeta, MetaCatalog};
use hadad_linalg::{rand_gen, Matrix};
use hadad_rewrite::{eval, Env, Optimizer};

struct Pipeline {
    name: &'static str,
    expr: Expr,
    cat: MetaCatalog,
    env: Env,
}

fn trace_pipeline(n: usize, k: usize) -> Pipeline {
    let mut cat = MetaCatalog::new();
    cat.register("A", MatrixMeta::dense(n, k));
    cat.register("B", MatrixMeta::dense(k, n));
    let mut env = Env::new();
    env.bind("A", Matrix::Dense(rand_gen::random_dense(n, k, 11)));
    env.bind("B", Matrix::Dense(rand_gen::random_dense(k, n, 12)));
    Pipeline { name: "trace_cyclic", expr: trace(mul(m("A"), m("B"))), cat, env }
}

fn chain_pipeline(n: usize, k: usize) -> Pipeline {
    let mut cat = MetaCatalog::new();
    cat.register("A", MatrixMeta::dense(n, k));
    cat.register("B", MatrixMeta::dense(k, n));
    cat.register("x", MatrixMeta::dense(n, 1));
    let mut env = Env::new();
    env.bind("A", Matrix::Dense(rand_gen::random_dense(n, k, 21)));
    env.bind("B", Matrix::Dense(rand_gen::random_dense(k, n, 22)));
    env.bind("x", Matrix::Dense(rand_gen::random_dense(n, 1, 23)));
    Pipeline { name: "matvec_chain", expr: mul(mul(m("A"), m("B")), m("x")), cat, env }
}

fn decomposition_pipeline(n: usize) -> Pipeline {
    let mut cat = MetaCatalog::new();
    cat.register("D", MatrixMeta::dense(n, n));
    let mut env = Env::new();
    env.bind("D", Matrix::Dense(rand_gen::random_invertible(n, 31)));
    Pipeline {
        name: "qr_reuse",
        expr: trace(mul(Expr::QrQ(Box::new(m("D"))), Expr::QrR(Box::new(m("D"))))),
        cat,
        env,
    }
}

fn time_exec(e: &Expr, env: &Env, reps: u32) -> f64 {
    // One warm-up, then the mean of `reps` runs, in microseconds.
    let _ = eval(e, env).expect("pipeline evaluates");
    let start = Instant::now();
    for _ in 0..reps {
        let _ = eval(e, env).expect("pipeline evaluates");
    }
    start.elapsed().as_micros() as f64 / reps as f64
}

fn main() {
    let pipelines =
        vec![trace_pipeline(400, 8), chain_pipeline(300, 40), decomposition_pipeline(60)];

    let mut rows = Vec::new();
    for p in &pipelines {
        let opt = Optimizer::new(p.cat.clone());
        // Time the rewrite itself (mean of several runs; it is pure).
        let reps = 5;
        let start = Instant::now();
        let mut ranked = opt.rewrite(&p.expr).expect("rewrite succeeds");
        for _ in 1..reps {
            ranked = opt.rewrite(&p.expr).expect("rewrite succeeds");
        }
        let rewrite_us = start.elapsed().as_micros() as f64 / reps as f64;

        let best = ranked.best().clone();
        let equivalent = opt
            .check_equivalent(&p.expr, &best.expr, &p.env, 1e-9)
            .expect("both plans evaluate");
        let orig_exec_us = time_exec(&p.expr, &p.env, 3);
        let best_exec_us = time_exec(&best.expr, &p.env, 3);

        println!(
            "{:<14} {:>10.0}us rewrite | {} -> {} | est x{:.1} | exec {:.0}us -> {:.0}us | equivalent: {}",
            p.name,
            rewrite_us,
            p.expr,
            best.expr,
            ranked.est_speedup(),
            orig_exec_us,
            best_exec_us,
            equivalent,
        );

        rows.push(format!(
            concat!(
                "    {{\"pipeline\": \"{}\", \"nodes\": {}, \"rewrite_us\": {:.1}, ",
                "\"candidates\": {}, \"chase_facts\": {}, \"original\": \"{}\", ",
                "\"best\": \"{}\", \"est_cost_original\": {:.1}, \"est_cost_best\": {:.1}, ",
                "\"exec_us_original\": {:.1}, \"exec_us_best\": {:.1}, \"equivalent\": {}}}"
            ),
            p.name,
            p.expr.node_count(),
            rewrite_us,
            ranked.report.num_candidates,
            ranked.report.num_facts,
            p.expr,
            best.expr,
            ranked.original.est_cost,
            best.est_cost,
            orig_exec_us,
            best_exec_us,
            equivalent,
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"Optimizer::rewrite\",\n  \"pipelines\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write("BENCH_rewrite.json", &json).expect("write BENCH_rewrite.json");
    println!("wrote BENCH_rewrite.json");
}
