//! The plan cache: rewrite-as-a-service for repeated query shapes.
//!
//! Production traffic repeats a small number of expression shapes, yet
//! every `Optimizer::rewrite` call pays the full encode → chase → extract
//! → rank pass. The cache keys extracted [`RankedPlans`] by **canonical
//! skeleton × per-leaf stats band × catalog epoch** (see
//! `hadad_core::fingerprint`): a repeat with the same shapes — even under
//! different base-matrix names, when no views or extra rules bind concrete
//! names — is served straight from the cache, re-skinned and re-priced,
//! for the cost of a hash probe instead of a chase.
//!
//! Soundness under updates is anchored the way Berkholz–Keppeler–
//! Schweikardt anchor answering under updates: every entry is stamped with
//! the [`Catalog`](hadad_relational::Catalog) epoch it was computed at,
//! and a probe carrying a newer epoch *refuses* the entry (it is evicted
//! on the spot). The refused entry still returns its extraction DP table,
//! which warm-starts the cold path's `TighteningPruner` — stale work is
//! recycled, never trusted.
//!
//! Concurrency: the map is sharded by key hash, each shard behind its own
//! mutex, so reader threads rewriting against catalog snapshots contend
//! only when they collide on a shard. Counters are lock-free
//! [`hadad_obs::Counter`]s, surfaced on `RewriteReport` as [`CacheReport`]
//! and mirrored into the process-wide registry (`cache.hits`,
//! `cache.misses`, `cache.stale_refusals`, `cache.evictions`).

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use hadad_obs::{Counter, LazyCounter};

use hadad_chase::NodeId;
use hadad_core::fingerprint::{structural_hash, CanonicalExpr, StatsBand};
use hadad_core::Expr;

use crate::optimizer::RankedPlans;

/// The per-class extraction DP table cached alongside each plan entry:
/// class → (best cost, winning e-node index).
pub type DpTable = HashMap<NodeId, (f64, usize)>;

/// Plan-cache counters for one `rewrite` call, surfaced on
/// `RewriteReport`. Cumulative counts cover the whole cache (shared by
/// every optimizer clone holding it), so they monotonically increase
/// across calls and threads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheReport {
    /// Whether *this* call was served from the cache.
    pub hit: bool,
    /// Cumulative cache hits.
    pub hits: u64,
    /// Cumulative cache misses (stale-epoch refusals included).
    pub misses: u64,
    /// Cumulative evictions: capacity-pressure LRU removals plus
    /// stale-epoch refusals.
    pub evictions: u64,
    /// Cumulative stale-epoch refusals (the subset of `misses` whose entry
    /// matched but carried an outdated epoch stamp and was evicted).
    pub stale_refusals: u64,
}

/// Probe key: the canonical skeleton of the input expression, its leaf
/// names in first-occurrence order, one [`StatsBand`] per leaf, an opaque
/// configuration hash (budget/mode/backend/views/rules), and the catalog
/// epoch the probing optimizer is pinned to.
#[derive(Debug, Clone)]
pub struct PlanCacheKey {
    /// Precomputed shard/bucket hash over skeleton + bands + ctx.
    hash: u64,
    /// Canonical skeleton (leaves abstracted to occurrence indices).
    skeleton: Expr,
    /// Concrete leaf names, in first-occurrence order.
    pub(crate) names: Vec<String>,
    /// Per-leaf shape/density bands, aligned with `names`.
    bands: Vec<StatsBand>,
    /// Opaque optimizer-configuration hash: entries only match probes
    /// from an identically configured optimizer.
    ctx: u64,
    /// Catalog epoch of the probe; entries stamped otherwise are refused.
    epoch: u64,
    /// When `true` (views or extra rules are registered), plans may embed
    /// leaves tied to concrete names, so cross-name sharing is unsound and
    /// entries additionally require exact `names` equality.
    names_bound: bool,
}

impl PlanCacheKey {
    /// Builds a key from an already-canonicalized expression, per-leaf
    /// bands, and the probing optimizer's configuration and epoch.
    pub(crate) fn new(
        canon: CanonicalExpr,
        bands: Vec<StatsBand>,
        ctx: u64,
        epoch: u64,
        names_bound: bool,
    ) -> Self {
        let mut hash = structural_hash(&canon.skeleton, &bands);
        let mut h = std::collections::hash_map::DefaultHasher::new();
        hash.hash(&mut h);
        ctx.hash(&mut h);
        if names_bound {
            canon.leaves.hash(&mut h);
        }
        hash = h.finish();
        PlanCacheKey {
            hash,
            skeleton: canon.skeleton,
            names: canon.leaves,
            bands,
            ctx,
            epoch,
            names_bound,
        }
    }
}

/// A served cache entry: the ranked plans as extracted at insert time,
/// the leaf names they were extracted under, and the DP table.
#[derive(Debug, Clone)]
pub(crate) struct CachedPlans {
    /// The plans, still under the entry's own leaf names.
    pub plans: RankedPlans,
    /// Leaf names (first-occurrence order) the entry was inserted under.
    pub names: Vec<String>,
}

/// Outcome of a cache probe.
pub(crate) enum Lookup {
    /// Same epoch, matching key: serve.
    Hit(Box<CachedPlans>),
    /// Matching key at a *different* epoch: the entry is refused and
    /// evicted; its DP table is returned to warm-start the cold path.
    Stale(DpTable),
    /// No matching entry.
    Miss,
}

struct Entry {
    skeleton: Expr,
    names: Vec<String>,
    bands: Vec<StatsBand>,
    ctx: u64,
    epoch: u64,
    names_bound: bool,
    plans: RankedPlans,
    dp: DpTable,
    last_used: u64,
}

impl Entry {
    fn matches(&self, key: &PlanCacheKey) -> bool {
        self.ctx == key.ctx
            && self.names_bound == key.names_bound
            && self.bands == key.bands
            && self.skeleton == key.skeleton
            && (!self.names_bound || self.names == key.names)
    }
}

/// Shard count; probes hash-route to a shard so concurrent readers only
/// contend on collisions.
const NUM_SHARDS: usize = 8;

/// Default total capacity when `HADAD_PLAN_CACHE` is set without a number.
pub const DEFAULT_CAPACITY: usize = 256;

/// Sharded, epoch-validated map from canonical plan fingerprints to
/// extracted [`RankedPlans`] (plus their extraction DP tables).
pub struct PlanCache {
    shards: Vec<Mutex<HashMap<u64, Entry>>>,
    per_shard: usize,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    stale_refusals: Counter,
    tick: AtomicU64,
}

/// Process-wide mirrors of every cache instance's counters (a process may
/// hold several caches; per-instance exactness lives in [`CacheReport`]).
static M_HITS: LazyCounter = LazyCounter::new("cache.hits");
static M_MISSES: LazyCounter = LazyCounter::new("cache.misses");
static M_EVICTIONS: LazyCounter = LazyCounter::new("cache.evictions");
static M_STALE: LazyCounter = LazyCounter::new("cache.stale_refusals");

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("capacity", &(self.per_shard * NUM_SHARDS))
            .field("len", &self.len())
            .field("hits", &self.hits.get())
            .field("misses", &self.misses.get())
            .field("evictions", &self.evictions.get())
            .finish()
    }
}

impl PlanCache {
    /// Cache holding at most `capacity` entries (rounded up to a multiple
    /// of the shard count; at least one entry per shard).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            shards: (0..NUM_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            per_shard: capacity.div_ceil(NUM_SHARDS).max(1),
            hits: Counter::new(),
            misses: Counter::new(),
            evictions: Counter::new(),
            stale_refusals: Counter::new(),
            tick: AtomicU64::new(0),
        }
    }

    /// Cache configured from the `HADAD_PLAN_CACHE` environment variable:
    /// unset / `0` / `off` → `None` (disabled), a positive integer → that
    /// total capacity, any other value → [`DEFAULT_CAPACITY`].
    pub fn from_env() -> Option<Arc<PlanCache>> {
        capacity_from(&std::env::var("HADAD_PLAN_CACHE").ok()?)
            .map(|c| Arc::new(PlanCache::new(c)))
    }

    /// Entries currently cached, across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock(s).len()).sum()
    }

    /// `true` when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot, with `hit` recording this call's outcome. The
    /// public fields are reads off the same lock-free counters the shared
    /// metrics registry mirrors.
    pub(crate) fn report(&self, hit: bool) -> CacheReport {
        CacheReport {
            hit,
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            stale_refusals: self.stale_refusals.get(),
        }
    }

    fn shard(&self, key: &PlanCacheKey) -> &Mutex<HashMap<u64, Entry>> {
        &self.shards[(key.hash as usize) % NUM_SHARDS]
    }

    pub(crate) fn lookup(&self, key: &PlanCacheKey) -> Lookup {
        let mut shard = lock(self.shard(key));
        match shard.get_mut(&key.hash) {
            Some(entry) if entry.matches(key) => {
                if entry.epoch == key.epoch {
                    entry.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
                    self.hits.incr();
                    M_HITS.incr();
                    Lookup::Hit(Box::new(CachedPlans {
                        plans: entry.plans.clone(),
                        names: entry.names.clone(),
                    }))
                } else {
                    // Epoch mismatch: refuse and evict, recycle the DP.
                    let entry = shard.remove(&key.hash).expect("entry present");
                    self.misses.incr();
                    self.evictions.incr();
                    self.stale_refusals.incr();
                    M_MISSES.incr();
                    M_EVICTIONS.incr();
                    M_STALE.incr();
                    Lookup::Stale(entry.dp)
                }
            }
            _ => {
                self.misses.incr();
                M_MISSES.incr();
                Lookup::Miss
            }
        }
    }

    /// Inserts (or replaces, on bucket collision) an entry under `key`.
    /// Full shards evict their least-recently-used entry first.
    pub(crate) fn insert(&self, key: &PlanCacheKey, plans: RankedPlans, dp: DpTable) {
        let mut shard = lock(self.shard(key));
        if !shard.contains_key(&key.hash) && shard.len() >= self.per_shard {
            if let Some(&lru) = shard.iter().min_by_key(|(_, e)| e.last_used).map(|(h, _)| h) {
                shard.remove(&lru);
                self.evictions.incr();
                M_EVICTIONS.incr();
            }
        }
        shard.insert(
            key.hash,
            Entry {
                skeleton: key.skeleton.clone(),
                names: key.names.clone(),
                bands: key.bands.clone(),
                ctx: key.ctx,
                epoch: key.epoch,
                names_bound: key.names_bound,
                plans,
                dp,
                last_used: self.tick.fetch_add(1, Ordering::Relaxed),
            },
        );
    }
}

/// Parses a `HADAD_PLAN_CACHE` value into a total capacity: `0`, `off`,
/// `false`, or empty disable the cache (`None`); a positive integer sets
/// the capacity; anything else (e.g. `on`) selects [`DEFAULT_CAPACITY`].
pub fn capacity_from(value: &str) -> Option<usize> {
    let v = value.trim().to_ascii_lowercase();
    if v.is_empty() || v == "0" || v == "off" || v == "false" {
        return None;
    }
    match v.parse::<usize>() {
        Ok(n) => Some(n),
        Err(_) => Some(DEFAULT_CAPACITY),
    }
}

/// Locks a shard, continuing through poison: entries are always internally
/// consistent (each insert/remove completes under the lock before any
/// panic can propagate), so a poisoned shard is still a valid map.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_capacity_parsing() {
        assert_eq!(capacity_from(""), None);
        assert_eq!(capacity_from("0"), None);
        assert_eq!(capacity_from("off"), None);
        assert_eq!(capacity_from("OFF"), None);
        assert_eq!(capacity_from("false"), None);
        assert_eq!(capacity_from("128"), Some(128));
        assert_eq!(capacity_from(" 64 "), Some(64));
        assert_eq!(capacity_from("on"), Some(DEFAULT_CAPACITY));
    }
}
