//! Concurrent rewriting while maintaining: reader threads serve hybrid
//! rewrites from published [`CatalogSnapshot`]s (through a shared
//! [`SnapshotReader`]) while the writer thread mutates base tables and
//! delta-maintains views on the live `HybridOptimizer`. Run under the CI
//! ThreadSanitizer job alongside the backend suite.

use std::thread;

use hadad_core::expr::dsl::*;
use hadad_core::{MatrixMeta, MetaCatalog};
use hadad_relational::{Catalog, Column, Table, Value};
use hadad_rewrite::{CastKind, HybridOptimizer, HybridPipeline, Optimizer, RelQuery};

fn fixture() -> (HybridOptimizer, HybridPipeline) {
    let events = Table::new(vec![
        ("eid", Column::Int((0..64).collect())),
        ("kind", Column::Int((0..64).map(|i| i % 4).collect())),
    ]);
    let mut catalog = Catalog::new();
    catalog.register("events", events);
    let mut la_cat = MetaCatalog::new();
    la_cat.register("A", MatrixMeta::dense(120, 8));
    la_cat.register("B", MatrixMeta::dense(8, 120));
    la_cat.register("x", MatrixMeta::dense(120, 1));
    let mut hy = HybridOptimizer::new(catalog, Optimizer::new(la_cat).with_plan_cache(32));
    hy.register_table_view("spikes", RelQuery::scan("events").select_eq("kind", 3))
        .expect("view materializes");
    let pipeline = HybridPipeline {
        prefix: RelQuery::scan("events").select_eq("kind", 3),
        sort_key: None,
        cast: CastKind::Sparse {
            row: "eid".into(),
            col: "kind".into(),
            val: "kind".into(),
            rows: 4096,
            cols: 4,
        },
        cast_name: "E".into(),
        suffix: mul(mul(m("A"), m("B")), m("x")),
    };
    (hy, pipeline)
}

/// Four reader threads rewrite against the published snapshot while the
/// writer pushes insert/delete batches through logged mutation +
/// delta-maintenance on the live optimizer. Every reader-observed result
/// must be sound (the best plan never prices above the snapshot's
/// original), readers must never observe a stale or mid-maintenance
/// state (each loaded snapshot's epoch is a committed one), and after the
/// writer finishes, readers converge on the final epoch.
#[test]
fn concurrent_rewrites_while_maintaining() {
    let (mut hy, pipeline) = fixture();
    let reader = hy.reader().expect("clean state must be snapshottable");
    let initial_epoch = reader.current().epoch();

    thread::scope(|s| {
        for worker in 0..4 {
            let reader = reader.clone();
            let pipeline = &pipeline;
            s.spawn(move || {
                let mut last_epoch = 0u64;
                for i in 0..25 {
                    let snap = reader.current();
                    // Epochs only move forward for a reader.
                    assert!(
                        snap.epoch() >= last_epoch,
                        "worker {worker} iter {i}: epoch went backwards"
                    );
                    last_epoch = snap.epoch();
                    let r = snap.rewrite_hybrid(pipeline).expect("snapshot rewrite");
                    assert!(
                        r.best.est_cost <= r.ranked.original.est_cost,
                        "worker {worker} iter {i}: unsound plan ranking"
                    );
                    assert!(r.degraded.is_none(), "worker {worker} iter {i}: degraded");
                }
            });
        }

        // Writer: interleave logged inserts and deletes, each auto-
        // maintained and therefore republished at a new committed epoch.
        for batch in 0..10i64 {
            let eid = 1000 + batch;
            hy.insert_rows("events", vec![vec![Value::Int(eid), Value::Int(3)]])
                .expect("insert applies");
            hy.delete_rows("events", vec![vec![Value::Int(eid), Value::Int(3)]])
                .expect("delete applies");
        }
    });

    // The writer's last commit was published: readers and the live
    // optimizer agree on the final epoch.
    assert!(reader.current().epoch() > initial_epoch, "maintenance must advance the epoch");
    assert_eq!(
        reader.current().epoch(),
        hy.catalog.epoch(),
        "published snapshot must carry the final committed epoch"
    );
    // And the converged snapshot still serves sound rewrites.
    let r = reader.rewrite_hybrid(&pipeline).expect("final rewrite");
    assert!(r.best.est_cost <= r.ranked.original.est_cost);
}

/// The metrics registry under the same 4-reader × 25-iteration stress:
/// the sharded relaxed counters must lose no updates. A dedicated probe
/// counter bumped once per reader iteration lands on exactly 100, the
/// probe histogram's count and sum are bit-exact, and the pipeline's own
/// counters (`snapshot.reads`, `rewrite.calls`) advance by at least the
/// stress's own traffic — `>=`, not `==`, because every test in this
/// binary shares the global registry.
#[test]
fn metric_counter_totals_are_exact_under_stress() {
    static PROBE: hadad_obs::LazyCounter =
        hadad_obs::LazyCounter::new("test.concurrency.probe");
    static PROBE_ITERS: hadad_obs::LazyHistogram =
        hadad_obs::LazyHistogram::new("test.concurrency.iter");
    let (mut hy, pipeline) = fixture();
    let reader = hy.reader().expect("reader");
    let before = hadad_obs::snapshot();
    let reads_before = before.counter("snapshot.reads").unwrap_or(0);
    let calls_before = before.counter("rewrite.calls").unwrap_or(0);

    thread::scope(|s| {
        for _ in 0..4 {
            let reader = reader.clone();
            let pipeline = &pipeline;
            s.spawn(move || {
                for i in 0..25u64 {
                    let snap = reader.current();
                    let r = snap.rewrite_hybrid(pipeline).expect("snapshot rewrite");
                    assert!(r.best.est_cost <= r.ranked.original.est_cost);
                    PROBE.incr();
                    PROBE_ITERS.record(i);
                }
            });
        }
        for batch in 0..10i64 {
            let eid = 2000 + batch;
            hy.insert_rows("events", vec![vec![Value::Int(eid), Value::Int(3)]])
                .expect("insert applies");
            hy.delete_rows("events", vec![vec![Value::Int(eid), Value::Int(3)]])
                .expect("delete applies");
        }
    });

    // Exact totals: 4 threads × 25 iterations, no lost updates across
    // the counter shards or histogram buckets.
    assert_eq!(PROBE.value(), 100, "probe counter lost updates");
    let after = hadad_obs::snapshot();
    let iters = after.histogram("test.concurrency.iter").expect("probe histogram registered");
    assert_eq!(iters.count, 100, "probe histogram lost samples");
    assert_eq!(iters.sum, 4 * (0..25u64).sum::<u64>(), "probe histogram sum drifted");
    // The instrumented pipeline moved at least as much as this stress
    // drove it: 100 snapshot loads and 100 optimizer rewrites.
    assert!(after.counter("snapshot.reads").unwrap_or(0) >= reads_before + 100);
    assert!(after.counter("rewrite.calls").unwrap_or(0) >= calls_before + 100);

    // Deterministic cache-hit delta: two same-epoch rewrites through the
    // reader — whatever the stress left cached, the second must hit.
    let hits_before = after.counter("cache.hits").unwrap_or(0);
    let _ = reader.rewrite_hybrid(&pipeline).expect("post-stress rewrite");
    let _ = reader.rewrite_hybrid(&pipeline).expect("post-stress rewrite");
    let hits_after = hadad_obs::snapshot().counter("cache.hits").unwrap_or(0);
    assert!(hits_after > hits_before, "same-epoch repeat must land a cache hit");
}

/// Snapshot isolation: a reader holding a snapshot keeps that state alive
/// and consistent even after the writer mutates and republishes.
#[test]
fn held_snapshot_survives_later_updates() {
    let (mut hy, pipeline) = fixture();
    let reader = hy.reader().expect("reader");
    let held = reader.current();
    let held_epoch = held.epoch();
    let held_rows = held.catalog().cardinality("events").expect("events snapshotted");

    hy.insert_rows("events", vec![vec![Value::Int(999), Value::Int(3)]])
        .expect("insert applies");

    // The held snapshot is frozen at its epoch and row count...
    assert_eq!(held.epoch(), held_epoch);
    assert_eq!(held.catalog().cardinality("events"), Some(held_rows));
    let r = held.rewrite_hybrid(&pipeline).expect("held snapshot rewrite");
    assert!(r.best.est_cost <= r.ranked.original.est_cost);
    // ...while a fresh load observes the committed update.
    let fresh = reader.current();
    assert!(fresh.epoch() > held_epoch);
    assert_eq!(fresh.catalog().cardinality("events"), Some(held_rows + 1));
}

/// A poisoned maintainer refuses to hand out readers (a snapshot of an
/// unknown view state would serve wrong plans forever), and existing
/// readers keep the last clean snapshot rather than observing the
/// poisoned state.
#[test]
fn poisoned_state_is_never_published() {
    let (mut hy, pipeline) = fixture();
    let reader = hy.reader().expect("reader");
    let clean_epoch = reader.current().epoch();

    // Poison maintenance via an injected fault mid-pass.
    hy.catalog
        .insert_rows("events", vec![vec![Value::Int(500), Value::Int(3)]])
        .expect("raw insert applies");
    let fault = hadad_failpoint::scoped("maintain.midpass", hadad_failpoint::FailAction::Error);
    assert!(hy.maintain_views().is_err(), "injected fault must fail the pass");
    drop(fault);

    // Readers still serve the last clean snapshot.
    assert_eq!(reader.current().epoch(), clean_epoch);
    assert!(reader.rewrite_hybrid(&pipeline).is_ok());
    // No new readers from a poisoned optimizer.
    assert!(hy.reader().is_err(), "poisoned state must not be snapshottable");
    // Recovery: rebuild republishes a clean snapshot at a newer epoch.
    hy.rebuild_views().expect("rebuild succeeds");
    assert!(reader.current().epoch() > clean_epoch, "rebuild must republish");
    assert!(hy.reader().is_ok());
}
