//! Fault-injection and anytime-degradation suite: every named failpoint in
//! the pipeline is driven through its `panic` / `error` / `delay` actions,
//! and the end-to-end contract is checked each time — `rewrite` / `run`
//! return `Ok` with a sound plan (cost no worse than the unrewritten
//! expression), the degradation is surfaced on the report, and the process
//! never aborts.
//!
//! Programmatic tests arm sites through [`hadad_failpoint::scoped`], whose
//! guard also serializes them behind the global fault-test lock. The
//! `env_driven` test instead reads `HADAD_FAILPOINTS` — that is the entry
//! point CI's fault matrix runs under one config at a time:
//!
//! ```sh
//! HADAD_FAILPOINTS=chase.round=panic cargo test --test faults env_driven
//! ```

use std::time::Duration;

use hadad_chase::{ChaseBudget, ChaseOutcome, DegradeReason, ExhaustedBy, RewritePhase};
use hadad_core::expr::dsl::*;
use hadad_core::{Expr, MatrixMeta, MetaCatalog};
use hadad_failpoint::{scoped, FailAction};
use hadad_linalg::{rand_gen, take_backend_panics, BackendKind, Matrix};
use hadad_relational::{Catalog, Column, Table, Value};
use hadad_rewrite::{
    CastKind, Env, HybridError, HybridOptimizer, HybridPipeline, Optimizer, PruneMode, RelQuery,
};

/// A left-deep matmul chain over `dims.len() - 1` matrices, with matching
/// random bindings (same shape family as the bench's `matmul_chain12`).
fn chain(dims: &[usize]) -> (MetaCatalog, Env, Expr) {
    let mut cat = MetaCatalog::new();
    let mut env = Env::new();
    let mut expr: Option<Expr> = None;
    for i in 0..dims.len() - 1 {
        let name = format!("M{}", i + 1);
        cat.register(&name, MatrixMeta::dense(dims[i], dims[i + 1]));
        env.bind(
            &name,
            Matrix::Dense(rand_gen::random_dense(dims[i], dims[i + 1], 41 + i as u64)),
        );
        let leaf = m(&name);
        expr = Some(match expr {
            Some(e) => mul(e, leaf),
            None => leaf,
        });
    }
    (cat, env, expr.unwrap())
}

const CHAIN12: [usize; 13] = [96, 88, 80, 64, 48, 40, 36, 24, 16, 12, 6, 4, 1];

/// Runs `f` with panic output silenced (worker panics would otherwise spray
/// backtraces through the captured test output), restoring the hook after.
fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

/// Satellite: a fact-budget-truncated chase is an anytime result, not an
/// error — the pipeline still returns a verified plan no worse than the
/// input expression.
#[test]
fn fact_budget_exhaustion_still_yields_verified_plan() {
    let (cat, env, expr) = chain(&[96, 80, 64, 48, 24, 1]);
    // Pruning off so the chase actually generates facts up to the budget
    // (under `Prune_prov` this instance saturates below any useful bound).
    let opt = Optimizer::new(cat).with_prune(PruneMode::Off).with_budget(ChaseBudget {
        max_rounds: 12,
        // Full saturation of this chain needs 49 facts; 40 forces the stop.
        max_facts: 40,
        max_nulls: 15_000,
        deadline: None,
    });
    let (ranked, plan, _) = opt.rewrite_verified(&expr, &env, 1e-9).unwrap();
    assert_eq!(ranked.report.chase_outcome, ChaseOutcome::BudgetExhausted);
    let d = ranked.report.degraded.as_ref().expect("budget stop marks degradation");
    assert_eq!(d.reason, DegradeReason::Budget(ExhaustedBy::Facts));
    assert_eq!(d.phase, RewritePhase::Chase);
    assert!(
        plan.est_cost <= ranked.original.est_cost,
        "anytime plan ({}) must not cost more than the original ({})",
        plan.est_cost,
        ranked.original.est_cost
    );
}

/// The acceptance bar: a 1 ms deadline on the 12-chain still returns `Ok`
/// with an execution-verified plan costing no more than the unrewritten
/// expression.
#[test]
fn one_ms_deadline_on_12_chain_returns_verified_plan() {
    let (cat, env, expr) = chain(&CHAIN12);
    let opt = Optimizer::new(cat)
        .with_budget(ChaseBudget {
            max_rounds: 20,
            max_facts: 60_000,
            max_nulls: 30_000,
            deadline: None,
        })
        .with_deadline(Duration::from_millis(1));
    let (ranked, plan, _) = opt.rewrite_verified(&expr, &env, 1e-9).unwrap();
    assert!(plan.est_cost <= ranked.original.est_cost);
    // With 1 ms the chase cannot saturate a 12-chain; the run is degraded
    // by the deadline (never by an error or a panic).
    if let Some(d) = &ranked.report.degraded {
        assert_eq!(d.reason, DegradeReason::Deadline);
    }
}

#[test]
fn chase_panic_is_contained_and_degrades() {
    let (cat, env, expr) = chain(&[60, 40, 20, 1]);
    let opt = Optimizer::new(cat);
    let _g = scoped("chase.round", FailAction::Panic);
    let (ranked, plan, _) = quiet_panics(|| opt.rewrite_verified(&expr, &env, 1e-9)).unwrap();
    let d = ranked.report.degraded.as_ref().expect("contained panic marks degradation");
    assert_eq!(d.reason, DegradeReason::WorkerPanic);
    assert_eq!(d.phase, RewritePhase::Chase);
    assert!(plan.est_cost <= ranked.original.est_cost);
}

#[test]
fn chase_error_fault_is_a_typed_budget_stop() {
    let (cat, env, expr) = chain(&[60, 40, 20, 1]);
    let opt = Optimizer::new(cat);
    let _g = scoped("chase.round", FailAction::Error);
    let (ranked, plan, _) = opt.rewrite_verified(&expr, &env, 1e-9).unwrap();
    assert_eq!(ranked.report.chase_outcome, ChaseOutcome::BudgetExhausted);
    let d = ranked.report.degraded.as_ref().unwrap();
    assert_eq!(d.reason, DegradeReason::Fault);
    assert!(plan.est_cost <= ranked.original.est_cost);
}

/// A slow chase round (injected delay) trips the wall-clock deadline: the
/// degradation names the deadline, not the fault.
#[test]
fn chase_delay_trips_the_deadline() {
    let (cat, _, expr) = chain(&[60, 40, 20, 1]);
    let opt = Optimizer::new(cat).with_deadline(Duration::from_millis(10));
    let _g = scoped("chase.round", FailAction::Delay(30));
    let ranked = opt.rewrite(&expr).unwrap();
    let d = ranked.report.degraded.as_ref().expect("deadline must trip");
    assert_eq!(d.reason, DegradeReason::Deadline);
    assert_eq!(d.phase, RewritePhase::Chase);
}

#[test]
fn extraction_panic_falls_back_to_original_plan() {
    let (cat, env, expr) = chain(&[60, 40, 20, 1]);
    // `Prune_prov`'s tightening pass runs the extraction DP *inside* the
    // chase; pruning off keeps this fault in the extraction phase proper.
    let opt = Optimizer::new(cat).with_prune(PruneMode::Off);
    let _g = scoped("extract.solve", FailAction::Panic);
    let (ranked, plan, _) = quiet_panics(|| opt.rewrite_verified(&expr, &env, 1e-9)).unwrap();
    let d = ranked.report.degraded.as_ref().unwrap();
    assert_eq!(d.reason, DegradeReason::WorkerPanic);
    assert_eq!(d.phase, RewritePhase::Extraction);
    // Nothing could be extracted, so the guaranteed-sound incumbent wins.
    assert_eq!(plan.expr, ranked.original.expr);
}

/// A panicking parallel kernel worker retries on the reference backend:
/// the rewrite still verifies, and the retry is recorded as a typed
/// `BackendPanic` event rather than aborting the evaluation.
#[test]
fn kernel_panic_degrades_to_reference_backend() {
    let (cat, env, expr) = chain(&[60, 40, 20, 1]);
    let opt = Optimizer::new(cat).with_backend(BackendKind::Parallel);
    let _g = scoped("linalg.kernel", FailAction::Panic);
    let (ranked, plan, _) = quiet_panics(|| opt.rewrite_verified(&expr, &env, 1e-9)).unwrap();
    assert!(plan.est_cost <= ranked.original.est_cost);
    let events = take_backend_panics();
    assert!(!events.is_empty(), "kernel retries must surface BackendPanic events");
    assert!(events.iter().all(|e| e.backend == "parallel"));
}

fn tweets() -> Table {
    let n = 60i64;
    Table::new(vec![
        ("tid", Column::Int((0..n).collect())),
        ("topic", Column::Int((0..n).map(|i| i % 6).collect())),
        ("level", Column::Int((0..n).map(|i| i % 4 + 1).collect())),
    ])
}

fn hybrid_with_view() -> (HybridOptimizer, HybridPipeline) {
    let mut catalog = Catalog::new();
    catalog.register("tweets", tweets());
    let mut hy = HybridOptimizer::new(catalog, Optimizer::new(MetaCatalog::new()));
    hy.register_table_view("topic3", RelQuery::scan("tweets").select_eq("topic", 3)).unwrap();
    let p = HybridPipeline {
        prefix: RelQuery::scan("tweets").select_eq("topic", 3),
        sort_key: Some("tid".into()),
        cast: CastKind::Dense { columns: vec!["tid".into(), "level".into()] },
        cast_name: "M".into(),
        suffix: m("M"),
    };
    (hy, p)
}

/// The poisoning contract under an injected mid-pass fault: the failed
/// maintenance pass poisons the maintainer, runs degrade (base tables
/// only) instead of erroring, and `rebuild_views` recovers fully.
#[test]
fn maintenance_midpass_fault_poisons_then_rebuild_recovers() {
    let (mut hy, p) = hybrid_with_view();
    let g = scoped("maintain.midpass", FailAction::Error);
    let err = hy
        .insert_rows("tweets", vec![vec![Value::Int(600), Value::Int(3), Value::Int(1)]])
        .unwrap_err();
    assert!(matches!(err, HybridError::Fault { site: "maintain.midpass" }));
    assert!(matches!(hy.maintain_views(), Err(HybridError::MaintenancePoisoned)));
    drop(g);

    // Degraded anytime run: base tables are current (the insert landed),
    // the unknown view is simply not offered to the rewriter.
    let r = hy.rewrite_hybrid(&p).unwrap();
    assert_eq!(r.degraded.as_ref().map(|d| d.reason), Some(DegradeReason::MaintenancePoisoned));
    assert!(r.rel.rewriting.is_none());
    assert_eq!(r.rel.rows_out, 11);

    // Recovery: rebuild re-materializes from current base tables and the
    // view-backed rewriting comes back.
    hy.rebuild_views().unwrap();
    assert_eq!(hy.catalog.cardinality("topic3"), Some(11));
    let r = hy.rewrite_hybrid(&p).unwrap();
    assert!(r.degraded.is_none());
    assert!(r.rel.rewriting.is_some());
    assert_eq!(r.rel.rows_out, 11);
}

/// Same contract when the pass *panics* mid-way instead of erroring.
#[test]
fn maintenance_midpass_panic_poisons_instead_of_unwinding() {
    let (mut hy, p) = hybrid_with_view();
    let g = scoped("maintain.midpass", FailAction::Panic);
    let err = quiet_panics(|| {
        hy.insert_rows("tweets", vec![vec![Value::Int(600), Value::Int(3), Value::Int(1)]])
    })
    .unwrap_err();
    assert!(matches!(err, HybridError::MaintenancePoisoned));
    drop(g);
    assert!(hy.rewrite_hybrid(&p).unwrap().degraded.is_some());
    hy.rebuild_views().unwrap();
    assert!(hy.rewrite_hybrid(&p).unwrap().degraded.is_none());
}

/// A failed cast re-stamp after the log drained must poison (not silently
/// clear staleness); rebuild recovers and re-stamps.
#[test]
fn restamp_fault_poisons_then_rebuild_recovers() {
    let (mut hy, p) = hybrid_with_view();
    hy.register_maintained_cast(hadad_rewrite::MaintainedCast {
        cast_name: "N".into(),
        view: "topic3".into(),
        sort_key: Some("tid".into()),
        cast: CastKind::Dense { columns: vec!["tid".into(), "level".into()] },
    })
    .unwrap();
    let g = scoped("hybrid.restamp", FailAction::Error);
    let err = hy
        .insert_rows("tweets", vec![vec![Value::Int(600), Value::Int(3), Value::Int(1)]])
        .unwrap_err();
    assert!(matches!(err, HybridError::Fault { site: "hybrid.restamp" }));
    assert!(matches!(hy.maintain_views(), Err(HybridError::MaintenancePoisoned)));
    drop(g);
    assert!(hy.rewrite_hybrid(&p).unwrap().degraded.is_some());
    hy.rebuild_views().unwrap();
    assert_eq!(hy.optimizer.cat.get("N").unwrap().rows, 11);
    assert!(hy.rewrite_hybrid(&p).unwrap().degraded.is_none());
}

/// CI's fault-matrix entry point: arms nothing itself — it runs whatever
/// `HADAD_FAILPOINTS` injected (one config per CI job) and asserts the
/// whole pipeline degrades cleanly: every call returns `Ok` (or the typed
/// poisoning error with a working rebuild path), plans stay sound, and the
/// process never aborts. Also passes with no env set (the clean run).
#[test]
fn env_driven_single_fault_degrades_cleanly() {
    // Hold the fault-test lock (via an inert scoped site) so concurrently
    // running programmatic fault tests cannot interleave with this one.
    let _lock = scoped("env.hold", FailAction::Delay(0));
    hadad_failpoint::init_from_env();
    // A typo'd spec entry would leave its site unarmed and this run would
    // pass vacuously; fail loudly instead so the matrix config gets fixed.
    assert!(
        hadad_failpoint::spec_errors().is_empty(),
        "malformed HADAD_FAILPOINTS entries: {:?}",
        hadad_failpoint::spec_errors()
    );
    let armed = |site: &str| -> bool { hadad_failpoint::action_for(site).is_some() };

    quiet_panics(|| {
        // LA pipeline: must return a verified plan under every fault.
        let (cat, env, expr) = chain(&[60, 40, 20, 1]);
        let opt = Optimizer::new(cat).with_backend(BackendKind::Parallel);
        let (ranked, plan, _) = opt.rewrite_verified(&expr, &env, 1e-9).unwrap();
        assert!(plan.est_cost <= ranked.original.est_cost);
        if armed("chase.round") || armed("extract.solve") {
            // Delay is the only action that degrades nothing here.
            let delayed = matches!(
                hadad_failpoint::action_for("chase.round"),
                Some(hadad_failpoint::FailAction::Delay(_))
            ) || matches!(
                hadad_failpoint::action_for("extract.solve"),
                Some(hadad_failpoint::FailAction::Delay(_))
            );
            assert!(ranked.report.degraded.is_some() || delayed);
        }

        // Hybrid pipeline: maintenance faults poison (typed, no abort) and
        // rebuild recovers; all other faults leave maintenance clean.
        let (mut hy, p) = hybrid_with_view();
        // A maintained cast puts the restamp site on this run's path; an
        // armed `hybrid.restamp` surfaces right here as the typed fault.
        if let Err(e) = hy.register_maintained_cast(hadad_rewrite::MaintainedCast {
            cast_name: "N".into(),
            view: "topic3".into(),
            sort_key: Some("tid".into()),
            cast: CastKind::Dense { columns: vec!["tid".into(), "level".into()] },
        }) {
            assert!(
                matches!(e, HybridError::Fault { site: "hybrid.restamp" }),
                "unexpected cast registration failure: {e}"
            );
        }
        let ins =
            hy.insert_rows("tweets", vec![vec![Value::Int(600), Value::Int(3), Value::Int(1)]]);
        match ins {
            Ok(_) => {
                let r = hy.rewrite_hybrid(&p).unwrap();
                assert_eq!(r.rel.rows_out, 11);
            }
            Err(e) => {
                assert!(
                    armed("maintain.midpass") || armed("hybrid.restamp"),
                    "unexpected maintenance failure: {e}"
                );
                // Degraded but alive; rebuild restores full service. The
                // rebuild itself never passes through the armed maintenance
                // sites, so it succeeds even while they stay armed.
                assert!(hy.rewrite_hybrid(&p).unwrap().degraded.is_some());
                hy.rebuild_views().unwrap();
                assert_eq!(hy.catalog.cardinality("topic3"), Some(11));
            }
        }
        let _ = take_backend_panics();
    });
}
