//! Differential property test: the `Parallel` backend must agree with
//! `Reference` on the full 120-expression corpus, across thread counts
//! 1/2/8 and mixed dense/sparse environments. Agreement is pinned at
//! epsilon 1e-12 (the kernels preserve per-cell accumulation order, so in
//! practice results are bitwise identical) with identical shapes and, for
//! sparse results, identical non-zero counts.

use hadad_core::expr::dsl::*;
use hadad_linalg::rng::Rng64;
use hadad_linalg::{approx_eq, rand_gen, ExecBackend, Matrix, Parallel, Reference};
use hadad_rewrite::{eval_with, Env};

mod common;
use common::random_expr;

/// Bindings matching the corpus catalog's shapes. `sparse` swaps the
/// square matrices and one rectangular factor to CSR (density 0.2) so
/// products exercise every representation pair the backends dispatch on.
fn corpus_env(sparse: bool, seed: u64) -> Env {
    let mut env = Env::new();
    let mat = |r: usize, c: usize, s: u64, sp: bool| {
        if sp {
            Matrix::Sparse(rand_gen::random_sparse(r, c, 0.2, seed + s))
        } else {
            Matrix::Dense(rand_gen::random_dense(r, c, seed + s))
        }
    };
    env.bind("A", mat(12, 8, 1, false));
    env.bind("B", mat(8, 12, 2, sparse));
    env.bind("C", mat(8, 8, 3, sparse));
    env.bind("D", mat(12, 12, 4, sparse));
    env.bind("x", mat(8, 1, 5, false));
    env.bind("y", mat(12, 1, 6, false));
    env
}

/// The corpus differential: 120 random expressions × dense and mixed
/// envs × thread counts 1/2/8.
#[test]
fn parallel_backend_matches_reference_on_corpus() {
    let mut rng = Rng64::new(0xADAD_5EED);
    let envs = [corpus_env(false, 100), corpus_env(true, 200)];
    let mut composites = 0usize;
    for i in 0..120 {
        let e = random_expr(&mut rng);
        if e.node_count() > 1 {
            composites += 1;
        }
        for (ei, env) in envs.iter().enumerate() {
            let want = eval_with(&e, env, &Reference).expect("reference evaluates");
            for threads in [1usize, 2, 8] {
                let backend = Parallel::with_threads(threads);
                let got = eval_with(&e, env, &backend).expect("parallel evaluates");
                assert_eq!(
                    want.shape(),
                    got.shape(),
                    "sample {i} env {ei} t={threads} ({e}): shapes diverge"
                );
                assert_eq!(
                    want.is_sparse(),
                    got.is_sparse(),
                    "sample {i} env {ei} t={threads} ({e}): representations diverge"
                );
                if want.is_sparse() {
                    assert_eq!(
                        want.nnz(),
                        got.nnz(),
                        "sample {i} env {ei} t={threads} ({e}): nnz diverges"
                    );
                }
                assert!(
                    approx_eq(&want, &got, 1e-12),
                    "sample {i} env {ei} t={threads} ({e}): values diverge"
                );
                // The kernels preserve accumulation order, so the epsilon
                // bound is actually an equality.
                assert_eq!(want, got, "sample {i} env {ei} t={threads} ({e}): not bitwise");
            }
        }
    }
    assert!(composites >= 100, "corpus too degenerate: {composites} composite samples");
}

/// Randomized raw kernels at shapes straddling the GEMM tile width,
/// including the fused transpose-multiply, across thread counts.
#[test]
fn randomized_kernels_match_across_thread_counts() {
    for (m_, k, n, seed) in
        [(65usize, 130usize, 7usize, 10u64), (128, 64, 129, 20), (9, 200, 3, 30)]
    {
        let pairs = [
            (
                Matrix::Dense(rand_gen::random_dense(m_, k, seed)),
                Matrix::Dense(rand_gen::random_dense(k, n, seed + 1)),
            ),
            (
                Matrix::Sparse(rand_gen::random_sparse(m_, k, 0.05, seed + 2)),
                Matrix::Sparse(rand_gen::random_sparse(k, n, 0.05, seed + 3)),
            ),
            (
                Matrix::Sparse(rand_gen::random_sparse(m_, k, 0.1, seed + 4)),
                Matrix::Dense(rand_gen::random_dense(k, n, seed + 5)),
            ),
            (
                Matrix::Dense(rand_gen::random_dense(m_, k, seed + 6)),
                Matrix::Sparse(rand_gen::random_sparse(k, n, 0.1, seed + 7)),
            ),
        ];
        // `Aᵀ·B` needs matching row counts: pair each m×k lhs with m×n rhs.
        let trhs = [
            Matrix::Dense(rand_gen::random_dense(m_, n, seed + 8)),
            Matrix::Sparse(rand_gen::random_sparse(m_, n, 0.1, seed + 9)),
        ];
        for (a, b) in &pairs {
            let want = Reference.multiply(a, b).unwrap();
            for threads in [1usize, 2, 8] {
                let backend = Parallel::with_threads(threads);
                assert_eq!(want, backend.multiply(a, b).unwrap(), "{m_}x{k}x{n} t={threads}");
                for r in &trhs {
                    assert_eq!(
                        Reference.transpose_multiply(a, r).unwrap(),
                        backend.transpose_multiply(a, r).unwrap(),
                        "tmul {m_}x{k}x{n} t={threads}"
                    );
                }
            }
        }
    }
}

/// The fused-kernel counter observes rewrite-aware routing end to end: a
/// resugared `tr(A)·B` plan fuses, a pre-materialized transpose does not.
#[test]
fn fused_routing_is_observable_through_eval() {
    let env = corpus_env(false, 300);
    let backend = Parallel::with_threads(2);
    let fused_plan = mul(t(m("A")), mul(m("A"), m("B")));
    let got = eval_with(&fused_plan, &env, &backend).unwrap();
    assert_eq!(backend.fused_tmul_calls(), 1);
    assert_eq!(got, eval_with(&fused_plan, &env, &Reference).unwrap());
    // Without a transpose directly under the product, nothing fuses.
    let plain = mul(m("B"), mul(m("A"), m("B")));
    let _ = eval_with(&plain, &env, &backend).unwrap();
    assert_eq!(backend.fused_tmul_calls(), 1);
}
