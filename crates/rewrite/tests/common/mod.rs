//! Shared corpus for the differential property tests: a catalog of
//! shape-compatible base matrices and a generator of random shape-valid
//! expressions over them. Used by the engine-equivalence suite
//! (naive vs semi-naïve chase) and the backend suite (Reference vs
//! Parallel kernels), so both differentials exercise the same space.

// Each test binary compiles this module separately and uses a subset.
#![allow(dead_code)]

use hadad_core::expr::dsl::*;
use hadad_core::{Expr, MatrixMeta, MetaCatalog};
use hadad_linalg::rng::Rng64;

/// Base matrices every random expression draws from. Two square sizes, a
/// compatible rectangular pair, and vectors keep all binary ops satisfiable.
pub fn corpus_catalog() -> MetaCatalog {
    let mut cat = MetaCatalog::new();
    cat.register("A", MatrixMeta::dense(12, 8));
    cat.register("B", MatrixMeta::dense(8, 12));
    cat.register("C", MatrixMeta::dense(8, 8));
    cat.register("D", MatrixMeta::dense(12, 12));
    cat.register("x", MatrixMeta::dense(8, 1));
    cat.register("y", MatrixMeta::dense(12, 1));
    cat
}

/// Grows a pool of shape-tracked expressions by random composition and
/// returns the largest composite below a node budget. Only chase-friendly
/// operators (no divergent inverse interplay) so every sample saturates
/// within the test budget.
pub fn random_expr(rng: &mut Rng64) -> Expr {
    let mut pool: Vec<(Expr, (usize, usize))> = vec![
        (m("A"), (12, 8)),
        (m("B"), (8, 12)),
        (m("C"), (8, 8)),
        (m("D"), (12, 12)),
        (m("x"), (8, 1)),
        (m("y"), (12, 1)),
    ];
    let steps = 3 + rng.range_usize(4);
    let mut last_composite: Option<(Expr, usize)> = None;
    for _ in 0..steps {
        let op = rng.range_usize(8);
        let pick = |rng: &mut Rng64, pool: &[(Expr, (usize, usize))]| {
            pool[rng.range_usize(pool.len())].clone()
        };
        let made: Option<(Expr, (usize, usize))> = match op {
            // Multiplication dominates (it is what the catalogue rewrites
            // hardest): pick a left factor, then any right factor that fits.
            0..=2 => {
                let (l, (lr, lc)) = pick(rng, &pool);
                let fits: Vec<&(Expr, (usize, usize))> =
                    pool.iter().filter(|(_, (rr, _))| *rr == lc).collect();
                if fits.is_empty() {
                    None
                } else {
                    let (r, (_, rc)) = fits[rng.range_usize(fits.len())].clone();
                    Some((mul(l, r), (lr, rc)))
                }
            }
            3..=5 => {
                let (l, ls) = pick(rng, &pool);
                let fits: Vec<&(Expr, (usize, usize))> =
                    pool.iter().filter(|(_, s)| *s == ls).collect();
                let (r, _) = fits[rng.range_usize(fits.len())].clone();
                Some(match op {
                    3 => (add(l, r), ls),
                    4 => (sub(l, r), ls),
                    _ => (had(l, r), ls),
                })
            }
            6 => {
                let (e, (r, c)) = pick(rng, &pool);
                Some((t(e), (c, r)))
            }
            _ => {
                let squares: Vec<&(Expr, (usize, usize))> =
                    pool.iter().filter(|(_, (r, c))| r == c && *r > 1).collect();
                if squares.is_empty() {
                    None
                } else {
                    let (e, _) = squares[rng.range_usize(squares.len())].clone();
                    Some((trace(e), (1, 1)))
                }
            }
        };
        if let Some((e, shape)) = made {
            let n = e.node_count();
            if n <= 16 {
                if last_composite.as_ref().map_or(true, |(_, best)| n >= *best) {
                    last_composite = Some((e.clone(), n));
                }
                pool.push((e, shape));
            }
        }
    }
    last_composite.map_or_else(|| m("A"), |(e, _)| e)
}
