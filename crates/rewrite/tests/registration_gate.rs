//! Negative tests for the static registration gate: crafted unsafe or
//! non-terminating rule sets must be refused with the typed
//! [`RewriteError::Rejected`] / [`HybridError::RejectedView`] errors at
//! registration time, while well-formed registrations keep working.

mod common;

use common::corpus_catalog;
use hadad_chase::{Atom, Egd, Term, Tgd};
use hadad_core::analyze::IssueKind;
use hadad_core::expr::dsl::*;
use hadad_core::schema::OpKind;
use hadad_core::Vrem;
use hadad_rewrite::{Optimizer, RewriteError};

fn v(i: u32) -> Term {
    Term::Var(i)
}

/// A generator minting a rule that cycles through an *input* position of
/// `multiM`: the existential `?3` lands where no functional EGD can bind
/// it (the catalogue proves `multiM` functional in its *output*), so the
/// position graph gains an unguarded special cycle — rejected.
#[test]
fn cyclic_unguarded_rule_is_rejected_at_registration() {
    let mut opt = Optimizer::new(corpus_catalog());
    let err = opt
        .register_constraints(|vrem: &mut Vrem| {
            let mul = vrem.op(OpKind::Mul);
            vec![Tgd::new(
                "evil-cycle",
                vec![Atom::new(mul, vec![v(0), v(1), v(2)])],
                vec![Atom::new(mul, vec![v(3), v(0), v(1)])],
            )
            .into()]
        })
        .expect_err("unguarded cyclic rule must be refused");
    let RewriteError::Rejected(rej) = err else {
        panic!("expected Rejected, got {err}");
    };
    assert!(rej.issues.iter().any(|i| matches!(i.kind, IssueKind::SpecialCycle { .. })));
    // The rejection renders the witness cycle for diagnostics.
    assert!(rej.to_string().contains("termination risk"));
}

/// An EGD equating a variable its premise never binds is statically
/// unsafe (not range-restricted) and must be refused.
#[test]
fn unsafe_egd_is_rejected_at_registration() {
    let mut opt = Optimizer::new(corpus_catalog());
    let err = opt
        .register_constraints(|vrem: &mut Vrem| {
            let tr = vrem.op(OpKind::Transpose);
            vec![Egd::new(
                "evil-egd",
                vec![Atom::new(tr, vec![v(0), v(1)])],
                vec![(v(7), v(1))],
            )
            .into()]
        })
        .expect_err("EGD with an unbound equality variable must be refused");
    let RewriteError::Rejected(rej) = err else {
        panic!("expected Rejected, got {err}");
    };
    assert!(rej.issues.iter().any(|i| matches!(i.kind, IssueKind::UnboundEgdVar { var: 7 })));
}

/// A rejected generator leaves the optimizer untouched: rewriting still
/// works and no rules from the refused set leak into the chase.
#[test]
fn rejected_generator_does_not_poison_the_optimizer() {
    let mut opt = Optimizer::new(corpus_catalog());
    assert!(opt
        .register_constraints(|vrem: &mut Vrem| {
            let mul = vrem.op(OpKind::Mul);
            vec![Tgd::new(
                "evil-cycle",
                vec![Atom::new(mul, vec![v(0), v(1), v(2)])],
                vec![Atom::new(mul, vec![v(3), v(0), v(1)])],
            )
            .into()]
        })
        .is_err());
    let expr = mul(mul(m("A"), m("B")), mul(m("D"), m("y")));
    let ranked = opt.rewrite(&expr).expect("rewrite must survive a refused registration");
    assert!(ranked.best().est_cost <= ranked.original.est_cost);
}

/// A well-formed mined rule passes the gate and participates in every
/// subsequent rewrite. The rule is a redundant-but-safe commutativity
/// fact over `add` (safe: every variable premise-bound, acyclic).
#[test]
fn safe_mined_rule_is_accepted_and_chased() {
    let mut opt = Optimizer::new(corpus_catalog());
    opt.register_constraints(|vrem: &mut Vrem| {
        let add_p = vrem.op(OpKind::Add);
        vec![Tgd::new(
            "mined-add-comm",
            vec![Atom::new(add_p, vec![v(0), v(1), v(2)])],
            vec![Atom::new(add_p, vec![v(1), v(0), v(2)])],
        )
        .into()]
    })
    .expect("safe generator must register");
    let expr = add(mul(m("A"), m("B")), m("D"));
    let ranked = opt.rewrite(&expr).expect("rewrite with mined rule");
    assert!(ranked.best().est_cost <= ranked.original.est_cost);
}

/// LA view registration stays `Ok` for a well-formed definition and the
/// view is usable by the rewriter afterwards — the gate must not reject
/// the constraints its own generator emits.
#[test]
fn well_formed_la_view_still_registers() {
    let mut opt = Optimizer::new(corpus_catalog());
    opt.register_la_view("V1", mul(m("A"), m("B"))).expect("well-formed view registers");
    let ranked = opt.rewrite(&mul(mul(m("A"), m("B")), m("D"))).expect("rewrite with view");
    assert!(ranked.best().est_cost <= ranked.original.est_cost);
}
