//! Differential property test: the naive and semi-naïve chase engines must
//! agree. For a corpus of random shape-valid expressions, both engines
//! chase the same encoded instance and the results are compared on
//! structure (facts and union-find partition, modulo labelled-null
//! renaming, via a colour-refinement signature) and on behaviour (the
//! extracted min-cost plan). The semi-naïve engine must also enumerate
//! fewer premise matches over the corpus — that is the point of it.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use hadad_chase::{ChaseBudget, ChaseEngine, ChaseOutcome, EvalMode, Instance, NodeId};
use hadad_core::expr::dsl::*;
use hadad_core::{Catalogue, Encoder, Expr, Extractor, MatrixMeta, MetaCatalog, Vrem};
use hadad_linalg::rng::Rng64;
use hadad_rewrite::{FlopsCost, Optimizer, PruneMode};

mod common;
use common::{corpus_catalog, random_expr};

/// Structural signature of an instance, stable under renaming of labelled
/// nulls: colour refinement over the bipartite fact/class incidence graph.
/// Classes start from their constant (or "null"), then are iteratively
/// refined by the multiset of (fact hash, position) incidences; the final
/// signature is the sorted list of facts rendered with class colours.
fn signature(inst: &Instance) -> Vec<(u32, Vec<u64>)> {
    let hash_one = |vals: &dyn Fn(&mut DefaultHasher)| {
        let mut h = DefaultHasher::new();
        vals(&mut h);
        h.finish()
    };
    let mut label: HashMap<NodeId, u64> = HashMap::new();
    for f in inst.facts() {
        for &a in &f.args {
            let root = inst.find(a);
            let init = match inst.const_of(root) {
                Some(s) => hash_one(&|h| (1u8, s.0).hash(h)),
                None => 0,
            };
            label.insert(root, init);
        }
    }
    for _ in 0..5 {
        let mut incidence: HashMap<NodeId, Vec<u64>> = HashMap::new();
        for f in inst.facts() {
            let fact_hash = hash_one(&|h| {
                f.pred.0.hash(h);
                for &a in &f.args {
                    label[&inst.find(a)].hash(h);
                }
            });
            for (pos, &a) in f.args.iter().enumerate() {
                let entry = hash_one(&|h| (fact_hash, pos as u32).hash(h));
                incidence.entry(inst.find(a)).or_default().push(entry);
            }
        }
        label = label
            .iter()
            .map(|(&n, &old)| {
                let mut inc = incidence.remove(&n).unwrap_or_default();
                inc.sort_unstable();
                (n, hash_one(&|h| (old, &inc).hash(h)))
            })
            .collect();
    }
    let mut sig: Vec<(u32, Vec<u64>)> = inst
        .facts()
        .iter()
        .map(|f| (f.pred.0, f.args.iter().map(|&a| label[&inst.find(a)]).collect()))
        .collect();
    sig.sort();
    sig
}

/// Number of distinct union-find classes appearing in facts.
fn active_classes(inst: &Instance) -> usize {
    inst.active_nodes().len()
}

struct ChasePair {
    naive_inst: Instance,
    semi_inst: Instance,
    naive_matches: u64,
    semi_matches: u64,
    root: NodeId,
    vrem: Vrem,
}

fn chase_both(e: &Expr, cat: &MetaCatalog, budget: ChaseBudget) -> ChasePair {
    let mut vrem = Vrem::new();
    let enc = Encoder::new(&mut vrem, cat).encode(e).expect("generator emits valid shapes");
    let catalogue = Catalogue::standard(&mut vrem);
    let naive_engine = ChaseEngine::new(catalogue.constraints.clone())
        .with_budget(budget)
        .with_mode(EvalMode::Naive);
    let semi_engine = ChaseEngine::new(catalogue.constraints).with_budget(budget);
    assert_eq!(semi_engine.mode, EvalMode::SemiNaive, "semi-naïve is the default");
    let mut naive_inst = enc.instance.clone();
    let mut semi_inst = enc.instance;
    let (naive_outcome, naive_stats) = naive_engine.chase(&mut naive_inst);
    let (semi_outcome, semi_stats) = semi_engine.chase(&mut semi_inst);
    assert_eq!(naive_outcome, ChaseOutcome::Saturated, "naive did not saturate on {e}");
    assert_eq!(semi_outcome, ChaseOutcome::Saturated, "semi-naïve did not saturate on {e}");
    ChasePair {
        naive_inst,
        semi_inst,
        naive_matches: naive_stats.matches_enumerated(),
        semi_matches: semi_stats.matches_enumerated(),
        root: enc.root,
        vrem,
    }
}

#[test]
fn naive_and_semi_naive_chases_agree_on_random_corpus() {
    let cat = corpus_catalog();
    let budget =
        ChaseBudget { max_rounds: 12, max_facts: 20_000, max_nulls: 10_000, deadline: None };
    let mut rng = Rng64::new(0xADAD_5EED);
    let mut total_naive = 0u64;
    let mut total_semi = 0u64;
    let mut composites = 0usize;
    for i in 0..120 {
        let e = random_expr(&mut rng);
        if e.node_count() > 1 {
            composites += 1;
        }
        let pair = chase_both(&e, &cat, budget);
        assert_eq!(
            pair.naive_inst.num_facts(),
            pair.semi_inst.num_facts(),
            "sample {i} ({e}): fact counts diverge"
        );
        assert_eq!(
            active_classes(&pair.naive_inst),
            active_classes(&pair.semi_inst),
            "sample {i} ({e}): union-find partitions diverge"
        );
        assert_eq!(
            signature(&pair.naive_inst),
            signature(&pair.semi_inst),
            "sample {i} ({e}): saturated instances are not isomorphic"
        );
        let cost_fn = FlopsCost::default();
        let naive_ex = Extractor::new(&pair.vrem, &pair.naive_inst, &cost_fn);
        let semi_ex = Extractor::new(&pair.vrem, &pair.semi_inst, &cost_fn);
        let (np, sp) = (naive_ex.extract(pair.root), semi_ex.extract(pair.root));
        if np != sp {
            panic!(
                "sample {i} ({e}): best plans diverge\n naive: {:?}\n semi:  {:?}",
                np.map(|x| x.to_string()),
                sp.map(|x| x.to_string())
            );
        }
        let (cn, cs) = (
            naive_ex.class_cost(pair.root).expect("root solvable"),
            semi_ex.class_cost(pair.root).expect("root solvable"),
        );
        assert!((cn - cs).abs() <= 1e-6 * cn.abs().max(1.0), "sample {i} ({e}): costs diverge");
        total_naive += pair.naive_matches;
        total_semi += pair.semi_matches;
    }
    assert!(composites >= 100, "corpus too degenerate: {composites} composite samples");
    assert!(
        total_semi < total_naive,
        "semi-naïve enumerated {total_semi} matches vs naive {total_naive}"
    );
}

/// Left-deep product chain over shrinking dims ending in a vector.
fn chain_expr(dims: &[usize], cat: &mut MetaCatalog) -> Expr {
    let mut expr: Option<Expr> = None;
    for i in 0..dims.len() - 1 {
        let name = format!("M{}", i + 1);
        cat.register(&name, MatrixMeta::dense(dims[i], dims[i + 1]));
        let leaf = m(&name);
        expr = Some(match expr {
            Some(e) => mul(e, leaf),
            None => leaf,
        });
    }
    expr.unwrap()
}

#[test]
fn chain8_saturates_in_default_budget_and_semi_naive_wins() {
    // The bench's 8-matrix chain, chased under the *default* budget: the
    // semi-naïve engine must saturate it and enumerate strictly fewer
    // premise matches than the naive baseline (ISSUE 2 acceptance).
    let mut cat = MetaCatalog::new();
    let e = chain_expr(&[96, 80, 64, 48, 36, 24, 12, 6, 1], &mut cat);
    let pair = chase_both(&e, &cat, ChaseBudget::default());
    assert!(
        pair.semi_matches < pair.naive_matches,
        "semi-naïve must enumerate strictly fewer matches: {} vs {}",
        pair.semi_matches,
        pair.naive_matches
    );
    let cost_fn = FlopsCost::default();
    let ex = Extractor::new(&pair.vrem, &pair.semi_inst, &cost_fn);
    let best = ex.extract(pair.root).expect("chain decodes");
    assert_eq!(best.to_string(), "(M1 (M2 (M3 (M4 (M5 (M6 (M7 M8)))))))");
}

/// `Prune_prov` on the LA path is *safe*, not just fast: over the full
/// 120-expression corpus the pruned and unpruned chase must return best
/// plans of identical estimated cost (ISSUE 4 acceptance).
#[test]
fn pruned_and_unpruned_rewrites_agree_on_best_cost() {
    let cat = corpus_catalog();
    let budget =
        ChaseBudget { max_rounds: 12, max_facts: 20_000, max_nulls: 10_000, deadline: None };
    let mut rng = Rng64::new(0xADAD_5EED);
    let pruned_opt = Optimizer::new(cat.clone()).with_budget(budget);
    assert_eq!(pruned_opt.prune, PruneMode::CostThreshold, "pruning is the default");
    let off_opt = Optimizer::new(cat).with_budget(budget).with_prune(PruneMode::Off);
    let mut total_vetoes = 0usize;
    for i in 0..120 {
        let e = random_expr(&mut rng);
        let pruned = pruned_opt.rewrite(&e).unwrap_or_else(|err| panic!("pruned {e}: {err}"));
        let off = off_opt.rewrite(&e).unwrap_or_else(|err| panic!("unpruned {e}: {err}"));
        let (cp, co) = (pruned.best().est_cost, off.best().est_cost);
        assert!(
            (cp - co).abs() <= 1e-6 * co.abs().max(1.0),
            "sample {i} ({e}): pruned best {} (cost {cp}) vs unpruned best {} (cost {co})",
            pruned.best().expr,
            off.best().expr,
        );
        assert_eq!(off.report.pruned_firings, 0);
        total_vetoes += pruned.report.pruned_firings;
    }
    // The corpus as a whole must exercise the pruner (individual samples
    // may be too small to veto anything).
    assert!(total_vetoes > 0, "pruning never fired on the corpus");
}

/// On the chain families the pruner must actually veto firings — the
/// tightened incumbent (right-deep chain) undercuts the expensive
/// regroupings — while the best plan cost stays identical to the unpruned
/// chase and saturation completes.
#[test]
fn chain_families_prune_and_keep_best_cost() {
    let chains: [(&[usize], ChaseBudget); 2] = [
        (
            &[96, 80, 64, 48, 36, 24, 12, 6, 1],
            ChaseBudget {
                max_rounds: 12,
                max_facts: 30_000,
                max_nulls: 15_000,
                deadline: None,
            },
        ),
        (
            &[96, 88, 80, 64, 48, 40, 36, 24, 16, 12, 6, 4, 1],
            ChaseBudget {
                max_rounds: 20,
                max_facts: 60_000,
                max_nulls: 30_000,
                deadline: None,
            },
        ),
    ];
    for (dims, budget) in chains {
        let n = dims.len() - 1;
        let mut cat = MetaCatalog::new();
        let e = chain_expr(dims, &mut cat);
        let pruned = Optimizer::new(cat.clone()).with_budget(budget).rewrite(&e).unwrap();
        let off = Optimizer::new(cat)
            .with_budget(budget)
            .with_prune(PruneMode::Off)
            .rewrite(&e)
            .unwrap();
        assert_eq!(
            pruned.report.chase_outcome,
            ChaseOutcome::Saturated,
            "pruned chain-{n} did not saturate"
        );
        assert!(
            pruned.report.pruned_firings > 0,
            "chain-{n}: pruning vetoed nothing ({} rounds)",
            pruned.report.chase_rounds
        );
        let (cp, co) = (pruned.best().est_cost, off.best().est_cost);
        assert!(
            (cp - co).abs() <= 1e-6 * co.abs().max(1.0),
            "chain-{n}: pruned best cost {cp} != unpruned {co}"
        );
        // The winner is the right-deep chain either way.
        assert_eq!(pruned.best().expr, off.best().expr, "chain-{n} best plans diverge");
    }
}
