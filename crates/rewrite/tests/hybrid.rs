//! End-to-end hybrid pipelines (paper §9.2): relational preprocessing
//! rewritten by PACB onto materialized table views, cast into LA, and the
//! LA suffix rewritten onto registered LA views — both halves ranked
//! cheaper than the originals and verified by execution.

use hadad_core::expr::dsl::*;
use hadad_core::{MatrixMeta, MetaCatalog};
use hadad_linalg::{approx_eq, rand_gen, Matrix};
use hadad_relational::{Catalog, Column, Table};
use hadad_rewrite::{
    eval, CastKind, Env, HybridOptimizer, HybridPipeline, Optimizer, RelQuery,
};

const NUM_TWEETS: usize = 500;
const NUM_TOPICS: usize = 20;
const COVID_TOPIC: i64 = 7;

/// Synthetic tweets(tid, topic, level): topic cycles over NUM_TOPICS,
/// level over 1..=5.
fn tweets() -> Table {
    let n = NUM_TWEETS as i64;
    Table::new(vec![
        ("tid", Column::Int((0..n).collect())),
        ("topic", Column::Int((0..n).map(|i| i % NUM_TOPICS as i64).collect())),
        ("level", Column::Int((0..n).map(|i| i % 5 + 1).collect())),
    ])
}

/// The paper's §9.2 shape, tweet flavour:
///
/// * relational prefix: filter tweets to one topic — PACB rewrites the scan
///   onto the materialized `covid_tweets` view (25x fewer rows);
/// * cast: the (tid, topic, level) triples become the ultra-sparse
///   filter-level matrix `N`;
/// * LA suffix: `Nᵀ w` — the chase rewrites `Nᵀ` onto the registered,
///   materialized view `NT`, so the winning plan reads a zero-cost leaf.
#[test]
fn tweet_pipeline_rewrites_both_halves_and_verifies() {
    let mut catalog = Catalog::new();
    catalog.register("tweets", tweets());

    let mut la_cat = MetaCatalog::new();
    la_cat.register("w", MatrixMeta::dense(NUM_TWEETS, 1));
    let mut hy = HybridOptimizer::new(catalog, Optimizer::new(la_cat));

    // Materialized table view: tweets pre-filtered to the covid topic.
    hy.register_table_view(
        "covid_tweets",
        RelQuery::scan("tweets").select_eq("topic", COVID_TOPIC),
    )
    .unwrap();
    // Materialized LA view: the transposed filter-level matrix.
    hy.register_la_view("NT", t(m("N")));

    let pipeline = HybridPipeline {
        prefix: RelQuery::scan("tweets").select_eq("topic", COVID_TOPIC),
        sort_key: None,
        cast: CastKind::Sparse {
            row: "tid".into(),
            col: "topic".into(),
            val: "level".into(),
            rows: NUM_TWEETS,
            cols: NUM_TOPICS,
        },
        cast_name: "N".into(),
        suffix: mul(t(m("N")), m("w")),
    };

    let mut env = Env::new();
    env.bind("w", Matrix::Dense(rand_gen::random_dense(NUM_TWEETS, 1, 99)));

    let r = hy.rewrite_hybrid_verified(&pipeline, &env, 1e-9).unwrap();

    // Relational half: the prefix was rewritten onto the materialized view
    // and ranked strictly cheaper (25 rows vs 500).
    let rw = r.rel.rewriting.as_ref().expect("prefix rewritten onto the view");
    assert_eq!(r.rel.cost_original, NUM_TWEETS as f64);
    assert_eq!(r.rel.cost_best, Some((NUM_TWEETS / NUM_TOPICS) as f64));
    assert!(r.rel.cost_best.unwrap() < r.rel.cost_original);
    assert_eq!(r.rel.rows_out, NUM_TWEETS / NUM_TOPICS);
    // The rewriting preserves the selection constant in its head.
    assert!(rw.head.iter().any(|t| t.as_const().is_some()));

    // LA half: the winning plan reads the materialized `NT` leaf and is
    // ranked strictly cheaper than the original transpose-then-multiply.
    assert_eq!(r.best.expr.to_string(), "(NT w)");
    assert!(r.best.est_cost < r.ranked.original.est_cost);

    // Both halves verified by execution.
    assert_eq!(r.verified, Some(true));

    // Cross-check against a from-scratch evaluation of the original
    // pipeline: filter → cast → Nᵀ w.
    let direct_table = pipeline.prefix.execute(&hy.catalog).unwrap();
    let direct_n = match &pipeline.cast {
        CastKind::Sparse { row, col, val, rows, cols } => {
            hadad_relational::cast::table_to_sparse(&direct_table, row, col, val, *rows, *cols)
        }
        _ => unreachable!(),
    };
    let mut check_env = env.clone();
    check_env.bind("N", direct_n.clone());
    check_env.bind("NT", direct_n.transpose());
    let reference = eval(&pipeline.suffix, &check_env).unwrap();
    let best_val = eval(&r.best.expr, &check_env).unwrap();
    assert!(approx_eq(&reference, &best_val, 1e-9));
}

/// The sparse-cast path must catalogue the cast matrix under its *real*
/// ultra-sparse density — dense-default metadata would mislead the cost
/// oracle (the suffix encoder turns this metadata into the `density` facts
/// the chase pruner and extraction DP read).
#[test]
fn sparse_cast_records_real_density_for_the_oracle() {
    let mut catalog = Catalog::new();
    catalog.register("tweets", tweets());
    let mut la_cat = MetaCatalog::new();
    la_cat.register("w", MatrixMeta::dense(NUM_TWEETS, 1));
    let hy = HybridOptimizer::new(catalog, Optimizer::new(la_cat));

    let pipeline = HybridPipeline {
        prefix: RelQuery::scan("tweets").select_eq("topic", COVID_TOPIC),
        sort_key: None,
        cast: CastKind::Sparse {
            row: "tid".into(),
            col: "topic".into(),
            val: "level".into(),
            rows: NUM_TWEETS,
            cols: NUM_TOPICS,
        },
        cast_name: "N".into(),
        suffix: mul(t(m("N")), m("w")),
    };
    let r = hy.rewrite_hybrid(&pipeline).unwrap();

    // 25 surviving tuples in a 500x20 matrix: density 0.25%.
    let expected_nnz = NUM_TWEETS / NUM_TOPICS;
    assert_eq!(r.cast_meta.nnz, expected_nnz);
    assert_eq!((r.cast_meta.rows, r.cast_meta.cols), (NUM_TWEETS, NUM_TOPICS));
    let true_density = expected_nnz as f64 / (NUM_TWEETS * NUM_TOPICS) as f64;
    assert!((r.cast_meta.density() - true_density).abs() < 1e-12);
    assert!(r.cast_meta.density() <= 0.05, "cast metadata defaulted to dense");
    // MNC histograms come from the materialization, not a dense default.
    assert_eq!(r.cast_meta.mnc.as_ref().unwrap().nnz(), expected_nnz as u64);

    // The suffix's cost estimate is sparsity-aware: pricing the same plan
    // against dense-default metadata is orders of magnitude higher.
    let mut dense_cat = MetaCatalog::new();
    dense_cat.register("N", MatrixMeta::dense(NUM_TWEETS, NUM_TOPICS));
    dense_cat.register("w", MatrixMeta::dense(NUM_TWEETS, 1));
    let dense_cost = hadad_rewrite::CostModel::new(&dense_cat).cost(&pipeline.suffix).unwrap();
    assert!(
        r.ranked.original.est_cost < dense_cost / 10.0,
        "oracle priced the sparse cast as dense: {} vs {}",
        r.ranked.original.est_cost,
        dense_cost
    );
}

/// A join-shaped prefix (MIMIC flavour): patients ⋈ admissions, filtered to
/// one service, rewritten onto a pre-joined materialized view; the dense
/// cast feeds a gram-matrix suffix rewritten onto a registered LA view.
#[test]
fn join_pipeline_lands_on_prejoined_view_and_gram_view() {
    let n_pat = 120i64;
    let mut catalog = Catalog::new();
    catalog.register(
        "patients",
        Table::new(vec![
            ("pid", Column::Int((0..n_pat).collect())),
            ("age", Column::Int((0..n_pat).map(|i| 20 + i % 60).collect())),
        ]),
    );
    catalog.register(
        "admissions",
        Table::new(vec![
            ("aid", Column::Int((0..n_pat).collect())),
            ("pid", Column::Int((0..n_pat).collect())),
            ("service", Column::Int((0..n_pat).map(|i| i % 4).collect())),
            ("los", Column::Int((0..n_pat).map(|i| 1 + i % 9).collect())),
        ]),
    );

    let mut hy = HybridOptimizer::new(catalog, Optimizer::new(MetaCatalog::new()));
    // Pre-joined, pre-filtered materialized view (30 rows vs 240 scanned).
    let def =
        RelQuery::scan("patients").join("admissions", "pid", "pid").select_eq("service", 2);
    hy.register_table_view("cardio", def).unwrap();
    hy.register_la_view("G", mul(t(m("X")), m("X")));

    let pipeline = HybridPipeline {
        prefix: RelQuery::scan("patients")
            .join("admissions", "pid", "pid")
            .select_eq("service", 2)
            .project(&["pid", "age", "los"]),
        sort_key: Some("pid".into()),
        cast: CastKind::Dense { columns: vec!["age".into(), "los".into()] },
        cast_name: "X".into(),
        suffix: mul(t(m("X")), m("X")),
    };

    let r = hy.rewrite_hybrid_verified(&pipeline, &Env::new(), 1e-9).unwrap();

    assert!(r.rel.rewriting.is_some(), "join prefix should land on the pre-joined view");
    assert_eq!(r.rel.cost_original, 240.0);
    assert_eq!(r.rel.cost_best, Some(30.0));
    assert_eq!(r.rel.rows_out, 30);
    assert_eq!(r.table.column_names(), &["pid", "age", "los"].map(String::from));

    // The gram matrix lands on the materialized view leaf.
    assert_eq!(r.best.expr.to_string(), "G");
    assert!(r.best.est_cost < r.ranked.original.est_cost);
    assert_eq!(r.verified, Some(true));
}

/// Without a matching materialized view the prefix falls back to the
/// operator pipeline, and the LA suffix still rewrites normally.
#[test]
fn pipeline_without_views_falls_back_cleanly() {
    let mut catalog = Catalog::new();
    catalog.register("tweets", tweets());
    let mut la_cat = MetaCatalog::new();
    la_cat.register("w", MatrixMeta::dense(NUM_TWEETS, 1));
    let hy = HybridOptimizer::new(catalog, Optimizer::new(la_cat));

    let pipeline = HybridPipeline {
        prefix: RelQuery::scan("tweets").select_eq("topic", COVID_TOPIC),
        sort_key: None,
        cast: CastKind::Sparse {
            row: "tid".into(),
            col: "topic".into(),
            val: "level".into(),
            rows: NUM_TWEETS,
            cols: NUM_TOPICS,
        },
        cast_name: "N".into(),
        suffix: mul(t(m("N")), m("w")),
    };
    let mut env = Env::new();
    env.bind("w", Matrix::Dense(rand_gen::random_dense(NUM_TWEETS, 1, 5)));

    let r = hy.rewrite_hybrid_verified(&pipeline, &env, 1e-9).unwrap();
    assert!(r.rel.rewriting.is_none());
    assert_eq!(r.rel.rows_out, NUM_TWEETS / NUM_TOPICS);
    assert_eq!(r.verified, Some(true));
    // The suffix still evaluates and verifies (no LA view: the original
    // shape survives as the best verified plan).
    assert!(r.best.est_cost <= r.ranked.original.est_cost);
}
