//! End-to-end hybrid pipelines (paper §9.2): relational preprocessing
//! rewritten by PACB onto materialized table views, cast into LA, and the
//! LA suffix rewritten onto registered LA views — both halves ranked
//! cheaper than the originals and verified by execution.

use hadad_chase::{DegradeReason, Degraded, RewritePhase};
use hadad_core::expr::dsl::*;
use hadad_core::{MatrixMeta, MetaCatalog};
use hadad_linalg::{approx_eq, rand_gen, Matrix};
use hadad_relational::{Catalog, Column, Table, Value};
use hadad_rewrite::{
    eval, CastKind, Env, HybridError, HybridOptimizer, HybridPipeline, MaintainedCast,
    Optimizer, RelQuery,
};

const NUM_TWEETS: usize = 500;
const NUM_TOPICS: usize = 20;
const COVID_TOPIC: i64 = 7;

/// Synthetic tweets(tid, topic, level): topic cycles over NUM_TOPICS,
/// level over 1..=5.
fn tweets() -> Table {
    let n = NUM_TWEETS as i64;
    Table::new(vec![
        ("tid", Column::Int((0..n).collect())),
        ("topic", Column::Int((0..n).map(|i| i % NUM_TOPICS as i64).collect())),
        ("level", Column::Int((0..n).map(|i| i % 5 + 1).collect())),
    ])
}

/// The paper's §9.2 shape, tweet flavour:
///
/// * relational prefix: filter tweets to one topic — PACB rewrites the scan
///   onto the materialized `covid_tweets` view (25x fewer rows);
/// * cast: the (tid, topic, level) triples become the ultra-sparse
///   filter-level matrix `N`;
/// * LA suffix: `Nᵀ w` — the chase rewrites `Nᵀ` onto the registered,
///   materialized view `NT`, so the winning plan reads a zero-cost leaf.
#[test]
fn tweet_pipeline_rewrites_both_halves_and_verifies() {
    let mut catalog = Catalog::new();
    catalog.register("tweets", tweets());

    let mut la_cat = MetaCatalog::new();
    la_cat.register("w", MatrixMeta::dense(NUM_TWEETS, 1));
    let mut hy = HybridOptimizer::new(catalog, Optimizer::new(la_cat));

    // Materialized table view: tweets pre-filtered to the covid topic.
    hy.register_table_view(
        "covid_tweets",
        RelQuery::scan("tweets").select_eq("topic", COVID_TOPIC),
    )
    .unwrap();
    // Materialized LA view: the transposed filter-level matrix.
    hy.register_la_view("NT", t(m("N"))).unwrap();

    let pipeline = HybridPipeline {
        prefix: RelQuery::scan("tweets").select_eq("topic", COVID_TOPIC),
        sort_key: None,
        cast: CastKind::Sparse {
            row: "tid".into(),
            col: "topic".into(),
            val: "level".into(),
            rows: NUM_TWEETS,
            cols: NUM_TOPICS,
        },
        cast_name: "N".into(),
        suffix: mul(t(m("N")), m("w")),
    };

    let mut env = Env::new();
    env.bind("w", Matrix::Dense(rand_gen::random_dense(NUM_TWEETS, 1, 99)));

    let r = hy.rewrite_hybrid_verified(&pipeline, &env, 1e-9).unwrap();

    // Relational half: the prefix was rewritten onto the materialized view
    // and ranked strictly cheaper (25 rows vs 500).
    let rw = r.rel.rewriting.as_ref().expect("prefix rewritten onto the view");
    assert_eq!(r.rel.cost_original, NUM_TWEETS as f64);
    assert_eq!(r.rel.cost_best, Some((NUM_TWEETS / NUM_TOPICS) as f64));
    assert!(r.rel.cost_best.unwrap() < r.rel.cost_original);
    assert_eq!(r.rel.rows_out, NUM_TWEETS / NUM_TOPICS);
    // The rewriting preserves the selection constant in its head.
    assert!(rw.head.iter().any(|t| t.as_const().is_some()));

    // LA half: the winning plan reads the materialized `NT` leaf and is
    // ranked strictly cheaper than the original transpose-then-multiply.
    assert_eq!(r.best.expr.to_string(), "(NT w)");
    assert!(r.best.est_cost < r.ranked.original.est_cost);

    // Both halves verified by execution.
    assert_eq!(r.verified, Some(true));

    // Cross-check against a from-scratch evaluation of the original
    // pipeline: filter → cast → Nᵀ w.
    let direct_table = pipeline.prefix.execute(&hy.catalog).unwrap();
    let direct_n = match &pipeline.cast {
        CastKind::Sparse { row, col, val, rows, cols } => {
            hadad_relational::cast::table_to_sparse(&direct_table, row, col, val, *rows, *cols)
        }
        _ => unreachable!(),
    };
    let mut check_env = env.clone();
    check_env.bind("N", direct_n.clone());
    check_env.bind("NT", direct_n.transpose());
    let reference = eval(&pipeline.suffix, &check_env).unwrap();
    let best_val = eval(&r.best.expr, &check_env).unwrap();
    assert!(approx_eq(&reference, &best_val, 1e-9));
}

/// The sparse-cast path must catalogue the cast matrix under its *real*
/// ultra-sparse density — dense-default metadata would mislead the cost
/// oracle (the suffix encoder turns this metadata into the `density` facts
/// the chase pruner and extraction DP read).
#[test]
fn sparse_cast_records_real_density_for_the_oracle() {
    let mut catalog = Catalog::new();
    catalog.register("tweets", tweets());
    let mut la_cat = MetaCatalog::new();
    la_cat.register("w", MatrixMeta::dense(NUM_TWEETS, 1));
    let hy = HybridOptimizer::new(catalog, Optimizer::new(la_cat));

    let pipeline = HybridPipeline {
        prefix: RelQuery::scan("tweets").select_eq("topic", COVID_TOPIC),
        sort_key: None,
        cast: CastKind::Sparse {
            row: "tid".into(),
            col: "topic".into(),
            val: "level".into(),
            rows: NUM_TWEETS,
            cols: NUM_TOPICS,
        },
        cast_name: "N".into(),
        suffix: mul(t(m("N")), m("w")),
    };
    let r = hy.rewrite_hybrid(&pipeline).unwrap();

    // 25 surviving tuples in a 500x20 matrix: density 0.25%.
    let expected_nnz = NUM_TWEETS / NUM_TOPICS;
    assert_eq!(r.cast_meta.nnz, expected_nnz);
    assert_eq!((r.cast_meta.rows, r.cast_meta.cols), (NUM_TWEETS, NUM_TOPICS));
    let true_density = expected_nnz as f64 / (NUM_TWEETS * NUM_TOPICS) as f64;
    assert!((r.cast_meta.density() - true_density).abs() < 1e-12);
    assert!(r.cast_meta.density() <= 0.05, "cast metadata defaulted to dense");
    // MNC histograms come from the materialization, not a dense default.
    assert_eq!(r.cast_meta.mnc.as_ref().unwrap().nnz(), expected_nnz as u64);

    // The suffix's cost estimate is sparsity-aware: pricing the same plan
    // against dense-default metadata is orders of magnitude higher.
    let mut dense_cat = MetaCatalog::new();
    dense_cat.register("N", MatrixMeta::dense(NUM_TWEETS, NUM_TOPICS));
    dense_cat.register("w", MatrixMeta::dense(NUM_TWEETS, 1));
    let dense_cost = hadad_rewrite::CostModel::new(&dense_cat).cost(&pipeline.suffix).unwrap();
    assert!(
        r.ranked.original.est_cost < dense_cost / 10.0,
        "oracle priced the sparse cast as dense: {} vs {}",
        r.ranked.original.est_cost,
        dense_cost
    );
}

/// A join-shaped prefix (MIMIC flavour): patients ⋈ admissions, filtered to
/// one service, rewritten onto a pre-joined materialized view; the dense
/// cast feeds a gram-matrix suffix rewritten onto a registered LA view.
#[test]
fn join_pipeline_lands_on_prejoined_view_and_gram_view() {
    let n_pat = 120i64;
    let mut catalog = Catalog::new();
    catalog.register(
        "patients",
        Table::new(vec![
            ("pid", Column::Int((0..n_pat).collect())),
            ("age", Column::Int((0..n_pat).map(|i| 20 + i % 60).collect())),
        ]),
    );
    catalog.register(
        "admissions",
        Table::new(vec![
            ("aid", Column::Int((0..n_pat).collect())),
            ("pid", Column::Int((0..n_pat).collect())),
            ("service", Column::Int((0..n_pat).map(|i| i % 4).collect())),
            ("los", Column::Int((0..n_pat).map(|i| 1 + i % 9).collect())),
        ]),
    );

    let mut hy = HybridOptimizer::new(catalog, Optimizer::new(MetaCatalog::new()));
    // Pre-joined, pre-filtered materialized view (30 rows vs 240 scanned).
    let def =
        RelQuery::scan("patients").join("admissions", "pid", "pid").select_eq("service", 2);
    hy.register_table_view("cardio", def).unwrap();
    hy.register_la_view("G", mul(t(m("X")), m("X"))).unwrap();

    let pipeline = HybridPipeline {
        prefix: RelQuery::scan("patients")
            .join("admissions", "pid", "pid")
            .select_eq("service", 2)
            .project(&["pid", "age", "los"]),
        sort_key: Some("pid".into()),
        cast: CastKind::Dense { columns: vec!["age".into(), "los".into()] },
        cast_name: "X".into(),
        suffix: mul(t(m("X")), m("X")),
    };

    let r = hy.rewrite_hybrid_verified(&pipeline, &Env::new(), 1e-9).unwrap();

    assert!(r.rel.rewriting.is_some(), "join prefix should land on the pre-joined view");
    assert_eq!(r.rel.cost_original, 240.0);
    assert_eq!(r.rel.cost_best, Some(30.0));
    assert_eq!(r.rel.rows_out, 30);
    assert_eq!(r.table.column_names(), &["pid", "age", "los"].map(String::from));

    // The gram matrix lands on the materialized view leaf.
    assert_eq!(r.best.expr.to_string(), "G");
    assert!(r.best.est_cost < r.ranked.original.est_cost);
    assert_eq!(r.verified, Some(true));
}

/// End-to-end maintenance: update `tweets` under the covid-view pipeline,
/// delta-maintain, and re-verify the whole hybrid rewrite. The rewritten
/// prefix must read the *maintained* view and cast the post-update matrix;
/// costs and cardinalities must track the new state.
#[test]
fn updates_delta_maintain_the_view_and_reverify_the_pipeline() {
    let mut catalog = Catalog::new();
    catalog.register("tweets", tweets());
    let mut la_cat = MetaCatalog::new();
    la_cat.register("w", MatrixMeta::dense(NUM_TWEETS, 1));
    let mut hy = HybridOptimizer::new(catalog, Optimizer::new(la_cat));
    hy.register_table_view(
        "covid_tweets",
        RelQuery::scan("tweets").select_eq("topic", COVID_TOPIC),
    )
    .unwrap();
    hy.register_la_view("NT", t(m("N"))).unwrap();

    let pipeline = HybridPipeline {
        prefix: RelQuery::scan("tweets").select_eq("topic", COVID_TOPIC),
        sort_key: None,
        cast: CastKind::Sparse {
            row: "tid".into(),
            col: "topic".into(),
            val: "level".into(),
            rows: NUM_TWEETS,
            cols: NUM_TOPICS,
        },
        cast_name: "N".into(),
        suffix: mul(t(m("N")), m("w")),
    };
    let mut env = Env::new();
    env.bind("w", Matrix::Dense(rand_gen::random_dense(NUM_TWEETS, 1, 99)));

    let before = hy.rewrite_hybrid_verified(&pipeline, &env, 1e-9).unwrap();
    let base_rows = NUM_TWEETS / NUM_TOPICS;
    assert_eq!(before.rel.rows_out, base_rows);

    // Three new covid tweets, one non-covid, and one covid tweet deleted.
    // (tid 7 is the first covid row: 7 % 20 == 7.)
    let report = hy
        .insert_rows(
            "tweets",
            vec![
                vec![Value::Int(600), Value::Int(COVID_TOPIC), Value::Int(2)],
                vec![Value::Int(601), Value::Int(COVID_TOPIC), Value::Int(4)],
                vec![Value::Int(602), Value::Int(COVID_TOPIC), Value::Int(1)],
                vec![Value::Int(603), Value::Int(9), Value::Int(5)],
            ],
        )
        .unwrap();
    assert_eq!(report.changes.len(), 1, "only the covid view changes");
    assert_eq!(report.changes[0].rows_inserted, 3);
    hy.delete_rows("tweets", vec![vec![Value::Int(7), Value::Int(COVID_TOPIC), Value::Int(3)]])
        .unwrap();

    // The maintained view matches a from-scratch materialization...
    let expected_rows = base_rows + 3 - 1;
    assert_eq!(hy.catalog.cardinality("covid_tweets"), Some(expected_rows));
    // ...and Prune_prov prices the post-update instance from it.
    let after = hy.rewrite_hybrid_verified(&pipeline, &env, 1e-9).unwrap();
    assert!(after.rel.rewriting.is_some());
    assert_eq!(after.rel.cost_original, (NUM_TWEETS + 3) as f64);
    assert_eq!(after.rel.cost_best, Some(expected_rows as f64));
    assert_eq!(after.rel.rows_out, expected_rows);
    assert_eq!(after.verified, Some(true));
    // The cast matrix reflects the update (tid 600..=602 are in range only
    // if rows covers them — they are not, so nnz tracks surviving tids).
    let from_scratch = pipeline.prefix.execute(&hy.catalog).unwrap();
    assert_eq!(from_scratch.num_rows(), expected_rows);
    let scratch_cast = hadad_relational::cast::table_to_sparse(
        &from_scratch,
        "tid",
        "topic",
        "level",
        NUM_TWEETS,
        NUM_TOPICS,
    );
    assert_eq!(after.cast_meta.nnz, scratch_cast.nnz());
}

/// Rewriting against a catalog with unmaintained updates is refused — a
/// stale materialization must never silently back a rewriting.
#[test]
fn pending_updates_make_rewrites_fail_until_maintained() {
    let mut catalog = Catalog::new();
    catalog.register("tweets", tweets());
    let mut la_cat = MetaCatalog::new();
    la_cat.register("w", MatrixMeta::dense(NUM_TWEETS, 1));
    let mut hy = HybridOptimizer::new(catalog, Optimizer::new(la_cat));
    hy.register_table_view(
        "covid_tweets",
        RelQuery::scan("tweets").select_eq("topic", COVID_TOPIC),
    )
    .unwrap();

    let pipeline = HybridPipeline {
        prefix: RelQuery::scan("tweets").select_eq("topic", COVID_TOPIC),
        sort_key: None,
        cast: CastKind::Sparse {
            row: "tid".into(),
            col: "topic".into(),
            val: "level".into(),
            rows: NUM_TWEETS,
            cols: NUM_TOPICS,
        },
        cast_name: "N".into(),
        suffix: mul(t(m("N")), m("w")),
    };

    // Mutate through the raw catalog handle: logged but not maintained.
    hy.catalog
        .insert_rows(
            "tweets",
            vec![vec![Value::Int(700), Value::Int(COVID_TOPIC), Value::Int(1)]],
        )
        .unwrap();
    let err = hy.rewrite_hybrid(&pipeline).unwrap_err();
    assert!(
        matches!(err, HybridError::StaleViews(ref vs) if vs == &["covid_tweets".to_string()])
    );

    // Maintenance clears the staleness and the rewrite sees the new row.
    hy.maintain_views().unwrap();
    let r = hy.rewrite_hybrid(&pipeline).unwrap();
    assert_eq!(r.rel.rows_out, NUM_TWEETS / NUM_TOPICS + 1);
}

/// Maintained casts re-stamp the LA catalog's matrix metadata after each
/// update, and the re-stamped meta equals a from-scratch cast exactly.
#[test]
fn maintained_cast_restamps_meta_to_match_scratch_materialization() {
    let mut catalog = Catalog::new();
    catalog.register("tweets", tweets());
    let mut hy = HybridOptimizer::new(catalog, Optimizer::new(MetaCatalog::new()));
    hy.register_table_view(
        "covid_tweets",
        RelQuery::scan("tweets").select_eq("topic", COVID_TOPIC),
    )
    .unwrap();
    let cast = CastKind::Sparse {
        row: "tid".into(),
        col: "topic".into(),
        val: "level".into(),
        rows: NUM_TWEETS,
        cols: NUM_TOPICS,
    };
    hy.register_maintained_cast(MaintainedCast {
        cast_name: "N".into(),
        view: "covid_tweets".into(),
        sort_key: None,
        cast: cast.clone(),
    })
    .unwrap();
    let nnz0 = hy.optimizer.cat.get("N").unwrap().nnz;
    assert_eq!(nnz0, NUM_TWEETS / NUM_TOPICS);

    hy.insert_rows(
        "tweets",
        vec![
            vec![Value::Int(50), Value::Int(COVID_TOPIC), Value::Int(2)],
            vec![Value::Int(51), Value::Int(COVID_TOPIC), Value::Int(3)],
        ],
    )
    .unwrap();

    let meta = hy.optimizer.cat.get("N").unwrap().clone();
    let scratch = hadad_relational::cast::table_to_sparse(
        &RelQuery::scan("tweets").select_eq("topic", COVID_TOPIC).execute(&hy.catalog).unwrap(),
        "tid",
        "topic",
        "level",
        NUM_TWEETS,
        NUM_TOPICS,
    );
    let scratch_meta = MatrixMeta::from_matrix(&scratch);
    assert_eq!(meta.nnz, scratch_meta.nnz);
    assert_eq!((meta.rows, meta.cols), (scratch_meta.rows, scratch_meta.cols));
    assert_eq!(meta.density(), scratch_meta.density());
    assert_eq!(
        meta.mnc.as_ref().map(hadad_core::MncHistogram::nnz),
        scratch_meta.mnc.as_ref().map(hadad_core::MncHistogram::nnz)
    );
}

/// A maintained cast can read a *base table* directly; pending updates on
/// that table must block rewrites just as stale views do — the stamped
/// matrix metadata no longer matches the table.
#[test]
fn stale_maintained_cast_over_base_table_blocks_rewrites() {
    let mut catalog = Catalog::new();
    catalog.register("tweets", tweets());
    let mut la_cat = MetaCatalog::new();
    la_cat.register("w", MatrixMeta::dense(NUM_TWEETS, 1));
    let mut hy = HybridOptimizer::new(catalog, Optimizer::new(la_cat));
    let cast = CastKind::Sparse {
        row: "tid".into(),
        col: "topic".into(),
        val: "level".into(),
        rows: NUM_TWEETS + 10,
        cols: NUM_TOPICS,
    };
    hy.register_maintained_cast(MaintainedCast {
        cast_name: "N".into(),
        view: "tweets".into(),
        sort_key: None,
        cast: cast.clone(),
    })
    .unwrap();
    assert_eq!(hy.optimizer.cat.get("N").unwrap().nnz, NUM_TWEETS);

    hy.catalog
        .insert_rows(
            "tweets",
            vec![vec![Value::Int(NUM_TWEETS as i64), Value::Int(3), Value::Int(1)]],
        )
        .unwrap();
    let pipeline = HybridPipeline {
        prefix: RelQuery::scan("tweets").select_eq("topic", COVID_TOPIC),
        sort_key: None,
        cast,
        cast_name: "M".into(),
        suffix: m("M"),
    };
    let err = hy.rewrite_hybrid(&pipeline).unwrap_err();
    assert!(matches!(err, HybridError::StaleViews(ref vs) if vs == &["cast N".to_string()]));

    // Maintenance re-stamps the cast and clears the staleness.
    hy.maintain_views().unwrap();
    assert_eq!(hy.optimizer.cat.get("N").unwrap().nnz, NUM_TWEETS + 1);
    assert!(hy.rewrite_hybrid(&pipeline).is_ok());
}

/// A failed maintenance pass leaves the facade in a loudly-broken state:
/// maintenance and rewrites refuse until `rebuild_views` re-materializes
/// everything from the current base tables.
#[test]
fn poisoned_maintenance_recovers_through_rebuild() {
    let mut catalog = Catalog::new();
    catalog.register("tweets", tweets());
    let mut hy = HybridOptimizer::new(catalog, Optimizer::new(MetaCatalog::new()));
    hy.register_table_view(
        "covid_tweets",
        RelQuery::scan("tweets").select_eq("topic", COVID_TOPIC),
    )
    .unwrap();

    // Sabotage the materialization through the raw catalog handle, then
    // update the base table: the propagated delta cannot apply.
    hy.catalog.register("covid_tweets", Table::new(vec![("other", Column::Str(vec![]))]));
    hy.catalog
        .insert_rows(
            "tweets",
            vec![vec![Value::Int(600), Value::Int(COVID_TOPIC), Value::Int(1)]],
        )
        .unwrap();
    assert!(matches!(hy.maintain_views(), Err(HybridError::Ivm(_))));
    // Poisoned: maintenance refuses, and rewrites see every view stale.
    assert!(matches!(hy.maintain_views(), Err(HybridError::MaintenancePoisoned)));
    assert_eq!(hy.stale_views(), vec!["covid_tweets"]);
    let pipeline = HybridPipeline {
        prefix: RelQuery::scan("tweets").select_eq("topic", COVID_TOPIC),
        sort_key: None,
        cast: CastKind::Dense { columns: vec!["level".into()] },
        cast_name: "M".into(),
        suffix: m("M"),
    };
    // Poisoned, the pipeline still runs — degraded: base tables only (they
    // are current; only view materializations are unknown), no views
    // offered to either rewriter, and the degradation surfaced.
    let r = hy.rewrite_hybrid(&pipeline).unwrap();
    assert_eq!(
        r.degraded,
        Some(Degraded {
            reason: DegradeReason::MaintenancePoisoned,
            phase: RewritePhase::Maintenance,
        })
    );
    assert!(r.rel.rewriting.is_none());
    assert_eq!(r.rel.rows_out, NUM_TWEETS / NUM_TOPICS + 1);

    // Rebuild re-materializes from the current base tables (which include
    // the insert) and clears the poison.
    hy.rebuild_views().unwrap();
    assert_eq!(hy.catalog.cardinality("covid_tweets"), Some(NUM_TWEETS / NUM_TOPICS + 1));
    let r = hy.rewrite_hybrid(&pipeline).unwrap();
    assert!(r.degraded.is_none());
    assert_eq!(r.rel.rows_out, NUM_TWEETS / NUM_TOPICS + 1);
    // And maintenance works again.
    hy.insert_rows(
        "tweets",
        vec![vec![Value::Int(601), Value::Int(COVID_TOPIC), Value::Int(2)]],
    )
    .unwrap();
    assert_eq!(hy.catalog.cardinality("covid_tweets"), Some(NUM_TWEETS / NUM_TOPICS + 2));
}

/// A maintained cast's name must be fresh in the LA catalog: re-stamping
/// over an existing input matrix (or another cast) would silently repoint
/// every plan reading that name at the cast's metadata.
#[test]
fn duplicate_cast_names_are_rejected() {
    let mut catalog = Catalog::new();
    catalog.register("tweets", tweets());
    let mut la_cat = MetaCatalog::new();
    la_cat.register("w", MatrixMeta::dense(NUM_TWEETS, 1));
    let mut hy = HybridOptimizer::new(catalog, Optimizer::new(la_cat));
    let mk = |name: &str| MaintainedCast {
        cast_name: name.into(),
        view: "tweets".into(),
        sort_key: None,
        cast: CastKind::Dense { columns: vec!["level".into()] },
    };
    // Clobbering an existing LA input matrix is refused...
    let err = hy.register_maintained_cast(mk("w")).unwrap_err();
    assert!(matches!(err, HybridError::DuplicateName(ref n) if n == "w"));
    assert_eq!(hy.optimizer.cat.get("w").unwrap().cols, 1, "input metadata untouched");
    // ...and so is registering the same cast twice.
    hy.register_maintained_cast(mk("N")).unwrap();
    let err = hy.register_maintained_cast(mk("N")).unwrap_err();
    assert!(matches!(err, HybridError::DuplicateName(ref n) if n == "N"));
    assert_eq!(hy.maintained_casts().len(), 1);
}

/// A failed cast re-stamp after the log is drained must poison the
/// maintainer — otherwise the staleness signal is gone and rewrites would
/// price plans with pre-update cast metadata.
#[test]
fn failed_restamp_poisons_instead_of_clearing_staleness() {
    let mut catalog = Catalog::new();
    catalog.register("tweets", tweets());
    let mut hy = HybridOptimizer::new(catalog, Optimizer::new(MetaCatalog::new()));
    hy.register_maintained_cast(MaintainedCast {
        cast_name: "N".into(),
        view: "tweets".into(),
        sort_key: None,
        cast: CastKind::Dense { columns: vec!["level".into()] },
    })
    .unwrap();

    // Replace the cast's source with a table lacking the cast column, then
    // log an update on it: maintenance drains the log, the re-stamp fails.
    hy.catalog.register("tweets", Table::new(vec![("other", Column::Int(vec![1]))]));
    hy.catalog.insert_rows("tweets", vec![vec![Value::Int(2)]]).unwrap();
    assert!(matches!(hy.maintain_views(), Err(HybridError::MissingColumn(_))));

    // The drained log must not have cleared the staleness: the cast stays
    // stale (poisoned) and rewrites over it are refused.
    assert!(matches!(hy.maintain_views(), Err(HybridError::MaintenancePoisoned)));
    let pipeline = HybridPipeline {
        prefix: RelQuery::scan("tweets"),
        sort_key: None,
        cast: CastKind::Dense { columns: vec!["other".into()] },
        cast_name: "M".into(),
        suffix: m("M"),
    };
    // Poisoned runs degrade rather than refuse: the pipeline reads the
    // (current) base table, and the degradation is surfaced on the result.
    let r = hy.rewrite_hybrid(&pipeline).unwrap();
    assert_eq!(r.degraded.as_ref().map(|d| d.reason), Some(DegradeReason::MaintenancePoisoned));

    // Rebuild fails while the source stays broken — and the failed
    // rebuild keeps the poison, so runs stay degraded.
    assert!(hy.rebuild_views().is_err());
    assert!(hy.rewrite_hybrid(&pipeline).unwrap().degraded.is_some());
    // Once the source is restored, rebuild succeeds and the cast metadata
    // is stamped from the restored table.
    hy.catalog.register("tweets", tweets());
    hy.rebuild_views().unwrap();
    assert_eq!(hy.optimizer.cat.get("N").unwrap().rows, NUM_TWEETS);
    // (This pipeline casts the sabotage-era column, which is gone again.)
    assert!(matches!(hy.rewrite_hybrid(&pipeline), Err(HybridError::MissingColumn(_))));
}

/// Registering a view under a taken name is refused, not a silent shadow.
#[test]
fn duplicate_view_names_are_rejected() {
    let mut catalog = Catalog::new();
    catalog.register("tweets", tweets());
    let mut hy = HybridOptimizer::new(catalog, Optimizer::new(MetaCatalog::new()));
    hy.register_table_view("v", RelQuery::scan("tweets").select_eq("topic", 1)).unwrap();
    // Same name again — and a base-table name — both refused.
    let err = hy.register_table_view("v", RelQuery::scan("tweets")).unwrap_err();
    assert!(matches!(err, HybridError::DuplicateName(ref n) if n == "v"));
    let err = hy.register_table_view("tweets", RelQuery::scan("tweets")).unwrap_err();
    assert!(matches!(err, HybridError::DuplicateName(ref n) if n == "tweets"));
    // The original view is intact.
    assert_eq!(hy.catalog.cardinality("v"), Some(NUM_TWEETS / NUM_TOPICS));
    assert_eq!(hy.table_views().len(), 1);
}

/// Without a matching materialized view the prefix falls back to the
/// operator pipeline, and the LA suffix still rewrites normally.
#[test]
fn pipeline_without_views_falls_back_cleanly() {
    let mut catalog = Catalog::new();
    catalog.register("tweets", tweets());
    let mut la_cat = MetaCatalog::new();
    la_cat.register("w", MatrixMeta::dense(NUM_TWEETS, 1));
    let hy = HybridOptimizer::new(catalog, Optimizer::new(la_cat));

    let pipeline = HybridPipeline {
        prefix: RelQuery::scan("tweets").select_eq("topic", COVID_TOPIC),
        sort_key: None,
        cast: CastKind::Sparse {
            row: "tid".into(),
            col: "topic".into(),
            val: "level".into(),
            rows: NUM_TWEETS,
            cols: NUM_TOPICS,
        },
        cast_name: "N".into(),
        suffix: mul(t(m("N")), m("w")),
    };
    let mut env = Env::new();
    env.bind("w", Matrix::Dense(rand_gen::random_dense(NUM_TWEETS, 1, 5)));

    let r = hy.rewrite_hybrid_verified(&pipeline, &env, 1e-9).unwrap();
    assert!(r.rel.rewriting.is_none());
    assert_eq!(r.rel.rows_out, NUM_TWEETS / NUM_TOPICS);
    assert_eq!(r.verified, Some(true));
    // The suffix still evaluates and verifies (no LA view: the original
    // shape survives as the best verified plan).
    assert!(r.best.est_cost <= r.ranked.original.est_cost);
}
