//! Plan-cache soundness: cache-hit plans must be indistinguishable from
//! cold-path plans (same structure, bitwise-same costs) across a random
//! expression corpus, cross-name sharing must re-skin correctly, and
//! catalog mutations must invalidate entries through the epoch stamp.

mod common;

use hadad_core::expr::dsl::*;
use hadad_core::{MatrixMeta, MetaCatalog};
use hadad_linalg::rng::Rng64;
use hadad_relational::{Catalog, Column, Table, Value};
use hadad_rewrite::{
    CastKind, HybridOptimizer, HybridPipeline, Optimizer, RankedPlans, RelQuery,
};

/// Bitwise plan equality: same expressions in the same order, and the
/// estimated costs agree to the last bit (`to_bits`, not a tolerance).
fn assert_plans_identical(want: &RankedPlans, got: &RankedPlans, ctx: &str) {
    assert_eq!(want.original.expr, got.original.expr, "{ctx}: original expr");
    assert_eq!(
        want.original.est_cost.to_bits(),
        got.original.est_cost.to_bits(),
        "{ctx}: original cost"
    );
    assert_eq!(want.plans.len(), got.plans.len(), "{ctx}: plan count");
    for (i, (w, g)) in want.plans.iter().zip(&got.plans).enumerate() {
        assert_eq!(w.expr, g.expr, "{ctx}: plan {i} expr");
        assert_eq!(
            w.est_cost.to_bits(),
            g.est_cost.to_bits(),
            "{ctx}: plan {i} cost ({} vs {})",
            w.est_cost,
            g.est_cost
        );
    }
}

/// The acceptance property: over a 120-expression corpus, every cache-hit
/// answer is bitwise identical (plan structure and cost) to what the
/// cold, cache-less optimizer computes for the same expression — both on
/// the first cached call (which may cross-name-hit an earlier entry) and
/// on the guaranteed same-key repeat.
#[test]
fn cache_hits_match_cold_path_over_corpus() {
    let cat = common::corpus_catalog();
    let cold = Optimizer::new(cat.clone());
    let cached = Optimizer::new(cat).with_plan_cache(512);
    let mut rng = Rng64::new(0x9E3779B9);
    let mut hits = 0usize;
    for i in 0..120 {
        let e = common::random_expr(&mut rng);
        let want = cold.rewrite(&e).expect("cold rewrite");
        let first = cached.rewrite(&e).expect("first cached rewrite");
        assert_plans_identical(&want, &first, &format!("expr {i} ({e}), first call"));
        let again = cached.rewrite(&e).expect("repeated cached rewrite");
        assert!(again.report.cache.hit, "expr {i} ({e}): repeat must hit the cache");
        hits += 1;
        assert_plans_identical(&want, &again, &format!("expr {i} ({e}), cache hit"));
    }
    assert_eq!(hits, 120, "every repeat must be served from the cache");
}

/// Cross-name sharing: a dimension-compatible repeat under *different*
/// base-matrix names hits the entry and is served re-skinned — the plans
/// read the probe's matrices, and match the cold path exactly.
#[test]
fn cross_name_repeat_hits_and_reskins() {
    let mut cat = MetaCatalog::new();
    cat.register("A", MatrixMeta::dense(400, 8));
    cat.register("B", MatrixMeta::dense(8, 400));
    cat.register("C", MatrixMeta::dense(400, 8));
    cat.register("D", MatrixMeta::dense(8, 400));
    let cached = Optimizer::new(cat.clone()).with_plan_cache(16);

    let first = cached.rewrite(&trace(mul(m("A"), m("B")))).expect("first rewrite");
    assert!(!first.report.cache.hit, "fresh cache cannot hit");
    assert_eq!(first.best().expr.to_string(), "trace((B A))");

    let repeat = cached.rewrite(&trace(mul(m("C"), m("D")))).expect("cross-name rewrite");
    assert!(repeat.report.cache.hit, "same skeleton and bands must hit across names");
    assert_eq!(repeat.best().expr.to_string(), "trace((D C))");
    let want = Optimizer::new(cat).rewrite(&trace(mul(m("C"), m("D")))).expect("cold");
    assert_plans_identical(&want, &repeat, "cross-name hit");
}

/// Pinning a clone to a different epoch refuses (and evicts) the entry:
/// the stale probe is a miss, and the re-primed entry serves at the new
/// epoch only.
#[test]
fn stale_epoch_probe_refuses_entry() {
    let mut cat = MetaCatalog::new();
    cat.register("A", MatrixMeta::dense(300, 6));
    cat.register("B", MatrixMeta::dense(6, 300));
    let opt = Optimizer::new(cat).with_plan_cache(16);
    let e = trace(mul(m("A"), m("B")));

    assert!(!opt.rewrite(&e).expect("prime").report.cache.hit);
    assert!(opt.rewrite(&e).expect("same epoch").report.cache.hit);

    let mut bumped = opt.clone();
    bumped.set_cache_epoch(opt.cache_epoch() + 1);
    let refused = bumped.rewrite(&e).expect("stale probe");
    assert!(!refused.report.cache.hit, "a newer-epoch probe must refuse the entry");
    assert!(refused.report.cache.evictions >= 1, "the refusal evicts the stale entry");
    assert!(bumped.rewrite(&e).expect("re-primed").report.cache.hit);
    // The original clone is now the stale one.
    assert!(!opt.rewrite(&e).expect("old epoch probe").report.cache.hit);
}

/// Warm-starting from a big entry's DP table must survive the fresh
/// chase's *smaller* early-round instances: the cached table of a
/// saturated 12-chain carries node ids past the node space of a fresh
/// encode, and replaying it must drop them — not index out of bounds,
/// panic the chase worker, and silently degrade the re-prime.
#[test]
fn stale_seed_from_larger_instance_stays_clean() {
    let dims = [96usize, 88, 80, 64, 48, 40, 36, 24, 16, 12, 6, 4, 1];
    let mut cat = MetaCatalog::new();
    let names: Vec<String> = (0..dims.len() - 1).map(|i| format!("M{i}")).collect();
    for (i, name) in names.iter().enumerate() {
        cat.register(name, MatrixMeta::dense(dims[i], dims[i + 1]));
    }
    let mut e = m(&names[0]);
    for name in &names[1..] {
        e = mul(e, m(name));
    }
    let mut opt = Optimizer::new(cat).with_plan_cache(16);
    let cold = opt.rewrite(&e).expect("prime");
    assert!(cold.report.degraded.is_none(), "cold 12-chain pass must be clean");

    opt.set_cache_epoch(opt.cache_epoch() + 1);
    let refused = opt.rewrite(&e).expect("stale probe re-runs cold");
    assert!(!refused.report.cache.hit, "newer-epoch probe must refuse the entry");
    assert!(
        refused.report.degraded.is_none(),
        "warm-started re-run must not degrade: {:?}",
        refused.report.degraded
    );
    assert_eq!(refused.best().expr, cold.best().expr);
    assert!(
        opt.rewrite(&e).expect("re-primed").report.cache.hit,
        "the clean warm-started result must re-prime the cache"
    );
}

/// The cache is off by default: without `HADAD_PLAN_CACHE` or
/// `with_plan_cache`, repeats are full rewrites with zeroed counters.
#[test]
fn cache_disabled_by_default() {
    if std::env::var("HADAD_PLAN_CACHE").is_ok() {
        return; // explicit env opt-in overrides the default under test
    }
    let opt = Optimizer::new(common::corpus_catalog());
    let e = trace(mul(m("A"), m("B")));
    for _ in 0..2 {
        let r = opt.rewrite(&e).expect("rewrite");
        assert!(!r.report.cache.hit);
        assert_eq!((r.report.cache.hits, r.report.cache.misses), (0, 0));
    }
}

/// IVM soundness end to end: `insert_rows` / `delete_rows` on a hybrid
/// optimizer bump the catalog epoch, so the very next rewrite refuses the
/// cached plans (no stale hit between the update and the next cold pass)
/// and re-primes the cache at the maintained epoch.
#[test]
fn hybrid_updates_invalidate_cached_plans() {
    let events = Table::new(vec![
        ("eid", Column::Int((0..32).collect())),
        ("kind", Column::Int((0..32).map(|i| i % 4).collect())),
    ]);
    let mut catalog = Catalog::new();
    catalog.register("events", events);
    let mut la_cat = MetaCatalog::new();
    la_cat.register("A", MatrixMeta::dense(200, 10));
    la_cat.register("B", MatrixMeta::dense(10, 200));
    la_cat.register("x", MatrixMeta::dense(200, 1));
    let mut hy = HybridOptimizer::new(catalog, Optimizer::new(la_cat).with_plan_cache(16));
    hy.register_table_view("spikes", RelQuery::scan("events").select_eq("kind", 3))
        .expect("view materializes");
    let pipeline = HybridPipeline {
        prefix: RelQuery::scan("events").select_eq("kind", 3),
        sort_key: None,
        cast: CastKind::Sparse {
            row: "eid".into(),
            col: "kind".into(),
            val: "kind".into(),
            rows: 64,
            cols: 4,
        },
        cast_name: "E".into(),
        suffix: mul(mul(m("A"), m("B")), m("x")),
    };

    let cold = hy.rewrite_hybrid(&pipeline).expect("cold");
    assert!(!cold.ranked.report.cache.hit);
    let warm = hy.rewrite_hybrid(&pipeline).expect("warm");
    assert!(warm.ranked.report.cache.hit, "same-epoch repeat must hit");
    assert_eq!(warm.best.expr, cold.best.expr);

    // Insert (auto-maintained): the epoch moves, the entry must be refused.
    hy.insert_rows("events", vec![vec![Value::Int(32), Value::Int(3)]])
        .expect("insert applies");
    let after_insert = hy.rewrite_hybrid(&pipeline).expect("post-insert");
    assert!(!after_insert.ranked.report.cache.hit, "insert_rows must invalidate cached plans");
    assert!(hy.rewrite_hybrid(&pipeline).expect("re-primed").ranked.report.cache.hit);

    // Deletes invalidate the re-primed entry the same way.
    hy.delete_rows("events", vec![vec![Value::Int(32), Value::Int(3)]])
        .expect("delete applies");
    let after_delete = hy.rewrite_hybrid(&pipeline).expect("post-delete");
    assert!(!after_delete.ranked.report.cache.hit, "delete_rows must invalidate cached plans");
    assert!(hy.rewrite_hybrid(&pipeline).expect("re-primed again").ranked.report.cache.hit);
}
