//! Acceptance tests: the paper-style rewrite families the optimizer must
//! find, each verified by executing original vs. rewritten plan on the
//! linalg backend (HADAD §2 examples, §9 workloads).

use hadad_core::expr::dsl::*;
use hadad_core::{Expr, MatrixMeta, MetaCatalog, TypeFlags};
use hadad_linalg::{rand_gen, Matrix};
use hadad_rewrite::{Env, Optimizer};

fn assert_rewrites_cheaper(opt: &Optimizer, env: &Env, original: &Expr, expected_best: &str) {
    let ranked = opt.rewrite(original).expect("rewrite succeeds");
    let best = ranked.best();
    assert_eq!(best.expr.to_string(), expected_best, "best plan for {original}");
    assert!(
        best.est_cost < ranked.original.est_cost,
        "best plan {} (cost {}) must beat original {} (cost {})",
        best.expr,
        best.est_cost,
        original,
        ranked.original.est_cost
    );
    assert!(
        opt.check_equivalent(original, &best.expr, env, 1e-9).expect("plans evaluate"),
        "rewritten plan {} disagrees with {original}",
        best.expr
    );
}

/// Family 1 — trace cyclicity: `trace(A B) = trace(B A)` avoids the big
/// `n x n` intermediate when A is tall and B is wide.
#[test]
fn trace_cyclic_family() {
    let mut cat = MetaCatalog::new();
    cat.register("A", MatrixMeta::dense(400, 8));
    cat.register("B", MatrixMeta::dense(8, 400));
    let mut env = Env::new();
    env.bind("A", Matrix::Dense(rand_gen::random_dense(400, 8, 1)));
    env.bind("B", Matrix::Dense(rand_gen::random_dense(8, 400, 2)));
    let opt = Optimizer::new(cat);
    assert_rewrites_cheaper(&opt, &env, &trace(mul(m("A"), m("B"))), "trace((B A))");
}

/// Family 2 — multiplication reassociation: `(A B) x` to `A (B x)` turns a
/// matrix-matrix product into two matrix-vector products.
#[test]
fn matrix_chain_family() {
    let mut cat = MetaCatalog::new();
    cat.register("A", MatrixMeta::dense(300, 40));
    cat.register("B", MatrixMeta::dense(40, 300));
    cat.register("x", MatrixMeta::dense(300, 1));
    let mut env = Env::new();
    env.bind("A", Matrix::Dense(rand_gen::random_dense(300, 40, 3)));
    env.bind("B", Matrix::Dense(rand_gen::random_dense(40, 300, 4)));
    env.bind("x", Matrix::Dense(rand_gen::random_dense(300, 1, 5)));
    let opt = Optimizer::new(cat);
    assert_rewrites_cheaper(&opt, &env, &mul(mul(m("A"), m("B")), m("x")), "(A (B x))");
}

/// Family 3 — transpose push-down: `(A B)ᵀ = Bᵀ Aᵀ` transposes the two
/// skinny factors instead of the large product.
#[test]
fn transpose_pushdown_family() {
    let mut cat = MetaCatalog::new();
    cat.register("A", MatrixMeta::dense(200, 3));
    cat.register("B", MatrixMeta::dense(3, 200));
    let mut env = Env::new();
    env.bind("A", Matrix::Dense(rand_gen::random_dense(200, 3, 6)));
    env.bind("B", Matrix::Dense(rand_gen::random_dense(3, 200, 7)));
    let opt = Optimizer::new(cat);
    assert_rewrites_cheaper(&opt, &env, &t(mul(m("A"), m("B"))), "(Bᵀ Aᵀ)");
}

/// Family 4 — decomposition reuse: `trace(Q R)` for `[Q, R] = QR(D)`
/// collapses to `trace(D)`, skipping the `O(n³)` factorization entirely.
#[test]
fn qr_reuse_family() {
    let mut cat = MetaCatalog::new();
    cat.register("D", MatrixMeta::dense(60, 60));
    let mut env = Env::new();
    env.bind("D", Matrix::Dense(rand_gen::random_invertible(60, 8)));
    let opt = Optimizer::new(cat);
    let e = trace(mul(Expr::QrQ(Box::new(m("D"))), Expr::QrR(Box::new(m("D")))));
    assert_rewrites_cheaper(&opt, &env, &e, "trace(D)");
}

/// Family 4b — Cholesky recomposition: `L Lᵀ = S` for `L = cho(S)` when S
/// is flagged symmetric positive definite.
#[test]
fn cholesky_reuse_family() {
    let mut cat = MetaCatalog::new();
    cat.register(
        "S",
        MatrixMeta::dense(50, 50)
            .with_flags(TypeFlags { symmetric_pd: true, ..Default::default() }),
    );
    let mut env = Env::new();
    env.bind("S", Matrix::Dense(rand_gen::random_spd(50, 9)));
    let opt = Optimizer::new(cat);
    assert_rewrites_cheaper(&opt, &env, &mul(cho(m("S")), t(cho(m("S")))), "S");
}

/// The execution hook rejects plans that are *not* equivalent.
#[test]
fn execution_hook_detects_disagreement() {
    let mut cat = MetaCatalog::new();
    cat.register("A", MatrixMeta::dense(10, 10));
    cat.register("B", MatrixMeta::dense(10, 10));
    let mut env = Env::new();
    env.bind("A", Matrix::Dense(rand_gen::random_dense(10, 10, 10)));
    env.bind("B", Matrix::Dense(rand_gen::random_dense(10, 10, 11)));
    let opt = Optimizer::new(cat);
    // A·B != B·A in general: the checker must say so.
    let ok =
        opt.check_equivalent(&mul(m("A"), m("B")), &mul(m("B"), m("A")), &env, 1e-9).unwrap();
    assert!(!ok);
}
