//! Round-trip property tests over a corpus of random expressions:
//!
//! * `extract(encode(e)) == e` modulo the subtraction desugaring;
//! * the optimizer's best plan evaluates to the same matrix as the
//!   original (within `1e-9` relative tolerance).

use hadad_core::{Encoder, Expr, Extractor, MatrixMeta, MetaCatalog, TreeSizeCost, Vrem};
use hadad_linalg::rng::Rng64;
use hadad_linalg::{approx_eq, rand_gen, Matrix};
use hadad_rewrite::{Env, Optimizer};

/// Random well-shaped expression generator. Base matrices are registered
/// on demand (one per shape) and bound to seeded random matrices, so every
/// generated expression both encodes and evaluates.
struct Gen {
    rng: Rng64,
    cat: MetaCatalog,
    env: Env,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Gen { rng: Rng64::new(seed), cat: MetaCatalog::new(), env: Env::new() }
    }

    fn base(&mut self, rows: usize, cols: usize) -> Expr {
        let name = format!("M{rows}x{cols}");
        if self.cat.get(&name).is_none() {
            self.cat.register(&name, MatrixMeta::dense(rows, cols));
            let seed = (rows * 31 + cols) as u64;
            self.env.bind(&name, Matrix::Dense(rand_gen::random_dense(rows, cols, seed)));
        }
        Expr::mat(name)
    }

    fn dim(&mut self) -> usize {
        2 + self.rng.range_usize(4)
    }

    /// Expression of the given shape with the given remaining depth.
    fn gen(&mut self, rows: usize, cols: usize, depth: usize) -> Expr {
        if depth == 0 {
            return self.base(rows, cols);
        }
        let b = |e: Expr| Box::new(e);
        match self.rng.range_usize(9) {
            0 => Expr::Add(
                b(self.gen(rows, cols, depth - 1)),
                b(self.gen(rows, cols, depth - 1)),
            ),
            1 => Expr::Sub(
                b(self.gen(rows, cols, depth - 1)),
                b(self.gen(rows, cols, depth - 1)),
            ),
            2 => Expr::Hadamard(
                b(self.gen(rows, cols, depth - 1)),
                b(self.gen(rows, cols, depth - 1)),
            ),
            3 => {
                let k = self.dim();
                Expr::Mul(b(self.gen(rows, k, depth - 1)), b(self.gen(k, cols, depth - 1)))
            }
            4 => {
                // Positive constants only: `-1` would collide with the
                // subtraction desugaring and make round-trip ambiguous.
                let c = 0.5 + self.rng.range_usize(4) as f64 * 0.5;
                Expr::ScalarMul(b(Expr::Const(c)), b(self.gen(rows, cols, depth - 1)))
            }
            5 => Expr::Transpose(b(self.gen(cols, rows, depth - 1))),
            6 if cols == 1 && rows > 1 => Expr::Diag(b(self.gen(rows, rows, depth - 1))),
            7 if rows == 1 && cols == 1 => {
                let n = self.dim();
                Expr::Trace(b(self.gen(n, n, depth - 1)))
            }
            8 if cols == 1 => {
                let k = self.dim();
                Expr::RowSums(b(self.gen(rows, k, depth - 1)))
            }
            _ => self.base(rows, cols),
        }
    }

    fn random_expr(&mut self, depth: usize) -> Expr {
        let scalar = self.rng.range_usize(4) == 0;
        let (r, c) = if scalar { (1, 1) } else { (self.dim(), self.dim()) };
        self.gen(r, c, depth)
    }
}

#[test]
fn encode_extract_roundtrips_random_corpus() {
    let mut g = Gen::new(0xD15EA5E);
    for i in 0..60 {
        let e = g.random_expr(1 + i % 4);
        let mut vrem = Vrem::new();
        let enc = Encoder::new(&mut vrem, &g.cat)
            .encode(&e)
            .unwrap_or_else(|err| panic!("encode {e}: {err}"));
        let ex = Extractor::new(&vrem, &enc.instance, &TreeSizeCost);
        let back = ex.extract(enc.root).unwrap_or_else(|| panic!("extract {e}"));
        assert_eq!(back, e, "round-trip mismatch for corpus item {i}");
    }
}

#[test]
fn rewritten_plans_evaluate_to_same_matrix() {
    let mut g = Gen::new(0xBEEF);
    // Seed the corpus with a known-rewritable shape so the test cannot be
    // vacuous, then add random expressions.
    let tall = g.base(6, 2);
    let wide = g.base(2, 6);
    let mut corpus = vec![Expr::Trace(Box::new(Expr::Mul(Box::new(tall), Box::new(wide))))];
    for i in 0..25 {
        corpus.push(g.random_expr(1 + i % 3));
    }
    let mut rewritten = 0usize;
    for (i, e) in corpus.into_iter().enumerate() {
        let opt = Optimizer::new(g.cat.clone());
        let ranked = opt.rewrite(&e).unwrap_or_else(|err| panic!("rewrite {e}: {err}"));
        let reference =
            hadad_rewrite::eval(&e, &g.env).unwrap_or_else(|err| panic!("eval {e}: {err}"));
        // Every candidate the optimizer ranks must agree with the
        // original — soundness of the whole encode/chase/decode loop.
        for plan in &ranked.plans {
            let value = hadad_rewrite::eval(&plan.expr, &g.env)
                .unwrap_or_else(|err| panic!("eval plan {} of {e}: {err}", plan.expr));
            assert!(
                approx_eq(&value, &reference, 1e-9),
                "plan {} disagrees with {e} (corpus item {i})",
                plan.expr
            );
        }
        if i == 0 {
            // The seeded trace expression must expose the rotated product.
            assert!(
                ranked.plans.len() >= 2,
                "seeded trace expression produced no alternatives"
            );
        }
        if ranked.best().expr != e {
            rewritten += 1;
        }
    }
    // The seeded expression guarantees at least one genuine rewrite.
    assert!(rewritten > 0, "no expression was ever rewritten");
}
