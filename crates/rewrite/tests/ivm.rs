//! Incremental view maintenance correctness: delta-maintained
//! materializations must equal full re-execution of the view definition —
//! as multisets of rows — after arbitrary insert/delete sequences, for
//! every `RelQuery` operator, including batches that touch several base
//! tables before one maintenance pass.

use hadad_linalg::rng::Rng64;
use hadad_relational::{Catalog, Column, Table, Value};
use hadad_rewrite::hybrid::{HybridError, RelQuery, TableView};
use hadad_rewrite::ViewMaintainer;

use hadad_relational::ivm::table_fingerprint as fingerprint;

fn assert_views_fresh(catalog: &Catalog, views: &[TableView], ctx: &str) {
    for v in views {
        let maintained = catalog.get(&v.name).expect("view table registered");
        let reexecuted = v.def.execute(catalog).expect("definition re-executes");
        assert_eq!(
            fingerprint(maintained),
            fingerprint(&reexecuted),
            "{ctx}: view {} diverged from re-execution (maintained {} rows, re-executed {})",
            v.name,
            maintained.num_rows(),
            reexecuted.num_rows(),
        );
        assert_eq!(
            maintained.column_names(),
            reexecuted.column_names(),
            "{ctx}: view {} schema drifted",
            v.name
        );
        // scan_cost prices the maintained cardinality, which must match.
        assert_eq!(
            catalog.scan_cost([v.name.as_str()]),
            reexecuted.num_rows() as f64,
            "{ctx}: view {} scan_cost went stale",
            v.name
        );
    }
}

/// Base schema: orders(oid, cust, qty, tag) and custs(cid, region).
/// Key domains are tiny so joins hit duplicates — the regime where bag
/// (counting) semantics and set semantics diverge.
fn seed_catalog(rng: &mut Rng64) -> Catalog {
    let n = 30 + rng.range_usize(20) as i64;
    let m = 8 + rng.range_usize(6) as i64;
    let tags = ["covid", "sports", "news"];
    let regions = ["eu", "us"];
    let mut cat = Catalog::new();
    cat.register(
        "orders",
        Table::new(vec![
            ("oid", Column::Int((0..n).collect())),
            ("cust", Column::Int((0..n).map(|_| rng.range_i64(0, 5)).collect())),
            ("qty", Column::Int((0..n).map(|_| rng.range_i64(1, 4)).collect())),
            (
                "tag",
                Column::Str((0..n).map(|_| tags[rng.range_usize(3)].to_string()).collect()),
            ),
        ]),
    );
    cat.register(
        "custs",
        Table::new(vec![
            // Duplicate cids on purpose: a bag join multiplies multiplicities.
            ("cid", Column::Int((0..m).map(|_| rng.range_i64(0, 5)).collect())),
            (
                "region",
                Column::Str((0..m).map(|_| regions[rng.range_usize(2)].to_string()).collect()),
            ),
        ]),
    );
    cat
}

fn random_order_row(rng: &mut Rng64, next_oid: &mut i64) -> Vec<Value> {
    let tags = ["covid", "sports", "news"];
    let oid = *next_oid;
    *next_oid += 1;
    vec![
        Value::Int(oid),
        Value::Int(rng.range_i64(0, 5)),
        Value::Int(rng.range_i64(1, 4)),
        Value::Str(tags[rng.range_usize(3)].to_string()),
    ]
}

fn random_cust_row(rng: &mut Rng64) -> Vec<Value> {
    let regions = ["eu", "us"];
    vec![Value::Int(rng.range_i64(0, 5)), Value::Str(regions[rng.range_usize(2)].to_string())]
}

fn sample_rows(t: &Table, rng: &mut Rng64, k: usize) -> Vec<Vec<Value>> {
    // Distinct positions, so counting semantics retracts exactly k copies.
    let mut picked = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for _ in 0..(k * 4) {
        if picked.len() == k || seen.len() == t.num_rows() {
            break;
        }
        let r = rng.range_usize(t.num_rows());
        if seen.insert(r) {
            picked.push(t.row(r));
        }
    }
    picked
}

/// Views covering every operator: equality selection (int and string),
/// join (with duplicate keys), projection (dropping the key, so the view
/// holds genuine duplicates), and their composition — plus a view over a
/// view, maintained transitively.
fn view_suite() -> Vec<(&'static str, RelQuery)> {
    vec![
        ("v_sel", RelQuery::scan("orders").select_eq("cust", 2)),
        ("v_str", RelQuery::scan("orders").select_str_eq("tag", "covid")),
        ("v_join", RelQuery::scan("orders").join("custs", "cust", "cid")),
        (
            "v_mix",
            RelQuery::scan("orders")
                .select_str_eq("tag", "covid")
                .join("custs", "cust", "cid")
                .project(&["qty", "region"]),
        ),
        ("v_proj", RelQuery::scan("orders").project(&["cust", "qty"])),
        // View over a view: maintains through the queued v_sel delta.
        ("v_over_v", RelQuery::scan("v_sel").select_eq("qty", 3).project(&["oid", "qty"])),
    ]
}

#[test]
fn property_random_update_sequences_keep_views_fresh() {
    for seed in 0..12u64 {
        let mut rng = Rng64::new(0xD317A + seed);
        let mut catalog = seed_catalog(&mut rng);
        let mut next_oid = 1000;

        let mut maintainer = ViewMaintainer::new();
        let mut views = Vec::new();
        for (name, def) in view_suite() {
            let table = def.execute(&catalog).unwrap();
            catalog.register(name, table);
            let view = TableView { name: name.into(), def };
            maintainer.track(&catalog, &view).unwrap();
            views.push(view);
        }
        assert_views_fresh(&catalog, &views, "seed state");

        for step in 0..18 {
            // Batch 1..=3 mutations (possibly over both tables) before one
            // maintenance pass — multi-entry queues exercise the
            // sequential-composition path.
            let batch = 1 + rng.range_usize(3);
            for _ in 0..batch {
                let on_orders = rng.range_usize(4) != 0; // orders updates dominate
                let table = if on_orders { "orders" } else { "custs" };
                let deleting =
                    rng.range_usize(3) == 0 && catalog.cardinality(table).unwrap_or(0) > 4;
                let k = 1 + rng.range_usize(4);
                if deleting {
                    let rows = sample_rows(catalog.get(table).unwrap(), &mut rng, k);
                    catalog.delete_rows(table, rows).unwrap();
                } else {
                    let rows: Vec<Vec<Value>> = (0..k)
                        .map(|_| {
                            if on_orders {
                                random_order_row(&mut rng, &mut next_oid)
                            } else {
                                random_cust_row(&mut rng)
                            }
                        })
                        .collect();
                    catalog.insert_rows(table, rows).unwrap();
                }
            }
            let report = maintainer.maintain(&mut catalog, &views).unwrap();
            assert!(report.entries_processed > 0);
            assert_views_fresh(&catalog, &views, &format!("seed {seed} step {step}"));
        }
    }
}

/// The textbook multi-table trap: insert into *both* sides of a join in
/// one batch, then maintain once. A maintainer that joins the left delta
/// against the already-updated right table double-counts ΔL ⋈ ΔR; the
/// sequential reconstruction must not.
#[test]
fn multi_table_batch_does_not_double_count_delta_join_delta() {
    let mut catalog = Catalog::new();
    catalog.register(
        "l",
        Table::new(vec![("k", Column::Int(vec![1])), ("a", Column::Int(vec![10]))]),
    );
    catalog.register(
        "r",
        Table::new(vec![("k", Column::Int(vec![1])), ("b", Column::Int(vec![20]))]),
    );
    let def = RelQuery::scan("l").join("r", "k", "k");
    let table = def.execute(&catalog).unwrap();
    assert_eq!(table.num_rows(), 1);
    catalog.register("j", table);
    let view = TableView { name: "j".into(), def };
    let mut maintainer = ViewMaintainer::new();
    maintainer.track(&catalog, &view).unwrap();

    // ΔL and ΔR share the key 2: the correct view gains exactly one row
    // (2, 11, 21); double counting ΔL ⋈ ΔR would add it twice.
    catalog.insert_rows("l", vec![vec![Value::Int(2), Value::Int(11)]]).unwrap();
    catalog.insert_rows("r", vec![vec![Value::Int(2), Value::Int(21)]]).unwrap();
    let views = [view];
    maintainer.maintain(&mut catalog, &views).unwrap();

    let j = catalog.get("j").unwrap();
    let expected = views[0].def.execute(&catalog).unwrap();
    assert_eq!(fingerprint(j), fingerprint(&expected));
    assert_eq!(j.num_rows(), 2);
}

/// Deletes through a projection that drops the distinguishing key: the
/// view holds duplicates, and a counting-semantics delete must retract
/// exactly one copy per deleted base row.
#[test]
fn projection_duplicates_retract_by_count() {
    let mut catalog = Catalog::new();
    catalog.register(
        "t",
        Table::new(vec![
            ("id", Column::Int(vec![1, 2, 3, 4])),
            ("lvl", Column::Int(vec![7, 7, 7, 8])),
        ]),
    );
    let def = RelQuery::scan("t").project(&["lvl"]);
    catalog.register("levels", def.execute(&catalog).unwrap());
    let view = TableView { name: "levels".into(), def };
    let mut maintainer = ViewMaintainer::new();
    maintainer.track(&catalog, &view).unwrap();

    catalog.delete_rows("t", vec![vec![Value::Int(2), Value::Int(7)]]).unwrap();
    let views = [view];
    maintainer.maintain(&mut catalog, &views).unwrap();
    let levels = catalog.get("levels").unwrap();
    assert_eq!(levels.num_rows(), 3, "exactly one of the three 7s is retracted");
    assert_eq!(fingerprint(levels), fingerprint(&views[0].def.execute(&catalog).unwrap()));
}

/// An update that misses every view's selection propagates an empty delta:
/// maintenance is a no-op, not a rebuild (this is the cheap path the
/// benchmark's 10x bound rides on).
#[test]
fn irrelevant_updates_touch_nothing() {
    let mut catalog = Catalog::new();
    catalog.register(
        "t",
        Table::new(vec![("id", Column::Int(vec![1, 2])), ("topic", Column::Int(vec![3, 4]))]),
    );
    let def = RelQuery::scan("t").select_eq("topic", 3);
    catalog.register("v", def.execute(&catalog).unwrap());
    let view = TableView { name: "v".into(), def };
    let mut maintainer = ViewMaintainer::new();
    maintainer.track(&catalog, &view).unwrap();

    catalog.insert_rows("t", vec![vec![Value::Int(9), Value::Int(99)]]).unwrap();
    let views = [view];
    let report = maintainer.maintain(&mut catalog, &views).unwrap();
    assert_eq!(report.rows_touched(), 0);
    assert!(report.changes.is_empty());
    assert_eq!(catalog.cardinality("v"), Some(1));
}

/// Tracking over a catalog with pending updates is refused — building the
/// join-input caches from post-update tables would double-count the
/// pending deltas on the next maintenance pass.
#[test]
fn tracking_with_pending_updates_is_refused() {
    let mut catalog = Catalog::new();
    catalog.register("t", Table::new(vec![("id", Column::Int(vec![1, 2]))]));
    let def = RelQuery::scan("t");
    catalog.register("v", def.execute(&catalog).unwrap());
    catalog.insert_rows("t", vec![vec![Value::Int(3)]]).unwrap();
    let mut maintainer = ViewMaintainer::new();
    let err = maintainer.track(&catalog, &TableView { name: "v".into(), def }).unwrap_err();
    assert!(matches!(err, HybridError::PendingUpdates(ref ts) if ts == &["t".to_string()]));
}

/// A failed maintenance pass poisons the maintainer: the drained log and
/// partially maintained views mean state is unknown, so further passes
/// refuse loudly instead of silently rewriting over diverged views.
#[test]
fn failed_maintenance_poisons_the_maintainer() {
    let mut catalog = Catalog::new();
    catalog.register("t", Table::new(vec![("id", Column::Int(vec![1, 2]))]));
    let def = RelQuery::scan("t").select_eq("id", 1);
    catalog.register("v", def.execute(&catalog).unwrap());
    let view = TableView { name: "v".into(), def };
    let mut maintainer = ViewMaintainer::new();
    maintainer.track(&catalog, &view).unwrap();
    assert!(!maintainer.is_poisoned());

    // Sabotage the materialization through the raw catalog handle: the
    // view delta no longer matches its schema, so the pass fails.
    catalog.register("v", Table::new(vec![("other", Column::Str(vec![]))]));
    catalog.insert_rows("t", vec![vec![Value::Int(1)]]).unwrap();
    let views = [view];
    let err = maintainer.maintain(&mut catalog, &views).unwrap_err();
    assert!(matches!(err, HybridError::Ivm(_)));
    assert!(maintainer.is_poisoned());
    // Every further pass refuses until the views are rebuilt.
    let err = maintainer.maintain(&mut catalog, &views).unwrap_err();
    assert!(matches!(err, HybridError::MaintenancePoisoned));
}

/// Untracked views are a hard error, not silently skipped staleness.
#[test]
fn maintaining_an_untracked_join_view_errors() {
    let mut catalog = Catalog::new();
    catalog.register(
        "l",
        Table::new(vec![("k", Column::Int(vec![1])), ("a", Column::Int(vec![10]))]),
    );
    catalog.register(
        "r",
        Table::new(vec![("k", Column::Int(vec![1])), ("b", Column::Int(vec![20]))]),
    );
    let def = RelQuery::scan("l").join("r", "k", "k");
    catalog.register("j", def.execute(&catalog).unwrap());
    let views = [TableView { name: "j".into(), def }];
    catalog.insert_rows("l", vec![vec![Value::Int(1), Value::Int(11)]]).unwrap();
    let mut maintainer = ViewMaintainer::new();
    let err = maintainer.maintain(&mut catalog, &views).unwrap_err();
    assert!(matches!(err, HybridError::UntrackedView(v) if v == "j"));
}
