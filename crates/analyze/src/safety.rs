//! Range-restriction / safety checks over individual dependencies.
//!
//! These are the per-rule sanity conditions that make a dependency
//! meaningful to chase at all: EGDs may only equate things their premise
//! binds, atoms must respect declared arities, and a TGD should neither
//! mint nulls unconditionally (empty premise + existentials) nor conclude
//! facts completely disconnected from what it matched.

use std::collections::{HashMap, HashSet};

use hadad_chase::{Constraint, Egd, FunctionalSig, PredId, Term, Tgd, Vocabulary};

use crate::{reuse_bound_existentials, IssueKind, RuleIssue, Severity};

/// Runs every safety check over the constraint set. Arity validation
/// requires `vocab` (the one the constraints were interned against) and
/// is skipped when absent. `functional` feeds the unguarded-existential
/// cross-check.
pub fn check(
    constraints: &[Constraint],
    vocab: Option<&Vocabulary>,
    functional: &HashMap<PredId, FunctionalSig>,
) -> Vec<RuleIssue> {
    let mut issues = Vec::new();
    for c in constraints {
        match c {
            Constraint::Tgd(t) => check_tgd(t, vocab, functional, &mut issues),
            Constraint::Egd(e) => check_egd(e, vocab, &mut issues),
        }
    }
    issues
}

fn check_arities(
    rule: &str,
    atoms: &[hadad_chase::Atom],
    vocab: &Vocabulary,
    issues: &mut Vec<RuleIssue>,
) {
    for atom in atoms {
        if (atom.pred.0 as usize) >= vocab.num_preds() {
            // Predicate interned elsewhere: arity unknown, skip rather
            // than panic inside `pred_arity`.
            continue;
        }
        let expected = vocab.pred_arity(atom.pred);
        if atom.args.len() != expected {
            issues.push(RuleIssue {
                rule: rule.to_owned(),
                severity: Severity::Error,
                kind: IssueKind::ArityMismatch {
                    pred: atom.pred,
                    expected,
                    found: atom.args.len(),
                },
            });
        }
    }
}

fn check_tgd(
    tgd: &Tgd,
    vocab: Option<&Vocabulary>,
    functional: &HashMap<PredId, FunctionalSig>,
    issues: &mut Vec<RuleIssue>,
) {
    if let Some(v) = vocab {
        check_arities(&tgd.name, &tgd.premise, v, issues);
        check_arities(&tgd.name, &tgd.conclusion, v, issues);
    }
    let existentials = tgd.existential_vars();
    if tgd.premise.is_empty() && !existentials.is_empty() {
        issues.push(RuleIssue {
            rule: tgd.name.clone(),
            severity: Severity::Error,
            kind: IssueKind::UnboundedGenerator,
        });
    }
    let premise_vars: HashSet<u32> =
        tgd.premise.iter().flat_map(hadad_chase::Atom::vars).collect();
    let conclusion_vars: HashSet<u32> =
        tgd.conclusion.iter().flat_map(hadad_chase::Atom::vars).collect();
    if !tgd.premise.is_empty()
        && !premise_vars.is_empty()
        && !conclusion_vars.is_empty()
        && premise_vars.is_disjoint(&conclusion_vars)
    {
        issues.push(RuleIssue {
            rule: tgd.name.clone(),
            severity: Severity::Warning,
            kind: IssueKind::DisconnectedConclusion,
        });
    }
    // PR 4 cross-check: the engine binds existentials via conclusion-atom
    // reuse at functional-EGD output positions; an existential nothing can
    // bind means fresh nulls on every firing even when witnesses exist.
    let guarded = reuse_bound_existentials(tgd, functional);
    for v in existentials {
        if !guarded.contains(&v) {
            issues.push(RuleIssue {
                rule: tgd.name.clone(),
                severity: Severity::Warning,
                kind: IssueKind::UnguardedExistential { var: v },
            });
        }
    }
}

fn check_egd(egd: &Egd, vocab: Option<&Vocabulary>, issues: &mut Vec<RuleIssue>) {
    if let Some(v) = vocab {
        check_arities(&egd.name, &egd.premise, v, issues);
    }
    let premise_vars: HashSet<u32> =
        egd.premise.iter().flat_map(hadad_chase::Atom::vars).collect();
    for (l, r) in &egd.equalities {
        for t in [l, r] {
            if let Term::Var(v) = t {
                if !premise_vars.contains(v) {
                    issues.push(RuleIssue {
                        rule: egd.name.clone(),
                        severity: Severity::Error,
                        kind: IssueKind::UnboundEgdVar { var: *v },
                    });
                }
            }
        }
        if let (Term::Const(a), Term::Const(b)) = (l, r) {
            if a != b {
                issues.push(RuleIssue {
                    rule: egd.name.clone(),
                    severity: Severity::Error,
                    kind: IssueKind::ConstantClash,
                });
            }
        }
    }
}
