//! Duplicate / subsumed-rule detection via premise homomorphism.
//!
//! Rule `B` is redundant given rule `A` when every firing of `B` is
//! already covered by a firing of `A`. We decide this with the standard
//! single-step implication test over canonical databases, reusing the
//! chase's own homomorphism machinery:
//!
//! 1. freeze `B`'s premise into a canonical instance (each variable a
//!    distinct labelled null, constants as themselves);
//! 2. for every homomorphism `h` of `A`'s premise into that instance,
//!    apply `A` once (TGD: insert `h(A.conclusion)` with fresh nulls for
//!    `A`'s existentials; EGD: merge `h`'s images of the equated terms);
//! 3. `B` is subsumed if its own conclusion already holds in the result
//!    under the frozen identity on `B`'s premise variables (TGD: a
//!    homomorphism extending it; EGD: the equated classes coincide).
//!
//! The test is sound but deliberately single-step (no recursive chase),
//! which is exactly the "accidentally registered the same rewrite twice
//! under different names" class of mistake it exists to catch. Mutual
//! subsumption (true duplicates) flags only the later rule.

use std::collections::HashMap;

use hadad_chase::homomorphism::{for_each_match, satisfiable_with};
use hadad_chase::{Constraint, Egd, Instance, NodeId, Provenance, Term, Tgd};

use crate::{IssueKind, RuleIssue, Severity};

/// Flags rules subsumed by another rule in the set.
///
/// Rules that use some predicate at an arity inconsistent with the rest
/// of the set are excluded up front: the chase's homomorphism matcher
/// (rightly) asserts consistent arities, and [`crate::safety`] already
/// reports the mismatch as an error, so there is nothing useful to say
/// about redundancy for a rule that cannot match at all.
pub fn check(constraints: &[Constraint]) -> Vec<RuleIssue> {
    let n = constraints.len();
    let arity_broken = arity_inconsistent_rules(constraints);
    let mut subsumes = vec![vec![false; n]; n];
    for (bi, b) in constraints.iter().enumerate() {
        if arity_broken[bi] {
            continue;
        }
        for (ai, a) in constraints.iter().enumerate() {
            if ai == bi || arity_broken[ai] {
                continue;
            }
            subsumes[ai][bi] = match (a, b) {
                (Constraint::Tgd(a), Constraint::Tgd(b)) => tgd_subsumes(a, b),
                (Constraint::Egd(a), Constraint::Egd(b)) => egd_subsumes(a, b),
                _ => false,
            };
        }
    }
    let mut issues = Vec::new();
    for bi in 0..n {
        let by = (0..n).find(|&ai| {
            // For a mutually-subsuming (equivalent) pair keep the earlier
            // rule and flag only the later one.
            subsumes[ai][bi] && !(subsumes[bi][ai] && ai > bi)
        });
        if let Some(ai) = by {
            issues.push(RuleIssue {
                rule: constraints[bi].name().to_owned(),
                severity: Severity::Warning,
                kind: IssueKind::Subsumed { by: constraints[ai].name().to_owned() },
            });
        }
    }
    issues
}

/// Marks each rule whose atoms use some predicate at an arity that
/// disagrees with that predicate's first use anywhere in the set.
fn arity_inconsistent_rules(constraints: &[Constraint]) -> Vec<bool> {
    let mut arity: HashMap<hadad_chase::PredId, usize> = HashMap::new();
    let atoms_of = |c: &Constraint| -> Vec<hadad_chase::Atom> {
        match c {
            Constraint::Tgd(t) => t.premise.iter().chain(&t.conclusion).cloned().collect(),
            Constraint::Egd(e) => e.premise.clone(),
        }
    };
    for c in constraints {
        for atom in atoms_of(c) {
            arity.entry(atom.pred).or_insert(atom.args.len());
        }
    }
    constraints
        .iter()
        .map(|c| atoms_of(c).iter().any(|a| arity[&a.pred] != a.args.len()))
        .collect()
}

/// Canonical database of a premise: every variable frozen to its own
/// labelled null, constants interned. Returns the instance plus the
/// frozen variable map.
fn freeze_premise(atoms: &[hadad_chase::Atom]) -> (Instance, HashMap<u32, NodeId>) {
    let mut inst = Instance::new();
    let mut frozen: HashMap<u32, NodeId> = HashMap::new();
    for atom in atoms {
        let args: Vec<NodeId> = atom
            .args
            .iter()
            .map(|t| match t {
                Term::Var(v) => *frozen.entry(*v).or_insert_with(|| inst.fresh_null()),
                Term::Const(c) => inst.const_node(*c),
            })
            .collect();
        inst.insert(atom.pred, args, Provenance::empty(), None);
    }
    (inst, frozen)
}

/// Resolves a term under `bindings`, interning constants into `inst`.
fn resolve(inst: &mut Instance, bindings: &HashMap<u32, NodeId>, t: &Term) -> Option<NodeId> {
    match t {
        Term::Var(v) => bindings.get(v).copied(),
        Term::Const(c) => Some(inst.const_node(*c)),
    }
}

fn tgd_subsumes(a: &Tgd, b: &Tgd) -> bool {
    let (inst, frozen) = freeze_premise(&b.premise);
    let mut found = false;
    let mut matches: Vec<HashMap<u32, NodeId>> = Vec::new();
    for_each_match(&inst, &a.premise, &mut |m| {
        matches.push(m.bindings.clone());
        true
    });
    for bindings in matches {
        // Apply A once on this match: fresh nulls for its existentials,
        // then its conclusion facts.
        let mut chased = inst.clone();
        let mut h = bindings;
        for v in a.existential_vars() {
            let null = chased.fresh_null();
            h.insert(v, null);
        }
        let mut ok = true;
        for atom in &a.conclusion {
            let args: Vec<NodeId> = match atom
                .args
                .iter()
                .map(|t| resolve(&mut chased, &h, t))
                .collect::<Option<Vec<_>>>()
            {
                Some(args) => args,
                None => {
                    ok = false;
                    break;
                }
            };
            chased.insert(atom.pred, args, Provenance::empty(), None);
        }
        if ok && satisfiable_with(&chased, &b.conclusion, &frozen) {
            found = true;
            break;
        }
    }
    found
}

fn egd_subsumes(a: &Egd, b: &Egd) -> bool {
    let (inst, frozen) = freeze_premise(&b.premise);
    let mut matches: Vec<HashMap<u32, NodeId>> = Vec::new();
    for_each_match(&inst, &a.premise, &mut |m| {
        matches.push(m.bindings.clone());
        true
    });
    for bindings in matches {
        let mut chased = inst.clone();
        let mut consistent = true;
        for (l, r) in &a.equalities {
            let (Some(ln), Some(rn)) =
                (resolve(&mut chased, &bindings, l), resolve(&mut chased, &bindings, r))
            else {
                consistent = false;
                break;
            };
            if chased.merge(ln, rn).is_err() {
                consistent = false;
                break;
            }
        }
        if !consistent {
            continue;
        }
        let holds = b.equalities.iter().all(|(l, r)| {
            match (resolve(&mut chased, &frozen, l), resolve(&mut chased, &frozen, r)) {
                (Some(ln), Some(rn)) => chased.find(ln) == chased.find(rn),
                _ => false,
            }
        });
        if holds {
            return true;
        }
    }
    false
}
