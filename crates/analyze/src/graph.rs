//! Position-dependency graph and weak-acyclicity decision.
//!
//! Nodes are `(predicate, argument position)` pairs. For every TGD and
//! every universally quantified variable `x` occurring in both premise
//! and conclusion, each premise position of `x` gets a *regular* edge to
//! each conclusion position of `x`, and a *special* edge to every
//! conclusion position of every existential variable (Fagin et al.,
//! data-exchange weak acyclicity). A constraint set is weakly acyclic iff
//! no cycle passes through a special edge — the classic guarantee that
//! the chase terminates on every instance.
//!
//! This module adds one refinement: a special edge whose existential is
//! provably bindable by the engine's conclusion-atom reuse (see
//! [`crate::reuse_bound_existentials`]) is downgraded to
//! [`EdgeKind::GuardedSpecial`]. Such an edge can still feed a cycle —
//! the MMC associativity rules do exactly that — but the nulls it mints
//! are bounded by witness reuse in practice, and the runtime
//! [`hadad_chase::ChaseBudget`] is the documented backstop. The report
//! therefore distinguishes `wa_strict` (no special *or* guarded edge on
//! any cycle) from `wa_modulo_reuse` (no unguarded special edge on any
//! cycle), and only the latter gates registration.

use std::collections::{HashMap, HashSet, VecDeque};

use hadad_chase::{Constraint, FunctionalSig, PredId, Term};

use crate::{reuse_bound_existentials, IssueKind, RuleIssue, Severity};

/// Edge flavour in the position-dependency graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// A universal variable flows from a premise position to a
    /// conclusion position.
    Regular,
    /// A premise position feeds an existential's conclusion position and
    /// nothing guards the existential: fresh nulls every firing.
    Special,
    /// Like [`EdgeKind::Special`], but conclusion-atom reuse binds the
    /// existential to an existing witness whenever one exists.
    GuardedSpecial,
}

#[derive(Debug, Clone)]
struct Edge {
    from: usize,
    to: usize,
    kind: EdgeKind,
    /// Index into the analyzed constraint slice.
    rule: usize,
}

/// The position-dependency graph of a constraint set.
#[derive(Debug, Clone)]
pub struct PositionGraph {
    positions: Vec<(PredId, usize)>,
    index: HashMap<(PredId, usize), usize>,
    edges: Vec<Edge>,
}

impl PositionGraph {
    /// Builds the graph. `functional` maps predicates to the functional
    /// signatures their co-registered EGDs prove (used to classify
    /// special edges as guarded).
    pub fn build(
        constraints: &[Constraint],
        functional: &HashMap<PredId, FunctionalSig>,
    ) -> Self {
        let mut g =
            PositionGraph { positions: Vec::new(), index: HashMap::new(), edges: Vec::new() };
        for (ci, c) in constraints.iter().enumerate() {
            let Constraint::Tgd(tgd) = c else { continue };
            let mut premise_pos: HashMap<u32, Vec<usize>> = HashMap::new();
            for atom in &tgd.premise {
                for (i, t) in atom.args.iter().enumerate() {
                    if let Term::Var(v) = t {
                        premise_pos.entry(*v).or_default().push(g.node(atom.pred, i));
                    }
                }
            }
            let mut conclusion_pos: HashMap<u32, Vec<usize>> = HashMap::new();
            for atom in &tgd.conclusion {
                for (i, t) in atom.args.iter().enumerate() {
                    if let Term::Var(v) = t {
                        conclusion_pos.entry(*v).or_default().push(g.node(atom.pred, i));
                    }
                }
            }
            let existentials: Vec<u32> = tgd.existential_vars();
            let guarded = reuse_bound_existentials(tgd, functional);
            for (x, from_positions) in &premise_pos {
                if !conclusion_pos.contains_key(x) {
                    continue; // variable not exported to the conclusion
                }
                for &from in from_positions {
                    for &to in &conclusion_pos[x] {
                        g.edges.push(Edge { from, to, kind: EdgeKind::Regular, rule: ci });
                    }
                    for y in &existentials {
                        let kind = if guarded.contains(y) {
                            EdgeKind::GuardedSpecial
                        } else {
                            EdgeKind::Special
                        };
                        for &to in conclusion_pos.get(y).map_or(&[][..], Vec::as_slice) {
                            g.edges.push(Edge { from, to, kind, rule: ci });
                        }
                    }
                }
            }
        }
        g
    }

    fn node(&mut self, pred: PredId, pos: usize) -> usize {
        if let Some(&id) = self.index.get(&(pred, pos)) {
            return id;
        }
        let id = self.positions.len();
        self.positions.push((pred, pos));
        self.index.insert((pred, pos), id);
        id
    }

    /// Number of `(predicate, position)` nodes.
    pub fn num_positions(&self) -> usize {
        self.positions.len()
    }

    /// Number of distinct `(from, to)` edges of the given kind.
    pub fn num_edges(&self, kind: EdgeKind) -> usize {
        let set: HashSet<(usize, usize)> =
            self.edges.iter().filter(|e| e.kind == kind).map(|e| (e.from, e.to)).collect();
        set.len()
    }

    /// Iterative Tarjan strongly-connected components; returns the
    /// component id of each node.
    fn sccs(&self) -> Vec<usize> {
        let n = self.positions.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in &self.edges {
            adj[e.from].push(e.to);
        }
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut comp = vec![usize::MAX; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut num_comps = 0usize;
        // Explicit DFS frames: (node, next child offset).
        let mut frames: Vec<(usize, usize)> = Vec::new();
        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            frames.push((start, 0));
            while let Some(&(v, child)) = frames.last() {
                if child == 0 {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if child < adj[v].len() {
                    let w = adj[v][child];
                    frames.last_mut().expect("frame exists").1 += 1;
                    if index[w] == usize::MAX {
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    frames.pop();
                    if let Some(&(parent, _)) = frames.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == index[v] {
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            comp[w] = num_comps;
                            if w == v {
                                break;
                            }
                        }
                        num_comps += 1;
                    }
                }
            }
        }
        comp
    }

    /// Shortest path `from → … → to` over all edges (BFS); `None` when
    /// unreachable. Returns the node sequence including both endpoints.
    fn path(&self, from: usize, to: usize) -> Option<Vec<usize>> {
        let n = self.positions.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in &self.edges {
            adj[e.from].push(e.to);
        }
        let mut parent = vec![usize::MAX; n];
        let mut seen = vec![false; n];
        let mut queue = VecDeque::new();
        seen[from] = true;
        queue.push_back(from);
        while let Some(v) = queue.pop_front() {
            if v == to {
                let mut path = vec![to];
                let mut cur = to;
                while cur != from {
                    cur = parent[cur];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            for &w in &adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    parent[w] = v;
                    queue.push_back(w);
                }
            }
        }
        None
    }

    /// Decides weak acyclicity and renders per-rule cycle findings.
    /// Returns `(issues, wa_strict, wa_modulo_reuse)`. One finding per
    /// rule: [`IssueKind::SpecialCycle`] (error) when any of the rule's
    /// unguarded special edges closes a cycle, otherwise
    /// [`IssueKind::GuardedCycle`] (info) when a guarded one does.
    pub fn cycle_issues(&self, constraints: &[Constraint]) -> (Vec<RuleIssue>, bool, bool) {
        let comp = self.sccs();
        let mut special_by_rule: HashMap<usize, &Edge> = HashMap::new();
        let mut guarded_by_rule: HashMap<usize, &Edge> = HashMap::new();
        let mut wa_strict = true;
        let mut wa_modulo_reuse = true;
        for e in &self.edges {
            if e.kind == EdgeKind::Regular {
                continue;
            }
            // `u == v` is a cycle outright; otherwise membership in one
            // SCC means v reaches u, closing the loop through this edge.
            let on_cycle = e.from == e.to || comp[e.from] == comp[e.to];
            if !on_cycle {
                continue;
            }
            wa_strict = false;
            match e.kind {
                EdgeKind::Special => {
                    wa_modulo_reuse = false;
                    special_by_rule.entry(e.rule).or_insert(e);
                }
                EdgeKind::GuardedSpecial => {
                    guarded_by_rule.entry(e.rule).or_insert(e);
                }
                EdgeKind::Regular => unreachable!(),
            }
        }
        let mut issues = Vec::new();
        for (&rule, &edge) in &special_by_rule {
            issues.push(RuleIssue {
                rule: constraints[rule].name().to_owned(),
                severity: Severity::Error,
                kind: IssueKind::SpecialCycle { path: self.witness(edge) },
            });
        }
        for (&rule, &edge) in &guarded_by_rule {
            if special_by_rule.contains_key(&rule) {
                continue; // the error already covers this rule
            }
            issues.push(RuleIssue {
                rule: constraints[rule].name().to_owned(),
                severity: Severity::Info,
                kind: IssueKind::GuardedCycle { path: self.witness(edge) },
            });
        }
        issues.sort_by(|a, b| a.rule.cmp(&b.rule));
        (issues, wa_strict, wa_modulo_reuse)
    }

    /// A witness cycle through `edge`: `from → to → … → from`.
    fn witness(&self, edge: &Edge) -> Vec<(PredId, usize)> {
        let mut nodes = vec![edge.from, edge.to];
        if edge.from != edge.to {
            if let Some(back) = self.path(edge.to, edge.from) {
                nodes.extend(back.into_iter().skip(1));
            }
        } else {
            nodes = vec![edge.from, edge.from];
        }
        nodes.into_iter().map(|i| self.positions[i]).collect()
    }
}
