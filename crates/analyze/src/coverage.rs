//! Stats-propagation coverage: every predicate the chase can *produce*
//! must have a propagation rule concluding statistics for it.
//!
//! The cost oracle prices candidate plans from `size` facts the
//! propagation TGDs attach to chase-created expression classes. A
//! predicate that some TGD conclusion can mint but that no propagation
//! rule covers would populate the e-graph with classes the oracle cannot
//! price — silently degrading extraction, which is why this is an error
//! rather than a warning.

use std::collections::{HashMap, HashSet};

use hadad_chase::{Constraint, PredId};

use crate::{IssueKind, RuleIssue, Severity};

/// Checks that each conclusion-producible predicate (outside `exempt`
/// and the stats predicates themselves) has some TGD that, given a
/// premise atom over it, concludes an atom over one of `stats_preds`
/// sharing a variable with that premise atom.
pub fn check(
    constraints: &[Constraint],
    stats_preds: &[PredId],
    exempt: &[PredId],
) -> Vec<RuleIssue> {
    let skip: HashSet<PredId> = exempt.iter().chain(stats_preds).copied().collect();

    // Predicate -> name of the first rule producing it.
    let mut producible: HashMap<PredId, &str> = HashMap::new();
    for c in constraints {
        let Constraint::Tgd(t) = c else { continue };
        for atom in &t.conclusion {
            if !skip.contains(&atom.pred) {
                producible.entry(atom.pred).or_insert(&t.name);
            }
        }
    }

    // A predicate is covered when a rule reads it in the premise and
    // concludes a stats atom connected to the same variables.
    let mut covered: HashSet<PredId> = HashSet::new();
    for c in constraints {
        let Constraint::Tgd(t) = c else { continue };
        for premise_atom in &t.premise {
            if covered.contains(&premise_atom.pred) || skip.contains(&premise_atom.pred) {
                continue;
            }
            let premise_vars: HashSet<u32> = premise_atom.vars().collect();
            let connected_stats = t.conclusion.iter().any(|conc| {
                stats_preds.contains(&conc.pred)
                    && conc.vars().any(|v| premise_vars.contains(&v))
            });
            if connected_stats {
                covered.insert(premise_atom.pred);
            }
        }
    }

    let mut missing: Vec<(PredId, &str)> =
        producible.into_iter().filter(|(p, _)| !covered.contains(p)).collect();
    missing.sort_by_key(|(p, _)| p.0);
    missing
        .into_iter()
        .map(|(pred, rule)| RuleIssue {
            rule: rule.to_owned(),
            severity: Severity::Error,
            kind: IssueKind::MissingStatsCoverage { pred },
        })
        .collect()
}
