//! Static rule-soundness analysis for HADAD constraint sets.
//!
//! The chase's guarantees are only as good as the constraints it runs:
//! the MMC catalogue, the stats-propagation TGDs, per-view `V_IO`/`V_OI`
//! constraints, and any future *mined* constraints are all just
//! `Vec<Constraint>` values trusted at face value, with runtime
//! fact/null/round budgets as the only backstop. This crate provides the
//! classic *static* certificates of dependency theory (Fagin et al., data
//! exchange) plus HADAD-specific cross-checks, so unsound or
//! non-terminating rule sets are rejected before the chase ever runs:
//!
//! * **Safety / range restriction** ([`safety`]): EGD-equated variables
//!   must be premise-bound, atoms must match their declared arities, and
//!   a TGD may not mint existentials from an empty premise.
//! * **Weak acyclicity** ([`graph`]): the position-dependency graph must
//!   have no cycle through an existential ("special") edge. Because the
//!   engine's conclusion-atom reuse binds existentials at
//!   functional-EGD output positions to existing witnesses (see
//!   [`hadad_chase::functional_sig`]), special edges whose existential is
//!   provably reuse-bound are downgraded to *guarded* edges: a cycle
//!   through only guarded edges (e.g. `mul-assoc`) is reported as an
//!   informational finding — termination there relies on witness reuse
//!   plus the runtime [`hadad_chase::ChaseBudget`] — while a cycle
//!   through an *unguarded* special edge is a hard termination risk.
//!   The report carries both verdicts: [`RuleReport::wa_strict`]
//!   (textbook weak acyclicity) and [`RuleReport::wa_modulo_reuse`]
//!   (the certificate registration gates on).
//! * **Functional-signature cross-check**: every TGD existential should
//!   be bindable by conclusion-atom reuse — an existential at positions
//!   no co-registered EGD proves functional defeats the PR 4 reuse
//!   contract and churns nulls; it is flagged even off-cycle.
//! * **Duplicate/subsumed rules** ([`subsume`]): premise-homomorphism
//!   based redundancy detection, reusing the chase's own
//!   [`hadad_chase::homomorphism`] machinery.
//! * **Stats-propagation coverage** ([`coverage`]): every predicate a
//!   TGD conclusion can produce must have a size-propagation rule, so
//!   chase-created classes never lack the stats the cost oracle reads.
//!
//! EGD interactions are out of scope for the termination certificate
//! (weak acyclicity is defined over TGDs); the functional EGDs are instead
//! consumed as the *reuse* evidence described above.

pub mod coverage;
pub mod graph;
pub mod safety;
pub mod subsume;

use std::collections::{HashMap, HashSet};
use std::fmt;

use hadad_chase::chase::functional_sig;
use hadad_chase::{Constraint, FunctionalSig, PredId, Term, Tgd, Vocabulary};

pub use graph::{EdgeKind, PositionGraph};

/// How bad a finding is. [`Severity::Error`] findings fail certification
/// and registration; warnings and infos are reported but do not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Context worth knowing (e.g. a budget-bounded guarded cycle).
    Info,
    /// Suspicious but not certifiably unsound.
    Warning,
    /// Statically unsafe or a termination risk: fails certification.
    Error,
}

/// The defect class of a finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IssueKind {
    /// An EGD equates a variable no premise atom binds.
    UnboundEgdVar {
        /// The offending variable index.
        var: u32,
    },
    /// An EGD statically equates two distinct constants — every match
    /// would be a [`hadad_chase::ConstClash`].
    ConstantClash,
    /// A TGD with an empty premise mints existentials: an unconditional
    /// null generator.
    UnboundedGenerator,
    /// An atom's argument count disagrees with the predicate's declared
    /// arity.
    ArityMismatch {
        /// The predicate used at the wrong arity.
        pred: PredId,
        /// Arity the vocabulary declares.
        expected: usize,
        /// Arity the atom actually uses.
        found: usize,
    },
    /// A TGD conclusion shares no variables with a non-empty premise:
    /// a cartesian generator firing once per premise match regardless of
    /// what it concluded before.
    DisconnectedConclusion,
    /// A TGD existential that conclusion-atom reuse cannot bind: no
    /// conclusion atom places it at the output positions of a predicate
    /// some co-registered EGD proves functional (with bound inputs).
    UnguardedExistential {
        /// The existential variable.
        var: u32,
    },
    /// A dependency-graph cycle through an *unguarded* special edge:
    /// the chase may mint nulls forever (not weakly acyclic).
    SpecialCycle {
        /// A witness cycle as a list of `(predicate, position)` nodes.
        path: Vec<(PredId, usize)>,
    },
    /// A cycle whose special edges are all reuse-guarded: termination
    /// relies on conclusion-atom reuse plus the runtime budget.
    GuardedCycle {
        /// A witness cycle as a list of `(predicate, position)` nodes.
        path: Vec<(PredId, usize)>,
    },
    /// The rule is redundant: another rule's premise maps into this
    /// one's and already derives everything this rule concludes.
    Subsumed {
        /// Name of the subsuming rule.
        by: String,
    },
    /// A predicate producible by some TGD conclusion has no
    /// stats-propagation rule, so chase-created classes over it would
    /// carry no statistics.
    MissingStatsCoverage {
        /// The uncovered predicate.
        pred: PredId,
    },
}

/// One finding: which rule, how severe, what kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleIssue {
    /// Name of the rule the finding is anchored to.
    pub rule: String,
    /// Severity; [`Severity::Error`] fails certification.
    pub severity: Severity,
    /// The defect class.
    pub kind: IssueKind,
}

impl RuleIssue {
    /// Human-readable message; predicate names resolve through `vocab`
    /// when given, otherwise render as `pred#<id>`.
    pub fn message(&self, vocab: Option<&Vocabulary>) -> String {
        let pred_name = |p: PredId| match vocab {
            Some(v) if (p.0 as usize) < v.num_preds() => v.pred_name(p).to_owned(),
            _ => format!("pred#{}", p.0),
        };
        let path_str = |path: &[(PredId, usize)]| {
            path.iter()
                .map(|&(p, i)| format!("({}, {i})", pred_name(p)))
                .collect::<Vec<_>>()
                .join(" → ")
        };
        match &self.kind {
            IssueKind::UnboundEgdVar { var } => {
                format!(
                    "[{}] EGD equates variable ?{var} that no premise atom binds",
                    self.rule
                )
            }
            IssueKind::ConstantClash => {
                format!(
                    "[{}] EGD equates two distinct constants: every match clashes",
                    self.rule
                )
            }
            IssueKind::UnboundedGenerator => format!(
                "[{}] TGD has an empty premise but mints existentials (unconditional null \
                 generator)",
                self.rule
            ),
            IssueKind::ArityMismatch { pred, expected, found } => format!(
                "[{}] atom over `{}` uses arity {found}, declared {expected}",
                self.rule,
                pred_name(*pred)
            ),
            IssueKind::DisconnectedConclusion => format!(
                "[{}] conclusion shares no variables with the premise (cartesian generator)",
                self.rule
            ),
            IssueKind::UnguardedExistential { var } => format!(
                "[{}] existential ?{var} is not bindable by conclusion-atom reuse (no \
                 functional EGD covers its positions); the chase will mint fresh nulls",
                self.rule
            ),
            IssueKind::SpecialCycle { path } => format!(
                "[{}] termination risk: dependency cycle through an unguarded existential \
                 edge: {}",
                self.rule,
                path_str(path)
            ),
            IssueKind::GuardedCycle { path } => format!(
                "[{}] reuse-guarded cycle (termination relies on conclusion-atom reuse + \
                 chase budget): {}",
                self.rule,
                path_str(path)
            ),
            IssueKind::Subsumed { by } => {
                format!("[{}] subsumed by [{by}]: every firing is already derived", self.rule)
            }
            IssueKind::MissingStatsCoverage { pred } => format!(
                "[{}] produces `{}` facts but no propagation rule concludes stats for them \
                 (chase-created classes would carry no size)",
                self.rule,
                pred_name(*pred)
            ),
        }
    }
}

/// The full analysis report over one constraint set.
#[derive(Debug, Clone)]
pub struct RuleReport {
    /// Number of TGDs analyzed.
    pub num_tgds: usize,
    /// Number of EGDs analyzed.
    pub num_egds: usize,
    /// Predicates some EGD proves functional, with their signatures —
    /// exactly what the chase engine's conclusion-atom reuse consumes.
    pub functional_preds: Vec<(PredId, FunctionalSig)>,
    /// All findings, most severe first.
    pub issues: Vec<RuleIssue>,
    /// Textbook weak acyclicity: no cycle through any special edge,
    /// guarded or not.
    pub wa_strict: bool,
    /// Weak acyclicity modulo conclusion-atom reuse: no cycle through an
    /// *unguarded* special edge. This is the certificate registration
    /// and the CI gate require.
    pub wa_modulo_reuse: bool,
    /// Number of `(predicate, position)` nodes in the dependency graph.
    pub positions: usize,
    /// Regular edge count.
    pub regular_edges: usize,
    /// Unguarded special (existential) edge count.
    pub special_edges: usize,
    /// Reuse-guarded special edge count.
    pub guarded_edges: usize,
}

impl RuleReport {
    /// Findings of [`Severity::Error`].
    pub fn errors(&self) -> impl Iterator<Item = &RuleIssue> {
        self.issues.iter().filter(|i| i.severity == Severity::Error)
    }

    /// The certificate: no error findings and weakly acyclic modulo
    /// reuse. Guarded cycles and warnings do not fail certification.
    pub fn certified(&self) -> bool {
        self.wa_modulo_reuse && self.errors().next().is_none()
    }

    /// The typed rejection carrying every error finding, or `None` when
    /// the set certifies.
    pub fn rejection(&self) -> Option<RuleRejection> {
        if self.certified() {
            return None;
        }
        Some(RuleRejection { issues: self.errors().cloned().collect() })
    }

    /// Multi-line human-readable rendering (used by `xtask analyze`).
    pub fn display(&self, vocab: Option<&Vocabulary>) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "rules: {} TGDs + {} EGDs · functional preds: {} · positions: {} · edges: {} \
             regular / {} guarded / {} special\n",
            self.num_tgds,
            self.num_egds,
            self.functional_preds.len(),
            self.positions,
            self.regular_edges,
            self.guarded_edges,
            self.special_edges,
        ));
        out.push_str(&format!(
            "weakly acyclic (strict): {} · weakly acyclic (modulo reuse): {}\n",
            self.wa_strict, self.wa_modulo_reuse
        ));
        for issue in &self.issues {
            let tag = match issue.severity {
                Severity::Error => "ERROR",
                Severity::Warning => "warn ",
                Severity::Info => "info ",
            };
            out.push_str(&format!("  {tag} {}\n", issue.message(vocab)));
        }
        out.push_str(&format!(
            "verdict: {}\n",
            if self.certified() { "CERTIFIED" } else { "REJECTED" }
        ));
        out
    }
}

/// Typed rejection of a statically-unsafe rule set: the error-severity
/// findings that killed it. Returned by registration entry points.
#[derive(Debug, Clone)]
pub struct RuleRejection {
    /// The error findings (never empty).
    pub issues: Vec<RuleIssue>,
}

impl fmt::Display for RuleRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule set rejected by static analysis ({} error(s)):", self.issues.len())?;
        for i in &self.issues {
            write!(f, "\n  {}", i.message(None))?;
        }
        Ok(())
    }
}

impl std::error::Error for RuleRejection {}

/// Builder-style analyzer over one constraint set.
pub struct Analyzer<'a> {
    constraints: &'a [Constraint],
    vocab: Option<&'a Vocabulary>,
    stats_preds: Vec<PredId>,
    coverage_exempt: Vec<PredId>,
    subsumption: bool,
}

impl<'a> Analyzer<'a> {
    /// Analyzer over `constraints` with every optional check disabled
    /// (no arity validation, no coverage check; subsumption on).
    pub fn new(constraints: &'a [Constraint]) -> Self {
        Analyzer {
            constraints,
            vocab: None,
            stats_preds: Vec::new(),
            coverage_exempt: Vec::new(),
            subsumption: true,
        }
    }

    /// Enables arity validation and name resolution against the
    /// vocabulary the constraints were built over.
    pub fn with_vocab(mut self, vocab: &'a Vocabulary) -> Self {
        self.vocab = Some(vocab);
        self
    }

    /// Enables the stats-propagation coverage check: every
    /// conclusion-producible predicate (minus the exempt set) must have a
    /// propagation rule concluding one of `stats_preds` for it.
    pub fn with_stats_preds(mut self, stats_preds: Vec<PredId>) -> Self {
        self.stats_preds = stats_preds;
        self
    }

    /// Predicates exempt from the coverage check (metadata/flag
    /// relations like `name`, `type`, `identity`).
    pub fn with_coverage_exempt(mut self, exempt: Vec<PredId>) -> Self {
        self.coverage_exempt = exempt;
        self
    }

    /// Disables the quadratic duplicate/subsumption check.
    pub fn without_subsumption(mut self) -> Self {
        self.subsumption = false;
        self
    }

    /// Runs every enabled check and assembles the report.
    pub fn report(&self) -> RuleReport {
        static REPORTS: hadad_obs::LazyCounter = hadad_obs::LazyCounter::new("analyze.reports");
        REPORTS.incr();
        let _span = hadad_obs::span("analyze.report");
        let functional: HashMap<PredId, FunctionalSig> = self
            .constraints
            .iter()
            .filter_map(|c| match c {
                Constraint::Egd(e) => functional_sig(e),
                Constraint::Tgd(_) => None,
            })
            .collect();

        let mut issues = safety::check(self.constraints, self.vocab, &functional);

        let g = PositionGraph::build(self.constraints, &functional);
        let (cycle_issues, wa_strict, wa_modulo_reuse) = g.cycle_issues(self.constraints);
        issues.extend(cycle_issues);

        if self.subsumption {
            issues.extend(subsume::check(self.constraints));
        }
        if !self.stats_preds.is_empty() {
            issues.extend(coverage::check(
                self.constraints,
                &self.stats_preds,
                &self.coverage_exempt,
            ));
        }

        issues.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.rule.cmp(&b.rule)));

        let mut functional_preds: Vec<(PredId, FunctionalSig)> =
            functional.into_iter().collect();
        functional_preds.sort_by_key(|(p, _)| p.0);

        RuleReport {
            num_tgds: self
                .constraints
                .iter()
                .filter(|c| matches!(c, Constraint::Tgd(_)))
                .count(),
            num_egds: self
                .constraints
                .iter()
                .filter(|c| matches!(c, Constraint::Egd(_)))
                .count(),
            functional_preds,
            issues,
            wa_strict,
            wa_modulo_reuse,
            positions: g.num_positions(),
            regular_edges: g.num_edges(EdgeKind::Regular),
            special_edges: g.num_edges(EdgeKind::Special),
            guarded_edges: g.num_edges(EdgeKind::GuardedSpecial),
        }
    }
}

/// The set of a TGD's existential variables that the engine's
/// conclusion-atom reuse can bind to existing witnesses: reached by the
/// same fixpoint the engine runs — an existential resolves when some
/// conclusion atom over a functional predicate places it at an output
/// position with every input position filled by a constant or an
/// already-resolved variable.
pub fn reuse_bound_existentials(
    tgd: &Tgd,
    functional: &HashMap<PredId, FunctionalSig>,
) -> HashSet<u32> {
    let premise_vars: HashSet<u32> =
        tgd.premise.iter().flat_map(hadad_chase::Atom::vars).collect();
    let mut resolved = premise_vars;
    loop {
        let mut progressed = false;
        for atom in &tgd.conclusion {
            let Some(sig) = functional.get(&atom.pred) else {
                continue;
            };
            if sig.inputs.iter().chain(&sig.outputs).any(|&p| p >= atom.args.len()) {
                continue; // arity mismatch — reported separately by safety
            }
            let inputs_bound = sig.inputs.iter().all(|&p| match atom.args[p] {
                Term::Var(v) => resolved.contains(&v),
                Term::Const(_) => true,
            });
            if !inputs_bound {
                continue;
            }
            for &p in &sig.outputs {
                if let Term::Var(v) = atom.args[p] {
                    if resolved.insert(v) {
                        progressed = true;
                    }
                }
            }
        }
        if !progressed {
            break;
        }
    }
    tgd.existential_vars().into_iter().filter(|v| resolved.contains(v)).collect()
}
