//! Unit-level checks of the static analyzer over small hand-built rule
//! sets: cycle classification (special vs reuse-guarded), the safety /
//! range-restriction checks, subsumption, stats coverage, and the
//! reuse-binding fixpoint the guarded-edge downgrade relies on.

use std::collections::HashMap;

use hadad_analyze::{reuse_bound_existentials, Analyzer, IssueKind, RuleReport, Severity};
use hadad_chase::chase::functional_sig;
use hadad_chase::{Atom, Constraint, Egd, FunctionalSig, PredId, Term, Tgd, Vocabulary};

fn v(i: u32) -> Term {
    Term::Var(i)
}

fn has_kind(report: &RuleReport, pred: impl Fn(&IssueKind) -> bool) -> bool {
    report.issues.iter().any(|i| pred(&i.kind))
}

/// `q(x,y) → q(y,z)` with no functional EGD: the special self-edge at
/// `(q,1)` closes a cycle nothing guards — a hard termination risk.
#[test]
fn unguarded_existential_cycle_is_rejected() {
    let mut vocab = Vocabulary::new();
    let q = vocab.predicate("q", 2);
    let rules: Vec<Constraint> = vec![Tgd::new(
        "gen",
        vec![Atom::new(q, vec![v(0), v(1)])],
        vec![Atom::new(q, vec![v(1), v(2)])],
    )
    .into()];

    let report = Analyzer::new(&rules).with_vocab(&vocab).report();
    assert!(!report.wa_strict);
    assert!(!report.wa_modulo_reuse);
    assert!(!report.certified());
    assert!(has_kind(&report, |k| matches!(k, IssueKind::SpecialCycle { .. })));
    // The existential is also flagged off-cycle: nothing can reuse-bind it.
    assert!(has_kind(&report, |k| matches!(k, IssueKind::UnguardedExistential { var: 2 })));
    let rej = report.rejection().expect("uncertified report yields a rejection");
    assert!(rej.to_string().contains("termination risk"));
}

/// The same recursive shape co-registered with `q`'s functional EGD: the
/// existential sits at the output position of a functional predicate with
/// its input premise-bound, so the cycle downgrades to a reuse-guarded
/// Info finding and the set still certifies (modulo reuse, not strictly).
#[test]
fn functional_egd_downgrades_cycle_to_guarded() {
    let mut vocab = Vocabulary::new();
    let q = vocab.predicate("q", 2);
    let rules: Vec<Constraint> = vec![
        Tgd::new(
            "gen",
            vec![Atom::new(q, vec![v(0), v(1)])],
            vec![Atom::new(q, vec![v(1), v(2)])],
        )
        .into(),
        Egd::functional("q-fn", q, 2).into(),
    ];

    let report = Analyzer::new(&rules).with_vocab(&vocab).report();
    assert!(!report.wa_strict, "the cycle still exists in the textbook graph");
    assert!(report.wa_modulo_reuse);
    assert!(report.certified());
    assert_eq!(report.special_edges, 0);
    assert!(report.guarded_edges > 0);
    let guarded: Vec<_> = report
        .issues
        .iter()
        .filter(|i| matches!(i.kind, IssueKind::GuardedCycle { .. }))
        .collect();
    assert!(!guarded.is_empty());
    assert!(guarded.iter().all(|i| i.severity == Severity::Info));
}

#[test]
fn safety_checks_flag_unsafe_rules() {
    let mut vocab = Vocabulary::new();
    let q = vocab.predicate("q", 2);
    let r = vocab.predicate("r", 2);
    let a = vocab.constant("a");
    let b = vocab.constant("b");

    let rules: Vec<Constraint> = vec![
        // EGD equating a variable (?5) no premise atom binds.
        Egd::new("bad-egd", vec![Atom::new(q, vec![v(0), v(1)])], vec![(v(5), v(0))]).into(),
        // EGD forcing two distinct constants equal: every match clashes.
        Egd::new(
            "clash",
            vec![Atom::new(q, vec![v(0), v(1)])],
            vec![(Term::Const(a), Term::Const(b))],
        )
        .into(),
        // Empty premise minting existentials: unconditional generator.
        Tgd::new("mint", vec![], vec![Atom::new(q, vec![v(0), v(1)])]).into(),
        // Conclusion disjoint from a non-empty premise.
        Tgd::new(
            "cartesian",
            vec![Atom::new(q, vec![v(0), v(1)])],
            vec![Atom::new(r, vec![v(2), v(3)])],
        )
        .into(),
        // Atom at the wrong arity for its declared predicate.
        Tgd::new(
            "fat",
            vec![Atom::new(q, vec![v(0), v(1), v(2)])],
            vec![Atom::new(r, vec![v(0), v(1)])],
        )
        .into(),
    ];

    let report = Analyzer::new(&rules).with_vocab(&vocab).report();
    assert!(has_kind(&report, |k| matches!(k, IssueKind::UnboundEgdVar { var: 5 })));
    assert!(has_kind(&report, |k| matches!(k, IssueKind::ConstantClash)));
    assert!(has_kind(&report, |k| matches!(k, IssueKind::UnboundedGenerator)));
    assert!(has_kind(&report, |k| matches!(k, IssueKind::DisconnectedConclusion)));
    assert!(has_kind(&report, |k| matches!(
        k,
        IssueKind::ArityMismatch { expected: 2, found: 3, .. }
    )));
    assert!(!report.certified());
    // Every message renders without panicking, with and without a vocab.
    for issue in &report.issues {
        assert!(!issue.message(Some(&vocab)).is_empty());
        assert!(!issue.message(None).is_empty());
    }
}

/// An exact duplicate is subsumed; under mutual subsumption only the
/// later rule is flagged, so one copy always survives.
#[test]
fn duplicate_rule_is_flagged_as_subsumed() {
    let mut vocab = Vocabulary::new();
    let q = vocab.predicate("q", 2);
    let r = vocab.predicate("r", 2);
    let copy = |name: &str| {
        Tgd::new(
            name,
            vec![Atom::new(q, vec![v(0), v(1)])],
            vec![Atom::new(r, vec![v(1), v(0)])],
        )
    };
    let rules: Vec<Constraint> = vec![copy("first").into(), copy("second").into()];

    let report = Analyzer::new(&rules).with_vocab(&vocab).report();
    let subsumed: Vec<_> = report
        .issues
        .iter()
        .filter_map(|i| match &i.kind {
            IssueKind::Subsumed { by } => Some((i.rule.as_str(), by.as_str())),
            _ => None,
        })
        .collect();
    assert_eq!(subsumed, vec![("second", "first")]);

    // ... and the warning disappears when subsumption is disabled.
    let lean = Analyzer::new(&rules).with_vocab(&vocab).without_subsumption().report();
    assert!(!has_kind(&lean, |k| matches!(k, IssueKind::Subsumed { .. })));
}

/// A more-specific rule (premise strictly stronger, same conclusion) is
/// subsumed by the general one, found via premise homomorphism.
#[test]
fn specialized_rule_is_subsumed_by_general_rule() {
    let mut vocab = Vocabulary::new();
    let q = vocab.predicate("q", 2);
    let p = vocab.predicate("p", 1);
    let r = vocab.predicate("r", 2);
    let rules: Vec<Constraint> = vec![
        Tgd::new(
            "general",
            vec![Atom::new(q, vec![v(0), v(1)])],
            vec![Atom::new(r, vec![v(0), v(1)])],
        )
        .into(),
        Tgd::new(
            "specific",
            vec![Atom::new(q, vec![v(0), v(1)]), Atom::new(p, vec![v(0)])],
            vec![Atom::new(r, vec![v(0), v(1)])],
        )
        .into(),
    ];
    let report = Analyzer::new(&rules).with_vocab(&vocab).report();
    let subsumed: Vec<_> = report
        .issues
        .iter()
        .filter_map(|i| match &i.kind {
            IssueKind::Subsumed { by } => Some((i.rule.as_str(), by.as_str())),
            _ => None,
        })
        .collect();
    assert_eq!(subsumed, vec![("specific", "general")]);
}

#[test]
fn stats_coverage_flags_unpriced_predicates() {
    let mut vocab = Vocabulary::new();
    let q = vocab.predicate("q", 2);
    let r = vocab.predicate("r", 2);
    let size = vocab.predicate("size", 2);
    let n = vocab.int(7);

    let produce: Constraint = Tgd::new(
        "produce",
        vec![Atom::new(q, vec![v(0), v(1)])],
        vec![Atom::new(r, vec![v(0), v(1)])],
    )
    .into();
    let propagate: Constraint = Tgd::new(
        "prop-r",
        vec![Atom::new(r, vec![v(0), v(1)]), Atom::new(size, vec![v(0), v(2)])],
        vec![Atom::new(size, vec![v(1), Term::Const(n)])],
    )
    .into();

    // Without the propagation rule, `r` is producible but unpriced.
    let bare = vec![produce.clone()];
    let report = Analyzer::new(&bare).with_vocab(&vocab).with_stats_preds(vec![size]).report();
    assert!(has_kind(
        &report,
        |k| matches!(k, IssueKind::MissingStatsCoverage { pred } if *pred == r)
    ));
    assert!(!report.certified());

    // With it, coverage is satisfied (the `prop-r` premise reads `r` and
    // concludes a connected `size` atom).
    let covered = vec![produce, propagate];
    let report =
        Analyzer::new(&covered).with_vocab(&vocab).with_stats_preds(vec![size]).report();
    assert!(!has_kind(&report, |k| matches!(k, IssueKind::MissingStatsCoverage { .. })));
}

/// The reuse fixpoint resolves chained existentials: `u` from `f(x)=u`
/// (input premise-bound), then `v` from `g(u)=v` (input resolved in a
/// previous iteration) — and stops where inputs stay unresolved.
#[test]
fn reuse_binding_fixpoint_chains_through_functional_atoms() {
    let mut vocab = Vocabulary::new();
    let q = vocab.predicate("q", 1);
    let f = vocab.predicate("f", 2);
    let g = vocab.predicate("g", 2);
    let h = vocab.predicate("h", 2);

    let mut functional: HashMap<PredId, FunctionalSig> = HashMap::new();
    for (pred, name) in [(f, "f-fn"), (g, "g-fn")] {
        let (p, sig) =
            functional_sig(&Egd::functional(name, pred, 2)).expect("functional shape");
        functional.insert(p, sig);
    }
    // h has no functional EGD: nothing resolves its output.
    let tgd = Tgd::new(
        "chain",
        vec![Atom::new(q, vec![v(0)])],
        vec![
            Atom::new(f, vec![v(0), v(1)]),
            Atom::new(g, vec![v(1), v(2)]),
            Atom::new(h, vec![v(0), v(3)]),
        ],
    );

    let bound = reuse_bound_existentials(&tgd, &functional);
    assert!(bound.contains(&1) && bound.contains(&2));
    assert!(!bound.contains(&3));
}
