//! In-memory relational substrate for HADAD's hybrid (RA + LA) experiments.
//!
//! The paper's hybrid queries (§9.2) run a relational preprocessing stage
//! (SparkSQL in the paper) that joins and filters tables, then casts the
//! result to a matrix consumed by the LA stage. This crate provides that
//! substrate: columnar tables, select / project / hash-join / aggregate
//! operators, and the table↔matrix conversions of the paper's §3 data
//! model (matrix → relation forgets row order; relation → matrix fixes an
//! arbitrary one unless sorted first).

pub mod cast;
pub mod catalog;
pub mod ops;
pub mod table;

pub use catalog::Catalog;
pub use table::{Column, Table, Value};
