//! In-memory relational substrate for HADAD's hybrid (RA + LA) experiments.
//!
//! The paper's hybrid queries (§9.2) run a relational preprocessing stage
//! (SparkSQL in the paper) that joins and filters tables, then casts the
//! result to a matrix consumed by the LA stage. This crate provides that
//! substrate: columnar tables, select / project / hash-join / aggregate
//! operators, and the table↔matrix conversions of the paper's §3 data
//! model (matrix → relation forgets row order; relation → matrix fixes an
//! arbitrary one unless sorted first).

//!
//! Base tables mutate through the catalog's logged `insert_rows` /
//! `delete_rows` API; the [`ivm`] module supplies the signed-multiset
//! deltas and per-operator delta rules (counting semantics) that let a
//! view maintainer keep materialized views consistent without
//! re-executing their definitions.

pub mod cast;
pub mod catalog;
pub mod ivm;
pub mod ops;
pub mod table;

pub use catalog::Catalog;
pub use ivm::{apply_delta, Delta, IvmError, TableUpdate, UpdateLog};
pub use ops::OpsError;
pub use table::{Column, Table, Value};
