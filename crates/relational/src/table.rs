//! Columnar tables.

use std::fmt;

/// A single cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Owned UTF-8 string.
    Str(String),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

impl Value {
    /// Numeric view (ints widen to f64); `None` for strings.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Str(_) => None,
        }
    }

    /// Integer view. Non-integral floats return `None` — truncating them
    /// would silently merge distinct join/group keys (1.2 and 1.9 both
    /// landing on key 1).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Float(v) => {
                if v.fract() == 0.0 && *v >= i64::MIN as f64 && *v <= i64::MAX as f64 {
                    Some(*v as i64)
                } else {
                    None
                }
            }
            Value::Str(_) => None,
        }
    }
}

/// A typed column of values.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Integer column.
    Int(Vec<i64>),
    /// Float column.
    Float(Vec<f64>),
    /// String column.
    Str(Vec<String>),
}

impl Column {
    /// Number of cells.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Str(v) => v.len(),
        }
    }

    /// Whether the column has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cell at `row` as an owned [`Value`].
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::Int(v) => Value::Int(v[row]),
            Column::Float(v) => Value::Float(v[row]),
            Column::Str(v) => Value::Str(v[row].clone()),
        }
    }

    /// Appends a value of the column's own type; `false` (and no change) on
    /// a type mismatch — the mutation API refuses heterogeneous columns
    /// rather than silently coercing.
    pub fn push(&mut self, v: &Value) -> bool {
        match (self, v) {
            (Column::Int(c), Value::Int(x)) => c.push(*x),
            (Column::Float(c), Value::Float(x)) => c.push(*x),
            (Column::Str(c), Value::Str(x)) => c.push(x.clone()),
            _ => return false,
        }
        true
    }

    /// `true` when a value has this column's type.
    pub fn accepts(&self, v: &Value) -> bool {
        matches!(
            (self, v),
            (Column::Int(_), Value::Int(_))
                | (Column::Float(_), Value::Float(_))
                | (Column::Str(_), Value::Str(_))
        )
    }

    /// Cell comparison without materializing a [`Value`] (no string
    /// clones). Floats compare bitwise — the same equality the IVM row
    /// keys use, so `-0.0` and `0.0` are distinct and `NaN` equals itself.
    pub fn cell_eq(&self, row: usize, v: &Value) -> bool {
        match (self, v) {
            (Column::Int(c), Value::Int(x)) => c[row] == *x,
            (Column::Float(c), Value::Float(x)) => c[row].to_bits() == x.to_bits(),
            (Column::Str(c), Value::Str(x)) => c[row] == *x,
            _ => false,
        }
    }

    /// Gathers the rows at `indices` into a new column.
    pub fn gather(&self, indices: &[usize]) -> Column {
        match self {
            Column::Int(v) => Column::Int(indices.iter().map(|&i| v[i]).collect()),
            Column::Float(v) => Column::Float(indices.iter().map(|&i| v[i]).collect()),
            Column::Str(v) => Column::Str(indices.iter().map(|&i| v[i].clone()).collect()),
        }
    }

    /// Numeric view of a cell; strings hash-encode (stable) for one-hot-ish
    /// casts, mirroring the paper's MIMIC preprocessing where categorical
    /// features become numeric.
    pub fn numeric(&self, row: usize) -> f64 {
        match self {
            Column::Int(v) => v[row] as f64,
            Column::Float(v) => v[row],
            // Reduce in u64 *before* the f64 cast: hashes exceed 2^53, so
            // casting first would round and make the encoding depend on
            // platform float rounding.
            Column::Str(v) => (stable_hash(&v[row]) % 1000) as f64,
        }
    }
}

fn stable_hash(s: &str) -> u64 {
    // FNV-1a: deterministic across runs (unlike `DefaultHasher` seeds).
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A named-column table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    names: Vec<String>,
    columns: Vec<Column>,
    rows: usize,
}

impl Table {
    /// Builds a table from `(name, column)` pairs; all columns must agree
    /// on length.
    pub fn new(columns: Vec<(&str, Column)>) -> Self {
        let rows = columns.first().map_or(0, |(_, c)| c.len());
        for (name, c) in &columns {
            assert_eq!(c.len(), rows, "column {name} has inconsistent length");
        }
        Table {
            names: columns.iter().map(|(n, _)| n.to_string()).collect(),
            columns: columns.into_iter().map(|(_, c)| c).collect(),
            rows,
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.columns.len()
    }

    /// Column names, in schema order.
    pub fn column_names(&self) -> &[String] {
        &self.names
    }

    /// Position of column `name`, if present.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.column_index(name).map(|i| &self.columns[i])
    }

    /// Column by position.
    pub fn column_at(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Cell accessor.
    pub fn value(&self, row: usize, col: &str) -> Value {
        let i = self.column_index(col).unwrap_or_else(|| panic!("no column {col}"));
        self.columns[i].value(row)
    }

    /// New table with the rows at `indices`, in order.
    pub fn gather(&self, indices: &[usize]) -> Table {
        Table {
            names: self.names.clone(),
            columns: self.columns.iter().map(|c| c.gather(indices)).collect(),
            rows: indices.len(),
        }
    }

    /// The row's cells, in column order.
    pub fn row(&self, r: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(r)).collect()
    }

    /// Row-vs-cells comparison without cloning (see [`Column::cell_eq`]).
    pub fn row_eq(&self, r: usize, row: &[Value]) -> bool {
        row.len() == self.columns.len()
            && self.columns.iter().zip(row).all(|(c, v)| c.cell_eq(r, v))
    }

    /// Checks a row against the table's schema (arity and per-column
    /// types) without mutating anything.
    pub fn row_matches_schema(&self, row: &[Value]) -> Result<(), String> {
        if row.len() != self.columns.len() {
            return Err(format!(
                "row has {} cells, table has {} columns",
                row.len(),
                self.columns.len()
            ));
        }
        for (i, (c, v)) in self.columns.iter().zip(row).enumerate() {
            if !c.accepts(v) {
                return Err(format!(
                    "cell {v} does not match the type of column {}",
                    self.names[i]
                ));
            }
        }
        Ok(())
    }

    /// Appends a row; errors (leaving the table unchanged) on an arity or
    /// type mismatch.
    pub fn push_row(&mut self, row: &[Value]) -> Result<(), String> {
        self.row_matches_schema(row)?;
        for (c, v) in self.columns.iter_mut().zip(row) {
            let ok = c.push(v);
            debug_assert!(ok, "schema pre-check admitted a mismatched cell");
        }
        self.rows += 1;
        Ok(())
    }

    /// Appends a column; panics on length mismatch.
    pub fn with_column(mut self, name: &str, col: Column) -> Table {
        assert_eq!(col.len(), self.rows);
        self.names.push(name.to_string());
        self.columns.push(col);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::new(vec![
            ("id", Column::Int(vec![1, 2, 3])),
            ("score", Column::Float(vec![0.5, 1.5, 2.5])),
            ("name", Column::Str(vec!["a".into(), "b".into(), "c".into()])),
        ])
    }

    #[test]
    fn shape_and_lookup() {
        let t = sample();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_cols(), 3);
        assert_eq!(t.value(1, "id"), Value::Int(2));
        assert_eq!(t.value(2, "name"), Value::Str("c".into()));
        assert_eq!(t.column_index("score"), Some(1));
        assert_eq!(t.column_index("missing"), None);
    }

    #[test]
    fn gather_reorders() {
        let t = sample().gather(&[2, 0]);
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.value(0, "id"), Value::Int(3));
        assert_eq!(t.value(1, "id"), Value::Int(1));
    }

    #[test]
    fn push_row_is_typed_and_atomic() {
        let mut t = sample();
        t.push_row(&[Value::Int(4), Value::Float(3.5), Value::Str("d".into())]).unwrap();
        assert_eq!(t.num_rows(), 4);
        assert_eq!(t.row(3), vec![Value::Int(4), Value::Float(3.5), Value::Str("d".into())]);
        // Arity mismatch.
        assert!(t.push_row(&[Value::Int(5)]).is_err());
        // Type mismatch (Float into an Int column) leaves the table intact.
        assert!(t
            .push_row(&[Value::Float(5.0), Value::Float(0.0), Value::Str("e".into())])
            .is_err());
        assert_eq!(t.num_rows(), 4);
        for c in 0..t.num_cols() {
            assert_eq!(t.column_at(c).len(), 4);
        }
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.0).as_i64(), Some(2));
        // Non-integral floats are not integers: truncation would merge
        // distinct keys.
        assert_eq!(Value::Float(2.5).as_i64(), None);
        assert_eq!(Value::Float(-0.5).as_i64(), None);
        assert_eq!(Value::Float(f64::NAN).as_i64(), None);
        assert_eq!(Value::Str("x".into()).as_f64(), None);
    }

    #[test]
    fn string_numeric_encoding_is_deterministic() {
        let c = Column::Str(vec!["hello".into(), "hello".into()]);
        assert_eq!(c.numeric(0), c.numeric(1));
    }

    /// Pins the categorical encoding to exact values: FNV-1a reduced mod
    /// 1000 in integer space. A platform-rounding-dependent u64→f64 cast
    /// before the modulo would shift these.
    #[test]
    fn string_numeric_encoding_is_pinned() {
        let expected = |s: &str| (stable_hash(s) % 1000) as f64;
        let c = Column::Str(vec!["hello".into(), "covid".into(), "".into()]);
        assert_eq!(c.numeric(0), expected("hello"));
        assert_eq!(c.numeric(1), expected("covid"));
        assert_eq!(c.numeric(2), expected(""));
        // Exact FNV-1a values, computed independently.
        assert_eq!(stable_hash(""), 0xcbf29ce484222325);
        assert_eq!(stable_hash("a"), 0xaf63dc4c8601ec8c);
        assert_eq!(c.numeric(2), 37.0); // 14695981039346656037 % 1000
                                        // All encodings land in [0, 1000).
        for r in 0..3 {
            assert!((0.0..1000.0).contains(&c.numeric(r)));
        }
    }
}
