//! Incremental view maintenance primitives: signed multiset deltas and the
//! per-operator delta rules for the CQ fragment the hybrid prefix compiles
//! to (scan / equality selection / hash equi-join / projection).
//!
//! Deltas use *counting* (bag) semantics — every row carries a signed
//! multiplicity, so deletes retract exactly as many duplicates as they
//! should under the evaluator's bag semantics (Berkholz et al.'s
//! maintenance-under-updates perspective, specialized to select/join/
//! project; the delta rules are the classical Δ(L ⋈ R) = ΔL ⋈ Rⁿᵉʷ +
//! Lᵒˡᵈ ⋈ ΔR decomposition, which is what Dougherty-style RA-to-transaction
//! translations emit for joins).
//!
//! Every rule mirrors the executable operators in [`crate::ops`] *exactly*
//! (`select_eq` matches through [`Value::as_i64`], joins key through
//! `as_i64` and drop `None` keys, join output columns are prefixed
//! `right.` until unique), so a delta-maintained view is bit-identical, up
//! to row order, to re-running its definition from scratch.

use std::collections::HashMap;
use std::fmt::{self, Write as _};

use crate::table::{Table, Value};

/// Maintenance failure: the delta and the target disagree structurally, or
/// a retraction has nothing to retract.
#[derive(Debug, Clone, PartialEq)]
pub enum IvmError {
    /// The delta targets a table the catalog does not hold.
    MissingTable(String),
    /// A maintained view references a column its input lacks.
    MissingColumn(String),
    /// A delta's schema does not line up with the table it is applied to.
    SchemaMismatch {
        /// Table the delta was applied to.
        table: String,
        /// Human-readable description of the disagreement.
        detail: String,
    },
    /// A delete retracts more copies of a row than the table holds — the
    /// update stream and the maintained state have diverged.
    MissingRow {
        /// Table the retraction targeted.
        table: String,
        /// Canonical rendering of the missing row.
        row: String,
    },
}

impl fmt::Display for IvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IvmError::MissingTable(t) => write!(f, "unknown table {t}"),
            IvmError::MissingColumn(c) => write!(f, "unknown column {c}"),
            IvmError::SchemaMismatch { table, detail } => {
                write!(f, "delta does not match table {table}: {detail}")
            }
            IvmError::MissingRow { table, row } => {
                write!(f, "delete of a row not present in {table}: {row}")
            }
        }
    }
}

impl std::error::Error for IvmError {}

/// A signed multiset of rows over a named-column schema: `+n` inserts `n`
/// copies, `-n` retracts `n` copies.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Delta {
    /// Schema of each row, in order.
    pub columns: Vec<String>,
    /// `(row, multiplicity)` pairs; positive inserts, negative retracts.
    pub rows: Vec<(Vec<Value>, i64)>,
}

/// Canonical serialization of a row, used as the multiset key in error
/// messages and tests: floats key by bit pattern (exact, not rounded),
/// strings are length-prefixed so a cell can never impersonate a
/// separator. Hot paths use [`row_hash`] + exact comparison instead.
pub fn row_key(row: &[Value]) -> String {
    let mut s = String::new();
    for v in row {
        match v {
            Value::Int(i) => {
                let _ = write!(s, "i{i};");
            }
            Value::Float(f) => {
                let _ = write!(s, "f{};", f.to_bits());
            }
            Value::Str(t) => {
                let _ = write!(s, "s{}:{t};", t.len());
            }
        }
    }
    s
}

/// Multiset fingerprint of a whole table: sorted [`row_key`] renderings.
/// Row order is not part of view semantics (the relational data model
/// forgets it), so two tables are the same bag of rows iff their
/// fingerprints are equal — the comparison the IVM correctness tests and
/// the bench's exactness check both use.
pub fn table_fingerprint(t: &Table) -> Vec<String> {
    let mut rows: Vec<String> = (0..t.num_rows()).map(|r| row_key(&t.row(r))).collect();
    rows.sort();
    rows
}

/// Exact row equality with bitwise float semantics — the equality
/// [`row_hash`] / [`row_key`] induce (`NaN` equals itself, `-0.0` is
/// distinct from `0.0`), used wherever hash buckets are disambiguated.
pub fn rows_identical(a: &[Value], b: &[Value]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| match (x, y) {
            (Value::Int(i), Value::Int(j)) => i == j,
            (Value::Float(f), Value::Float(g)) => f.to_bits() == g.to_bits(),
            (Value::Str(s), Value::Str(t)) => s == t,
            _ => false,
        })
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv_u64(mut h: u64, x: u64) -> u64 {
    for b in x.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv_cell(h: u64, tag: u64, bits: u64) -> u64 {
    fnv_u64(fnv_u64(h, tag), bits)
}

fn fnv_str(mut h: u64, s: &str) -> u64 {
    h = fnv_u64(h, 2);
    h = fnv_u64(h, s.len() as u64);
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a fingerprint of a row, consistent with [`row_key`] equality
/// (type-tagged, floats by bit pattern). Collisions are resolved by exact
/// comparison wherever the hash is used.
pub fn row_hash(row: &[Value]) -> u64 {
    let mut h = FNV_OFFSET;
    for v in row {
        h = match v {
            Value::Int(i) => fnv_cell(h, 0, *i as u64),
            Value::Float(f) => fnv_cell(h, 1, f.to_bits()),
            Value::Str(s) => fnv_str(h, s),
        };
    }
    h
}

/// Per-row fingerprints of a whole table, computed column-major with no
/// per-cell allocation — this is what keeps counting-semantics retraction
/// linear in the table instead of allocation-bound.
pub fn table_row_hashes(t: &Table) -> Vec<u64> {
    let mut hashes = vec![FNV_OFFSET; t.num_rows()];
    for c in 0..t.num_cols() {
        match t.column_at(c) {
            crate::table::Column::Int(v) => {
                for (h, x) in hashes.iter_mut().zip(v) {
                    *h = fnv_cell(*h, 0, *x as u64);
                }
            }
            crate::table::Column::Float(v) => {
                for (h, x) in hashes.iter_mut().zip(v) {
                    *h = fnv_cell(*h, 1, x.to_bits());
                }
            }
            crate::table::Column::Str(v) => {
                for (h, x) in hashes.iter_mut().zip(v) {
                    *h = fnv_str(*h, x);
                }
            }
        }
    }
    hashes
}

/// Output column names of `ops::hash_join(left, _, right, right_key)`:
/// all left columns, then every non-key right column prefixed `right.`
/// until unique. Returns the names plus the kept right column indices.
pub fn joined_columns(
    left: &[String],
    right_cols: &[String],
    right_key: &str,
) -> (Vec<String>, Vec<usize>) {
    let mut names = left.to_vec();
    let mut kept = Vec::new();
    for (i, n) in right_cols.iter().enumerate() {
        if n == right_key {
            continue;
        }
        let mut out_name = n.clone();
        while names.contains(&out_name) {
            out_name = format!("right.{out_name}");
        }
        names.push(out_name);
        kept.push(i);
    }
    (names, kept)
}

impl Delta {
    /// Delta with the given schema and no rows.
    pub fn empty(columns: Vec<String>) -> Self {
        Delta { columns, rows: Vec::new() }
    }

    /// An all-insertions delta over `table`'s schema.
    pub fn inserts(table: &Table, rows: Vec<Vec<Value>>) -> Self {
        Delta {
            columns: table.column_names().to_vec(),
            rows: rows.into_iter().map(|r| (r, 1)).collect(),
        }
    }

    /// An all-retractions delta over `table`'s schema.
    pub fn deletes(table: &Table, rows: Vec<Vec<Value>>) -> Self {
        Delta {
            columns: table.column_names().to_vec(),
            rows: rows.into_iter().map(|r| (r, -1)).collect(),
        }
    }

    /// Whether every multiplicity nets to zero.
    pub fn is_empty(&self) -> bool {
        self.rows.iter().all(|(_, n)| *n == 0)
    }

    /// Net number of inserted (positive) and retracted (negative) copies.
    pub fn counts(&self) -> (i64, i64) {
        let mut ins = 0;
        let mut del = 0;
        for (_, n) in &self.rows {
            if *n > 0 {
                ins += n;
            } else {
                del -= n;
            }
        }
        (ins, del)
    }

    /// The inverse delta: applying `d` then `d.negated()` is the identity.
    pub fn negated(&self) -> Delta {
        Delta {
            columns: self.columns.clone(),
            rows: self.rows.iter().map(|(r, n)| (r.clone(), -n)).collect(),
        }
    }

    fn col_index(&self, name: &str) -> Result<usize, IvmError> {
        self.columns
            .iter()
            .position(|c| c == name)
            .ok_or_else(|| IvmError::MissingColumn(name.to_owned()))
    }

    /// Δσ: keeps delta rows whose cell matches the integer constant through
    /// [`Value::as_i64`] — exactly the executable `SelectEq` predicate.
    pub fn select_eq(&self, column: &str, value: i64) -> Result<Delta, IvmError> {
        let i = self.col_index(column)?;
        Ok(Delta {
            columns: self.columns.clone(),
            rows: self
                .rows
                .iter()
                .filter(|(r, _)| r[i].as_i64() == Some(value))
                .cloned()
                .collect(),
        })
    }

    /// Δσ on a string column: `Str` cells only, verbatim equality.
    pub fn select_str_eq(&self, column: &str, value: &str) -> Result<Delta, IvmError> {
        let i = self.col_index(column)?;
        Ok(Delta {
            columns: self.columns.clone(),
            rows: self
                .rows
                .iter()
                .filter(|(r, _)| matches!(&r[i], Value::Str(s) if s == value))
                .cloned()
                .collect(),
        })
    }

    /// Δπ: projects every row to the named columns; multiplicities ride
    /// along unchanged (bag projection never deduplicates).
    pub fn project(&self, columns: &[String]) -> Result<Delta, IvmError> {
        let idx: Vec<usize> =
            columns.iter().map(|c| self.col_index(c)).collect::<Result<_, _>>()?;
        Ok(Delta {
            columns: columns.to_vec(),
            rows: self
                .rows
                .iter()
                .map(|(r, n)| (idx.iter().map(|&i| r[i].clone()).collect(), *n))
                .collect(),
        })
    }

    /// ΔL ⋈ R: joins every delta row against the (full) right table.
    /// Multiplicities multiply — table rows count 1 each, so each match
    /// inherits the delta row's signed count.
    pub fn join_right(
        &self,
        right: &Table,
        left_key: &str,
        right_key: &str,
    ) -> Result<Delta, IvmError> {
        let lk = self.col_index(left_key)?;
        let rk = right
            .column_index(right_key)
            .ok_or_else(|| IvmError::MissingColumn(right_key.to_owned()))?;
        let (columns, kept) = joined_columns(&self.columns, right.column_names(), right_key);

        // Build side: right-key -> row indices, as in ops::hash_join.
        let mut index: HashMap<i64, Vec<usize>> = HashMap::new();
        for r in 0..right.num_rows() {
            if let Some(k) = right.column_at(rk).value(r).as_i64() {
                index.entry(k).or_default().push(r);
            }
        }
        let mut rows = Vec::new();
        for (row, n) in &self.rows {
            let Some(k) = row[lk].as_i64() else { continue };
            let Some(matches) = index.get(&k) else { continue };
            for &r in matches {
                let mut out = row.clone();
                out.extend(kept.iter().map(|&i| right.column_at(i).value(r)));
                rows.push((out, *n));
            }
        }
        Ok(Delta { columns, rows })
    }

    /// L ⋈ ΔR: joins the (full, *pre-update*) left table against a delta of
    /// the right table. Output schema matches [`Delta::join_right`] — the
    /// two halves of Δ(L ⋈ R) concatenate by [`Delta::merge`].
    pub fn join_left(
        left: &Table,
        right_delta: &Delta,
        left_key: &str,
        right_key: &str,
    ) -> Result<Delta, IvmError> {
        let lk = left
            .column_index(left_key)
            .ok_or_else(|| IvmError::MissingColumn(left_key.to_owned()))?;
        let rk = right_delta.col_index(right_key)?;
        let (columns, kept) =
            joined_columns(left.column_names(), &right_delta.columns, right_key);

        // Build side: left-key -> row indices (the delta is the small side,
        // but indexing the table keeps the scan single-pass).
        let mut index: HashMap<i64, Vec<usize>> = HashMap::new();
        for r in 0..left.num_rows() {
            if let Some(k) = left.column_at(lk).value(r).as_i64() {
                index.entry(k).or_default().push(r);
            }
        }
        let mut rows = Vec::new();
        for (drow, n) in &right_delta.rows {
            let Some(k) = drow[rk].as_i64() else { continue };
            let Some(matches) = index.get(&k) else { continue };
            for &l in matches {
                let mut out = left.row(l);
                out.extend(kept.iter().map(|&i| drow[i].clone()));
                rows.push((out, *n));
            }
        }
        Ok(Delta { columns, rows })
    }

    /// Concatenates another delta over the same schema.
    pub fn merge(&mut self, other: Delta) -> Result<(), IvmError> {
        if self.columns != other.columns {
            return Err(IvmError::SchemaMismatch {
                table: "<delta>".into(),
                detail: format!("merge of {:?} with {:?}", self.columns, other.columns),
            });
        }
        self.rows.extend(other.rows);
        Ok(())
    }
}

/// Applies a delta to a materialized table under counting semantics:
/// per-row net counts are computed first (so a retraction and a
/// re-insertion of the same row cancel), then negative nets retract
/// matching rows (erroring — before any mutation — if the table holds too
/// few copies) and positive nets append. Returns `(inserted, deleted)` row
/// counts. Surviving rows keep their relative order; insertions append.
pub fn apply_delta(
    table: &mut Table,
    delta: &Delta,
    name: &str,
) -> Result<(usize, usize), IvmError> {
    if delta.columns != table.column_names() {
        return Err(IvmError::SchemaMismatch {
            table: name.to_owned(),
            detail: format!(
                "delta columns {:?} vs table columns {:?}",
                delta.columns,
                table.column_names()
            ),
        });
    }
    // Net multiplicity per distinct row (first occurrence is the
    // representative): bucketed by row hash, disambiguated exactly.
    let mut net: Vec<(&Vec<Value>, i64)> = Vec::new();
    let mut by_hash: HashMap<u64, Vec<usize>> = HashMap::new();
    for (row, n) in &delta.rows {
        let bucket = by_hash.entry(row_hash(row)).or_default();
        match bucket.iter().find(|&&i| rows_identical(net[i].0, row)) {
            Some(&i) => net[i].1 += n,
            None => {
                bucket.push(net.len());
                net.push((row, *n));
            }
        }
    }

    // Pre-validate insert types so the whole application is atomic.
    for (row, n) in &net {
        if *n > 0 {
            table.row_matches_schema(row).map_err(|detail| IvmError::SchemaMismatch {
                table: name.to_owned(),
                detail,
            })?;
        }
    }

    // Retractions: drop |n| copies of each negative-net row. Table rows
    // match retractions through column-major hashes plus an exact
    // comparison — no per-row allocation on the scan.
    let mut deleted = 0usize;
    if net.iter().any(|(_, n)| *n < 0) {
        let mut to_drop: HashMap<u64, Vec<(usize, i64)>> = HashMap::new();
        for (i, (row, n)) in net.iter().enumerate() {
            if *n < 0 {
                to_drop.entry(row_hash(row)).or_default().push((i, -n));
            }
        }
        let hashes = table_row_hashes(table);
        let mut keep = Vec::with_capacity(table.num_rows());
        for (r, h) in hashes.iter().enumerate() {
            let dropped = to_drop.get_mut(h).is_some_and(|cands| {
                cands.iter_mut().any(|(i, left)| {
                    if *left > 0 && table.row_eq(r, net[*i].0) {
                        *left -= 1;
                        true
                    } else {
                        false
                    }
                })
            });
            if dropped {
                deleted += 1;
            } else {
                keep.push(r);
            }
        }
        if let Some((i, left)) = to_drop.values().flatten().find(|(_, left)| *left > 0) {
            return Err(IvmError::MissingRow {
                table: name.to_owned(),
                row: format!("{} ({left} unmatched retractions)", row_key(net[*i].0)),
            });
        }
        *table = table.gather(&keep);
    }

    // Insertions: append n copies of each positive-net row.
    let mut inserted = 0usize;
    for (row, n) in &net {
        for _ in 0..*n {
            table.push_row(row).map_err(|detail| IvmError::SchemaMismatch {
                table: name.to_owned(),
                detail,
            })?;
            inserted += 1;
        }
    }
    Ok((inserted, deleted))
}

/// One logged base-table mutation batch.
#[derive(Debug, Clone, PartialEq)]
pub struct TableUpdate {
    /// Mutated base table.
    pub table: String,
    /// The signed rows applied to it.
    pub delta: Delta,
}

/// Append-only log of base-table mutations, drained by a view maintainer.
/// Entries keep arrival order — delta propagation composes sequentially,
/// so order is semantically load-bearing when several tables change.
#[derive(Debug, Clone, Default)]
pub struct UpdateLog {
    entries: Vec<TableUpdate>,
}

impl UpdateLog {
    /// Appends a batch; empty deltas are dropped.
    pub fn push(&mut self, table: impl Into<String>, delta: Delta) {
        if !delta.is_empty() {
            self.entries.push(TableUpdate { table: table.into(), delta });
        }
    }

    /// Pending batches, oldest first.
    pub fn entries(&self) -> &[TableUpdate] {
        &self.entries
    }

    /// Whether no mutations are pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hands the pending entries to the maintainer and clears the log.
    pub fn drain(&mut self) -> Vec<TableUpdate> {
        std::mem::take(&mut self.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use crate::table::Column;

    fn users() -> Table {
        Table::new(vec![
            ("id", Column::Int(vec![1, 2, 3])),
            ("followers", Column::Int(vec![10, 20, 30])),
        ])
    }

    fn tweets() -> Table {
        Table::new(vec![
            ("tid", Column::Int(vec![100, 101, 102])),
            ("uid", Column::Int(vec![1, 1, 2])),
        ])
    }

    #[test]
    fn select_delta_mirrors_executable_predicate() {
        let d = Delta::inserts(
            &users(),
            vec![vec![Value::Int(1), Value::Int(5)], vec![Value::Int(9), Value::Int(7)]],
        );
        let s = d.select_eq("id", 1).unwrap();
        assert_eq!(s.rows.len(), 1);
        assert_eq!(s.rows[0].0[1], Value::Int(5));
        // Missing column errors instead of silently passing everything.
        assert!(d.select_eq("nope", 1).is_err());
    }

    #[test]
    fn project_delta_keeps_multiplicities() {
        let mut d = Delta::inserts(&users(), vec![vec![Value::Int(1), Value::Int(5)]]);
        d.rows[0].1 = 3;
        let p = d.project(&["followers".into()]).unwrap();
        assert_eq!(p.columns, vec!["followers".to_string()]);
        assert_eq!(p.rows, vec![(vec![Value::Int(5)], 3)]);
    }

    #[test]
    fn join_right_multiplies_counts_and_prefixes_columns() {
        // Two new tweets by user 1; the join against users yields both with
        // the user's followers attached.
        let d = Delta::inserts(
            &tweets(),
            vec![vec![Value::Int(200), Value::Int(1)], vec![Value::Int(201), Value::Int(7)]],
        );
        let j = d.join_right(&users(), "uid", "id").unwrap();
        assert_eq!(
            j.columns,
            vec!["tid".to_string(), "uid".to_string(), "followers".to_string()]
        );
        // uid 7 has no match and drops out.
        assert_eq!(j.rows.len(), 1);
        assert_eq!(j.rows[0], (vec![Value::Int(200), Value::Int(1), Value::Int(10)], 1));
    }

    #[test]
    fn join_left_matches_all_probe_rows() {
        // A new user 1 arrives: both existing tweets by uid 1 join it.
        let d = Delta::deletes(&users(), vec![vec![Value::Int(1), Value::Int(10)]]);
        let j = Delta::join_left(&tweets(), &d, "uid", "id").unwrap();
        assert_eq!(j.rows.len(), 2);
        assert!(j.rows.iter().all(|(_, n)| *n == -1));
        assert_eq!(
            j.columns,
            vec!["tid".to_string(), "uid".to_string(), "followers".to_string()]
        );
    }

    #[test]
    fn join_halves_agree_with_full_hash_join() {
        // Δ(L ⋈ R) over an insert into L, checked against re-running
        // ops::hash_join from scratch.
        let mut t_new = tweets();
        t_new.push_row(&[Value::Int(300), Value::Int(2)]).unwrap();
        let d = Delta::inserts(&tweets(), vec![vec![Value::Int(300), Value::Int(2)]]);
        let dj = d.join_right(&users(), "uid", "id").unwrap();
        let mut joined = ops::hash_join(&tweets(), "uid", &users(), "id").unwrap();
        apply_delta(&mut joined, &dj, "joined").unwrap();
        let full = ops::hash_join(&t_new, "uid", &users(), "id").unwrap();
        assert_eq!(
            ops::sort_by_int(&joined, "tid").unwrap(),
            ops::sort_by_int(&full, "tid").unwrap()
        );
    }

    #[test]
    fn apply_delta_counts_retract_duplicates_exactly() {
        let mut t = Table::new(vec![("v", Column::Int(vec![7, 7, 7, 8]))]);
        // Retract two of the three 7s.
        let mut d = Delta::deletes(&t, vec![vec![Value::Int(7)]]);
        d.rows[0].1 = -2;
        let (ins, del) = apply_delta(&mut t, &d, "t").unwrap();
        assert_eq!((ins, del), (0, 2));
        assert_eq!(t.num_rows(), 2);
        assert_eq!(ops::group_count(&t, "v").unwrap(), vec![(7, 1), (8, 1)]);
    }

    #[test]
    fn apply_delta_nets_out_cancelling_rows() {
        let mut t = Table::new(vec![("v", Column::Int(vec![1]))]);
        let d = Delta {
            columns: vec!["v".into()],
            rows: vec![(vec![Value::Int(2)], 1), (vec![Value::Int(2)], -1)],
        };
        apply_delta(&mut t, &d, "t").unwrap();
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    fn apply_delta_underflow_is_an_error_and_atomic() {
        let mut t = Table::new(vec![("v", Column::Int(vec![1, 2]))]);
        let mut d = Delta::deletes(&t, vec![vec![Value::Int(2)]]);
        d.rows[0].1 = -3; // only one copy present
        d.rows.push((vec![Value::Int(9)], 1));
        assert!(matches!(apply_delta(&mut t, &d, "t"), Err(IvmError::MissingRow { .. })));
        // Nothing was applied: the insert of 9 did not slip through.
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn negated_roundtrip_is_identity() {
        let orig = users();
        let mut t = users();
        let d = Delta {
            columns: t.column_names().to_vec(),
            rows: vec![
                (vec![Value::Int(4), Value::Int(40)], 2),
                (vec![Value::Int(1), Value::Int(10)], -1),
            ],
        };
        apply_delta(&mut t, &d, "u").unwrap();
        assert_eq!(t.num_rows(), 4);
        apply_delta(&mut t, &d.negated(), "u").unwrap();
        assert_eq!(ops::sort_by_int(&t, "id").unwrap(), ops::sort_by_int(&orig, "id").unwrap());
    }

    #[test]
    fn row_keys_do_not_collide_across_types() {
        assert_ne!(row_key(&[Value::Int(7)]), row_key(&[Value::Str("7".into())]));
        assert_ne!(row_key(&[Value::Int(7)]), row_key(&[Value::Float(7.0)]));
        // Length prefix: ("a;", "b") vs ("a", ";b") must differ.
        assert_ne!(
            row_key(&[Value::Str("a;".into()), Value::Str("b".into())]),
            row_key(&[Value::Str("a".into()), Value::Str(";b".into())])
        );
    }

    #[test]
    fn update_log_drains_in_order_and_skips_empty() {
        let mut log = UpdateLog::default();
        log.push("a", Delta::inserts(&users(), vec![vec![Value::Int(9), Value::Int(0)]]));
        log.push("b", Delta::empty(vec!["x".into()]));
        log.push("a", Delta::deletes(&users(), vec![vec![Value::Int(9), Value::Int(0)]]));
        assert_eq!(log.entries().len(), 2);
        let drained = log.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].delta.counts(), (1, 0));
        assert_eq!(drained[1].delta.counts(), (0, 1));
        assert!(log.is_empty());
    }
}
