//! Table ↔ matrix conversions (paper §3: "a matrix can be implicitly
//! converted into a relation (the order among matrix rows is lost), and the
//! opposite conversion (each tuple becomes a matrix line...)").

use hadad_linalg::{DenseMatrix, Matrix, SparseMatrix};

use crate::table::{Column, Table};

/// Casts the named numeric columns of a table into a dense matrix, one row
/// per tuple in the table's current row order.
pub fn table_to_matrix(t: &Table, cols: &[&str]) -> Matrix {
    let idx: Vec<usize> = cols
        .iter()
        .map(|c| t.column_index(c).unwrap_or_else(|| panic!("no column {c}")))
        .collect();
    let mut out = DenseMatrix::zeros(t.num_rows(), idx.len());
    for r in 0..t.num_rows() {
        for (j, &ci) in idx.iter().enumerate() {
            out.set(r, j, t.column_at(ci).numeric(r));
        }
    }
    Matrix::Dense(out)
}

/// Casts all columns of a table into a dense matrix.
pub fn table_to_matrix_all(t: &Table) -> Matrix {
    let names: Vec<&str> = t.column_names().iter().map(std::string::String::as_str).collect();
    table_to_matrix(t, &names)
}

/// Builds an ultra-sparse `rows x cols` matrix from (row-id, col-id, value)
/// columns — the construction of the tweet-hashtag filter-level matrix `N`
/// in the paper's §2 and of the MIMIC patient-service matrix in §9.2.2.
pub fn table_to_sparse(
    t: &Table,
    row_col: &str,
    col_col: &str,
    val_col: &str,
    rows: usize,
    cols: usize,
) -> Matrix {
    let rc = t.column(row_col).unwrap_or_else(|| panic!("no column {row_col}"));
    let cc = t.column(col_col).unwrap_or_else(|| panic!("no column {col_col}"));
    let vc = t.column(val_col).unwrap_or_else(|| panic!("no column {val_col}"));
    let triplets: Vec<(usize, usize, f64)> = (0..t.num_rows())
        .filter_map(|r| {
            let row = rc.value(r).as_i64()? as usize;
            let col = cc.value(r).as_i64()? as usize;
            if row < rows && col < cols {
                Some((row, col, vc.numeric(r)))
            } else {
                None
            }
        })
        .collect();
    Matrix::Sparse(SparseMatrix::from_triplets(rows, cols, triplets))
}

/// Casts a matrix back into a table with synthesized column names
/// `c0, c1, ...` (row order is whatever the matrix had; the relational view
/// forgets it, per the paper's data model).
pub fn matrix_to_table(m: &Matrix) -> Table {
    let d = m.to_dense();
    let cols: Vec<(String, Column)> = (0..d.cols())
        .map(|c| {
            let data: Vec<f64> = (0..d.rows()).map(|r| d.get(r, c)).collect();
            (format!("c{c}"), Column::Float(data))
        })
        .collect();
    Table::new(cols.iter().map(|(n, c)| (n.as_str(), c.clone())).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Value;

    #[test]
    fn dense_cast_roundtrip() {
        let t = Table::new(vec![
            ("a", Column::Int(vec![1, 2])),
            ("b", Column::Float(vec![0.5, 1.5])),
        ]);
        let m = table_to_matrix(&t, &["a", "b"]);
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.get(1, 0), 2.0);
        assert_eq!(m.get(0, 1), 0.5);
        let back = matrix_to_table(&m);
        assert_eq!(back.num_rows(), 2);
        assert_eq!(back.value(1, "c0"), Value::Float(2.0));
    }

    #[test]
    fn sparse_cast_builds_coo() {
        let t = Table::new(vec![
            ("tweet", Column::Int(vec![0, 5, 9])),
            ("hashtag", Column::Int(vec![1, 2, 0])),
            ("level", Column::Int(vec![3, 1, 4])),
        ]);
        let m = table_to_sparse(&t, "tweet", "hashtag", "level", 10, 3);
        assert!(m.is_sparse());
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(5, 2), 1.0);
        assert_eq!(m.get(9, 0), 4.0);
    }

    #[test]
    fn sparse_cast_drops_out_of_range() {
        let t = Table::new(vec![
            ("r", Column::Int(vec![0, 99])),
            ("c", Column::Int(vec![0, 0])),
            ("v", Column::Int(vec![1, 1])),
        ]);
        let m = table_to_sparse(&t, "r", "c", "v", 10, 1);
        assert_eq!(m.nnz(), 1);
    }
}
