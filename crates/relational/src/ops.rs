//! Relational operators: selection, projection, hash join, aggregates.
//! These are the `Rops` of the paper's hybrid language (§3).
//!
//! Operators that look columns up by name return [`OpsError`] when the
//! name does not resolve — a malformed query must surface as a typed error
//! through `RelQuery` execution, never as a panic.

use std::collections::HashMap;
use std::fmt;

use crate::table::{Column, Table, Value};

/// A relational operator was pointed at a column the table does not have.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpsError {
    /// A named column was absent from the operator's input.
    MissingColumn {
        /// Operator that failed (`"project"`, `"hash_join"`, ...).
        op: &'static str,
        /// The missing column.
        column: String,
    },
}

impl fmt::Display for OpsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpsError::MissingColumn { op, column } => {
                write!(f, "{op}: no column {column}")
            }
        }
    }
}

impl std::error::Error for OpsError {}

fn require<'t>(t: &'t Table, op: &'static str, col: &str) -> Result<&'t Column, OpsError> {
    t.column(col).ok_or_else(|| OpsError::MissingColumn { op, column: col.to_owned() })
}

/// Selection: keeps rows where `pred(row)` holds.
pub fn select(t: &Table, pred: impl Fn(&Table, usize) -> bool) -> Table {
    let keep: Vec<usize> = (0..t.num_rows()).filter(|&r| pred(t, r)).collect();
    t.gather(&keep)
}

/// Selection on a single numeric column.
pub fn select_num(t: &Table, col: &str, pred: impl Fn(f64) -> bool) -> Result<Table, OpsError> {
    let c = require(t, "select_num", col)?;
    let keep: Vec<usize> = (0..t.num_rows()).filter(|&r| pred(c.numeric(r))).collect();
    Ok(t.gather(&keep))
}

/// Projection to the named columns, in the given order.
pub fn project(t: &Table, cols: &[&str]) -> Result<Table, OpsError> {
    let pairs: Vec<(&str, Column)> = cols
        .iter()
        .map(|&name| Ok((name, require(t, "project", name)?.clone())))
        .collect::<Result<_, OpsError>>()?;
    Ok(Table::new(pairs))
}

/// Hash equi-join on integer key columns. Output keeps all columns of the
/// left table and the non-key columns of the right, prefixing right-side
/// names that collide with `right.`.
pub fn hash_join(
    left: &Table,
    left_key: &str,
    right: &Table,
    right_key: &str,
) -> Result<Table, OpsError> {
    let lk = require(left, "hash_join", left_key)?;
    let rk = require(right, "hash_join", right_key)?;

    // Build side: key -> row indices (right).
    let mut index: HashMap<i64, Vec<usize>> = HashMap::new();
    for r in 0..right.num_rows() {
        if let Some(k) = rk.value(r).as_i64() {
            index.entry(k).or_default().push(r);
        }
    }
    // Probe side.
    let mut left_rows: Vec<usize> = Vec::new();
    let mut right_rows: Vec<usize> = Vec::new();
    for l in 0..left.num_rows() {
        if let Some(k) = lk.value(l).as_i64() {
            if let Some(matches) = index.get(&k) {
                for &r in matches {
                    left_rows.push(l);
                    right_rows.push(r);
                }
            }
        }
    }

    let mut out = left.gather(&left_rows);
    let gathered_right = right.gather(&right_rows);
    for (i, name) in right.column_names().iter().enumerate() {
        if name == right_key {
            continue; // key already present from the left side
        }
        // Prefix until unique: the left table may itself already carry a
        // `right.<name>` column (e.g. the output of an earlier join).
        let mut out_name = name.clone();
        while out.column_index(&out_name).is_some() {
            out_name = format!("right.{out_name}");
        }
        out = out.with_column(&out_name, gathered_right.column_at(i).clone());
    }
    Ok(out)
}

/// Aggregate: sum of a numeric column.
pub fn sum_column(t: &Table, col: &str) -> Result<f64, OpsError> {
    let c = require(t, "sum_column", col)?;
    Ok((0..t.num_rows()).map(|r| c.numeric(r)).sum())
}

/// Group-by on an integer key with per-group count.
pub fn group_count(t: &Table, key: &str) -> Result<Vec<(i64, usize)>, OpsError> {
    let c = require(t, "group_count", key)?;
    let mut counts: HashMap<i64, usize> = HashMap::new();
    for r in 0..t.num_rows() {
        if let Some(k) = c.value(r).as_i64() {
            *counts.entry(k).or_default() += 1;
        }
    }
    let mut out: Vec<(i64, usize)> = counts.into_iter().collect();
    out.sort_unstable();
    Ok(out)
}

/// Sorts rows ascending by an integer key (relation → matrix casts need a
/// defined order, cf. paper §3).
pub fn sort_by_int(t: &Table, key: &str) -> Result<Table, OpsError> {
    let c = require(t, "sort_by_int", key)?;
    let mut idx: Vec<usize> = (0..t.num_rows()).collect();
    idx.sort_by_key(|&r| c.value(r).as_i64().unwrap_or(i64::MAX));
    Ok(t.gather(&idx))
}

/// Filters rows whose string column contains `needle` (the paper's Twitter
/// benchmark text-search selection, e.g. tweets mentioning "covid").
pub fn select_contains(t: &Table, col: &str, needle: &str) -> Table {
    select(t, |tab, r| match tab.value(r, col) {
        Value::Str(s) => s.contains(needle),
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn users() -> Table {
        Table::new(vec![
            ("id", Column::Int(vec![1, 2, 3])),
            ("followers", Column::Int(vec![10, 20, 30])),
        ])
    }

    fn tweets() -> Table {
        Table::new(vec![
            ("tid", Column::Int(vec![100, 101, 102, 103])),
            ("uid", Column::Int(vec![1, 1, 2, 9])),
            (
                "text",
                Column::Str(vec![
                    "covid update".into(),
                    "hello".into(),
                    "covid news".into(),
                    "other".into(),
                ]),
            ),
        ])
    }

    #[test]
    fn select_filters_rows() {
        let t = select_num(&users(), "followers", |v| v >= 20.0).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.value(0, "id"), Value::Int(2));
    }

    #[test]
    fn project_keeps_order() {
        let t = project(&users(), &["followers", "id"]).unwrap();
        assert_eq!(t.column_names(), &["followers".to_string(), "id".to_string()]);
    }

    #[test]
    fn join_matches_keys() {
        let j = hash_join(&tweets(), "uid", &users(), "id").unwrap();
        // tweet 103 has uid 9 with no matching user: dropped.
        assert_eq!(j.num_rows(), 3);
        assert_eq!(j.value(0, "followers"), Value::Int(10));
        assert_eq!(j.value(2, "followers"), Value::Int(20));
    }

    #[test]
    fn join_handles_duplicate_probe_keys() {
        let j = hash_join(&tweets(), "uid", &users(), "id").unwrap();
        // User 1 posted two tweets.
        let uid_one = (0..j.num_rows()).filter(|&r| j.value(r, "uid") == Value::Int(1)).count();
        assert_eq!(uid_one, 2);
    }

    #[test]
    fn text_search() {
        let t = select_contains(&tweets(), "text", "covid");
        assert_eq!(t.num_rows(), 2);
    }

    /// A float key column joins on exact integral values only: 1.0 matches
    /// key 1, while 1.2 and 1.9 match nothing (truncation used to merge
    /// them all onto key 1).
    #[test]
    fn join_on_float_key_requires_integral_values() {
        let measurements = Table::new(vec![
            ("uid", Column::Float(vec![1.0, 1.2, 1.9, 2.0])),
            ("reading", Column::Int(vec![10, 20, 30, 40])),
        ]);
        let j = hash_join(&measurements, "uid", &users(), "id").unwrap();
        assert_eq!(j.num_rows(), 2);
        assert_eq!(j.value(0, "reading"), Value::Int(10));
        assert_eq!(j.value(0, "followers"), Value::Int(10));
        assert_eq!(j.value(1, "reading"), Value::Int(40));
        assert_eq!(j.value(1, "followers"), Value::Int(20));
    }

    /// The left table already carries a `right.<name>` column (from an
    /// earlier join); the second join must not duplicate the name.
    #[test]
    fn join_uniquifies_colliding_column_names() {
        let left = Table::new(vec![
            ("id", Column::Int(vec![1, 2])),
            ("score", Column::Int(vec![5, 6])),
            ("right.score", Column::Int(vec![7, 8])),
        ]);
        let right = Table::new(vec![
            ("id", Column::Int(vec![1, 2])),
            ("score", Column::Int(vec![50, 60])),
        ]);
        let j = hash_join(&left, "id", &right, "id").unwrap();
        assert_eq!(
            j.column_names(),
            &[
                "id".to_string(),
                "score".to_string(),
                "right.score".to_string(),
                "right.right.score".to_string(),
            ]
        );
        assert_eq!(j.value(0, "score"), Value::Int(5));
        assert_eq!(j.value(0, "right.score"), Value::Int(7));
        assert_eq!(j.value(0, "right.right.score"), Value::Int(50));
    }

    #[test]
    fn aggregation_and_sort() {
        assert_eq!(sum_column(&users(), "followers").unwrap(), 60.0);
        let shuffled = users().gather(&[2, 0, 1]);
        let sorted = sort_by_int(&shuffled, "id").unwrap();
        assert_eq!(sorted.value(0, "id"), Value::Int(1));
        assert_eq!(sorted.value(2, "id"), Value::Int(3));
        assert_eq!(group_count(&tweets(), "uid").unwrap(), vec![(1, 2), (2, 1), (9, 1)]);
    }

    #[test]
    fn missing_columns_are_typed_errors() {
        let u = users();
        let missing = |e: Result<Table, OpsError>, op: &str| match e {
            Err(OpsError::MissingColumn { op: got, column }) => {
                assert_eq!(got, op);
                assert_eq!(column, "nope");
            }
            other => panic!("expected MissingColumn from {op}, got {other:?}"),
        };
        missing(select_num(&u, "nope", |_| true), "select_num");
        missing(project(&u, &["id", "nope"]), "project");
        missing(hash_join(&u, "nope", &u, "id"), "hash_join");
        missing(hash_join(&u, "id", &u, "nope"), "hash_join");
        missing(sort_by_int(&u, "nope"), "sort_by_int");
        assert!(sum_column(&u, "nope").is_err());
        assert!(group_count(&u, "nope").is_err());
    }
}
