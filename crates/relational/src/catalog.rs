//! Named-table catalog with basic statistics — the "source schema" side of
//! a hybrid HADAD deployment.

use std::collections::BTreeMap;

use crate::table::Table;

/// A registry of named tables (and materialized relational views).
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn register(&mut self, name: impl Into<String>, table: Table) {
        self.tables.insert(name.into(), table);
    }

    pub fn get(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(|s| s.as_str())
    }

    /// Row count of a registered table.
    pub fn cardinality(&self, name: &str) -> Option<usize> {
        self.tables.get(name).map(|t| t.num_rows())
    }

    /// Row-count cost of a plan that scans the named tables once each: the
    /// sum of their cardinalities, with unknown tables costed at
    /// `f64::INFINITY` so they can never beat a known plan. This is the
    /// cost function `Prune_prov` runs the PACB backchase with (§7.3): a
    /// rewriting is only as expensive as the relations it reads.
    pub fn scan_cost<'a>(&self, names: impl IntoIterator<Item = &'a str>) -> f64 {
        names.into_iter().map(|n| self.cardinality(n).map_or(f64::INFINITY, |c| c as f64)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Column;

    #[test]
    fn register_and_lookup() {
        let mut cat = Catalog::new();
        cat.register("users", Table::new(vec![("id", Column::Int(vec![1, 2]))]));
        assert_eq!(cat.cardinality("users"), Some(2));
        assert!(cat.get("missing").is_none());
        assert_eq!(cat.names().collect::<Vec<_>>(), vec!["users"]);
    }

    #[test]
    fn scan_cost_sums_cardinalities() {
        let mut cat = Catalog::new();
        cat.register("users", Table::new(vec![("id", Column::Int(vec![1, 2]))]));
        cat.register("tweets", Table::new(vec![("tid", Column::Int(vec![1, 2, 3]))]));
        assert_eq!(cat.scan_cost(["users", "tweets"]), 5.0);
        assert_eq!(cat.scan_cost(["users", "users"]), 4.0);
        assert_eq!(cat.scan_cost(["users", "missing"]), f64::INFINITY);
        assert_eq!(cat.scan_cost([]), 0.0);
    }
}
