//! Named-table catalog with basic statistics — the "source schema" side of
//! a hybrid HADAD deployment — plus the logged mutation API that feeds
//! incremental view maintenance.

use std::collections::BTreeMap;

use crate::ivm::{apply_delta, Delta, IvmError, TableUpdate, UpdateLog};
use crate::table::{Table, Value};

/// A registry of named tables (and materialized relational views).
///
/// Base tables mutate through [`Catalog::insert_rows`] /
/// [`Catalog::delete_rows`], which validate rows against the schema and
/// append a [`Delta`] to the catalog's update log; a view maintainer
/// drains the log ([`Catalog::take_updates`]) and delta-maintains every
/// materialized view instead of re-executing its definition.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
    log: UpdateLog,
    /// Monotonic state version: bumped by every successful mutation —
    /// logged inserts/deletes, maintenance writes, (re-)registration. See
    /// [`Catalog::epoch`].
    epoch: u64,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// The catalog's monotonically increasing epoch. Every successful
    /// mutation — [`Catalog::insert_rows`], [`Catalog::delete_rows`],
    /// [`Catalog::apply_unlogged`] (maintenance commits),
    /// [`Catalog::register`] — bumps it, so any derived artifact stamped
    /// with an epoch (a cached plan, a snapshot) is verifiably from the
    /// current state: a stale stamp is refused, which is what keeps plan
    /// cache hits sound under incremental view maintenance.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advances the epoch, mirroring the bump into the shared metrics
    /// registry (`catalog.epoch_bumps`) so snapshot/plan-cache staleness
    /// pressure is observable.
    fn bump_epoch(&mut self) {
        static BUMPS: hadad_obs::LazyCounter =
            hadad_obs::LazyCounter::new("catalog.epoch_bumps");
        BUMPS.incr();
        self.epoch += 1;
    }

    /// Registers a table under `name`, returning the table it displaced,
    /// if any. A `Some` return on a name you expected to be fresh means a
    /// view registration collision — callers that materialize views check
    /// it instead of silently shadowing a base table.
    pub fn register(&mut self, name: impl Into<String>, table: Table) -> Option<Table> {
        self.bump_epoch();
        self.tables.insert(name.into(), table)
    }

    /// Table registered under `name`.
    pub fn get(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Registered table names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(std::string::String::as_str)
    }

    /// Row count of a registered table.
    pub fn cardinality(&self, name: &str) -> Option<usize> {
        self.tables.get(name).map(super::table::Table::num_rows)
    }

    /// Appends `rows` to a base table (arity- and type-checked, atomic)
    /// and logs the insertion for view maintenance. Returns the number of
    /// inserted rows.
    pub fn insert_rows(
        &mut self,
        name: &str,
        rows: Vec<Vec<Value>>,
    ) -> Result<usize, IvmError> {
        let table =
            self.tables.get_mut(name).ok_or_else(|| IvmError::MissingTable(name.to_owned()))?;
        let delta = Delta::inserts(table, rows);
        let (inserted, _) = apply_delta(table, &delta, name)?;
        self.log.push(name, delta);
        self.bump_epoch();
        Ok(inserted)
    }

    /// Retracts `rows` from a base table under counting semantics (each
    /// listed row removes one matching copy; retracting a row the table
    /// does not hold is an error, applied atomically) and logs the
    /// deletion. Returns the number of deleted rows.
    pub fn delete_rows(
        &mut self,
        name: &str,
        rows: Vec<Vec<Value>>,
    ) -> Result<usize, IvmError> {
        let table =
            self.tables.get_mut(name).ok_or_else(|| IvmError::MissingTable(name.to_owned()))?;
        let delta = Delta::deletes(table, rows);
        let (_, deleted) = apply_delta(table, &delta, name)?;
        self.log.push(name, delta);
        self.bump_epoch();
        Ok(deleted)
    }

    /// Applies a maintenance delta to a table *without* logging it — the
    /// view-maintenance path, which must not re-enqueue its own writes.
    pub fn apply_unlogged(
        &mut self,
        name: &str,
        delta: &Delta,
    ) -> Result<(usize, usize), IvmError> {
        let table =
            self.tables.get_mut(name).ok_or_else(|| IvmError::MissingTable(name.to_owned()))?;
        let applied = apply_delta(table, delta, name)?;
        self.bump_epoch();
        Ok(applied)
    }

    /// Mutations logged since the last drain, in arrival order.
    pub fn pending_updates(&self) -> &[TableUpdate] {
        self.log.entries()
    }

    /// Drains the update log for the maintainer.
    pub fn take_updates(&mut self) -> Vec<TableUpdate> {
        self.log.drain()
    }

    /// Row-count cost of a plan that scans the named tables once each: the
    /// sum of their cardinalities, with unknown tables costed at
    /// `f64::INFINITY` so they can never beat a known plan. This is the
    /// cost function `Prune_prov` runs the PACB backchase with (§7.3): a
    /// rewriting is only as expensive as the relations it reads.
    pub fn scan_cost<'a>(&self, names: impl IntoIterator<Item = &'a str>) -> f64 {
        names.into_iter().map(|n| self.cardinality(n).map_or(f64::INFINITY, |c| c as f64)).sum()
    }

    /// [`Catalog::scan_cost`] that names the offending table instead of
    /// returning an unattributable infinity — for callers that treat a
    /// vanished view as a hard error rather than an unpriceable plan.
    pub fn scan_cost_checked<'a>(
        &self,
        names: impl IntoIterator<Item = &'a str>,
    ) -> Result<f64, IvmError> {
        let mut total = 0.0;
        for n in names {
            total +=
                self.cardinality(n).ok_or_else(|| IvmError::MissingTable(n.to_owned()))? as f64;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Column;

    #[test]
    fn register_and_lookup() {
        let mut cat = Catalog::new();
        cat.register("users", Table::new(vec![("id", Column::Int(vec![1, 2]))]));
        assert_eq!(cat.cardinality("users"), Some(2));
        assert!(cat.get("missing").is_none());
        assert_eq!(cat.names().collect::<Vec<_>>(), vec!["users"]);
    }

    #[test]
    fn register_returns_displaced_table() {
        let mut cat = Catalog::new();
        assert!(cat
            .register("users", Table::new(vec![("id", Column::Int(vec![1, 2]))]))
            .is_none());
        let displaced = cat
            .register("users", Table::new(vec![("id", Column::Int(vec![7]))]))
            .expect("second registration displaces the first");
        assert_eq!(displaced.num_rows(), 2);
        assert_eq!(cat.cardinality("users"), Some(1));
    }

    #[test]
    fn scan_cost_sums_cardinalities() {
        let mut cat = Catalog::new();
        cat.register("users", Table::new(vec![("id", Column::Int(vec![1, 2]))]));
        cat.register("tweets", Table::new(vec![("tid", Column::Int(vec![1, 2, 3]))]));
        assert_eq!(cat.scan_cost(["users", "tweets"]), 5.0);
        assert_eq!(cat.scan_cost(["users", "users"]), 4.0);
        assert_eq!(cat.scan_cost(["users", "missing"]), f64::INFINITY);
        assert_eq!(cat.scan_cost([]), 0.0);
    }

    #[test]
    fn scan_cost_checked_names_the_missing_table() {
        let mut cat = Catalog::new();
        cat.register("users", Table::new(vec![("id", Column::Int(vec![1, 2]))]));
        assert_eq!(cat.scan_cost_checked(["users", "users"]), Ok(4.0));
        assert_eq!(
            cat.scan_cost_checked(["users", "gone"]),
            Err(IvmError::MissingTable("gone".into()))
        );
    }

    #[test]
    fn insert_and_delete_rows_mutate_and_log() {
        let mut cat = Catalog::new();
        cat.register("users", Table::new(vec![("id", Column::Int(vec![1, 2]))]));
        assert_eq!(
            cat.insert_rows("users", vec![vec![Value::Int(3)], vec![Value::Int(4)]]),
            Ok(2)
        );
        assert_eq!(cat.cardinality("users"), Some(4));
        assert_eq!(cat.delete_rows("users", vec![vec![Value::Int(1)]]), Ok(1));
        assert_eq!(cat.cardinality("users"), Some(3));
        let updates = cat.take_updates();
        assert_eq!(updates.len(), 2);
        assert_eq!(updates[0].table, "users");
        assert_eq!(updates[0].delta.counts(), (2, 0));
        assert_eq!(updates[1].delta.counts(), (0, 1));
        assert!(cat.pending_updates().is_empty());
    }

    #[test]
    fn epoch_bumps_on_every_successful_mutation_only() {
        let mut cat = Catalog::new();
        assert_eq!(cat.epoch(), 0);
        cat.register("users", Table::new(vec![("id", Column::Int(vec![1, 2]))]));
        assert_eq!(cat.epoch(), 1);
        cat.insert_rows("users", vec![vec![Value::Int(3)]]).unwrap();
        assert_eq!(cat.epoch(), 2);
        cat.delete_rows("users", vec![vec![Value::Int(1)]]).unwrap();
        assert_eq!(cat.epoch(), 3);
        // Failed mutations leave the epoch alone.
        assert!(cat.insert_rows("ghosts", vec![vec![Value::Int(1)]]).is_err());
        assert!(cat.delete_rows("users", vec![vec![Value::Int(99)]]).is_err());
        assert_eq!(cat.epoch(), 3);
        // Draining the log is not a state mutation.
        let _ = cat.take_updates();
        assert_eq!(cat.epoch(), 3);
        // Maintenance writes commit a new epoch.
        let table = cat.get("users").unwrap();
        let delta = Delta::inserts(table, vec![vec![Value::Int(9)]]);
        cat.apply_unlogged("users", &delta).unwrap();
        assert_eq!(cat.epoch(), 4);
    }

    #[test]
    fn mutations_validate_schema_and_existence() {
        let mut cat = Catalog::new();
        cat.register("users", Table::new(vec![("id", Column::Int(vec![1, 2]))]));
        assert!(matches!(
            cat.insert_rows("ghosts", vec![vec![Value::Int(1)]]),
            Err(IvmError::MissingTable(_))
        ));
        // Type mismatch is rejected without mutating or logging.
        assert!(matches!(
            cat.insert_rows("users", vec![vec![Value::Str("x".into())]]),
            Err(IvmError::SchemaMismatch { .. })
        ));
        // Deleting a row that is not there is a hard error, not a no-op.
        assert!(matches!(
            cat.delete_rows("users", vec![vec![Value::Int(99)]]),
            Err(IvmError::MissingRow { .. })
        ));
        assert_eq!(cat.cardinality("users"), Some(2));
        assert!(cat.pending_updates().is_empty());
    }
}
