//! Named-table catalog with basic statistics — the "source schema" side of
//! a hybrid HADAD deployment.

use std::collections::BTreeMap;

use crate::table::Table;

/// A registry of named tables (and materialized relational views).
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn register(&mut self, name: impl Into<String>, table: Table) {
        self.tables.insert(name.into(), table);
    }

    pub fn get(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(|s| s.as_str())
    }

    /// Row count of a registered table.
    pub fn cardinality(&self, name: &str) -> Option<usize> {
        self.tables.get(name).map(|t| t.num_rows())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Column;

    #[test]
    fn register_and_lookup() {
        let mut cat = Catalog::new();
        cat.register("users", Table::new(vec![("id", Column::Int(vec![1, 2]))]));
        assert_eq!(cat.cardinality("users"), Some(2));
        assert!(cat.get("missing").is_none());
        assert_eq!(cat.names().collect::<Vec<_>>(), vec!["users"]);
    }
}
