//! Property-style certification of the built-in rule set: the standard
//! MMC catalogue (functional EGDs + structural/decomposition TGDs +
//! stats-propagation rules), alone and extended with sampled per-view
//! `V_IO`/`V_OI` constraints, must be range-restricted and weakly acyclic
//! modulo conclusion-atom reuse. This is the same certificate `xtask
//! analyze` gates CI on, pinned here as a plain tier-1 test.

use hadad_core::analyze::{IssueKind, Severity};
use hadad_core::expr::dsl::{add, inv, m, mul, smul, t, trace};
use hadad_core::{Catalogue, Expr, MatrixMeta, MetaCatalog, Vrem};

fn meta() -> MetaCatalog {
    let mut meta = MetaCatalog::new();
    meta.register("A", MatrixMeta::dense(64, 32));
    meta.register("B", MatrixMeta::dense(32, 48));
    meta.register("C", MatrixMeta::dense(48, 48));
    meta.register("G", MatrixMeta::dense(32, 32));
    meta
}

/// View shapes sampled across the operator surface the view-constraint
/// generator handles: chain products, transposed Gram mixes, inverses,
/// and scalar-scaled trace reductions.
fn sample_views() -> Vec<(&'static str, Expr)> {
    vec![
        ("V_chain", mul(mul(m("A"), m("B")), m("C"))),
        ("V_mix", add(mul(t(m("A")), m("A")), m("G"))),
        ("V_inv", inv(add(mul(t(m("A")), m("A")), m("G")))),
        ("V_scaled", smul(trace(mul(m("A"), t(m("A")))), m("C"))),
    ]
}

#[test]
fn standard_catalogue_is_certified() {
    let mut vrem = Vrem::new();
    let cat = Catalogue::standard(&mut vrem);
    let report = cat.analyze(&vrem);

    assert!(
        report.certified(),
        "catalogue failed its own gate:\n{}",
        report.display(Some(&vrem.vocab))
    );
    assert_eq!(report.errors().count(), 0);
    // Documented property, not an accident: the catalogue is NOT strictly
    // weakly acyclic (associativity/distributivity rules cycle through
    // existential positions), but every such cycle is reuse-guarded by
    // the functional EGDs, so the modulo-reuse certificate holds.
    assert!(!report.wa_strict);
    assert!(report.wa_modulo_reuse);
    assert_eq!(report.special_edges, 0, "no unguarded existential edges");
    assert!(report.guarded_edges > 0);
    assert!(report.issues.iter().any(|i| matches!(i.kind, IssueKind::GuardedCycle { .. })));
    // Every catalogue existential is reuse-bound — the PR 4 contract.
    assert!(!report
        .issues
        .iter()
        .any(|i| matches!(i.kind, IssueKind::UnguardedExistential { .. })));
    // No redundant rules slipped into the hand-built set.
    assert!(!report.issues.iter().any(|i| matches!(i.kind, IssueKind::Subsumed { .. })));
}

#[test]
fn catalogue_with_sampled_view_constraints_stays_certified() {
    let mut vrem = Vrem::new();
    let mut cat = Catalogue::standard(&mut vrem);
    let meta = meta();
    for (name, def) in sample_views() {
        let cs = Catalogue::la_view_constraints(&mut vrem, &meta, name, &def)
            .unwrap_or_else(|e| panic!("view constraints for {name}: {e:?}"));
        assert!(!cs.is_empty(), "{name} generated no constraints");
        cat.constraints.extend(cs);
    }

    let report = cat.analyze(&vrem);
    assert!(
        report.certified(),
        "catalogue + views failed the gate:\n{}",
        report.display(Some(&vrem.vocab))
    );
    assert_eq!(report.special_edges, 0);
    // View generators add guarded cycles (V_OI re-derives the view's
    // definition); all must stay informational.
    for issue in &report.issues {
        assert!(
            issue.severity < Severity::Error,
            "unexpected error finding: {}",
            issue.message(Some(&vrem.vocab))
        );
    }
}

/// Each view's constraints certify in isolation too — the property the
/// hybrid registration gate relies on when it analyzes one view at a
/// time.
#[test]
fn each_sampled_view_certifies_in_isolation() {
    for (name, def) in sample_views() {
        let mut vrem = Vrem::new();
        let mut cat = Catalogue::standard(&mut vrem);
        let cs = Catalogue::la_view_constraints(&mut vrem, &meta(), name, &def)
            .unwrap_or_else(|e| panic!("view constraints for {name}: {e:?}"));
        cat.constraints.extend(cs);
        let report = cat.analyze(&vrem);
        assert!(
            report.certified(),
            "view {name} alone failed the gate:\n{}",
            report.display(Some(&vrem.vocab))
        );
    }
}
