//! Matrix metadata and the **unified cost oracle's** estimator: dimensions,
//! non-zero counts, structural type flags, optional MNC count-histograms
//! (the paper's §7.2 metadata files), and the single shape/density/flops
//! propagation table every consumer shares — the naïve estimator of §7.2.1
//! ([`op_stats`]/[`op_flops`]), the extraction DP's cost
//! (`hadad_rewrite::FlopsCost`), and the chase's `Prune_prov` oracle.
//! Before this unification, extraction re-inferred shapes bottom-up and the
//! two cost models disagreed on chase-created intermediates.

use std::collections::BTreeMap;

use hadad_linalg::Matrix;

use crate::expr::Expr;
use crate::schema::OpKind;

/// Structural type flags used by the decomposition constraints (§6.2.5):
/// symmetric positive definite ("S"), lower/upper triangular ("L"/"U"),
/// orthogonal ("O"), permutation ("P").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TypeFlags {
    /// Symmetric positive definite ("S").
    pub symmetric_pd: bool,
    /// Lower triangular ("L").
    pub lower_triangular: bool,
    /// Upper triangular ("U").
    pub upper_triangular: bool,
    /// Orthogonal ("O").
    pub orthogonal: bool,
}

/// MNC-style count histograms: per-row and per-column non-zero counts
/// (Sommer et al., the estimator HADAD adopts in §7.2.2).
#[derive(Debug, Clone, PartialEq)]
pub struct MncHistogram {
    /// Non-zero count per row.
    pub row_counts: Vec<u32>,
    /// Non-zero count per column.
    pub col_counts: Vec<u32>,
}

impl MncHistogram {
    /// Exact histograms counted from a materialized matrix.
    pub fn from_matrix(m: &Matrix) -> Self {
        let s = m.to_sparse();
        MncHistogram {
            row_counts: s.row_nnz().iter().map(|&c| c as u32).collect(),
            col_counts: s.col_nnz().iter().map(|&c| c as u32).collect(),
        }
    }

    /// Total non-zero count.
    pub fn nnz(&self) -> u64 {
        self.row_counts.iter().map(|&c| c as u64).sum()
    }
}

/// Metadata for one base matrix (or materialized view).
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixMeta {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Exact (or estimated) non-zero count.
    pub nnz: usize,
    /// Structural type flags (§6.2.5).
    pub flags: TypeFlags,
    /// Offline MNC histograms (built once per base matrix).
    pub mnc: Option<MncHistogram>,
}

impl MatrixMeta {
    /// Dense metadata (`nnz = rows * cols`).
    pub fn dense(rows: usize, cols: usize) -> Self {
        MatrixMeta { rows, cols, nnz: rows * cols, flags: TypeFlags::default(), mnc: None }
    }

    /// Sparse metadata from an nnz count.
    pub fn sparse(rows: usize, cols: usize, nnz: usize) -> Self {
        MatrixMeta { rows, cols, nnz, flags: TypeFlags::default(), mnc: None }
    }

    /// Extracts metadata (including MNC histograms) from an actual matrix.
    pub fn from_matrix(m: &Matrix) -> Self {
        MatrixMeta {
            rows: m.rows(),
            cols: m.cols(),
            nnz: m.nnz(),
            flags: TypeFlags::default(),
            mnc: Some(MncHistogram::from_matrix(m)),
        }
    }

    /// Replaces the structural flags.
    pub fn with_flags(mut self, flags: TypeFlags) -> Self {
        self.flags = flags;
        self
    }

    /// Non-zero fraction in `[0, 1]`.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz as f64 / (self.rows as f64 * self.cols as f64)
        }
    }

    /// The shape/density summary the unified estimator propagates.
    pub fn stats(&self) -> ClassStats {
        ClassStats { rows: self.rows, cols: self.cols, density: self.density() }
    }
}

/// Catalog of metadata for named base matrices and views.
#[derive(Debug, Clone, Default)]
pub struct MetaCatalog {
    entries: BTreeMap<String, MatrixMeta>,
}

impl MetaCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) metadata under `name`.
    pub fn register(&mut self, name: impl Into<String>, meta: MatrixMeta) {
        self.entries.insert(name.into(), meta);
    }

    /// Metadata registered under `name`, if any.
    pub fn get(&self, name: &str) -> Option<&MatrixMeta> {
        self.entries.get(name)
    }

    /// All registered names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(std::string::String::as_str)
    }

    /// Shape + density estimate of an expression over this catalog —
    /// sparsity estimates for products, sums, decompositions, and every
    /// other operator flow through the shared [`op_stats`] table.
    pub fn expr_stats(&self, e: &Expr) -> Result<ClassStats, ShapeError> {
        expr_stats(e, self)
    }
}

/// Shape-inference error.
#[derive(Debug, Clone, PartialEq)]
pub enum ShapeError {
    /// A referenced matrix has no catalog entry.
    UnknownMatrix(String),
    /// Operand shapes are incompatible for the operator.
    Mismatch(String),
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShapeError::UnknownMatrix(n) => write!(f, "unknown matrix {n}"),
            ShapeError::Mismatch(m) => write!(f, "shape mismatch: {m}"),
        }
    }
}

impl std::error::Error for ShapeError {}

/// Shape + density estimate of one equivalence class of expressions — the
/// currency of the unified cost oracle. Carried as `size`/`density` facts
/// in the chased instance, propagated per operator by [`op_stats`], and
/// priced by [`op_flops`]/[`op_cost`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassStats {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Estimated fraction of non-zero cells in `[0, 1]`.
    pub density: f64,
}

impl ClassStats {
    /// Fully dense stats.
    pub fn dense(rows: usize, cols: usize) -> Self {
        ClassStats { rows, cols, density: 1.0 }
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total cell count.
    pub fn cells(&self) -> f64 {
        self.rows as f64 * self.cols as f64
    }

    /// Estimated non-zero count.
    pub fn nnz(&self) -> f64 {
        self.cells() * self.density
    }
}

/// Weight of one materialized output cell relative to one flop, shared by
/// every estimator built on [`op_cost`] (paper §7.1: flops plus
/// intermediate materialization).
pub const MEM_WEIGHT: f64 = 0.5;

/// Output shape and density of one operator application (the naïve
/// metadata propagation of §7.2.1), assuming shape-valid inputs. `out_idx`
/// distinguishes the two outputs of QR/LU. `child` follows the VREM
/// argument order (`ScalarMul` is `[scalar, matrix]`).
pub fn op_stats(kind: OpKind, out_idx: usize, child: &[ClassStats]) -> ClassStats {
    use OpKind::*;
    let st = |rows, cols, density: f64| ClassStats { rows, cols, density };
    match kind {
        // Union bound on non-zeros.
        Add => st(child[0].rows, child[0].cols, (child[0].density + child[1].density).min(1.0)),
        Hadamard => st(child[0].rows, child[0].cols, child[0].density * child[1].density),
        Div => child[0],
        Mul => {
            // Naïve independence estimate: the chance a result cell stays
            // zero is (1 - dA·dB)^k.
            let k = child[0].cols as f64;
            let density = 1.0 - (1.0 - child[0].density * child[1].density).powf(k);
            st(child[0].rows, child[1].cols, density.clamp(0.0, 1.0))
        }
        ScalarMul => child[1],
        Kron => st(
            child[0].rows * child[1].rows,
            child[0].cols * child[1].cols,
            child[0].density * child[1].density,
        ),
        DirectSum => {
            let out =
                ClassStats::dense(child[0].rows + child[1].rows, child[0].cols + child[1].cols);
            let density = if out.cells() == 0.0 {
                0.0
            } else {
                (child[0].nnz() + child[1].nnz()) / out.cells()
            };
            st(out.rows, out.cols, density)
        }
        Transpose => st(child[0].cols, child[0].rows, child[0].density),
        Rev => child[0],
        // Inverses/exponentials of sparse matrices are dense.
        Inv | Adj | Exp => st(child[0].rows, child[0].cols, 1.0),
        // Triangular/orthogonal factors: Q is dense, the rest half-filled.
        Cho => st(child[0].rows, child[0].cols, 0.5),
        Qr => st(child[0].rows, child[0].cols, if out_idx == 0 { 1.0 } else { 0.5 }),
        Lu => st(child[0].rows, child[0].cols, 0.5),
        Diag => st(child[0].rows, 1, child[0].density.min(1.0)),
        RowSums | RowMeans | RowMin | RowMax | RowVar => st(child[0].rows, 1, 1.0),
        ColSums | ColMeans | ColMin | ColMax | ColVar => st(1, child[0].cols, 1.0),
        Det | Trace | Sum | Min | Max | Mean | Var => st(1, 1, 1.0),
    }
}

/// Sparsity-aware flop estimate of one operator application (children
/// excluded) — §7.2.1's cost table, single-sourced for the ranking cost
/// model, the extraction DP, and the chase pruner. Densities of 1.0
/// reproduce the dense counts.
pub fn op_flops(kind: OpKind, _out_idx: usize, child: &[ClassStats]) -> f64 {
    use OpKind::*;
    let n = child.first().map_or(1.0, |c| c.rows as f64);
    match kind {
        Mul => {
            2.0 * child[0].rows as f64
                * child[0].cols as f64
                * child[1].cols as f64
                * child[0].density
                * child[1].density
                + child[0].rows as f64 * child[1].cols as f64
        }
        Add | Div => child[0].cells(),
        Hadamard => child[0].nnz().min(child[1].nnz()),
        ScalarMul => child[1].nnz(),
        Kron => child[0].nnz() * child[1].nnz(),
        DirectSum => child[0].nnz() + child[1].nnz(),
        Transpose | Rev => child[0].nnz(),
        Inv => 2.0 * n * n * n,
        Adj => 2.0 * n * n * n * n,
        Exp => 30.0 * n * n * n,
        Det => n * n * n,
        Cho => n * n * n / 3.0,
        Qr => 2.0 * n * n * n,
        Lu => 2.0 * n * n * n / 3.0,
        Diag | Trace => n,
        RowSums | ColSums | RowMeans | ColMeans | RowMin | RowMax | ColMin | ColMax | Sum
        | Min | Max | Mean => child[0].cells(),
        RowVar | ColVar | Var => 2.0 * child[0].cells(),
    }
}

/// Calibration constants for one execution backend
/// (`hadad_linalg::backend`): how much faster than the reference kernels
/// its product kernels run, per representation class. Every cost consumer
/// (ranking `CostModel`, extraction `FlopsCost`, chase `Prune_prov`)
/// prices plans through [`op_cost_with`] under the optimizer's profile, so
/// plan choice tracks what the selected hardware backend actually runs
/// fastest — the SystemML lesson that abstract flops alone mis-rank plans.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendProfile {
    /// Backend name, as reported by `ExecBackend::name`.
    pub name: &'static str,
    /// Worker threads the backend fans product rows across.
    pub threads: usize,
    /// Dense GEMM tile width (0 = unblocked).
    pub tile: usize,
    /// Effective speedup of dense-representation products over the
    /// reference i-k-j kernel (cache blocking × sublinear thread scaling).
    pub dense_mul_speedup: f64,
    /// Effective speedup of sparse-representation products (direct CSR
    /// assembly instead of a global triplet sort, × thread scaling).
    pub sparse_mul_speedup: f64,
    /// Per-output-nnz materialization weight (memory traffic does not
    /// scale with threads, so it is per-profile rather than global).
    pub mem_weight: f64,
}

impl BackendProfile {
    /// The reference kernels: the unit everything is calibrated against.
    pub const fn reference() -> Self {
        BackendProfile {
            name: "reference",
            threads: 1,
            tile: 0,
            dense_mul_speedup: 1.0,
            sparse_mul_speedup: 1.0,
            mem_weight: MEM_WEIGHT,
        }
    }

    /// The `Parallel` backend at a given worker count. Single-thread
    /// dividends come from cache blocking (dense) and direct-CSR SpGEMM
    /// assembly (sparse); extra threads scale sublinearly — dense GEMM is
    /// compute-bound and scales well, sparse kernels are memory-bound and
    /// scale worse.
    pub fn parallel(threads: usize) -> Self {
        let t = threads.max(1) as f64;
        BackendProfile {
            name: "parallel",
            threads: threads.max(1),
            tile: hadad_linalg::backend::GEMM_TILE,
            dense_mul_speedup: 1.25 * (1.0 + 0.85 * (t - 1.0)),
            sparse_mul_speedup: 2.0 * (1.0 + 0.6 * (t - 1.0)),
            mem_weight: MEM_WEIGHT,
        }
    }

    /// Profile for a backend selection, with `Parallel` sized to the host
    /// the way the backend itself sizes its thread pool.
    pub fn for_kind(kind: hadad_linalg::BackendKind) -> Self {
        match kind {
            hadad_linalg::BackendKind::Reference => BackendProfile::reference(),
            hadad_linalg::BackendKind::Parallel => {
                BackendProfile::parallel(hadad_linalg::backend::auto_threads())
            }
        }
    }
}

impl Default for BackendProfile {
    fn default() -> Self {
        BackendProfile::reference()
    }
}

/// Full per-operator charge: flops plus the materialization of the output's
/// estimated non-zeros, priced under the reference backend. Backend-aware
/// consumers go through [`op_cost_with`].
pub fn op_cost(kind: OpKind, out_idx: usize, child: &[ClassStats], out: &ClassStats) -> f64 {
    op_cost_with(&BackendProfile::reference(), kind, out_idx, child, out)
}

/// [`op_cost`] under a backend's calibration constants. Only products
/// route through [`ExecBackend`](hadad_linalg::ExecBackend) kernels, so
/// only `Mul` flops are scaled; the representation policy of the kernels
/// (sparse × sparse stays sparse, anything dense densifies) picks which
/// speedup applies via the child densities.
pub fn op_cost_with(
    profile: &BackendProfile,
    kind: OpKind,
    out_idx: usize,
    child: &[ClassStats],
    out: &ClassStats,
) -> f64 {
    let mut flops = op_flops(kind, out_idx, child);
    if kind == OpKind::Mul {
        // Matrices denser than the CSR break-even point run the dense
        // kernels; a fully sparse pair runs SpGEMM.
        let sparse_pair = child[0].density < 0.5 && child[1].density < 0.5;
        let speedup =
            if sparse_pair { profile.sparse_mul_speedup } else { profile.dense_mul_speedup };
        flops /= speedup.max(1e-9);
    }
    flops + profile.mem_weight * out.nnz()
}

/// Infers the shape of an expression from base-matrix metadata.
pub fn shape(e: &Expr, cat: &MetaCatalog) -> Result<(usize, usize), ShapeError> {
    expr_stats(e, cat).map(|s| s.shape())
}

/// Infers shape *and* density of an expression from base-matrix metadata,
/// validating operator shapes along the way. This is what the encoder
/// attaches to every subexpression as `size`/`density` facts, so the chase
/// and the extractor start from the same estimates the ranking cost model
/// would compute.
pub fn expr_stats(e: &Expr, cat: &MetaCatalog) -> Result<ClassStats, ShapeError> {
    use Expr::*;
    let same = |e: &Expr, a: ClassStats, b: ClassStats| {
        if a.shape() != b.shape() {
            return Err(ShapeError::Mismatch(format!("{e}")));
        }
        Ok(())
    };
    let square = |e: &Expr, a: ClassStats| {
        if a.rows != a.cols {
            return Err(ShapeError::Mismatch(format!("{e} requires square input")));
        }
        Ok(())
    };
    Ok(match e {
        Mat(n) => cat.get(n).ok_or_else(|| ShapeError::UnknownMatrix(n.clone()))?.stats(),
        Const(_) => ClassStats::dense(1, 1),
        Identity(n) => ClassStats { rows: *n, cols: *n, density: 1.0 / (*n).max(1) as f64 },
        Zero(r, c) => ClassStats { rows: *r, cols: *c, density: 0.0 },
        Add(a, b) | Sub(a, b) | Hadamard(a, b) | Div(a, b) => {
            let (sa, sb) = (expr_stats(a, cat)?, expr_stats(b, cat)?);
            same(e, sa, sb)?;
            let kind = match e {
                Hadamard(..) => OpKind::Hadamard,
                Div(..) => OpKind::Div,
                _ => OpKind::Add,
            };
            op_stats(kind, 0, &[sa, sb])
        }
        Mul(a, b) => {
            let (sa, sb) = (expr_stats(a, cat)?, expr_stats(b, cat)?);
            if sa.cols != sb.rows {
                return Err(ShapeError::Mismatch(format!("{e}")));
            }
            op_stats(OpKind::Mul, 0, &[sa, sb])
        }
        Kron(a, b) => op_stats(OpKind::Kron, 0, &[expr_stats(a, cat)?, expr_stats(b, cat)?]),
        DirectSum(a, b) => {
            op_stats(OpKind::DirectSum, 0, &[expr_stats(a, cat)?, expr_stats(b, cat)?])
        }
        ScalarMul(s, a) => {
            let ss = expr_stats(s, cat)?;
            if ss.shape() != (1, 1) {
                return Err(ShapeError::Mismatch(format!("non-scalar multiplier in {e}")));
            }
            op_stats(OpKind::ScalarMul, 0, &[ss, expr_stats(a, cat)?])
        }
        Transpose(a) => op_stats(OpKind::Transpose, 0, &[expr_stats(a, cat)?]),
        Rev(a) => op_stats(OpKind::Rev, 0, &[expr_stats(a, cat)?]),
        Inv(a) | Adj(a) | Exp(a) | Cho(a) | QrQ(a) | LuL(a) | Diag(a) | Det(a) | Trace(a) => {
            let sa = expr_stats(a, cat)?;
            square(e, sa)?;
            let (kind, out_idx) = match e {
                Inv(_) => (OpKind::Inv, 0),
                Adj(_) => (OpKind::Adj, 0),
                Exp(_) => (OpKind::Exp, 0),
                Cho(_) => (OpKind::Cho, 0),
                QrQ(_) => (OpKind::Qr, 0),
                LuL(_) => (OpKind::Lu, 0),
                Diag(_) => (OpKind::Diag, 0),
                Det(_) => (OpKind::Det, 0),
                _ => (OpKind::Trace, 0),
            };
            op_stats(kind, out_idx, &[sa])
        }
        QrR(a) => op_stats(OpKind::Qr, 1, &[expr_stats(a, cat)?]),
        LuU(a) => op_stats(OpKind::Lu, 1, &[expr_stats(a, cat)?]),
        RowSums(a) | RowMeans(a) | RowMin(a) | RowMax(a) | RowVar(a) => {
            let kind = match e {
                RowSums(_) => OpKind::RowSums,
                RowMeans(_) => OpKind::RowMeans,
                RowMin(_) => OpKind::RowMin,
                RowMax(_) => OpKind::RowMax,
                _ => OpKind::RowVar,
            };
            op_stats(kind, 0, &[expr_stats(a, cat)?])
        }
        ColSums(a) | ColMeans(a) | ColMin(a) | ColMax(a) | ColVar(a) => {
            let kind = match e {
                ColSums(_) => OpKind::ColSums,
                ColMeans(_) => OpKind::ColMeans,
                ColMin(_) => OpKind::ColMin,
                ColMax(_) => OpKind::ColMax,
                _ => OpKind::ColVar,
            };
            op_stats(kind, 0, &[expr_stats(a, cat)?])
        }
        Sum(a) | Min(a) | Max(a) | Mean(a) | Var(a) => {
            let kind = match e {
                Sum(_) => OpKind::Sum,
                Min(_) => OpKind::Min,
                Max(_) => OpKind::Max,
                Mean(_) => OpKind::Mean,
                _ => OpKind::Var,
            };
            op_stats(kind, 0, &[expr_stats(a, cat)?])
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::dsl::*;

    fn cat() -> MetaCatalog {
        let mut c = MetaCatalog::new();
        c.register("M", MatrixMeta::dense(50, 10));
        c.register("N", MatrixMeta::dense(10, 50));
        c
    }

    #[test]
    fn shapes_of_products_and_transposes() {
        let c = cat();
        assert_eq!(shape(&mul(m("M"), m("N")), &c).unwrap(), (50, 50));
        assert_eq!(shape(&t(mul(m("M"), m("N"))), &c).unwrap(), (50, 50));
        assert_eq!(shape(&col_sums(m("M")), &c).unwrap(), (1, 10));
        assert_eq!(shape(&row_sums(m("M")), &c).unwrap(), (50, 1));
        assert_eq!(shape(&sum(m("M")), &c).unwrap(), (1, 1));
    }

    #[test]
    fn mismatches_detected() {
        let c = cat();
        assert!(shape(&add(m("M"), m("N")), &c).is_err());
        assert!(shape(&mul(m("M"), m("M")), &c).is_err());
        assert!(shape(&det(m("M")), &c).is_err());
        assert!(shape(&m("missing"), &c).is_err());
    }

    #[test]
    fn metadata_from_matrix_builds_histograms() {
        let mat = Matrix::sparse(3, 4, vec![(0, 0, 1.0), (0, 1, 1.0), (2, 3, 1.0)]);
        let meta = MatrixMeta::from_matrix(&mat);
        assert_eq!(meta.nnz, 3);
        let h = meta.mnc.unwrap();
        assert_eq!(h.row_counts, vec![2, 0, 1]);
        assert_eq!(h.col_counts, vec![1, 1, 0, 1]);
        assert_eq!(h.nnz(), 3);
    }

    #[test]
    fn density() {
        let meta = MatrixMeta::sparse(10, 10, 5);
        assert!((meta.density() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn expr_stats_propagates_density() {
        let mut c = MetaCatalog::new();
        c.register("S", MatrixMeta::sparse(100, 100, 100)); // density 0.01
        c.register("D", MatrixMeta::dense(100, 100));
        // Transpose preserves density; Hadamard multiplies; Add unions;
        // inverses densify.
        let s = c.expr_stats(&t(m("S"))).unwrap();
        assert!((s.density - 0.01).abs() < 1e-12);
        let h = c.expr_stats(&had(m("S"), m("S"))).unwrap();
        assert!((h.density - 0.0001).abs() < 1e-12);
        let a = c.expr_stats(&add(m("S"), m("S"))).unwrap();
        assert!((a.density - 0.02).abs() < 1e-12);
        assert_eq!(c.expr_stats(&inv(m("S"))).unwrap().density, 1.0);
        // Product of sparse factors stays sparse under the independence
        // estimate; dense × dense stays dense.
        let ss = c.expr_stats(&mul(m("S"), m("S"))).unwrap();
        assert!(ss.density < 0.02, "density {}", ss.density);
        assert_eq!(c.expr_stats(&mul(m("D"), m("D"))).unwrap().density, 1.0);
    }

    #[test]
    fn op_cost_reduces_to_dense_flops_at_density_one() {
        let a = ClassStats::dense(30, 4);
        let b = ClassStats::dense(4, 30);
        let out = op_stats(OpKind::Mul, 0, &[a, b]);
        assert_eq!(out.shape(), (30, 30));
        assert_eq!(out.density, 1.0);
        let cost = op_cost(OpKind::Mul, 0, &[a, b], &out);
        // 2·30·4·30 flops + 30·30 output term + mem weight on 900 cells.
        assert!((cost - (7200.0 + 900.0 + MEM_WEIGHT * 900.0)).abs() < 1e-9);
    }

    #[test]
    fn backend_profile_scales_only_product_flops() {
        let refp = BackendProfile::reference();
        let par = BackendProfile::parallel(4);
        let a = ClassStats::dense(100, 100);
        let out = op_stats(OpKind::Mul, 0, &[a, a]);
        let base = op_cost_with(&refp, OpKind::Mul, 0, &[a, a], &out);
        let fast = op_cost_with(&par, OpKind::Mul, 0, &[a, a], &out);
        assert_eq!(
            base,
            op_cost(OpKind::Mul, 0, &[a, a], &out),
            "op_cost is the reference wrapper"
        );
        assert!(fast < base, "parallel profile must price products cheaper");
        // The materialization term is backend-invariant: the gap is purely
        // the flops term divided by the dense speedup.
        let flops = op_flops(OpKind::Mul, 0, &[a, a]);
        assert!((base - fast - (flops - flops / par.dense_mul_speedup)).abs() < 1e-6);
        // Non-product operators are not kernel-routed and cost the same.
        let t_out = op_stats(OpKind::Transpose, 0, &[a]);
        assert_eq!(
            op_cost_with(&refp, OpKind::Transpose, 0, &[a], &t_out),
            op_cost_with(&par, OpKind::Transpose, 0, &[a], &t_out),
        );
    }

    #[test]
    fn sparse_pairs_use_the_spgemm_speedup() {
        let par = BackendProfile::parallel(1);
        let s = ClassStats { rows: 1000, cols: 1000, density: 0.01 };
        let out = op_stats(OpKind::Mul, 0, &[s, s]);
        let flops = op_flops(OpKind::Mul, 0, &[s, s]);
        let got = op_cost_with(&par, OpKind::Mul, 0, &[s, s], &out);
        assert!(
            (got - (flops / par.sparse_mul_speedup + par.mem_weight * out.nnz())).abs() < 1e-6
        );
        assert!(par.sparse_mul_speedup > par.dense_mul_speedup, "single-core SpGEMM dividend");
    }

    #[test]
    fn sparsity_lowers_op_flops() {
        let s = ClassStats { rows: 1000, cols: 1000, density: 0.005 };
        let d = ClassStats::dense(1000, 1000);
        let sparse = op_flops(OpKind::Mul, 0, &[s, s]);
        let dense = op_flops(OpKind::Mul, 0, &[d, d]);
        assert!(sparse < dense / 10.0, "sparse={sparse} dense={dense}");
    }
}
