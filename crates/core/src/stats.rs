//! Matrix metadata: dimensions, non-zero counts, structural type flags, and
//! optional MNC count-histograms. This is the "metadata file" the paper's
//! naïve estimator reads (§7.2.1) and the offline histogram store of the
//! MNC estimator (§7.2.2).

use std::collections::BTreeMap;

use hadad_linalg::Matrix;

use crate::expr::Expr;

/// Structural type flags used by the decomposition constraints (§6.2.5):
/// symmetric positive definite ("S"), lower/upper triangular ("L"/"U"),
/// orthogonal ("O"), permutation ("P").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TypeFlags {
    pub symmetric_pd: bool,
    pub lower_triangular: bool,
    pub upper_triangular: bool,
    pub orthogonal: bool,
}

/// MNC-style count histograms: per-row and per-column non-zero counts
/// (Sommer et al., the estimator HADAD adopts in §7.2.2).
#[derive(Debug, Clone, PartialEq)]
pub struct MncHistogram {
    pub row_counts: Vec<u32>,
    pub col_counts: Vec<u32>,
}

impl MncHistogram {
    pub fn from_matrix(m: &Matrix) -> Self {
        let s = m.to_sparse();
        MncHistogram {
            row_counts: s.row_nnz().iter().map(|&c| c as u32).collect(),
            col_counts: s.col_nnz().iter().map(|&c| c as u32).collect(),
        }
    }

    pub fn nnz(&self) -> u64 {
        self.row_counts.iter().map(|&c| c as u64).sum()
    }
}

/// Metadata for one base matrix (or materialized view).
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixMeta {
    pub rows: usize,
    pub cols: usize,
    pub nnz: usize,
    pub flags: TypeFlags,
    /// Offline MNC histograms (built once per base matrix).
    pub mnc: Option<MncHistogram>,
}

impl MatrixMeta {
    /// Dense metadata (`nnz = rows * cols`).
    pub fn dense(rows: usize, cols: usize) -> Self {
        MatrixMeta { rows, cols, nnz: rows * cols, flags: TypeFlags::default(), mnc: None }
    }

    /// Sparse metadata from an nnz count.
    pub fn sparse(rows: usize, cols: usize, nnz: usize) -> Self {
        MatrixMeta { rows, cols, nnz, flags: TypeFlags::default(), mnc: None }
    }

    /// Extracts metadata (including MNC histograms) from an actual matrix.
    pub fn from_matrix(m: &Matrix) -> Self {
        MatrixMeta {
            rows: m.rows(),
            cols: m.cols(),
            nnz: m.nnz(),
            flags: TypeFlags::default(),
            mnc: Some(MncHistogram::from_matrix(m)),
        }
    }

    pub fn with_flags(mut self, flags: TypeFlags) -> Self {
        self.flags = flags;
        self
    }

    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz as f64 / (self.rows as f64 * self.cols as f64)
        }
    }
}

/// Catalog of metadata for named base matrices and views.
#[derive(Debug, Clone, Default)]
pub struct MetaCatalog {
    entries: BTreeMap<String, MatrixMeta>,
}

impl MetaCatalog {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn register(&mut self, name: impl Into<String>, meta: MatrixMeta) {
        self.entries.insert(name.into(), meta);
    }

    pub fn get(&self, name: &str) -> Option<&MatrixMeta> {
        self.entries.get(name)
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(|s| s.as_str())
    }
}

/// Shape-inference error.
#[derive(Debug, Clone, PartialEq)]
pub enum ShapeError {
    UnknownMatrix(String),
    Mismatch(String),
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShapeError::UnknownMatrix(n) => write!(f, "unknown matrix {n}"),
            ShapeError::Mismatch(m) => write!(f, "shape mismatch: {m}"),
        }
    }
}

impl std::error::Error for ShapeError {}

/// Infers the shape of an expression from base-matrix metadata.
pub fn shape(e: &Expr, cat: &MetaCatalog) -> Result<(usize, usize), ShapeError> {
    use Expr::*;
    Ok(match e {
        Mat(n) => {
            let m = cat.get(n).ok_or_else(|| ShapeError::UnknownMatrix(n.clone()))?;
            (m.rows, m.cols)
        }
        Const(_) => (1, 1),
        Identity(n) => (*n, *n),
        Zero(r, c) => (*r, *c),
        Add(a, b) | Sub(a, b) | Hadamard(a, b) | Div(a, b) => {
            let sa = shape(a, cat)?;
            let sb = shape(b, cat)?;
            if sa != sb {
                return Err(ShapeError::Mismatch(format!("{e}")));
            }
            sa
        }
        Mul(a, b) => {
            let sa = shape(a, cat)?;
            let sb = shape(b, cat)?;
            if sa.1 != sb.0 {
                return Err(ShapeError::Mismatch(format!("{e}")));
            }
            (sa.0, sb.1)
        }
        Kron(a, b) => {
            let sa = shape(a, cat)?;
            let sb = shape(b, cat)?;
            (sa.0 * sb.0, sa.1 * sb.1)
        }
        DirectSum(a, b) => {
            let sa = shape(a, cat)?;
            let sb = shape(b, cat)?;
            (sa.0 + sb.0, sa.1 + sb.1)
        }
        ScalarMul(s, a) => {
            let ss = shape(s, cat)?;
            if ss != (1, 1) {
                return Err(ShapeError::Mismatch(format!("non-scalar multiplier in {e}")));
            }
            shape(a, cat)?
        }
        Transpose(a) => {
            let (r, c) = shape(a, cat)?;
            (c, r)
        }
        Inv(a) | Adj(a) | Exp(a) | Cho(a) | QrQ(a) | LuL(a) => {
            let (r, c) = shape(a, cat)?;
            if r != c {
                return Err(ShapeError::Mismatch(format!("{e} requires square input")));
            }
            (r, c)
        }
        QrR(a) | LuU(a) => shape(a, cat)?,
        Diag(a) => {
            let (r, c) = shape(a, cat)?;
            if r != c {
                return Err(ShapeError::Mismatch(format!("{e} requires square input")));
            }
            (r, 1)
        }
        Rev(a) => shape(a, cat)?,
        RowSums(a) | RowMeans(a) | RowMin(a) | RowMax(a) | RowVar(a) => (shape(a, cat)?.0, 1),
        ColSums(a) | ColMeans(a) | ColMin(a) | ColMax(a) | ColVar(a) => (1, shape(a, cat)?.1),
        Det(a) | Trace(a) => {
            let (r, c) = shape(a, cat)?;
            if r != c {
                return Err(ShapeError::Mismatch(format!("{e} requires square input")));
            }
            (1, 1)
        }
        Sum(_) | Min(_) | Max(_) | Mean(_) | Var(_) => (1, 1),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::dsl::*;

    fn cat() -> MetaCatalog {
        let mut c = MetaCatalog::new();
        c.register("M", MatrixMeta::dense(50, 10));
        c.register("N", MatrixMeta::dense(10, 50));
        c
    }

    #[test]
    fn shapes_of_products_and_transposes() {
        let c = cat();
        assert_eq!(shape(&mul(m("M"), m("N")), &c).unwrap(), (50, 50));
        assert_eq!(shape(&t(mul(m("M"), m("N"))), &c).unwrap(), (50, 50));
        assert_eq!(shape(&col_sums(m("M")), &c).unwrap(), (1, 10));
        assert_eq!(shape(&row_sums(m("M")), &c).unwrap(), (50, 1));
        assert_eq!(shape(&sum(m("M")), &c).unwrap(), (1, 1));
    }

    #[test]
    fn mismatches_detected() {
        let c = cat();
        assert!(shape(&add(m("M"), m("N")), &c).is_err());
        assert!(shape(&mul(m("M"), m("M")), &c).is_err());
        assert!(shape(&det(m("M")), &c).is_err());
        assert!(shape(&m("missing"), &c).is_err());
    }

    #[test]
    fn metadata_from_matrix_builds_histograms() {
        let mat = Matrix::sparse(3, 4, vec![(0, 0, 1.0), (0, 1, 1.0), (2, 3, 1.0)]);
        let meta = MatrixMeta::from_matrix(&mat);
        assert_eq!(meta.nnz, 3);
        let h = meta.mnc.unwrap();
        assert_eq!(h.row_counts, vec![2, 0, 1]);
        assert_eq!(h.col_counts, vec![1, 1, 0, 1]);
        assert_eq!(h.nnz(), 3);
    }

    #[test]
    fn density() {
        let meta = MatrixMeta::sparse(10, 10, 5);
        assert!((meta.density() - 0.05).abs() < 1e-12);
    }
}
