//! HADAD core: the hybrid LA expression language, its Virtual Relational
//! Encoding of Matrices (VREM, paper §6.2), the MMC property catalogue of
//! linear-algebra integrity constraints (§6.2.3–§6.2.5), matrix metadata /
//! estimators (§7.2), and the min-cost decoder that walks a chased instance
//! back into an expression (§6.2.2, the inverse of `enc_LA`).
//!
//! The rewriting loop lives one crate up, in `hadad-rewrite`:
//! encode (this crate) → chase under the catalogue (`hadad-chase`) →
//! decode + rank (this crate + cost model) → execute (`hadad-linalg`).

/// Named fault-injection sites (`HADAD_FAILPOINTS` env DSL); re-exported
/// here so every layer of the stack shares one registry.
pub use hadad_failpoint as failpoint;
pub use hadad_obs as obs;

/// Static rule-soundness analysis (range restriction, weak acyclicity
/// modulo reuse, coverage); re-exported so callers gate registration
/// without a direct `hadad-analyze` dependency.
pub use hadad_analyze as analyze;
pub use hadad_analyze::{RuleRejection, RuleReport};

pub mod catalogue;
pub mod encode;
pub mod expr;
pub mod extract;
pub mod fingerprint;
pub mod schema;
pub mod stats;

pub use catalogue::Catalogue;
pub use encode::{CqEncoder, Encoded, Encoder};
pub use expr::Expr;
pub use extract::{ExtractionCost, Extractor, TreeSizeCost};
pub use fingerprint::{canonicalize, leaf_bands, rename_leaves, CanonicalExpr, StatsBand};
pub use schema::{OpKind, Vrem, DENSITY_SCALE};
pub use stats::{
    expr_stats, op_cost, op_cost_with, op_flops, op_stats, BackendProfile, ClassStats,
    MatrixMeta, MetaCatalog, MncHistogram, ShapeError, TypeFlags, MEM_WEIGHT,
};
