//! Canonical expression fingerprints and stats bands — the key space of
//! the plan cache in `hadad-rewrite`.
//!
//! Two queries that differ only in base-matrix *names* chase to isomorphic
//! instances and extract isomorphic plans, so the cache abstracts leaves
//! to first-occurrence indices: `trace(A B)` and `trace(C D)` share a
//! canonical skeleton, and a hit is re-skinned onto the probe's names.
//! Shape and density still matter — the chase propagates `size`/`density`
//! facts and the extraction DP prices against them — so the key also
//! carries a [`StatsBand`] per distinct leaf, bucketing density at the
//! same ppm granularity the VREM encoding itself uses
//! ([`DENSITY_SCALE`](crate::schema::DENSITY_SCALE)). Matching skeleton +
//! matching bands ⇒ the cold pipeline would have produced the same plan
//! shapes, which is exactly when serving from the cache is sound.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use crate::expr::Expr;
use crate::schema::DENSITY_SCALE;
use crate::stats::{ClassStats, MetaCatalog};

/// Prefix of canonical placeholder leaf names. A control character keeps
/// placeholders disjoint from any user-registered matrix name.
const PLACEHOLDER: char = '\u{1}';

/// The canonical placeholder name for the `idx`-th distinct leaf.
pub fn placeholder(idx: usize) -> String {
    format!("{PLACEHOLDER}{idx}")
}

/// An expression with base-matrix names abstracted to first-occurrence
/// indices, plus the distinct concrete names in occurrence order (the
/// substitution that maps the skeleton back to the original).
#[derive(Debug, Clone, PartialEq)]
pub struct CanonicalExpr {
    /// The skeleton: every `Mat(name)` replaced by `Mat(placeholder(i))`.
    pub skeleton: Expr,
    /// Distinct concrete leaf names, in first-occurrence order;
    /// `leaves[i]` is what `placeholder(i)` stands for.
    pub leaves: Vec<String>,
}

/// Abstracts `e`'s base-matrix names to first-occurrence indices.
pub fn canonicalize(e: &Expr) -> CanonicalExpr {
    let leaves = std::cell::RefCell::new(Vec::new());
    let skeleton = canon_rec(e, &leaves);
    CanonicalExpr { skeleton, leaves: leaves.into_inner() }
}

fn canon_rec(e: &Expr, leaves: &std::cell::RefCell<Vec<String>>) -> Expr {
    if let Expr::Mat(name) = e {
        let mut leaves = leaves.borrow_mut();
        let idx = match leaves.iter().position(|l| l == name) {
            Some(i) => i,
            None => {
                leaves.push(name.clone());
                leaves.len() - 1
            }
        };
        return Expr::Mat(placeholder(idx));
    }
    crate::extract::map_children(e, &|c| canon_rec(c, leaves))
}

/// Rewrites every `Mat` leaf whose name appears in `from` to the
/// positionally corresponding name in `to` (leaves outside `from` are kept
/// verbatim). This re-skins a cached plan onto a dimension-compatible
/// probe with different base-matrix names.
pub fn rename_leaves(e: &Expr, from: &[String], to: &[String]) -> Expr {
    debug_assert_eq!(from.len(), to.len());
    if let Expr::Mat(name) = e {
        if let Some(i) = from.iter().position(|f| f == name) {
            return Expr::Mat(to[i].clone());
        }
        return e.clone();
    }
    crate::extract::map_children(e, &|c| rename_leaves(c, from, to))
}

/// Shape/density bucket of one leaf, derived from [`ClassStats`]: exact
/// dimensions plus density quantized to parts-per-million — the same
/// granularity `density` facts carry through the chase, so two leaves in
/// the same band are indistinguishable to the whole cost pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StatsBand {
    /// Row count (exact — shapes gate which rules fire).
    pub rows: usize,
    /// Column count (exact).
    pub cols: usize,
    /// Density rounded to parts-per-million, clamped to `[0, 1]`.
    pub density_ppm: u32,
}

impl StatsBand {
    /// The band of one class-stats summary.
    pub fn of(stats: ClassStats) -> Self {
        StatsBand {
            rows: stats.rows,
            cols: stats.cols,
            density_ppm: (stats.density.clamp(0.0, 1.0) * DENSITY_SCALE).round() as u32,
        }
    }
}

/// Bands for each leaf name in order, or `None` when some leaf has no
/// catalog entry (the rewrite itself would fail shape inference anyway).
pub fn leaf_bands(leaves: &[String], cat: &MetaCatalog) -> Option<Vec<StatsBand>> {
    leaves.iter().map(|n| cat.get(n).map(|m| StatsBand::of(m.stats()))).collect()
}

/// Structural hash of a canonical skeleton plus its leaf bands. Collisions
/// are tolerated by the cache (entries verify full skeleton equality), so
/// `DefaultHasher` is sufficient.
pub fn structural_hash(skeleton: &Expr, bands: &[StatsBand]) -> u64 {
    let mut h = DefaultHasher::new();
    hash_expr(skeleton, &mut h);
    bands.hash(&mut h);
    h.finish()
}

/// Recursive structural hash over `Expr`, which cannot derive `Hash`
/// (`Const` holds an `f64`); literals hash by bit pattern.
pub fn hash_expr(e: &Expr, h: &mut impl Hasher) {
    std::mem::discriminant(e).hash(h);
    match e {
        Expr::Mat(n) => n.hash(h),
        Expr::Const(v) => v.to_bits().hash(h),
        Expr::Identity(n) => n.hash(h),
        Expr::Zero(r, c) => {
            r.hash(h);
            c.hash(h);
        }
        _ => {
            for c in e.children() {
                hash_expr(c, h);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::dsl::*;
    use crate::stats::MatrixMeta;

    #[test]
    fn canonicalize_abstracts_names_in_occurrence_order() {
        let e = trace(mul(m("A"), mul(m("B"), m("A"))));
        let canon = canonicalize(&e);
        assert_eq!(canon.leaves, vec!["A".to_owned(), "B".to_owned()]);
        let f = trace(mul(m("X"), mul(m("Y"), m("X"))));
        assert_eq!(canonicalize(&f).skeleton, canon.skeleton);
        // Different sharing structure yields a different skeleton.
        let g = trace(mul(m("X"), mul(m("Y"), m("Z"))));
        assert_ne!(canonicalize(&g).skeleton, canon.skeleton);
    }

    #[test]
    fn rename_leaves_round_trips() {
        let e = add(mul(m("A"), m("B")), t(m("A")));
        let canon = canonicalize(&e);
        let back =
            rename_leaves(&canon.skeleton, &[placeholder(0), placeholder(1)], &canon.leaves);
        assert_eq!(back, e);
    }

    #[test]
    fn bands_follow_shape_and_density() {
        let mut cat = MetaCatalog::new();
        cat.register("A", MatrixMeta::dense(10, 4));
        cat.register("S", MatrixMeta::sparse(10, 4, 2));
        let bands = leaf_bands(&["A".into(), "S".into()], &cat).unwrap();
        assert_eq!(bands[0], StatsBand { rows: 10, cols: 4, density_ppm: 1_000_000 });
        assert_eq!(bands[1].density_ppm, 50_000);
        assert!(leaf_bands(&["missing".into()], &cat).is_none());
    }

    #[test]
    fn structural_hash_separates_shapes_and_literals() {
        let canon = canonicalize(&mul(m("A"), m("B"))).skeleton;
        let b1 = vec![StatsBand { rows: 8, cols: 8, density_ppm: 1_000_000 }; 2];
        let b2 = vec![StatsBand { rows: 9, cols: 8, density_ppm: 1_000_000 }; 2];
        assert_ne!(structural_hash(&canon, &b1), structural_hash(&canon, &b2));
        let l1 = canonicalize(&smul(lit(2.0), m("A"))).skeleton;
        let l2 = canonicalize(&smul(lit(3.0), m("A"))).skeleton;
        assert_ne!(structural_hash(&l1, &b1), structural_hash(&l2, &b1));
    }
}
