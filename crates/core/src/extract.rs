//! `dec_LA`: min-cost decoding of a (possibly chased) VREM instance back
//! into an [`Expr`] — the inverse of [`crate::encode::Encoder`] (paper
//! §6.2.2).
//!
//! After the chase saturates an encoded instance under the MMC catalogue,
//! each union-find class is an equivalence class of value-equal
//! subexpressions and each operator fact is one way to compute its output
//! class: the instance is an e-graph. The extractor runs a Bellman-Ford
//! style cost relaxation over that e-graph (classes may be cyclic —
//! `(Aᵀ)ᵀ = A` merges a class with a descendant of itself) and rebuilds the
//! cheapest expression per class, resugaring the encoder's
//! `a + (-1 · b)` desugaring back to subtraction.

use std::collections::HashMap;

use hadad_chase::{Instance, NodeId};

use crate::expr::Expr;
use crate::schema::{OpKind, Vrem, DENSITY_SCALE};
use crate::stats::{op_stats, ClassStats};

/// One way to produce a class: a leaf fact or an operator application.
#[derive(Debug, Clone, PartialEq)]
pub enum ENode {
    /// `name(class, n)` — base matrix `n`.
    Mat(String),
    /// `lit(class, v)` — scalar literal.
    Const(f64),
    /// `identity(class)`; the order comes from the class's `size` fact.
    Identity,
    /// `zero(class)`; dims come from the class's `size` fact.
    Zero,
    /// Operator fact producing this class as output `out_idx` (QR/LU have
    /// two outputs; everything else one).
    Op {
        /// The operator.
        kind: OpKind,
        /// Input classes, in operand order.
        inputs: Vec<NodeId>,
        /// Which output of the operator this class is (QR/LU have two).
        out_idx: usize,
    },
}

/// Pluggable cost for the extraction DP. Implementations see operator
/// kinds and per-class [`ClassStats`] (shape + estimated density), so
/// `hadad-core` stays decoupled from any particular estimator;
/// `hadad-rewrite` supplies one built on the shared `op_cost` table.
/// Densities come from the chased instance's `density` facts (catalogued
/// leaves, view roots, shape-preserving propagation) and default to dense
/// for chase-created classes without facts — a deterministic,
/// derivation-order-independent choice.
pub trait ExtractionCost {
    /// Cost of reading a leaf (base matrix / literal / identity / zero).
    fn leaf_cost(&self, stats: ClassStats) -> f64;

    /// Cost of one operator application (children excluded). `out_idx`
    /// distinguishes the two outputs of QR/LU.
    fn op_cost(
        &self,
        kind: OpKind,
        out_idx: usize,
        child: &[ClassStats],
        out: ClassStats,
    ) -> f64;
}

/// Default cost: expression-tree size. Extraction under this cost returns
/// the syntactically smallest representative of a class.
pub struct TreeSizeCost;

impl ExtractionCost for TreeSizeCost {
    fn leaf_cost(&self, _stats: ClassStats) -> f64 {
        1.0
    }

    fn op_cost(
        &self,
        _kind: OpKind,
        _out_idx: usize,
        _child: &[ClassStats],
        _out: ClassStats,
    ) -> f64 {
        1.0
    }
}

/// Min-cost extractor over a VREM instance.
pub struct Extractor<'a> {
    inst: &'a Instance,
    /// Canonical class -> candidate e-nodes.
    classes: HashMap<NodeId, Vec<ENode>>,
    /// Canonical class -> shape, from `size` facts (the chase propagates
    /// them to created classes) or inferred during the relaxation.
    shapes: HashMap<NodeId, (usize, usize)>,
    /// Canonical class -> estimated density, the minimum over the class's
    /// `density` facts (min is order-independent, keeping extraction
    /// deterministic when merged derivations disagree on the estimate).
    densities: HashMap<NodeId, f64>,
    /// Canonical class -> (best cost, index into `classes[class]`).
    best: HashMap<NodeId, (f64, usize)>,
}

/// Class count above which the cost relaxation switches from sequential
/// Gauss-Seidel sweeps to parallel Jacobi passes. Small instances (the
/// common per-expression case) stay on the sequential path, which needs no
/// thread setup and converges in fewer passes.
const PARALLEL_CLASS_THRESHOLD: usize = 768;

/// Workers for the parallel paths: physical parallelism, capped so a large
/// host does not drown small workloads in spawn overhead.
pub fn worker_count() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get).min(8)
}

/// Order-preserving parallel map over `std::thread::scope`, the one
/// fan-out shape every parallel path here (and plan ranking in
/// `hadad-rewrite`) shares. Falls back to a plain sequential map below
/// `min_len` items or without real parallelism.
///
/// Workers run under `catch_unwind` supervision: a panicking worker loses
/// only its own chunk, which is retried sequentially on the calling
/// thread. Only if the retry panics too (a deterministic bug, not a
/// transient worker failure) does the panic propagate to the caller —
/// where the rewrite pipeline's phase-level supervision turns it into a
/// degraded result instead of a crash.
pub fn par_map<'i, T, R>(
    items: &'i [T],
    min_len: usize,
    f: impl Fn(&'i T) -> R + Sync,
) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    par_map_with(items, min_len, worker_count(), f)
}

/// [`par_map`] with an explicit worker count (tests force the threaded
/// path with it regardless of the host's core count).
fn par_map_with<'i, T, R>(
    items: &'i [T],
    min_len: usize,
    workers: usize,
    f: impl Fn(&'i T) -> R + Sync,
) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    if items.len() < min_len || workers < 2 {
        return items.iter().map(f).collect();
    }
    static PAR_SHARDS: hadad_obs::LazyCounter =
        hadad_obs::LazyCounter::new("extract.par_shards");
    let chunk = items.len().div_ceil(workers);
    PAR_SHARDS.add(items.len().div_ceil(chunk) as u64);
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| {
                let h = s.spawn(move || {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        c.iter().map(f).collect::<Vec<R>>()
                    }))
                });
                (c, h)
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|(c, h)| match h.join() {
                Ok(Ok(results)) => results,
                // Worker panicked (joining never fails: the closure's own
                // panic is caught inside it). Retry the chunk in-line.
                _ => c.iter().map(f).collect(),
            })
            .collect()
    })
}

impl<'a> Extractor<'a> {
    /// Collects e-nodes and shapes from the instance and runs the cost
    /// relaxation to fixpoint.
    pub fn new(vrem: &Vrem, inst: &'a Instance, cost: &(dyn ExtractionCost + Sync)) -> Self {
        // Fault-injection site: `extract.solve=panic` exercises the
        // optimizer's phase-level catch_unwind (degrade to the original
        // plan); `delay:<ms>` exercises deadlines. The `error` action has
        // no typed path here and is a no-op.
        let _ = hadad_failpoint::hit("extract.solve");
        static SOLVES: hadad_obs::LazyCounter = hadad_obs::LazyCounter::new("extract.solves");
        SOLVES.incr();
        let _span = hadad_obs::span("extract.solve");
        let mut ex = Extractor {
            inst,
            classes: HashMap::new(),
            shapes: HashMap::new(),
            densities: HashMap::new(),
            best: HashMap::new(),
        };
        ex.collect(vrem);
        ex.solve(cost);
        ex
    }

    /// [`Extractor::new`] warm-started from a previously solved DP table
    /// (for example the one [`Extractor::dp_table`] returned on an earlier,
    /// smaller snapshot of the same growing instance). Seeds are *not*
    /// trusted: each surviving `(class, e-node)` pair is re-priced through
    /// the same relaxation step the cold solver uses, so a stale seed can
    /// only pre-populate achievable costs — never under-estimates — and the
    /// Bellman-Ford fixpoint (costs and tie-broken winners alike) is
    /// identical to a cold solve, just reached in fewer passes.
    pub fn with_seed(
        vrem: &Vrem,
        inst: &'a Instance,
        cost: &(dyn ExtractionCost + Sync),
        seed: &HashMap<NodeId, (f64, usize)>,
    ) -> Self {
        let _ = hadad_failpoint::hit("extract.solve");
        static SEEDED: hadad_obs::LazyCounter =
            hadad_obs::LazyCounter::new("extract.seeded_solves");
        SEEDED.incr();
        let _span = hadad_obs::span("extract.solve");
        let mut ex = Extractor {
            inst,
            classes: HashMap::new(),
            shapes: HashMap::new(),
            densities: HashMap::new(),
            best: HashMap::new(),
        };
        ex.collect(vrem);
        ex.seed(seed, cost);
        ex.solve(cost);
        ex
    }

    /// The solved DP table: canonical class → (best cost, winning e-node
    /// index). Callers cache it next to the extracted plan and pass it back
    /// through [`Extractor::with_seed`] to warm-start a later extraction.
    pub fn dp_table(&self) -> &HashMap<NodeId, (f64, usize)> {
        &self.best
    }

    /// Replays a prior DP table against the freshly collected e-graph:
    /// every seed pair still naming a valid derivation is re-priced with
    /// [`node_candidate`] over the seeded snapshot, iterating until no
    /// price lands (children resolve in dependency order). Classes merged
    /// or re-numbered since the seed was taken simply drop out.
    fn seed(&mut self, seed: &HashMap<NodeId, (f64, usize)>, cost: &dyn ExtractionCost) {
        let nodes_here = self.inst.num_nodes();
        let mut pending: Vec<(NodeId, usize)> = seed
            .iter()
            .filter_map(|(&class, &(_, idx))| {
                // A seed may come from a *larger* instance (a plan-cache
                // entry's table replayed onto an early-round snapshot of a
                // fresh chase): ids past this instance's node space cannot
                // name anything here.
                if class.0 as usize >= nodes_here {
                    return None;
                }
                let class = self.inst.find(class);
                self.classes
                    .get(&class)
                    .is_some_and(|nodes| idx < nodes.len())
                    .then_some((class, idx))
            })
            .collect();
        // Deterministic replay order (seed iteration order is not).
        pending.sort_unstable();
        pending.dedup();
        loop {
            let mut landed = false;
            pending.retain(|&(class, idx)| {
                let node = &self.classes[&class][idx];
                match node_candidate(
                    node,
                    class,
                    &self.best,
                    &self.shapes,
                    &self.densities,
                    cost,
                ) {
                    Some((c, shape)) => {
                        self.shapes.entry(class).or_insert(shape);
                        let incumbent = self
                            .best
                            .get(&class)
                            .map(|&(cur, ci)| (cur, &self.classes[&class][ci]));
                        if improves((c, node), incumbent, &self.best) {
                            self.best.insert(class, (c, idx));
                        }
                        landed = true;
                        false
                    }
                    None => true,
                }
            });
            if !landed || pending.is_empty() {
                break;
            }
        }
    }

    fn push(&mut self, class: NodeId, node: ENode) {
        let nodes = self.classes.entry(class).or_default();
        if !nodes.contains(&node) {
            nodes.push(node);
        }
    }

    fn collect(&mut self, vrem: &Vrem) {
        for f in self.inst.facts() {
            let canon: Vec<NodeId> = f.args.iter().map(|&a| self.inst.find(a)).collect();
            if f.pred == vrem.name {
                if let Some(sym) = self.inst.const_of(canon[1]) {
                    let name = vrem.vocab.const_name(sym).to_owned();
                    self.push(canon[0], ENode::Mat(name));
                }
            } else if f.pred == vrem.lit {
                if let Some(sym) = self.inst.const_of(canon[1]) {
                    if let Ok(v) = vrem.vocab.const_name(sym).parse::<f64>() {
                        self.push(canon[0], ENode::Const(v));
                    }
                }
            } else if f.pred == vrem.identity {
                self.push(canon[0], ENode::Identity);
            } else if f.pred == vrem.zero {
                self.push(canon[0], ENode::Zero);
            } else if f.pred == vrem.size {
                let dim = |n: NodeId| {
                    self.inst
                        .const_of(n)
                        .and_then(|s| vrem.vocab.const_name(s).parse::<usize>().ok())
                };
                if let (Some(r), Some(c)) = (dim(canon[1]), dim(canon[2])) {
                    self.shapes.insert(canon[0], (r, c));
                }
            } else if f.pred == vrem.density {
                if let Some(ppm) = self
                    .inst
                    .const_of(canon[1])
                    .and_then(|s| vrem.vocab.const_name(s).parse::<i64>().ok())
                {
                    let d = (ppm as f64 / DENSITY_SCALE).clamp(0.0, 1.0);
                    self.densities
                        .entry(canon[0])
                        .and_modify(|cur| *cur = cur.min(d))
                        .or_insert(d);
                }
            } else if let Some(kind) = vrem.kind_of(f.pred) {
                let n_in = kind.num_inputs();
                let inputs = canon[..n_in].to_vec();
                for (out_idx, &out) in canon[n_in..].iter().enumerate() {
                    self.push(out, ENode::Op { kind, inputs: inputs.clone(), out_idx });
                }
            }
        }
    }

    /// Bellman-Ford relaxation: every pass can only lower class costs, and
    /// each finite cost certifies a finite (cycle-free) derivation, so the
    /// loop reaches fixpoint in at most `#classes` passes. Large instances
    /// run Jacobi-style parallel passes (each pass reads the previous
    /// pass's costs, proposals merge at a barrier); small ones run the
    /// in-place sequential sweep, which propagates further per pass.
    fn solve(&mut self, cost: &(dyn ExtractionCost + Sync)) {
        let class_ids: Vec<NodeId> = self.classes.keys().copied().collect();
        if class_ids.len() >= PARALLEL_CLASS_THRESHOLD && worker_count() > 1 {
            self.solve_parallel(&class_ids, cost);
        } else {
            self.solve_sequential(&class_ids, cost);
        }
    }

    fn solve_sequential(&mut self, class_ids: &[NodeId], cost: &dyn ExtractionCost) {
        // Costs converge within #classes passes; tie-break refinement (keys
        // depend on child costs) may take as long again.
        let max_rounds = 2 * (class_ids.len() + 1);
        for _ in 0..max_rounds {
            let mut changed = false;
            for &class in class_ids {
                let num_nodes = self.classes[&class].len();
                for idx in 0..num_nodes {
                    // Borrow the node per iteration (instead of cloning the
                    // whole e-node vector per round); `best`/`shapes` are
                    // only written after the borrow ends.
                    let node = &self.classes[&class][idx];
                    let computed = node_candidate(
                        node,
                        class,
                        &self.best,
                        &self.shapes,
                        &self.densities,
                        cost,
                    );
                    if let Some((c, shape)) = computed {
                        self.shapes.entry(class).or_insert(shape);
                        let incumbent = self
                            .best
                            .get(&class)
                            .map(|&(cur, ci)| (cur, &self.classes[&class][ci]));
                        if improves((c, node), incumbent, &self.best) {
                            self.best.insert(class, (c, idx));
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    fn solve_parallel(&mut self, class_ids: &[NodeId], cost: &(dyn ExtractionCost + Sync)) {
        /// One accepted improvement: (class, cost, winning e-node index, shape).
        type Proposal = (NodeId, f64, usize, (usize, usize));
        // Jacobi needs at most one extra pass per level of the deepest
        // derivation, bounded by the class count; doubled for tie-break
        // refinement, as in the sequential path.
        let max_rounds = 2 * (class_ids.len() + 1);
        for _ in 0..max_rounds {
            let proposals: Vec<Option<Proposal>> = {
                let classes = &self.classes;
                let best = &self.best;
                let shapes = &self.shapes;
                let densities = &self.densities;
                par_map(class_ids, 2, |&class| {
                    let nodes = &classes[&class];
                    let mut winner: Option<(f64, usize, (usize, usize))> = None;
                    for (idx, node) in nodes.iter().enumerate() {
                        if let Some((c, shape)) =
                            node_candidate(node, class, best, shapes, densities, cost)
                        {
                            let cur = winner.map(|(w, wi, _)| (w, &nodes[wi]));
                            if improves((c, node), cur, best) {
                                winner = Some((c, idx, shape));
                            }
                        }
                    }
                    winner.and_then(|(c, idx, shape)| {
                        let incumbent = best.get(&class).map(|&(cur, ci)| (cur, &nodes[ci]));
                        improves((c, &nodes[idx]), incumbent, best)
                            .then_some((class, c, idx, shape))
                    })
                })
            };
            let mut changed = false;
            for (class, c, idx, shape) in proposals.into_iter().flatten() {
                self.shapes.entry(class).or_insert(shape);
                let incumbent =
                    self.best.get(&class).map(|&(cur, ci)| (cur, &self.classes[&class][ci]));
                if improves((c, &self.classes[&class][idx]), incumbent, &self.best) {
                    self.best.insert(class, (c, idx));
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Cost of the cheapest derivation of a class, if one exists.
    pub fn class_cost(&self, class: NodeId) -> Option<f64> {
        self.best.get(&self.inst.find(class)).map(|&(c, _)| c)
    }

    /// Shape of a class, from `size` facts or inference.
    pub fn shape(&self, class: NodeId) -> Option<(usize, usize)> {
        self.shapes.get(&self.inst.find(class)).copied()
    }

    /// Estimated density of a class from its `density` facts, if any.
    pub fn density(&self, class: NodeId) -> Option<f64> {
        self.densities.get(&self.inst.find(class)).copied()
    }

    /// Candidate e-nodes of a class.
    pub fn enodes(&self, class: NodeId) -> &[ENode] {
        self.classes.get(&self.inst.find(class)).map_or(&[], |v| v.as_slice())
    }

    /// The cheapest expression of a class, resugared.
    pub fn extract(&self, root: NodeId) -> Option<Expr> {
        let root = self.inst.find(root);
        let &(_, idx) = self.best.get(&root)?;
        let e = self.build(root, &self.classes[&root][idx])?;
        Some(resugar(&e))
    }

    /// One candidate expression per derivation of the root class, each
    /// completed with min-cost children and deduplicated syntactically.
    /// The caller ranks these with its own (richer) cost model. Roots with
    /// many derivations build their candidates on worker threads.
    pub fn candidates(&self, root: NodeId) -> Vec<Expr> {
        self.build_candidates(root, 16)
    }

    /// Candidates for several root classes at once, sharded across worker
    /// threads (the parallel backchase side: each root e-class decodes
    /// independently against the shared solved DP). The per-root builds
    /// run sequentially inside each worker — nesting a second fan-out
    /// would only oversubscribe the cores this layer already fills.
    pub fn candidates_many(&self, roots: &[NodeId]) -> Vec<Vec<Expr>> {
        par_map(roots, 2, |&r| self.build_candidates(r, usize::MAX))
    }

    /// Shared body of [`Self::candidates`]/[`Self::candidates_many`]:
    /// `parallel_min` is the e-node count from which the per-node builds
    /// shard across threads (`usize::MAX` forces sequential).
    fn build_candidates(&self, root: NodeId, parallel_min: usize) -> Vec<Expr> {
        let root = self.inst.find(root);
        let Some(nodes) = self.classes.get(&root) else {
            return Vec::new();
        };
        let built = par_map(nodes, parallel_min, |n| self.build(root, n).map(|e| resugar(&e)));
        let mut out: Vec<Expr> = Vec::new();
        let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
        for e in built.into_iter().flatten() {
            if seen.insert(e.to_string()) {
                out.push(e);
            }
        }
        out
    }

    /// Rebuilds an expression from a chosen e-node, following best
    /// derivations below it. Finite best costs certify acyclicity.
    fn build(&self, class: NodeId, node: &ENode) -> Option<Expr> {
        let expr = match node {
            ENode::Mat(n) => Expr::Mat(n.clone()),
            ENode::Const(v) => Expr::Const(*v),
            ENode::Identity => {
                let (r, _) = self.shape(class)?;
                Expr::Identity(r)
            }
            ENode::Zero => {
                let (r, c) = self.shape(class)?;
                Expr::Zero(r, c)
            }
            ENode::Op { kind, inputs, out_idx } => {
                let mut children = Vec::with_capacity(inputs.len());
                for &i in inputs {
                    let &(_, idx) = self.best.get(&i)?;
                    children.push(self.build(i, &self.classes[&i][idx])?);
                }
                op_expr(*kind, *out_idx, children)?
            }
        };
        Some(expr)
    }
}

/// Deterministic tie-break key for e-nodes whose derivations cost exactly
/// the same: variant, operator, output index, then the child best-cost
/// bits. Depends only on isomorphism-invariant data (never on `NodeId`s or
/// collection order), so two structurally equal instances extract the same
/// plan regardless of fact ordering — which keeps the naive and semi-naïve
/// chase engines observationally identical.
fn tie_key<'n>(
    node: &'n ENode,
    best: &HashMap<NodeId, (f64, usize)>,
) -> (u8, u32, u8, Vec<u64>, &'n str) {
    match node {
        ENode::Mat(n) => (0, 0, 0, Vec::new(), n.as_str()),
        ENode::Const(v) => (1, 0, 0, vec![v.to_bits()], ""),
        ENode::Identity => (2, 0, 0, Vec::new(), ""),
        ENode::Zero => (3, 0, 0, Vec::new(), ""),
        ENode::Op { kind, inputs, out_idx } => {
            let child_costs = inputs
                .iter()
                .map(|i| best.get(i).map_or(u64::MAX, |&(c, _)| c.to_bits()))
                .collect();
            (4, *kind as u32, *out_idx as u8, child_costs, "")
        }
    }
}

/// `true` when `candidate` should replace the incumbent `(cur_cost, cur_idx)`
/// derivation: strictly cheaper, or equally cheap with a smaller tie key.
fn improves(
    candidate: (f64, &ENode),
    incumbent: Option<(f64, &ENode)>,
    best: &HashMap<NodeId, (f64, usize)>,
) -> bool {
    match incumbent {
        None => true,
        Some((cur, cur_node)) => {
            let (c, node) = candidate;
            c < cur || (c == cur && tie_key(node, best) < tie_key(cur_node, best))
        }
    }
}

/// Cost and shape of one e-node derivation against a cost/shape snapshot,
/// or `None` while some child is still unsolved. Shared by the sequential
/// sweep and the parallel Jacobi passes, which only differ in when writes
/// land. Densities come from the class's `density` facts; classes without
/// facts assume dense children and [`op_stats`]-propagated outputs — both
/// derivation-order-independent, so extraction stays deterministic.
fn node_candidate(
    node: &ENode,
    class: NodeId,
    best: &HashMap<NodeId, (f64, usize)>,
    shapes: &HashMap<NodeId, (usize, usize)>,
    densities: &HashMap<NodeId, f64>,
    cost: &dyn ExtractionCost,
) -> Option<(f64, (usize, usize))> {
    let stats_of = |n: NodeId, shape: (usize, usize)| ClassStats {
        rows: shape.0,
        cols: shape.1,
        density: densities.get(&n).copied().unwrap_or(1.0),
    };
    match node {
        ENode::Mat(_) | ENode::Identity | ENode::Zero => {
            shapes.get(&class).map(|&s| (cost.leaf_cost(stats_of(class, s)), s))
        }
        ENode::Const(_) => Some((cost.leaf_cost(stats_of(class, (1, 1))), (1, 1))),
        ENode::Op { kind, inputs, out_idx } => {
            let mut child_costs = 0.0;
            let mut child_stats = Vec::with_capacity(inputs.len());
            for &i in inputs {
                match (best.get(&i), shapes.get(&i)) {
                    (Some(&(c, _)), Some(&s)) => {
                        child_costs += c;
                        child_stats.push(stats_of(i, s));
                    }
                    _ => return None,
                }
            }
            let propagated = op_stats(*kind, *out_idx, &child_stats);
            let out_shape = shapes.get(&class).copied().unwrap_or_else(|| propagated.shape());
            let out = ClassStats {
                rows: out_shape.0,
                cols: out_shape.1,
                density: densities.get(&class).copied().unwrap_or(propagated.density),
            };
            let op = cost.op_cost(*kind, *out_idx, &child_stats, out);
            // Clamp so parents always cost strictly more than children;
            // cyclic classes then cannot be their own best derivation.
            Some((op.max(1e-9) + child_costs, out_shape))
        }
    }
}

/// Builds the `Expr` node for an operator kind and output index.
fn op_expr(kind: OpKind, out_idx: usize, mut ch: Vec<Expr>) -> Option<Expr> {
    use OpKind::*;
    let bin = |ch: &mut Vec<Expr>| {
        let b = Box::new(ch.pop().unwrap());
        let a = Box::new(ch.pop().unwrap());
        (a, b)
    };
    let un = |ch: &mut Vec<Expr>| Box::new(ch.pop().unwrap());
    Some(match kind {
        Add => {
            let (a, b) = bin(&mut ch);
            Expr::Add(a, b)
        }
        Mul => {
            let (a, b) = bin(&mut ch);
            Expr::Mul(a, b)
        }
        Hadamard => {
            let (a, b) = bin(&mut ch);
            Expr::Hadamard(a, b)
        }
        Div => {
            let (a, b) = bin(&mut ch);
            Expr::Div(a, b)
        }
        ScalarMul => {
            let (a, b) = bin(&mut ch);
            Expr::ScalarMul(a, b)
        }
        Kron => {
            let (a, b) = bin(&mut ch);
            Expr::Kron(a, b)
        }
        DirectSum => {
            let (a, b) = bin(&mut ch);
            Expr::DirectSum(a, b)
        }
        Transpose => Expr::Transpose(un(&mut ch)),
        Inv => Expr::Inv(un(&mut ch)),
        Adj => Expr::Adj(un(&mut ch)),
        Exp => Expr::Exp(un(&mut ch)),
        Diag => Expr::Diag(un(&mut ch)),
        Rev => Expr::Rev(un(&mut ch)),
        RowSums => Expr::RowSums(un(&mut ch)),
        ColSums => Expr::ColSums(un(&mut ch)),
        RowMeans => Expr::RowMeans(un(&mut ch)),
        ColMeans => Expr::ColMeans(un(&mut ch)),
        RowMin => Expr::RowMin(un(&mut ch)),
        RowMax => Expr::RowMax(un(&mut ch)),
        ColMin => Expr::ColMin(un(&mut ch)),
        ColMax => Expr::ColMax(un(&mut ch)),
        RowVar => Expr::RowVar(un(&mut ch)),
        ColVar => Expr::ColVar(un(&mut ch)),
        Det => Expr::Det(un(&mut ch)),
        Trace => Expr::Trace(un(&mut ch)),
        Sum => Expr::Sum(un(&mut ch)),
        Min => Expr::Min(un(&mut ch)),
        Max => Expr::Max(un(&mut ch)),
        Mean => Expr::Mean(un(&mut ch)),
        Var => Expr::Var(un(&mut ch)),
        Cho => Expr::Cho(un(&mut ch)),
        Qr => {
            let a = un(&mut ch);
            if out_idx == 0 {
                Expr::QrQ(a)
            } else {
                Expr::QrR(a)
            }
        }
        Lu => {
            let a = un(&mut ch);
            if out_idx == 0 {
                Expr::LuL(a)
            } else {
                Expr::LuU(a)
            }
        }
    })
}

/// Resugars the encoder's subtraction desugaring: `a + (-1 · b)` becomes
/// `a - b` (in either addend order, since the chase may commute additions).
pub fn resugar(e: &Expr) -> Expr {
    use Expr::*;
    let rebuilt = map_children(e, &|c| resugar(c));
    if let Add(a, b) = &rebuilt {
        if let Some(neg) = negated_operand(b) {
            return Sub(a.clone(), Box::new(neg));
        }
        if let Some(neg) = negated_operand(a) {
            return Sub(b.clone(), Box::new(neg));
        }
    }
    rebuilt
}

/// If `e` is `(-1) · x`, returns `x`.
fn negated_operand(e: &Expr) -> Option<Expr> {
    if let Expr::ScalarMul(s, x) = e {
        if matches!(**s, Expr::Const(v) if v == -1.0) {
            return Some((**x).clone());
        }
    }
    None
}

/// Rebuilds an expression with each child replaced by `f(child)`.
pub(crate) fn map_children(e: &Expr, f: &impl Fn(&Expr) -> Expr) -> Expr {
    use Expr::*;
    let b = |x: &Expr| Box::new(f(x));
    match e {
        Mat(_) | Const(_) | Identity(_) | Zero(..) => e.clone(),
        Add(x, y) => Add(b(x), b(y)),
        Sub(x, y) => Sub(b(x), b(y)),
        Mul(x, y) => Mul(b(x), b(y)),
        Hadamard(x, y) => Hadamard(b(x), b(y)),
        Div(x, y) => Div(b(x), b(y)),
        Kron(x, y) => Kron(b(x), b(y)),
        DirectSum(x, y) => DirectSum(b(x), b(y)),
        ScalarMul(x, y) => ScalarMul(b(x), b(y)),
        Transpose(x) => Transpose(b(x)),
        Inv(x) => Inv(b(x)),
        Adj(x) => Adj(b(x)),
        Exp(x) => Exp(b(x)),
        Diag(x) => Diag(b(x)),
        Rev(x) => Rev(b(x)),
        RowSums(x) => RowSums(b(x)),
        ColSums(x) => ColSums(b(x)),
        RowMeans(x) => RowMeans(b(x)),
        ColMeans(x) => ColMeans(b(x)),
        RowMin(x) => RowMin(b(x)),
        RowMax(x) => RowMax(b(x)),
        ColMin(x) => ColMin(b(x)),
        ColMax(x) => ColMax(b(x)),
        RowVar(x) => RowVar(b(x)),
        ColVar(x) => ColVar(b(x)),
        Det(x) => Det(b(x)),
        Trace(x) => Trace(b(x)),
        Sum(x) => Sum(b(x)),
        Min(x) => Min(b(x)),
        Max(x) => Max(b(x)),
        Mean(x) => Mean(b(x)),
        Var(x) => Var(b(x)),
        Cho(x) => Cho(b(x)),
        QrQ(x) => QrQ(b(x)),
        QrR(x) => QrR(b(x)),
        LuL(x) => LuL(b(x)),
        LuU(x) => LuU(b(x)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::Encoder;
    use crate::expr::dsl::*;
    use crate::stats::{MatrixMeta, MetaCatalog};

    fn cat() -> MetaCatalog {
        let mut c = MetaCatalog::new();
        c.register("M", MatrixMeta::dense(100, 10));
        c.register("N", MatrixMeta::dense(10, 100));
        c.register("D", MatrixMeta::dense(10, 10));
        c.register("y", MatrixMeta::dense(100, 1));
        c
    }

    fn roundtrip(e: &Expr) -> Expr {
        let mut vrem = Vrem::new();
        let c = cat();
        let enc = Encoder::new(&mut vrem, &c).encode(e).unwrap();
        let ex = Extractor::new(&vrem, &enc.instance, &TreeSizeCost);
        ex.extract(enc.root).expect("root extractable")
    }

    #[test]
    fn decodes_example_6_1() {
        let e = t(mul(m("M"), m("N")));
        assert_eq!(roundtrip(&e), e);
    }

    #[test]
    fn decodes_nested_operators() {
        let ols = mul(inv(mul(t(m("M")), m("M"))), mul(t(m("M")), m("y")));
        assert_eq!(roundtrip(&ols), ols);
    }

    #[test]
    fn resugars_subtraction() {
        let e = sub(m("D"), mul(m("D"), m("D")));
        assert_eq!(roundtrip(&e), e);
    }

    #[test]
    fn reconstructs_decomposition_pairs() {
        let e = mul(Expr::QrQ(Box::new(m("D"))), Expr::QrR(Box::new(m("D"))));
        assert_eq!(roundtrip(&e), e);
        let lu = mul(Expr::LuL(Box::new(m("D"))), Expr::LuU(Box::new(m("D"))));
        assert_eq!(roundtrip(&lu), lu);
    }

    #[test]
    fn decodes_leaves() {
        let e = add(smul(lit(2.5), m("D")), Expr::Identity(10));
        assert_eq!(roundtrip(&e), e);
        let z = add(m("D"), Expr::Zero(10, 10));
        assert_eq!(roundtrip(&z), z);
    }

    #[test]
    fn parallel_solver_handles_wide_instances() {
        // A balanced sum over 640 distinct leaves yields >1200 distinct
        // classes, pushing the DP over PARALLEL_CLASS_THRESHOLD so the
        // Jacobi path runs (while recursion depth stays ~10).
        let mut vrem = Vrem::new();
        let mut c = MetaCatalog::new();
        let mut layer: Vec<Expr> = (0..640)
            .map(|i| {
                let name = format!("L{i}");
                c.register(&name, MatrixMeta::dense(10, 10));
                m(&name)
            })
            .collect();
        while layer.len() > 1 {
            layer =
                layer
                    .chunks(2)
                    .map(|p| {
                        if p.len() == 2 {
                            add(p[0].clone(), p[1].clone())
                        } else {
                            p[0].clone()
                        }
                    })
                    .collect();
        }
        let e = layer.pop().unwrap();
        let enc = Encoder::new(&mut vrem, &c).encode(&e).unwrap();
        let ex = Extractor::new(&vrem, &enc.instance, &TreeSizeCost);
        assert_eq!(ex.extract(enc.root).unwrap(), e);
        // Tree size: 640 leaves + 639 adds.
        assert!((ex.class_cost(enc.root).unwrap() - 1279.0).abs() < 1e-6);
    }

    #[test]
    fn candidates_many_matches_per_root_candidates() {
        let mut vrem = Vrem::new();
        let c = cat();
        let e1 = mul(m("M"), m("N"));
        let e2 = t(m("D"));
        let (inst, roots) = Encoder::new(&mut vrem, &c).encode_many(&[&e1, &e2]).unwrap();
        let ex = Extractor::new(&vrem, &inst, &TreeSizeCost);
        let many = ex.candidates_many(&roots);
        assert_eq!(many.len(), 2);
        for (i, &r) in roots.iter().enumerate() {
            assert_eq!(many[i], ex.candidates(r));
        }
    }

    #[test]
    fn extraction_picks_cheaper_enode_after_merge() {
        // Manually merge the class of (M N) with the class of a base matrix
        // "P": extraction under tree size must then prefer P.
        let mut vrem = Vrem::new();
        let mut c = cat();
        c.register("P", MatrixMeta::dense(100, 100));
        let e = mul(m("M"), m("N"));
        let enc = Encoder::new(&mut vrem, &c).encode_many(&[&e, &m("P")]).unwrap();
        let (mut inst, roots) = enc;
        inst.merge(roots[0], roots[1]).unwrap();
        inst.rehash();
        let ex = Extractor::new(&vrem, &inst, &TreeSizeCost);
        assert_eq!(ex.extract(roots[0]).unwrap(), m("P"));
        // Both derivations remain available as candidates.
        let cands = ex.candidates(roots[0]);
        assert_eq!(cands.len(), 2);
    }

    #[test]
    fn par_map_contains_worker_panics() {
        // A function that panics on one input: the worker chunk holding it
        // dies, the chunk is retried in-line, and since the panic is
        // deterministic the retry panics too — but only *after* every
        // other chunk's results survived. Here we use an input-dependent
        // transient instead: panic only on the first attempt per item.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let attempts = AtomicUsize::new(0);
        let items: Vec<usize> = (0..64).collect();
        let out = par_map_with(&items, 1, 4, |&i| {
            if i == 17 && attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient worker failure");
            }
            i * 2
        });
        assert_eq!(out, items.iter().map(|i| i * 2).collect::<Vec<_>>());
    }
}
