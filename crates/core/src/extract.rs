//! `dec_LA`: min-cost decoding of a (possibly chased) VREM instance back
//! into an [`Expr`] — the inverse of [`crate::encode::Encoder`] (paper
//! §6.2.2).
//!
//! After the chase saturates an encoded instance under the MMC catalogue,
//! each union-find class is an equivalence class of value-equal
//! subexpressions and each operator fact is one way to compute its output
//! class: the instance is an e-graph. The extractor runs a Bellman-Ford
//! style cost relaxation over that e-graph (classes may be cyclic —
//! `(Aᵀ)ᵀ = A` merges a class with a descendant of itself) and rebuilds the
//! cheapest expression per class, resugaring the encoder's
//! `a + (-1 · b)` desugaring back to subtraction.

use std::collections::HashMap;

use hadad_chase::{Instance, NodeId};

use crate::expr::Expr;
use crate::schema::{OpKind, Vrem};

/// One way to produce a class: a leaf fact or an operator application.
#[derive(Debug, Clone, PartialEq)]
pub enum ENode {
    /// `name(class, n)` — base matrix `n`.
    Mat(String),
    /// `lit(class, v)` — scalar literal.
    Const(f64),
    /// `identity(class)`; the order comes from the class's `size` fact.
    Identity,
    /// `zero(class)`; dims come from the class's `size` fact.
    Zero,
    /// Operator fact producing this class as output `out_idx` (QR/LU have
    /// two outputs; everything else one).
    Op { kind: OpKind, inputs: Vec<NodeId>, out_idx: usize },
}

/// Pluggable cost for the extraction DP. Implementations see only operator
/// kinds and shapes, so `hadad-core` stays decoupled from any particular
/// estimator; `hadad-rewrite` supplies a flops-based one.
pub trait ExtractionCost {
    /// Cost of reading a leaf (base matrix / literal / identity / zero).
    fn leaf_cost(&self, shape: (usize, usize)) -> f64;

    /// Cost of one operator application (children excluded). `out_idx`
    /// distinguishes the two outputs of QR/LU.
    fn op_cost(
        &self,
        kind: OpKind,
        out_idx: usize,
        child_shapes: &[(usize, usize)],
        out_shape: (usize, usize),
    ) -> f64;
}

/// Default cost: expression-tree size. Extraction under this cost returns
/// the syntactically smallest representative of a class.
pub struct TreeSizeCost;

impl ExtractionCost for TreeSizeCost {
    fn leaf_cost(&self, _shape: (usize, usize)) -> f64 {
        1.0
    }

    fn op_cost(
        &self,
        _kind: OpKind,
        _out_idx: usize,
        _child_shapes: &[(usize, usize)],
        _out_shape: (usize, usize),
    ) -> f64 {
        1.0
    }
}

/// Min-cost extractor over a VREM instance.
pub struct Extractor<'a> {
    inst: &'a Instance,
    /// Canonical class -> candidate e-nodes.
    classes: HashMap<NodeId, Vec<ENode>>,
    /// Canonical class -> shape, from `size` facts or inferred bottom-up.
    shapes: HashMap<NodeId, (usize, usize)>,
    /// Canonical class -> (best cost, index into `classes[class]`).
    best: HashMap<NodeId, (f64, usize)>,
}

impl<'a> Extractor<'a> {
    /// Collects e-nodes and shapes from the instance and runs the cost
    /// relaxation to fixpoint.
    pub fn new(vrem: &Vrem, inst: &'a Instance, cost: &dyn ExtractionCost) -> Self {
        let mut ex = Extractor {
            inst,
            classes: HashMap::new(),
            shapes: HashMap::new(),
            best: HashMap::new(),
        };
        ex.collect(vrem);
        ex.solve(cost);
        ex
    }

    fn push(&mut self, class: NodeId, node: ENode) {
        let nodes = self.classes.entry(class).or_default();
        if !nodes.contains(&node) {
            nodes.push(node);
        }
    }

    fn collect(&mut self, vrem: &Vrem) {
        for f in self.inst.facts() {
            let canon: Vec<NodeId> = f.args.iter().map(|&a| self.inst.find(a)).collect();
            if f.pred == vrem.name {
                if let Some(sym) = self.inst.const_of(canon[1]) {
                    let name = vrem.vocab.const_name(sym).to_owned();
                    self.push(canon[0], ENode::Mat(name));
                }
            } else if f.pred == vrem.lit {
                if let Some(sym) = self.inst.const_of(canon[1]) {
                    if let Ok(v) = vrem.vocab.const_name(sym).parse::<f64>() {
                        self.push(canon[0], ENode::Const(v));
                    }
                }
            } else if f.pred == vrem.identity {
                self.push(canon[0], ENode::Identity);
            } else if f.pred == vrem.zero {
                self.push(canon[0], ENode::Zero);
            } else if f.pred == vrem.size {
                let dim = |n: NodeId| {
                    self.inst
                        .const_of(n)
                        .and_then(|s| vrem.vocab.const_name(s).parse::<usize>().ok())
                };
                if let (Some(r), Some(c)) = (dim(canon[1]), dim(canon[2])) {
                    self.shapes.insert(canon[0], (r, c));
                }
            } else if let Some(kind) = vrem.kind_of(f.pred) {
                let n_in = kind.num_inputs();
                let inputs = canon[..n_in].to_vec();
                for (out_idx, &out) in canon[n_in..].iter().enumerate() {
                    self.push(out, ENode::Op { kind, inputs: inputs.clone(), out_idx });
                }
            }
        }
    }

    /// Shape of an operator output given child shapes (mirrors
    /// [`crate::stats::shape`], but over shapes so it also covers classes
    /// the chase created without `size` facts).
    fn op_shape(kind: OpKind, out_idx: usize, child: &[(usize, usize)]) -> (usize, usize) {
        use OpKind::*;
        let _ = out_idx; // both QR/LU outputs share the (square) input shape
        match kind {
            Add | Hadamard | Div => child[0],
            Mul => (child[0].0, child[1].1),
            Kron => (child[0].0 * child[1].0, child[0].1 * child[1].1),
            DirectSum => (child[0].0 + child[1].0, child[0].1 + child[1].1),
            ScalarMul => child[1],
            Transpose => (child[0].1, child[0].0),
            Inv | Adj | Exp | Rev | Cho | Qr | Lu => child[0],
            Diag => (child[0].0, 1),
            RowSums | RowMeans | RowMin | RowMax | RowVar => (child[0].0, 1),
            ColSums | ColMeans | ColMin | ColMax | ColVar => (1, child[0].1),
            Det | Trace | Sum | Min | Max | Mean | Var => (1, 1),
        }
    }

    /// Bellman-Ford relaxation: every pass can only lower class costs, and
    /// each finite cost certifies a finite (cycle-free) derivation, so the
    /// loop reaches fixpoint in at most `#classes` passes.
    fn solve(&mut self, cost: &dyn ExtractionCost) {
        let class_ids: Vec<NodeId> = self.classes.keys().copied().collect();
        let max_rounds = class_ids.len() + 1;
        for _ in 0..max_rounds {
            let mut changed = false;
            for &class in &class_ids {
                let num_nodes = self.classes[&class].len();
                for idx in 0..num_nodes {
                    // Borrow the node per iteration (instead of cloning the
                    // whole e-node vector per round); `best`/`shapes` are
                    // only written after the borrow ends.
                    let node = &self.classes[&class][idx];
                    let computed = match node {
                        ENode::Mat(_) => {
                            self.shapes.get(&class).map(|&s| (cost.leaf_cost(s), s))
                        }
                        ENode::Const(_) => Some((cost.leaf_cost((1, 1)), (1, 1))),
                        ENode::Identity | ENode::Zero => {
                            self.shapes.get(&class).map(|&s| (cost.leaf_cost(s), s))
                        }
                        ENode::Op { kind, inputs, out_idx } => {
                            let mut child_costs = 0.0;
                            let mut child_shapes = Vec::with_capacity(inputs.len());
                            let mut ready = true;
                            for &i in inputs {
                                match (self.best.get(&i), self.shapes.get(&i)) {
                                    (Some(&(c, _)), Some(&s)) => {
                                        child_costs += c;
                                        child_shapes.push(s);
                                    }
                                    _ => {
                                        ready = false;
                                        break;
                                    }
                                }
                            }
                            if !ready {
                                None
                            } else {
                                let out_shape =
                                    self.shapes.get(&class).copied().unwrap_or_else(|| {
                                        Self::op_shape(*kind, *out_idx, &child_shapes)
                                    });
                                let op =
                                    cost.op_cost(*kind, *out_idx, &child_shapes, out_shape);
                                // Clamp so parents always cost strictly more
                                // than children; cyclic classes then cannot
                                // be their own best derivation.
                                Some((op.max(1e-9) + child_costs, out_shape))
                            }
                        }
                    };
                    if let Some((c, shape)) = computed {
                        self.shapes.entry(class).or_insert(shape);
                        let better = match self.best.get(&class) {
                            Some(&(cur, _)) => c < cur,
                            None => true,
                        };
                        if better {
                            self.best.insert(class, (c, idx));
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Cost of the cheapest derivation of a class, if one exists.
    pub fn class_cost(&self, class: NodeId) -> Option<f64> {
        self.best.get(&self.inst.find(class)).map(|&(c, _)| c)
    }

    /// Shape of a class, from `size` facts or inference.
    pub fn shape(&self, class: NodeId) -> Option<(usize, usize)> {
        self.shapes.get(&self.inst.find(class)).copied()
    }

    /// Candidate e-nodes of a class.
    pub fn enodes(&self, class: NodeId) -> &[ENode] {
        self.classes.get(&self.inst.find(class)).map_or(&[], |v| v.as_slice())
    }

    /// The cheapest expression of a class, resugared.
    pub fn extract(&self, root: NodeId) -> Option<Expr> {
        let root = self.inst.find(root);
        let &(_, idx) = self.best.get(&root)?;
        let e = self.build(root, &self.classes[&root][idx])?;
        Some(resugar(&e))
    }

    /// One candidate expression per derivation of the root class, each
    /// completed with min-cost children and deduplicated syntactically.
    /// The caller ranks these with its own (richer) cost model.
    pub fn candidates(&self, root: NodeId) -> Vec<Expr> {
        let root = self.inst.find(root);
        let mut out: Vec<Expr> = Vec::new();
        let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
        let Some(nodes) = self.classes.get(&root) else {
            return out;
        };
        for node in nodes {
            if let Some(e) = self.build(root, node) {
                let e = resugar(&e);
                if seen.insert(e.to_string()) {
                    out.push(e);
                }
            }
        }
        out
    }

    /// Rebuilds an expression from a chosen e-node, following best
    /// derivations below it. Finite best costs certify acyclicity.
    fn build(&self, class: NodeId, node: &ENode) -> Option<Expr> {
        let expr = match node {
            ENode::Mat(n) => Expr::Mat(n.clone()),
            ENode::Const(v) => Expr::Const(*v),
            ENode::Identity => {
                let (r, _) = self.shape(class)?;
                Expr::Identity(r)
            }
            ENode::Zero => {
                let (r, c) = self.shape(class)?;
                Expr::Zero(r, c)
            }
            ENode::Op { kind, inputs, out_idx } => {
                let mut children = Vec::with_capacity(inputs.len());
                for &i in inputs {
                    let &(_, idx) = self.best.get(&i)?;
                    children.push(self.build(i, &self.classes[&i][idx])?);
                }
                op_expr(*kind, *out_idx, children)?
            }
        };
        Some(expr)
    }
}

/// Builds the `Expr` node for an operator kind and output index.
fn op_expr(kind: OpKind, out_idx: usize, mut ch: Vec<Expr>) -> Option<Expr> {
    use OpKind::*;
    let bin = |ch: &mut Vec<Expr>| {
        let b = Box::new(ch.pop().unwrap());
        let a = Box::new(ch.pop().unwrap());
        (a, b)
    };
    let un = |ch: &mut Vec<Expr>| Box::new(ch.pop().unwrap());
    Some(match kind {
        Add => {
            let (a, b) = bin(&mut ch);
            Expr::Add(a, b)
        }
        Mul => {
            let (a, b) = bin(&mut ch);
            Expr::Mul(a, b)
        }
        Hadamard => {
            let (a, b) = bin(&mut ch);
            Expr::Hadamard(a, b)
        }
        Div => {
            let (a, b) = bin(&mut ch);
            Expr::Div(a, b)
        }
        ScalarMul => {
            let (a, b) = bin(&mut ch);
            Expr::ScalarMul(a, b)
        }
        Kron => {
            let (a, b) = bin(&mut ch);
            Expr::Kron(a, b)
        }
        DirectSum => {
            let (a, b) = bin(&mut ch);
            Expr::DirectSum(a, b)
        }
        Transpose => Expr::Transpose(un(&mut ch)),
        Inv => Expr::Inv(un(&mut ch)),
        Adj => Expr::Adj(un(&mut ch)),
        Exp => Expr::Exp(un(&mut ch)),
        Diag => Expr::Diag(un(&mut ch)),
        Rev => Expr::Rev(un(&mut ch)),
        RowSums => Expr::RowSums(un(&mut ch)),
        ColSums => Expr::ColSums(un(&mut ch)),
        RowMeans => Expr::RowMeans(un(&mut ch)),
        ColMeans => Expr::ColMeans(un(&mut ch)),
        RowMin => Expr::RowMin(un(&mut ch)),
        RowMax => Expr::RowMax(un(&mut ch)),
        ColMin => Expr::ColMin(un(&mut ch)),
        ColMax => Expr::ColMax(un(&mut ch)),
        RowVar => Expr::RowVar(un(&mut ch)),
        ColVar => Expr::ColVar(un(&mut ch)),
        Det => Expr::Det(un(&mut ch)),
        Trace => Expr::Trace(un(&mut ch)),
        Sum => Expr::Sum(un(&mut ch)),
        Min => Expr::Min(un(&mut ch)),
        Max => Expr::Max(un(&mut ch)),
        Mean => Expr::Mean(un(&mut ch)),
        Var => Expr::Var(un(&mut ch)),
        Cho => Expr::Cho(un(&mut ch)),
        Qr => {
            let a = un(&mut ch);
            if out_idx == 0 {
                Expr::QrQ(a)
            } else {
                Expr::QrR(a)
            }
        }
        Lu => {
            let a = un(&mut ch);
            if out_idx == 0 {
                Expr::LuL(a)
            } else {
                Expr::LuU(a)
            }
        }
    })
}

/// Resugars the encoder's subtraction desugaring: `a + (-1 · b)` becomes
/// `a - b` (in either addend order, since the chase may commute additions).
pub fn resugar(e: &Expr) -> Expr {
    use Expr::*;
    let rebuilt = map_children(e, &|c| resugar(c));
    if let Add(a, b) = &rebuilt {
        if let Some(neg) = negated_operand(b) {
            return Sub(a.clone(), Box::new(neg));
        }
        if let Some(neg) = negated_operand(a) {
            return Sub(b.clone(), Box::new(neg));
        }
    }
    rebuilt
}

/// If `e` is `(-1) · x`, returns `x`.
fn negated_operand(e: &Expr) -> Option<Expr> {
    if let Expr::ScalarMul(s, x) = e {
        if matches!(**s, Expr::Const(v) if v == -1.0) {
            return Some((**x).clone());
        }
    }
    None
}

/// Rebuilds an expression with each child replaced by `f(child)`.
fn map_children(e: &Expr, f: &impl Fn(&Expr) -> Expr) -> Expr {
    use Expr::*;
    let b = |x: &Expr| Box::new(f(x));
    match e {
        Mat(_) | Const(_) | Identity(_) | Zero(..) => e.clone(),
        Add(x, y) => Add(b(x), b(y)),
        Sub(x, y) => Sub(b(x), b(y)),
        Mul(x, y) => Mul(b(x), b(y)),
        Hadamard(x, y) => Hadamard(b(x), b(y)),
        Div(x, y) => Div(b(x), b(y)),
        Kron(x, y) => Kron(b(x), b(y)),
        DirectSum(x, y) => DirectSum(b(x), b(y)),
        ScalarMul(x, y) => ScalarMul(b(x), b(y)),
        Transpose(x) => Transpose(b(x)),
        Inv(x) => Inv(b(x)),
        Adj(x) => Adj(b(x)),
        Exp(x) => Exp(b(x)),
        Diag(x) => Diag(b(x)),
        Rev(x) => Rev(b(x)),
        RowSums(x) => RowSums(b(x)),
        ColSums(x) => ColSums(b(x)),
        RowMeans(x) => RowMeans(b(x)),
        ColMeans(x) => ColMeans(b(x)),
        RowMin(x) => RowMin(b(x)),
        RowMax(x) => RowMax(b(x)),
        ColMin(x) => ColMin(b(x)),
        ColMax(x) => ColMax(b(x)),
        RowVar(x) => RowVar(b(x)),
        ColVar(x) => ColVar(b(x)),
        Det(x) => Det(b(x)),
        Trace(x) => Trace(b(x)),
        Sum(x) => Sum(b(x)),
        Min(x) => Min(b(x)),
        Max(x) => Max(b(x)),
        Mean(x) => Mean(b(x)),
        Var(x) => Var(b(x)),
        Cho(x) => Cho(b(x)),
        QrQ(x) => QrQ(b(x)),
        QrR(x) => QrR(b(x)),
        LuL(x) => LuL(b(x)),
        LuU(x) => LuU(b(x)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::Encoder;
    use crate::expr::dsl::*;
    use crate::stats::{MatrixMeta, MetaCatalog};

    fn cat() -> MetaCatalog {
        let mut c = MetaCatalog::new();
        c.register("M", MatrixMeta::dense(100, 10));
        c.register("N", MatrixMeta::dense(10, 100));
        c.register("D", MatrixMeta::dense(10, 10));
        c.register("y", MatrixMeta::dense(100, 1));
        c
    }

    fn roundtrip(e: &Expr) -> Expr {
        let mut vrem = Vrem::new();
        let c = cat();
        let enc = Encoder::new(&mut vrem, &c).encode(e).unwrap();
        let ex = Extractor::new(&vrem, &enc.instance, &TreeSizeCost);
        ex.extract(enc.root).expect("root extractable")
    }

    #[test]
    fn decodes_example_6_1() {
        let e = t(mul(m("M"), m("N")));
        assert_eq!(roundtrip(&e), e);
    }

    #[test]
    fn decodes_nested_operators() {
        let ols = mul(inv(mul(t(m("M")), m("M"))), mul(t(m("M")), m("y")));
        assert_eq!(roundtrip(&ols), ols);
    }

    #[test]
    fn resugars_subtraction() {
        let e = sub(m("D"), mul(m("D"), m("D")));
        assert_eq!(roundtrip(&e), e);
    }

    #[test]
    fn reconstructs_decomposition_pairs() {
        let e = mul(Expr::QrQ(Box::new(m("D"))), Expr::QrR(Box::new(m("D"))));
        assert_eq!(roundtrip(&e), e);
        let lu = mul(Expr::LuL(Box::new(m("D"))), Expr::LuU(Box::new(m("D"))));
        assert_eq!(roundtrip(&lu), lu);
    }

    #[test]
    fn decodes_leaves() {
        let e = add(smul(lit(2.5), m("D")), Expr::Identity(10));
        assert_eq!(roundtrip(&e), e);
        let z = add(m("D"), Expr::Zero(10, 10));
        assert_eq!(roundtrip(&z), z);
    }

    #[test]
    fn extraction_picks_cheaper_enode_after_merge() {
        // Manually merge the class of (M N) with the class of a base matrix
        // "P": extraction under tree size must then prefer P.
        let mut vrem = Vrem::new();
        let mut c = cat();
        c.register("P", MatrixMeta::dense(100, 100));
        let e = mul(m("M"), m("N"));
        let enc = Encoder::new(&mut vrem, &c).encode_many(&[&e, &m("P")]).unwrap();
        let (mut inst, roots) = enc;
        inst.merge(roots[0], roots[1]).unwrap();
        inst.rehash();
        let ex = Extractor::new(&vrem, &inst, &TreeSizeCost);
        assert_eq!(ex.extract(roots[0]).unwrap(), m("P"));
        // Both derivations remain available as candidates.
        let cands = ex.candidates(roots[0]);
        assert_eq!(cands.len(), 2);
    }
}
