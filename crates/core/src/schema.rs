//! The VREM schema (Virtual Relational Encoding of Matrices, paper §6.2,
//! Table 1): one virtual relation per LA operation, plus `name`, `size`,
//! `zero`, `identity`, `type`, and scalar-literal relations.
//!
//! IDs in these relations denote *value-equivalence classes* of expressions
//! (§6.2.1): the chase's functional EGDs merge IDs of provably value-equal
//! expressions, so the saturated instance doubles as an e-graph.

use std::collections::HashMap;

use hadad_chase::{PredId, Vocabulary};

/// Operator tags shared by the encoder, the constraint catalogue, and the
/// extractor. Each maps to one VREM relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    /// Matrix addition — `add(A, B, C)`.
    Add,
    /// Matrix product — `multiM(A, B, C)`.
    Mul,
    /// Hadamard product — `multiE`.
    Hadamard,
    /// Element-wise division — `divi`.
    Div,
    /// Scalar-matrix product — `multiMS`.
    ScalarMul,
    /// Kronecker product — `product_D`.
    Kron,
    /// Direct sum — `sum_D`.
    DirectSum,
    /// Transposition — `tr`.
    Transpose,
    /// Matrix inverse — `invM`.
    Inv,
    /// Adjugate — `adj`.
    Adj,
    /// Matrix exponential — `expM`.
    Exp,
    /// Diagonal extraction — `diag`.
    Diag,
    /// Row-order reversal — `rev`.
    Rev,
    /// Per-row sums.
    RowSums,
    /// Per-column sums.
    ColSums,
    /// Per-row means.
    RowMeans,
    /// Per-column means.
    ColMeans,
    /// Per-row minima.
    RowMin,
    /// Per-row maxima.
    RowMax,
    /// Per-column minima.
    ColMin,
    /// Per-column maxima.
    ColMax,
    /// Per-row variances.
    RowVar,
    /// Per-column variances.
    ColVar,
    /// Determinant — `det`.
    Det,
    /// Trace — `trace`.
    Trace,
    /// Sum of all entries.
    Sum,
    /// Minimum entry.
    Min,
    /// Maximum entry.
    Max,
    /// Mean of all entries.
    Mean,
    /// Population variance of all entries.
    Var,
    /// Cholesky: `CHO(M, L)`.
    Cho,
    /// QR: `QR(M, Q, R)` — two outputs.
    Qr,
    /// LU: `LU(M, L, U)` — two outputs.
    Lu,
}

impl OpKind {
    /// VREM relation name (Table 1 of the paper).
    pub fn pred_name(&self) -> &'static str {
        use OpKind::*;
        match self {
            Add => "addM",
            Mul => "multiM",
            Hadamard => "multiE",
            Div => "divM",
            ScalarMul => "multiMS",
            Kron => "productD",
            DirectSum => "sumD",
            Transpose => "tr",
            Inv => "invM",
            Adj => "adj",
            Exp => "exp",
            Diag => "diag",
            Rev => "rev",
            RowSums => "rowSums",
            ColSums => "colSums",
            RowMeans => "rowMeans",
            ColMeans => "colMeans",
            RowMin => "rowMin",
            RowMax => "rowMax",
            ColMin => "colMin",
            ColMax => "colMax",
            RowVar => "rowVar",
            ColVar => "colVar",
            Det => "det",
            Trace => "trace",
            Sum => "sum",
            Min => "min",
            Max => "max",
            Mean => "mean",
            Var => "var",
            Cho => "CHO",
            Qr => "QR",
            Lu => "LU",
        }
    }

    /// Relation arity: inputs + outputs.
    pub fn arity(&self) -> usize {
        use OpKind::*;
        match self {
            Add | Mul | Hadamard | Div | ScalarMul | Kron | DirectSum => 3,
            Qr | Lu => 3,
            _ => 2,
        }
    }

    /// Number of input arguments (the rest are outputs).
    pub fn num_inputs(&self) -> usize {
        use OpKind::*;
        match self {
            Add | Mul | Hadamard | Div | ScalarMul | Kron | DirectSum => 2,
            _ => 1,
        }
    }

    /// All operator kinds.
    pub fn all() -> &'static [OpKind] {
        use OpKind::*;
        &[
            Add, Mul, Hadamard, Div, ScalarMul, Kron, DirectSum, Transpose, Inv, Adj, Exp,
            Diag, Rev, RowSums, ColSums, RowMeans, ColMeans, RowMin, RowMax, ColMin, ColMax,
            RowVar, ColVar, Det, Trace, Sum, Min, Max, Mean, Var, Cho, Qr, Lu,
        ]
    }
}

/// The VREM schema: interned predicates over a shared vocabulary.
#[derive(Debug, Clone)]
pub struct Vrem {
    /// The shared vocabulary all predicates are interned in.
    pub vocab: Vocabulary,
    /// `name(M, n)`: class `M` is the matrix stored under name `n`.
    pub name: PredId,
    /// `size(M, k, z)`: class `M` has `k` rows and `z` columns.
    pub size: PredId,
    /// `zero(O)`: class `O` is an all-zeros matrix.
    pub zero: PredId,
    /// `identity(I)`: class `I` is an identity matrix.
    pub identity: PredId,
    /// `type(M, f)`: structural flag `f` ∈ {"S","L","U","O","P"} (§6.2.5).
    pub ty: PredId,
    /// `lit(S, v)`: class `S` is the 1x1 scalar literal `v`.
    pub lit: PredId,
    /// `density(M, d)`: class `M` has an estimated non-zero fraction of
    /// `d` parts-per-million (integer constant; see
    /// [`crate::stats::ClassStats`]). Read by the cost oracle so the chase
    /// and extraction agree with the ranking estimator on sparsity.
    pub density: PredId,
    ops: HashMap<OpKind, PredId>,
}

/// Scale of the `density` relation's integer constants: densities are
/// recorded in parts-per-million.
pub const DENSITY_SCALE: f64 = 1_000_000.0;

impl Vrem {
    /// A fresh schema: interns every VREM predicate into a new vocabulary.
    pub fn new() -> Self {
        let mut vocab = Vocabulary::new();
        let name = vocab.predicate("name", 2);
        let size = vocab.predicate("size", 3);
        let zero = vocab.predicate("zero", 1);
        let identity = vocab.predicate("identity", 1);
        let ty = vocab.predicate("type", 2);
        let lit = vocab.predicate("lit", 2);
        let density = vocab.predicate("density", 2);
        let mut ops = HashMap::new();
        for &k in OpKind::all() {
            ops.insert(k, vocab.predicate(k.pred_name(), k.arity()));
        }
        Vrem { vocab, name, size, zero, identity, ty, lit, density, ops }
    }

    /// Predicate of an operator relation.
    pub fn op(&self, kind: OpKind) -> PredId {
        self.ops[&kind]
    }

    /// Reverse lookup: operator kind of a predicate, if it is one.
    pub fn kind_of(&self, pred: PredId) -> Option<OpKind> {
        self.ops.iter().find(|(_, &p)| p == pred).map(|(&k, _)| k)
    }
}

impl Default for Vrem {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ops_registered() {
        let vrem = Vrem::new();
        for &k in OpKind::all() {
            let p = vrem.op(k);
            assert_eq!(vrem.vocab.pred_arity(p), k.arity());
            assert_eq!(vrem.kind_of(p), Some(k));
        }
    }

    #[test]
    fn table1_names() {
        let vrem = Vrem::new();
        assert_eq!(vrem.vocab.pred_name(vrem.op(OpKind::Mul)), "multiM");
        assert_eq!(vrem.vocab.pred_name(vrem.op(OpKind::Hadamard)), "multiE");
        assert_eq!(vrem.vocab.pred_name(vrem.op(OpKind::ScalarMul)), "multiMS");
        assert_eq!(vrem.vocab.pred_name(vrem.op(OpKind::Transpose)), "tr");
    }

    #[test]
    fn inputs_vs_arity() {
        assert_eq!(OpKind::Mul.num_inputs(), 2);
        assert_eq!(OpKind::Qr.num_inputs(), 1);
        assert_eq!(OpKind::Qr.arity(), 3);
        assert_eq!(OpKind::Det.arity(), 2);
    }
}
