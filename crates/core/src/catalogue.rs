//! The MMC catalogue: linear-algebra properties as integrity constraints
//! over the VREM schema (paper §6.2.3–§6.2.5, `LAprop`).
//!
//! Three groups:
//! * **Functional EGDs** (`I_<rel>`): every operator relation denotes a
//!   function — equal inputs force equal output classes. These are what
//!   make the chased instance an e-graph.
//! * **Structural TGDs/EGDs**: associativity, commutativity,
//!   distributivity, transpose push-down, trace cyclicity/linearity,
//!   inverse and identity/zero laws. TGD conclusions reuse the premise's
//!   output variable, so the rewritten form lands in the *same* class as
//!   the original — equality is by construction, not by a separate EGD.
//! * **Decomposition rules** (§6.2.5): CHO/QR/LU recomposition and the
//!   structural `type` flags they imply, which is what enables
//!   decomposition *reuse* (a second `QR(M, _, _)` fact merges with a
//!   materialized one through the functional EGDs).
//!
//! Associativity-style rules are fresh-ID generators; the
//! [`hadad_chase::ChaseBudget`] bounds them exactly as the paper's PACB++
//! implementation does (§6.3).

use hadad_chase::{Atom, Constraint, Egd, Term, Tgd};

use crate::encode::CqEncoder;
use crate::expr::Expr;
use crate::schema::{OpKind, Vrem};
use crate::stats::{MetaCatalog, ShapeError};

fn v(i: u32) -> Term {
    Term::Var(i)
}

/// The constraint catalogue, ready to feed a
/// [`hadad_chase::ChaseEngine`].
#[derive(Debug, Clone)]
pub struct Catalogue {
    /// The rule set, in firing order.
    pub constraints: Vec<Constraint>,
}

impl Catalogue {
    /// The full standard catalogue: functional + structural +
    /// decomposition + statistics-propagation constraints.
    pub fn standard(vrem: &mut Vrem) -> Catalogue {
        let mut constraints = Self::functional_egds(vrem);
        constraints.extend(Self::structural_rules(vrem));
        constraints.extend(Self::decomposition_rules(vrem));
        constraints.extend(Self::propagation_rules(vrem));
        Catalogue { constraints }
    }

    /// Names of all constraints (for tests and diagnostics).
    pub fn names(&self) -> Vec<&str> {
        self.constraints.iter().map(hadad_chase::Constraint::name).collect()
    }

    /// Static analysis of the catalogue (`hadad-analyze`): range
    /// restriction, weak acyclicity modulo conclusion-atom reuse,
    /// functional-signature cross-checks, duplicate detection, and
    /// stats-propagation coverage. `vrem` must be the schema the
    /// constraints were built over. [`hadad_analyze::RuleReport::certified`]
    /// is the registration / CI gate.
    pub fn analyze(&self, vrem: &Vrem) -> hadad_analyze::RuleReport {
        hadad_analyze::Analyzer::new(&self.constraints)
            .with_vocab(&vrem.vocab)
            .with_stats_preds(vec![vrem.size])
            .with_coverage_exempt(vec![
                vrem.name,
                vrem.lit,
                vrem.ty,
                vrem.identity,
                vrem.zero,
                vrem.density,
            ])
            .report()
    }

    /// `I_<rel>`: each operator relation is functional in its outputs.
    pub fn functional_egds(vrem: &mut Vrem) -> Vec<Constraint> {
        let mut out = Vec::new();
        for &kind in OpKind::all() {
            let pred = vrem.op(kind);
            let name = format!("I_{}", kind.pred_name());
            match kind {
                OpKind::Qr | OpKind::Lu => {
                    // P(M, O1, O2) ∧ P(M, O3, O4) → O1 = O3 ∧ O2 = O4.
                    out.push(
                        Egd::new(
                            name,
                            vec![
                                Atom::new(pred, vec![v(0), v(1), v(2)]),
                                Atom::new(pred, vec![v(0), v(3), v(4)]),
                            ],
                            vec![(v(1), v(3)), (v(2), v(4))],
                        )
                        .into(),
                    );
                }
                _ => out.push(Egd::functional(name, pred, kind.arity()).into()),
            }
        }
        out
    }

    /// Associativity, commutativity, distributivity, transpose push-down,
    /// trace properties, inverse and identity/zero laws.
    // One `push` per law keeps each rule next to its comment; a single
    // `vec![]` literal would bury them.
    #[allow(clippy::vec_init_then_push)]
    pub fn structural_rules(vrem: &mut Vrem) -> Vec<Constraint> {
        let mul = vrem.op(OpKind::Mul);
        let add = vrem.op(OpKind::Add);
        let tr = vrem.op(OpKind::Transpose);
        let inv = vrem.op(OpKind::Inv);
        let trace = vrem.op(OpKind::Trace);
        let smul = vrem.op(OpKind::ScalarMul);
        let size = vrem.size;
        let identity = vrem.identity;
        let zero = vrem.zero;
        let ty = vrem.ty;
        let sym_s = vrem.vocab.constant("S");
        let sym_o = vrem.vocab.constant("O");

        let mut out: Vec<Constraint> = Vec::new();

        // A name (or a scalar literal) denotes one matrix: two classes
        // carrying the same `name`/`lit` constant are value-equal. This is
        // what merges the fresh classes a view expansion (`V_OI`) creates
        // with the query's own leaf classes.
        let name = vrem.name;
        let lit = vrem.lit;
        out.push(
            Egd::new(
                "name-unique",
                vec![Atom::new(name, vec![v(0), v(2)]), Atom::new(name, vec![v(1), v(2)])],
                vec![(v(0), v(1))],
            )
            .into(),
        );
        out.push(
            Egd::new(
                "lit-unique",
                vec![Atom::new(lit, vec![v(0), v(2)]), Atom::new(lit, vec![v(1), v(2)])],
                vec![(v(0), v(1))],
            )
            .into(),
        );

        // (A B) C = A (B C) — both directions; the restricted chase stops
        // once every regrouping of a chain is present.
        out.push(
            Tgd::new(
                "mul-assoc-r",
                vec![
                    Atom::new(mul, vec![v(0), v(1), v(2)]),
                    Atom::new(mul, vec![v(2), v(3), v(4)]),
                ],
                vec![
                    Atom::new(mul, vec![v(1), v(3), v(5)]),
                    Atom::new(mul, vec![v(0), v(5), v(4)]),
                ],
            )
            .into(),
        );
        out.push(
            Tgd::new(
                "mul-assoc-l",
                vec![
                    Atom::new(mul, vec![v(1), v(3), v(5)]),
                    Atom::new(mul, vec![v(0), v(5), v(4)]),
                ],
                vec![
                    Atom::new(mul, vec![v(0), v(1), v(2)]),
                    Atom::new(mul, vec![v(2), v(3), v(4)]),
                ],
            )
            .into(),
        );

        // A + B = B + A (no existentials).
        out.push(
            Tgd::new(
                "add-comm",
                vec![Atom::new(add, vec![v(0), v(1), v(2)])],
                vec![Atom::new(add, vec![v(1), v(0), v(2)])],
            )
            .into(),
        );
        // (A + B) + C = A + (B + C).
        out.push(
            Tgd::new(
                "add-assoc-r",
                vec![
                    Atom::new(add, vec![v(0), v(1), v(2)]),
                    Atom::new(add, vec![v(2), v(3), v(4)]),
                ],
                vec![
                    Atom::new(add, vec![v(1), v(3), v(5)]),
                    Atom::new(add, vec![v(0), v(5), v(4)]),
                ],
            )
            .into(),
        );

        // trace(A B) = trace(B A).
        out.push(
            Tgd::new(
                "trace-cyclic",
                vec![
                    Atom::new(mul, vec![v(0), v(1), v(2)]),
                    Atom::new(trace, vec![v(2), v(3)]),
                ],
                vec![
                    Atom::new(mul, vec![v(1), v(0), v(4)]),
                    Atom::new(trace, vec![v(4), v(3)]),
                ],
            )
            .into(),
        );
        // trace(Aᵀ) = trace(A) (no existentials).
        out.push(
            Tgd::new(
                "trace-transpose",
                vec![Atom::new(tr, vec![v(0), v(1)]), Atom::new(trace, vec![v(1), v(2)])],
                vec![Atom::new(trace, vec![v(0), v(2)])],
            )
            .into(),
        );
        // trace(A + B) = trace(A) + trace(B) (scalars are 1x1 matrices, so
        // the sum of traces is an addM fact).
        out.push(
            Tgd::new(
                "trace-add",
                vec![
                    Atom::new(add, vec![v(0), v(1), v(2)]),
                    Atom::new(trace, vec![v(2), v(3)]),
                ],
                vec![
                    Atom::new(trace, vec![v(0), v(4)]),
                    Atom::new(trace, vec![v(1), v(5)]),
                    Atom::new(add, vec![v(4), v(5), v(3)]),
                ],
            )
            .into(),
        );

        // (A B)ᵀ = Bᵀ Aᵀ — push-down and pull-up.
        out.push(
            Tgd::new(
                "tr-mul",
                vec![Atom::new(mul, vec![v(0), v(1), v(2)]), Atom::new(tr, vec![v(2), v(3)])],
                vec![
                    Atom::new(tr, vec![v(0), v(4)]),
                    Atom::new(tr, vec![v(1), v(5)]),
                    Atom::new(mul, vec![v(5), v(4), v(3)]),
                ],
            )
            .into(),
        );
        out.push(
            Tgd::new(
                "tr-mul-rev",
                vec![
                    Atom::new(tr, vec![v(0), v(4)]),
                    Atom::new(tr, vec![v(1), v(5)]),
                    Atom::new(mul, vec![v(5), v(4), v(3)]),
                ],
                vec![Atom::new(mul, vec![v(0), v(1), v(2)]), Atom::new(tr, vec![v(2), v(3)])],
            )
            .into(),
        );
        // (A + B)ᵀ = Aᵀ + Bᵀ.
        out.push(
            Tgd::new(
                "tr-add",
                vec![Atom::new(add, vec![v(0), v(1), v(2)]), Atom::new(tr, vec![v(2), v(3)])],
                vec![
                    Atom::new(tr, vec![v(0), v(4)]),
                    Atom::new(tr, vec![v(1), v(5)]),
                    Atom::new(add, vec![v(4), v(5), v(3)]),
                ],
            )
            .into(),
        );
        // (s · A)ᵀ = s · Aᵀ.
        out.push(
            Tgd::new(
                "tr-scalar",
                vec![Atom::new(smul, vec![v(0), v(1), v(2)]), Atom::new(tr, vec![v(2), v(3)])],
                vec![Atom::new(tr, vec![v(1), v(4)]), Atom::new(smul, vec![v(0), v(4), v(3)])],
            )
            .into(),
        );
        // (Aᵀ)ᵀ = A.
        out.push(
            Egd::new(
                "tr-involution",
                vec![Atom::new(tr, vec![v(0), v(1)]), Atom::new(tr, vec![v(1), v(2)])],
                vec![(v(2), v(0))],
            )
            .into(),
        );
        // Aᵀ = A for symmetric A.
        out.push(
            Egd::new(
                "tr-symmetric",
                vec![
                    Atom::new(ty, vec![v(0), Term::Const(sym_s)]),
                    Atom::new(tr, vec![v(0), v(1)]),
                ],
                vec![(v(1), v(0))],
            )
            .into(),
        );

        // I A = A and A I = A.
        out.push(
            Egd::new(
                "mul-identity-l",
                vec![Atom::new(identity, vec![v(0)]), Atom::new(mul, vec![v(0), v(1), v(2)])],
                vec![(v(2), v(1))],
            )
            .into(),
        );
        out.push(
            Egd::new(
                "mul-identity-r",
                vec![Atom::new(identity, vec![v(0)]), Atom::new(mul, vec![v(1), v(0), v(2)])],
                vec![(v(2), v(1))],
            )
            .into(),
        );
        // 0 + A = A (commutativity covers A + 0).
        out.push(
            Egd::new(
                "add-zero",
                vec![Atom::new(zero, vec![v(0)]), Atom::new(add, vec![v(0), v(1), v(2)])],
                vec![(v(2), v(1))],
            )
            .into(),
        );
        // 0 A and A 0 are zero.
        out.push(
            Tgd::new(
                "mul-zero-l",
                vec![Atom::new(zero, vec![v(0)]), Atom::new(mul, vec![v(0), v(1), v(2)])],
                vec![Atom::new(zero, vec![v(2)])],
            )
            .into(),
        );
        out.push(
            Tgd::new(
                "mul-zero-r",
                vec![Atom::new(zero, vec![v(0)]), Atom::new(mul, vec![v(1), v(0), v(2)])],
                vec![Atom::new(zero, vec![v(2)])],
            )
            .into(),
        );

        // (A⁻¹)⁻¹ = A.
        out.push(
            Egd::new(
                "inv-involution",
                vec![Atom::new(inv, vec![v(0), v(1)]), Atom::new(inv, vec![v(1), v(2)])],
                vec![(v(2), v(0))],
            )
            .into(),
        );
        // A A⁻¹ = I = A⁻¹ A.
        out.push(
            Tgd::new(
                "mul-inv-identity-r",
                vec![Atom::new(inv, vec![v(0), v(1)]), Atom::new(mul, vec![v(0), v(1), v(2)])],
                vec![Atom::new(identity, vec![v(2)])],
            )
            .into(),
        );
        out.push(
            Tgd::new(
                "mul-inv-identity-l",
                vec![Atom::new(inv, vec![v(0), v(1)]), Atom::new(mul, vec![v(1), v(0), v(2)])],
                vec![Atom::new(identity, vec![v(2)])],
            )
            .into(),
        );
        // (Aᵀ)⁻¹ = (A⁻¹)ᵀ — both directions.
        out.push(
            Tgd::new(
                "inv-tr",
                vec![Atom::new(tr, vec![v(0), v(1)]), Atom::new(inv, vec![v(1), v(2)])],
                vec![Atom::new(inv, vec![v(0), v(3)]), Atom::new(tr, vec![v(3), v(2)])],
            )
            .into(),
        );
        out.push(
            Tgd::new(
                "inv-tr-rev",
                vec![Atom::new(inv, vec![v(0), v(3)]), Atom::new(tr, vec![v(3), v(2)])],
                vec![Atom::new(tr, vec![v(0), v(1)]), Atom::new(inv, vec![v(1), v(2)])],
            )
            .into(),
        );
        // (A B)⁻¹ = B⁻¹ A⁻¹, gated on A square so both factors are
        // invertible-shaped (the paper gates on metadata the same way).
        out.push(
            Tgd::new(
                "inv-mul",
                vec![
                    Atom::new(mul, vec![v(0), v(1), v(2)]),
                    Atom::new(inv, vec![v(2), v(3)]),
                    Atom::new(size, vec![v(0), v(4), v(4)]),
                ],
                vec![
                    Atom::new(inv, vec![v(0), v(5)]),
                    Atom::new(inv, vec![v(1), v(6)]),
                    Atom::new(mul, vec![v(6), v(5), v(3)]),
                ],
            )
            .into(),
        );
        // Q orthogonal ⇒ Q⁻¹ = Qᵀ.
        out.push(
            Egd::new(
                "orthogonal-inv-tr",
                vec![
                    Atom::new(ty, vec![v(0), Term::Const(sym_o)]),
                    Atom::new(tr, vec![v(0), v(1)]),
                    Atom::new(inv, vec![v(0), v(2)]),
                ],
                vec![(v(2), v(1))],
            )
            .into(),
        );
        // Q orthogonal ⇒ Qᵀ Q = I.
        out.push(
            Tgd::new(
                "orthogonal-gram",
                vec![
                    Atom::new(ty, vec![v(0), Term::Const(sym_o)]),
                    Atom::new(tr, vec![v(0), v(1)]),
                    Atom::new(mul, vec![v(1), v(0), v(2)]),
                ],
                vec![Atom::new(identity, vec![v(2)])],
            )
            .into(),
        );

        // A B + A C = A (B + C) and A C + B C = (A + B) C (the
        // factoring direction only: expansion never lowers cost and would
        // blow up the chase).
        out.push(
            Tgd::new(
                "distrib-factor-l",
                vec![
                    Atom::new(mul, vec![v(0), v(1), v(2)]),
                    Atom::new(mul, vec![v(0), v(3), v(4)]),
                    Atom::new(add, vec![v(2), v(4), v(5)]),
                ],
                vec![
                    Atom::new(add, vec![v(1), v(3), v(6)]),
                    Atom::new(mul, vec![v(0), v(6), v(5)]),
                ],
            )
            .into(),
        );
        out.push(
            Tgd::new(
                "distrib-factor-r",
                vec![
                    Atom::new(mul, vec![v(0), v(2), v(3)]),
                    Atom::new(mul, vec![v(1), v(2), v(4)]),
                    Atom::new(add, vec![v(3), v(4), v(5)]),
                ],
                vec![
                    Atom::new(add, vec![v(0), v(1), v(6)]),
                    Atom::new(mul, vec![v(6), v(2), v(5)]),
                ],
            )
            .into(),
        );

        // (s · A) B = s · (A B) and A (s · B) = s · (A B).
        out.push(
            Tgd::new(
                "scalar-pull-l",
                vec![
                    Atom::new(smul, vec![v(0), v(1), v(2)]),
                    Atom::new(mul, vec![v(2), v(3), v(4)]),
                ],
                vec![
                    Atom::new(mul, vec![v(1), v(3), v(5)]),
                    Atom::new(smul, vec![v(0), v(5), v(4)]),
                ],
            )
            .into(),
        );
        out.push(
            Tgd::new(
                "scalar-pull-r",
                vec![
                    Atom::new(smul, vec![v(0), v(1), v(2)]),
                    Atom::new(mul, vec![v(3), v(2), v(4)]),
                ],
                vec![
                    Atom::new(mul, vec![v(3), v(1), v(5)]),
                    Atom::new(smul, vec![v(0), v(5), v(4)]),
                ],
            )
            .into(),
        );

        out
    }

    /// `V_IO`/`V_OI` constraints for a registered, materialized LA view
    /// (paper §6.2.4, Figure 3): `V_IO` says every occurrence of the view's
    /// defining expression *is* the view (the chase tags its class with
    /// `name(class, view)` plus the materialized `size`, so extraction can
    /// pick the zero-cost `Mat(view)` leaf), and `V_OI` expands a use of
    /// the view name back into the definition so rewriting can continue
    /// *through* it. Appended to [`Catalogue::standard`] by the optimizer
    /// for each registered view.
    pub fn la_view_constraints(
        vrem: &mut Vrem,
        cat: &MetaCatalog,
        view_name: &str,
        def: &Expr,
    ) -> Result<Vec<Constraint>, ShapeError> {
        let stats = crate::stats::expr_stats(def, cat)?;
        let view_sym = vrem.vocab.constant(view_name);
        let r_sym = vrem.vocab.int(stats.rows as i64);
        let c_sym = vrem.vocab.int(stats.cols as i64);
        let d_sym = crate::encode::density_sym(vrem, stats.density);
        let name_pred = vrem.name;
        let size_pred = vrem.size;
        let density_pred = vrem.density;

        let mut enc = CqEncoder::new(vrem, cat).with_sizes();
        let root = enc.enc(def)?;
        let body_sized = enc.atoms;
        // The IO premise must not demand `size`/`density` facts: classes
        // the chase itself creates (re-associations etc.) may carry none,
        // and they are exactly the subexpressions worth landing on the
        // view. `with_sizes` only appends atoms, so filtering keeps
        // variable numbering intact.
        let body_bare: Vec<Atom> = body_sized
            .iter()
            .filter(|a| a.pred != size_pred && a.pred != density_pred)
            .cloned()
            .collect();

        let name_atom = Atom::new(name_pred, vec![Term::Var(root), Term::Const(view_sym)]);
        let size_atom =
            Atom::new(size_pred, vec![Term::Var(root), Term::Const(r_sym), Term::Const(c_sym)]);
        let density_atom = Atom::new(density_pred, vec![Term::Var(root), Term::Const(d_sym)]);
        Ok(vec![
            Tgd::new(
                format!("V_IO:{view_name}"),
                body_bare,
                vec![name_atom.clone(), size_atom, density_atom],
            )
            .into(),
            Tgd::new(format!("V_OI:{view_name}"), vec![name_atom], body_sized).into(),
        ])
    }

    /// Dimension- and density-propagating TGDs: classes the *chase*
    /// creates (re-associations, transposed factors, view expansions)
    /// inherit `size` facts from their operands — previously extraction
    /// re-inferred shapes bottom-up and the chase itself was blind to what
    /// an intermediate costs, which is what kept `Prune_prov` off the LA
    /// path. Dimensions propagate wherever they follow from variable
    /// sharing alone (Kron/DirectSum need arithmetic and are left to the
    /// in-process estimator); densities propagate where the estimate is
    /// exactly the operand's (transpose, reverse, scalar scaling) — the
    /// cost oracle computes the multiplicative cases from operand facts.
    pub fn propagation_rules(vrem: &mut Vrem) -> Vec<Constraint> {
        use OpKind::*;
        let size = vrem.size;
        let density = vrem.density;
        let one = vrem.vocab.int(1);
        let mut out: Vec<Constraint> = Vec::new();
        let mut rule = |name: String, premise: Vec<Atom>, conclusion: Vec<Atom>| {
            out.push(Tgd::new(name, premise, conclusion).into());
        };

        for &kind in OpKind::all() {
            let op = vrem.op(kind);
            let name = format!("size-{}", kind.pred_name());
            match kind {
                // size(o) = size(a) for same-shape binary operators.
                Add | Hadamard | Div => rule(
                    name,
                    vec![
                        Atom::new(op, vec![v(0), v(1), v(2)]),
                        Atom::new(size, vec![v(0), v(3), v(4)]),
                    ],
                    vec![Atom::new(size, vec![v(2), v(3), v(4)])],
                ),
                // multiM(a, b, o) with a: r×k, b: k×c gives o: r×c.
                Mul => rule(
                    name,
                    vec![
                        Atom::new(op, vec![v(0), v(1), v(2)]),
                        Atom::new(size, vec![v(0), v(3), v(4)]),
                        Atom::new(size, vec![v(1), v(4), v(5)]),
                    ],
                    vec![Atom::new(size, vec![v(2), v(3), v(5)])],
                ),
                ScalarMul => rule(
                    name,
                    vec![
                        Atom::new(op, vec![v(0), v(1), v(2)]),
                        Atom::new(size, vec![v(1), v(3), v(4)]),
                    ],
                    vec![Atom::new(size, vec![v(2), v(3), v(4)])],
                ),
                Transpose => rule(
                    name,
                    vec![
                        Atom::new(op, vec![v(0), v(1)]),
                        Atom::new(size, vec![v(0), v(2), v(3)]),
                    ],
                    vec![Atom::new(size, vec![v(1), v(3), v(2)])],
                ),
                Rev | Inv | Adj | Exp | Cho => rule(
                    name,
                    vec![
                        Atom::new(op, vec![v(0), v(1)]),
                        Atom::new(size, vec![v(0), v(2), v(3)]),
                    ],
                    vec![Atom::new(size, vec![v(1), v(2), v(3)])],
                ),
                // Both decomposition outputs share the (square) input shape.
                Qr | Lu => rule(
                    name,
                    vec![
                        Atom::new(op, vec![v(0), v(1), v(2)]),
                        Atom::new(size, vec![v(0), v(3), v(4)]),
                    ],
                    vec![
                        Atom::new(size, vec![v(1), v(3), v(4)]),
                        Atom::new(size, vec![v(2), v(3), v(4)]),
                    ],
                ),
                Diag => rule(
                    name,
                    vec![
                        Atom::new(op, vec![v(0), v(1)]),
                        Atom::new(size, vec![v(0), v(2), v(3)]),
                    ],
                    vec![Atom::new(size, vec![v(1), v(2), Term::Const(one)])],
                ),
                RowSums | RowMeans | RowMin | RowMax | RowVar => rule(
                    name,
                    vec![
                        Atom::new(op, vec![v(0), v(1)]),
                        Atom::new(size, vec![v(0), v(2), v(3)]),
                    ],
                    vec![Atom::new(size, vec![v(1), v(2), Term::Const(one)])],
                ),
                ColSums | ColMeans | ColMin | ColMax | ColVar => rule(
                    name,
                    vec![
                        Atom::new(op, vec![v(0), v(1)]),
                        Atom::new(size, vec![v(0), v(2), v(3)]),
                    ],
                    vec![Atom::new(size, vec![v(1), Term::Const(one), v(3)])],
                ),
                Det | Trace | Sum | Min | Max | Mean | Var => rule(
                    name,
                    vec![Atom::new(op, vec![v(0), v(1)])],
                    vec![Atom::new(size, vec![v(1), Term::Const(one), Term::Const(one)])],
                ),
                // Output dims are products/sums of operand dims: arithmetic
                // the chase cannot do; the extractor's op_stats covers them.
                Kron | DirectSum => {}
            }
        }

        // Exact density transfers.
        let tr = vrem.op(Transpose);
        let rev = vrem.op(Rev);
        let smul = vrem.op(ScalarMul);
        rule(
            "dens-tr".into(),
            vec![Atom::new(tr, vec![v(0), v(1)]), Atom::new(density, vec![v(0), v(2)])],
            vec![Atom::new(density, vec![v(1), v(2)])],
        );
        rule(
            "dens-rev".into(),
            vec![Atom::new(rev, vec![v(0), v(1)]), Atom::new(density, vec![v(0), v(2)])],
            vec![Atom::new(density, vec![v(1), v(2)])],
        );
        rule(
            "dens-multiMS".into(),
            vec![Atom::new(smul, vec![v(0), v(1), v(2)]), Atom::new(density, vec![v(1), v(3)])],
            vec![Atom::new(density, vec![v(2), v(3)])],
        );

        out
    }

    /// Decomposition recomposition and implied structural flags (§6.2.5).
    pub fn decomposition_rules(vrem: &mut Vrem) -> Vec<Constraint> {
        let mul = vrem.op(OpKind::Mul);
        let tr = vrem.op(OpKind::Transpose);
        let cho = vrem.op(OpKind::Cho);
        let qr = vrem.op(OpKind::Qr);
        let lu = vrem.op(OpKind::Lu);
        let ty = vrem.ty;
        let sym_s = vrem.vocab.constant("S");
        let sym_l = vrem.vocab.constant("L");
        let sym_u = vrem.vocab.constant("U");
        let sym_o = vrem.vocab.constant("O");

        vec![
            // M symmetric PD with CHO(M, L): L Lᵀ = M, and L is lower
            // triangular.
            Tgd::new(
                "cho-recompose",
                vec![
                    Atom::new(ty, vec![v(0), Term::Const(sym_s)]),
                    Atom::new(cho, vec![v(0), v(1)]),
                ],
                vec![
                    Atom::new(tr, vec![v(1), v(2)]),
                    Atom::new(mul, vec![v(1), v(2), v(0)]),
                    Atom::new(ty, vec![v(1), Term::Const(sym_l)]),
                ],
            )
            .into(),
            // QR(M) = [Q, R]: Q R = M, Q orthogonal, R upper triangular.
            Tgd::new(
                "qr-recompose",
                vec![Atom::new(qr, vec![v(0), v(1), v(2)])],
                vec![
                    Atom::new(mul, vec![v(1), v(2), v(0)]),
                    Atom::new(ty, vec![v(1), Term::Const(sym_o)]),
                    Atom::new(ty, vec![v(2), Term::Const(sym_u)]),
                ],
            )
            .into(),
            // LU(M) = [L, U]: L U = M, L lower / U upper triangular.
            Tgd::new(
                "lu-recompose",
                vec![Atom::new(lu, vec![v(0), v(1), v(2)])],
                vec![
                    Atom::new(mul, vec![v(1), v(2), v(0)]),
                    Atom::new(ty, vec![v(1), Term::Const(sym_l)]),
                    Atom::new(ty, vec![v(2), Term::Const(sym_u)]),
                ],
            )
            .into(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::Encoder;
    use crate::expr::dsl::*;
    use crate::extract::{Extractor, TreeSizeCost};
    use crate::stats::{MatrixMeta, MetaCatalog, TypeFlags};
    use hadad_chase::{ChaseBudget, ChaseEngine, ChaseOutcome};

    fn chase_of(
        e: &crate::expr::Expr,
        cat: &MetaCatalog,
    ) -> (Vrem, hadad_chase::Instance, hadad_chase::NodeId, ChaseOutcome) {
        let mut vrem = Vrem::new();
        let enc = Encoder::new(&mut vrem, cat).encode(e).unwrap();
        let catalogue = Catalogue::standard(&mut vrem);
        let engine = ChaseEngine::new(catalogue.constraints).with_budget(ChaseBudget {
            max_rounds: 8,
            max_facts: 20_000,
            max_nulls: 10_000,
            deadline: None,
        });
        let mut inst = enc.instance;
        let (outcome, _) = engine.chase(&mut inst);
        (vrem, inst, enc.root, outcome)
    }

    #[test]
    fn standard_catalogue_is_well_formed() {
        let mut vrem = Vrem::new();
        let c = Catalogue::standard(&mut vrem);
        // Every operator gets a functional EGD plus the structural and
        // decomposition groups.
        assert!(c.constraints.len() > OpKind::all().len());
        assert!(c.names().contains(&"trace-cyclic"));
        assert!(c.names().contains(&"I_multiM"));
        assert!(c.names().contains(&"qr-recompose"));
    }

    #[test]
    fn trace_cyclic_derives_rotated_product() {
        let mut cat = MetaCatalog::new();
        cat.register("A", MatrixMeta::dense(30, 4));
        cat.register("B", MatrixMeta::dense(4, 30));
        let e = trace(mul(m("A"), m("B")));
        let (vrem, inst, root, _) = chase_of(&e, &cat);
        let ex = Extractor::new(&vrem, &inst, &TreeSizeCost);
        let cands = ex.candidates(root);
        let strs: Vec<String> = cands.iter().map(std::string::ToString::to_string).collect();
        assert!(strs.contains(&"trace((A B))".to_string()), "{strs:?}");
        assert!(strs.contains(&"trace((B A))".to_string()), "{strs:?}");
    }

    #[test]
    fn double_transpose_collapses() {
        let mut cat = MetaCatalog::new();
        cat.register("A", MatrixMeta::dense(6, 4));
        let e = t(t(m("A")));
        let (vrem, inst, root, outcome) = chase_of(&e, &cat);
        assert_eq!(outcome, ChaseOutcome::Saturated);
        let ex = Extractor::new(&vrem, &inst, &TreeSizeCost);
        assert_eq!(ex.extract(root).unwrap(), m("A"));
    }

    #[test]
    fn qr_recomposition_reaches_input() {
        // trace(Q·R) where [Q,R] = QR(D) must land in trace(D)'s class.
        let mut cat = MetaCatalog::new();
        cat.register("D", MatrixMeta::dense(8, 8));
        let e = trace(mul(
            crate::expr::Expr::QrQ(Box::new(m("D"))),
            crate::expr::Expr::QrR(Box::new(m("D"))),
        ));
        let (vrem, inst, root, _) = chase_of(&e, &cat);
        let ex = Extractor::new(&vrem, &inst, &TreeSizeCost);
        assert_eq!(ex.extract(root).unwrap(), trace(m("D")));
    }

    #[test]
    fn cholesky_recomposition_uses_type_flag() {
        let mut cat = MetaCatalog::new();
        cat.register(
            "S",
            MatrixMeta::dense(6, 6)
                .with_flags(TypeFlags { symmetric_pd: true, ..Default::default() }),
        );
        // cho(S) · cho(S)ᵀ = S.
        let e = mul(cho(m("S")), t(cho(m("S"))));
        let (vrem, inst, root, _) = chase_of(&e, &cat);
        let ex = Extractor::new(&vrem, &inst, &TreeSizeCost);
        assert_eq!(ex.extract(root).unwrap(), m("S"));
    }

    #[test]
    fn identity_collapses_product() {
        let mut cat = MetaCatalog::new();
        cat.register("A", MatrixMeta::dense(5, 5));
        let e = mul(m("A"), crate::expr::Expr::Identity(5));
        let (vrem, inst, root, _) = chase_of(&e, &cat);
        let ex = Extractor::new(&vrem, &inst, &TreeSizeCost);
        assert_eq!(ex.extract(root).unwrap(), m("A"));
    }

    #[test]
    fn name_unique_egd_merges_same_named_classes() {
        // Two instances of the same base-matrix leaf encoded separately
        // (encode_many shares the memo, so go through two sub-expressions
        // that differ syntactically but share the leaf under V_OI-style
        // duplication): insert a duplicate name fact manually.
        let mut vrem = Vrem::new();
        let mut cat = MetaCatalog::new();
        cat.register("A", MatrixMeta::dense(4, 4));
        let enc = Encoder::new(&mut vrem, &cat).encode(&m("A")).unwrap();
        let mut inst = enc.instance;
        let sym = vrem.vocab.constant("A");
        let dup = inst.fresh_null();
        let sn = inst.const_node(sym);
        inst.insert(vrem.name, vec![dup, sn], hadad_chase::Provenance::empty(), None);
        let engine = ChaseEngine::new(Catalogue::standard(&mut vrem).constraints);
        let (outcome, _) = engine.chase(&mut inst);
        assert_eq!(outcome, ChaseOutcome::Saturated);
        assert_eq!(inst.find(dup), inst.find(enc.root));
    }

    /// `V_IO`: a query subexpression matching a registered view's
    /// definition gains the view's `name` fact, and extraction can land on
    /// the zero-extra-cost `Mat(view)` leaf.
    #[test]
    fn view_io_lands_query_on_view_leaf() {
        let mut cat = MetaCatalog::new();
        cat.register("A", MatrixMeta::dense(30, 4));
        cat.register("B", MatrixMeta::dense(4, 30));
        let mut vrem = Vrem::new();
        let e = trace(mul(m("A"), m("B")));
        let enc = Encoder::new(&mut vrem, &cat).encode(&e).unwrap();
        let mut catalogue = Catalogue::standard(&mut vrem);
        catalogue.constraints.extend(
            Catalogue::la_view_constraints(&mut vrem, &cat, "W", &mul(m("A"), m("B"))).unwrap(),
        );
        let engine = ChaseEngine::new(catalogue.constraints);
        let mut inst = enc.instance;
        engine.chase(&mut inst);
        let ex = Extractor::new(&vrem, &inst, &TreeSizeCost);
        // trace(W) (size 2) beats trace((A B)) (size 4) under tree size.
        assert_eq!(ex.extract(enc.root).unwrap(), trace(m("W")));
        let strs: Vec<String> =
            ex.candidates(enc.root).iter().map(std::string::ToString::to_string).collect();
        assert!(strs.contains(&"trace(W)".to_string()), "{strs:?}");
    }

    /// `V_OI`: a query *using* the view name expands into the definition,
    /// so rewriting can continue through it (here: nothing better exists,
    /// but both derivations are decodable and shapes are known for the
    /// expanded leaves via the emitted `size` atoms + `name-unique`).
    #[test]
    fn view_oi_expands_view_uses() {
        let mut cat = MetaCatalog::new();
        cat.register("A", MatrixMeta::dense(6, 4));
        cat.register("B", MatrixMeta::dense(4, 6));
        cat.register("W", MatrixMeta::dense(6, 6));
        cat.register("x", MatrixMeta::dense(6, 1));
        let mut vrem = Vrem::new();
        let e = mul(m("W"), m("x"));
        let enc = Encoder::new(&mut vrem, &cat).encode(&e).unwrap();
        let mut catalogue = Catalogue::standard(&mut vrem);
        catalogue.constraints.extend(
            Catalogue::la_view_constraints(&mut vrem, &cat, "W", &mul(m("A"), m("B"))).unwrap(),
        );
        let engine = ChaseEngine::new(catalogue.constraints);
        let mut inst = enc.instance;
        let (outcome, _) = engine.chase(&mut inst);
        assert_eq!(outcome, ChaseOutcome::Saturated);
        let ex = Extractor::new(&vrem, &inst, &TreeSizeCost);
        let strs: Vec<String> =
            ex.candidates(enc.root).iter().map(std::string::ToString::to_string).collect();
        // The expansion feeds the structural rules: re-association through
        // the view definition surfaces at the root.
        assert!(strs.contains(&"(W x)".to_string()), "{strs:?}");
        assert!(strs.contains(&"(A (B x))".to_string()), "{strs:?}");
        // The W leaf class itself now carries the expanded derivation too.
        let w_sym = vrem.vocab.constant("W");
        let w_class = inst
            .facts()
            .iter()
            .find(|f| f.pred == vrem.name && inst.const_of(inst.find(f.args[1])) == Some(w_sym))
            .map(|f| inst.find(f.args[0]))
            .unwrap();
        let w_strs: Vec<String> =
            ex.candidates(w_class).iter().map(std::string::ToString::to_string).collect();
        assert!(w_strs.contains(&"W".to_string()), "{w_strs:?}");
        assert!(w_strs.contains(&"(A B)".to_string()), "{w_strs:?}");
    }

    /// Size propagation: every operator fact the chase creates gets a
    /// `size` fact for its output class — extraction and the cost oracle
    /// no longer re-infer shapes bottom-up for chase-created classes.
    #[test]
    fn chase_created_classes_carry_size_facts() {
        let mut cat = MetaCatalog::new();
        cat.register("A", MatrixMeta::dense(40, 10));
        cat.register("B", MatrixMeta::dense(10, 40));
        cat.register("x", MatrixMeta::dense(40, 1));
        let e = mul(mul(m("A"), m("B")), m("x"));
        let (vrem, inst, _, outcome) = chase_of(&e, &cat);
        assert_eq!(outcome, ChaseOutcome::Saturated);
        let sized: std::collections::HashSet<_> = inst
            .facts_with_pred(vrem.size)
            .iter()
            .map(|&i| inst.find(inst.facts()[i].args[0]))
            .collect();
        let mul_pred = vrem.op(OpKind::Mul);
        assert!(inst.facts_with_pred(mul_pred).len() > 2, "re-association happened");
        for &i in inst.facts_with_pred(mul_pred) {
            let out = inst.find(inst.facts()[i].args[2]);
            assert!(sized.contains(&out), "mul output class without size fact");
        }
        // The re-associated (B x) intermediate got the right shape.
        let ex = Extractor::new(&vrem, &inst, &TreeSizeCost);
        let bx = inst
            .facts_with_pred(mul_pred)
            .iter()
            .map(|&i| &inst.facts()[i])
            .find(|f| {
                ex.shape(f.args[0]) == Some((10, 40)) && ex.shape(f.args[1]) == Some((40, 1))
            })
            .map(|f| f.args[2])
            .expect("chase derived mul(B, x, ·)");
        assert_eq!(ex.shape(bx), Some((10, 1)));
    }

    /// Density propagation: a chase-created transpose class inherits the
    /// operand's catalogued sparsity through the `dens-tr` TGD.
    #[test]
    fn density_propagates_through_transpose() {
        let mut cat = MetaCatalog::new();
        cat.register("S", MatrixMeta::sparse(100, 50, 250)); // density 0.05
        cat.register("D", MatrixMeta::dense(100, 50));
        // (S D ᵀ-style shapes don't matter; use (D ᵀ S)ᵀ so tr-mul creates
        // transposes of both leaves.)
        let e = t(mul(t(m("D")), m("S")));
        let (mut vrem, inst, _, outcome) = chase_of(&e, &cat);
        assert_eq!(outcome, ChaseOutcome::Saturated);
        let s_sym = vrem.vocab.constant("S");
        let ex = Extractor::new(&vrem, &inst, &TreeSizeCost);
        // tr-mul derived Sᵀ (shape 50x100); its class must carry S's
        // density even though the encoder never saw that subexpression.
        let tr_pred = vrem.op(OpKind::Transpose);
        let s_class = inst
            .facts()
            .iter()
            .find(|f| f.pred == vrem.name && inst.const_of(inst.find(f.args[1])) == Some(s_sym))
            .map(|f| inst.find(f.args[0]))
            .unwrap();
        let st_class = inst
            .facts_with_pred(tr_pred)
            .iter()
            .map(|&i| &inst.facts()[i])
            .find(|f| inst.find(f.args[0]) == s_class)
            .map(|f| inst.find(f.args[1]))
            .expect("chase derived Sᵀ");
        assert_eq!(ex.density(st_class), Some(0.05));
    }

    #[test]
    fn associativity_exposes_regroupings() {
        let mut cat = MetaCatalog::new();
        cat.register("A", MatrixMeta::dense(40, 10));
        cat.register("B", MatrixMeta::dense(10, 40));
        cat.register("x", MatrixMeta::dense(40, 1));
        let e = mul(mul(m("A"), m("B")), m("x"));
        let (vrem, inst, root, _) = chase_of(&e, &cat);
        let ex = Extractor::new(&vrem, &inst, &TreeSizeCost);
        let strs: Vec<String> =
            ex.candidates(root).iter().map(std::string::ToString::to_string).collect();
        assert!(strs.contains(&"((A B) x)".to_string()), "{strs:?}");
        assert!(strs.contains(&"(A (B x))".to_string()), "{strs:?}");
    }
}
