//! `enc_LA`: relational encoding of LA expressions over VREM (paper §6.2.2,
//! Example 6.1).
//!
//! Each subexpression becomes an equivalence-class node in a canonical
//! [`Instance`]; each operator application becomes a fact of the matching
//! VREM relation whose last argument is the (fresh) result class. `size`
//! facts record static shapes, `type` facts record structural flags, and
//! base matrices are anchored by `name` facts.
//!
//! Surface subtraction is desugared to `a + (-1 · b)` so that the addition
//! property catalogue covers it; the decoder resugars (see `extract`).

use std::collections::HashMap;

use hadad_chase::{Atom, Instance, NodeId, Provenance, Term};

use crate::expr::Expr;
use crate::schema::{OpKind, Vrem, DENSITY_SCALE};
use crate::stats::{ClassStats, MetaCatalog, ShapeError, TypeFlags};

/// Interns a density as the parts-per-million integer constant the
/// `density` relation carries (shared with the view constraints in
/// `catalogue` so every `density` fact uses one encoding).
pub(crate) fn density_sym(vrem: &mut Vrem, density: f64) -> hadad_chase::SymId {
    vrem.vocab.int((density.clamp(0.0, 1.0) * DENSITY_SCALE).round() as i64)
}

/// Result of encoding an expression.
#[derive(Debug)]
pub struct Encoded {
    /// The canonical instance holding the encoded facts.
    pub instance: Instance,
    /// Class of the whole expression (the CQ head of `enc_LA(E)`).
    pub root: NodeId,
}

/// Encoder state: shares subexpression classes structurally so that e.g.
/// `M` appearing twice maps to one class even before the chase runs.
pub struct Encoder<'a> {
    /// The VREM schema facts are encoded over.
    pub vrem: &'a mut Vrem,
    /// Metadata for base-matrix stats facts.
    pub cat: &'a MetaCatalog,
    inst: Instance,
    memo: HashMap<String, NodeId>,
    /// QR/LU produce two outputs; memoized as a pair per input class.
    decomp_memo: HashMap<(OpKind, NodeId), (NodeId, NodeId)>,
}

impl<'a> Encoder<'a> {
    /// An encoder over `vrem` with metadata from `cat`.
    pub fn new(vrem: &'a mut Vrem, cat: &'a MetaCatalog) -> Self {
        Encoder {
            vrem,
            cat,
            inst: Instance::new(),
            memo: HashMap::new(),
            decomp_memo: HashMap::new(),
        }
    }

    /// Encodes `e`, returning the instance and the root class.
    pub fn encode(mut self, e: &Expr) -> Result<Encoded, ShapeError> {
        let root = self.enc(e)?;
        Ok(Encoded { instance: self.inst, root })
    }

    /// Encodes several expressions into one shared instance (used when a
    /// query and candidate views must coexist).
    pub fn encode_many(mut self, es: &[&Expr]) -> Result<(Instance, Vec<NodeId>), ShapeError> {
        let mut roots = Vec::with_capacity(es.len());
        for e in es {
            roots.push(self.enc(e)?);
        }
        Ok((self.inst, roots))
    }

    /// `size` + `density` facts: the per-class statistics the cost oracle
    /// reads. Emitted for every encoded subexpression so the chase starts
    /// from the same estimates the ranking cost model would compute.
    fn stats_facts(&mut self, node: NodeId, stats: ClassStats) {
        let r = self.vrem.vocab.int(stats.rows as i64);
        let c = self.vrem.vocab.int(stats.cols as i64);
        let rn = self.inst.const_node(r);
        let cn = self.inst.const_node(c);
        self.inst.insert(self.vrem.size, vec![node, rn, cn], Provenance::empty(), None);
        let d = density_sym(self.vrem, stats.density);
        let dn = self.inst.const_node(d);
        self.inst.insert(self.vrem.density, vec![node, dn], Provenance::empty(), None);
    }

    fn type_facts(&mut self, node: NodeId, flags: TypeFlags) {
        let add = |enc: &mut Self, tag: &str| {
            let sym = enc.vrem.vocab.constant(tag);
            let sn = enc.inst.const_node(sym);
            enc.inst.insert(enc.vrem.ty, vec![node, sn], Provenance::empty(), None);
        };
        if flags.symmetric_pd {
            add(self, "S");
        }
        if flags.lower_triangular {
            add(self, "L");
        }
        if flags.upper_triangular {
            add(self, "U");
        }
        if flags.orthogonal {
            add(self, "O");
        }
    }

    fn op_fact(&mut self, kind: OpKind, inputs: &[NodeId], out: NodeId) {
        let pred = self.vrem.op(kind);
        let mut args = inputs.to_vec();
        args.push(out);
        self.inst.insert(pred, args, Provenance::empty(), None);
    }

    fn enc(&mut self, e: &Expr) -> Result<NodeId, ShapeError> {
        let key = format!("{e}");
        if let Some(&n) = self.memo.get(&key) {
            return Ok(n);
        }
        let node = self.enc_uncached(e)?;
        self.memo.insert(key, node);
        Ok(node)
    }

    fn enc_uncached(&mut self, e: &Expr) -> Result<NodeId, ShapeError> {
        use Expr::*;
        let stats = crate::stats::expr_stats(e, self.cat)?;
        let node = match e {
            Mat(n) => {
                let meta =
                    self.cat.get(n).ok_or_else(|| ShapeError::UnknownMatrix(n.clone()))?;
                let sym = self.vrem.vocab.constant(n);
                let sn = self.inst.const_node(sym);
                let class = self.inst.fresh_null();
                self.inst.insert(self.vrem.name, vec![class, sn], Provenance::empty(), None);
                self.type_facts(class, meta.flags);
                class
            }
            Const(v) => {
                let sym = self.vrem.vocab.constant(format!("{v}"));
                let sn = self.inst.const_node(sym);
                let class = self.inst.fresh_null();
                self.inst.insert(self.vrem.lit, vec![class, sn], Provenance::empty(), None);
                class
            }
            Identity(_) => {
                let class = self.inst.fresh_null();
                self.inst.insert(self.vrem.identity, vec![class], Provenance::empty(), None);
                class
            }
            Zero(..) => {
                let class = self.inst.fresh_null();
                self.inst.insert(self.vrem.zero, vec![class], Provenance::empty(), None);
                class
            }
            Sub(a, b) => {
                // Desugar: a - b = a + (-1 · b).
                let desugared =
                    Add(a.clone(), Box::new(ScalarMul(Box::new(Const(-1.0)), b.clone())));
                return self.enc(&desugared);
            }
            Add(a, b) => self.binary(OpKind::Add, a, b)?,
            Mul(a, b) => self.binary(OpKind::Mul, a, b)?,
            Hadamard(a, b) => self.binary(OpKind::Hadamard, a, b)?,
            Div(a, b) => self.binary(OpKind::Div, a, b)?,
            Kron(a, b) => self.binary(OpKind::Kron, a, b)?,
            DirectSum(a, b) => self.binary(OpKind::DirectSum, a, b)?,
            ScalarMul(s, a) => self.binary(OpKind::ScalarMul, s, a)?,
            Transpose(a) => self.unary(OpKind::Transpose, a)?,
            Inv(a) => self.unary(OpKind::Inv, a)?,
            Adj(a) => self.unary(OpKind::Adj, a)?,
            Exp(a) => self.unary(OpKind::Exp, a)?,
            Diag(a) => self.unary(OpKind::Diag, a)?,
            Rev(a) => self.unary(OpKind::Rev, a)?,
            RowSums(a) => self.unary(OpKind::RowSums, a)?,
            ColSums(a) => self.unary(OpKind::ColSums, a)?,
            RowMeans(a) => self.unary(OpKind::RowMeans, a)?,
            ColMeans(a) => self.unary(OpKind::ColMeans, a)?,
            RowMin(a) => self.unary(OpKind::RowMin, a)?,
            RowMax(a) => self.unary(OpKind::RowMax, a)?,
            ColMin(a) => self.unary(OpKind::ColMin, a)?,
            ColMax(a) => self.unary(OpKind::ColMax, a)?,
            RowVar(a) => self.unary(OpKind::RowVar, a)?,
            ColVar(a) => self.unary(OpKind::ColVar, a)?,
            Det(a) => self.unary(OpKind::Det, a)?,
            Trace(a) => self.unary(OpKind::Trace, a)?,
            Sum(a) => self.unary(OpKind::Sum, a)?,
            Min(a) => self.unary(OpKind::Min, a)?,
            Max(a) => self.unary(OpKind::Max, a)?,
            Mean(a) => self.unary(OpKind::Mean, a)?,
            Var(a) => self.unary(OpKind::Var, a)?,
            Cho(a) => self.unary(OpKind::Cho, a)?,
            QrQ(a) => self.decomp(OpKind::Qr, a)?.0,
            QrR(a) => self.decomp(OpKind::Qr, a)?.1,
            LuL(a) => self.decomp(OpKind::Lu, a)?.0,
            LuU(a) => self.decomp(OpKind::Lu, a)?.1,
        };
        self.stats_facts(node, stats);
        Ok(node)
    }

    fn binary(&mut self, kind: OpKind, a: &Expr, b: &Expr) -> Result<NodeId, ShapeError> {
        let an = self.enc(a)?;
        let bn = self.enc(b)?;
        let out = self.inst.fresh_null();
        self.op_fact(kind, &[an, bn], out);
        Ok(out)
    }

    fn unary(&mut self, kind: OpKind, a: &Expr) -> Result<NodeId, ShapeError> {
        let an = self.enc(a)?;
        let out = self.inst.fresh_null();
        self.op_fact(kind, &[an], out);
        Ok(out)
    }

    /// QR / LU: one fact with two output classes, memoized per input.
    fn decomp(&mut self, kind: OpKind, a: &Expr) -> Result<(NodeId, NodeId), ShapeError> {
        let an = self.enc(a)?;
        if let Some(&pair) = self.decomp_memo.get(&(kind, an)) {
            return Ok(pair);
        }
        let o1 = self.inst.fresh_null();
        let o2 = self.inst.fresh_null();
        let pred = self.vrem.op(kind);
        self.inst.insert(pred, vec![an, o1, o2], Provenance::empty(), None);
        self.decomp_memo.insert((kind, an), (o1, o2));
        Ok((o1, o2))
    }
}

/// Encodes an expression as a conjunctive-query body over VREM, with
/// variables in place of classes. Used for view definitions (`enc_LA(V)`,
/// §6.2.4, Figure 3): the returned atoms form a TGD premise and
/// `root_var` is the variable holding the view's output class.
pub struct CqEncoder<'a> {
    /// The VREM schema atoms are built over.
    pub vrem: &'a mut Vrem,
    /// Metadata for constant stats atoms.
    pub cat: &'a MetaCatalog,
    /// The accumulated CQ body.
    pub atoms: Vec<Atom>,
    next_var: u32,
    memo: HashMap<String, u32>,
    /// When set, `size(v, r, c)` and `density(v, d)` atoms (constant
    /// stats) are emitted per encoded subexpression, so TGD conclusions
    /// built from these atoms carry shapes and sparsity for classes the
    /// chase creates (view-leaf stats in extraction and the cost oracle
    /// rely on this).
    emit_sizes: bool,
}

impl<'a> CqEncoder<'a> {
    /// A CQ encoder over `vrem` with metadata from `cat`.
    pub fn new(vrem: &'a mut Vrem, cat: &'a MetaCatalog) -> Self {
        CqEncoder {
            vrem,
            cat,
            atoms: Vec::new(),
            next_var: 0,
            memo: HashMap::new(),
            emit_sizes: false,
        }
    }

    /// Enables per-subexpression `size` + `density` atoms.
    pub fn with_sizes(mut self) -> Self {
        self.emit_sizes = true;
        self
    }

    /// A fresh CQ variable.
    pub fn fresh_var(&mut self) -> u32 {
        let v = self.next_var;
        self.next_var += 1;
        v
    }

    /// Encodes `e`; returns the variable of its class.
    pub fn enc(&mut self, e: &Expr) -> Result<u32, ShapeError> {
        use Expr::*;
        let key = format!("{e}");
        if let Some(&v) = self.memo.get(&key) {
            return Ok(v);
        }
        // Validate shapes eagerly (errors surface at view-registration time).
        let stats = crate::stats::expr_stats(e, self.cat)?;
        let var = match e {
            Mat(n) => {
                let sym = self.vrem.vocab.constant(n);
                let v = self.fresh_var();
                self.atoms
                    .push(Atom::new(self.vrem.name, vec![Term::Var(v), Term::Const(sym)]));
                v
            }
            Const(c) => {
                let sym = self.vrem.vocab.constant(format!("{c}"));
                let v = self.fresh_var();
                self.atoms.push(Atom::new(self.vrem.lit, vec![Term::Var(v), Term::Const(sym)]));
                v
            }
            Identity(_) => {
                let v = self.fresh_var();
                self.atoms.push(Atom::new(self.vrem.identity, vec![Term::Var(v)]));
                v
            }
            Zero(..) => {
                let v = self.fresh_var();
                self.atoms.push(Atom::new(self.vrem.zero, vec![Term::Var(v)]));
                v
            }
            Sub(a, b) => {
                let desugared =
                    Add(a.clone(), Box::new(ScalarMul(Box::new(Const(-1.0)), b.clone())));
                return self.enc(&desugared);
            }
            QrQ(a) | QrR(a) | LuL(a) | LuU(a) => {
                let kind = match e {
                    QrQ(_) | QrR(_) => OpKind::Qr,
                    _ => OpKind::Lu,
                };
                let first = matches!(e, QrQ(_) | LuL(_));
                let an = self.enc(a)?;
                let dkey = format!("{}({a})", kind.pred_name());
                let (o1, o2) = if let Some(&v1) = self.memo.get(&dkey) {
                    (v1, v1 + 1)
                } else {
                    let o1 = self.fresh_var();
                    let o2 = self.fresh_var();
                    debug_assert_eq!(o2, o1 + 1);
                    self.memo.insert(dkey, o1);
                    self.atoms.push(Atom::new(
                        self.vrem.op(kind),
                        vec![Term::Var(an), Term::Var(o1), Term::Var(o2)],
                    ));
                    (o1, o2)
                };
                if first {
                    o1
                } else {
                    o2
                }
            }
            _ => {
                // Generic operator node.
                let kind = op_kind_of(e).expect("leaves handled above");
                let child_vars: Vec<u32> =
                    e.children().iter().map(|c| self.enc(c)).collect::<Result<_, _>>()?;
                let out = self.fresh_var();
                let mut args: Vec<Term> = child_vars.into_iter().map(Term::Var).collect();
                args.push(Term::Var(out));
                self.atoms.push(Atom::new(self.vrem.op(kind), args));
                out
            }
        };
        if self.emit_sizes {
            let r = self.vrem.vocab.int(stats.rows as i64);
            let c = self.vrem.vocab.int(stats.cols as i64);
            self.atoms.push(Atom::new(
                self.vrem.size,
                vec![Term::Var(var), Term::Const(r), Term::Const(c)],
            ));
            let d = density_sym(self.vrem, stats.density);
            self.atoms.push(Atom::new(self.vrem.density, vec![Term::Var(var), Term::Const(d)]));
        }
        self.memo.insert(key, var);
        Ok(var)
    }
}

/// Operator kind of a non-leaf expression (decomposition accessors excluded:
/// they need special two-output handling).
pub fn op_kind_of(e: &Expr) -> Option<OpKind> {
    use Expr::*;
    Some(match e {
        Add(..) | Sub(..) => OpKind::Add,
        Mul(..) => OpKind::Mul,
        Hadamard(..) => OpKind::Hadamard,
        Div(..) => OpKind::Div,
        Kron(..) => OpKind::Kron,
        DirectSum(..) => OpKind::DirectSum,
        ScalarMul(..) => OpKind::ScalarMul,
        Transpose(..) => OpKind::Transpose,
        Inv(..) => OpKind::Inv,
        Adj(..) => OpKind::Adj,
        Exp(..) => OpKind::Exp,
        Diag(..) => OpKind::Diag,
        Rev(..) => OpKind::Rev,
        RowSums(..) => OpKind::RowSums,
        ColSums(..) => OpKind::ColSums,
        RowMeans(..) => OpKind::RowMeans,
        ColMeans(..) => OpKind::ColMeans,
        RowMin(..) => OpKind::RowMin,
        RowMax(..) => OpKind::RowMax,
        ColMin(..) => OpKind::ColMin,
        ColMax(..) => OpKind::ColMax,
        RowVar(..) => OpKind::RowVar,
        ColVar(..) => OpKind::ColVar,
        Det(..) => OpKind::Det,
        Trace(..) => OpKind::Trace,
        Sum(..) => OpKind::Sum,
        Min(..) => OpKind::Min,
        Max(..) => OpKind::Max,
        Mean(..) => OpKind::Mean,
        Var(..) => OpKind::Var,
        Cho(..) => OpKind::Cho,
        Mat(_) | Const(_) | Identity(_) | Zero(..) | QrQ(_) | QrR(_) | LuL(_) | LuU(_) => {
            return None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::dsl::*;
    use crate::stats::MatrixMeta;

    fn cat() -> MetaCatalog {
        let mut c = MetaCatalog::new();
        c.register("M", MatrixMeta::dense(100, 10));
        c.register("N", MatrixMeta::dense(10, 100));
        c
    }

    /// Paper Example 6.1: enc((MN)^T) produces tr, multiM, and name atoms.
    #[test]
    fn example_6_1() {
        let mut vrem = Vrem::new();
        let c = cat();
        let e = t(mul(m("M"), m("N")));
        let enc = Encoder::new(&mut vrem, &c).encode(&e).unwrap();
        let inst = &enc.instance;
        assert_eq!(inst.facts_with_pred(vrem.name).len(), 2);
        assert_eq!(inst.facts_with_pred(vrem.op(OpKind::Mul)).len(), 1);
        assert_eq!(inst.facts_with_pred(vrem.op(OpKind::Transpose)).len(), 1);
        // The transpose fact's output is the root.
        let tr_fact = &inst.facts()[inst.facts_with_pred(vrem.op(OpKind::Transpose))[0]];
        assert_eq!(inst.find(tr_fact.args[1]), inst.find(enc.root));
        // size + density facts for M, N, MN, (MN)^T.
        assert_eq!(inst.facts_with_pred(vrem.size).len(), 4);
        assert_eq!(inst.facts_with_pred(vrem.density).len(), 4);
    }

    #[test]
    fn shared_subexpressions_share_classes() {
        let mut vrem = Vrem::new();
        let mut c = cat();
        c.register("D", MatrixMeta::dense(10, 10));
        // D*D: one name fact, one class for D.
        let e = mul(m("D"), m("D"));
        let enc = Encoder::new(&mut vrem, &c).encode(&e).unwrap();
        assert_eq!(enc.instance.facts_with_pred(vrem.name).len(), 1);
    }

    #[test]
    fn subtraction_desugars_to_addition() {
        let mut vrem = Vrem::new();
        let mut c = MetaCatalog::new();
        c.register("A", MatrixMeta::dense(5, 5));
        c.register("B", MatrixMeta::dense(5, 5));
        let e = sub(m("A"), m("B"));
        let enc = Encoder::new(&mut vrem, &c).encode(&e).unwrap();
        assert_eq!(enc.instance.facts_with_pred(vrem.op(OpKind::Add)).len(), 1);
        assert_eq!(enc.instance.facts_with_pred(vrem.op(OpKind::ScalarMul)).len(), 1);
        assert_eq!(enc.instance.facts_with_pred(vrem.lit).len(), 1);
    }

    #[test]
    fn qr_components_share_one_fact() {
        let mut vrem = Vrem::new();
        let mut c = MetaCatalog::new();
        c.register("D", MatrixMeta::dense(8, 8));
        let e = mul(Expr::QrQ(Box::new(m("D"))), Expr::QrR(Box::new(m("D"))));
        let enc = Encoder::new(&mut vrem, &c).encode(&e).unwrap();
        assert_eq!(enc.instance.facts_with_pred(vrem.op(OpKind::Qr)).len(), 1);
    }

    #[test]
    fn cq_encoder_builds_view_premise() {
        // Figure 3: V = N^T + (M^T)^{-1}.
        let mut vrem = Vrem::new();
        let mut c = MetaCatalog::new();
        c.register("M", MatrixMeta::dense(6, 6));
        c.register("N", MatrixMeta::dense(6, 6));
        let v_def = add(t(m("N")), inv(t(m("M"))));
        let mut enc = CqEncoder::new(&mut vrem, &c);
        let root = enc.enc(&v_def).unwrap();
        // name x2, tr x2, invM, addM = 6 atoms.
        assert_eq!(enc.atoms.len(), 6);
        assert!(root > 0);
        let shape_err = CqEncoder::new(&mut vrem, &c).enc(&mul(m("M"), t(m("M"))));
        assert!(shape_err.is_ok());
    }

    #[test]
    fn cq_encoder_with_sizes_emits_stats_atoms() {
        let mut vrem = Vrem::new();
        let mut c = MetaCatalog::new();
        c.register("M", MatrixMeta::dense(6, 4));
        let four = vrem.vocab.constant("4");
        let six = vrem.vocab.constant("6");
        let full = vrem.vocab.int(1_000_000);
        let (size_pred, density_pred) = (vrem.size, vrem.density);
        let mut enc = CqEncoder::new(&mut vrem, &c).with_sizes();
        let root = enc.enc(&t(m("M"))).unwrap();
        // name(M) + size(M) + density(M) + tr + size(root) + density(root).
        assert_eq!(enc.atoms.len(), 6);
        let sizes: Vec<&Atom> = enc.atoms.iter().filter(|a| a.pred == size_pred).collect();
        assert_eq!(sizes.len(), 2);
        // The root's size atom carries the transposed constant dims.
        assert!(sizes
            .iter()
            .any(|a| a.args == vec![Term::Var(root), Term::Const(four), Term::Const(six)]));
        // Dense metadata renders as the full-scale ppm density constant.
        let dens: Vec<&Atom> = enc.atoms.iter().filter(|a| a.pred == density_pred).collect();
        assert_eq!(dens.len(), 2);
        assert!(dens.iter().all(|a| a.args[1] == Term::Const(full)));
    }

    #[test]
    fn encoder_records_catalogued_sparsity() {
        let mut vrem = Vrem::new();
        let mut c = MetaCatalog::new();
        c.register("S", MatrixMeta::sparse(100, 100, 500)); // density 0.05
        let enc = Encoder::new(&mut vrem, &c).encode(&t(m("S"))).unwrap();
        let inst = &enc.instance;
        let ppm = vrem.vocab.int(50_000);
        let dens = inst.facts_with_pred(vrem.density);
        assert_eq!(dens.len(), 2, "one density fact per subexpression");
        assert!(dens.iter().all(|&i| inst.const_of(inst.facts()[i].args[1]) == Some(ppm)));
    }

    #[test]
    fn bad_shapes_are_rejected() {
        let mut vrem = Vrem::new();
        let c = cat();
        let e = add(m("M"), m("N"));
        assert!(Encoder::new(&mut vrem, &c).encode(&e).is_err());
    }
}
