//! The hybrid LA expression language `L` (paper §3, operator set `Lops` of
//! §6.1).
//!
//! Scalars are degenerate `1x1` matrices (paper §3), so scalar arithmetic
//! reuses the matrix operators: `det(C) * det(D)` is a `Mul` of two `1x1`
//! expressions. Subtraction is kept in the surface syntax but desugared to
//! `Add(a, ScalarMul(-1, b))` by the relational encoder so that every
//! addition property applies to it for free; the decoder resugars.

use std::fmt;

/// A hybrid linear-algebra expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Base matrix (or materialized view) identified by name.
    Mat(String),
    /// Literal scalar, as a 1x1 matrix.
    Const(f64),
    /// Identity matrix of order `n`.
    Identity(usize),
    /// Zero matrix.
    Zero(usize, usize),

    // -- binary --
    /// Matrix addition.
    Add(Box<Expr>, Box<Expr>),
    /// Matrix subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Matrix product.
    Mul(Box<Expr>, Box<Expr>),
    /// Element-wise (Hadamard) product.
    Hadamard(Box<Expr>, Box<Expr>),
    /// Element-wise division.
    Div(Box<Expr>, Box<Expr>),
    /// Kronecker / direct product (paper `product_D`).
    Kron(Box<Expr>, Box<Expr>),
    /// Direct sum (paper `sum_D`).
    DirectSum(Box<Expr>, Box<Expr>),
    /// Scalar-matrix product; the first operand must be scalar (1x1).
    ScalarMul(Box<Expr>, Box<Expr>),

    // -- unary, matrix-valued --
    /// Transposition.
    Transpose(Box<Expr>),
    /// Matrix inverse.
    Inv(Box<Expr>),
    /// Adjugate (classical adjoint).
    Adj(Box<Expr>),
    /// Matrix exponential.
    Exp(Box<Expr>),
    /// Diagonal of a square matrix, as a column vector.
    Diag(Box<Expr>),
    /// Row-order reversal (SystemML `rev`).
    Rev(Box<Expr>),
    /// Per-row sums, as a column vector.
    RowSums(Box<Expr>),
    /// Per-column sums, as a row vector.
    ColSums(Box<Expr>),
    /// Per-row means, as a column vector.
    RowMeans(Box<Expr>),
    /// Per-column means, as a row vector.
    ColMeans(Box<Expr>),
    /// Per-row minima, as a column vector.
    RowMin(Box<Expr>),
    /// Per-row maxima, as a column vector.
    RowMax(Box<Expr>),
    /// Per-column minima, as a row vector.
    ColMin(Box<Expr>),
    /// Per-column maxima, as a row vector.
    ColMax(Box<Expr>),
    /// Per-row population variances, as a column vector.
    RowVar(Box<Expr>),
    /// Per-column population variances, as a row vector.
    ColVar(Box<Expr>),

    // -- unary, scalar-valued (1x1) --
    /// Determinant.
    Det(Box<Expr>),
    /// Trace.
    Trace(Box<Expr>),
    /// Sum of all entries.
    Sum(Box<Expr>),
    /// Minimum entry.
    Min(Box<Expr>),
    /// Maximum entry.
    Max(Box<Expr>),
    /// Mean of all entries.
    Mean(Box<Expr>),
    /// Population variance of all entries.
    Var(Box<Expr>),

    // -- decomposition component accessors --
    /// Cholesky factor `L` with `M = L L^T` (M symmetric positive definite).
    Cho(Box<Expr>),
    /// `Q` of `QR(M) = [Q, R]`.
    QrQ(Box<Expr>),
    /// `R` of `QR(M) = [Q, R]`.
    QrR(Box<Expr>),
    /// `L` of `LU(M) = [L, U]`.
    LuL(Box<Expr>),
    /// `U` of `LU(M) = [L, U]`.
    LuU(Box<Expr>),
}

impl Expr {
    /// A base matrix (or view) reference.
    pub fn mat(name: impl Into<String>) -> Expr {
        Expr::Mat(name.into())
    }

    /// `A^k` for `k >= 1`, unrolled as a left-deep multiplication chain.
    pub fn power(base: Expr, k: u32) -> Expr {
        assert!(k >= 1, "power requires k >= 1");
        let mut e = base.clone();
        for _ in 1..k {
            e = Expr::Mul(Box::new(e), Box::new(base.clone()));
        }
        e
    }

    /// Children of this node, for generic traversals.
    pub fn children(&self) -> Vec<&Expr> {
        use Expr::*;
        match self {
            Mat(_) | Const(_) | Identity(_) | Zero(..) => vec![],
            Add(a, b)
            | Sub(a, b)
            | Mul(a, b)
            | Hadamard(a, b)
            | Div(a, b)
            | Kron(a, b)
            | DirectSum(a, b)
            | ScalarMul(a, b) => vec![a, b],
            Transpose(a) | Inv(a) | Adj(a) | Exp(a) | Diag(a) | Rev(a) | RowSums(a)
            | ColSums(a) | RowMeans(a) | ColMeans(a) | RowMin(a) | RowMax(a) | ColMin(a)
            | ColMax(a) | RowVar(a) | ColVar(a) | Det(a) | Trace(a) | Sum(a) | Min(a)
            | Max(a) | Mean(a) | Var(a) | Cho(a) | QrQ(a) | QrR(a) | LuL(a) | LuU(a) => {
                vec![a]
            }
        }
    }

    /// Number of operator nodes (size of the expression tree).
    pub fn node_count(&self) -> usize {
        1 + self.children().iter().map(|c| c.node_count()).sum::<usize>()
    }

    /// Names of all base matrices referenced.
    pub fn base_matrices(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_bases(&mut out);
        out
    }

    fn collect_bases<'a>(&'a self, out: &mut Vec<&'a str>) {
        if let Expr::Mat(n) = self {
            if !out.contains(&n.as_str()) {
                out.push(n);
            }
        }
        for c in self.children() {
            c.collect_bases(out);
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Expr::*;
        match self {
            Mat(n) => write!(f, "{n}"),
            Const(v) => write!(f, "{v}"),
            Identity(n) => write!(f, "I{n}"),
            Zero(r, c) => write!(f, "0[{r}x{c}]"),
            Add(a, b) => write!(f, "({a} + {b})"),
            Sub(a, b) => write!(f, "({a} - {b})"),
            Mul(a, b) => write!(f, "({a} {b})"),
            Hadamard(a, b) => write!(f, "({a} ⊙ {b})"),
            Div(a, b) => write!(f, "({a} / {b})"),
            Kron(a, b) => write!(f, "({a} ⊗ {b})"),
            DirectSum(a, b) => write!(f, "({a} ⊕ {b})"),
            ScalarMul(a, b) => write!(f, "({a} · {b})"),
            Transpose(a) => write!(f, "{a}ᵀ"),
            Inv(a) => write!(f, "{a}⁻¹"),
            Adj(a) => write!(f, "adj({a})"),
            Exp(a) => write!(f, "exp({a})"),
            Diag(a) => write!(f, "diag({a})"),
            Rev(a) => write!(f, "rev({a})"),
            RowSums(a) => write!(f, "rowSums({a})"),
            ColSums(a) => write!(f, "colSums({a})"),
            RowMeans(a) => write!(f, "rowMeans({a})"),
            ColMeans(a) => write!(f, "colMeans({a})"),
            RowMin(a) => write!(f, "rowMin({a})"),
            RowMax(a) => write!(f, "rowMax({a})"),
            ColMin(a) => write!(f, "colMin({a})"),
            ColMax(a) => write!(f, "colMax({a})"),
            RowVar(a) => write!(f, "rowVar({a})"),
            ColVar(a) => write!(f, "colVar({a})"),
            Det(a) => write!(f, "det({a})"),
            Trace(a) => write!(f, "trace({a})"),
            Sum(a) => write!(f, "sum({a})"),
            Min(a) => write!(f, "min({a})"),
            Max(a) => write!(f, "max({a})"),
            Mean(a) => write!(f, "mean({a})"),
            Var(a) => write!(f, "var({a})"),
            Cho(a) => write!(f, "cho({a})"),
            QrQ(a) => write!(f, "qr.Q({a})"),
            QrR(a) => write!(f, "qr.R({a})"),
            LuL(a) => write!(f, "lu.L({a})"),
            LuU(a) => write!(f, "lu.U({a})"),
        }
    }
}

/// Convenience constructors (keep workload definitions terse).
pub mod dsl {
    use super::Expr;

    /// [`Expr::Mat`] reference.
    pub fn m(name: &str) -> Expr {
        Expr::mat(name)
    }
    /// Scalar literal (1x1).
    pub fn lit(v: f64) -> Expr {
        Expr::Const(v)
    }
    /// `a + b`.
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Add(Box::new(a), Box::new(b))
    }
    /// `a - b`.
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Sub(Box::new(a), Box::new(b))
    }
    /// Matrix product `a b`.
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Mul(Box::new(a), Box::new(b))
    }
    /// Hadamard product.
    pub fn had(a: Expr, b: Expr) -> Expr {
        Expr::Hadamard(Box::new(a), Box::new(b))
    }
    /// Element-wise division.
    pub fn div(a: Expr, b: Expr) -> Expr {
        Expr::Div(Box::new(a), Box::new(b))
    }
    /// Scalar-matrix product (`s` must be 1x1).
    pub fn smul(s: Expr, a: Expr) -> Expr {
        Expr::ScalarMul(Box::new(s), Box::new(a))
    }
    /// Transpose.
    pub fn t(a: Expr) -> Expr {
        Expr::Transpose(Box::new(a))
    }
    /// Inverse.
    pub fn inv(a: Expr) -> Expr {
        Expr::Inv(Box::new(a))
    }
    /// Determinant.
    pub fn det(a: Expr) -> Expr {
        Expr::Det(Box::new(a))
    }
    /// Trace.
    pub fn trace(a: Expr) -> Expr {
        Expr::Trace(Box::new(a))
    }
    /// Sum of all entries.
    pub fn sum(a: Expr) -> Expr {
        Expr::Sum(Box::new(a))
    }
    /// Matrix exponential.
    pub fn exp(a: Expr) -> Expr {
        Expr::Exp(Box::new(a))
    }
    /// Per-row sums.
    pub fn row_sums(a: Expr) -> Expr {
        Expr::RowSums(Box::new(a))
    }
    /// Per-column sums.
    pub fn col_sums(a: Expr) -> Expr {
        Expr::ColSums(Box::new(a))
    }
    /// Cholesky factor `L`.
    pub fn cho(a: Expr) -> Expr {
        Expr::Cho(Box::new(a))
    }
}

#[cfg(test)]
mod tests {
    use super::dsl::*;
    use super::*;

    #[test]
    fn display_is_readable() {
        let e = t(mul(m("M"), m("N")));
        assert_eq!(e.to_string(), "(M N)ᵀ");
        let ols = mul(inv(mul(t(m("X")), m("X"))), mul(t(m("X")), m("y")));
        assert_eq!(ols.to_string(), "((Xᵀ X)⁻¹ (Xᵀ y))");
    }

    #[test]
    fn power_unrolls() {
        let e = Expr::power(m("D"), 3);
        assert_eq!(e.to_string(), "((D D) D)");
        assert_eq!(Expr::power(m("D"), 1), m("D"));
    }

    #[test]
    fn base_matrices_dedup() {
        let e = mul(m("M"), mul(m("N"), m("M")));
        assert_eq!(e.base_matrices(), vec!["M", "N"]);
    }

    #[test]
    fn node_count() {
        let e = add(m("A"), m("B"));
        assert_eq!(e.node_count(), 3);
    }
}
