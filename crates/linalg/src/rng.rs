//! Minimal deterministic PRNG (splitmix64 seeding + xoshiro256**) so the
//! workspace builds without external crates. Only the handful of draws the
//! generators in [`crate::rand_gen`] need are provided; statistical quality
//! is more than sufficient for synthetic benchmark matrices.

/// Deterministic, seedable PRNG.
#[derive(Debug, Clone)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Seeds the generator; equal seeds produce equal streams.
    pub fn new(seed: u64) -> Self {
        // splitmix64 expansion of the seed into the xoshiro state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng64 { s: [next(), next(), next(), next()] }
    }

    /// Next raw 64-bit draw (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform draw in `[0, n)`; `n` must be non-zero.
    pub fn range_usize(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        // Multiply-shift range reduction (Lemire); bias is negligible for
        // the matrix-dimension ranges used here.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform integer draw in the inclusive range `[lo, hi]`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + ((self.next_u64() as u128 * span as u128) >> 64) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::new(43);
        assert_ne!(Rng64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::new(7);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn usize_range_covers_domain() {
        let mut r = Rng64::new(5);
        let mut seen = [false; 8];
        for _ in 0..200 {
            seen[r.range_usize(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn i64_range_is_inclusive() {
        let mut r = Rng64::new(11);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..500 {
            let v = r.range_i64(1, 5);
            assert!((1..=5).contains(&v));
            lo_seen |= v == 1;
            hi_seen |= v == 5;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = Rng64::new(123);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }
}
