//! Cholesky decomposition `M = L L^T` for symmetric positive definite `M`.
//!
//! The paper's Example 6.2 hinges on the CD identity: a view `V = N + L L^T`
//! with `L = cho(M)` answers the query `M + N`. The constraint `I_cho`
//! (paper eq. 4) encodes exactly the property verified by this module's
//! tests.

use crate::dense::DenseMatrix;
use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Lower-triangular Cholesky factor `L` with `A = L L^T`.
pub fn cholesky(a: &Matrix) -> Result<DenseMatrix> {
    a.check_square("cholesky")?;
    let n = a.rows();
    let ad = a.to_dense();
    if !ad.is_symmetric(1e-9) {
        return Err(LinalgError::NotPositiveDefinite);
    }
    let mut l = DenseMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut acc = ad.get(i, j);
            for k in 0..j {
                acc -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if acc <= 0.0 {
                    return Err(LinalgError::NotPositiveDefinite);
                }
                l.set(i, j, acc.sqrt());
            } else {
                l.set(i, j, acc / l.get(j, j));
            }
        }
    }
    Ok(l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::rand_gen::random_spd;

    #[test]
    fn reconstructs_spd_matrix() {
        let a = Matrix::Dense(random_spd(8, 42));
        let l = cholesky(&a).unwrap();
        let llt = Matrix::Dense(l.clone()).multiply(&Matrix::Dense(l.transpose())).unwrap();
        assert!(approx_eq(&a, &llt, 1e-9));
    }

    #[test]
    fn factor_is_lower_triangular() {
        let a = Matrix::Dense(random_spd(5, 7));
        let l = cholesky(&a).unwrap();
        for i in 0..5 {
            for j in (i + 1)..5 {
                assert_eq!(l.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn rejects_non_spd() {
        let not_sym = Matrix::dense(2, 2, vec![1., 2., 3., 4.]);
        assert!(cholesky(&not_sym).is_err());
        let not_pd = Matrix::dense(2, 2, vec![0., 0., 0., -1.]);
        assert!(cholesky(&not_pd).is_err());
    }
}
