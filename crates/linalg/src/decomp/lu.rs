//! LU decomposition (with and without partial pivoting), and the inverse /
//! determinant / linear-solve kernels built on it.
//!
//! HADAD's constraint catalogue (Table 10) reasons about `LU(M) = [L, U]`
//! and `LUP(M) = [L, U, P]` with `P M = L U`; the engines use `inverse` and
//! `det` for pipelines like OLS `(X^T X)^{-1} (X^T y)`.

use crate::dense::DenseMatrix;
use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Result of a pivoted LU decomposition: `P * A = L * U` where `perm[i]`
/// gives the source row of output row `i`.
#[derive(Debug, Clone)]
pub struct Lup {
    /// Unit lower-triangular factor.
    pub l: DenseMatrix,
    /// Upper-triangular factor.
    pub u: DenseMatrix,
    /// Row permutation: output row `i` came from input row `perm[i]`.
    pub perm: Vec<usize>,
    /// Sign of the permutation (`+1.0` or `-1.0`).
    pub sign: f64,
}

impl Lup {
    /// Permutation as an explicit matrix `P` with `P A = L U`.
    pub fn p_matrix(&self) -> DenseMatrix {
        let n = self.perm.len();
        let mut p = DenseMatrix::zeros(n, n);
        for (i, &src) in self.perm.iter().enumerate() {
            p.set(i, src, 1.0);
        }
        p
    }
}

/// Pivoted LU via Doolittle with partial pivoting.
pub fn lup(a: &Matrix) -> Result<Lup> {
    a.check_square("lup")?;
    let n = a.rows();
    let mut u = a.to_dense();
    let mut l = DenseMatrix::identity(n);
    let mut perm: Vec<usize> = (0..n).collect();
    let mut sign = 1.0;

    for k in 0..n {
        // Pivot: largest |u[i,k]| for i >= k.
        let (mut pivot_row, mut pivot_val) = (k, u.get(k, k).abs());
        for i in (k + 1)..n {
            let v = u.get(i, k).abs();
            if v > pivot_val {
                pivot_row = i;
                pivot_val = v;
            }
        }
        if pivot_val < 1e-13 {
            return Err(LinalgError::Singular { op: "lup" });
        }
        if pivot_row != k {
            swap_rows(&mut u, k, pivot_row, n);
            swap_rows(&mut l, k, pivot_row, k); // only the computed part of L
            perm.swap(k, pivot_row);
            sign = -sign;
        }
        let pivot = u.get(k, k);
        for i in (k + 1)..n {
            let factor = u.get(i, k) / pivot;
            l.set(i, k, factor);
            if factor != 0.0 {
                for j in k..n {
                    let v = u.get(i, j) - factor * u.get(k, j);
                    u.set(i, j, v);
                }
            }
            u.set(i, k, 0.0);
        }
    }
    Ok(Lup { l, u, perm, sign })
}

/// Swaps the first `upto_col` entries of rows `a` and `b`.
fn swap_rows(m: &mut DenseMatrix, a: usize, b: usize, upto_col: usize) {
    for c in 0..upto_col {
        let (va, vb) = (m.get(a, c), m.get(b, c));
        m.set(a, c, vb);
        m.set(b, c, va);
    }
}

/// Unpivoted LU (Doolittle). Fails when a zero pivot is encountered — use
/// [`lup`] for general matrices.
pub fn lu(a: &Matrix) -> Result<(DenseMatrix, DenseMatrix)> {
    a.check_square("lu")?;
    let n = a.rows();
    let mut u = a.to_dense();
    let mut l = DenseMatrix::identity(n);
    for k in 0..n {
        let pivot = u.get(k, k);
        if pivot.abs() < 1e-13 {
            return Err(LinalgError::Singular { op: "lu" });
        }
        for i in (k + 1)..n {
            let factor = u.get(i, k) / pivot;
            l.set(i, k, factor);
            for j in k..n {
                let v = u.get(i, j) - factor * u.get(k, j);
                u.set(i, j, v);
            }
            u.set(i, k, 0.0);
        }
    }
    Ok((l, u))
}

/// Determinant via pivoted LU.
pub fn det(a: &Matrix) -> Result<f64> {
    a.check_square("det")?;
    if a.rows() == 0 {
        return Ok(1.0);
    }
    match lup(a) {
        Ok(f) => {
            let mut d = f.sign;
            for i in 0..f.u.rows() {
                d *= f.u.get(i, i);
            }
            Ok(d)
        }
        // A numerically singular matrix has determinant ~0.
        Err(LinalgError::Singular { .. }) => Ok(0.0),
        Err(e) => Err(e),
    }
}

/// Solves `A x = b` for each column of `b`, via pivoted LU.
pub fn solve(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    let f = lup(a)?;
    let n = a.rows();
    if b.rows() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "solve",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let k = b.cols();
    let mut x = DenseMatrix::zeros(n, k);
    let mut y = vec![0.0f64; n];
    for col in 0..k {
        // Forward substitution: L y = P b.
        for i in 0..n {
            let mut acc = b.get(f.perm[i], col);
            for (j, &yj) in y.iter().enumerate().take(i) {
                acc -= f.l.get(i, j) * yj;
            }
            y[i] = acc;
        }
        // Back substitution: U x = y.
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= f.u.get(i, j) * x.get(j, col);
            }
            x.set(i, col, acc / f.u.get(i, i));
        }
    }
    Ok(Matrix::Dense(x))
}

/// Matrix inverse via LU solve against the identity.
pub fn inverse(a: &Matrix) -> Result<Matrix> {
    a.check_square("inverse")?;
    solve(a, &Matrix::identity(a.rows()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn sample() -> Matrix {
        Matrix::dense(3, 3, vec![4., 3., 0., 6., 3., 2., 0., 1., 8.])
    }

    #[test]
    fn lup_reconstructs() {
        let a = sample();
        let f = lup(&a).unwrap();
        let pa = Matrix::Dense(f.p_matrix()).multiply(&a).unwrap();
        let lu_prod = Matrix::Dense(f.l.clone()).multiply(&Matrix::Dense(f.u.clone())).unwrap();
        assert!(approx_eq(&pa, &lu_prod, 1e-10));
    }

    #[test]
    fn l_is_unit_lower_u_is_upper() {
        let f = lup(&sample()).unwrap();
        for i in 0..3 {
            assert_eq!(f.l.get(i, i), 1.0);
            for j in (i + 1)..3 {
                assert_eq!(f.l.get(i, j), 0.0);
            }
            for j in 0..i {
                assert_eq!(f.u.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn det_matches_cofactor_expansion() {
        // det = 4*(3*8-2*1) - 3*(6*8-0) = 88 - 144 = -56
        assert!((det(&sample()).unwrap() - (-56.0)).abs() < 1e-9);
    }

    #[test]
    fn det_of_singular_is_zero() {
        let a = Matrix::dense(2, 2, vec![1., 2., 2., 4.]);
        assert_eq!(det(&a).unwrap(), 0.0);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = sample();
        let inv = inverse(&a).unwrap();
        let prod = a.multiply(&inv).unwrap();
        assert!(approx_eq(&prod, &Matrix::identity(3), 1e-9));
    }

    #[test]
    fn solve_linear_system() {
        let a = Matrix::dense(2, 2, vec![2., 1., 1., 3.]);
        let b = Matrix::dense(2, 1, vec![5., 10.]);
        let x = solve(&a, &b).unwrap();
        // 2x + y = 5; x + 3y = 10 -> x = 1, y = 3
        assert!((x.get(0, 0) - 1.0).abs() < 1e-10);
        assert!((x.get(1, 0) - 3.0).abs() < 1e-10);
    }

    #[test]
    fn unpivoted_lu_on_diagonally_dominant() {
        let a = Matrix::dense(2, 2, vec![4., 1., 2., 5.]);
        let (l, u) = lu(&a).unwrap();
        let prod = Matrix::Dense(l).multiply(&Matrix::Dense(u)).unwrap();
        assert!(approx_eq(&prod, &a, 1e-10));
    }

    #[test]
    fn singular_inverse_rejected() {
        let a = Matrix::dense(2, 2, vec![1., 2., 2., 4.]);
        assert!(matches!(inverse(&a), Err(LinalgError::Singular { .. })));
    }
}
