//! Matrix exponential via scaling-and-squaring with a truncated Taylor
//! series. HADAD's `exp` operator (Table 1) obeys `exp(0) = I` and
//! `exp(M^T) = exp(M)^T` (Table 9); both are verified by the tests below.

use crate::error::Result;
use crate::matrix::Matrix;

/// Matrix exponential `e^A` of a square matrix.
pub fn matrix_exp(a: &Matrix) -> Result<Matrix> {
    a.check_square("matrix_exp")?;
    let n = a.rows();
    if n == 0 {
        return Ok(a.clone());
    }
    // Scale so that the 1-norm is < 0.5, exponentiate the scaled matrix by
    // Taylor series, then square back.
    let norm = one_norm(a);
    let squarings = if norm > 0.5 { (norm / 0.5).log2().ceil() as u32 } else { 0 };
    let scaled = a.scalar_mul(1.0 / 2f64.powi(squarings as i32));

    // Taylor: sum_{k=0..K} scaled^k / k!
    let mut result = Matrix::identity(n);
    let mut term = Matrix::identity(n);
    for k in 1..=20u32 {
        term = term.multiply(&scaled)?.scalar_mul(1.0 / k as f64);
        result = result.add(&term)?;
    }
    for _ in 0..squarings {
        result = result.multiply(&result)?;
    }
    Ok(result)
}

fn one_norm(a: &Matrix) -> f64 {
    let mut best = 0.0f64;
    for c in 0..a.cols() {
        let mut col = 0.0;
        for r in 0..a.rows() {
            col += a.get(r, c).abs();
        }
        best = best.max(col);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn exp_of_zero_is_identity() {
        let z = Matrix::zeros(3, 3);
        let e = matrix_exp(&z).unwrap();
        assert!(approx_eq(&e, &Matrix::identity(3), 1e-12));
    }

    #[test]
    fn exp_of_diagonal() {
        let d = Matrix::dense(2, 2, vec![1., 0., 0., 2.]);
        let e = matrix_exp(&d).unwrap();
        assert!((e.get(0, 0) - 1f64.exp()).abs() < 1e-9);
        assert!((e.get(1, 1) - 2f64.exp()).abs() < 1e-9);
        assert!(e.get(0, 1).abs() < 1e-12);
    }

    #[test]
    fn exp_commutes_with_transpose() {
        let a = Matrix::dense(2, 2, vec![0.1, 0.7, -0.3, 0.2]);
        let lhs = matrix_exp(&a.transpose()).unwrap();
        let rhs = matrix_exp(&a).unwrap().transpose();
        assert!(approx_eq(&lhs, &rhs, 1e-9));
    }

    #[test]
    fn exp_of_nilpotent() {
        // N = [[0,1],[0,0]] -> e^N = I + N.
        let n = Matrix::dense(2, 2, vec![0., 1., 0., 0.]);
        let e = matrix_exp(&n).unwrap();
        assert!(approx_eq(&e, &Matrix::dense(2, 2, vec![1., 1., 0., 1.]), 1e-12));
    }

    #[test]
    fn scaling_path_for_large_norm() {
        let a = Matrix::dense(1, 1, vec![5.0]);
        let e = matrix_exp(&a).unwrap();
        assert!((e.get(0, 0) - 5f64.exp()).abs() / 5f64.exp() < 1e-10);
    }
}
