//! QR decomposition via Householder reflections: `A = Q R` with orthogonal
//! `Q` and upper-triangular `R` (paper §6.2.5 models `QR(M) = [Q, R]` and
//! its fixed points `QR(Q) = [Q, I]`, `QR(R) = [I, R]`, `QR(I) = [I, I]`).

use crate::dense::DenseMatrix;
use crate::error::Result;
use crate::matrix::Matrix;

/// Householder QR. Returns `(Q, R)` with `Q` `n x n` orthogonal and `R`
/// `n x m` upper triangular such that `A = Q R`.
pub fn qr(a: &Matrix) -> Result<(DenseMatrix, DenseMatrix)> {
    let (n, m) = a.shape();
    let mut r = a.to_dense();
    let mut q = DenseMatrix::identity(n);
    let steps = m.min(n.saturating_sub(1));
    let mut v = vec![0.0f64; n];

    for k in 0..steps {
        // Householder vector for column k below the diagonal.
        let mut norm = 0.0;
        for i in k..n {
            let x = r.get(i, k);
            norm += x * x;
        }
        let norm = norm.sqrt();
        if norm < 1e-14 {
            continue;
        }
        let alpha = if r.get(k, k) >= 0.0 { -norm } else { norm };
        let mut vnorm2 = 0.0;
        for (i, vi) in v.iter_mut().enumerate().take(n).skip(k) {
            *vi = r.get(i, k) - if i == k { alpha } else { 0.0 };
            vnorm2 += *vi * *vi;
        }
        if vnorm2 < 1e-28 {
            continue;
        }
        // Apply H = I - 2 v v^T / (v^T v) to R (from the left)...
        for j in k..m {
            let mut dot = 0.0;
            for (i, &vi) in v.iter().enumerate().take(n).skip(k) {
                dot += vi * r.get(i, j);
            }
            let scale = 2.0 * dot / vnorm2;
            for (i, &vi) in v.iter().enumerate().take(n).skip(k) {
                let val = r.get(i, j) - scale * vi;
                r.set(i, j, val);
            }
        }
        // ...and accumulate into Q (from the right: Q <- Q H).
        for i in 0..n {
            let mut dot = 0.0;
            for (j, &vj) in v.iter().enumerate().take(n).skip(k) {
                dot += q.get(i, j) * vj;
            }
            let scale = 2.0 * dot / vnorm2;
            for (j, &vj) in v.iter().enumerate().take(n).skip(k) {
                let val = q.get(i, j) - scale * vj;
                q.set(i, j, val);
            }
        }
        // Clean below-diagonal entries of column k.
        r.set(k, k, alpha);
        for i in (k + 1)..n {
            r.set(i, k, 0.0);
        }
    }
    Ok((q, r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::rand_gen::random_dense;

    #[test]
    fn reconstructs_input() {
        let a = Matrix::Dense(random_dense(6, 6, 3));
        let (q, r) = qr(&a).unwrap();
        let qr_prod = Matrix::Dense(q).multiply(&Matrix::Dense(r)).unwrap();
        assert!(approx_eq(&a, &qr_prod, 1e-9));
    }

    #[test]
    fn q_is_orthogonal() {
        let a = Matrix::Dense(random_dense(5, 5, 11));
        let (q, _) = qr(&a).unwrap();
        let qm = Matrix::Dense(q.clone());
        let qtq = Matrix::Dense(q.transpose()).multiply(&qm).unwrap();
        assert!(approx_eq(&qtq, &Matrix::identity(5), 1e-9));
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = Matrix::Dense(random_dense(5, 5, 19));
        let (_, r) = qr(&a).unwrap();
        for i in 0..5 {
            for j in 0..i {
                assert!(r.get(i, j).abs() < 1e-10, "r[{i},{j}] = {}", r.get(i, j));
            }
        }
    }

    #[test]
    fn rectangular_input() {
        let a = Matrix::Dense(random_dense(6, 3, 5));
        let (q, r) = qr(&a).unwrap();
        assert_eq!(q.rows(), 6);
        assert_eq!(q.cols(), 6);
        assert_eq!(r.rows(), 6);
        assert_eq!(r.cols(), 3);
        let qr_prod = Matrix::Dense(q).multiply(&Matrix::Dense(r)).unwrap();
        assert!(approx_eq(&a, &qr_prod, 1e-9));
    }
}
