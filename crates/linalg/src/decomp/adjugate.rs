//! Adjugate (classical adjoint): `adj(A) = det(A) * A^{-1}` for invertible
//! matrices, cofactor expansion otherwise. HADAD's constraint set (Table 9)
//! exploits `adj(M)^T = adj(M^T)`, `adj(MN) = adj(N) adj(M)`, and
//! `adj(M) = cof(M)^T`.

use crate::decomp::lu;
use crate::dense::DenseMatrix;
use crate::error::Result;
use crate::matrix::Matrix;

/// Adjugate of a square matrix.
pub fn adjugate(a: &Matrix) -> Result<Matrix> {
    a.check_square("adjugate")?;
    let n = a.rows();
    if n == 0 {
        return Ok(Matrix::Dense(DenseMatrix::zeros(0, 0)));
    }
    if n == 1 {
        return Ok(Matrix::scalar(1.0));
    }
    let d = lu::det(a)?;
    if d.abs() > 1e-10 {
        let inv = lu::inverse(a)?;
        return Ok(inv.scalar_mul(d));
    }
    // Singular: cofactor expansion (O(n^5), acceptable for the small
    // matrices this path sees in tests).
    Ok(Matrix::Dense(cofactor_matrix(&a.to_dense())?.transpose()))
}

/// Matrix of cofactors `C[i,j] = (-1)^{i+j} det(minor_{ij}(A))`.
pub fn cofactor_matrix(a: &DenseMatrix) -> Result<DenseMatrix> {
    let n = a.rows();
    let mut c = DenseMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let minor = minor(a, i, j);
            let sign = if (i + j) % 2 == 0 { 1.0 } else { -1.0 };
            c.set(i, j, sign * lu::det(&Matrix::Dense(minor))?);
        }
    }
    Ok(c)
}

fn minor(a: &DenseMatrix, skip_row: usize, skip_col: usize) -> DenseMatrix {
    let n = a.rows();
    DenseMatrix::from_fn(n - 1, n - 1, |r, c| {
        let rr = if r < skip_row { r } else { r + 1 };
        let cc = if c < skip_col { c } else { c + 1 };
        a.get(rr, cc)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::rand_gen::random_dense;

    #[test]
    fn adjugate_identity_property() {
        // A * adj(A) = det(A) * I.
        let a = Matrix::Dense(random_dense(4, 4, 23));
        let adj = adjugate(&a).unwrap();
        let d = lu::det(&a).unwrap();
        let lhs = a.multiply(&adj).unwrap();
        let rhs = Matrix::identity(4).scalar_mul(d);
        assert!(approx_eq(&lhs, &rhs, 1e-8));
    }

    #[test]
    fn adjugate_of_2x2() {
        let a = Matrix::dense(2, 2, vec![1., 2., 3., 4.]);
        let adj = adjugate(&a).unwrap();
        assert!(approx_eq(&adj, &Matrix::dense(2, 2, vec![4., -2., -3., 1.]), 1e-10));
    }

    #[test]
    fn adjugate_of_singular_via_cofactors() {
        let a = Matrix::dense(2, 2, vec![1., 2., 2., 4.]);
        let adj = adjugate(&a).unwrap();
        assert!(approx_eq(&adj, &Matrix::dense(2, 2, vec![4., -2., -2., 1.]), 1e-10));
    }

    #[test]
    fn transpose_commutes_with_adjugate() {
        let a = Matrix::Dense(random_dense(3, 3, 99));
        let lhs = adjugate(&a).unwrap().transpose();
        let rhs = adjugate(&a.transpose()).unwrap();
        assert!(approx_eq(&lhs, &rhs, 1e-8));
    }
}
