//! CSV and MatrixMarket (MTX) IO.
//!
//! The paper stores dense views as CSV files and the ultra-sparse
//! tweet-hashtag matrix in MatrixMarket format (§2, footnote 1). These
//! readers/writers let examples and benches materialize views on disk the
//! same way.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::dense::DenseMatrix;
use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::sparse::SparseMatrix;

/// Writes a matrix as comma-separated rows.
pub fn write_csv(m: &Matrix, path: impl AsRef<Path>) -> Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    let d = m.to_dense();
    for r in 0..d.rows() {
        let row: Vec<String> = d.row(r).iter().map(|v| format!("{v}")).collect();
        writeln!(w, "{}", row.join(","))?;
    }
    Ok(())
}

/// Reads a dense matrix from comma-separated rows.
pub fn read_csv(path: impl AsRef<Path>) -> Result<Matrix> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    let mut data: Vec<f64> = Vec::new();
    let mut cols = 0usize;
    let mut rows = 0usize;
    for line in reader.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let row: Vec<f64> = line
            .split(',')
            .map(|tok| tok.trim().parse::<f64>().map_err(|e| LinalgError::Io(e.to_string())))
            .collect::<Result<_>>()?;
        if rows == 0 {
            cols = row.len();
        } else if row.len() != cols {
            return Err(LinalgError::Io(format!(
                "ragged csv: row {rows} has {} fields, expected {cols}",
                row.len()
            )));
        }
        data.extend(row);
        rows += 1;
    }
    Ok(Matrix::Dense(DenseMatrix::from_vec(rows, cols, data)))
}

/// Writes a sparse matrix in MatrixMarket coordinate format.
pub fn write_mtx(m: &Matrix, path: impl AsRef<Path>) -> Result<()> {
    let s = m.to_sparse();
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "{} {} {}", s.rows(), s.cols(), s.nnz())?;
    for (r, c, v) in s.triplets() {
        writeln!(w, "{} {} {v}", r + 1, c + 1)?;
    }
    Ok(())
}

/// Reads a MatrixMarket coordinate file into a sparse matrix.
pub fn read_mtx(path: impl AsRef<Path>) -> Result<Matrix> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    let mut lines = reader.lines();
    let header = lines.next().ok_or_else(|| LinalgError::Io("empty mtx file".into()))??;
    if !header.starts_with("%%MatrixMarket") {
        return Err(LinalgError::Io("missing MatrixMarket header".into()));
    }
    let mut dims: Option<(usize, usize, usize)> = None;
    let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
    for line in lines {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        if dims.is_none() {
            if toks.len() != 3 {
                return Err(LinalgError::Io("malformed mtx size line".into()));
            }
            let parse =
                |s: &str| s.parse::<usize>().map_err(|e| LinalgError::Io(e.to_string()));
            dims = Some((parse(toks[0])?, parse(toks[1])?, parse(toks[2])?));
            triplets.reserve(dims.expect("just set").2);
            continue;
        }
        if toks.len() != 3 {
            return Err(LinalgError::Io(format!("malformed mtx entry: {line}")));
        }
        let r: usize = toks[0]
            .parse()
            .map_err(|e: std::num::ParseIntError| LinalgError::Io(e.to_string()))?;
        let c: usize = toks[1]
            .parse()
            .map_err(|e: std::num::ParseIntError| LinalgError::Io(e.to_string()))?;
        let v: f64 = toks[2]
            .parse()
            .map_err(|e: std::num::ParseFloatError| LinalgError::Io(e.to_string()))?;
        triplets.push((r - 1, c - 1, v));
    }
    let (rows, cols, _) =
        dims.ok_or_else(|| LinalgError::Io("missing mtx size line".into()))?;
    Ok(Matrix::Sparse(SparseMatrix::from_triplets(rows, cols, triplets)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hadad_io_test_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn csv_roundtrip() {
        let m = Matrix::dense(2, 3, vec![1., 2.5, -3., 0., 4., 5.]);
        let path = tmp("csv");
        write_csv(&m, &path).unwrap();
        let back = read_csv(&path).unwrap();
        assert!(approx_eq(&m, &back, 1e-12));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn mtx_roundtrip() {
        let m = Matrix::sparse(4, 5, vec![(0, 0, 1.5), (3, 4, -2.0), (1, 2, 7.0)]);
        let path = tmp("mtx");
        write_mtx(&m, &path).unwrap();
        let back = read_mtx(&path).unwrap();
        assert!(back.is_sparse());
        assert!(approx_eq(&m, &back, 1e-12));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_ragged_csv() {
        let path = tmp("ragged");
        std::fs::write(&path, "1,2\n3\n").unwrap();
        assert!(read_csv(&path).is_err());
        std::fs::remove_file(path).ok();
    }
}
