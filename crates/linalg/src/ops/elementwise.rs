//! Element-wise kernels: Hadamard product, element-wise division,
//! scalar multiplication, and generic maps.

use crate::dense::DenseMatrix;
use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::sparse::SparseMatrix;

fn check(a: &Matrix, b: &Matrix, op: &'static str) -> Result<()> {
    if a.shape() != b.shape() {
        return Err(LinalgError::DimensionMismatch { op, lhs: a.shape(), rhs: b.shape() });
    }
    Ok(())
}

/// Hadamard (element-wise) product `A ⊙ B`. If either operand is sparse the
/// result is sparse (zero annihilates).
pub fn hadamard(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    check(a, b, "hadamard")?;
    Ok(match (a, b) {
        (Matrix::Dense(x), Matrix::Dense(y)) => {
            let mut out = x.clone();
            for (o, &v) in out.data_mut().iter_mut().zip(y.data()) {
                *o *= v;
            }
            Matrix::Dense(out)
        }
        (Matrix::Sparse(x), other) | (other, Matrix::Sparse(x)) => {
            let triplets: Vec<_> = x
                .triplets()
                .map(|(r, c, v)| (r, c, v * other.get(r, c)))
                .filter(|&(_, _, v)| v != 0.0)
                .collect();
            Matrix::Sparse(SparseMatrix::from_triplets(x.rows(), x.cols(), triplets))
        }
    })
}

/// Element-wise division `A / B` (dense result; divisions by zero follow
/// IEEE-754 like R and NumPy do).
pub fn divide(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    check(a, b, "divide")?;
    let (ad, bd) = (a.to_dense(), b.to_dense());
    let mut out = ad;
    for (o, &v) in out.data_mut().iter_mut().zip(bd.data()) {
        *o /= v;
    }
    Ok(Matrix::Dense(out))
}

/// `s * A`, preserving representation.
pub fn scalar_mul(a: &Matrix, s: f64) -> Matrix {
    match a {
        Matrix::Dense(d) => {
            let mut out = d.clone();
            for o in out.data_mut() {
                *o *= s;
            }
            Matrix::Dense(out)
        }
        Matrix::Sparse(sp) => Matrix::Sparse(sp.map_values(|v| v * s)),
    }
}

/// Element-wise map over *all* cells. Densifies when `f(0) != 0`, otherwise
/// sparse inputs stay sparse.
pub fn map(a: &Matrix, f: impl Fn(f64) -> f64 + Copy) -> Matrix {
    match a {
        Matrix::Dense(d) => {
            let mut out = d.clone();
            for o in out.data_mut() {
                *o = f(*o);
            }
            Matrix::Dense(out)
        }
        Matrix::Sparse(s) => {
            if f(0.0) == 0.0 {
                Matrix::Sparse(s.map_values(f))
            } else {
                let mut out = DenseMatrix::filled(s.rows(), s.cols(), f(0.0));
                for (r, c, v) in s.triplets() {
                    out.set(r, c, f(v));
                }
                Matrix::Dense(out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hadamard_multiplies_cellwise() {
        let a = Matrix::dense(2, 2, vec![1., 2., 3., 4.]);
        let b = Matrix::dense(2, 2, vec![5., 6., 7., 8.]);
        let c = hadamard(&a, &b).unwrap();
        assert_eq!(c.to_dense().data(), &[5., 12., 21., 32.]);
    }

    #[test]
    fn hadamard_with_sparse_stays_sparse() {
        let a = Matrix::sparse(2, 2, vec![(0, 1, 3.0)]);
        let b = Matrix::dense(2, 2, vec![9., 9., 9., 9.]);
        let c = hadamard(&a, &b).unwrap();
        assert!(c.is_sparse());
        assert_eq!(c.get(0, 1), 27.0);
        assert_eq!(c.nnz(), 1);
    }

    #[test]
    fn divide_cellwise() {
        let a = Matrix::dense(1, 3, vec![10., 9., 8.]);
        let b = Matrix::dense(1, 3, vec![2., 3., 4.]);
        let c = divide(&a, &b).unwrap();
        assert_eq!(c.to_dense().data(), &[5., 3., 2.]);
    }

    #[test]
    fn scalar_multiplication() {
        let a = Matrix::sparse(2, 2, vec![(1, 1, 4.0)]);
        let c = scalar_mul(&a, 0.5);
        assert!(c.is_sparse());
        assert_eq!(c.get(1, 1), 2.0);
    }

    #[test]
    fn map_densifies_when_zero_maps_to_nonzero() {
        let a = Matrix::sparse(2, 2, vec![(0, 0, 1.0)]);
        let e = map(&a, f64::exp);
        assert!(!e.is_sparse());
        assert!((e.get(0, 0) - std::f64::consts::E).abs() < 1e-12);
        assert_eq!(e.get(1, 1), 1.0);
    }
}
