//! Structural operators: Kronecker (direct) product, direct sum, diagonal
//! extraction, integer powers, row reversal, and concatenation (the latter
//! backs Morpheus' normalized-matrix materialization `M = [S, K R]`).

use crate::dense::DenseMatrix;
use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Kronecker / direct product `A ⊗ B` (the paper's `product_D`).
pub fn kronecker(a: &Matrix, b: &Matrix) -> Matrix {
    let (ar, ac) = a.shape();
    let (br, bc) = b.shape();
    let mut out = DenseMatrix::zeros(ar * br, ac * bc);
    for i in 0..ar {
        for j in 0..ac {
            let aij = a.get(i, j);
            if aij == 0.0 {
                continue;
            }
            for p in 0..br {
                for q in 0..bc {
                    out.set(i * br + p, j * bc + q, aij * b.get(p, q));
                }
            }
        }
    }
    Matrix::Dense(out)
}

/// Direct sum `A ⊕ B`: block-diagonal stacking (the paper's `sum_D`).
pub fn direct_sum(a: &Matrix, b: &Matrix) -> Matrix {
    let (ar, ac) = a.shape();
    let (br, bc) = b.shape();
    let mut out = DenseMatrix::zeros(ar + br, ac + bc);
    for r in 0..ar {
        for c in 0..ac {
            out.set(r, c, a.get(r, c));
        }
    }
    for r in 0..br {
        for c in 0..bc {
            out.set(ar + r, ac + c, b.get(r, c));
        }
    }
    Matrix::Dense(out)
}

/// Diagonal of a square matrix as a column vector (the paper's `diag`).
pub fn diag(a: &Matrix) -> Result<Matrix> {
    a.check_square("diag")?;
    let mut out = DenseMatrix::zeros(a.rows(), 1);
    for i in 0..a.rows() {
        out.set(i, 0, a.get(i, i));
    }
    Ok(Matrix::Dense(out))
}

/// `A^k` for integer `k >= 0` by repeated squaring (`A^0 = I`).
pub fn power(a: &Matrix, k: u32) -> Result<Matrix> {
    a.check_square("power")?;
    let mut result = Matrix::identity(a.rows());
    let mut base = a.clone();
    let mut k = k;
    while k > 0 {
        if k & 1 == 1 {
            result = result.multiply(&base)?;
        }
        k >>= 1;
        if k > 0 {
            base = base.multiply(&base)?;
        }
    }
    Ok(result)
}

/// Reverses the row order (SystemML's `rev`).
pub fn reverse_rows(a: &Matrix) -> Matrix {
    let d = a.to_dense();
    let out = DenseMatrix::from_fn(d.rows(), d.cols(), |r, c| d.get(d.rows() - 1 - r, c));
    Matrix::Dense(out)
}

/// Horizontal concatenation `[A | B]` (cbind).
pub fn hconcat(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.rows() != b.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "hconcat",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let mut out = DenseMatrix::zeros(a.rows(), a.cols() + b.cols());
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            out.set(r, c, a.get(r, c));
        }
        for c in 0..b.cols() {
            out.set(r, a.cols() + c, b.get(r, c));
        }
    }
    Ok(Matrix::Dense(out))
}

/// Vertical concatenation (rbind).
pub fn vconcat(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.cols() != b.cols() {
        return Err(LinalgError::DimensionMismatch {
            op: "vconcat",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let mut out = DenseMatrix::zeros(a.rows() + b.rows(), a.cols());
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            out.set(r, c, a.get(r, c));
        }
    }
    for r in 0..b.rows() {
        for c in 0..b.cols() {
            out.set(a.rows() + r, c, b.get(r, c));
        }
    }
    Ok(Matrix::Dense(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn kronecker_small() {
        let a = Matrix::dense(1, 2, vec![1., 2.]);
        let b = Matrix::dense(2, 1, vec![3., 4.]);
        let k = kronecker(&a, &b);
        assert_eq!(k.shape(), (2, 2));
        assert_eq!(k.to_dense().data(), &[3., 6., 4., 8.]);
    }

    #[test]
    fn direct_sum_is_block_diagonal() {
        let a = Matrix::dense(1, 1, vec![1.]);
        let b = Matrix::dense(2, 2, vec![2., 3., 4., 5.]);
        let s = direct_sum(&a, &b);
        assert_eq!(s.shape(), (3, 3));
        assert_eq!(s.get(0, 0), 1.0);
        assert_eq!(s.get(1, 1), 2.0);
        assert_eq!(s.get(2, 2), 5.0);
        assert_eq!(s.get(0, 1), 0.0);
    }

    #[test]
    fn diag_extracts_diagonal() {
        let m = Matrix::dense(2, 2, vec![7., 1., 1., 9.]);
        assert_eq!(diag(&m).unwrap().to_dense().data(), &[7., 9.]);
        assert!(diag(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn power_by_squaring() {
        let m = Matrix::dense(2, 2, vec![1., 1., 0., 1.]);
        let m3 = power(&m, 3).unwrap();
        assert_eq!(m3.get(0, 1), 3.0);
        let m0 = power(&m, 0).unwrap();
        assert!(approx_eq(&m0, &Matrix::identity(2), 1e-12));
        let naive = m.multiply(&m).unwrap().multiply(&m).unwrap();
        assert!(approx_eq(&m3, &naive, 1e-12));
    }

    #[test]
    fn reverse_flips_rows() {
        let m = Matrix::dense(3, 1, vec![1., 2., 3.]);
        assert_eq!(reverse_rows(&m).to_dense().data(), &[3., 2., 1.]);
    }

    #[test]
    fn concat_shapes() {
        let a = Matrix::dense(2, 1, vec![1., 2.]);
        let b = Matrix::dense(2, 2, vec![3., 4., 5., 6.]);
        let h = hconcat(&a, &b).unwrap();
        assert_eq!(h.shape(), (2, 3));
        assert_eq!(h.get(1, 2), 6.0);
        let v = vconcat(&b, &b).unwrap();
        assert_eq!(v.shape(), (4, 2));
        assert!(hconcat(&a, &Matrix::zeros(3, 1)).is_err());
        assert!(vconcat(&a, &Matrix::zeros(2, 2)).is_err());
    }
}
