//! Matrix product kernels.
//!
//! Representation policy: `sparse x sparse` stays sparse (classical row-wise
//! SpGEMM); anything involving a dense operand produces a dense result, with
//! sparse-aware inner loops so that ultra-sparse operands (the backbone of
//! HADAD's hybrid experiments) cost `O(nnz * k)` rather than `O(n*m*k)`.

use crate::dense::DenseMatrix;
use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::sparse::SparseMatrix;

fn check(a: &Matrix, b: &Matrix) -> Result<()> {
    if a.cols() != b.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "multiply",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    Ok(())
}

/// `A * B`.
pub fn multiply(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    check(a, b)?;
    Ok(match (a, b) {
        (Matrix::Dense(x), Matrix::Dense(y)) => Matrix::Dense(dense_dense(x, y)),
        (Matrix::Sparse(x), Matrix::Dense(y)) => Matrix::Dense(sparse_dense(x, y)),
        (Matrix::Dense(x), Matrix::Sparse(y)) => Matrix::Dense(dense_sparse(x, y)),
        (Matrix::Sparse(x), Matrix::Sparse(y)) => Matrix::Sparse(sparse_sparse(x, y)),
    })
}

/// Dense x dense with i-k-j loop order (streams rows of B, cache-friendly).
pub fn dense_dense(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = DenseMatrix::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        for (kk, &aik) in a_row.iter().enumerate().take(k) {
            if aik == 0.0 {
                continue;
            }
            let b_row = b.row(kk);
            let out_row = out.row_mut(i);
            for (j, &bkj) in b_row.iter().enumerate() {
                out_row[j] += aik * bkj;
            }
        }
    }
    out
}

/// Sparse x dense: for each stored `a[i,k]`, accumulate `a[i,k] * B[k,:]`.
pub fn sparse_dense(a: &SparseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let (m, n) = (a.rows(), b.cols());
    let mut out = DenseMatrix::zeros(m, n);
    for i in 0..m {
        let (idx, vals) = a.row(i);
        let out_row = out.row_mut(i);
        for (&kk, &aik) in idx.iter().zip(vals) {
            let b_row = b.row(kk);
            for (j, &bkj) in b_row.iter().enumerate() {
                out_row[j] += aik * bkj;
            }
        }
    }
    out
}

/// Dense x sparse: for each stored `b[k,j]`, accumulate `A[:,k] * b[k,j]`
/// column-wise into the output.
pub fn dense_sparse(a: &DenseMatrix, b: &SparseMatrix) -> DenseMatrix {
    let (m, n) = (a.rows(), b.cols());
    let mut out = DenseMatrix::zeros(m, n);
    for kk in 0..b.rows() {
        let (idx, vals) = b.row(kk);
        if idx.is_empty() {
            continue;
        }
        for i in 0..m {
            let aik = a.get(i, kk);
            if aik == 0.0 {
                continue;
            }
            let out_row = out.row_mut(i);
            for (&j, &bkj) in idx.iter().zip(vals) {
                out_row[j] += aik * bkj;
            }
        }
    }
    out
}

/// Sparse x sparse row-wise SpGEMM with a dense accumulator per row.
pub fn sparse_sparse(a: &SparseMatrix, b: &SparseMatrix) -> SparseMatrix {
    let (m, n) = (a.rows(), b.cols());
    let mut acc = vec![0.0f64; n];
    let mut touched: Vec<usize> = Vec::new();
    let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
    for i in 0..m {
        let (idx, vals) = a.row(i);
        for (&kk, &aik) in idx.iter().zip(vals) {
            let (bidx, bvals) = b.row(kk);
            for (&j, &bkj) in bidx.iter().zip(bvals) {
                if acc[j] == 0.0 {
                    touched.push(j);
                }
                acc[j] += aik * bkj;
            }
        }
        for &j in &touched {
            if acc[j] != 0.0 {
                triplets.push((i, j, acc[j]));
            }
            acc[j] = 0.0;
        }
        touched.clear();
    }
    SparseMatrix::from_triplets(m, n, triplets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn d(r: usize, c: usize, v: Vec<f64>) -> Matrix {
        Matrix::dense(r, c, v)
    }

    #[test]
    fn dense_product_matches_hand_computation() {
        let a = d(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = d(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = multiply(&a, &b).unwrap();
        assert_eq!(c.to_dense().data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = d(2, 3, vec![0.; 6]);
        let b = d(2, 2, vec![0.; 4]);
        assert!(multiply(&a, &b).is_err());
    }

    #[test]
    fn all_representation_combinations_agree() {
        let a_dense = d(3, 4, vec![0., 2., 0., 1., 3., 0., 0., 0., 0., 0., 5., 4.]);
        let b_dense = d(4, 2, vec![1., 0., 0., 2., 3., 0., 0., 4.]);
        let a_sparse = Matrix::Sparse(a_dense.to_sparse());
        let b_sparse = Matrix::Sparse(b_dense.to_sparse());
        let reference = multiply(&a_dense, &b_dense).unwrap();
        for a in [&a_dense, &a_sparse] {
            for b in [&b_dense, &b_sparse] {
                let got = multiply(a, b).unwrap();
                assert!(approx_eq(&reference, &got, 1e-12), "{a:?} x {b:?}");
            }
        }
    }

    #[test]
    fn sparse_product_stays_sparse() {
        let a = Matrix::sparse(2, 2, vec![(0, 0, 2.0)]);
        let b = Matrix::sparse(2, 2, vec![(0, 1, 3.0)]);
        let c = multiply(&a, &b).unwrap();
        assert!(c.is_sparse());
        assert_eq!(c.get(0, 1), 6.0);
        assert_eq!(c.nnz(), 1);
    }

    #[test]
    fn identity_is_neutral() {
        let a = d(2, 2, vec![1., 2., 3., 4.]);
        let i = Matrix::identity(2);
        assert!(approx_eq(&multiply(&a, &i).unwrap(), &a, 1e-12));
        assert!(approx_eq(&multiply(&i, &a).unwrap(), &a, 1e-12));
    }
}
