//! Aggregation kernels: full / row-wise / column-wise sums, min, max, mean,
//! variance, and trace. These are the operations SystemML's rewrite-rule
//! catalogue (paper Appendix B) reorders to avoid large intermediates.

use crate::dense::DenseMatrix;
use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Sum of all cells.
pub fn sum(a: &Matrix) -> f64 {
    match a {
        Matrix::Dense(d) => d.data().iter().sum(),
        Matrix::Sparse(s) => s.triplets().map(|(_, _, v)| v).sum(),
    }
}

/// Column vector (`rows x 1`) of per-row sums.
pub fn row_sums(a: &Matrix) -> Matrix {
    let mut out = DenseMatrix::zeros(a.rows(), 1);
    match a {
        Matrix::Dense(d) => {
            for r in 0..d.rows() {
                out.set(r, 0, d.row(r).iter().sum());
            }
        }
        Matrix::Sparse(s) => {
            for (r, _, v) in s.triplets() {
                let cur = out.get(r, 0);
                out.set(r, 0, cur + v);
            }
        }
    }
    Matrix::Dense(out)
}

/// Row vector (`1 x cols`) of per-column sums.
pub fn col_sums(a: &Matrix) -> Matrix {
    let mut out = DenseMatrix::zeros(1, a.cols());
    match a {
        Matrix::Dense(d) => {
            for r in 0..d.rows() {
                let row = d.row(r);
                let data = out.data_mut();
                for (c, &v) in row.iter().enumerate() {
                    data[c] += v;
                }
            }
        }
        Matrix::Sparse(s) => {
            for (_, c, v) in s.triplets() {
                let cur = out.get(0, c);
                out.set(0, c, cur + v);
            }
        }
    }
    Matrix::Dense(out)
}

/// Mean of all cells (implicit zeros included).
pub fn mean(a: &Matrix) -> f64 {
    let cells = (a.rows() * a.cols()) as f64;
    if cells == 0.0 {
        0.0
    } else {
        sum(a) / cells
    }
}

/// Population variance of all cells (implicit zeros included).
pub fn var(a: &Matrix) -> f64 {
    let cells = (a.rows() * a.cols()) as f64;
    if cells == 0.0 {
        return 0.0;
    }
    let mu = mean(a);
    let mut acc = 0.0;
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            let d = a.get(r, c) - mu;
            acc += d * d;
        }
    }
    acc / cells
}

/// Minimum over all cells (implicit zeros participate for sparse).
pub fn min(a: &Matrix) -> f64 {
    fold_cells(a, f64::INFINITY, f64::min)
}

/// Maximum over all cells (implicit zeros participate for sparse).
pub fn max(a: &Matrix) -> f64 {
    fold_cells(a, f64::NEG_INFINITY, f64::max)
}

fn fold_cells(a: &Matrix, init: f64, f: impl Fn(f64, f64) -> f64) -> f64 {
    match a {
        Matrix::Dense(d) => d.data().iter().fold(init, |acc, &v| f(acc, v)),
        Matrix::Sparse(s) => {
            let mut acc = init;
            let mut stored = 0usize;
            for (_, _, v) in s.triplets() {
                acc = f(acc, v);
                stored += 1;
            }
            if stored < s.rows() * s.cols() {
                acc = f(acc, 0.0);
            }
            acc
        }
    }
}

/// Column vector of per-row minima.
pub fn row_min(a: &Matrix) -> Matrix {
    per_row(a, f64::INFINITY, f64::min)
}

/// Column vector of per-row maxima.
pub fn row_max(a: &Matrix) -> Matrix {
    per_row(a, f64::NEG_INFINITY, f64::max)
}

/// Column vector of per-row means.
pub fn row_means(a: &Matrix) -> Matrix {
    let rs = row_sums(a);
    rs.scalar_mul(1.0 / a.cols() as f64)
}

/// Row vector of per-column means.
pub fn col_means(a: &Matrix) -> Matrix {
    let cs = col_sums(a);
    cs.scalar_mul(1.0 / a.rows() as f64)
}

/// Column vector of per-row population variances.
pub fn row_var(a: &Matrix) -> Matrix {
    let n = a.cols() as f64;
    let mut out = DenseMatrix::zeros(a.rows(), 1);
    for r in 0..a.rows() {
        let mu: f64 = (0..a.cols()).map(|c| a.get(r, c)).sum::<f64>() / n;
        let v: f64 = (0..a.cols()).map(|c| (a.get(r, c) - mu).powi(2)).sum::<f64>() / n;
        out.set(r, 0, v);
    }
    Matrix::Dense(out)
}

/// Row vector of per-column population variances.
pub fn col_var(a: &Matrix) -> Matrix {
    let n = a.rows() as f64;
    let mut out = DenseMatrix::zeros(1, a.cols());
    for c in 0..a.cols() {
        let mu: f64 = (0..a.rows()).map(|r| a.get(r, c)).sum::<f64>() / n;
        let v: f64 = (0..a.rows()).map(|r| (a.get(r, c) - mu).powi(2)).sum::<f64>() / n;
        out.set(0, c, v);
    }
    Matrix::Dense(out)
}

fn per_row(a: &Matrix, init: f64, f: impl Fn(f64, f64) -> f64) -> Matrix {
    let mut out = DenseMatrix::zeros(a.rows(), 1);
    for r in 0..a.rows() {
        let mut acc = init;
        for c in 0..a.cols() {
            acc = f(acc, a.get(r, c));
        }
        out.set(r, 0, acc);
    }
    Matrix::Dense(out)
}

/// Row vector of per-column minima.
pub fn col_min(a: &Matrix) -> Matrix {
    per_col(a, f64::INFINITY, f64::min)
}

/// Row vector of per-column maxima.
pub fn col_max(a: &Matrix) -> Matrix {
    per_col(a, f64::NEG_INFINITY, f64::max)
}

fn per_col(a: &Matrix, init: f64, f: impl Fn(f64, f64) -> f64) -> Matrix {
    let mut out = DenseMatrix::zeros(1, a.cols());
    for c in 0..a.cols() {
        let mut acc = init;
        for r in 0..a.rows() {
            acc = f(acc, a.get(r, c));
        }
        out.set(0, c, acc);
    }
    Matrix::Dense(out)
}

/// Trace (sum of diagonal) of a square matrix.
pub fn trace(a: &Matrix) -> Result<f64> {
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare { op: "trace", shape: a.shape() });
    }
    Ok((0..a.rows()).map(|i| a.get(i, i)).sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::dense(2, 3, vec![1., 2., 3., 4., 5., 6.])
    }

    #[test]
    fn sums() {
        let m = sample();
        assert_eq!(sum(&m), 21.0);
        assert_eq!(row_sums(&m).to_dense().data(), &[6., 15.]);
        assert_eq!(col_sums(&m).to_dense().data(), &[5., 7., 9.]);
    }

    #[test]
    fn sparse_sums_match_dense() {
        let d = Matrix::dense(2, 3, vec![0., 2., 0., 4., 0., 6.]);
        let s = Matrix::Sparse(d.to_sparse());
        assert_eq!(sum(&d), sum(&s));
        assert_eq!(row_sums(&d), row_sums(&s));
        assert_eq!(col_sums(&d), col_sums(&s));
    }

    #[test]
    fn trace_of_square() {
        let m = Matrix::dense(2, 2, vec![1., 9., 9., 5.]);
        assert_eq!(trace(&m).unwrap(), 6.0);
        assert!(trace(&sample()).is_err());
    }

    #[test]
    fn min_max_consider_implicit_zeros() {
        let s = Matrix::sparse(2, 2, vec![(0, 0, 5.0), (1, 1, 3.0)]);
        assert_eq!(min(&s), 0.0);
        assert_eq!(max(&s), 5.0);
        let neg = Matrix::sparse(2, 2, vec![(0, 0, -5.0)]);
        assert_eq!(max(&neg), 0.0);
    }

    #[test]
    fn mean_and_var() {
        let m = Matrix::dense(1, 4, vec![1., 2., 3., 4.]);
        assert_eq!(mean(&m), 2.5);
        assert!((var(&m) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn row_col_stats() {
        let m = sample();
        assert_eq!(row_min(&m).to_dense().data(), &[1., 4.]);
        assert_eq!(row_max(&m).to_dense().data(), &[3., 6.]);
        assert_eq!(col_min(&m).to_dense().data(), &[1., 2., 3.]);
        assert_eq!(col_max(&m).to_dense().data(), &[4., 5., 6.]);
        assert_eq!(row_means(&m).to_dense().data(), &[2., 5.]);
        assert_eq!(col_means(&m).to_dense().data(), &[2.5, 3.5, 4.5]);
    }
}
