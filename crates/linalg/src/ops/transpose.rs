//! Transposition (representation preserving).

use crate::matrix::Matrix;

/// `A^T`.
pub fn transpose(a: &Matrix) -> Matrix {
    match a {
        Matrix::Dense(d) => Matrix::Dense(d.transpose()),
        Matrix::Sparse(s) => Matrix::Sparse(s.transpose()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn double_transpose_is_identity() {
        let a = Matrix::dense(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert!(approx_eq(&transpose(&transpose(&a)), &a, 1e-15));
    }

    #[test]
    fn sparse_transpose_preserves_representation() {
        let a = Matrix::sparse(4, 2, vec![(3, 0, 2.0)]);
        let t = transpose(&a);
        assert!(t.is_sparse());
        assert_eq!(t.get(0, 3), 2.0);
    }
}
