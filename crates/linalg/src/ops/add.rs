//! Matrix addition / subtraction.
//!
//! `sparse + sparse` merges row-wise and stays sparse; mixing with a dense
//! operand materializes a dense result (exactly the densification HADAD's
//! P1.4 rewrite `(A+B)v -> Av + Bv` avoids).

use crate::dense::DenseMatrix;
use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::sparse::SparseMatrix;

fn check(a: &Matrix, b: &Matrix, op: &'static str) -> Result<()> {
    if a.shape() != b.shape() {
        return Err(LinalgError::DimensionMismatch { op, lhs: a.shape(), rhs: b.shape() });
    }
    Ok(())
}

/// `A + B`.
pub fn add(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    check(a, b, "add")?;
    Ok(match (a, b) {
        (Matrix::Sparse(x), Matrix::Sparse(y)) => Matrix::Sparse(sparse_sparse(x, y, 1.0)),
        _ => Matrix::Dense(dense_combine(a, b, 1.0)),
    })
}

/// `A - B`.
pub fn sub(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    check(a, b, "sub")?;
    Ok(match (a, b) {
        (Matrix::Sparse(x), Matrix::Sparse(y)) => Matrix::Sparse(sparse_sparse(x, y, -1.0)),
        _ => Matrix::Dense(dense_combine(a, b, -1.0)),
    })
}

fn dense_combine(a: &Matrix, b: &Matrix, sign: f64) -> DenseMatrix {
    // Start from whichever operand is dense and scatter the sparse one in.
    match (a, b) {
        (Matrix::Dense(x), Matrix::Dense(y)) => {
            let mut out = x.clone();
            for (o, &v) in out.data_mut().iter_mut().zip(y.data()) {
                *o += sign * v;
            }
            out
        }
        (Matrix::Dense(x), Matrix::Sparse(y)) => {
            let mut out = x.clone();
            for (r, c, v) in y.triplets() {
                let cur = out.get(r, c);
                out.set(r, c, cur + sign * v);
            }
            out
        }
        (Matrix::Sparse(x), Matrix::Dense(y)) => {
            let mut out = DenseMatrix::zeros(y.rows(), y.cols());
            for (o, &v) in out.data_mut().iter_mut().zip(y.data()) {
                *o = sign * v;
            }
            for (r, c, v) in x.triplets() {
                let cur = out.get(r, c);
                out.set(r, c, cur + v);
            }
            out
        }
        (Matrix::Sparse(_), Matrix::Sparse(_)) => unreachable!("handled by caller"),
    }
}

fn sparse_sparse(a: &SparseMatrix, b: &SparseMatrix, sign: f64) -> SparseMatrix {
    let mut triplets: Vec<(usize, usize, f64)> = Vec::with_capacity(a.nnz() + b.nnz());
    for r in 0..a.rows() {
        let (ai, av) = a.row(r);
        let (bi, bv) = b.row(r);
        let (mut p, mut q) = (0usize, 0usize);
        while p < ai.len() || q < bi.len() {
            match (ai.get(p), bi.get(q)) {
                (Some(&ca), Some(&cb)) if ca == cb => {
                    let v = av[p] + sign * bv[q];
                    if v != 0.0 {
                        triplets.push((r, ca, v));
                    }
                    p += 1;
                    q += 1;
                }
                (Some(&ca), Some(&cb)) if ca < cb => {
                    triplets.push((r, ca, av[p]));
                    p += 1;
                }
                (Some(_), Some(&cb)) => {
                    triplets.push((r, cb, sign * bv[q]));
                    q += 1;
                }
                (Some(&ca), None) => {
                    triplets.push((r, ca, av[p]));
                    p += 1;
                }
                (None, Some(&cb)) => {
                    triplets.push((r, cb, sign * bv[q]));
                    q += 1;
                }
                (None, None) => break,
            }
        }
    }
    SparseMatrix::from_triplets(a.rows(), a.cols(), triplets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn dense_addition() {
        let a = Matrix::dense(2, 2, vec![1., 2., 3., 4.]);
        let b = Matrix::dense(2, 2, vec![10., 20., 30., 40.]);
        let c = add(&a, &b).unwrap();
        assert_eq!(c.to_dense().data(), &[11., 22., 33., 44.]);
    }

    #[test]
    fn sparse_plus_sparse_stays_sparse() {
        let a = Matrix::sparse(2, 3, vec![(0, 0, 1.0), (1, 2, 2.0)]);
        let b = Matrix::sparse(2, 3, vec![(0, 0, -1.0), (0, 1, 5.0)]);
        let c = add(&a, &b).unwrap();
        assert!(c.is_sparse());
        assert_eq!(c.nnz(), 2, "cancelled entry must be dropped");
        assert_eq!(c.get(0, 1), 5.0);
        assert_eq!(c.get(1, 2), 2.0);
    }

    #[test]
    fn mixed_add_densifies() {
        let a = Matrix::sparse(2, 2, vec![(0, 0, 1.0)]);
        let b = Matrix::dense(2, 2, vec![1., 1., 1., 1.]);
        let c = add(&a, &b).unwrap();
        assert!(!c.is_sparse());
        assert_eq!(c.get(0, 0), 2.0);
        assert_eq!(c.get(1, 1), 1.0);
    }

    #[test]
    fn subtraction_is_inverse_of_addition() {
        let a = Matrix::dense(2, 2, vec![5., 6., 7., 8.]);
        let b = Matrix::dense(2, 2, vec![1., 2., 3., 4.]);
        let c = sub(&add(&a, &b).unwrap(), &b).unwrap();
        assert!(approx_eq(&a, &c, 1e-12));
    }

    #[test]
    fn sparse_sub() {
        let a = Matrix::sparse(1, 3, vec![(0, 0, 3.0), (0, 2, 1.0)]);
        let b = Matrix::sparse(1, 3, vec![(0, 1, 4.0), (0, 2, 1.0)]);
        let c = sub(&a, &b).unwrap();
        assert_eq!(c.get(0, 0), 3.0);
        assert_eq!(c.get(0, 1), -4.0);
        assert_eq!(c.get(0, 2), 0.0);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        assert!(add(&a, &b).is_err());
        assert!(sub(&a, &b).is_err());
    }
}
