//! Execution backends: the pluggable kernel layer behind every matrix
//! product the evaluator runs.
//!
//! Two implementations of [`ExecBackend`] ship:
//!
//! * [`Reference`] — the original naive single-threaded kernels in
//!   [`crate::ops`], kept verbatim as the differential-testing baseline.
//! * [`Parallel`] — cache-blocked tiled dense×dense GEMM (i-k-j
//!   micro-kernels over cache-resident B panels), multi-threaded
//!   row-partitioned
//!   dense/sparse products over `std::thread::scope`, parallel CSR
//!   SpMV/SpGEMM with per-thread row ranges and thread-local accumulators,
//!   and a fused `Aᵀ·B` transpose-multiply that never materializes the
//!   transpose.
//!
//! Every `Parallel` kernel accumulates each output cell in the same
//! floating-point order as its `Reference` counterpart (blocking and row
//! partitioning only re-tile the iteration space, never the per-cell `k`
//! order), so the two backends agree bitwise on products — the
//! differential property test in `hadad-rewrite` pins this.
//!
//! Only products route through the backend: element-wise ops, aggregates,
//! and decompositions are memory-bound or inherently sequential and stay
//! on the shared kernels. The calibration constants the cost oracle uses
//! to price each backend live in `hadad_core::stats::BackendProfile`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::dense::DenseMatrix;
use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::ops;
use crate::sparse::SparseMatrix;

/// A contained kernel-worker panic. `Parallel` discards the partial
/// output, records one of these in the process-wide event log, and retries
/// the operation once on [`Reference`] — a panicking kernel degrades to
/// the slow path instead of aborting the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendPanic {
    /// Backend whose worker panicked.
    pub backend: &'static str,
    /// Operation being executed (`"multiply"` / `"transpose_multiply"`).
    pub op: &'static str,
}

impl std::fmt::Display for BackendPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker panic in {} backend during {}", self.backend, self.op)
    }
}

static PANIC_EVENTS: Mutex<Vec<BackendPanic>> = Mutex::new(Vec::new());

fn record_backend_panic(backend: &'static str, op: &'static str) {
    static PANICS: hadad_obs::LazyCounter = hadad_obs::LazyCounter::new("kernel.panics");
    static DEGRADED: hadad_obs::LazyCounter = hadad_obs::LazyCounter::new("kernel.degraded");
    let event = BackendPanic { backend, op };
    // Mirror the typed event into the shared registry + structured event
    // log: one panic, one degradation (the retry on Reference).
    PANICS.incr();
    DEGRADED.incr();
    hadad_obs::event("linalg.kernel", hadad_obs::Severity::Warn, event.to_string());
    PANIC_EVENTS.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(event);
}

/// Snapshot of every contained kernel panic so far (observability hook).
pub fn backend_panics() -> Vec<BackendPanic> {
    PANIC_EVENTS.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
}

/// Drains the contained-panic event log (tests isolate with this).
pub fn take_backend_panics() -> Vec<BackendPanic> {
    std::mem::take(&mut *PANIC_EVENTS.lock().unwrap_or_else(std::sync::PoisonError::into_inner))
}

/// Internal marker: a supervised worker panicked and the kernel's output
/// buffer must be discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPanicked;

/// Tile width of the blocked dense GEMM micro-kernel. A 256×256 `f64`
/// panel of B is 512 KiB — comfortably L2-resident — and wide enough that
/// each B row loaded into cache is reused across many A rows before
/// eviction. Measured on 512×512 GEMM: 256 runs ~1.4× faster than the
/// unblocked reference single-threaded, while 64 (strict L1 blocking) sits
/// at parity because the per-tile loop overhead eats the locality win.
pub const GEMM_TILE: usize = 256;

/// Upper bound on worker threads, matching the extraction DP's cap so a
/// large host does not drown small kernels in spawn overhead.
const MAX_THREADS: usize = 8;

/// Worker count for `threads = 0` (auto): physical parallelism, capped.
pub fn auto_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get).min(MAX_THREADS)
}

/// The kernel layer the evaluator dispatches matrix products through.
/// Implementations decide threading and blocking; they must keep the
/// representation policy of [`crate::ops::multiply`] (sparse×sparse stays
/// sparse, anything dense densifies) and validate shapes.
pub trait ExecBackend: Sync + Send + std::fmt::Debug {
    /// Stable backend name (`"reference"` | `"parallel"`).
    fn name(&self) -> &'static str;

    /// Worker threads the backend fans products across (1 = sequential).
    fn threads(&self) -> usize;

    /// `A · B`.
    fn multiply(&self, a: &Matrix, b: &Matrix) -> Result<Matrix>;

    /// `Aᵀ · B`, fused where the backend supports it (no materialized
    /// transpose); implementations may fall back to transpose-then-multiply
    /// where fusion does not pay (e.g. sparse `A`, whose transpose is
    /// `O(nnz)`).
    fn transpose_multiply(&self, a: &Matrix, b: &Matrix) -> Result<Matrix>;

    /// Number of *fused* transpose-multiply executions served so far —
    /// observability for the rewrite-awareness tests; backends without a
    /// fused path report 0.
    fn fused_tmul_calls(&self) -> usize {
        0
    }
}

fn check_mul(a: &Matrix, b: &Matrix) -> Result<()> {
    if a.cols() != b.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "multiply",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    Ok(())
}

fn check_tmul(a: &Matrix, b: &Matrix) -> Result<()> {
    if a.rows() != b.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "transpose_multiply",
            lhs: (a.cols(), a.rows()),
            rhs: b.shape(),
        });
    }
    Ok(())
}

/// The original naive kernels, unchanged: the baseline `Parallel` is
/// differentially tested against. Transpose-multiply materializes the
/// transpose, exactly what the fused kernel is measured against.
#[derive(Debug)]
pub struct Reference;

impl ExecBackend for Reference {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn threads(&self) -> usize {
        1
    }

    fn multiply(&self, a: &Matrix, b: &Matrix) -> Result<Matrix> {
        ops::multiply::multiply(a, b)
    }

    fn transpose_multiply(&self, a: &Matrix, b: &Matrix) -> Result<Matrix> {
        check_tmul(a, b)?;
        ops::multiply::multiply(&ops::transpose::transpose(a), b)
    }
}

/// Cache-blocked, multi-threaded kernels. `threads = 0` resolves to
/// [`auto_threads`] at call time, so one static instance adapts to the
/// host; fixed counts are for the differential tests.
#[derive(Debug)]
pub struct Parallel {
    threads: usize,
    tile: usize,
    fused: AtomicUsize,
}

impl Parallel {
    /// Auto-sized instance (thread count resolved per call).
    pub const fn auto() -> Self {
        Parallel { threads: 0, tile: GEMM_TILE, fused: AtomicUsize::new(0) }
    }

    /// Fixed thread count (still capped by the row count per kernel).
    pub const fn with_threads(threads: usize) -> Self {
        Parallel { threads, tile: GEMM_TILE, fused: AtomicUsize::new(0) }
    }
}

impl ExecBackend for Parallel {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn threads(&self) -> usize {
        if self.threads == 0 {
            auto_threads()
        } else {
            self.threads
        }
    }

    fn multiply(&self, a: &Matrix, b: &Matrix) -> Result<Matrix> {
        static GEMM: hadad_obs::LazyCounter = hadad_obs::LazyCounter::new("kernel.gemm");
        static SPMM: hadad_obs::LazyCounter = hadad_obs::LazyCounter::new("kernel.spmm");
        static DENSE_SPARSE: hadad_obs::LazyCounter =
            hadad_obs::LazyCounter::new("kernel.dense_sparse");
        static SPGEMM: hadad_obs::LazyCounter = hadad_obs::LazyCounter::new("kernel.spgemm");
        check_mul(a, b)?;
        let _span = hadad_obs::span("kernel.multiply");
        let t = self.threads();
        let attempt = match (a, b) {
            (Matrix::Dense(x), Matrix::Dense(y)) => {
                GEMM.incr();
                gemm_blocked(x, y, t, self.tile).map(Matrix::Dense)
            }
            (Matrix::Sparse(x), Matrix::Dense(y)) => {
                SPMM.incr();
                spmm_rows(x, y, t).map(Matrix::Dense)
            }
            (Matrix::Dense(x), Matrix::Sparse(y)) => {
                DENSE_SPARSE.incr();
                dense_sparse_rows(x, y, t).map(Matrix::Dense)
            }
            (Matrix::Sparse(x), Matrix::Sparse(y)) => {
                SPGEMM.incr();
                spgemm_rows(x, y, t).map(Matrix::Sparse)
            }
        };
        match attempt {
            Ok(m) => Ok(m),
            // A worker panicked: surface the typed event, drop the partial
            // output, retry once on the single-threaded reference kernels.
            Err(WorkerPanicked) => {
                record_backend_panic(self.name(), "multiply");
                REFERENCE.multiply(a, b)
            }
        }
    }

    fn transpose_multiply(&self, a: &Matrix, b: &Matrix) -> Result<Matrix> {
        check_tmul(a, b)?;
        match a {
            // Dense Aᵀ is an O(rows·cols) strided rewrite — fuse it away.
            Matrix::Dense(x) => {
                static TMUL: hadad_obs::LazyCounter =
                    hadad_obs::LazyCounter::new("kernel.tmul_fused");
                TMUL.incr();
                let _span = hadad_obs::span("kernel.tmul");
                let t = self.threads();
                let attempt = match b {
                    Matrix::Dense(y) => tmul_dense_dense(x, y, t),
                    Matrix::Sparse(y) => tmul_dense_sparse(x, y, t),
                };
                match attempt {
                    Ok(m) => {
                        self.fused.fetch_add(1, Ordering::Relaxed);
                        Ok(Matrix::Dense(m))
                    }
                    Err(WorkerPanicked) => {
                        record_backend_panic(self.name(), "transpose_multiply");
                        REFERENCE.transpose_multiply(a, b)
                    }
                }
            }
            // Sparse transposition is O(nnz); fusion would re-scan A per
            // thread for no win.
            Matrix::Sparse(x) => self.multiply(&Matrix::Sparse(x.transpose()), b),
        }
    }

    fn fused_tmul_calls(&self) -> usize {
        self.fused.load(Ordering::Relaxed)
    }
}

/// Contiguous row ranges for `threads` workers (empty ranges dropped).
fn row_ranges(rows: usize, threads: usize) -> Vec<(usize, usize)> {
    let t = threads.clamp(1, rows.max(1));
    let chunk = rows.div_ceil(t).max(1);
    (0..t).map(|i| (i * chunk, ((i + 1) * chunk).min(rows))).filter(|(s, e)| s < e).collect()
}

/// Runs `f` over row-partitioned mutable slices of a `rows×cols` row-major
/// output buffer, spawning scoped threads only when more than one range
/// exists. Every worker (including the single-range in-line path) runs
/// under `catch_unwind` supervision: a panic anywhere surfaces as
/// [`WorkerPanicked`] instead of unwinding through the scope, and the
/// caller discards the partially-written buffer.
fn partition_rows(
    out: &mut [f64],
    rows: usize,
    cols: usize,
    threads: usize,
    f: impl Fn(&mut [f64], usize, usize) + Sync,
) -> std::result::Result<(), WorkerPanicked> {
    let supervised = |chunk: &mut [f64], r0: usize, r1: usize| {
        catch_unwind(AssertUnwindSafe(|| {
            hadad_failpoint::hit("linalg.kernel").expect("linalg.kernel failpoint");
            f(chunk, r0, r1);
        }))
        .map_err(|_| WorkerPanicked)
    };
    let ranges = row_ranges(rows, threads);
    if ranges.len() <= 1 {
        if let Some(&(r0, r1)) = ranges.first() {
            supervised(out, r0, r1)?;
        }
        return Ok(());
    }
    let mut ok = true;
    std::thread::scope(|s| {
        let supervised = &supervised;
        let mut rest = out;
        let mut handles = Vec::with_capacity(ranges.len());
        for &(r0, r1) in &ranges {
            let (chunk, tail) = rest.split_at_mut((r1 - r0) * cols);
            rest = tail;
            handles.push(s.spawn(move || supervised(chunk, r0, r1).is_ok()));
        }
        for h in handles {
            // join() cannot fail: the worker catches its own panics.
            ok &= h.join().unwrap_or(false);
        }
    });
    if ok {
        Ok(())
    } else {
        Err(WorkerPanicked)
    }
}

/// Blocked dense GEMM over one row range: j/k tiled so a `tile×tile` panel
/// of B stays cache-resident, i-k-j order inside the tile. For every output
/// cell the `k` accumulation order (ascending, zeros skipped) matches the
/// reference kernel, so results are bitwise identical.
fn gemm_rows(
    a: &DenseMatrix,
    b: &DenseMatrix,
    out: &mut [f64],
    r0: usize,
    r1: usize,
    tile: usize,
) {
    let (k, n) = (a.cols(), b.cols());
    for jb in (0..n).step_by(tile) {
        let je = (jb + tile).min(n);
        for kb in (0..k).step_by(tile) {
            let ke = (kb + tile).min(k);
            for i in r0..r1 {
                let a_row = &a.row(i)[kb..ke];
                let out_row = &mut out[(i - r0) * n + jb..(i - r0) * n + je];
                for (kk, &aik) in a_row.iter().enumerate() {
                    if aik == 0.0 {
                        continue;
                    }
                    let b_row = &b.row(kb + kk)[jb..je];
                    for (j, &bkj) in b_row.iter().enumerate() {
                        out_row[j] += aik * bkj;
                    }
                }
            }
        }
    }
}

/// Threaded, cache-blocked dense×dense GEMM.
pub fn gemm_blocked(
    a: &DenseMatrix,
    b: &DenseMatrix,
    threads: usize,
    tile: usize,
) -> std::result::Result<DenseMatrix, WorkerPanicked> {
    let (m, n) = (a.rows(), b.cols());
    let mut out = DenseMatrix::zeros(m, n);
    partition_rows(out.data_mut(), m, n, threads, |chunk, r0, r1| {
        gemm_rows(a, b, chunk, r0, r1, tile);
    })?;
    Ok(out)
}

/// Threaded CSR × dense (SpMV when `b` is a vector, SpMM otherwise):
/// output rows partitioned across workers, each streaming its rows of `A`.
pub fn spmm_rows(
    a: &SparseMatrix,
    b: &DenseMatrix,
    threads: usize,
) -> std::result::Result<DenseMatrix, WorkerPanicked> {
    let (m, n) = (a.rows(), b.cols());
    let mut out = DenseMatrix::zeros(m, n);
    partition_rows(out.data_mut(), m, n, threads, |chunk, r0, r1| {
        for i in r0..r1 {
            let (idx, vals) = a.row(i);
            let out_row = &mut chunk[(i - r0) * n..(i - r0 + 1) * n];
            for (&kk, &aik) in idx.iter().zip(vals) {
                let b_row = b.row(kk);
                for (j, &bkj) in b_row.iter().enumerate() {
                    out_row[j] += aik * bkj;
                }
            }
        }
    })?;
    Ok(out)
}

/// Threaded dense × CSR: output rows partitioned; each worker walks its
/// rows of `A`, scattering the stored entries of the matching `B` rows.
pub fn dense_sparse_rows(
    a: &DenseMatrix,
    b: &SparseMatrix,
    threads: usize,
) -> std::result::Result<DenseMatrix, WorkerPanicked> {
    let (m, n) = (a.rows(), b.cols());
    let mut out = DenseMatrix::zeros(m, n);
    partition_rows(out.data_mut(), m, n, threads, |chunk, r0, r1| {
        for i in r0..r1 {
            let a_row = a.row(i);
            let out_row = &mut chunk[(i - r0) * n..(i - r0 + 1) * n];
            for (kk, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let (idx, vals) = b.row(kk);
                for (&j, &bkj) in idx.iter().zip(vals) {
                    out_row[j] += aik * bkj;
                }
            }
        }
    })?;
    Ok(out)
}

/// One worker's SpGEMM output: CSR fragments for a contiguous row range.
struct CsrChunk {
    row_lens: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
}

/// Threaded row-wise SpGEMM: per-thread row ranges with thread-local dense
/// accumulators, assembling sorted CSR rows directly — no global triplet
/// sort, which is what dominates the reference kernel on chain workloads.
pub fn spgemm_rows(
    a: &SparseMatrix,
    b: &SparseMatrix,
    threads: usize,
) -> std::result::Result<SparseMatrix, WorkerPanicked> {
    let (m, n) = (a.rows(), b.cols());
    let ranges = row_ranges(m, threads);
    let run_range = |r0: usize, r1: usize| -> CsrChunk {
        hadad_failpoint::hit("linalg.kernel").expect("linalg.kernel failpoint");
        let mut acc = vec![0.0f64; n];
        let mut touched: Vec<usize> = Vec::new();
        let mut chunk = CsrChunk {
            row_lens: Vec::with_capacity(r1 - r0),
            indices: Vec::new(),
            values: Vec::new(),
        };
        for i in r0..r1 {
            let (idx, vals) = a.row(i);
            for (&kk, &aik) in idx.iter().zip(vals) {
                let (bidx, bvals) = b.row(kk);
                for (&j, &bkj) in bidx.iter().zip(bvals) {
                    if acc[j] == 0.0 {
                        touched.push(j);
                    }
                    acc[j] += aik * bkj;
                }
            }
            touched.sort_unstable();
            let before = chunk.indices.len();
            for &j in &touched {
                if acc[j] != 0.0 {
                    chunk.indices.push(j);
                    chunk.values.push(acc[j]);
                }
                acc[j] = 0.0;
            }
            chunk.row_lens.push(chunk.indices.len() - before);
            touched.clear();
        }
        chunk
    };
    // Supervised workers: each catches its own panics, so join() cannot
    // fail and one bad worker surfaces as `WorkerPanicked` for the whole
    // product (the chunks are interdependent only at assembly).
    let supervised =
        |r0: usize, r1: usize| catch_unwind(AssertUnwindSafe(|| run_range(r0, r1)));
    let chunks: Vec<CsrChunk> = if ranges.len() <= 1 {
        ranges
            .iter()
            .map(|&(r0, r1)| supervised(r0, r1).map_err(|_| WorkerPanicked))
            .collect::<std::result::Result<_, _>>()?
    } else {
        std::thread::scope(|s| {
            let supervised = &supervised;
            // The collect is load-bearing: spawning is lazy through `map`,
            // so joining straight off the iterator would run one worker at
            // a time.
            #[allow(clippy::needless_collect)]
            let handles: Vec<_> =
                ranges.iter().map(|&(r0, r1)| s.spawn(move || supervised(r0, r1))).collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or(Err(Box::new(WorkerPanicked))))
                .collect::<std::result::Result<Vec<_>, _>>()
                .map_err(|_| WorkerPanicked)
        })?
    };
    let nnz: usize = chunks.iter().map(|c| c.values.len()).sum();
    let mut indptr = Vec::with_capacity(m + 1);
    indptr.push(0usize);
    let mut indices = Vec::with_capacity(nnz);
    let mut values = Vec::with_capacity(nnz);
    for c in chunks {
        for len in c.row_lens {
            indptr.push(indptr.last().unwrap() + len);
        }
        indices.extend_from_slice(&c.indices);
        values.extend_from_slice(&c.values);
    }
    debug_assert_eq!(indptr.len(), m + 1);
    Ok(SparseMatrix::from_csr(m, n, indptr, indices, values))
}

/// Fused dense `Aᵀ·B` (both dense): output rows (= columns of `A`)
/// partitioned across workers; each worker streams `A` and `B` row-major
/// once, accumulating `out[j,:] += A[i,j] · B[i,:]` — no transposed copy
/// of `A` is ever built.
pub fn tmul_dense_dense(
    a: &DenseMatrix,
    b: &DenseMatrix,
    threads: usize,
) -> std::result::Result<DenseMatrix, WorkerPanicked> {
    let (m, p, n) = (a.rows(), a.cols(), b.cols());
    let mut out = DenseMatrix::zeros(p, n);
    partition_rows(out.data_mut(), p, n, threads, |chunk, r0, r1| {
        for i in 0..m {
            let a_row = a.row(i);
            let b_row = b.row(i);
            for j in r0..r1 {
                let aij = a_row[j];
                if aij == 0.0 {
                    continue;
                }
                let out_row = &mut chunk[(j - r0) * n..(j - r0 + 1) * n];
                for (c, &bic) in b_row.iter().enumerate() {
                    out_row[c] += aij * bic;
                }
            }
        }
    })?;
    Ok(out)
}

/// Fused dense-`A` `Aᵀ·B` with sparse `B`: each worker owns a range of
/// output rows and scatters the stored entries of `B`'s rows against the
/// matching column of `A`, read in place.
pub fn tmul_dense_sparse(
    a: &DenseMatrix,
    b: &SparseMatrix,
    threads: usize,
) -> std::result::Result<DenseMatrix, WorkerPanicked> {
    let (m, p, n) = (a.rows(), a.cols(), b.cols());
    let mut out = DenseMatrix::zeros(p, n);
    partition_rows(out.data_mut(), p, n, threads, |chunk, r0, r1| {
        for r in r0..r1 {
            let out_row = &mut chunk[(r - r0) * n..(r - r0 + 1) * n];
            for i in 0..m {
                let air = a.row(i)[r];
                if air == 0.0 {
                    continue;
                }
                let (idx, vals) = b.row(i);
                for (&j, &bij) in idx.iter().zip(vals) {
                    out_row[j] += air * bij;
                }
            }
        }
    })?;
    Ok(out)
}

/// Backend selection, settable per `Optimizer` (builder) or process-wide
/// via the `HADAD_BACKEND` env var (`reference` | `parallel`); the default
/// is [`BackendKind::Parallel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// The single-threaded textbook kernels.
    Reference,
    /// The threaded, cache-blocked kernels.
    #[default]
    Parallel,
}

/// Shared backend instances ([`Parallel`] carries the fused-call counter,
/// so callers needing isolation construct their own).
pub static REFERENCE: Reference = Reference;
/// Shared [`Parallel`] instance with auto-sized workers.
pub static PARALLEL: Parallel = Parallel::auto();

/// `HADAD_BACKEND` held a value that names no backend. Carries the
/// offending value so the panic/report names the typo.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownBackend(pub String);

impl std::fmt::Display for UnknownBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown backend `{}` (valid values: `reference`, `parallel`)", self.0)
    }
}

impl std::error::Error for UnknownBackend {}

impl std::str::FromStr for BackendKind {
    type Err = UnknownBackend;

    fn from_str(s: &str) -> std::result::Result<Self, UnknownBackend> {
        match s {
            "reference" => Ok(BackendKind::Reference),
            "parallel" => Ok(BackendKind::Parallel),
            other => Err(UnknownBackend(other.to_owned())),
        }
    }
}

impl BackendKind {
    /// Env-selected kind (`HADAD_BACKEND=reference|parallel`), cached for
    /// the process; unset means `Parallel`.
    ///
    /// An unrecognized value panics instead of silently falling back: a
    /// typo like `HADAD_BACKEND=refrence` would otherwise run every
    /// differential test against the default backend and pass vacuously.
    ///
    /// # Panics
    ///
    /// When `HADAD_BACKEND` is set to anything other than `reference` or
    /// `parallel`.
    pub fn from_env() -> Self {
        static CACHE: OnceLock<BackendKind> = OnceLock::new();
        *CACHE.get_or_init(|| match std::env::var("HADAD_BACKEND").ok() {
            None => BackendKind::Parallel,
            Some(v) => v.parse().unwrap_or_else(|e| panic!("HADAD_BACKEND: {e}")),
        })
    }

    /// The shared instance of this kind.
    pub fn select(self) -> &'static dyn ExecBackend {
        match self {
            BackendKind::Reference => &REFERENCE,
            BackendKind::Parallel => &PARALLEL,
        }
    }
}

/// The process-default backend (env-selected kind's shared instance).
pub fn default_backend() -> &'static dyn ExecBackend {
    BackendKind::from_env().select()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rand_gen;

    fn dense(r: usize, c: usize, seed: u64) -> Matrix {
        Matrix::Dense(rand_gen::random_dense(r, c, seed))
    }

    fn sparse(r: usize, c: usize, seed: u64) -> Matrix {
        Matrix::Sparse(rand_gen::random_sparse(r, c, 0.15, seed))
    }

    /// Every representation pair, odd shapes straddling the tile width,
    /// across thread counts: `Parallel` must agree with `Reference`
    /// bitwise (same per-cell accumulation order).
    #[test]
    fn parallel_products_match_reference_bitwise() {
        let shapes = [(1, 1, 1), (3, 5, 2), (7, 65, 9), (130, 64, 33), (65, 130, 7)];
        for &(m, k, n) in &shapes {
            for (a, b) in [
                (dense(m, k, 1), dense(k, n, 2)),
                (sparse(m, k, 3), dense(k, n, 4)),
                (dense(m, k, 5), sparse(k, n, 6)),
                (sparse(m, k, 7), sparse(k, n, 8)),
            ] {
                let want = REFERENCE.multiply(&a, &b).unwrap();
                for t in [1, 2, 8] {
                    let got = Parallel::with_threads(t).multiply(&a, &b).unwrap();
                    assert_eq!(want, got, "{m}x{k}x{n} t={t}");
                }
            }
        }
    }

    #[test]
    fn fused_transpose_multiply_matches_and_counts() {
        for (a, b) in [
            (dense(65, 7, 11), dense(65, 9, 12)),
            (dense(40, 33, 13), sparse(40, 21, 14)),
            (sparse(50, 8, 15), dense(50, 3, 16)),
            (sparse(50, 8, 17), sparse(50, 6, 18)),
        ] {
            let want = REFERENCE.transpose_multiply(&a, &b).unwrap();
            assert_eq!(REFERENCE.fused_tmul_calls(), 0, "reference never fuses");
            for t in [1, 2, 8] {
                let backend = Parallel::with_threads(t);
                let before = backend.fused_tmul_calls();
                let got = backend.transpose_multiply(&a, &b).unwrap();
                assert_eq!(want, got);
                // Dense A fuses; sparse A takes the O(nnz) transpose path.
                assert_eq!(backend.fused_tmul_calls() - before, usize::from(!a.is_sparse()));
            }
        }
    }

    #[test]
    fn shape_mismatches_rejected() {
        let a = dense(3, 4, 1);
        let b = dense(3, 4, 2);
        assert!(PARALLEL.multiply(&a, &b).is_err());
        assert!(PARALLEL.transpose_multiply(&a, &dense(4, 3, 3)).is_err());
        assert!(REFERENCE.transpose_multiply(&a, &dense(4, 3, 3)).is_err());
    }

    #[test]
    fn sparse_products_stay_sparse_and_prune_zeros() {
        // Cancellation inside SpGEMM must drop the entry, as the reference
        // kernel does.
        let a = Matrix::sparse(2, 2, vec![(0, 0, 1.0), (0, 1, 1.0)]);
        let b = Matrix::sparse(2, 2, vec![(0, 0, 2.0), (1, 0, -2.0), (1, 1, 3.0)]);
        let got = Parallel::with_threads(2).multiply(&a, &b).unwrap();
        assert!(got.is_sparse());
        assert_eq!(got, REFERENCE.multiply(&a, &b).unwrap());
        assert_eq!(got.nnz(), 1, "cancelled cell must be pruned");
    }

    #[test]
    fn empty_and_zero_row_matrices() {
        let a = Matrix::sparse(4, 3, vec![(3, 0, 2.0)]);
        let b = dense(3, 2, 5);
        assert_eq!(PARALLEL.multiply(&a, &b).unwrap(), REFERENCE.multiply(&a, &b).unwrap());
        let empty = Matrix::zeros(0, 3);
        let rhs = Matrix::zeros(3, 2);
        assert_eq!(PARALLEL.multiply(&empty, &rhs).unwrap().shape(), (0, 2));
    }

    #[test]
    fn kernel_panic_degrades_to_reference_with_event() {
        let _fp = hadad_failpoint::scoped("linalg.kernel", hadad_failpoint::FailAction::Panic);
        // Silence the default panic hook for the injected worker panics.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        take_backend_panics();
        let backend = Parallel::with_threads(2);
        // bt shares a's row count so `aᵀ · bt` is well-shaped.
        for (a, b, bt) in [
            (dense(20, 10, 21), dense(10, 6, 22), dense(20, 6, 25)),
            (sparse(20, 10, 23), sparse(10, 6, 24), sparse(20, 6, 26)),
        ] {
            let got = backend.multiply(&a, &b).unwrap();
            assert_eq!(got, REFERENCE.multiply(&a, &b).unwrap());
            let tgot = backend.transpose_multiply(&a, &bt).unwrap();
            assert_eq!(tgot, REFERENCE.transpose_multiply(&a, &bt).unwrap());
        }
        std::panic::set_hook(hook);
        let events = take_backend_panics();
        assert!(!events.is_empty());
        assert!(events.iter().all(|e| e.backend == "parallel"));
        assert!(events.iter().any(|e| e.op == "multiply"));
        assert!(events.iter().any(|e| e.op == "transpose_multiply"));
    }

    #[test]
    fn env_default_is_parallel() {
        // The test env does not set HADAD_BACKEND=reference; the default
        // kind resolves Parallel and the instance reports its threads.
        if std::env::var("HADAD_BACKEND").as_deref() != Ok("reference") {
            assert_eq!(default_backend().name(), "parallel");
        }
        assert!(PARALLEL.threads() >= 1);
        assert_eq!(Parallel::with_threads(3).threads(), 3);
    }

    /// The parser `from_env` delegates to: valid names resolve, anything
    /// else is a typed error naming the offending value — a typo in
    /// `HADAD_BACKEND` must fail loudly, not silently select `Parallel`
    /// and let differential tests pass vacuously. (The env path itself is
    /// process-cached by `OnceLock`, so it is exercised via the parser.)
    #[test]
    fn backend_kind_parse_rejects_unknown_values() {
        assert_eq!("reference".parse::<BackendKind>(), Ok(BackendKind::Reference));
        assert_eq!("parallel".parse::<BackendKind>(), Ok(BackendKind::Parallel));
        for bogus in ["refrence", "Reference", "PARALLEL", "", "threads=4"] {
            let err = bogus.parse::<BackendKind>().unwrap_err();
            assert_eq!(err, UnknownBackend(bogus.to_owned()));
            let msg = err.to_string();
            assert!(msg.contains(bogus) || bogus.is_empty(), "message names the typo: {msg}");
            assert!(msg.contains("reference") && msg.contains("parallel"));
        }
    }
}
